file(REMOVE_RECURSE
  "CMakeFiles/cews.dir/cews_cli.cpp.o"
  "CMakeFiles/cews.dir/cews_cli.cpp.o.d"
  "cews"
  "cews.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cews.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
