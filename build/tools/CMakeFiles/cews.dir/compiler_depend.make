# Empty compiler generated dependencies file for cews.
# This may be replaced when dependencies are built.
