file(REMOVE_RECURSE
  "libcews_core.a"
)
