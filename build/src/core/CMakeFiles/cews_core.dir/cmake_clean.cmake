file(REMOVE_RECURSE
  "CMakeFiles/cews_core.dir/algorithms.cc.o"
  "CMakeFiles/cews_core.dir/algorithms.cc.o.d"
  "CMakeFiles/cews_core.dir/drl_cews.cc.o"
  "CMakeFiles/cews_core.dir/drl_cews.cc.o.d"
  "CMakeFiles/cews_core.dir/scenarios.cc.o"
  "CMakeFiles/cews_core.dir/scenarios.cc.o.d"
  "CMakeFiles/cews_core.dir/training_log.cc.o"
  "CMakeFiles/cews_core.dir/training_log.cc.o.d"
  "CMakeFiles/cews_core.dir/visualize.cc.o"
  "CMakeFiles/cews_core.dir/visualize.cc.o.d"
  "libcews_core.a"
  "libcews_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cews_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
