# Empty dependencies file for cews_core.
# This may be replaced when dependencies are built.
