# Empty dependencies file for cews_env.
# This may be replaced when dependencies are built.
