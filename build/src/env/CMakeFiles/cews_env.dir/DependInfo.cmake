
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/env/action_space.cc" "src/env/CMakeFiles/cews_env.dir/action_space.cc.o" "gcc" "src/env/CMakeFiles/cews_env.dir/action_space.cc.o.d"
  "/root/repo/src/env/env.cc" "src/env/CMakeFiles/cews_env.dir/env.cc.o" "gcc" "src/env/CMakeFiles/cews_env.dir/env.cc.o.d"
  "/root/repo/src/env/map.cc" "src/env/CMakeFiles/cews_env.dir/map.cc.o" "gcc" "src/env/CMakeFiles/cews_env.dir/map.cc.o.d"
  "/root/repo/src/env/map_io.cc" "src/env/CMakeFiles/cews_env.dir/map_io.cc.o" "gcc" "src/env/CMakeFiles/cews_env.dir/map_io.cc.o.d"
  "/root/repo/src/env/pathfinding.cc" "src/env/CMakeFiles/cews_env.dir/pathfinding.cc.o" "gcc" "src/env/CMakeFiles/cews_env.dir/pathfinding.cc.o.d"
  "/root/repo/src/env/state_encoder.cc" "src/env/CMakeFiles/cews_env.dir/state_encoder.cc.o" "gcc" "src/env/CMakeFiles/cews_env.dir/state_encoder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cews_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
