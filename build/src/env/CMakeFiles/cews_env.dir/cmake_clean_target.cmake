file(REMOVE_RECURSE
  "libcews_env.a"
)
