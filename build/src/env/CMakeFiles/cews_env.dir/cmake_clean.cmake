file(REMOVE_RECURSE
  "CMakeFiles/cews_env.dir/action_space.cc.o"
  "CMakeFiles/cews_env.dir/action_space.cc.o.d"
  "CMakeFiles/cews_env.dir/env.cc.o"
  "CMakeFiles/cews_env.dir/env.cc.o.d"
  "CMakeFiles/cews_env.dir/map.cc.o"
  "CMakeFiles/cews_env.dir/map.cc.o.d"
  "CMakeFiles/cews_env.dir/map_io.cc.o"
  "CMakeFiles/cews_env.dir/map_io.cc.o.d"
  "CMakeFiles/cews_env.dir/pathfinding.cc.o"
  "CMakeFiles/cews_env.dir/pathfinding.cc.o.d"
  "CMakeFiles/cews_env.dir/state_encoder.cc.o"
  "CMakeFiles/cews_env.dir/state_encoder.cc.o.d"
  "libcews_env.a"
  "libcews_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cews_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
