# Empty compiler generated dependencies file for cews_agents.
# This may be replaced when dependencies are built.
