file(REMOVE_RECURSE
  "libcews_agents.a"
)
