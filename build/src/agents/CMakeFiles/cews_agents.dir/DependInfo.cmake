
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agents/async_trainer.cc" "src/agents/CMakeFiles/cews_agents.dir/async_trainer.cc.o" "gcc" "src/agents/CMakeFiles/cews_agents.dir/async_trainer.cc.o.d"
  "/root/repo/src/agents/chief_employee.cc" "src/agents/CMakeFiles/cews_agents.dir/chief_employee.cc.o" "gcc" "src/agents/CMakeFiles/cews_agents.dir/chief_employee.cc.o.d"
  "/root/repo/src/agents/cnn_trunk.cc" "src/agents/CMakeFiles/cews_agents.dir/cnn_trunk.cc.o" "gcc" "src/agents/CMakeFiles/cews_agents.dir/cnn_trunk.cc.o.d"
  "/root/repo/src/agents/curiosity.cc" "src/agents/CMakeFiles/cews_agents.dir/curiosity.cc.o" "gcc" "src/agents/CMakeFiles/cews_agents.dir/curiosity.cc.o.d"
  "/root/repo/src/agents/eval.cc" "src/agents/CMakeFiles/cews_agents.dir/eval.cc.o" "gcc" "src/agents/CMakeFiles/cews_agents.dir/eval.cc.o.d"
  "/root/repo/src/agents/policy_net.cc" "src/agents/CMakeFiles/cews_agents.dir/policy_net.cc.o" "gcc" "src/agents/CMakeFiles/cews_agents.dir/policy_net.cc.o.d"
  "/root/repo/src/agents/ppo.cc" "src/agents/CMakeFiles/cews_agents.dir/ppo.cc.o" "gcc" "src/agents/CMakeFiles/cews_agents.dir/ppo.cc.o.d"
  "/root/repo/src/agents/rnd.cc" "src/agents/CMakeFiles/cews_agents.dir/rnd.cc.o" "gcc" "src/agents/CMakeFiles/cews_agents.dir/rnd.cc.o.d"
  "/root/repo/src/agents/rollout.cc" "src/agents/CMakeFiles/cews_agents.dir/rollout.cc.o" "gcc" "src/agents/CMakeFiles/cews_agents.dir/rollout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/cews_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/cews_env.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cews_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
