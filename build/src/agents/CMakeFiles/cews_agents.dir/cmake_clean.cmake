file(REMOVE_RECURSE
  "CMakeFiles/cews_agents.dir/async_trainer.cc.o"
  "CMakeFiles/cews_agents.dir/async_trainer.cc.o.d"
  "CMakeFiles/cews_agents.dir/chief_employee.cc.o"
  "CMakeFiles/cews_agents.dir/chief_employee.cc.o.d"
  "CMakeFiles/cews_agents.dir/cnn_trunk.cc.o"
  "CMakeFiles/cews_agents.dir/cnn_trunk.cc.o.d"
  "CMakeFiles/cews_agents.dir/curiosity.cc.o"
  "CMakeFiles/cews_agents.dir/curiosity.cc.o.d"
  "CMakeFiles/cews_agents.dir/eval.cc.o"
  "CMakeFiles/cews_agents.dir/eval.cc.o.d"
  "CMakeFiles/cews_agents.dir/policy_net.cc.o"
  "CMakeFiles/cews_agents.dir/policy_net.cc.o.d"
  "CMakeFiles/cews_agents.dir/ppo.cc.o"
  "CMakeFiles/cews_agents.dir/ppo.cc.o.d"
  "CMakeFiles/cews_agents.dir/rnd.cc.o"
  "CMakeFiles/cews_agents.dir/rnd.cc.o.d"
  "CMakeFiles/cews_agents.dir/rollout.cc.o"
  "CMakeFiles/cews_agents.dir/rollout.cc.o.d"
  "libcews_agents.a"
  "libcews_agents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cews_agents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
