file(REMOVE_RECURSE
  "CMakeFiles/cews_nn.dir/init.cc.o"
  "CMakeFiles/cews_nn.dir/init.cc.o.d"
  "CMakeFiles/cews_nn.dir/module.cc.o"
  "CMakeFiles/cews_nn.dir/module.cc.o.d"
  "CMakeFiles/cews_nn.dir/ops.cc.o"
  "CMakeFiles/cews_nn.dir/ops.cc.o.d"
  "CMakeFiles/cews_nn.dir/optimizer.cc.o"
  "CMakeFiles/cews_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/cews_nn.dir/params.cc.o"
  "CMakeFiles/cews_nn.dir/params.cc.o.d"
  "CMakeFiles/cews_nn.dir/serialize.cc.o"
  "CMakeFiles/cews_nn.dir/serialize.cc.o.d"
  "CMakeFiles/cews_nn.dir/tensor.cc.o"
  "CMakeFiles/cews_nn.dir/tensor.cc.o.d"
  "libcews_nn.a"
  "libcews_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cews_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
