# Empty compiler generated dependencies file for cews_nn.
# This may be replaced when dependencies are built.
