file(REMOVE_RECURSE
  "libcews_nn.a"
)
