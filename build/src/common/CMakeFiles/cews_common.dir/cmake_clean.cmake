file(REMOVE_RECURSE
  "CMakeFiles/cews_common.dir/kv_config.cc.o"
  "CMakeFiles/cews_common.dir/kv_config.cc.o.d"
  "CMakeFiles/cews_common.dir/log.cc.o"
  "CMakeFiles/cews_common.dir/log.cc.o.d"
  "CMakeFiles/cews_common.dir/status.cc.o"
  "CMakeFiles/cews_common.dir/status.cc.o.d"
  "CMakeFiles/cews_common.dir/table.cc.o"
  "CMakeFiles/cews_common.dir/table.cc.o.d"
  "libcews_common.a"
  "libcews_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cews_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
