# Empty compiler generated dependencies file for cews_common.
# This may be replaced when dependencies are built.
