file(REMOVE_RECURSE
  "libcews_common.a"
)
