
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dnc.cc" "src/baselines/CMakeFiles/cews_baselines.dir/dnc.cc.o" "gcc" "src/baselines/CMakeFiles/cews_baselines.dir/dnc.cc.o.d"
  "/root/repo/src/baselines/dqn.cc" "src/baselines/CMakeFiles/cews_baselines.dir/dqn.cc.o" "gcc" "src/baselines/CMakeFiles/cews_baselines.dir/dqn.cc.o.d"
  "/root/repo/src/baselines/edics.cc" "src/baselines/CMakeFiles/cews_baselines.dir/edics.cc.o" "gcc" "src/baselines/CMakeFiles/cews_baselines.dir/edics.cc.o.d"
  "/root/repo/src/baselines/greedy.cc" "src/baselines/CMakeFiles/cews_baselines.dir/greedy.cc.o" "gcc" "src/baselines/CMakeFiles/cews_baselines.dir/greedy.cc.o.d"
  "/root/repo/src/baselines/nav_greedy.cc" "src/baselines/CMakeFiles/cews_baselines.dir/nav_greedy.cc.o" "gcc" "src/baselines/CMakeFiles/cews_baselines.dir/nav_greedy.cc.o.d"
  "/root/repo/src/baselines/planner.cc" "src/baselines/CMakeFiles/cews_baselines.dir/planner.cc.o" "gcc" "src/baselines/CMakeFiles/cews_baselines.dir/planner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/agents/CMakeFiles/cews_agents.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cews_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/cews_env.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cews_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
