file(REMOVE_RECURSE
  "CMakeFiles/cews_baselines.dir/dnc.cc.o"
  "CMakeFiles/cews_baselines.dir/dnc.cc.o.d"
  "CMakeFiles/cews_baselines.dir/dqn.cc.o"
  "CMakeFiles/cews_baselines.dir/dqn.cc.o.d"
  "CMakeFiles/cews_baselines.dir/edics.cc.o"
  "CMakeFiles/cews_baselines.dir/edics.cc.o.d"
  "CMakeFiles/cews_baselines.dir/greedy.cc.o"
  "CMakeFiles/cews_baselines.dir/greedy.cc.o.d"
  "CMakeFiles/cews_baselines.dir/nav_greedy.cc.o"
  "CMakeFiles/cews_baselines.dir/nav_greedy.cc.o.d"
  "CMakeFiles/cews_baselines.dir/planner.cc.o"
  "CMakeFiles/cews_baselines.dir/planner.cc.o.d"
  "libcews_baselines.a"
  "libcews_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cews_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
