file(REMOVE_RECURSE
  "libcews_baselines.a"
)
