# Empty compiler generated dependencies file for cews_baselines.
# This may be replaced when dependencies are built.
