file(REMOVE_RECURSE
  "CMakeFiles/agents_cnn_trunk_test.dir/agents_cnn_trunk_test.cc.o"
  "CMakeFiles/agents_cnn_trunk_test.dir/agents_cnn_trunk_test.cc.o.d"
  "agents_cnn_trunk_test"
  "agents_cnn_trunk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agents_cnn_trunk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
