# Empty compiler generated dependencies file for agents_cnn_trunk_test.
# This may be replaced when dependencies are built.
