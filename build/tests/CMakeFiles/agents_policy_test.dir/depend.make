# Empty dependencies file for agents_policy_test.
# This may be replaced when dependencies are built.
