file(REMOVE_RECURSE
  "CMakeFiles/agents_policy_test.dir/agents_policy_test.cc.o"
  "CMakeFiles/agents_policy_test.dir/agents_policy_test.cc.o.d"
  "agents_policy_test"
  "agents_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agents_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
