# Empty dependencies file for env_hetero_test.
# This may be replaced when dependencies are built.
