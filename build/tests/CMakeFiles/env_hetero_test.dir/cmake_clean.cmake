file(REMOVE_RECURSE
  "CMakeFiles/env_hetero_test.dir/env_hetero_test.cc.o"
  "CMakeFiles/env_hetero_test.dir/env_hetero_test.cc.o.d"
  "env_hetero_test"
  "env_hetero_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/env_hetero_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
