# Empty dependencies file for env_map_test.
# This may be replaced when dependencies are built.
