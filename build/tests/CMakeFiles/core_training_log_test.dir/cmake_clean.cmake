file(REMOVE_RECURSE
  "CMakeFiles/core_training_log_test.dir/core_training_log_test.cc.o"
  "CMakeFiles/core_training_log_test.dir/core_training_log_test.cc.o.d"
  "core_training_log_test"
  "core_training_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_training_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
