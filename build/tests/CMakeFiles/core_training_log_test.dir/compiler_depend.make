# Empty compiler generated dependencies file for core_training_log_test.
# This may be replaced when dependencies are built.
