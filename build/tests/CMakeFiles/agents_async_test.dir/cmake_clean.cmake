file(REMOVE_RECURSE
  "CMakeFiles/agents_async_test.dir/agents_async_test.cc.o"
  "CMakeFiles/agents_async_test.dir/agents_async_test.cc.o.d"
  "agents_async_test"
  "agents_async_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agents_async_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
