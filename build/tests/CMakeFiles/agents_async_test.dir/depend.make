# Empty dependencies file for agents_async_test.
# This may be replaced when dependencies are built.
