file(REMOVE_RECURSE
  "CMakeFiles/env_encoder_test.dir/env_encoder_test.cc.o"
  "CMakeFiles/env_encoder_test.dir/env_encoder_test.cc.o.d"
  "env_encoder_test"
  "env_encoder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/env_encoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
