# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for env_encoder_test.
