# Empty dependencies file for env_encoder_test.
# This may be replaced when dependencies are built.
