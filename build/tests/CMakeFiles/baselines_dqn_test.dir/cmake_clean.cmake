file(REMOVE_RECURSE
  "CMakeFiles/baselines_dqn_test.dir/baselines_dqn_test.cc.o"
  "CMakeFiles/baselines_dqn_test.dir/baselines_dqn_test.cc.o.d"
  "baselines_dqn_test"
  "baselines_dqn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_dqn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
