# Empty dependencies file for baselines_dqn_test.
# This may be replaced when dependencies are built.
