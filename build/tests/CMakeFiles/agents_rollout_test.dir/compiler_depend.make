# Empty compiler generated dependencies file for agents_rollout_test.
# This may be replaced when dependencies are built.
