file(REMOVE_RECURSE
  "CMakeFiles/agents_rollout_test.dir/agents_rollout_test.cc.o"
  "CMakeFiles/agents_rollout_test.dir/agents_rollout_test.cc.o.d"
  "agents_rollout_test"
  "agents_rollout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agents_rollout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
