file(REMOVE_RECURSE
  "CMakeFiles/nn_grad_check_test.dir/nn_grad_check_test.cc.o"
  "CMakeFiles/nn_grad_check_test.dir/nn_grad_check_test.cc.o.d"
  "nn_grad_check_test"
  "nn_grad_check_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_grad_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
