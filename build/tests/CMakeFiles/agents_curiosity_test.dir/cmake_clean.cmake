file(REMOVE_RECURSE
  "CMakeFiles/agents_curiosity_test.dir/agents_curiosity_test.cc.o"
  "CMakeFiles/agents_curiosity_test.dir/agents_curiosity_test.cc.o.d"
  "agents_curiosity_test"
  "agents_curiosity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agents_curiosity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
