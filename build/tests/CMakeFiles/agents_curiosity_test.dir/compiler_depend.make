# Empty compiler generated dependencies file for agents_curiosity_test.
# This may be replaced when dependencies are built.
