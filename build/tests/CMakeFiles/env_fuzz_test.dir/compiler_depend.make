# Empty compiler generated dependencies file for env_fuzz_test.
# This may be replaced when dependencies are built.
