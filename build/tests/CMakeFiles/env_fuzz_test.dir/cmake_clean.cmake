file(REMOVE_RECURSE
  "CMakeFiles/env_fuzz_test.dir/env_fuzz_test.cc.o"
  "CMakeFiles/env_fuzz_test.dir/env_fuzz_test.cc.o.d"
  "env_fuzz_test"
  "env_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/env_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
