file(REMOVE_RECURSE
  "CMakeFiles/nn_module_test.dir/nn_module_test.cc.o"
  "CMakeFiles/nn_module_test.dir/nn_module_test.cc.o.d"
  "nn_module_test"
  "nn_module_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_module_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
