# Empty dependencies file for nn_ops_test.
# This may be replaced when dependencies are built.
