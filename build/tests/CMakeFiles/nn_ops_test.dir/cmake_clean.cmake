file(REMOVE_RECURSE
  "CMakeFiles/nn_ops_test.dir/nn_ops_test.cc.o"
  "CMakeFiles/nn_ops_test.dir/nn_ops_test.cc.o.d"
  "nn_ops_test"
  "nn_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
