file(REMOVE_RECURSE
  "CMakeFiles/env_dynamics_test.dir/env_dynamics_test.cc.o"
  "CMakeFiles/env_dynamics_test.dir/env_dynamics_test.cc.o.d"
  "env_dynamics_test"
  "env_dynamics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/env_dynamics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
