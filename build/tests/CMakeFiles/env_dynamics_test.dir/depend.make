# Empty dependencies file for env_dynamics_test.
# This may be replaced when dependencies are built.
