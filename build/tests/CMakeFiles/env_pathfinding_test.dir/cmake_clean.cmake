file(REMOVE_RECURSE
  "CMakeFiles/env_pathfinding_test.dir/env_pathfinding_test.cc.o"
  "CMakeFiles/env_pathfinding_test.dir/env_pathfinding_test.cc.o.d"
  "env_pathfinding_test"
  "env_pathfinding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/env_pathfinding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
