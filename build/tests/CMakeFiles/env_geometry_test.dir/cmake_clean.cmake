file(REMOVE_RECURSE
  "CMakeFiles/env_geometry_test.dir/env_geometry_test.cc.o"
  "CMakeFiles/env_geometry_test.dir/env_geometry_test.cc.o.d"
  "env_geometry_test"
  "env_geometry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/env_geometry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
