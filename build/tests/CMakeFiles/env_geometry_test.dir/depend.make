# Empty dependencies file for env_geometry_test.
# This may be replaced when dependencies are built.
