# Empty dependencies file for common_kv_config_test.
# This may be replaced when dependencies are built.
