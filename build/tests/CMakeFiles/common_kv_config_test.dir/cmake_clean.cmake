file(REMOVE_RECURSE
  "CMakeFiles/common_kv_config_test.dir/common_kv_config_test.cc.o"
  "CMakeFiles/common_kv_config_test.dir/common_kv_config_test.cc.o.d"
  "common_kv_config_test"
  "common_kv_config_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_kv_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
