file(REMOVE_RECURSE
  "CMakeFiles/nn_tensor_test.dir/nn_tensor_test.cc.o"
  "CMakeFiles/nn_tensor_test.dir/nn_tensor_test.cc.o.d"
  "nn_tensor_test"
  "nn_tensor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_tensor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
