# Empty dependencies file for nn_tensor_test.
# This may be replaced when dependencies are built.
