file(REMOVE_RECURSE
  "CMakeFiles/env_map_io_test.dir/env_map_io_test.cc.o"
  "CMakeFiles/env_map_io_test.dir/env_map_io_test.cc.o.d"
  "env_map_io_test"
  "env_map_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/env_map_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
