# Empty compiler generated dependencies file for env_map_io_test.
# This may be replaced when dependencies are built.
