# Empty compiler generated dependencies file for core_scenarios_test.
# This may be replaced when dependencies are built.
