file(REMOVE_RECURSE
  "CMakeFiles/core_scenarios_test.dir/core_scenarios_test.cc.o"
  "CMakeFiles/core_scenarios_test.dir/core_scenarios_test.cc.o.d"
  "core_scenarios_test"
  "core_scenarios_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_scenarios_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
