# Empty compiler generated dependencies file for agents_trainer_test.
# This may be replaced when dependencies are built.
