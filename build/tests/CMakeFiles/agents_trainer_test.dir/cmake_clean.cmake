file(REMOVE_RECURSE
  "CMakeFiles/agents_trainer_test.dir/agents_trainer_test.cc.o"
  "CMakeFiles/agents_trainer_test.dir/agents_trainer_test.cc.o.d"
  "agents_trainer_test"
  "agents_trainer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agents_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
