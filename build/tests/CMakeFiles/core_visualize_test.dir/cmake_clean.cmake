file(REMOVE_RECURSE
  "CMakeFiles/core_visualize_test.dir/core_visualize_test.cc.o"
  "CMakeFiles/core_visualize_test.dir/core_visualize_test.cc.o.d"
  "core_visualize_test"
  "core_visualize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_visualize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
