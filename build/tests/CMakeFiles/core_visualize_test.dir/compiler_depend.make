# Empty compiler generated dependencies file for core_visualize_test.
# This may be replaced when dependencies are built.
