# Empty dependencies file for env_metrics_test.
# This may be replaced when dependencies are built.
