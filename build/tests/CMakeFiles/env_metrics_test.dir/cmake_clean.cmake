file(REMOVE_RECURSE
  "CMakeFiles/env_metrics_test.dir/env_metrics_test.cc.o"
  "CMakeFiles/env_metrics_test.dir/env_metrics_test.cc.o.d"
  "env_metrics_test"
  "env_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/env_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
