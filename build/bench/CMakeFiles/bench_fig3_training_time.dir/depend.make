# Empty dependencies file for bench_fig3_training_time.
# This may be replaced when dependencies are built.
