file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_training_time.dir/bench_fig3_training_time.cpp.o"
  "CMakeFiles/bench_fig3_training_time.dir/bench_fig3_training_time.cpp.o.d"
  "bench_fig3_training_time"
  "bench_fig3_training_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_training_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
