file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_hyperparams.dir/bench_table2_hyperparams.cpp.o"
  "CMakeFiles/bench_table2_hyperparams.dir/bench_table2_hyperparams.cpp.o.d"
  "bench_table2_hyperparams"
  "bench_table2_hyperparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_hyperparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
