# Empty dependencies file for bench_table2_hyperparams.
# This may be replaced when dependencies are built.
