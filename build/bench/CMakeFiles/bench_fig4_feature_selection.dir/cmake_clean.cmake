file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_feature_selection.dir/bench_fig4_feature_selection.cpp.o"
  "CMakeFiles/bench_fig4_feature_selection.dir/bench_fig4_feature_selection.cpp.o.d"
  "bench_fig4_feature_selection"
  "bench_fig4_feature_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_feature_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
