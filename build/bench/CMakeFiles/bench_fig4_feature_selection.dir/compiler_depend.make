# Empty compiler generated dependencies file for bench_fig4_feature_selection.
# This may be replaced when dependencies are built.
