file(REMOVE_RECURSE
  "CMakeFiles/bench_fig678b_worker_sweep.dir/bench_fig678b_worker_sweep.cpp.o"
  "CMakeFiles/bench_fig678b_worker_sweep.dir/bench_fig678b_worker_sweep.cpp.o.d"
  "bench_fig678b_worker_sweep"
  "bench_fig678b_worker_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig678b_worker_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
