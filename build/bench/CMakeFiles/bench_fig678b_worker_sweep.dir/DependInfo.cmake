
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig678b_worker_sweep.cpp" "bench/CMakeFiles/bench_fig678b_worker_sweep.dir/bench_fig678b_worker_sweep.cpp.o" "gcc" "bench/CMakeFiles/bench_fig678b_worker_sweep.dir/bench_fig678b_worker_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cews_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/cews_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/agents/CMakeFiles/cews_agents.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cews_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/cews_env.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cews_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
