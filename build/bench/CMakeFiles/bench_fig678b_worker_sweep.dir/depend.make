# Empty dependencies file for bench_fig678b_worker_sweep.
# This may be replaced when dependencies are built.
