# Empty dependencies file for bench_fig678d_station_sweep.
# This may be replaced when dependencies are built.
