file(REMOVE_RECURSE
  "CMakeFiles/bench_fig678d_station_sweep.dir/bench_fig678d_station_sweep.cpp.o"
  "CMakeFiles/bench_fig678d_station_sweep.dir/bench_fig678d_station_sweep.cpp.o.d"
  "bench_fig678d_station_sweep"
  "bench_fig678d_station_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig678d_station_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
