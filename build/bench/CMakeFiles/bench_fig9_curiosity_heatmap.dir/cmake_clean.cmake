file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_curiosity_heatmap.dir/bench_fig9_curiosity_heatmap.cpp.o"
  "CMakeFiles/bench_fig9_curiosity_heatmap.dir/bench_fig9_curiosity_heatmap.cpp.o.d"
  "bench_fig9_curiosity_heatmap"
  "bench_fig9_curiosity_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_curiosity_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
