# Empty compiler generated dependencies file for bench_fig9_curiosity_heatmap.
# This may be replaced when dependencies are built.
