file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reward_scaling.dir/bench_ablation_reward_scaling.cpp.o"
  "CMakeFiles/bench_ablation_reward_scaling.dir/bench_ablation_reward_scaling.cpp.o.d"
  "bench_ablation_reward_scaling"
  "bench_ablation_reward_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reward_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
