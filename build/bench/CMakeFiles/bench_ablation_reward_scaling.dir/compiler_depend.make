# Empty compiler generated dependencies file for bench_ablation_reward_scaling.
# This may be replaced when dependencies are built.
