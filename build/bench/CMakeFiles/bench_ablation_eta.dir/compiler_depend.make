# Empty compiler generated dependencies file for bench_ablation_eta.
# This may be replaced when dependencies are built.
