file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_eta.dir/bench_ablation_eta.cpp.o"
  "CMakeFiles/bench_ablation_eta.dir/bench_ablation_eta.cpp.o.d"
  "bench_ablation_eta"
  "bench_ablation_eta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_eta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
