# Empty compiler generated dependencies file for bench_micro_env.
# This may be replaced when dependencies are built.
