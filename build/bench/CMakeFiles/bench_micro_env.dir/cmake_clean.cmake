file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_env.dir/bench_micro_env.cpp.o"
  "CMakeFiles/bench_micro_env.dir/bench_micro_env.cpp.o.d"
  "bench_micro_env"
  "bench_micro_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
