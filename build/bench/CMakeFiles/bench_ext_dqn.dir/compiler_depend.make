# Empty compiler generated dependencies file for bench_ext_dqn.
# This may be replaced when dependencies are built.
