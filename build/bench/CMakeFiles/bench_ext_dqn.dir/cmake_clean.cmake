file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_dqn.dir/bench_ext_dqn.cpp.o"
  "CMakeFiles/bench_ext_dqn.dir/bench_ext_dqn.cpp.o.d"
  "bench_ext_dqn"
  "bench_ext_dqn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_dqn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
