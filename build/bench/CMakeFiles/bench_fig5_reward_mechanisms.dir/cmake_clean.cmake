file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_reward_mechanisms.dir/bench_fig5_reward_mechanisms.cpp.o"
  "CMakeFiles/bench_fig5_reward_mechanisms.dir/bench_fig5_reward_mechanisms.cpp.o.d"
  "bench_fig5_reward_mechanisms"
  "bench_fig5_reward_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_reward_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
