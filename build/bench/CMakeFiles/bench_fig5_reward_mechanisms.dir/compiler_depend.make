# Empty compiler generated dependencies file for bench_fig5_reward_mechanisms.
# This may be replaced when dependencies are built.
