# Empty dependencies file for bench_fig678c_energy_sweep.
# This may be replaced when dependencies are built.
