# Empty compiler generated dependencies file for bench_fig678a_poi_sweep.
# This may be replaced when dependencies are built.
