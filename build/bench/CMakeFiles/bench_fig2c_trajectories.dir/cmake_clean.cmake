file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2c_trajectories.dir/bench_fig2c_trajectories.cpp.o"
  "CMakeFiles/bench_fig2c_trajectories.dir/bench_fig2c_trajectories.cpp.o.d"
  "bench_fig2c_trajectories"
  "bench_fig2c_trajectories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2c_trajectories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
