# Empty compiler generated dependencies file for bench_fig2c_trajectories.
# This may be replaced when dependencies are built.
