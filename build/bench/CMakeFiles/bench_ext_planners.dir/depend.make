# Empty dependencies file for bench_ext_planners.
# This may be replaced when dependencies are built.
