file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_planners.dir/bench_ext_planners.cpp.o"
  "CMakeFiles/bench_ext_planners.dir/bench_ext_planners.cpp.o.d"
  "bench_ext_planners"
  "bench_ext_planners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_planners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
