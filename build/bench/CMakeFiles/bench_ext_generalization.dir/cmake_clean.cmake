file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_generalization.dir/bench_ext_generalization.cpp.o"
  "CMakeFiles/bench_ext_generalization.dir/bench_ext_generalization.cpp.o.d"
  "bench_ext_generalization"
  "bench_ext_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
