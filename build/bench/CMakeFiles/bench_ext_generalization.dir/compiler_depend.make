# Empty compiler generated dependencies file for bench_ext_generalization.
# This may be replaced when dependencies are built.
