# Empty compiler generated dependencies file for curiosity_heatmap.
# This may be replaced when dependencies are built.
