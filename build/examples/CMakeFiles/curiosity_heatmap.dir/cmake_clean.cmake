file(REMOVE_RECURSE
  "CMakeFiles/curiosity_heatmap.dir/curiosity_heatmap.cpp.o"
  "CMakeFiles/curiosity_heatmap.dir/curiosity_heatmap.cpp.o.d"
  "curiosity_heatmap"
  "curiosity_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curiosity_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
