# Empty compiler generated dependencies file for earthquake_rescue.
# This may be replaced when dependencies are built.
