file(REMOVE_RECURSE
  "CMakeFiles/earthquake_rescue.dir/earthquake_rescue.cpp.o"
  "CMakeFiles/earthquake_rescue.dir/earthquake_rescue.cpp.o.d"
  "earthquake_rescue"
  "earthquake_rescue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/earthquake_rescue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
