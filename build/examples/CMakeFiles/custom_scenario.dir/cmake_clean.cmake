file(REMOVE_RECURSE
  "CMakeFiles/custom_scenario.dir/custom_scenario.cpp.o"
  "CMakeFiles/custom_scenario.dir/custom_scenario.cpp.o.d"
  "custom_scenario"
  "custom_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
