# Empty compiler generated dependencies file for custom_scenario.
# This may be replaced when dependencies are built.
