file(REMOVE_RECURSE
  "CMakeFiles/fleet_charging.dir/fleet_charging.cpp.o"
  "CMakeFiles/fleet_charging.dir/fleet_charging.cpp.o.d"
  "fleet_charging"
  "fleet_charging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_charging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
