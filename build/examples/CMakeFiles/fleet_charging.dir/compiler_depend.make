# Empty compiler generated dependencies file for fleet_charging.
# This may be replaced when dependencies are built.
