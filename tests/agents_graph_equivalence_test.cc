// The expression-graph acceptance bar (nn/graph.h): full training runs —
// PPO + spatial curiosity and PPO + RND — must produce bitwise-identical
// final parameters with CEWS_NN_GRAPH=1 (compiled forward replay) as with
// the per-call tape, at several thread-pool widths, and gradient
// checkpointing (CEWS_NN_CKPT=1) must not change a single bit either.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "agents/chief_employee.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "env/map.h"
#include "nn/graph.h"
#include "nn/params.h"
#include "obs/metrics.h"

namespace cews::agents {
namespace {

env::Map SmallMap(uint64_t seed = 42) {
  env::MapConfig config;
  config.num_pois = 30;
  config.num_workers = 2;
  config.num_stations = 2;
  config.num_obstacles = 2;
  Rng rng(seed);
  auto result = env::GenerateMap(config, rng);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TrainerConfig TinyConfig(IntrinsicMode intrinsic) {
  TrainerConfig config;
  config.num_employees = 1;
  config.episodes = 2;
  config.batch_size = 16;
  config.update_epochs = 2;
  config.env.horizon = 12;
  config.encoder.grid = 10;
  config.net.grid = 10;
  config.net.conv1_channels = 4;
  config.net.conv2_channels = 4;
  config.net.conv3_channels = 4;
  config.net.feature_dim = 32;
  config.intrinsic = intrinsic;
  config.reward_mode = RewardMode::kSparse;
  config.seed = 3;
  return config;
}

/// One full training run; returns the flattened final global parameters.
std::vector<float> Train(const env::Map& map, IntrinsicMode intrinsic,
                         bool graph, bool ckpt, int pool_threads) {
  setenv("CEWS_NN_GRAPH", graph ? "1" : "0", 1);
  setenv("CEWS_NN_CKPT", ckpt ? "1" : "0", 1);
  runtime::SetGlobalPoolThreads(pool_threads);
  TrainerConfig config = TinyConfig(intrinsic);
  config.net.num_workers = static_cast<int>(map.worker_spawns.size());
  config.net.num_moves = config.env.action_space.num_moves();
  ChiefEmployeeTrainer trainer(config, map);
  trainer.Train();
  std::vector<float> flat = nn::FlattenValues(trainer.global_net().Parameters());
  runtime::SetGlobalPoolThreads(1);
  unsetenv("CEWS_NN_GRAPH");
  unsetenv("CEWS_NN_CKPT");
  return flat;
}

void ExpectBitwise(const std::vector<float>& want,
                   const std::vector<float>& got, const std::string& label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i], got[i]) << label << ": parameter " << i;
  }
}

TEST(GraphEquivalence, CuriosityTrainingBitwiseTapeVsGraph) {
  const env::Map map = SmallMap();
  const std::vector<float> tape =
      Train(map, IntrinsicMode::kSpatialCuriosity, false, false, 1);

  const uint64_t hits0 =
      obs::SnapshotMetrics().CounterValue("nn.graph.cache_hits");
  // 0 resolves to all hardware cores (ResolveNumThreads).
  for (int threads : {0, 1, 2, 4}) {
    const std::vector<float> graph =
        Train(map, IntrinsicMode::kSpatialCuriosity, true, false, threads);
    ExpectBitwise(tape, graph,
                  "curiosity graph, pool=" + std::to_string(threads));
  }
  // The graph runs actually replayed cached graphs (PPO loss + curiosity
  // loss + serve forwards all revisit the same batch shapes).
  EXPECT_GT(obs::SnapshotMetrics().CounterValue("nn.graph.cache_hits"), hits0);
}

TEST(GraphEquivalence, RndTrainingBitwiseTapeVsGraph) {
  const env::Map map = SmallMap(7);
  const std::vector<float> tape =
      Train(map, IntrinsicMode::kRnd, false, false, 1);
  for (int threads : {1, 4}) {
    const std::vector<float> graph =
        Train(map, IntrinsicMode::kRnd, true, false, threads);
    ExpectBitwise(tape, graph, "rnd graph, pool=" + std::to_string(threads));
  }
}

TEST(GraphEquivalence, CheckpointBitwise) {
  // Checkpointed replay recomputes the conv-trunk segments during backward;
  // the canonical creation-order backward makes that bitwise-identical to
  // the keep-everything plan, not merely close.
  const env::Map map = SmallMap();
  const std::vector<float> graph =
      Train(map, IntrinsicMode::kSpatialCuriosity, true, false, 1);
  const std::vector<float> ckpt =
      Train(map, IntrinsicMode::kSpatialCuriosity, true, true, 1);
  ExpectBitwise(graph, ckpt, "ckpt");
}

}  // namespace
}  // namespace cews::agents
