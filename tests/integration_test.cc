// Cross-module integration: the DrlCews façade, the algorithm registry, and
// checkpoint round-trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/algorithms.h"
#include "core/drl_cews.h"
#include "core/scenarios.h"
#include "core/training_log.h"
#include "core/visualize.h"
#include "env/map_io.h"
#include "env/state_encoder.h"

namespace cews::core {
namespace {

env::Map TestMap(uint64_t seed = 21) {
  env::MapConfig config;
  config.num_pois = 50;
  config.num_workers = 2;
  config.num_stations = 3;
  Rng rng(seed);
  auto result = env::GenerateMap(config, rng);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

agents::TrainerConfig TinyConfig() {
  agents::TrainerConfig config = DrlCews::DefaultConfig();
  config.num_employees = 2;
  config.episodes = 4;
  config.batch_size = 16;
  config.update_epochs = 2;
  config.env.horizon = 20;
  config.encoder.grid = 10;
  config.net.grid = 10;
  config.net.conv1_channels = 4;
  config.net.conv2_channels = 4;
  config.net.conv3_channels = 4;
  config.net.feature_dim = 32;
  config.seed = 2;
  return config;
}

TEST(DrlCewsTest, DefaultConfigIsThePaperSetup) {
  const agents::TrainerConfig config = DrlCews::DefaultConfig();
  EXPECT_EQ(config.reward_mode, agents::RewardMode::kSparse);
  EXPECT_EQ(config.intrinsic, agents::IntrinsicMode::kSpatialCuriosity);
  EXPECT_EQ(config.curiosity.feature, agents::CuriosityFeature::kEmbedding);
  EXPECT_EQ(config.curiosity.structure,
            agents::CuriosityStructure::kShared);
  EXPECT_FLOAT_EQ(config.curiosity.eta, 0.3f);
  EXPECT_EQ(config.num_employees, 8);
  EXPECT_EQ(config.batch_size, 250);
  // Section VII-A environment constants.
  EXPECT_DOUBLE_EQ(config.env.initial_energy, 40.0);
  EXPECT_DOUBLE_EQ(config.env.sensing_range, 0.8);
  EXPECT_DOUBLE_EQ(config.env.collection_rate, 0.2);
  EXPECT_DOUBLE_EQ(config.env.alpha, 1.0);
  EXPECT_DOUBLE_EQ(config.env.beta, 0.1);
  EXPECT_DOUBLE_EQ(config.env.charge_range, 0.8);
  EXPECT_DOUBLE_EQ(config.env.epsilon1, 0.05);
  EXPECT_DOUBLE_EQ(config.env.epsilon2, 0.40);
}

TEST(DrlCewsTest, TrainEvaluateRoundTrip) {
  DrlCews system(TinyConfig(), TestMap());
  const agents::TrainResult train = system.Train();
  EXPECT_EQ(train.history.size(), 4u);
  const agents::EvalResult eval = system.Evaluate(/*episodes=*/2);
  EXPECT_GE(eval.kappa, 0.0);
  EXPECT_LE(eval.kappa, 1.0 + 1e-9);
  EXPECT_GE(eval.rho, 0.0);
}

TEST(DrlCewsTest, CheckpointRoundTripPreservesPolicy) {
  const env::Map map = TestMap();
  const std::string path = ::testing::TempDir() + "/cews_ckpt_test.bin";
  agents::TrainerConfig config = TinyConfig();

  DrlCews a(config, map);
  a.Train();
  ASSERT_TRUE(a.SaveCheckpoint(path).ok());

  config.seed = 777;  // different init; must be overwritten by the load
  DrlCews b(config, map);
  ASSERT_TRUE(b.LoadCheckpoint(path).ok());

  // Identical policies: same deterministic evaluation.
  const agents::EvalResult ea = a.Evaluate(1, /*deterministic=*/true);
  const agents::EvalResult eb = b.Evaluate(1, /*deterministic=*/true);
  EXPECT_DOUBLE_EQ(ea.kappa, eb.kappa);
  EXPECT_DOUBLE_EQ(ea.xi, eb.xi);
  std::remove(path.c_str());
}

TEST(DrlCewsTest, ExportsHeatmapCsv) {
  agents::TrainerConfig config = TinyConfig();
  config.heatmap_snapshot_every = 2;
  DrlCews system(config, TestMap());
  system.Train();
  const std::string path = ::testing::TempDir() + "/cews_heatmap_test.csv";
  ASSERT_TRUE(system.ExportHeatmapCsv(path).ok());
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "episode,cell_y,cell_x,curiosity");
  std::string row;
  EXPECT_TRUE(static_cast<bool>(std::getline(in, row)));  // at least one cell
  std::remove(path.c_str());
}

TEST(DrlCewsTest, ExportsTrajectoryCsv) {
  DrlCews system(TinyConfig(), TestMap());
  const std::string path = ::testing::TempDir() + "/cews_traj_test.csv";
  ASSERT_TRUE(system.ExportTrajectoryCsv(path).ok());
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "worker,t,x,y");
  int rows = 0;
  std::string row;
  while (std::getline(in, row)) ++rows;
  // 2 workers x (horizon + 1 spawn points).
  EXPECT_EQ(rows, 2 * 21);
  std::remove(path.c_str());
}

TEST(FullPipelineTest, MapFileToTrainedPolicyToArtifacts) {
  // The whole user journey: persist a scenario, reload it, train, write a
  // checkpoint + history + SVG, reload the checkpoint, evaluate.
  const std::string dir = ::testing::TempDir();
  const std::string map_path = dir + "/pipeline.map";
  const std::string ckpt_path = dir + "/pipeline.ckpt";
  const std::string history_path = dir + "/pipeline_history.csv";
  const std::string svg_path = dir + "/pipeline.svg";

  // 1. Scenario -> disk -> back.
  auto scenario = core::MakeScenario(core::Scenario::kEarthquakeSite, 40, 2,
                                     3, 77);
  ASSERT_TRUE(scenario.ok());
  ASSERT_TRUE(env::SaveMap(*scenario, map_path).ok());
  auto map_or = env::LoadMap(map_path);
  ASSERT_TRUE(map_or.ok());
  const env::Map map = std::move(map_or).value();

  // 2. Train (tiny) and export artifacts.
  agents::TrainerConfig config = TinyConfig();
  core::DrlCews system(config, map);
  const agents::TrainResult train = system.Train();
  ASSERT_TRUE(system.SaveCheckpoint(ckpt_path).ok());
  ASSERT_TRUE(core::WriteHistoryCsv(train.history, history_path).ok());

  env::Env env(config.env, map);
  env::StateEncoder encoder(config.encoder);
  Rng rng(5);
  agents::EvaluatePolicy(system.net(), env, encoder, rng);
  ASSERT_TRUE(
      core::WriteTrajectorySvg(map, env.trajectories(), svg_path).ok());

  // 3. A fresh system restores the exact policy from the checkpoint.
  config.seed = 31337;
  core::DrlCews restored(config, map);
  ASSERT_TRUE(restored.LoadCheckpoint(ckpt_path).ok());
  const agents::EvalResult a = system.Evaluate(1, /*deterministic=*/true);
  const agents::EvalResult b = restored.Evaluate(1, /*deterministic=*/true);
  EXPECT_DOUBLE_EQ(a.kappa, b.kappa);

  for (const std::string& path :
       {map_path, ckpt_path, history_path, svg_path}) {
    std::remove(path.c_str());
  }
}

TEST(AlgorithmsTest, NamesAndEnumeration) {
  EXPECT_EQ(AlgorithmName(Algorithm::kDrlCews), "DRL-CEWS");
  EXPECT_EQ(AlgorithmName(Algorithm::kGreedy), "Greedy");
  EXPECT_EQ(AlgorithmName(Algorithm::kDnc), "D&C");
  EXPECT_EQ(AllAlgorithms().size(), 5u);
}

TEST(AlgorithmsTest, PlannerAlgorithmsRun) {
  const env::Map map = TestMap();
  env::EnvConfig env_config;
  env_config.horizon = 30;
  BenchmarkOptions options;
  for (const Algorithm algorithm : {Algorithm::kGreedy, Algorithm::kDnc}) {
    const agents::EvalResult r =
        RunAlgorithm(algorithm, map, env_config, options);
    EXPECT_GE(r.kappa, 0.0) << AlgorithmName(algorithm);
    EXPECT_LE(r.kappa, 1.0 + 1e-9);
    EXPECT_LE(r.xi, 1.0 + 1e-9);
  }
}

TEST(AlgorithmsTest, DrlAlgorithmsRunScaledDown) {
  const env::Map map = TestMap();
  env::EnvConfig env_config;
  env_config.horizon = 15;
  BenchmarkOptions options;
  options.episodes = 2;
  options.num_employees = 1;
  options.batch_size = 8;
  options.update_epochs = 1;
  options.eval_episodes = 1;
  options.grid = 10;
  options.net.conv1_channels = 4;
  options.net.conv2_channels = 4;
  options.net.conv3_channels = 4;
  options.net.feature_dim = 32;
  for (const Algorithm algorithm :
       {Algorithm::kDrlCews, Algorithm::kDppo, Algorithm::kEdics}) {
    const agents::EvalResult r =
        RunAlgorithm(algorithm, map, env_config, options);
    EXPECT_GE(r.kappa, 0.0) << AlgorithmName(algorithm);
    EXPECT_LE(r.kappa, 1.0 + 1e-9);
  }
}

TEST(AlgorithmsTest, MakeTrainerConfigDistinguishesModes) {
  env::EnvConfig env_config;
  BenchmarkOptions options;
  const agents::TrainerConfig cews =
      MakeTrainerConfig(Algorithm::kDrlCews, env_config, options);
  EXPECT_EQ(cews.reward_mode, agents::RewardMode::kSparse);
  EXPECT_EQ(cews.intrinsic, agents::IntrinsicMode::kSpatialCuriosity);
  const agents::TrainerConfig dppo =
      MakeTrainerConfig(Algorithm::kDppo, env_config, options);
  EXPECT_EQ(dppo.reward_mode, agents::RewardMode::kDense);
  EXPECT_EQ(dppo.intrinsic, agents::IntrinsicMode::kNone);
  // Bench options override the paper's 8/250 for scaled-down runs.
  EXPECT_EQ(dppo.num_employees, options.num_employees);
  EXPECT_EQ(dppo.batch_size, options.batch_size);
}

}  // namespace
}  // namespace cews::core
