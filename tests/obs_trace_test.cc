#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace cews::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClearTraceForTest();
    SetTraceEnabled(true);
  }
  void TearDown() override {
    SetTraceEnabled(false);
    ClearTraceForTest();
  }
};

/// Minimal structural JSON check: balanced braces/brackets outside strings.
bool BalancedJson(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

TEST_F(TraceTest, RecordsNamedSpan) {
  { CEWS_TRACE_SCOPE("unit.test_span"); }
  const std::vector<CollectedSpan> spans = CollectSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "unit.test_span");
}

TEST_F(TraceTest, NestedSpansBothRecordedAndParentCoversChild) {
  {
    CEWS_TRACE_SCOPE("unit.outer");
    CEWS_TRACE_SCOPE("unit.inner");
  }
  std::vector<CollectedSpan> spans = CollectSpans();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by start time: outer opened first.
  EXPECT_STREQ(spans[0].name, "unit.outer");
  EXPECT_STREQ(spans[1].name, "unit.inner");
  EXPECT_LE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_GE(spans[0].start_ns + spans[0].dur_ns,
            spans[1].start_ns + spans[1].dur_ns);
}

TEST_F(TraceTest, DisabledTracingRecordsNothing) {
  SetTraceEnabled(false);
  { CEWS_TRACE_SCOPE("unit.invisible"); }
  EXPECT_TRUE(CollectSpans().empty());
}

TEST_F(TraceTest, SpanConstructedWhileDisabledStaysUnrecorded) {
  SetTraceEnabled(false);
  {
    CEWS_TRACE_SCOPE("unit.late_enable");
    SetTraceEnabled(true);  // enabling mid-span must not record it
  }
  EXPECT_TRUE(CollectSpans().empty());
}

TEST_F(TraceTest, ThreadsGetDistinctTids) {
  { CEWS_TRACE_SCOPE("unit.main_thread"); }
  std::thread other([]() { CEWS_TRACE_SCOPE("unit.other_thread"); });
  other.join();
  const std::vector<CollectedSpan> spans = CollectSpans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].tid, spans[1].tid);
}

TEST_F(TraceTest, ChromeJsonRoundTrip) {
  {
    CEWS_TRACE_SCOPE("unit.a");
    CEWS_TRACE_SCOPE("unit.b");
  }
  const std::string json = SpansToChromeJson(CollectSpans());
  EXPECT_TRUE(BalancedJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"unit.a\""), std::string::npos);
  EXPECT_NE(json.find("\"unit.b\""), std::string::npos);
  // Complete-event fields of the trace_event format.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\""), std::string::npos);
}

TEST_F(TraceTest, EmptyTraceIsValidJson) {
  const std::string json = SpansToChromeJson(CollectSpans());
  EXPECT_TRUE(BalancedJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST_F(TraceTest, ManySpansAcrossThreadsAllCollected) {
  constexpr int kThreads = 4;
  constexpr int kSpans = 500;  // well under the ring capacity
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([]() {
      for (int i = 0; i < kSpans; ++i) {
        CEWS_TRACE_SCOPE("unit.bulk");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(CollectSpans().size(),
            static_cast<size_t>(kThreads) * kSpans);
}

TEST_F(TraceTest, CollectIsSortedByStartTime) {
  for (int i = 0; i < 10; ++i) {
    CEWS_TRACE_SCOPE("unit.seq");
  }
  const std::vector<CollectedSpan> spans = CollectSpans();
  ASSERT_EQ(spans.size(), 10u);
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LE(spans[i - 1].start_ns, spans[i].start_ns);
  }
}

}  // namespace
}  // namespace cews::obs
