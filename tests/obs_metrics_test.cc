#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace cews::obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::Global().ResetForTest(); }
};

TEST_F(MetricsTest, CounterAccumulatesAcrossThreads) {
  Counter* c = GetCounter("test.counter");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c]() {
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  // The worker threads have exited: their shards are folded into the
  // retired accumulator and the total must still be exact.
  EXPECT_EQ(SnapshotMetrics().CounterValue("test.counter"),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST_F(MetricsTest, CounterVisibleWhileOwnerThreadStillRuns) {
  Counter* c = GetCounter("test.live");
  std::atomic<bool> wrote{false}, release{false};
  std::thread writer([&]() {
    c->Add(7);
    wrote.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!wrote.load()) std::this_thread::yield();
  EXPECT_EQ(SnapshotMetrics().CounterValue("test.live"), 7u);
  release.store(true);
  writer.join();
}

TEST_F(MetricsTest, GetReturnsSamePointerForSameName) {
  EXPECT_EQ(GetCounter("test.same"), GetCounter("test.same"));
  EXPECT_EQ(GetGauge("test.g"), GetGauge("test.g"));
  EXPECT_EQ(GetHistogram("test.h"), GetHistogram("test.h"));
}

TEST_F(MetricsTest, GaugeLastWriteWins) {
  Gauge* g = GetGauge("test.gauge");
  g->Set(1.5);
  g->Set(-2.25);
  EXPECT_DOUBLE_EQ(g->Get(), -2.25);
  EXPECT_DOUBLE_EQ(SnapshotMetrics().GaugeValue("test.gauge"), -2.25);
}

TEST_F(MetricsTest, HistogramBucketsCountAndSum) {
  Histogram* h = GetHistogram("test.hist");
  // 0 and 1 land in bucket 0; 2,3 in bucket 1; 1024 in bucket 10.
  h->Record(0);
  h->Record(1);
  h->Record(2);
  h->Record(3);
  h->Record(1024);
  const MetricsSnapshot snap = SnapshotMetrics();
  const HistogramSnapshot* hs = snap.FindHistogram("test.hist");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 5u);
  EXPECT_EQ(hs->sum, 1030u);
  EXPECT_EQ(hs->buckets[0], 2u);
  EXPECT_EQ(hs->buckets[1], 2u);
  EXPECT_EQ(hs->buckets[10], 1u);
  EXPECT_DOUBLE_EQ(hs->Mean(), 1030.0 / 5.0);
}

TEST_F(MetricsTest, HistogramClampsOverflowIntoLastBucket) {
  Histogram* h = GetHistogram("test.huge");
  h->Record(~uint64_t{0});
  const MetricsSnapshot snap = SnapshotMetrics();
  const HistogramSnapshot* hs = snap.FindHistogram("test.huge");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->buckets[kHistogramBuckets - 1], 1u);
}

TEST_F(MetricsTest, HistogramConcurrentRecordsExact) {
  Histogram* h = GetHistogram("test.conc");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h]() {
      for (int i = 0; i < kPerThread; ++i) {
        h->Record(static_cast<uint64_t>(i % 128));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const MetricsSnapshot snap = SnapshotMetrics();
  const HistogramSnapshot* hs = snap.FindHistogram("test.conc");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t b : hs->buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, hs->count);
}

TEST_F(MetricsTest, PercentileInterpolatesWithinWinningBucket) {
  Histogram* h = GetHistogram("test.pct");
  for (int i = 0; i < 99; ++i) h->Record(10);    // bucket 3: [8, 16)
  h->Record(100000);                             // far-right outlier
  const MetricsSnapshot snap = SnapshotMetrics();
  const HistogramSnapshot* hs = snap.FindHistogram("test.pct");
  ASSERT_NE(hs, nullptr);
  // p50 lands in bucket 3 with 99/100 of the mass: target = 50 samples,
  // fraction 50/99 through [8, 16) -> 8 + floor(8 * 50/99) = 12 — inside
  // the bucket, not its upper bound (the old behavior returned 16).
  EXPECT_EQ(hs->Percentile(0.5), 12u);
  EXPECT_GE(hs->Percentile(0.5), 8u);
  EXPECT_LT(hs->Percentile(0.5), 16u);
  // p999 picks the outlier's bucket [65536, 131072) and interpolates 90%
  // through it: 65536 + floor(65536 * 0.9) = 124518.
  EXPECT_EQ(hs->Percentile(0.999), 124518u);
}

TEST_F(MetricsTest, PercentileOfUniformSpreadTracksTrueQuantile) {
  Histogram* h = GetHistogram("test.pct_uniform");
  // 64 samples spread evenly through bucket 6 ([64, 128)).
  for (int i = 0; i < 64; ++i) h->Record(static_cast<uint64_t>(64 + i));
  const MetricsSnapshot snap = SnapshotMetrics();
  const HistogramSnapshot* hs = snap.FindHistogram("test.pct_uniform");
  ASSERT_NE(hs, nullptr);
  // Interpolation is exact for uniform in-bucket mass: p25 -> 64 + 16.
  EXPECT_EQ(hs->Percentile(0.25), 80u);
  EXPECT_EQ(hs->Percentile(0.5), 96u);
  EXPECT_EQ(hs->Percentile(1.0), 128u);  // clamped to the bucket top
}

TEST_F(MetricsTest, PercentileSkipsEmptyBucketsBelowTarget) {
  Histogram* h = GetHistogram("test.pct_sparse");
  h->Record(2);       // bucket 1
  h->Record(1 << 20);  // bucket 20
  const MetricsSnapshot snap = SnapshotMetrics();
  const HistogramSnapshot* hs = snap.FindHistogram("test.pct_sparse");
  ASSERT_NE(hs, nullptr);
  // p99 must land inside bucket 20, not in one of the empty buckets
  // between the two samples.
  EXPECT_GE(hs->Percentile(0.99), uint64_t{1} << 20);
  EXPECT_LT(hs->Percentile(0.99), uint64_t{1} << 21);
}

TEST_F(MetricsTest, RetiredFoldingSurvivesThreadChurn) {
  // The open-loop load generator spawns short-lived submit threads per run;
  // every one of their shards must fold into the retired accumulator on
  // exit. Interleave spawn/join waves with snapshots to catch totals that
  // go missing (or double-count) across the live -> retired transition.
  Counter* c = GetCounter("test.churn.counter");
  Histogram* h = GetHistogram("test.churn.hist");
  constexpr int kWaves = 8;
  constexpr int kThreadsPerWave = 6;
  constexpr int kPerThread = 1000;
  uint64_t expected = 0;
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreadsPerWave; ++t) {
      threads.emplace_back([c, h]() {
        for (int i = 0; i < kPerThread; ++i) {
          c->Increment();
          h->Record(static_cast<uint64_t>(i % 64));
        }
      });
    }
    for (std::thread& t : threads) t.join();
    expected += static_cast<uint64_t>(kThreadsPerWave) * kPerThread;
    // All of this wave's threads have exited; totals must be exact NOW,
    // not just at the end.
    const MetricsSnapshot snap = SnapshotMetrics();
    EXPECT_EQ(snap.CounterValue("test.churn.counter"), expected);
    const HistogramSnapshot* hs = snap.FindHistogram("test.churn.hist");
    ASSERT_NE(hs, nullptr);
    EXPECT_EQ(hs->count, expected);
    uint64_t bucket_total = 0;
    for (uint64_t b : hs->buckets) bucket_total += b;
    EXPECT_EQ(bucket_total, expected);
  }
}

TEST_F(MetricsTest, SnapshotIsNameSortedAndDeterministic) {
  GetCounter("zz.last")->Add(1);
  GetCounter("aa.first")->Add(2);
  GetCounter("mm.mid")->Add(3);
  const MetricsSnapshot a = SnapshotMetrics();
  // ResetForTest zeroes values but keeps names registered by earlier tests,
  // so assert relative order rather than exact positions.
  ptrdiff_t first = -1, mid = -1, last = -1;
  for (size_t i = 0; i < a.counters.size(); ++i) {
    if (a.counters[i].name == "aa.first") first = static_cast<ptrdiff_t>(i);
    if (a.counters[i].name == "mm.mid") mid = static_cast<ptrdiff_t>(i);
    if (a.counters[i].name == "zz.last") last = static_cast<ptrdiff_t>(i);
  }
  ASSERT_GE(first, 0);
  ASSERT_GE(mid, 0);
  ASSERT_GE(last, 0);
  EXPECT_LT(first, mid);
  EXPECT_LT(mid, last);
  for (size_t i = 1; i < a.counters.size(); ++i) {
    EXPECT_LT(a.counters[i - 1].name, a.counters[i].name);
  }
  // Identical state must serialize identically (snapshot determinism).
  EXPECT_EQ(a.ToJson(), SnapshotMetrics().ToJson());
  EXPECT_EQ(a.ToCsv(), SnapshotMetrics().ToCsv());
}

TEST_F(MetricsTest, JsonContainsAllSections) {
  GetCounter("j.c")->Add(5);
  GetGauge("j.g")->Set(1.5);
  GetHistogram("j.h")->Record(3);
  const std::string json = SnapshotMetrics().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"j.c\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"j.h\""), std::string::npos);
}

TEST_F(MetricsTest, ProfileTableIncludesDurationCountersWithCalls) {
  GetCounter("prof.kernel.calls")->Add(4);
  GetCounter("prof.kernel.fwd_ns")->Add(8000);
  GetHistogram("prof.phase_ns")->Record(2000);
  const std::string profile = ProfileTable().ToString();
  EXPECT_NE(profile.find("prof.kernel.fwd_ns"), std::string::npos);
  EXPECT_NE(profile.find("prof.phase_ns"), std::string::npos);
  // The counter row picks up its sibling ".calls" count.
  EXPECT_NE(profile.find("4"), std::string::npos);
}

TEST_F(MetricsTest, ResetForTestZeroesEverything) {
  GetCounter("r.c")->Add(9);
  GetGauge("r.g")->Set(3.0);
  GetHistogram("r.h")->Record(7);
  Registry::Global().ResetForTest();
  const MetricsSnapshot snap = SnapshotMetrics();
  EXPECT_EQ(snap.CounterValue("r.c"), 0u);
  EXPECT_DOUBLE_EQ(snap.GaugeValue("r.g"), 0.0);
  const HistogramSnapshot* hs = snap.FindHistogram("r.h");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 0u);
}

}  // namespace
}  // namespace cews::obs
