#include "serve/fleet.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "agents/eval.h"
#include "agents/policy_net.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/status.h"
#include "nn/params.h"
#include "obs/metrics.h"
#include "serve/loadgen.h"
#include "serve/router.h"

namespace cews::serve {
namespace {

/// Small net matching the default 17-move action space; grid 8 keeps the
/// forward cheap enough for sanitizer runs.
agents::PolicyNetConfig TinyNet() {
  agents::PolicyNetConfig net;
  net.in_channels = 3;
  net.grid = 8;
  net.num_workers = 2;
  net.num_moves = 17;
  net.conv1_channels = 4;
  net.conv2_channels = 4;
  net.conv3_channels = 4;
  net.feature_dim = 32;
  return net;
}

FleetConfig TinyFleet(int shards) {
  FleetConfig config;
  config.net = TinyNet();
  config.num_shards = shards;
  config.threads_per_shard = 1;
  config.max_batch = 4;
  config.max_queue_delay_us = 100;
  config.runtime_threads = 1;
  config.seed = 11;
  return config;
}

std::unique_ptr<Fleet> MakeFleet(const FleetConfig& config) {
  Result<std::unique_ptr<Fleet>> fleet = Fleet::Create(config);
  CEWS_CHECK(fleet.ok()) << fleet.status().ToString();
  return std::move(fleet).value();
}

/// 10x10 two-worker map (matches TinyNet().num_workers).
env::Map TinyMap() {
  env::Map map;
  map.config.size_x = 10.0;
  map.config.size_y = 10.0;
  map.config.hard_corner = false;
  map.pois = {env::Poi{{3.0, 3.0}, 1.0}, env::Poi{{7.0, 6.0}, 1.0}};
  map.stations = {env::ChargingStation{{1.0, 1.0}}};
  map.worker_spawns = {{2.0, 2.0}, {8.0, 8.0}};
  return map;
}

/// An arbitrary (but fixed) pre-encoded state for TinyNet.
std::vector<float> FixedState() {
  std::vector<float> state(3 * 8 * 8);
  for (size_t i = 0; i < state.size(); ++i) {
    state[i] = 0.01f * static_cast<float>(i % 37);
  }
  return state;
}

TEST(FleetTest, CreateValidatesConfig) {
  {
    FleetConfig config = TinyFleet(0);
    EXPECT_EQ(Fleet::Create(config).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    FleetConfig config = TinyFleet(65);  // past the per-shard-metrics bound
    EXPECT_EQ(Fleet::Create(config).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    FleetConfig config = TinyFleet(1);
    config.threads_per_shard = 0;
    EXPECT_EQ(Fleet::Create(config).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    FleetConfig config = TinyFleet(1);
    config.scenarios = {};
    EXPECT_EQ(Fleet::Create(config).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    FleetConfig config = TinyFleet(1);
    config.scenarios = {"a", "a"};
    EXPECT_EQ(Fleet::Create(config).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    FleetConfig config = TinyFleet(1);
    config.scenarios = {""};
    EXPECT_EQ(Fleet::Create(config).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    FleetConfig config = TinyFleet(1);
    config.max_queue_depth = -1;
    EXPECT_EQ(Fleet::Create(config).status().code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(FleetTest, ServesAndReportsOwningShard) {
  std::unique_ptr<Fleet> fleet = MakeFleet(TinyFleet(3));
  for (uint64_t client = 0; client < 24; ++client) {
    ScheduleRequest request;
    request.client_id = client;
    request.state = FixedState();
    const ScheduleResponse response =
        fleet->Submit(std::move(request)).get();
    ASSERT_TRUE(response.ok()) << response.status.ToString();
    EXPECT_EQ(response.shard, fleet->ShardFor(client, ""));
    EXPECT_EQ(response.act.moves.size(), 2u);
    EXPECT_EQ(response.epoch, 0u);
  }
}

TEST(FleetTest, SameClientAlwaysLandsOnSameShard) {
  std::unique_ptr<Fleet> fleet = MakeFleet(TinyFleet(4));
  for (uint64_t client : {0ULL, 7ULL, 123456789ULL, 0xFFFFFFFFFFFFULL}) {
    const int expected = fleet->ShardFor(client, "");
    for (int repeat = 0; repeat < 8; ++repeat) {
      ScheduleRequest request;
      request.client_id = client;
      request.state = FixedState();
      const ScheduleResponse response =
          fleet->Submit(std::move(request)).get();
      ASSERT_TRUE(response.ok()) << response.status.ToString();
      EXPECT_EQ(response.shard, expected) << "client " << client;
    }
  }
}

TEST(FleetTest, RouterSpreadsClientsAcrossShards) {
  const ConsistentHashRouter router(RouterConfig{/*num_shards=*/4});
  std::vector<int> hits(4, 0);
  constexpr int kClients = 20'000;
  for (uint64_t id = 0; id < kClients; ++id) {
    ++hits[static_cast<size_t>(router.ShardFor(id, ""))];
  }
  // Perfect balance is 25% each; with 64 vnodes/shard the ring is uneven
  // but every shard must carry a material share.
  for (int s = 0; s < 4; ++s) {
    EXPECT_GT(hits[static_cast<size_t>(s)], kClients / 10) << "shard " << s;
  }
  // The scenario tag participates in the key: the same population under a
  // different tag lands on a (mostly) different shard assignment.
  int moved = 0;
  for (uint64_t id = 0; id < 1000; ++id) {
    if (router.ShardFor(id, "a") != router.ShardFor(id, "")) ++moved;
  }
  EXPECT_GT(moved, 250);
}

TEST(FleetTest, RouterRemapsMinimallyWhenFleetGrows) {
  // Consistent hashing's point: adding a shard strands only the keys the
  // new shard's vnodes capture (~1/(N+1) of them). Modulo routing would
  // remap ~N/(N+1) — for 4 -> 5 shards, 80%. Assert we stay far below that.
  const ConsistentHashRouter four(RouterConfig{/*num_shards=*/4});
  const ConsistentHashRouter five(RouterConfig{/*num_shards=*/5});
  constexpr int kClients = 20'000;
  int remapped = 0;
  for (uint64_t id = 0; id < kClients; ++id) {
    const int before = four.ShardFor(id, "");
    const int after = five.ShardFor(id, "");
    if (before != after) {
      ++remapped;
      // A key may only move TO the new shard; vnode positions of shards
      // 0..3 are identical in both rings.
      EXPECT_EQ(after, 4) << "client " << id << " moved " << before
                          << " -> " << after;
    }
  }
  EXPECT_LT(remapped, kClients * 2 / 5);  // well below modulo's 80%
  EXPECT_GT(remapped, 0);                 // the new shard does take keys
}

TEST(FleetTest, UnknownScenarioRejectedNotFound) {
  FleetConfig config = TinyFleet(2);
  config.scenarios = {"beijing", "shanghai"};
  std::unique_ptr<Fleet> fleet = MakeFleet(config);

  ScheduleRequest request;
  request.state = FixedState();
  request.scenario = "chengdu";
  const ScheduleResponse response = fleet->Submit(std::move(request)).get();
  EXPECT_EQ(response.status.code(), StatusCode::kNotFound);

  // With two scenarios and no "default" registered, an empty tag is
  // ambiguous and must also be rejected, not silently routed.
  ScheduleRequest untagged;
  untagged.state = FixedState();
  const ScheduleResponse ambiguous =
      fleet->Submit(std::move(untagged)).get();
  EXPECT_EQ(ambiguous.status.code(), StatusCode::kNotFound);

  // Tagged requests serve normally.
  ScheduleRequest tagged;
  tagged.state = FixedState();
  tagged.scenario = "beijing";
  EXPECT_TRUE(fleet->Submit(std::move(tagged)).get().ok());
}

TEST(FleetTest, SaturatedShardShedsImmediatelyInsteadOfQueueing) {
  FleetConfig config = TinyFleet(1);
  config.max_batch = 64;               // size trigger unreachable
  config.max_queue_delay_us = 500'000; // timeout far beyond the submit burst
  config.max_queue_depth = 2;
  std::unique_ptr<Fleet> fleet = MakeFleet(config);

  const uint64_t shed_before =
      obs::SnapshotMetrics().CounterValue("serve.fleet.shed_total");

  // The worker is parked in PopBatch waiting for a flush trigger, so the
  // first two requests sit in the queue and every later one must be shed.
  std::vector<std::future<ScheduleResponse>> accepted;
  for (int i = 0; i < 2; ++i) {
    ScheduleRequest request;
    request.state = FixedState();
    accepted.push_back(fleet->Submit(std::move(request)));
  }
  constexpr int kOverload = 5;
  for (int i = 0; i < kOverload; ++i) {
    ScheduleRequest request;
    request.state = FixedState();
    std::future<ScheduleResponse> future =
        fleet->Submit(std::move(request));
    // Shed is immediate: the future is already resolved when Submit
    // returns — admission control never blocks the caller.
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    const ScheduleResponse response = future.get();
    EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(response.shard, 0);
  }

  // The queue never grew past the admission bound.
  EXPECT_LE(fleet->QueueDepth(0), 2);
  EXPECT_GE(obs::SnapshotMetrics().CounterValue("serve.fleet.shed_total"),
            shed_before + kOverload);

  // The accepted requests are served normally once the delay bound flushes
  // them — shedding rejects new work, it never drops admitted work.
  for (std::future<ScheduleResponse>& future : accepted) {
    EXPECT_TRUE(future.get().ok());
  }
}

TEST(FleetTest, PublishSwapsOneScenarioWithoutPerturbingAnother) {
  FleetConfig config = TinyFleet(2);
  config.scenarios = {"a", "b"};
  std::unique_ptr<Fleet> fleet = MakeFleet(config);

  // Replicate scenario b's epoch-0 net locally and precompute the argmax
  // decision for one fixed state (inference is deterministic, so responses
  // must match bitwise).
  const std::vector<float> state = FixedState();
  Rng rng0(config.seed);
  agents::PolicyNet local(config.net, rng0);
  Rng unused(1);
  const uint8_t kDet = 1;
  const agents::PolicyDecision expected_b =
      agents::DecidePolicyBatch(local, state, 1, unused, &kDet)[0];

  // Hammer scenario a with publishes while deterministic scenario-b
  // clients run; b must keep serving its untouched epoch-0 snapshot.
  Rng pub_rng(20001);
  const agents::PolicyNet net_a(config.net, pub_rng);
  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      CEWS_CHECK(fleet->Publish("a", net_a.Parameters()).ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 30;
  const std::string scenario_b("b");
  std::mutex mu;
  std::vector<ScheduleResponse> responses;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        ScheduleRequest request;
        request.client_id = static_cast<uint64_t>(c);
        request.scenario = scenario_b;
        request.state = state;
        request.deterministic = true;
        ScheduleResponse response = fleet->Submit(std::move(request)).get();
        std::lock_guard<std::mutex> lock(mu);
        responses.push_back(std::move(response));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop.store(true, std::memory_order_relaxed);
  publisher.join();

  ASSERT_EQ(responses.size(),
            static_cast<size_t>(kClients * kRequestsPerClient));
  for (const ScheduleResponse& response : responses) {
    ASSERT_TRUE(response.ok()) << response.status.ToString();
    EXPECT_EQ(response.epoch, 0u);  // b was never republished
    EXPECT_EQ(response.act.value, expected_b.act.value);
    EXPECT_EQ(response.move_logits, expected_b.move_logits);
    EXPECT_EQ(response.charge_logits, expected_b.charge_logits);
    EXPECT_EQ(response.act.moves, expected_b.act.moves);
  }

  // a advanced its own epoch stream the whole time.
  const Result<uint64_t> epoch_a = fleet->Epoch("a");
  ASSERT_TRUE(epoch_a.ok());
  EXPECT_GT(epoch_a.value(), 0u);
  const Result<uint64_t> epoch_b = fleet->Epoch("b");
  ASSERT_TRUE(epoch_b.ok());
  EXPECT_EQ(epoch_b.value(), 0u);
  EXPECT_FALSE(fleet->Epoch("nope").ok());
}

TEST(FleetTest, ConcurrentPerScenarioPublishesUnderLoad) {
  FleetConfig config = TinyFleet(2);
  config.scenarios = {"a", "b"};
  std::unique_ptr<Fleet> fleet = MakeFleet(config);
  const std::vector<float> state = FixedState();

  // One publisher per scenario swapping mid-flight (the TSan acceptance
  // scenario): every response still resolves OK with a sane epoch.
  std::atomic<bool> stop{false};
  std::vector<std::thread> publishers;
  for (const std::string scenario : {"a", "b"}) {
    publishers.emplace_back([&, scenario] {
      Rng rng(scenario == "a" ? 301 : 302);
      const agents::PolicyNet net(config.net, rng);
      while (!stop.load(std::memory_order_relaxed)) {
        CEWS_CHECK(fleet->Publish(scenario, net.Parameters()).ok());
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  std::vector<std::thread> clients;
  std::atomic<int> served{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      const std::string scenario(c % 2 == 0 ? "a" : "b");
      for (int i = 0; i < 25; ++i) {
        ScheduleRequest request;
        request.client_id = static_cast<uint64_t>(c * 1000 + i);
        request.scenario = scenario;
        request.state = state;
        const ScheduleResponse response =
            fleet->Submit(std::move(request)).get();
        CEWS_CHECK(response.ok()) << response.status.ToString();
        served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : publishers) t.join();
  EXPECT_EQ(served.load(), 100);
}

TEST(FleetTest, SubmitAfterStopFailsPrecondition) {
  std::unique_ptr<Fleet> fleet = MakeFleet(TinyFleet(2));
  fleet->Stop();
  ScheduleRequest request;
  request.state = FixedState();
  const ScheduleResponse response = fleet->Submit(std::move(request)).get();
  EXPECT_EQ(response.status.code(), StatusCode::kFailedPrecondition);
  fleet->Stop();  // idempotent
}

TEST(FleetTest, ClosedLoopLoadAcrossShards) {
  std::unique_ptr<Fleet> fleet = MakeFleet(TinyFleet(2));
  LoadSpec spec;
  spec.mode = LoadMode::kClosedLoop;
  spec.clients = 4;
  spec.requests_per_client = 15;
  spec.env.horizon = 30;
  const Result<LoadResult> result = RunLoad(*fleet, TinyMap(), spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().requests, 60u);
  EXPECT_EQ(result.value().errors, 0u);
  EXPECT_EQ(result.value().shed, 0u);
  EXPECT_GT(result.value().throughput_rps, 0.0);
  EXPECT_GE(result.value().latency_p999_us, result.value().latency_p99_us);
}

TEST(FleetTest, OpenLoopLoadWithLargeClientPopulation) {
  std::unique_ptr<Fleet> fleet = MakeFleet(TinyFleet(2));
  LoadSpec spec;
  spec.mode = LoadMode::kOpenLoop;
  spec.clients = 100'000;  // simulated id population, not threads
  spec.arrival_rps = 400.0;
  spec.duration_seconds = 0.25;
  spec.submit_threads = 2;
  spec.env.horizon = 30;
  const Result<LoadResult> result = RunLoad(*fleet, TinyMap(), spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().requests, 0u);
  EXPECT_EQ(result.value().errors, 0u);
  EXPECT_GT(result.value().offered_rps, 0.0);
  if (result.value().latency_p50_us > 0.0) {
    EXPECT_GE(result.value().latency_p99_us, result.value().latency_p50_us);
    EXPECT_GE(result.value().latency_p999_us, result.value().latency_p99_us);
  }
}

TEST(FleetTest, OpenLoopOverloadIsCountedAsShedNotBlocked) {
  FleetConfig config = TinyFleet(1);
  config.max_batch = 64;
  config.max_queue_delay_us = 50'000;  // slow flushes: ~20 batches/s
  config.max_queue_depth = 4;          // tiny admission bound
  std::unique_ptr<Fleet> fleet = MakeFleet(config);

  LoadSpec spec;
  spec.mode = LoadMode::kOpenLoop;
  spec.clients = 1000;
  spec.arrival_rps = 3000.0;  // far beyond what the shard can admit
  spec.duration_seconds = 0.25;
  spec.submit_threads = 2;
  spec.env.horizon = 30;
  const Result<LoadResult> result = RunLoad(*fleet, TinyMap(), spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Overload shows up as counted sheds, and the run finishes on schedule
  // because shed futures resolve immediately (never block the arrivals).
  EXPECT_GT(result.value().shed, 0u);
  EXPECT_EQ(result.value().errors, 0u);
  EXPECT_LT(result.value().wall_seconds, 10.0);
}

TEST(FleetTest, InvalidLoadSpecRejected) {
  std::unique_ptr<Fleet> fleet = MakeFleet(TinyFleet(1));
  LoadSpec spec;
  spec.mode = LoadMode::kOpenLoop;
  spec.arrival_rps = 0.0;
  EXPECT_EQ(RunLoad(*fleet, TinyMap(), spec).status().code(),
            StatusCode::kInvalidArgument);
  spec.arrival_rps = 100.0;
  spec.duration_seconds = -1.0;
  EXPECT_EQ(RunLoad(*fleet, TinyMap(), spec).status().code(),
            StatusCode::kInvalidArgument);
  LoadSpec closed;
  closed.clients = 0;
  EXPECT_EQ(RunLoad(*fleet, TinyMap(), closed).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cews::serve
