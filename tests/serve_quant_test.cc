// Int8 quantized serving: hot-swap correctness and fp32 action agreement.
//
// The hot-swap tests use bias-dominated parameter sets (all GEMM weights
// zero, decisions forced through the fp32-exact dense biases) so the action
// a response carries identifies EXACTLY which published epoch's quantized
// bundle served it: a torn or stale bundle would produce an action that
// contradicts the response's epoch. The agreement harness runs the ISSUE's
// acceptance gate — quantized vs fp32 argmax match rate >= 99% — over
// deterministic rollouts on every core scenario, with head-scaled
// (decisive) nets standing in for trained policies.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "agents/eval.h"
#include "agents/policy_net.h"
#include "agents/quant_policy.h"
#include "common/check.h"
#include "common/rng.h"
#include "core/scenarios.h"
#include "env/env.h"
#include "env/state_encoder.h"
#include "nn/quant.h"
#include "serve/fleet.h"
#include "serve/server.h"

namespace cews::serve {
namespace {

agents::PolicyNetConfig TinyNet() {
  agents::PolicyNetConfig net;
  net.in_channels = 3;
  net.grid = 8;
  net.num_workers = 2;
  net.num_moves = 17;
  net.conv1_channels = 4;
  net.conv2_channels = 4;
  net.conv3_channels = 4;
  net.feature_dim = 32;
  return net;
}

std::vector<float> FixedState(const agents::PolicyNetConfig& net) {
  std::vector<float> state(
      static_cast<size_t>(net.in_channels * net.grid * net.grid));
  for (size_t i = 0; i < state.size(); ++i) {
    state[i] = 0.01f * static_cast<float>(i % 37);
  }
  return state;
}

/// A parameter set whose argmax decisions are forced by the head BIASES
/// (dense fp32 in the quantized bundle, hence exact): every GEMM-fed head
/// weight is zeroed, the move bias picks `move_target` for every worker and
/// the charge bias picks `charge_target`. The trunk stays random — its
/// output is irrelevant once the head weights are zero.
std::vector<nn::Tensor> BiasForcedParams(const agents::PolicyNetConfig& cfg,
                                         uint64_t seed, int move_target,
                                         int charge_target) {
  Rng rng(seed);
  const agents::PolicyNet net(cfg, rng);
  std::vector<nn::Tensor> params = net.Parameters();
  CEWS_CHECK_EQ(params.size(), 20u);
  auto zero = [](nn::Tensor& t) {
    std::fill(t.data(), t.data() + t.numel(), 0.0f);
  };
  zero(params[14]);  // move head W
  zero(params[15]);  // move head b
  zero(params[16]);  // charge head W
  zero(params[17]);  // charge head b
  for (int w = 0; w < cfg.num_workers; ++w) {
    params[15].data()[w * cfg.num_moves + move_target] = 5.0f;
    params[17].data()[w * 2 + charge_target] = 5.0f;
  }
  return params;
}

/// A "trained-looking" net: head weights scaled up 50x post-init so the
/// argmax gaps are decisive, as they are after PPO training — the regime
/// the >= 99% agreement gate is specified for (near-uniform random-init
/// heads have sub-quantization-step logit gaps by construction).
std::unique_ptr<agents::PolicyNet> DecisiveNet(
    const agents::PolicyNetConfig& cfg, uint64_t seed) {
  Rng rng(seed);
  auto net = std::make_unique<agents::PolicyNet>(cfg, rng);
  const std::vector<nn::Tensor> params = net->Parameters();
  for (const size_t head_w : {size_t{14}, size_t{16}, size_t{18}}) {
    nn::Tensor t = params[head_w];
    for (nn::Index i = 0; i < t.numel(); ++i) t.data()[i] *= 50.0f;
  }
  return net;
}

PolicyServerConfig Int8ServerConfig(int threads) {
  PolicyServerConfig config;
  config.net = TinyNet();
  config.num_threads = threads;
  config.max_batch = 4;
  config.max_queue_delay_us = 100;
  config.runtime_threads = 1;
  config.seed = 11;
  config.precision = Precision::kInt8;
  return config;
}

TEST(PrecisionTest, ParseAndName) {
  EXPECT_EQ(ParsePrecision("fp32").value(), Precision::kFp32);
  EXPECT_EQ(ParsePrecision("int8").value(), Precision::kInt8);
  EXPECT_FALSE(ParsePrecision("bf16").ok());
  EXPECT_STREQ(PrecisionName(Precision::kFp32), "fp32");
  EXPECT_STREQ(PrecisionName(Precision::kInt8), "int8");
}

TEST(QuantServeTest, Int8ShardRequiresQuantizedRegistry) {
  PolicyServerConfig config = Int8ServerConfig(1);
  Rng rng(3);
  const agents::PolicyNet net(config.net, rng);
  auto fp32_only = std::make_shared<ScenarioRegistry>(
      std::vector<std::string>{ScenarioRegistry::kDefaultScenario},
      net.Parameters(), /*quantize=*/false);
  const Result<std::unique_ptr<PolicyServer>> server =
      PolicyServer::Create(config, fp32_only);
  EXPECT_FALSE(server.ok());
}

TEST(QuantServeTest, HotSwapServesNewQuantizedWeights) {
  const PolicyServerConfig config = Int8ServerConfig(/*threads=*/2);
  Result<std::unique_ptr<PolicyServer>> created =
      PolicyServer::Create(config);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<PolicyServer> server = std::move(created).value();

  ASSERT_TRUE(server
                  ->Publish(BiasForcedParams(config.net, 7, /*move=*/3,
                                             /*charge=*/1))
                  .ok());
  ScheduleRequest request;
  request.state = FixedState(config.net);
  request.deterministic = true;
  ScheduleResponse response = server->Submit(std::move(request)).get();
  ASSERT_TRUE(response.ok()) << response.status.ToString();
  EXPECT_EQ(response.epoch, 1u);
  for (const int move : response.act.moves) EXPECT_EQ(move, 3);
  for (const int charge : response.act.charges) EXPECT_EQ(charge, 1);

  // Second publish: the very next response must serve the NEW bundle.
  ASSERT_TRUE(server
                  ->Publish(BiasForcedParams(config.net, 9, /*move=*/7,
                                             /*charge=*/0))
                  .ok());
  ScheduleRequest second;
  second.state = FixedState(config.net);
  second.deterministic = true;
  response = server->Submit(std::move(second)).get();
  ASSERT_TRUE(response.ok()) << response.status.ToString();
  EXPECT_EQ(response.epoch, 2u);
  for (const int move : response.act.moves) EXPECT_EQ(move, 7);
  for (const int charge : response.act.charges) EXPECT_EQ(charge, 0);
}

TEST(QuantServeTest, ConcurrentPublishesNeverServeTornBundles) {
  const PolicyServerConfig config = Int8ServerConfig(/*threads=*/3);
  Result<std::unique_ptr<PolicyServer>> created =
      PolicyServer::Create(config);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<PolicyServer> server = std::move(created).value();

  // Odd epochs serve move 3 / charge 1, even epochs move 7 / charge 0.
  const std::vector<nn::Tensor> odd =
      BiasForcedParams(config.net, 7, /*move=*/3, /*charge=*/1);
  const std::vector<nn::Tensor> even =
      BiasForcedParams(config.net, 9, /*move=*/7, /*charge=*/0);

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    for (int p = 0; p < 40 && !stop.load(); ++p) {
      ASSERT_TRUE(server->Publish(p % 2 == 0 ? odd : even).ok());
      std::this_thread::yield();
    }
    stop.store(true);
  });

  uint64_t last_epoch = 0;
  int served = 0;
  while (!stop.load() || served == 0) {
    ScheduleRequest request;
    request.state = FixedState(config.net);
    request.deterministic = true;
    const ScheduleResponse response =
        server->Submit(std::move(request)).get();
    ASSERT_TRUE(response.ok()) << response.status.ToString();
    if (response.epoch == 0) continue;  // before the first publish landed
    ++served;
    // Epochs move forward for a single client stream...
    EXPECT_GE(response.epoch, last_epoch);
    last_epoch = response.epoch;
    // ...and the served actions must be EXACTLY the publishing epoch's:
    // a torn/stale bundle would mix move targets or disagree with epoch.
    const int want_move = response.epoch % 2 == 1 ? 3 : 7;
    const int want_charge = response.epoch % 2 == 1 ? 1 : 0;
    for (const int move : response.act.moves) EXPECT_EQ(move, want_move);
    for (const int charge : response.act.charges) {
      EXPECT_EQ(charge, want_charge);
    }
  }
  publisher.join();
  EXPECT_GT(served, 0);
}

TEST(QuantServeTest, Int8FleetServesAllScenarios) {
  FleetConfig config;
  config.net = TinyNet();
  config.num_shards = 2;
  config.threads_per_shard = 1;
  config.runtime_threads = 1;
  config.seed = 5;
  config.precision = Precision::kInt8;
  config.scenarios = {"default", "earthquake-site"};
  Result<std::unique_ptr<Fleet>> created = Fleet::Create(config);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  const std::unique_ptr<Fleet> fleet = std::move(created).value();
  EXPECT_EQ(fleet->precision(), Precision::kInt8);
  for (const std::string& scenario : config.scenarios) {
    ScheduleRequest request;
    request.state = FixedState(config.net);
    request.scenario = scenario;
    request.deterministic = true;
    const ScheduleResponse response =
        fleet->Submit(std::move(request)).get();
    ASSERT_TRUE(response.ok())
        << scenario << ": " << response.status.ToString();
    EXPECT_EQ(response.epoch, 0u);
  }
}

TEST(QuantServeTest, AgreementAtLeast99PercentAcrossScenarioSuite) {
  const agents::PolicyNetConfig cfg = TinyNet();
  const std::unique_ptr<agents::PolicyNet> net = DecisiveNet(cfg, 1234);
  const nn::quant::QuantizedParams qp =
      agents::QuantizePolicyParams(net->Parameters());
  const env::StateEncoder encoder(env::StateEncoderConfig{cfg.grid});

  agents::AgreementStats total;
  for (const core::Scenario scenario : core::AllScenarios()) {
    Result<env::Map> map = core::MakeScenario(
        scenario, /*pois=*/12, /*workers=*/cfg.num_workers, /*stations=*/2,
        /*seed=*/99);
    ASSERT_TRUE(map.ok()) << map.status().ToString();
    env::Env env(env::EnvConfig{}, map.value());
    env.Reset();
    // Deterministic rollout under the fp32 policy, scoring agreement on
    // every visited state.
    Rng rollout_rng(7);
    std::vector<float> states;
    int visited = 0;
    for (int step = 0; step < 24 && !env.Done(); ++step) {
      const std::vector<float> state = encoder.Encode(env);
      states.insert(states.end(), state.begin(), state.end());
      ++visited;
      const agents::ActResult act = agents::SamplePolicy(
          *net, state, rollout_rng, /*deterministic=*/true);
      env.Step(act.actions);
    }
    ASSERT_GT(visited, 0) << core::ScenarioName(scenario);
    const agents::AgreementStats stats =
        agents::ActionAgreementOnStates(*net, qp, states, visited);
    // Per-scenario floor: with ~96 decisions per rollout a 99% bar would
    // demand a perfect score (one near-tie argmax flip = 98.96%), so each
    // scenario only guards against collapse; the >= 99% acceptance gate is
    // enforced suite-wide below, where the sample is 4x larger.
    EXPECT_GE(stats.rate(), 0.97)
        << core::ScenarioName(scenario) << ": " << stats.matched << "/"
        << stats.decisions;
    total.decisions += stats.decisions;
    total.matched += stats.matched;
  }
  EXPECT_GE(total.rate(), 0.99)
      << "suite-wide: " << total.matched << "/" << total.decisions;
}

}  // namespace
}  // namespace cews::serve
