#include "common/kv_config.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace cews {
namespace {

TEST(KvConfigTest, ParsesKeysValuesAndComments) {
  auto config_or = KvConfig::Parse(
      "# scenario\n"
      "pois = 200\n"
      "  workers=3\n"
      "name = post earthquake rescue\n"
      "\n"
      "   # trailing comment\n"
      "ratio = 0.25\n");
  ASSERT_TRUE(config_or.ok()) << config_or.status().ToString();
  const KvConfig& config = *config_or;
  EXPECT_EQ(config.size(), 4u);
  EXPECT_EQ(config.GetInt("pois", 0), 200);
  EXPECT_EQ(config.GetInt("workers", 0), 3);
  EXPECT_EQ(config.GetString("name"), "post earthquake rescue");
  EXPECT_DOUBLE_EQ(config.GetDouble("ratio", 0.0), 0.25);
}

TEST(KvConfigTest, FallbacksWhenMissing) {
  const KvConfig config = *KvConfig::Parse("a = 1\n");
  EXPECT_FALSE(config.Has("b"));
  EXPECT_EQ(config.GetInt("b", 7), 7);
  EXPECT_DOUBLE_EQ(config.GetDouble("b", 2.5), 2.5);
  EXPECT_EQ(config.GetString("b", "x"), "x");
  EXPECT_TRUE(config.GetBool("b", true));
}

TEST(KvConfigTest, FallbackOnUnparseableNumbers) {
  const KvConfig config = *KvConfig::Parse("a = not-a-number\nb = 3x\n");
  EXPECT_EQ(config.GetInt("a", -1), -1);
  EXPECT_EQ(config.GetInt("b", -1), -1);
  EXPECT_DOUBLE_EQ(config.GetDouble("a", -2.0), -2.0);
}

TEST(KvConfigTest, BoolSpellings) {
  const KvConfig config = *KvConfig::Parse(
      "a = true\nb = YES\nc = on\nd = 1\ne = false\nf = No\ng = off\n"
      "h = 0\ni = maybe\n");
  EXPECT_TRUE(config.GetBool("a", false));
  EXPECT_TRUE(config.GetBool("b", false));
  EXPECT_TRUE(config.GetBool("c", false));
  EXPECT_TRUE(config.GetBool("d", false));
  EXPECT_FALSE(config.GetBool("e", true));
  EXPECT_FALSE(config.GetBool("f", true));
  EXPECT_FALSE(config.GetBool("g", true));
  EXPECT_FALSE(config.GetBool("h", true));
  EXPECT_TRUE(config.GetBool("i", true));  // fallback
}

TEST(KvConfigTest, DuplicateKeysKeepLast) {
  const KvConfig config = *KvConfig::Parse("a = 1\na = 2\n");
  EXPECT_EQ(config.GetInt("a", 0), 2);
}

TEST(KvConfigTest, ValueMayContainEquals) {
  const KvConfig config = *KvConfig::Parse("expr = y = mx + b\n");
  EXPECT_EQ(config.GetString("expr"), "y = mx + b");
}

TEST(KvConfigTest, RejectsLineWithoutEquals) {
  const auto r = KvConfig::Parse("a = 1\njust words\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(KvConfigTest, RejectsEmptyKey) {
  EXPECT_FALSE(KvConfig::Parse(" = 5\n").ok());
}

TEST(KvConfigTest, LoadFromFile) {
  const std::string path = ::testing::TempDir() + "/cews_kv_test.conf";
  {
    std::ofstream out(path);
    out << "episodes = 42\n";
  }
  auto config_or = KvConfig::Load(path);
  ASSERT_TRUE(config_or.ok());
  EXPECT_EQ(config_or->GetInt("episodes", 0), 42);
  std::remove(path.c_str());
  EXPECT_FALSE(KvConfig::Load(path).ok());
}

}  // namespace
}  // namespace cews
