// The envs_per_employee=1 determinism contract: the vectorized acting path
// must reproduce the pre-vectorization trainers bitwise. Each test
// hand-rolls the legacy single-env employee loop (the exact code the shared
// trainer core replaced) and checks per-episode rewards and final global
// parameters against the refactored trainer.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "agents/async_trainer.h"
#include "agents/chief_employee.h"
#include "agents/eval.h"
#include "agents/ppo.h"
#include "agents/rollout.h"
#include "env/map.h"
#include "env/state_encoder.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "nn/params.h"

namespace cews::agents {
namespace {

env::Map SmallMap(uint64_t seed = 42) {
  env::MapConfig config;
  config.num_pois = 30;
  config.num_workers = 2;
  config.num_stations = 2;
  config.num_obstacles = 2;
  Rng rng(seed);
  auto result = env::GenerateMap(config, rng);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

/// Applies the chief-employee constructor's dependent-dimension autofill so
/// the reference nets match the trainer's exactly.
void AutoFill(TrainerConfig& config, const env::Map& map) {
  config.net.num_workers = static_cast<int>(map.worker_spawns.size());
  config.net.num_moves = config.env.action_space.num_moves();
  config.net.grid = config.encoder.grid;
}

TrainerConfig TinyChiefConfig() {
  TrainerConfig config;
  config.num_employees = 1;
  config.episodes = 3;
  config.batch_size = 16;
  config.update_epochs = 2;
  config.env.horizon = 12;
  config.encoder.grid = 10;
  config.net.grid = 10;
  config.net.conv1_channels = 4;
  config.net.conv2_channels = 4;
  config.net.conv3_channels = 4;
  config.net.feature_dim = 32;
  config.intrinsic = IntrinsicMode::kNone;
  config.reward_mode = RewardMode::kSparse;
  config.seed = 3;
  return config;
}

TEST(VecEquivalenceTest, ChiefTrainerMatchesLegacyLoopBitwise) {
  const env::Map map = SmallMap();
  TrainerConfig config = TinyChiefConfig();
  AutoFill(config, map);

  // ---- Reference: the legacy single-env, single-employee loop ----
  Rng global_rng(config.seed);
  PolicyNet global(config.net, global_rng);
  nn::Adam optimizer(global.Parameters(), config.ppo.lr);
  std::vector<float> grad_buffer(
      static_cast<size_t>(nn::FlatSize(global.Parameters())), 0.0f);

  PpoAgent agent(config.net, config.ppo, config.seed + 1000);
  const env::StateEncoder encoder(config.encoder);
  env::Env env(config.env, map);
  Rng rng(config.seed * 7919);
  RolloutBuffer buffer;
  nn::CopyParameters(global.Parameters(), agent.Parameters());

  std::vector<double> expected_rewards;
  for (int episode = 0; episode < config.episodes; ++episode) {
    env.Reset();
    buffer.Clear();
    double ext_sum = 0.0;
    std::vector<float> state = encoder.Encode(env);
    while (!env.Done()) {
      const ActResult act = agent.Act(state, rng);
      const env::StepResult step = env.Step(act.actions);
      std::vector<float> next_state = encoder.Encode(env);
      const double r_ext = step.sparse_reward;
      Transition t;
      t.state = std::move(state);
      t.moves = act.moves;
      t.charges = act.charges;
      t.log_prob = act.log_prob;
      t.value = act.value;
      t.reward = config.reward_scale * static_cast<float>(r_ext);
      t.done = step.done;
      buffer.Add(std::move(t));
      state = std::move(next_state);
      ext_sum += r_ext;
    }
    buffer.ComputeAdvantages(config.ppo.gamma, config.ppo.gae_lambda, 0.0f);
    expected_rewards.push_back(ext_sum / config.env.horizon);

    const std::vector<nn::Tensor> local_params = agent.Parameters();
    for (int k = 0; k < config.update_epochs; ++k) {
      MiniBatch mb =
          buffer.SampleBatch(static_cast<size_t>(config.batch_size), rng);
      LossStats loss_stats;
      nn::ZeroGradients(local_params);
      nn::Tensor loss = agent.ComputeLoss(std::move(mb), &loss_stats);
      loss.Backward();
      nn::ClipGradByGlobalNorm(local_params, config.ppo.max_grad_norm);
      const std::vector<float> flat = nn::FlattenGradients(local_params);
      for (size_t i = 0; i < flat.size(); ++i) grad_buffer[i] += flat[i];

      // Chief apply (num_employees == 1).
      const std::vector<nn::Tensor> global_params = global.Parameters();
      nn::ZeroGradients(global_params);
      nn::AccumulateFlatGradients(global_params, grad_buffer);
      nn::ClipGradByGlobalNorm(global_params,
                               config.ppo.max_grad_norm *
                                   config.num_employees);
      optimizer.Step();
      std::fill(grad_buffer.begin(), grad_buffer.end(), 0.0f);
      nn::CopyParameters(global.Parameters(), agent.Parameters());
    }
  }

  // ---- The refactored trainer at envs_per_employee = 1 ----
  TrainerConfig vec_config = TinyChiefConfig();
  vec_config.envs_per_employee = 1;
  ChiefEmployeeTrainer trainer(vec_config, map);
  const TrainResult result = trainer.Train();

  ASSERT_EQ(result.history.size(), expected_rewards.size());
  for (size_t e = 0; e < expected_rewards.size(); ++e) {
    EXPECT_DOUBLE_EQ(result.history[e].extrinsic_reward,
                     expected_rewards[e])
        << "episode " << e;
  }
  const std::vector<float> got =
      nn::FlattenValues(trainer.global_net().Parameters());
  const std::vector<float> want = nn::FlattenValues(global.Parameters());
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "parameter " << i;  // bitwise
  }
}

AsyncTrainerConfig TinyAsyncConfig() {
  AsyncTrainerConfig config;
  config.num_employees = 1;
  config.episodes = 3;
  config.env.horizon = 12;
  config.encoder.grid = 10;
  config.net.grid = 10;
  config.net.conv1_channels = 4;
  config.net.conv2_channels = 4;
  config.net.conv3_channels = 4;
  config.net.feature_dim = 32;
  config.seed = 3;
  return config;
}

TEST(VecEquivalenceTest, AsyncTrainerMatchesLegacyLoopBitwise) {
  const env::Map map = SmallMap();
  AsyncTrainerConfig config = TinyAsyncConfig();
  config.net.num_workers = static_cast<int>(map.worker_spawns.size());
  config.net.num_moves = config.env.action_space.num_moves();
  config.net.grid = config.encoder.grid;

  // ---- Reference: the legacy single-env async employee loop ----
  Rng global_rng(config.seed);
  PolicyNet global(config.net, global_rng);
  nn::Adam optimizer(global.Parameters(), config.lr);

  Rng init_rng(config.seed + 5000);
  PolicyNet local(config.net, init_rng);
  const std::vector<nn::Tensor> local_params = local.Parameters();
  const env::StateEncoder encoder(config.encoder);
  env::Env env(config.env, map);
  Rng rng(config.seed * 6131);
  nn::CopyParameters(global.Parameters(), local_params);

  std::vector<double> expected_rewards;
  for (int episode = 0; episode < config.episodes; ++episode) {
    env.Reset();
    RolloutBuffer buffer;
    std::vector<float> state = encoder.Encode(env);
    while (!env.Done()) {
      const ActResult act = SamplePolicy(local, state, rng, false);
      const env::StepResult step = env.Step(act.actions);
      const double r_ext = config.reward_mode == RewardMode::kSparse
                               ? step.sparse_reward
                               : step.dense_reward;
      Transition t;
      t.state = std::move(state);
      t.moves = act.moves;
      t.charges = act.charges;
      t.log_prob = act.log_prob;
      t.value = act.value;
      t.reward = config.reward_scale * static_cast<float>(r_ext);
      t.done = step.done;
      buffer.Add(std::move(t));
      state = encoder.Encode(env);
    }
    MiniBatch mb = buffer.PackAll();
    const size_t t_max = static_cast<size_t>(mb.batch);
    nn::CopyParameters(global.Parameters(), local_params);

    double reward_sum = 0.0;
    for (float r : mb.rewards) reward_sum += r;
    expected_rewards.push_back(
        reward_sum / (config.reward_scale * config.env.horizon));

    const PolicyNetConfig& cfg = config.net;
    nn::ZeroGradients(local_params);
    const nn::Tensor x = nn::Tensor::FromData(
        {static_cast<nn::Index>(t_max), cfg.in_channels, cfg.grid,
         cfg.grid},
        std::move(mb.states));
    const PolicyOutput out = local.Forward(x);
    nn::Tensor move_logp = nn::LogSoftmax(out.move_logits);
    nn::Tensor charge_logp = nn::LogSoftmax(out.charge_logits);
    nn::Tensor logp = nn::Add(
        nn::SumLastDim(nn::GatherLastDim(move_logp, mb.move_indices)),
        nn::SumLastDim(nn::GatherLastDim(charge_logp, mb.charge_indices)));
    std::vector<float> values(t_max + 1, 0.0f);
    std::vector<float> ratios(t_max, 1.0f);
    std::vector<bool> dones(t_max);
    for (size_t t = 0; t < t_max; ++t) {
      values[t] = out.value.data()[t];
      dones[t] = mb.dones[t] != 0;
      if (config.use_vtrace) {
        ratios[t] = std::exp(logp.data()[t] - mb.log_probs[t]);
      }
    }
    const VtraceResult vtrace =
        ComputeVtrace(mb.rewards, dones, values, ratios, config.gamma,
                      config.rho_bar, config.c_bar);
    const nn::Tensor advantages = nn::Tensor::FromData(
        {static_cast<nn::Index>(t_max)}, vtrace.pg_advantages);
    const nn::Tensor value_targets =
        nn::Tensor::FromData({static_cast<nn::Index>(t_max)}, vtrace.vs);
    nn::Tensor policy_loss = nn::Neg(nn::Mean(nn::Mul(logp, advantages)));
    nn::Tensor value_loss =
        nn::Mean(nn::Square(nn::Sub(out.value, value_targets)));
    const float inv_t = 1.0f / static_cast<float>(t_max);
    nn::Tensor entropy = nn::MulScalar(
        nn::Add(nn::Sum(nn::Mul(nn::Softmax(out.move_logits), move_logp)),
                nn::Sum(nn::Mul(nn::Softmax(out.charge_logits),
                                charge_logp))),
        -inv_t);
    nn::Tensor total = nn::Add(
        nn::Add(policy_loss, nn::MulScalar(value_loss, config.value_coef)),
        nn::MulScalar(entropy, -config.entropy_coef));
    total.Backward();
    nn::ClipGradByGlobalNorm(local_params, config.max_grad_norm);
    const std::vector<float> grads = nn::FlattenGradients(local_params);

    const std::vector<nn::Tensor> global_params = global.Parameters();
    nn::ZeroGradients(global_params);
    nn::AccumulateFlatGradients(global_params, grads);
    optimizer.Step();
    nn::CopyParameters(global_params, local_params);
  }

  // ---- The refactored trainer at envs_per_employee = 1 ----
  AsyncTrainerConfig vec_config = TinyAsyncConfig();
  vec_config.envs_per_employee = 1;
  AsyncTrainer trainer(vec_config, map);
  const TrainResult result = trainer.Train();

  ASSERT_EQ(result.history.size(), expected_rewards.size());
  for (size_t e = 0; e < expected_rewards.size(); ++e) {
    EXPECT_DOUBLE_EQ(result.history[e].extrinsic_reward,
                     expected_rewards[e])
        << "episode " << e;
  }
  const std::vector<float> got =
      nn::FlattenValues(trainer.global_net().Parameters());
  const std::vector<float> want = nn::FlattenValues(global.Parameters());
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "parameter " << i;  // bitwise
  }
}

TEST(VecEquivalenceTest, MultiEnvChiefTrainerRunsAndRecordsHistory) {
  TrainerConfig config = TinyChiefConfig();
  config.envs_per_employee = 3;
  config.episodes = 2;
  ChiefEmployeeTrainer trainer(config, SmallMap());
  const TrainResult result = trainer.Train();
  ASSERT_EQ(result.history.size(), 2u);
  for (const EpisodeRecord& rec : result.history) {
    EXPECT_GE(rec.kappa, 0.0);
    EXPECT_LE(rec.kappa, 1.0 + 1e-9);
  }
}

TEST(VecEquivalenceTest, MultiEnvAsyncTrainerEmitsPerInstanceRecords) {
  AsyncTrainerConfig config = TinyAsyncConfig();
  config.envs_per_employee = 2;
  config.episodes = 2;
  AsyncTrainer trainer(config, SmallMap());
  const TrainResult result = trainer.Train();
  // One record per instance episode: episodes * envs_per_employee.
  ASSERT_EQ(result.history.size(), 4u);
}

}  // namespace
}  // namespace cews::agents
