#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/module.h"
#include "nn/ops.h"

namespace cews::nn {
namespace {

/// Minimizes f(x) = sum((x - target)^2) and returns the final x.
template <typename MakeOpt>
std::vector<float> MinimizeQuadratic(MakeOpt make_opt, int steps) {
  Tensor x = Tensor::FromData({3}, {5.0f, -4.0f, 2.0f}, true);
  Tensor target = Tensor::FromData({3}, {1.0f, 2.0f, 3.0f});
  auto opt = make_opt(std::vector<Tensor>{x});
  for (int i = 0; i < steps; ++i) {
    opt->ZeroGrad();
    Tensor loss = Sum(Square(Sub(x, target)));
    loss.Backward();
    opt->Step();
  }
  return x.ToVector();
}

TEST(SgdTest, ConvergesOnQuadratic) {
  const auto x = MinimizeQuadratic(
      [](std::vector<Tensor> p) {
        return std::make_unique<Sgd>(std::move(p), 0.1f);
      },
      200);
  EXPECT_NEAR(x[0], 1.0f, 1e-3);
  EXPECT_NEAR(x[1], 2.0f, 1e-3);
  EXPECT_NEAR(x[2], 3.0f, 1e-3);
}

TEST(SgdTest, MomentumConverges) {
  const auto x = MinimizeQuadratic(
      [](std::vector<Tensor> p) {
        return std::make_unique<Sgd>(std::move(p), 0.05f, 0.9f);
      },
      300);
  EXPECT_NEAR(x[0], 1.0f, 1e-2);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  const auto x = MinimizeQuadratic(
      [](std::vector<Tensor> p) {
        return std::make_unique<Adam>(std::move(p), 0.1f);
      },
      500);
  EXPECT_NEAR(x[0], 1.0f, 1e-2);
  EXPECT_NEAR(x[1], 2.0f, 1e-2);
  EXPECT_NEAR(x[2], 3.0f, 1e-2);
}

TEST(AdamTest, FirstStepIsLearningRateSized) {
  // With bias correction, Adam's first step magnitude is ~lr regardless of
  // gradient scale.
  Tensor x = Tensor::FromData({1}, {0.0f}, true);
  Adam adam({x}, 0.01f);
  adam.ZeroGrad();
  Tensor loss = Sum(MulScalar(x, 1000.0f));
  loss.Backward();
  adam.Step();
  EXPECT_NEAR(x.data()[0], -0.01f, 1e-4);
}

TEST(AdamTest, SkipsParamsWithNoGrad) {
  Tensor x = Tensor::FromData({1}, {1.0f}, true);
  Adam adam({x}, 0.1f);
  adam.Step();  // no backward ran; x must be untouched
  EXPECT_FLOAT_EQ(x.data()[0], 1.0f);
}

TEST(OptimizerTest, TrainsMlpOnXor) {
  // The classic non-linear sanity check: 2-4-1 MLP learns XOR.
  Rng rng(11);
  Mlp mlp({2, 8, 1}, Activation::kTanh, rng);
  Adam adam(mlp.Parameters(), 0.05f);
  const float inputs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const float targets[4] = {0, 1, 1, 0};
  Tensor x = Tensor::FromData(
      {4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  Tensor y = Tensor::FromData({4, 1}, {0, 1, 1, 0});
  float final_loss = 1.0f;
  for (int step = 0; step < 800; ++step) {
    adam.ZeroGrad();
    Tensor loss = MseLoss(mlp.Forward(x), y);
    loss.Backward();
    adam.Step();
    final_loss = loss.item();
  }
  EXPECT_LT(final_loss, 0.03f);
  for (int i = 0; i < 4; ++i) {
    Tensor xi = Tensor::FromData({1, 2}, {inputs[i][0], inputs[i][1]});
    EXPECT_NEAR(mlp.Forward(xi).item(), targets[i], 0.35f);
  }
}

TEST(OptimizerTest, LearningRateAccessors) {
  Tensor x = Tensor::Zeros({1}, true);
  Adam adam({x}, 0.1f);
  EXPECT_FLOAT_EQ(adam.lr(), 0.1f);
  adam.set_lr(0.01f);
  EXPECT_FLOAT_EQ(adam.lr(), 0.01f);
  Sgd sgd({x}, 0.2f);
  EXPECT_FLOAT_EQ(sgd.lr(), 0.2f);
}

}  // namespace
}  // namespace cews::nn
