// Tests for the rolling-window observability layer: RollingHistogram slot
// rotation and window aggregation, the SLO spec parser, SloMonitor breach /
// burn / recover mechanics, and the MetricsExporter sinks.
//
// All time-dependent behavior is driven through injected now_ns values, so
// rotation and windowing are exercised deterministically (no sleeps).
#include "obs/rolling_histogram.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/metrics_exporter.h"
#include "obs/slo.h"

namespace cews::obs {
namespace {

constexpr uint64_t kSec = 1'000'000'000ULL;  // ns per slot second

/// Injected timestamps must be distinct per test: rolling histograms are
/// process-global and slots only re-zero when their second *changes*, so a
/// test reusing another test's seconds would see stale samples. Each test
/// takes its own century.
uint64_t TestBase(int test_index) {
  return static_cast<uint64_t>(test_index) * 1'000'000 * kSec + kSec;
}

TEST(RollingHistogramTest, WindowCoversOnlyRecentSeconds) {
  RollingHistogram* hist = GetRollingHistogram("test.rolling.window");
  hist->ResetForTest();
  const uint64_t base = TestBase(1);

  // One sample per second, seconds 0..9, value = 1000 * (second + 1).
  for (int s = 0; s < 10; ++s) {
    hist->Record(1000ULL * (s + 1), base + s * kSec);
  }

  // At second 9: Window(1) covers second 9 only (the current partial
  // second is included by design).
  const HistogramSnapshot w1 = hist->Window(1, base + 9 * kSec);
  EXPECT_EQ(w1.count, 1u);
  EXPECT_EQ(w1.sum, 10'000u);
  EXPECT_EQ(w1.name, "test.rolling.window[1s]");

  // Window(3) covers seconds 7, 8, 9.
  const HistogramSnapshot w3 = hist->Window(3, base + 9 * kSec);
  EXPECT_EQ(w3.count, 3u);
  EXPECT_EQ(w3.sum, 8'000u + 9'000u + 10'000u);

  // Window(10) covers everything recorded.
  const HistogramSnapshot w10 = hist->Window(10, base + 9 * kSec);
  EXPECT_EQ(w10.count, 10u);

  // Advance the clock 5 quiet seconds: the same window now excludes the
  // oldest samples.
  const HistogramSnapshot later = hist->Window(10, base + 14 * kSec);
  EXPECT_EQ(later.count, 5u);  // seconds 5..9 remain in (4, 14]

  // Far future: everything has aged out.
  EXPECT_EQ(hist->Window(kMaxWindowSeconds, base + 200 * kSec).count, 0u);
}

TEST(RollingHistogramTest, SlotsRecycleAfterOneRingLap) {
  RollingHistogram* hist = GetRollingHistogram("test.rolling.lap");
  hist->ResetForTest();
  const uint64_t base = TestBase(2);

  hist->Record(500, base);  // second 0
  // One full ring lap later, the same slot must be re-zeroed for the new
  // second, not accumulate onto the stale sample.
  hist->Record(700, base + static_cast<uint64_t>(kRollingSlots) * kSec);

  const HistogramSnapshot now = hist->Window(
      1, base + static_cast<uint64_t>(kRollingSlots) * kSec);
  EXPECT_EQ(now.count, 1u);
  EXPECT_EQ(now.sum, 700u);
}

TEST(RollingHistogramTest, WindowPercentilesInterpolate) {
  RollingHistogram* hist = GetRollingHistogram("test.rolling.pct");
  hist->ResetForTest();
  const uint64_t base = TestBase(3);

  // 100 samples of 1000ns and one outlier of ~1ms in the same second.
  for (int i = 0; i < 100; ++i) hist->Record(1000, base);
  hist->Record(1'000'000, base);

  const HistogramSnapshot w = hist->Window(5, base);
  EXPECT_EQ(w.count, 101u);
  // p50 sits in the bucket holding 1000; the bucketed estimate must stay
  // the same order of magnitude.
  const uint64_t p50 = w.Percentile(0.50);
  EXPECT_GE(p50, 512u);
  EXPECT_LE(p50, 2048u);
  // p999 must see the outlier's bucket.
  EXPECT_GE(w.Percentile(0.999), 500'000u);
}

TEST(RollingHistogramTest, WindowWidthClamped) {
  RollingHistogram* hist = GetRollingHistogram("test.rolling.clamp");
  hist->ResetForTest();
  const uint64_t base = TestBase(4);
  hist->Record(42, base);
  // Absurd widths clamp instead of reading recycled slots.
  EXPECT_EQ(hist->Window(1'000'000, base).count, 1u);
  EXPECT_EQ(hist->Window(0, base).count, 1u);  // clamps up to 1
  EXPECT_EQ(hist->Window(-5, base).count, 1u);
}

TEST(RollingHistogramTest, GetReturnsSameInstanceAndListsSorted) {
  RollingHistogram* a = GetRollingHistogram("test.rolling.same");
  EXPECT_EQ(a, GetRollingHistogram("test.rolling.same"));
  const std::vector<RollingHistogram*> all = AllRollingHistograms();
  ASSERT_GE(all.size(), 2u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1]->name(), all[i]->name());
  }
}

// ---------------------------------------------------------------------------
// SLO spec parsing

TEST(SloParseTest, ParsesMultiTargetSpec) {
  const Result<std::vector<SloTarget>> parsed =
      ParseSloTargets("p99<5000,shed<0.01,p50<200@60");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::vector<SloTarget>& targets = parsed.value();
  ASSERT_EQ(targets.size(), 3u);

  EXPECT_EQ(targets[0].kind, SloKind::kP99);
  EXPECT_DOUBLE_EQ(targets[0].threshold, 5000.0);
  EXPECT_EQ(targets[0].window_seconds, 10);  // default window

  EXPECT_EQ(targets[1].kind, SloKind::kShedRatio);
  EXPECT_DOUBLE_EQ(targets[1].threshold, 0.01);

  EXPECT_EQ(targets[2].kind, SloKind::kP50);
  EXPECT_DOUBLE_EQ(targets[2].threshold, 200.0);
  EXPECT_EQ(targets[2].window_seconds, 60);
}

TEST(SloParseTest, DescribeRoundTripsTheGrammar) {
  const Result<std::vector<SloTarget>> parsed = ParseSloTargets("p999<900@30");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value()[0].Describe(), "p999<900us@30s");
}

TEST(SloParseTest, RejectsMalformedSpecs) {
  // kind, separator, threshold, window, and shed-specific rules.
  for (const char* bad :
       {"", "p98<100", "p99", "p99<", "p99<0", "p99<-3", "p99<abc",
        "p99<100@", "p99<100@0", "p99<100@9999", "p99<100@xyz",
        "shed<0.5@10", "shed<1.5", "p99<100,,p50<10", ",p99<100"}) {
    EXPECT_FALSE(ParseSloTargets(bad).ok()) << "spec: '" << bad << "'";
  }
}

// ---------------------------------------------------------------------------
// SloMonitor evaluation

/// Fixture giving each monitor test clean flight / latency state. The
/// metrics registry itself is NOT reset (counters like slo.breaches are
/// cached as static pointers elsewhere); tests read counter *deltas*.
class SloMonitorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::Global().ClearForTest();
    latency_ = GetRollingHistogram("serve.fleet.latency");
    latency_->ResetForTest();
  }
  RollingHistogram* latency_ = nullptr;
};

TEST_F(SloMonitorTest, ReportsNoDataBeforeTraffic) {
  SloMonitor monitor({SloTarget{SloKind::kP99, 5000.0, 10}});
  const std::vector<SloStatus> statuses = monitor.Evaluate(TestBase(10));
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_FALSE(statuses[0].measured);
  EXPECT_FALSE(statuses[0].breached);
  EXPECT_DOUBLE_EQ(statuses[0].burn_rate, 0.0);
}

TEST_F(SloMonitorTest, BreachBurnAndRecoverTransitions) {
  const uint64_t base = TestBase(11);
  const uint64_t before =
      SnapshotMetrics().CounterValue("slo.breaches");

  // Target: p99 < 100us over 10s. Record 1ms samples -> breach.
  SloMonitor monitor({SloTarget{SloKind::kP99, 100.0, 10}});
  for (int i = 0; i < 50; ++i) latency_->Record(1'000'000, base);

  std::vector<SloStatus> statuses = monitor.Evaluate(base);
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_TRUE(statuses[0].measured);
  EXPECT_TRUE(statuses[0].breached);
  EXPECT_GE(statuses[0].value, 100.0);
  EXPECT_DOUBLE_EQ(statuses[0].burn_rate, 1.0);  // 1 of 1 evals breached

  // Second breached eval: still one transition, burn stays 1.0.
  statuses = monitor.Evaluate(base + kSec);
  EXPECT_TRUE(statuses[0].breached);
  EXPECT_DOUBLE_EQ(statuses[0].burn_rate, 1.0);

  // Recover: evaluate after the bad samples aged out of the window, with
  // fresh fast samples.
  const uint64_t later = base + 20 * kSec;
  for (int i = 0; i < 50; ++i) latency_->Record(1'000, later);
  statuses = monitor.Evaluate(later);
  EXPECT_TRUE(statuses[0].measured);
  EXPECT_FALSE(statuses[0].breached);
  // 2 breached of 3 evals.
  EXPECT_NEAR(statuses[0].burn_rate, 2.0 / 3.0, 1e-9);

  // Exactly one breach counted, and both transitions left flight events.
  const uint64_t after = SnapshotMetrics().CounterValue("slo.breaches");
  EXPECT_EQ(after - before, 1u);
  int breach_events = 0;
  int recover_events = 0;
  for (const FlightEvent& event : FlightRecorder::Global().Collect()) {
    if (event.kind == FlightEventKind::kSloBreach) ++breach_events;
    if (event.kind == FlightEventKind::kSloRecover) ++recover_events;
  }
  EXPECT_EQ(breach_events, 1);
  EXPECT_EQ(recover_events, 1);
}

TEST_F(SloMonitorTest, PublishesValueAndBurnGauges) {
  const uint64_t base = TestBase(12);
  SloMonitor monitor({SloTarget{SloKind::kP99, 100.0, 10}});
  for (int i = 0; i < 10; ++i) latency_->Record(1'000'000, base);
  monitor.Evaluate(base);

  const MetricsSnapshot snap = SnapshotMetrics();
  EXPECT_NE(snap.FindGauge("slo.p99.10s.value"), nullptr);
  EXPECT_NE(snap.FindGauge("slo.p99.10s.burn"), nullptr);
  EXPECT_GE(snap.GaugeValue("slo.p99.10s.value"), 100.0);
  EXPECT_DOUBLE_EQ(snap.GaugeValue("slo.p99.10s.burn"), 1.0);
}

TEST_F(SloMonitorTest, ShedRatioFromCounterDeltas) {
  Counter* const accepted = GetCounter("serve.requests");
  Counter* const shed = GetCounter("serve.fleet.shed_total");

  SloMonitor monitor({SloTarget{SloKind::kShedRatio, 0.10, 10}});

  // First pass only establishes the baseline: no delta yet -> no data.
  std::vector<SloStatus> statuses = monitor.Evaluate(TestBase(13));
  EXPECT_FALSE(statuses[0].measured);

  // 90 accepted + 10 shed since the baseline: ratio 0.10 >= 0.10 breaches.
  accepted->Add(90);
  shed->Add(10);
  statuses = monitor.Evaluate(TestBase(13) + kSec);
  ASSERT_TRUE(statuses[0].measured);
  EXPECT_NEAR(statuses[0].value, 0.10, 1e-9);
  EXPECT_TRUE(statuses[0].breached);

  // Clean interval: ratio drops to zero and the target recovers.
  accepted->Add(100);
  statuses = monitor.Evaluate(TestBase(13) + 2 * kSec);
  ASSERT_TRUE(statuses[0].measured);
  EXPECT_DOUBLE_EQ(statuses[0].value, 0.0);
  EXPECT_FALSE(statuses[0].breached);
}

TEST_F(SloMonitorTest, FormatTableShowsStatusColumn) {
  const uint64_t base = TestBase(14);
  SloMonitor monitor({SloTarget{SloKind::kP99, 100.0, 10},
                      SloTarget{SloKind::kP50, 1e9, 10}});
  for (int i = 0; i < 10; ++i) latency_->Record(1'000'000, base);
  const std::string table =
      SloMonitor::FormatTable(monitor.Evaluate(base));
  EXPECT_NE(table.find("BREACH"), std::string::npos);
  EXPECT_NE(table.find("OK"), std::string::npos);
  EXPECT_NE(table.find("p99<100us@10s"), std::string::npos);

  SloMonitor empty({SloTarget{SloKind::kP999, 100.0, 10}});
  RollingHistogram* hist = GetRollingHistogram("serve.fleet.latency");
  hist->ResetForTest();
  const std::string nodata =
      SloMonitor::FormatTable(empty.Evaluate(base + 100 * kSec));
  EXPECT_NE(nodata.find("NO DATA"), std::string::npos);
}

// ---------------------------------------------------------------------------
// MetricsExporter

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(MetricsExporterTest, ExportOnceWritesAllSinks) {
  const std::string dir = ::testing::TempDir();
  const std::string jsonl = dir + "/cews_export_test.jsonl";
  const std::string prom = dir + "/cews_export_test.prom";
  std::remove(jsonl.c_str());

  GetCounter("test.exporter.counter")->Add(7);
  GetGauge("test.exporter.gauge")->Set(2.5);
  RollingHistogram* hist = GetRollingHistogram("test.exporter.latency");
  hist->ResetForTest();
  const uint64_t base = TestBase(20);
  for (int i = 0; i < 16; ++i) hist->Record(4'000, base);

  MetricsExporterConfig config;
  config.period_seconds = 3600.0;  // the thread never ticks on its own
  config.jsonl_path = jsonl;
  config.prom_path = prom;
  config.windows = {10};
  MetricsExporter exporter(config);
  EXPECT_TRUE(exporter.ExportOnce(base).ok());
  EXPECT_TRUE(exporter.ExportOnce(base + kSec).ok());

  // Windowed gauges minted from the rolling histogram. Checked before
  // Stop(): the final export reads the real clock, where the injected
  // second is long gone and the window gauges go back to zero.
  {
    const MetricsSnapshot snap = SnapshotMetrics();
    EXPECT_DOUBLE_EQ(snap.GaugeValue("test.exporter.latency.10s.count"),
                     16.0);
    const double p99_us =
        snap.GaugeValue("test.exporter.latency.10s.p99_us");
    EXPECT_GT(p99_us, 1.0);
    EXPECT_LT(p99_us, 10.0);  // 4us samples, bucketed
  }

  exporter.Stop();  // final export appends one more line

  // JSONL: one line per export, each a single JSON object.
  const std::string jsonl_text = ReadWholeFile(jsonl);
  int lines = 0;
  std::istringstream stream(jsonl_text);
  for (std::string line; std::getline(stream, line);) {
    ++lines;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"ts_ns\""), std::string::npos);
  }
  EXPECT_EQ(lines, 3);
  EXPECT_NE(jsonl_text.find("test.exporter.counter"), std::string::npos);

  // Prometheus text: sanitized names, counter TYPE lines.
  const std::string prom_text = ReadWholeFile(prom);
  EXPECT_NE(prom_text.find("# TYPE cews_test_exporter_counter counter"),
            std::string::npos);
  EXPECT_NE(prom_text.find("cews_test_exporter_gauge 2.5"),
            std::string::npos);

  // The flight recorder now embeds a metrics document.
  const std::string tmp = dir + "/cews_export_test_postmortem.json";
  ASSERT_TRUE(
      FlightRecorder::Global().WriteDump(tmp, "exporter_test").ok());
  const std::string dump = ReadWholeFile(tmp);
  EXPECT_EQ(dump.find("\"metrics\": null"), std::string::npos);
  EXPECT_NE(dump.find("test.exporter.counter"), std::string::npos);
}

TEST(MetricsExporterTest, StaticFormattersAreWellFormed) {
  GetCounter("test.fmt.counter")->Increment();
  GetHistogram("test.fmt.hist")->Record(1234);
  const MetricsSnapshot snap = SnapshotMetrics();

  const std::string line = MetricsExporter::JsonlLine(snap, 12345);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // single line
  EXPECT_NE(line.find("\"ts_ns\": 12345"), std::string::npos);
  EXPECT_NE(line.find("\"counters\""), std::string::npos);
  EXPECT_NE(line.find("\"histograms\""), std::string::npos);

  const std::string prom = MetricsExporter::PrometheusText(snap);
  EXPECT_NE(prom.find("cews_test_fmt_counter"), std::string::npos);
  EXPECT_NE(prom.find("cews_test_fmt_hist_count"), std::string::npos);
  EXPECT_NE(prom.find("cews_test_fmt_hist_p99"), std::string::npos);
}

TEST(MetricsExporterTest, EvaluatesAttachedMonitorEachTick) {
  RollingHistogram* hist = GetRollingHistogram("serve.fleet.latency");
  hist->ResetForTest();
  const uint64_t base = TestBase(21);
  for (int i = 0; i < 10; ++i) hist->Record(2'000'000, base);

  SloMonitor monitor({SloTarget{SloKind::kP50, 50.0, 10}});
  MetricsExporterConfig config;
  config.period_seconds = 3600.0;
  config.slo = &monitor;
  config.update_flight_recorder = false;
  MetricsExporter exporter(config);
  EXPECT_TRUE(exporter.ExportOnce(base).ok());

  // The monitor ran: its gauges are visible in a fresh snapshot. (Checked
  // before Stop(), whose real-clock final pass re-evaluates the monitor
  // against an empty window and zeroes the value gauge.)
  EXPECT_GE(SnapshotMetrics().GaugeValue("slo.p50.10s.value"), 50.0);
  exporter.Stop();
}

}  // namespace
}  // namespace cews::obs
