// VecEnv: SplitMix64 instance-seed separation, lockstep stepping,
// auto-reset semantics, aggregated metrics, and the batched state encoding.
#include "env/vec_env.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "env/state_encoder.h"

namespace cews::env {
namespace {

EnvConfig ShortConfig(int horizon = 5) {
  EnvConfig config;
  config.horizon = horizon;
  return config;
}

MapConfig SmallMapConfig() {
  MapConfig config;
  config.num_pois = 30;
  config.num_workers = 2;
  config.num_stations = 2;
  config.num_obstacles = 2;
  return config;
}

Map SmallMap(uint64_t seed = 42) {
  Rng rng(seed);
  auto result = GenerateMap(SmallMapConfig(), rng);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

std::vector<std::vector<WorkerAction>> StayAll(const VecEnv& vec) {
  return std::vector<std::vector<WorkerAction>>(
      static_cast<size_t>(vec.size()),
      std::vector<WorkerAction>(static_cast<size_t>(vec.num_workers()),
                                WorkerAction{0, false}));
}

TEST(InstanceSeedTest, DistinctAcrossIndicesAndBases) {
  std::set<uint64_t> seeds;
  for (uint64_t base : {1ULL, 2ULL, 3ULL, 1000ULL}) {
    for (int i = 0; i < 16; ++i) {
      seeds.insert(VecEnv::InstanceSeed(base, i));
    }
  }
  EXPECT_EQ(seeds.size(), 64u);  // no collision anywhere in the block
}

TEST(InstanceSeedTest, NoDiagonalCollisionUnlikeSeedPlusIndex) {
  // The naive `seed + i` derivation collides on the (base+1, i-1) diagonal:
  // base + i == (base+1) + (i-1). The SplitMix64 stream must not.
  for (uint64_t base : {7ULL, 123ULL}) {
    for (int i = 1; i < 8; ++i) {
      EXPECT_NE(VecEnv::InstanceSeed(base, i),
                VecEnv::InstanceSeed(base + 1, i - 1))
          << "base=" << base << " i=" << i;
    }
  }
}

TEST(InstanceSeedTest, AdjacentSeedsGiveUncorrelatedPoiLayouts) {
  // Generated layouts for adjacent (base, index) pairs share no PoI
  // position: every PoI of one layout is far from its index-counterpart in
  // the other.
  auto vec_a = VecEnv::CreateGenerated(ShortConfig(), SmallMapConfig(),
                                       /*base_seed=*/7, /*num_envs=*/3);
  auto vec_b = VecEnv::CreateGenerated(ShortConfig(), SmallMapConfig(),
                                       /*base_seed=*/8, /*num_envs=*/3);
  ASSERT_TRUE(vec_a.ok());
  ASSERT_TRUE(vec_b.ok());
  auto coincident = [](const Map& x, const Map& y) {
    int same = 0;
    for (size_t p = 0; p < x.pois.size(); ++p) {
      const double dx = x.pois[p].pos.x - y.pois[p].pos.x;
      const double dy = x.pois[p].pos.y - y.pois[p].pos.y;
      if (std::sqrt(dx * dx + dy * dy) < 1e-6) ++same;
    }
    return same;
  };
  for (int i = 0; i < 3; ++i) {
    // Same base, different instance index.
    if (i > 0) {
      EXPECT_EQ(coincident(vec_a->env(i).map(), vec_a->env(i - 1).map()), 0);
    }
    // Adjacent bases, same index.
    EXPECT_EQ(coincident(vec_a->env(i).map(), vec_b->env(i).map()), 0);
  }
}

TEST(VecEnvTest, SharedMapInstancesStartIdentical) {
  const Map map = SmallMap();
  VecEnv vec(ShortConfig(), map, /*num_envs=*/3);
  EXPECT_EQ(vec.size(), 3);
  EXPECT_EQ(vec.num_workers(), 2);
  for (int i = 1; i < vec.size(); ++i) {
    EXPECT_EQ(vec.env(i).num_pois(), vec.env(0).num_pois());
    EXPECT_EQ(vec.env(i).t(), 0);
  }
}

TEST(VecEnvTest, LockstepStepMatchesIndividualEnvs) {
  const Map map = SmallMap();
  const EnvConfig config = ShortConfig();
  VecEnv vec(config, map, /*num_envs=*/2);
  Env solo(config, map);
  const auto actions = StayAll(vec);
  for (int t = 0; t < config.horizon; ++t) {
    const VecEnv::StepResults results = vec.Step(actions);
    const StepResult solo_step = solo.Step(actions[0]);
    for (int i = 0; i < vec.size(); ++i) {
      const StepResult& r = results.per_env[static_cast<size_t>(i)];
      EXPECT_DOUBLE_EQ(r.sparse_reward, solo_step.sparse_reward);
      EXPECT_DOUBLE_EQ(r.dense_reward, solo_step.dense_reward);
      EXPECT_EQ(r.done, solo_step.done);
    }
  }
  EXPECT_TRUE(vec.AllDone());
  EXPECT_TRUE(vec.AnyDone());
  EXPECT_DOUBLE_EQ(vec.MeanKappa(), solo.Kappa());
  EXPECT_DOUBLE_EQ(vec.MeanXi(), solo.Xi());
  EXPECT_DOUBLE_EQ(vec.MeanRho(), solo.Rho());
}

TEST(VecEnvTest, AutoResetRestartsFinishedInstances) {
  const int horizon = 4;
  VecEnv vec(ShortConfig(horizon), SmallMap(), /*num_envs=*/2,
             /*auto_reset=*/true);
  const auto actions = StayAll(vec);
  int episodes_reported = 0;
  // 3 horizons of continuous stepping: auto-reset must keep every instance
  // live the whole time.
  for (int t = 0; t < 3 * horizon; ++t) {
    const VecEnv::StepResults results = vec.Step(actions);
    episodes_reported += results.episodes_finished;
    if ((t + 1) % horizon == 0) {
      // The StepResult keeps done=true (gym-style), but the instance has
      // already been reset for the next encode.
      for (const StepResult& r : results.per_env) EXPECT_TRUE(r.done);
      for (int i = 0; i < vec.size(); ++i) EXPECT_EQ(vec.env(i).t(), 0);
    }
    EXPECT_FALSE(vec.AnyDone());
  }
  EXPECT_EQ(episodes_reported, 6);  // 2 instances x 3 episodes
  EXPECT_EQ(static_cast<int>(vec.finished_episodes().size()), 6);
  for (const VecEnv::EpisodeMetrics& m : vec.finished_episodes()) {
    EXPECT_GE(m.kappa, 0.0);
    EXPECT_GE(m.xi, 0.0);
    EXPECT_LE(m.xi, 1.0 + 1e-9);
  }
  EXPECT_EQ(vec.DrainFinishedEpisodes().size(), 6u);
  EXPECT_TRUE(vec.finished_episodes().empty());
}

TEST(VecEnvTest, ResetClearsFinishedEpisodes) {
  VecEnv vec(ShortConfig(2), SmallMap(), /*num_envs=*/1,
             /*auto_reset=*/true);
  const auto actions = StayAll(vec);
  vec.Step(actions);
  vec.Step(actions);
  EXPECT_EQ(vec.finished_episodes().size(), 1u);
  vec.Reset();
  EXPECT_TRUE(vec.finished_episodes().empty());
}

TEST(VecEnvTest, MoveValidityMasksMatchEnvQueries) {
  VecEnv vec(ShortConfig(), SmallMap(), /*num_envs=*/2);
  const int num_moves = vec.env(0).config().action_space.num_moves();
  const std::vector<uint8_t> masks = vec.MoveValidityMasks();
  ASSERT_EQ(static_cast<int>(masks.size()),
            vec.size() * vec.num_workers() * num_moves);
  int valid = 0;
  for (int i = 0; i < vec.size(); ++i) {
    for (int w = 0; w < vec.num_workers(); ++w) {
      for (int m = 0; m < num_moves; ++m) {
        const uint8_t bit =
            masks[static_cast<size_t>((i * vec.num_workers() + w) *
                                          num_moves +
                                      m)];
        EXPECT_EQ(bit, vec.env(i).MoveValid(w, m) ? 1 : 0);
        valid += bit;
      }
    }
  }
  EXPECT_GT(valid, 0);  // staying put is always an option
}

TEST(EncodeBatchTest, MatchesPerEnvEncodeBitwise) {
  const Map map = SmallMap();
  VecEnv vec(ShortConfig(), map, /*num_envs=*/3);
  // Desynchronize the instances so the slices genuinely differ.
  std::vector<std::vector<WorkerAction>> actions = StayAll(vec);
  actions[1][0] = WorkerAction{1, false};
  actions[2][1] = WorkerAction{2, true};
  vec.Step(actions);

  StateEncoderConfig encoder_config;
  encoder_config.grid = 10;
  const StateEncoder encoder(encoder_config);
  const std::vector<float> batch = encoder.EncodeBatch(vec.EnvPtrs());
  const size_t stride = static_cast<size_t>(encoder.StateSize());
  ASSERT_EQ(batch.size(), stride * 3);
  for (int i = 0; i < vec.size(); ++i) {
    const std::vector<float> single = encoder.Encode(vec.env(i));
    ASSERT_EQ(single.size(), stride);
    for (size_t k = 0; k < stride; ++k) {
      EXPECT_EQ(batch[static_cast<size_t>(i) * stride + k], single[k])
          << "instance " << i << " float " << k;
    }
  }
}

TEST(VecEnvTest, CreateGeneratedRejectsBadCounts) {
  const auto result = VecEnv::CreateGenerated(ShortConfig(),
                                              SmallMapConfig(), 1, 0);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace cews::env
