#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "nn/tensor.h"

namespace cews::nn {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<Tensor> MakeParams(float base) {
  std::vector<Tensor> params;
  std::vector<float> a(12);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = base + static_cast<float>(i) * 0.25f;
  }
  params.push_back(Tensor::FromData({3, 4}, a));
  std::vector<float> b(5);
  for (size_t i = 0; i < b.size(); ++i) {
    b[i] = -base * static_cast<float>(i + 1);
  }
  params.push_back(Tensor::FromData({5}, b));
  return params;
}

void ExpectSameValues(const std::vector<Tensor>& a,
                      const std::vector<Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].shape(), b[i].shape());
    for (Index j = 0; j < a[i].numel(); ++j) {
      EXPECT_EQ(a[i].data()[j], b[i].data()[j]) << "tensor " << i;
    }
  }
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

/// Replicates the pre-footer writer: magic | count | per tensor ndim, dims,
/// data — byte-for-byte the legacy "CEWSPAR1" on-disk format.
std::string LegacyBytes(const std::vector<Tensor>& params) {
  std::string buf;
  buf.append("CEWSPAR1", 8);
  const uint64_t count = params.size();
  buf.append(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Tensor& t : params) {
    const uint64_t ndim = t.shape().size();
    buf.append(reinterpret_cast<const char*>(&ndim), sizeof(ndim));
    for (Index d : t.shape()) {
      const int64_t dim = d;
      buf.append(reinterpret_cast<const char*>(&dim), sizeof(dim));
    }
    buf.append(reinterpret_cast<const char*>(t.data()),
               sizeof(float) * static_cast<size_t>(t.numel()));
  }
  return buf;
}

TEST(SerializeTest, RoundTripWithCrcFooter) {
  const std::string path = TempPath("roundtrip.bin");
  const std::vector<Tensor> saved = MakeParams(1.5f);
  SaveInfo info;
  ASSERT_TRUE(SaveParameters(path, saved, &info).ok());

  const std::string bytes = ReadFile(path);
  EXPECT_EQ(info.bytes, bytes.size());
  EXPECT_NE(info.crc32, 0u);
  // Footer: tag + little-endian CRC as the final 8 bytes.
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes.substr(bytes.size() - 8, 4), "CRC1");

  std::vector<Tensor> loaded = MakeParams(0.0f);
  for (Tensor& t : loaded) {
    std::memset(t.data(), 0, sizeof(float) * static_cast<size_t>(t.numel()));
  }
  ASSERT_TRUE(LoadParameters(path, loaded).ok());
  ExpectSameValues(saved, loaded);
}

TEST(SerializeTest, SaveLeavesNoTmpFile) {
  const std::string path = TempPath("notmp.bin");
  ASSERT_TRUE(SaveParameters(path, MakeParams(2.0f)).ok());
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
}

TEST(SerializeTest, InterruptedRewriteLeavesPreviousCheckpointReadable) {
  const std::string path = TempPath("interrupted.bin");
  const std::vector<Tensor> v1 = MakeParams(3.0f);
  ASSERT_TRUE(SaveParameters(path, v1).ok());

  // Simulate a crash mid-way through saving v2: the writer fills
  // `<path>.tmp` and dies before the rename. The live checkpoint must be
  // untouched.
  const std::string full = ReadFile(path);
  WriteFile(path + ".tmp", full.substr(0, full.size() / 3));

  std::vector<Tensor> loaded = MakeParams(0.0f);
  ASSERT_TRUE(LoadParameters(path, loaded).ok());
  ExpectSameValues(v1, loaded);

  // A later complete save still lands cleanly over the stale tmp file.
  const std::vector<Tensor> v2 = MakeParams(4.0f);
  ASSERT_TRUE(SaveParameters(path, v2).ok());
  ASSERT_TRUE(LoadParameters(path, loaded).ok());
  ExpectSameValues(v2, loaded);
}

TEST(SerializeTest, TruncatedFileRejectedWithoutCrash) {
  const std::string path = TempPath("truncated.bin");
  ASSERT_TRUE(SaveParameters(path, MakeParams(5.0f)).ok());
  const std::string full = ReadFile(path);
  // Cut into the tensor-data region (keep the header intact).
  WriteFile(path, full.substr(0, full.size() * 3 / 5));

  std::vector<Tensor> loaded = MakeParams(0.0f);
  const Status status = LoadParameters(path, loaded);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError) << status.ToString();
}

TEST(SerializeTest, BitFlipFailsCrcCheck) {
  const std::string path = TempPath("bitflip.bin");
  ASSERT_TRUE(SaveParameters(path, MakeParams(6.0f)).ok());
  std::string bytes = ReadFile(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  WriteFile(path, bytes);

  std::vector<Tensor> loaded = MakeParams(0.0f);
  const Status status = LoadParameters(path, loaded);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("CRC32"), std::string::npos)
      << status.ToString();
}

TEST(SerializeTest, LegacyFooterlessFileStillLoads) {
  const std::string path = TempPath("legacy.bin");
  const std::vector<Tensor> saved = MakeParams(7.0f);
  WriteFile(path, LegacyBytes(saved));

  std::vector<Tensor> loaded = MakeParams(0.0f);
  ASSERT_TRUE(LoadParameters(path, loaded).ok());
  ExpectSameValues(saved, loaded);
}

TEST(SerializeTest, StrictModeRejectsFooterlessFile) {
  const std::string path = TempPath("legacy_strict.bin");
  const std::vector<Tensor> saved = MakeParams(7.0f);
  WriteFile(path, LegacyBytes(saved));

  // The same file the lenient default accepts is refused under
  // require_crc — the distributed broadcast / fleet publish path must
  // never fan out a checkpoint that carries no integrity check.
  LoadOptions strict;
  strict.require_crc = true;
  std::vector<Tensor> loaded = MakeParams(0.0f);
  const Status status = LoadParameters(path, loaded, strict);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("CRC"), std::string::npos)
      << status.ToString();
}

TEST(SerializeTest, StrictModeAcceptsFooteredFile) {
  const std::string path = TempPath("footered_strict.bin");
  const std::vector<Tensor> saved = MakeParams(3.25f);
  ASSERT_TRUE(SaveParameters(path, saved).ok());
  LoadOptions strict;
  strict.require_crc = true;
  std::vector<Tensor> loaded = MakeParams(0.0f);
  ASSERT_TRUE(LoadParameters(path, loaded, strict).ok());
  ExpectSameValues(saved, loaded);
}

TEST(SerializeTest, ImplausibleRankRejectedBeforeAllocation) {
  const std::string path = TempPath("absurd_ndim.bin");
  // magic | count=1 | ndim = 2^40 — an attacker-sized header that must be
  // rejected by the sanity cap, not used to size an allocation.
  std::string buf;
  buf.append("CEWSPAR1", 8);
  const uint64_t count = 1;
  buf.append(reinterpret_cast<const char*>(&count), sizeof(count));
  const uint64_t ndim = uint64_t{1} << 40;
  buf.append(reinterpret_cast<const char*>(&ndim), sizeof(ndim));
  WriteFile(path, buf);

  std::vector<Tensor> loaded = {Tensor::Zeros({2, 2})};
  const Status status = LoadParameters(path, loaded);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
      << status.ToString();
  EXPECT_NE(status.message().find("rank"), std::string::npos);
}

TEST(SerializeTest, NegativeDimensionRejected) {
  const std::string path = TempPath("negdim.bin");
  std::string buf;
  buf.append("CEWSPAR1", 8);
  const uint64_t count = 1;
  buf.append(reinterpret_cast<const char*>(&count), sizeof(count));
  const uint64_t ndim = 1;
  buf.append(reinterpret_cast<const char*>(&ndim), sizeof(ndim));
  const int64_t dim = -4;
  buf.append(reinterpret_cast<const char*>(&dim), sizeof(dim));
  WriteFile(path, buf);

  std::vector<Tensor> loaded = {Tensor::Zeros({4})};
  const Status status = LoadParameters(path, loaded);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, CountMismatchRejected) {
  const std::string path = TempPath("count.bin");
  ASSERT_TRUE(SaveParameters(path, MakeParams(8.0f)).ok());
  std::vector<Tensor> fewer = {Tensor::Zeros({3, 4})};
  const Status status = LoadParameters(path, fewer);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("count mismatch"), std::string::npos);
}

TEST(SerializeTest, ShapeMismatchRejected) {
  const std::string path = TempPath("shape.bin");
  ASSERT_TRUE(SaveParameters(path, MakeParams(9.0f)).ok());
  std::vector<Tensor> transposed = {Tensor::Zeros({4, 3}),
                                    Tensor::Zeros({5})};
  const Status status = LoadParameters(path, transposed);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("shape mismatch"), std::string::npos);
}

TEST(SerializeTest, TrailingGarbageRejected) {
  const std::string path = TempPath("trailing.bin");
  std::string buf = LegacyBytes(MakeParams(10.0f));
  buf.append("junkjunkjunk");
  WriteFile(path, buf);
  std::vector<Tensor> loaded = MakeParams(0.0f);
  const Status status = LoadParameters(path, loaded);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("trailing"), std::string::npos);
}

TEST(SerializeTest, GarbageFileRejected) {
  const std::string path = TempPath("garbage.bin");
  WriteFile(path, "this is definitely not a checkpoint file at all");
  std::vector<Tensor> loaded = MakeParams(0.0f);
  const Status status = LoadParameters(path, loaded);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, MissingFileIsIOError) {
  std::vector<Tensor> loaded = MakeParams(0.0f);
  const Status status =
      LoadParameters(TempPath("does_not_exist.bin"), loaded);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace cews::nn
