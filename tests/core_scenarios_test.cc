#include "core/scenarios.h"

#include <gtest/gtest.h>

#include "core/visualize.h"

namespace cews::core {
namespace {

TEST(ScenariosTest, NamesRoundTrip) {
  for (const Scenario scenario : AllScenarios()) {
    const auto parsed = ScenarioFromName(ScenarioName(scenario));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, scenario);
  }
}

TEST(ScenariosTest, UnknownNameIsNotFound) {
  const auto r = ScenarioFromName("mars-colony");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ScenariosTest, AllScenariosGenerate) {
  for (const Scenario scenario : AllScenarios()) {
    auto map_or = MakeScenario(scenario, 80, 2, 3, 42);
    ASSERT_TRUE(map_or.ok()) << ScenarioName(scenario);
    EXPECT_EQ(map_or->pois.size(), 80u);
    EXPECT_EQ(map_or->worker_spawns.size(), 2u);
  }
}

TEST(ScenariosTest, OpenFieldHasNoObstacles) {
  const auto map = MakeScenario(Scenario::kOpenField, 50, 2, 3, 7);
  ASSERT_TRUE(map.ok());
  EXPECT_TRUE(map->obstacles.empty());
}

TEST(ScenariosTest, DenseRubbleHasManyObstacles) {
  const auto open = MakeScenario(Scenario::kEarthquakeSite, 50, 2, 3, 7);
  const auto dense = MakeScenario(Scenario::kDenseRubble, 50, 2, 3, 7);
  ASSERT_TRUE(open.ok());
  ASSERT_TRUE(dense.ok());
  EXPECT_GT(dense->obstacles.size(), open->obstacles.size());
}

TEST(ScenariosTest, SkewedClustersConcentratesData) {
  // Measure spatial concentration: mean pairwise distance between PoIs
  // should be smaller for the skewed scenario than the open field.
  const auto skewed = MakeScenario(Scenario::kSkewedClusters, 100, 2, 3, 11);
  const auto open = MakeScenario(Scenario::kOpenField, 100, 2, 3, 11);
  ASSERT_TRUE(skewed.ok());
  ASSERT_TRUE(open.ok());
  // Concentration metric robust to multiple far-apart clusters: the mean
  // nearest-neighbor distance is small when PoIs bunch together.
  auto mean_nn = [](const env::Map& map) {
    double total = 0.0;
    for (size_t i = 0; i < map.pois.size(); ++i) {
      double best = 1e9;
      for (size_t j = 0; j < map.pois.size(); ++j) {
        if (i == j) continue;
        best = std::min(best,
                        env::Distance(map.pois[i].pos, map.pois[j].pos));
      }
      total += best;
    }
    return total / static_cast<double>(map.pois.size());
  };
  EXPECT_LT(mean_nn(*skewed), mean_nn(*open));
}

TEST(ScenariosTest, DeterministicBySeed) {
  const auto a = MakeScenario(Scenario::kEarthquakeSite, 60, 2, 3, 99);
  const auto b = MakeScenario(Scenario::kEarthquakeSite, 60, 2, 3, 99);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->pois.size(); ++i) {
    EXPECT_TRUE(a->pois[i].pos == b->pois[i].pos);
  }
}

TEST(AsciiMapTest, RendersAllEntityGlyphs) {
  env::Map map;
  map.config.size_x = 10.0;
  map.config.size_y = 10.0;
  map.obstacles = {env::Rect{4, 4, 6, 6}};
  map.pois = {env::Poi{{1, 1}, 0.5}};
  map.stations = {env::ChargingStation{{9, 1}}};
  map.worker_spawns = {{1, 9}};
  const std::string art = AsciiMap(map, 20);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('*'), std::string::npos);
  EXPECT_NE(art.find('C'), std::string::npos);
  EXPECT_NE(art.find('W'), std::string::npos);
  EXPECT_NE(art.find('.'), std::string::npos);
  // Row count follows the aspect ratio (square map, glyphs 2:1): 10 rows.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 10);
}

TEST(AsciiMapTest, TopRowIsLargestY) {
  env::Map map;
  map.config.size_x = 10.0;
  map.config.size_y = 10.0;
  map.pois = {env::Poi{{5.0, 9.5}, 0.5}};  // near the top
  map.worker_spawns = {{5.0, 0.5}};        // near the bottom
  const std::string art = AsciiMap(map, 20);
  const size_t star = art.find('*');
  const size_t spawn = art.find('W');
  EXPECT_LT(star, spawn);  // '*' appears on an earlier (higher) row
}

TEST(AsciiMapTest, TinyWidthClamped) {
  env::Map map;
  map.config.size_x = 10.0;
  map.config.size_y = 10.0;
  map.pois = {env::Poi{{5, 5}, 0.5}};
  map.worker_spawns = {{1, 1}};
  const std::string art = AsciiMap(map, 1);
  EXPECT_FALSE(art.empty());
}

}  // namespace
}  // namespace cews::core
