#include "env/pathfinding.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cews::env {
namespace {

Map OpenMap() {
  Map map;
  map.config.size_x = 10.0;
  map.config.size_y = 10.0;
  map.config.hard_corner = false;
  map.pois = {Poi{{5, 5}, 1.0}};
  map.worker_spawns = {{1, 1}};
  return map;
}

TEST(PathPlannerTest, StraightLineOnOpenMap) {
  const Map map = OpenMap();
  PathPlanner planner(map, 20);
  const auto path = planner.FindPath({1, 1}, {8, 8});
  ASSERT_TRUE(path.has_value());
  EXPECT_FALSE(path->empty());
  // Path ends exactly at the target.
  EXPECT_NEAR(path->back().x, 8.0, 1e-12);
  EXPECT_NEAR(path->back().y, 8.0, 1e-12);
  // Length close to the straight-line distance (within grid slack).
  EXPECT_LT(planner.PathLength({1, 1}, {8, 8}), std::sqrt(98.0) * 1.2);
}

TEST(PathPlannerTest, RoutesAroundWall) {
  Map map = OpenMap();
  // Vertical wall with a gap at the bottom.
  map.obstacles = {Rect{5.0, 2.0, 5.5, 10.0}};
  PathPlanner planner(map, 40);
  const Position a{2.0, 8.0}, b{8.0, 8.0};
  ASSERT_TRUE(planner.Reachable(a, b));
  const double detour = planner.PathLength(a, b);
  // Must be much longer than the straight line (goes down around the wall).
  EXPECT_GT(detour, Distance(a, b) + 5.0);
  // And every leg of the path must be collision-free.
  const auto path = planner.FindPath(a, b);
  Position prev = a;
  for (const Position& p : *path) {
    EXPECT_TRUE(map.SegmentFree(prev, p))
        << "leg (" << prev.x << "," << prev.y << ")->(" << p.x << "," << p.y
        << ")";
    prev = p;
  }
}

TEST(PathPlannerTest, UnreachableWhenFullyWalledOff) {
  Map map = OpenMap();
  // Box completely enclosing the target.
  map.obstacles = {Rect{6.0, 6.0, 9.0, 6.4}, Rect{6.0, 8.6, 9.0, 9.0},
                   Rect{6.0, 6.0, 6.4, 9.0}, Rect{8.6, 6.0, 9.0, 9.0}};
  PathPlanner planner(map, 50);
  EXPECT_FALSE(planner.Reachable({1.0, 1.0}, {7.5, 7.5}));
  EXPECT_TRUE(std::isinf(planner.PathLength({1.0, 1.0}, {7.5, 7.5})));
}

TEST(PathPlannerTest, FindsTheCornerRoomGap) {
  MapConfig config;  // standard 16x16 with the hard corner room
  config.num_pois = 20;
  Rng rng(3);
  auto map_or = GenerateMap(config, rng);
  ASSERT_TRUE(map_or.ok());
  const Map map = std::move(map_or).value();
  PathPlanner planner(map, 64);
  const Position outside{2.0, 10.0};
  const Position inside{config.size_x - config.corner_size / 2.0,
                        config.corner_size / 2.0};
  ASSERT_TRUE(planner.Reachable(outside, inside));
  // The route is forced through the gap: strictly longer than straight line.
  EXPECT_GT(planner.PathLength(outside, inside), Distance(outside, inside));
}

TEST(PathPlannerTest, NextWaypointMovesCloserAroundObstacle) {
  Map map = OpenMap();
  map.obstacles = {Rect{4.0, 3.0, 6.0, 7.0}};
  PathPlanner planner(map, 40);
  const Position from{3.0, 5.0};  // obstacle directly east
  const Position to{8.0, 5.0};
  const Position wp = planner.NextWaypoint(from, to);
  // The waypoint routes around, not through: it cannot be inside the rect.
  EXPECT_FALSE(map.obstacles[0].Contains(wp));
  EXPECT_TRUE(map.SegmentFree(from, wp));
}

TEST(PathPlannerTest, ClampsBlockedEndpointsToNearestFreeCell) {
  Map map = OpenMap();
  map.obstacles = {Rect{4.0, 4.0, 6.0, 6.0}};
  PathPlanner planner(map, 40);
  // Target inside the obstacle: planner still produces a path to the
  // nearest free cell (ending at the requested point).
  const auto path = planner.FindPath({1.0, 1.0}, {5.0, 5.0});
  ASSERT_TRUE(path.has_value());
}

TEST(PathPlannerTest, CellFree) {
  Map map = OpenMap();
  map.obstacles = {Rect{4.0, 4.0, 6.0, 6.0}};
  PathPlanner planner(map, 40);
  EXPECT_TRUE(planner.CellFree({1.0, 1.0}));
  EXPECT_FALSE(planner.CellFree({5.0, 5.0}));
}

TEST(PathPlannerTest, ZeroLengthQuery) {
  const Map map = OpenMap();
  PathPlanner planner(map, 20);
  const auto path = planner.FindPath({3.0, 3.0}, {3.0, 3.0});
  ASSERT_TRUE(path.has_value());
  EXPECT_LT(planner.PathLength({3.0, 3.0}, {3.0, 3.0}), 1e-9);
}

class PathResolutionSweep : public ::testing::TestWithParam<int> {};

TEST_P(PathResolutionSweep, WallDetourConsistentAcrossResolutions) {
  Map map = OpenMap();
  map.obstacles = {Rect{5.0, 0.5, 5.5, 9.0}};
  PathPlanner planner(map, GetParam());
  ASSERT_TRUE(planner.Reachable({2.0, 5.0}, {8.0, 5.0}));
  const double length = planner.PathLength({2.0, 5.0}, {8.0, 5.0});
  EXPECT_GT(length, 10.0);  // forced over the top of the wall
  EXPECT_LT(length, 20.0);
}

INSTANTIATE_TEST_SUITE_P(Resolutions, PathResolutionSweep,
                         ::testing::Values(24, 40, 64, 96));

}  // namespace
}  // namespace cews::env
