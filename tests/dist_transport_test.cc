// The distributed trainer's transport contracts: frame integrity (any
// corruption is detected before a payload byte is interpreted), channel
// liveness semantics (silence — not in-progress transfer — trips the
// deadline; heartbeats refresh it), dial-with-backoff against a late
// listener, and the exact pack/unpack round-trip of every wire payload.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "agents/rollout.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/scenarios.h"
#include "dist/channel.h"
#include "dist/frame.h"
#include "dist/trainer.h"
#include "dist/wire.h"
#include "env/map.h"

namespace cews::dist {
namespace {

std::string TempAddress(const char* tag) {
  return std::string("unix:/tmp/cews_dist_test_") + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

// ---------------------------------------------------------------------------
// Frame layer
// ---------------------------------------------------------------------------

TEST(FrameTest, RoundTripInArbitraryChunks) {
  const std::string payload(1000, 'x');
  std::string stream = EncodeFrame(FrameType::kParams, payload);
  stream += EncodeFrame(FrameType::kHeartbeat, "");
  stream += EncodeFrame(FrameType::kRollout, "abc");

  // Feed in pathological chunk sizes: 1, 7, 13 bytes at a time.
  for (const size_t chunk : {size_t{1}, size_t{7}, size_t{13}}) {
    FrameReader reader;
    for (size_t pos = 0; pos < stream.size(); pos += chunk) {
      const size_t n = std::min(chunk, stream.size() - pos);
      ASSERT_TRUE(reader.Feed(stream.data() + pos, n).ok());
    }
    ASSERT_TRUE(reader.HasFrame());
    Frame f1 = reader.PopFrame();
    EXPECT_EQ(f1.type, FrameType::kParams);
    EXPECT_EQ(f1.payload, payload);
    Frame f2 = reader.PopFrame();
    EXPECT_EQ(f2.type, FrameType::kHeartbeat);
    EXPECT_TRUE(f2.payload.empty());
    Frame f3 = reader.PopFrame();
    EXPECT_EQ(f3.type, FrameType::kRollout);
    EXPECT_EQ(f3.payload, "abc");
    EXPECT_FALSE(reader.HasFrame());
  }
}

TEST(FrameTest, TruncatedFrameNeverSurfaces) {
  const std::string stream = EncodeFrame(FrameType::kParams, "payload");
  FrameReader reader;
  // All but the last byte: nothing must pop out, and no error either (more
  // bytes could still arrive).
  ASSERT_TRUE(reader.Feed(stream.data(), stream.size() - 1).ok());
  EXPECT_FALSE(reader.HasFrame());
  ASSERT_TRUE(reader.Feed(stream.data() + stream.size() - 1, 1).ok());
  EXPECT_TRUE(reader.HasFrame());
}

TEST(FrameTest, EveryBitFlipIsRejected) {
  const std::string clean = EncodeFrame(FrameType::kRollout, "sensitive");
  // Flip one bit at every byte position that is not the magic (a magic flip
  // is also rejected, but with the bad-magic error) and expect a CRC or
  // validation failure — never a surfaced frame.
  for (size_t pos = 4; pos < clean.size(); ++pos) {
    std::string corrupt = clean;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x10);
    FrameReader reader;
    const Status status = reader.Feed(corrupt.data(), corrupt.size());
    EXPECT_FALSE(status.ok() && reader.HasFrame())
        << "bit flip at byte " << pos << " surfaced a frame";
  }
}

TEST(FrameTest, BadMagicPoisonsReader) {
  std::string stream = EncodeFrame(FrameType::kHello, "hi");
  stream[0] = 'X';
  FrameReader reader;
  const Status status = reader.Feed(stream.data(), stream.size());
  ASSERT_FALSE(status.ok());
  // Poisoned: even a clean frame is rejected afterwards.
  const std::string clean = EncodeFrame(FrameType::kHello, "hi");
  EXPECT_FALSE(reader.Feed(clean.data(), clean.size()).ok());
  EXPECT_FALSE(reader.HasFrame());
}

TEST(FrameTest, ImplausibleLengthRejected) {
  std::string stream = EncodeFrame(FrameType::kParams, "x");
  const uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(&stream[8], &huge, sizeof(huge));
  FrameReader reader;
  EXPECT_FALSE(reader.Feed(stream.data(), stream.size()).ok());
}

TEST(FrameTest, UnknownTypeRejected) {
  std::string stream = EncodeFrame(FrameType::kParams, "x");
  const uint32_t bogus = 999;
  std::memcpy(&stream[4], &bogus, sizeof(bogus));
  FrameReader reader;
  EXPECT_FALSE(reader.Feed(stream.data(), stream.size()).ok());
}

// ---------------------------------------------------------------------------
// Channel layer
// ---------------------------------------------------------------------------

TEST(ChannelTest, SendRecvOverUnixSocket) {
  const std::string address = TempAddress("sendrecv");
  auto listener_or = Listener::Bind(address);
  ASSERT_TRUE(listener_or.ok()) << listener_or.status().ToString();
  Listener listener = std::move(*listener_or);

  std::thread peer([&address]() {
    auto ch_or = Channel::Dial(address);
    ASSERT_TRUE(ch_or.ok()) << ch_or.status().ToString();
    Channel ch = std::move(*ch_or);
    ASSERT_TRUE(ch.Send(FrameType::kHello, "from-peer").ok());
    auto reply = ch.Recv(5000);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->type, FrameType::kWelcome);
    EXPECT_EQ(reply->payload, "from-chief");
  });

  auto accepted_or = listener.Accept(5000);
  ASSERT_TRUE(accepted_or.ok()) << accepted_or.status().ToString();
  Channel accepted = std::move(*accepted_or);
  auto hello = accepted.Recv(5000);
  ASSERT_TRUE(hello.ok()) << hello.status().ToString();
  EXPECT_EQ(hello->type, FrameType::kHello);
  EXPECT_EQ(hello->payload, "from-peer");
  ASSERT_TRUE(accepted.Send(FrameType::kWelcome, "from-chief").ok());
  peer.join();

  EXPECT_GT(accepted.bytes_sent(), 0u);
  EXPECT_GT(accepted.bytes_received(), 0u);
}

TEST(ChannelTest, DialRetriesUntilLateListenerBinds) {
  const std::string address = TempAddress("backoff");
  Listener listener;
  std::thread binder([&address, &listener]() {
    // Bind well after the first dial attempts have failed.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    auto listener_or = Listener::Bind(address);
    ASSERT_TRUE(listener_or.ok()) << listener_or.status().ToString();
    listener = std::move(*listener_or);
    auto ch = listener.Accept(5000);
    ASSERT_TRUE(ch.ok()) << ch.status().ToString();
  });
  DialOptions options;
  options.timeout_ms = 5000;
  auto ch_or = Channel::Dial(address, options);
  EXPECT_TRUE(ch_or.ok()) << ch_or.status().ToString();
  binder.join();
}

TEST(ChannelTest, DialGivesUpAfterDeadline) {
  DialOptions options;
  options.timeout_ms = 200;
  auto ch_or = Channel::Dial(TempAddress("nobody"), options);
  ASSERT_FALSE(ch_or.ok());
  EXPECT_EQ(ch_or.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ChannelTest, SilentPeerTripsDeadlineHeartbeatingPeerDoesNot) {
  const std::string address = TempAddress("liveness");
  auto listener_or = Listener::Bind(address);
  ASSERT_TRUE(listener_or.ok());
  Listener listener = std::move(*listener_or);

  std::thread peer([&address]() {
    auto ch_or = Channel::Dial(address);
    ASSERT_TRUE(ch_or.ok());
    Channel ch = std::move(*ch_or);
    // Phase 1: stay silent for 600ms — the chief's first 300ms window must
    // trip while we sleep. Phase 2 begins at 600ms, safely inside the
    // chief's second 300ms window (which opened at ~300ms).
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    // Phase 2: heartbeat every 100ms (well inside the window), then
    // deliver the real frame — the chief's silence clock must keep
    // resetting on the heartbeats.
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(ch.SendHeartbeat().ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    ASSERT_TRUE(ch.Send(FrameType::kRollout, "real").ok());
    // Wait for the chief to close first so the socket stays open.
    (void)ch.Recv(5000);
  });

  auto accepted_or = listener.Accept(5000);
  ASSERT_TRUE(accepted_or.ok());
  Channel accepted = std::move(*accepted_or);

  // Silent peer: a 300ms silence window must trip DeadlineExceeded.
  auto timed_out = accepted.Recv(300);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded);

  // Heartbeating peer: the same silence window now never trips, because
  // heartbeats arrive every 100ms once phase 2 starts (at most ~300ms
  // after this read begins); RecvSkippingHeartbeats returns the real
  // frame that follows them.
  auto frame = RecvSkippingHeartbeats(accepted, 300);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, FrameType::kRollout);
  EXPECT_EQ(frame->payload, "real");
  accepted.Close();
  peer.join();
}

TEST(ChannelTest, ExpectFrameNamesTheMismatch) {
  const std::string address = TempAddress("expect");
  auto listener_or = Listener::Bind(address);
  ASSERT_TRUE(listener_or.ok());
  Listener listener = std::move(*listener_or);
  std::thread peer([&address]() {
    auto ch_or = Channel::Dial(address);
    ASSERT_TRUE(ch_or.ok());
    ASSERT_TRUE(ch_or->Send(FrameType::kShutdown, "").ok());
    (void)ch_or->Recv(2000);
  });
  auto accepted_or = listener.Accept(5000);
  ASSERT_TRUE(accepted_or.ok());
  auto frame = ExpectFrame(*accepted_or, FrameType::kRollout, 2000);
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("rollout"), std::string::npos);
  EXPECT_NE(frame.status().message().find("shutdown"), std::string::npos);
  accepted_or->Close();
  peer.join();
}

// ---------------------------------------------------------------------------
// Wire payloads
// ---------------------------------------------------------------------------

TEST(WireTest, HelloRoundTrip) {
  Hello hello;
  hello.rank = 7;
  hello.config_hash = 0xDEADBEEFCAFEBABEull;
  auto back = UnpackHello(PackHello(hello));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rank, hello.rank);
  EXPECT_EQ(back->config_hash, hello.config_hash);
}

TEST(WireTest, ParamsRoundTripIsBitExact) {
  ParamUpdate update;
  update.iteration = 41;
  Rng rng(5);
  for (int i = 0; i < 257; ++i) {
    update.policy.push_back(static_cast<float>(rng.Gaussian()) * 1e-3f);
  }
  // Include values a text round-trip would mangle.
  update.policy.push_back(1e-45f);          // denormal
  update.policy.push_back(3.14159265e38f);  // near max
  update.intrinsic = {0.0f, -0.0f, 1.0f / 3.0f};
  auto back = UnpackParams(PackParams(update));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->iteration, update.iteration);
  ASSERT_EQ(back->policy.size(), update.policy.size());
  for (size_t i = 0; i < update.policy.size(); ++i) {
    EXPECT_EQ(std::memcmp(&back->policy[i], &update.policy[i], 4), 0)
        << "policy float " << i << " not bit-identical";
  }
  ASSERT_EQ(back->intrinsic.size(), update.intrinsic.size());
}

agents::RolloutBuffer MakeBuffer(int steps, int workers, uint64_t seed,
                                 bool with_adv) {
  Rng rng(seed);
  agents::RolloutBuffer buffer;
  for (int t = 0; t < steps; ++t) {
    agents::Transition tr;
    for (int i = 0; i < 12; ++i) {
      tr.state.push_back(static_cast<float>(rng.Gaussian()));
    }
    for (int w = 0; w < workers; ++w) {
      tr.moves.push_back(static_cast<int>(rng.UniformInt(17)));
      tr.charges.push_back(static_cast<int>(rng.UniformInt(2)));
    }
    tr.log_prob = static_cast<float>(rng.Gaussian());
    tr.value = static_cast<float>(rng.Gaussian());
    tr.reward = static_cast<float>(rng.Gaussian());
    tr.done = t == steps - 1;
    buffer.Add(std::move(tr));
  }
  if (with_adv) buffer.ComputeAdvantages(0.99f, 0.95f, 0.0f);
  return buffer;
}

TEST(WireTest, RolloutRoundTripIsBitExact) {
  RolloutPayload payload;
  payload.rank = 1;
  payload.iteration = 9;
  payload.buffers.push_back(MakeBuffer(6, 2, 11, /*with_adv=*/true));
  payload.buffers.push_back(MakeBuffer(4, 2, 12, /*with_adv=*/true));
  payload.samples.push_back(
      agents::CuriositySample{1, {3, 0.25f, 0.75f}, 4, {5, 0.5f, 0.1f}});
  payload.stats.extrinsic_sum = 1.25;
  payload.stats.intrinsic_sum = 0.5;
  payload.stats.kappa = 0.33;
  payload.stats.xi = 0.9;
  payload.stats.rho = 0.11;
  payload.stats.env_steps = 10;

  auto back = UnpackRollout(PackRollout(payload));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->rank, payload.rank);
  EXPECT_EQ(back->iteration, payload.iteration);
  ASSERT_EQ(back->buffers.size(), 2u);
  for (size_t b = 0; b < 2; ++b) {
    const agents::RolloutBuffer& in = payload.buffers[b];
    const agents::RolloutBuffer& out = back->buffers[b];
    ASSERT_EQ(out.size(), in.size());
    for (size_t t = 0; t < in.size(); ++t) {
      EXPECT_EQ(out[t].state, in[t].state);
      EXPECT_EQ(out[t].moves, in[t].moves);
      EXPECT_EQ(out[t].charges, in[t].charges);
      EXPECT_EQ(std::memcmp(&out[t].log_prob, &in[t].log_prob, 4), 0);
      EXPECT_EQ(out[t].done, in[t].done);
    }
    EXPECT_EQ(out.advantages(), in.advantages());
    EXPECT_EQ(out.returns(), in.returns());
  }
  ASSERT_EQ(back->samples.size(), 1u);
  EXPECT_EQ(back->samples[0].worker, 1);
  EXPECT_EQ(back->samples[0].from.cell, 3);
  EXPECT_EQ(back->samples[0].move, 4);
  EXPECT_EQ(back->stats.env_steps, 10);
  EXPECT_EQ(back->stats.extrinsic_sum, payload.stats.extrinsic_sum);
}

TEST(WireTest, CorruptRolloutPayloadRejectedNotCrash) {
  RolloutPayload payload;
  payload.rank = 0;
  payload.iteration = 1;
  payload.buffers.push_back(MakeBuffer(3, 2, 7, /*with_adv=*/true));
  const std::string packed = PackRollout(payload);
  // Truncations at every length must fail cleanly.
  for (size_t n = 0; n < packed.size(); n += 3) {
    auto r = UnpackRollout(packed.substr(0, n));
    EXPECT_FALSE(r.ok()) << "truncation to " << n << " bytes was accepted";
  }
  // Trailing garbage is also rejected (version-skew tell).
  auto r = UnpackRollout(packed + "zz");
  EXPECT_FALSE(r.ok());
}

TEST(WireTest, ConfigHashSeparatesProblems) {
  const env::Map map =
      *core::MakeScenario(core::Scenario::kEarthquakeSite, 30, 2, 2, 42);
  agents::TrainerConfig config;
  config.env.horizon = 12;
  const agents::TrainerConfig base = NormalizeConfig(config, map);
  const uint64_t h = ConfigHash(base, map);
  EXPECT_EQ(ConfigHash(base, map), h) << "hash must be deterministic";

  agents::TrainerConfig other = base;
  other.seed += 1;
  EXPECT_NE(ConfigHash(other, map), h);
  other = base;
  other.batch_size += 1;
  EXPECT_NE(ConfigHash(other, map), h);
  other = base;
  other.ppo.clip_eps += 0.01f;
  EXPECT_NE(ConfigHash(other, map), h);
  other = base;
  other.intrinsic = agents::IntrinsicMode::kRnd;
  EXPECT_NE(ConfigHash(other, map), h);

  const env::Map other_map =
      *core::MakeScenario(core::Scenario::kEarthquakeSite, 30, 2, 2, 43);
  EXPECT_NE(ConfigHash(base, other_map), h);
}

}  // namespace
}  // namespace cews::dist
