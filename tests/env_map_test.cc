#include "env/map.h"

#include <gtest/gtest.h>

namespace cews::env {
namespace {

Map MakeMap(uint64_t seed = 42, MapConfig config = {}) {
  Rng rng(seed);
  auto result = GenerateMap(config, rng);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(MapTest, GeneratesRequestedCounts) {
  MapConfig config;
  config.num_pois = 123;
  config.num_stations = 5;
  config.num_workers = 3;
  const Map map = MakeMap(1, config);
  EXPECT_EQ(map.pois.size(), 123u);
  EXPECT_EQ(map.stations.size(), 5u);
  EXPECT_EQ(map.worker_spawns.size(), 3u);
}

TEST(MapTest, PoisInBoundsAndOutsideObstaclesWithPositiveValue) {
  const Map map = MakeMap(2);
  for (const Poi& p : map.pois) {
    EXPECT_TRUE(map.InBounds(p.pos));
    EXPECT_FALSE(map.InObstacle(p.pos));
    EXPECT_GT(p.initial_value, 0.0);
    EXPECT_LT(p.initial_value, 1.0);
  }
}

TEST(MapTest, StationsAndSpawnsAreFree) {
  const Map map = MakeMap(3);
  for (const ChargingStation& s : map.stations) {
    EXPECT_TRUE(map.InBounds(s.pos));
    EXPECT_FALSE(map.InObstacle(s.pos));
  }
  for (const Position& p : map.worker_spawns) {
    EXPECT_TRUE(map.InBounds(p));
    EXPECT_FALSE(map.InObstacle(p));
  }
}

TEST(MapTest, DeterministicGivenSeed) {
  const Map a = MakeMap(7);
  const Map b = MakeMap(7);
  ASSERT_EQ(a.pois.size(), b.pois.size());
  for (size_t i = 0; i < a.pois.size(); ++i) {
    EXPECT_TRUE(a.pois[i].pos == b.pois[i].pos);
    EXPECT_EQ(a.pois[i].initial_value, b.pois[i].initial_value);
  }
  ASSERT_EQ(a.obstacles.size(), b.obstacles.size());
}

TEST(MapTest, DifferentSeedsDiffer) {
  const Map a = MakeMap(7);
  const Map b = MakeMap(8);
  bool any_diff = false;
  for (size_t i = 0; i < std::min(a.pois.size(), b.pois.size()); ++i) {
    if (!(a.pois[i].pos == b.pois[i].pos)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(MapTest, CornerRoomHoldsConfiguredFraction) {
  MapConfig config;
  config.num_pois = 200;
  config.corner_fraction = 0.15;
  const Map map = MakeMap(4, config);
  int in_corner = 0;
  for (const Poi& p : map.pois) {
    if (p.pos.x > config.size_x - config.corner_size &&
        p.pos.y < config.corner_size) {
      ++in_corner;
    }
  }
  EXPECT_GE(in_corner, 30);  // exactly floor(0.15 * 200) placed inside
}

TEST(MapTest, CornerRoomHasNarrowEntranceOnly) {
  MapConfig config;
  const Map map = MakeMap(5, config);
  // A straight path into the room interior from far outside must cross a
  // wall.
  const Position inside{config.size_x - config.corner_size / 2.0,
                        config.corner_size / 2.0};
  const Position far_left{1.0, config.corner_size / 2.0};
  EXPECT_FALSE(map.SegmentFree(far_left, inside));
  // The gap is centered in the top wall: crossing vertically through the
  // gap is free (other random obstacles are kept away from the room).
  const double inner_x0 =
      config.size_x - config.corner_size + config.corner_wall;
  const double span = config.size_x - inner_x0;
  const double gap_center_x = inner_x0 + span / 2.0;
  const Position above_gap{gap_center_x, config.corner_size + 0.3};
  const Position below_gap{gap_center_x, config.corner_size - 0.8};
  EXPECT_TRUE(map.SegmentFree(above_gap, below_gap));
}

TEST(MapTest, SpawnsNeverInsideCornerRoom) {
  MapConfig config;
  config.num_workers = 20;
  const Map map = MakeMap(6, config);
  for (const Position& p : map.worker_spawns) {
    const bool in_corner = p.x > config.size_x - config.corner_size &&
                           p.y < config.corner_size;
    EXPECT_FALSE(in_corner);
  }
}

TEST(MapTest, StationsNeverInsideCornerRoom) {
  MapConfig config;
  config.num_stations = 10;
  const Map map = MakeMap(9, config);
  for (const ChargingStation& s : map.stations) {
    const bool in_corner = s.pos.x > config.size_x - config.corner_size &&
                           s.pos.y < config.corner_size;
    EXPECT_FALSE(in_corner);
  }
}

TEST(MapTest, NoHardCornerOption) {
  MapConfig config;
  config.hard_corner = false;
  config.num_obstacles = 0;
  const Map map = MakeMap(10, config);
  EXPECT_TRUE(map.obstacles.empty());
}

TEST(MapTest, TotalInitialDataIsSumOfPoiValues) {
  const Map map = MakeMap(11);
  double sum = 0.0;
  for (const Poi& p : map.pois) sum += p.initial_value;
  EXPECT_DOUBLE_EQ(map.TotalInitialData(), sum);
}

TEST(MapTest, SegmentFreeRespectsBounds) {
  const Map map = MakeMap(12);
  EXPECT_FALSE(map.SegmentFree({1, 1}, {-1, 1}));
  EXPECT_FALSE(map.SegmentFree({1, 1}, {1, 100}));
}

TEST(MapTest, InvalidConfigsRejected) {
  Rng rng(1);
  MapConfig bad_size;
  bad_size.size_x = -1;
  EXPECT_FALSE(GenerateMap(bad_size, rng).ok());

  MapConfig no_pois;
  no_pois.num_pois = 0;
  EXPECT_FALSE(GenerateMap(no_pois, rng).ok());

  MapConfig bad_fractions;
  bad_fractions.uniform_fraction = 0.9;
  bad_fractions.corner_fraction = 0.5;
  EXPECT_FALSE(GenerateMap(bad_fractions, rng).ok());

  MapConfig huge_corner;
  huge_corner.corner_size = 20.0;
  EXPECT_FALSE(GenerateMap(huge_corner, rng).ok());

  MapConfig gap_wider_than_room;
  gap_wider_than_room.corner_gap = 10.0;
  EXPECT_FALSE(GenerateMap(gap_wider_than_room, rng).ok());
}

class MapSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MapSeedSweep, InvariantsHoldAcrossSeeds) {
  MapConfig config;
  config.num_pois = 80;
  config.num_workers = 4;
  const Map map = MakeMap(GetParam(), config);
  EXPECT_EQ(map.pois.size(), 80u);
  for (const Poi& p : map.pois) {
    EXPECT_TRUE(map.InBounds(p.pos));
    EXPECT_FALSE(map.InObstacle(p.pos));
  }
  EXPECT_GT(map.TotalInitialData(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapSeedSweep,
                         ::testing::Values(1, 13, 99, 1234, 777777));

}  // namespace
}  // namespace cews::env
