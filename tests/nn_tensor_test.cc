#include "nn/tensor.h"

#include <gtest/gtest.h>

#include "nn/ops.h"

namespace cews::nn {
namespace {

TEST(TensorTest, ZerosShapeAndData) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_TRUE(t.defined());
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.numel(), 6);
  for (Index i = 0; i < 6; ++i) EXPECT_EQ(t.data()[i], 0.0f);
  EXPECT_FALSE(t.requires_grad());
}

TEST(TensorTest, NegativeDimIndexing) {
  Tensor t = Tensor::Zeros({4, 5, 6});
  EXPECT_EQ(t.dim(-1), 6);
  EXPECT_EQ(t.dim(-3), 4);
}

TEST(TensorTest, FullAndScalar) {
  Tensor t = Tensor::Full({3}, 2.5f);
  EXPECT_EQ(t.data()[2], 2.5f);
  Tensor s = Tensor::Scalar(7.0f);
  EXPECT_EQ(s.ndim(), 0);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_EQ(s.item(), 7.0f);
}

TEST(TensorTest, FromDataAndAt) {
  Tensor t = Tensor::FromData({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ((t.at({0, 0})), 1.0f);
  EXPECT_EQ((t.at({0, 1})), 2.0f);
  EXPECT_EQ((t.at({1, 0})), 3.0f);
  EXPECT_EQ((t.at({1, 1})), 4.0f);
  EXPECT_EQ(t.ToVector().size(), 4u);
}

TEST(TensorTest, UndefinedHandle) {
  Tensor t;
  EXPECT_FALSE(t.defined());
}

TEST(TensorTest, GradLazilyAllocated) {
  Tensor t = Tensor::Zeros({2}, /*requires_grad=*/true);
  EXPECT_EQ(t.grad(), nullptr);
  t.ZeroGrad();
  ASSERT_NE(t.grad(), nullptr);
  EXPECT_EQ(t.grad()[0], 0.0f);
}

TEST(TensorTest, BackwardThroughSimpleChain) {
  // y = sum(2 * x); dy/dx = 2 everywhere.
  Tensor x = Tensor::FromData({3}, {1.0f, 2.0f, 3.0f}, true);
  Tensor y = Sum(MulScalar(x, 2.0f));
  EXPECT_FLOAT_EQ(y.item(), 12.0f);
  y.Backward();
  ASSERT_NE(x.grad(), nullptr);
  for (int i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(x.grad()[i], 2.0f);
}

TEST(TensorTest, GradAccumulatesWhenTensorUsedTwice) {
  // y = sum(x + x); dy/dx = 2.
  Tensor x = Tensor::FromData({2}, {1.0f, 1.0f}, true);
  Tensor y = Sum(Add(x, x));
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 2.0f);
}

TEST(TensorTest, BackwardAccumulatesAcrossCalls) {
  Tensor x = Tensor::FromData({1}, {3.0f}, true);
  Tensor y1 = Sum(Square(x));
  y1.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);
  Tensor y2 = Sum(Square(x));
  y2.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 12.0f);  // accumulated
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(TensorTest, NoGradGuardSuppressesTape) {
  Tensor x = Tensor::FromData({2}, {1.0f, 2.0f}, true);
  {
    NoGradGuard guard;
    Tensor y = MulScalar(x, 3.0f);
    EXPECT_FALSE(y.requires_grad());
  }
  Tensor y = MulScalar(x, 3.0f);
  EXPECT_TRUE(y.requires_grad());
}

TEST(TensorTest, NoGradGuardNests) {
  EXPECT_TRUE(GradModeEnabled());
  {
    NoGradGuard a;
    EXPECT_FALSE(GradModeEnabled());
    {
      NoGradGuard b;
      EXPECT_FALSE(GradModeEnabled());
    }
    EXPECT_FALSE(GradModeEnabled());
  }
  EXPECT_TRUE(GradModeEnabled());
}

TEST(TensorTest, DetachBreaksTape) {
  Tensor x = Tensor::FromData({2}, {1.0f, 2.0f}, true);
  Tensor d = MulScalar(x, 2.0f).Detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_FLOAT_EQ(d.data()[1], 4.0f);
  // Ops on the detached tensor never reach x.
  Tensor y = Sum(d);
  EXPECT_FALSE(y.requires_grad());
}

TEST(TensorTest, DiamondGraphGradient) {
  // y = sum(a*x + x^2): dy/dx = a + 2x with a = x (shared node) gives
  // z = x*x + x^2 -> dz/dx = 4x.
  Tensor x = Tensor::FromData({1}, {3.0f}, true);
  Tensor z = Sum(Add(Mul(x, x), Square(x)));
  z.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 12.0f);
}

TEST(TensorTest, ShapeToStringFormat) {
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
  EXPECT_EQ(ShapeToString({}), "[]");
  EXPECT_EQ(NumElements({}), 1);
  EXPECT_EQ(NumElements({2, 0, 4}), 0);
}

TEST(TensorTest, CloneIsDeepCopy) {
  Tensor x = Tensor::FromData({2}, {1.0f, 2.0f});
  Tensor c = x.Clone();
  c.data()[0] = 9.0f;
  EXPECT_FLOAT_EQ(x.data()[0], 1.0f);
}

TEST(TensorDeathTest, DoubleBackwardOnSameRootDies) {
  // The tape consumes its closures on the first Backward(); a second call
  // would silently accumulate garbage, so it is a hard CHECK failure.
  Tensor x = Tensor::Full({2}, 3.0f, /*requires_grad=*/true);
  Tensor y = Sum(Square(x));
  y.Backward();
  EXPECT_DEATH(y.Backward(), "double Backward");
}

}  // namespace
}  // namespace cews::nn
