// End-to-end check that a short training run leaves telemetry behind for
// every instrumented subsystem: trainer phases, env stepping, NN kernels,
// rollout packing, and (with a multi-thread pool) the kernel runtime.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "agents/chief_employee.h"
#include "common/thread_pool.h"
#include "env/map.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cews {
namespace {

env::Map SmallMap(uint64_t seed = 42) {
  env::MapConfig config;
  config.num_pois = 40;
  config.num_workers = 2;
  config.num_stations = 2;
  config.num_obstacles = 2;
  Rng rng(seed);
  auto result = env::GenerateMap(config, rng);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

agents::TrainerConfig TinyTrainer() {
  agents::TrainerConfig config;
  config.num_employees = 2;
  config.episodes = 2;
  config.batch_size = 16;
  config.update_epochs = 2;
  config.env.horizon = 16;
  config.encoder.grid = 10;
  config.net.grid = 10;
  config.net.conv1_channels = 4;
  config.net.conv2_channels = 4;
  config.net.conv3_channels = 4;
  config.net.feature_dim = 32;
  config.runtime_threads = 2;  // exercise the pool instrumentation too
  config.seed = 3;
  return config;
}

TEST(ObsIntegrationTest, ShortTrainingRunPopulatesEveryInstrumentedPhase) {
  obs::Registry::Global().ResetForTest();
  obs::ClearTraceForTest();
  obs::SetTraceEnabled(true);
  {
    agents::ChiefEmployeeTrainer trainer(TinyTrainer(), SmallMap());
    trainer.Train();
  }
  obs::SetTraceEnabled(false);

  // threadpool.queue_wait_ns only gets a sample when a pool *worker* claims
  // a region; on a loaded host the workers can starve for this entire tiny
  // run while the submitting thread legally executes every chunk itself.
  // Scheduling, not correctness, is what varies — so force a worker-side
  // sample with slow single-index chunks before reading the snapshot.
  for (int attempt = 0; attempt < 500; ++attempt) {
    const obs::HistogramSnapshot* h =
        obs::SnapshotMetrics().FindHistogram("threadpool.queue_wait_ns");
    if (h != nullptr && h->count > 0) break;
    runtime::GlobalPool().ParallelFor(0, 8, /*grain=*/1, [](int64_t, int64_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    });
  }
  runtime::SetGlobalPoolThreads(1);

  const obs::MetricsSnapshot snap = obs::SnapshotMetrics();

  // Counters every subsystem must have bumped.
  for (const char* name :
       {"env.steps", "train.episodes", "rollout.pack.calls",
        "rollout.pack.transitions", "nn.matmul.calls", "nn.matmul.fwd_flops",
        "nn.matmul.fwd_ns", "nn.matmul.bwd_flops", "nn.matmul.bwd_ns",
        "nn.conv2d.calls", "nn.conv2d.fwd_flops", "nn.conv2d.fwd_ns",
        "nn.conv2d.bwd_flops", "nn.conv2d.bwd_ns", "threadpool.regions",
        "threadpool.chunks", "threadpool.busy_ns"}) {
    EXPECT_GT(snap.CounterValue(name), 0u) << "empty counter: " << name;
  }

  // Duration histograms for every instrumented phase.
  for (const char* name :
       {"env.step_ns", "rollout.pack_ns", "ppo.loss_ns",
        "trainer.rollout_ns", "trainer.learn_ns", "trainer.sync_ns",
        "trainer.barrier_ns", "threadpool.region_ns",
        "threadpool.queue_wait_ns"}) {
    const obs::HistogramSnapshot* h = snap.FindHistogram(name);
    ASSERT_NE(h, nullptr) << "missing histogram: " << name;
    EXPECT_GT(h->count, 0u) << "empty histogram: " << name;
    EXPECT_GT(h->sum, 0u) << "zero-duration histogram: " << name;
  }

  // Headline gauges the heartbeat reads.
  EXPECT_GT(snap.GaugeValue("threadpool.threads"), 0.0);
  ASSERT_NE(snap.FindGauge("train.loss"), nullptr);
  ASSERT_NE(snap.FindGauge("train.kappa"), nullptr);

  // env.steps == employees * episodes * horizon for the synchronous trainer.
  EXPECT_EQ(snap.CounterValue("env.steps"), 2u * 2u * 16u);
  EXPECT_EQ(snap.CounterValue("train.episodes"), 2u);

  // The trace holds spans from every instrumented layer.
  const std::vector<obs::CollectedSpan> spans = obs::CollectSpans();
  std::set<std::string> names;
  for (const obs::CollectedSpan& s : spans) names.insert(s.name);
  for (const char* name :
       {"trainer.rollout", "trainer.learn", "trainer.sync",
        "trainer.barrier", "env.Step", "agents.PackBatch", "agents.PpoLoss",
        "nn.MatMul", "nn.MatMul.bwd", "nn.Conv2d", "nn.Conv2d.bwd",
        "runtime.ParallelFor"}) {
    EXPECT_TRUE(names.count(name) > 0) << "missing span: " << name;
  }

  // And the export is loadable trace_event JSON.
  const std::string json = obs::SpansToChromeJson(spans);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"trainer.rollout\""), std::string::npos);

  obs::Registry::Global().ResetForTest();
  obs::ClearTraceForTest();
}

}  // namespace
}  // namespace cews
