#include "agents/policy_net.h"

#include <gtest/gtest.h>

#include <cmath>

#include "agents/eval.h"
#include "agents/ppo.h"
#include "nn/params.h"

namespace cews::agents {
namespace {

PolicyNetConfig TinyNet(int workers = 2) {
  PolicyNetConfig config;
  config.grid = 8;
  config.num_workers = workers;
  config.num_moves = 9;
  config.conv1_channels = 4;
  config.conv2_channels = 4;
  config.conv3_channels = 4;
  config.feature_dim = 32;
  return config;
}

std::vector<float> ZeroState(const PolicyNetConfig& c) {
  return std::vector<float>(
      static_cast<size_t>(c.in_channels * c.grid * c.grid), 0.0f);
}

TEST(PolicyNetTest, OutputShapes) {
  Rng rng(1);
  const PolicyNetConfig config = TinyNet();
  PolicyNet net(config, rng);
  nn::Tensor x = nn::Tensor::Zeros({3, 3, 8, 8});
  const PolicyOutput out = net.Forward(x);
  EXPECT_EQ(out.move_logits.shape(), (nn::Shape{3, 2, 9}));
  EXPECT_EQ(out.charge_logits.shape(), (nn::Shape{3, 2, 2}));
  EXPECT_EQ(out.value.shape(), (nn::Shape{3}));
  EXPECT_EQ(out.feature.shape(), (nn::Shape{3, 32}));
}

TEST(PolicyNetTest, OutputsFinite) {
  Rng rng(2);
  PolicyNet net(TinyNet(), rng);
  nn::Tensor x = nn::Tensor::Full({1, 3, 8, 8}, 1.0f);
  const PolicyOutput out = net.Forward(x);
  for (nn::Index i = 0; i < out.move_logits.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(out.move_logits.data()[i]));
  }
  EXPECT_TRUE(std::isfinite(out.value.data()[0]));
}

TEST(PolicyNetTest, SmallGainKeepsInitialPolicyNearUniform) {
  Rng rng(3);
  PolicyNet net(TinyNet(), rng);
  nn::Tensor x = nn::Tensor::Full({1, 3, 8, 8}, 0.5f);
  const PolicyOutput out = net.Forward(x);
  // With 0.01-gain heads the logits are tiny -> near-uniform distribution.
  for (nn::Index i = 0; i < out.move_logits.numel(); ++i) {
    EXPECT_LT(std::abs(out.move_logits.data()[i]), 0.5f);
  }
}

TEST(PolicyNetTest, ParameterCountMatchesArchitecture) {
  Rng rng(4);
  const PolicyNetConfig c = TinyNet();
  PolicyNet net(c, rng);
  EXPECT_GT(net.NumParameters(), 0);
  // Conv params + LN params + FC + 3 heads; spot-check total consistency
  // between two identically-configured nets.
  Rng rng2(5);
  PolicyNet net2(c, rng2);
  EXPECT_EQ(net.NumParameters(), net2.NumParameters());
  EXPECT_EQ(net.Parameters().size(), net2.Parameters().size());
}

TEST(SamplePolicyTest, ActionsInRange) {
  Rng rng(6);
  const PolicyNetConfig c = TinyNet();
  PolicyNet net(c, rng);
  Rng sample_rng(7);
  const ActResult act = SamplePolicy(net, ZeroState(c), sample_rng, false);
  ASSERT_EQ(act.moves.size(), 2u);
  ASSERT_EQ(act.charges.size(), 2u);
  ASSERT_EQ(act.actions.size(), 2u);
  for (int w = 0; w < 2; ++w) {
    EXPECT_GE(act.moves[static_cast<size_t>(w)], 0);
    EXPECT_LT(act.moves[static_cast<size_t>(w)], 9);
    EXPECT_TRUE(act.charges[static_cast<size_t>(w)] == 0 ||
                act.charges[static_cast<size_t>(w)] == 1);
    EXPECT_EQ(act.actions[static_cast<size_t>(w)].move,
              act.moves[static_cast<size_t>(w)]);
  }
  EXPECT_LE(act.log_prob, 0.0f);
  EXPECT_TRUE(std::isfinite(act.value));
}

TEST(SamplePolicyTest, DeterministicIsRepeatable) {
  Rng rng(8);
  const PolicyNetConfig c = TinyNet();
  PolicyNet net(c, rng);
  Rng r1(1), r2(2);
  const ActResult a = SamplePolicy(net, ZeroState(c), r1, true);
  const ActResult b = SamplePolicy(net, ZeroState(c), r2, true);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.charges, b.charges);
}

TEST(SamplePolicyTest, StochasticIsSeedDeterministic) {
  Rng rng(9);
  const PolicyNetConfig c = TinyNet();
  PolicyNet net(c, rng);
  Rng r1(5), r2(5);
  const ActResult a = SamplePolicy(net, ZeroState(c), r1, false);
  const ActResult b = SamplePolicy(net, ZeroState(c), r2, false);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.charges, b.charges);
  EXPECT_FLOAT_EQ(a.log_prob, b.log_prob);
}

RolloutBuffer MakeBiasedBuffer(const PolicyNetConfig& c, PpoAgent& agent,
                               Rng& rng, int steps) {
  // Synthetic experience: move index 1 earns +1, everything else -1.
  RolloutBuffer buffer;
  const std::vector<float> state = ZeroState(c);
  for (int t = 0; t < steps; ++t) {
    const ActResult act = agent.Act(state, rng);
    Transition tr;
    tr.state = state;
    tr.moves = act.moves;
    tr.charges = act.charges;
    tr.log_prob = act.log_prob;
    tr.value = act.value;
    tr.reward = act.moves[0] == 1 ? 1.0f : -1.0f;
    tr.done = (t + 1 == steps);
    buffer.Add(std::move(tr));
  }
  buffer.ComputeAdvantages(0.0f, 0.95f, 0.0f);  // gamma 0: reward is target
  return buffer;
}

TEST(PpoAgentTest, LossIsFiniteAndProducesGradients) {
  const PolicyNetConfig c = TinyNet();
  PpoAgent agent(c, PpoConfig{}, 11);
  Rng rng(12);
  RolloutBuffer buffer = MakeBiasedBuffer(c, agent, rng, 32);
  const std::vector<size_t> idx = buffer.SampleIndices(16, rng);
  nn::ZeroGradients(agent.Parameters());
  LossStats stats;
  nn::Tensor loss = agent.ComputeLoss(buffer, idx, &stats);
  EXPECT_TRUE(std::isfinite(stats.total));
  EXPECT_TRUE(std::isfinite(stats.policy_loss));
  EXPECT_TRUE(std::isfinite(stats.value_loss));
  EXPECT_GT(stats.entropy, 0.0f);  // near-uniform init has high entropy
  loss.Backward();
  EXPECT_GT(nn::GlobalGradNorm(agent.Parameters()), 0.0);
}

TEST(PpoAgentTest, DiagnosticsBeforeAnyUpdateAreNeutral) {
  // Evaluating the loss under the behavior policy itself: ratio == 1
  // everywhere, so approx-KL ~ 0 and nothing is clipped.
  const PolicyNetConfig c = TinyNet();
  PpoAgent agent(c, PpoConfig{}, 21);
  Rng rng(22);
  RolloutBuffer buffer = MakeBiasedBuffer(c, agent, rng, 32);
  const std::vector<size_t> idx = buffer.SampleIndices(32, rng);
  LossStats stats;
  agent.ComputeLoss(buffer, idx, &stats);
  EXPECT_NEAR(stats.approx_kl, 0.0f, 1e-4f);
  EXPECT_EQ(stats.clip_fraction, 0.0f);
}

TEST(PpoAgentTest, DiagnosticsMoveAfterUpdates) {
  const PolicyNetConfig c = TinyNet();
  PpoConfig ppo;
  ppo.lr = 0.02f;
  PpoAgent agent(c, ppo, 23);
  Rng rng(24);
  RolloutBuffer buffer = MakeBiasedBuffer(c, agent, rng, 64);
  // Several aggressive updates on the same buffer push the policy away
  // from the behavior policy.
  agent.UpdateStandalone(buffer, rng, /*epochs=*/12, /*minibatch=*/64);
  const std::vector<size_t> idx = buffer.SampleIndices(64, rng);
  LossStats stats;
  agent.ComputeLoss(buffer, idx, &stats);
  EXPECT_GT(std::abs(stats.approx_kl), 1e-4f);
  EXPECT_GT(stats.clip_fraction, 0.0f);
  EXPECT_LE(stats.clip_fraction, 1.0f);
}

TEST(PpoAgentTest, UpdateShiftsPolicyTowardAdvantagedAction) {
  const PolicyNetConfig c = TinyNet();
  PpoConfig ppo;
  ppo.lr = 0.01f;  // Adam moves ~lr per step; keep the test fast
  ppo.entropy_coef = 0.0f;
  PpoAgent agent(c, ppo, 13);
  Rng rng(14);
  const std::vector<float> state = ZeroState(c);

  auto prob_of_move1 = [&]() {
    nn::NoGradGuard no_grad;
    nn::Tensor x =
        nn::Tensor::FromData({1, c.in_channels, c.grid, c.grid}, state);
    const PolicyOutput out = agent.net().Forward(x);
    // softmax over worker 0's move logits
    float mx = out.move_logits.data()[0];
    for (int j = 1; j < c.num_moves; ++j) {
      mx = std::max(mx, out.move_logits.data()[j]);
    }
    double z = 0.0;
    for (int j = 0; j < c.num_moves; ++j) {
      z += std::exp(out.move_logits.data()[j] - mx);
    }
    return std::exp(out.move_logits.data()[1] - mx) / z;
  };

  const double before = prob_of_move1();
  for (int round = 0; round < 25; ++round) {
    RolloutBuffer buffer = MakeBiasedBuffer(c, agent, rng, 64);
    agent.UpdateStandalone(buffer, rng, /*epochs=*/4, /*minibatch=*/32);
  }
  const double after = prob_of_move1();
  EXPECT_GT(after, std::max(before, 1.0 / c.num_moves) + 0.15);
}

TEST(PpoAgentTest, ValueHeadRegressesToReturns) {
  const PolicyNetConfig c = TinyNet();
  PpoConfig ppo;
  ppo.entropy_coef = 0.0f;
  ppo.lr = 0.01f;
  PpoAgent agent(c, ppo, 15);
  Rng rng(16);
  const std::vector<float> state = ZeroState(c);
  // Constant reward 1 with gamma 0 -> value target 1 everywhere.
  for (int round = 0; round < 30; ++round) {
    RolloutBuffer buffer;
    for (int t = 0; t < 32; ++t) {
      const ActResult act = agent.Act(state, rng);
      Transition tr;
      tr.state = state;
      tr.moves = act.moves;
      tr.charges = act.charges;
      tr.log_prob = act.log_prob;
      tr.value = act.value;
      tr.reward = 1.0f;
      tr.done = (t == 31);
      buffer.Add(std::move(tr));
    }
    buffer.ComputeAdvantages(0.0f, 0.95f, 0.0f);
    agent.UpdateStandalone(buffer, rng, 4, 16);
  }
  EXPECT_NEAR(agent.Value(state), 1.0f, 0.3f);
}

}  // namespace
}  // namespace cews::agents
