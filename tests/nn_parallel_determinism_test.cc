// Thread-count invariance of the parallel NN kernels: every kernel gives
// each accumulator exactly one owning parallel index with a fixed internal
// accumulation order, so forward values AND gradients must be bitwise
// identical whether the global pool has 1 thread or many. A short DrlCews
// training run (single employee) extends the property end to end.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "agents/chief_employee.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "env/map.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace cews {
namespace {

std::vector<float> RandomData(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(n);
  for (float& v : data) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return data;
}

std::vector<float> ToVec(const nn::Tensor& t) {
  return std::vector<float>(t.data(), t.data() + t.numel());
}

std::vector<float> GradVec(const nn::Tensor& t) {
  return std::vector<float>(t.grad(), t.grad() + t.numel());
}

/// Asserts two float vectors are bitwise identical (no tolerance).
void ExpectBitwiseEqual(const std::vector<float>& a,
                        const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

/// Runs `fn` under a pool of `threads` threads and restores serial mode.
template <typename Fn>
auto WithPool(int threads, Fn&& fn) {
  runtime::SetGlobalPoolThreads(threads);
  auto result = fn();
  runtime::SetGlobalPoolThreads(1);
  return result;
}

struct ForwardBackward {
  std::vector<float> out;
  std::vector<std::vector<float>> grads;
};

ForwardBackward RunMatMul(nn::Index n, nn::Index k, nn::Index m) {
  nn::Tensor a = nn::Tensor::FromData(
      {n, k}, RandomData(static_cast<size_t>(n * k), 11), true);
  nn::Tensor b = nn::Tensor::FromData(
      {k, m}, RandomData(static_cast<size_t>(k * m), 13), true);
  nn::Tensor c = nn::MatMul(a, b);
  nn::Mean(nn::Square(c)).Backward();
  return {ToVec(c), {GradVec(a), GradVec(b)}};
}

ForwardBackward RunConv2d(nn::Index batch, nn::Index g) {
  const nn::Index cin = 3, cout = 8, kk = 3;
  nn::Tensor x = nn::Tensor::FromData(
      {batch, cin, g, g},
      RandomData(static_cast<size_t>(batch * cin * g * g), 17), true);
  nn::Tensor w = nn::Tensor::FromData(
      {cout, cin, kk, kk},
      RandomData(static_cast<size_t>(cout * cin * kk * kk), 19), true);
  nn::Tensor bias =
      nn::Tensor::FromData({cout}, RandomData(static_cast<size_t>(cout), 23),
                           true);
  nn::Tensor y = nn::Conv2d(x, w, bias, /*stride=*/1, /*padding=*/1);
  nn::Mean(nn::Square(y)).Backward();
  return {ToVec(y), {GradVec(x), GradVec(w), GradVec(bias)}};
}

TEST(ParallelDeterminismTest, MatMulForwardBackwardBitwiseInvariant) {
  const ForwardBackward serial = WithPool(1, [] {
    return RunMatMul(64, 96, 48);
  });
  for (const int threads : {2, 4, 7}) {
    const ForwardBackward parallel = WithPool(threads, [] {
      return RunMatMul(64, 96, 48);
    });
    ExpectBitwiseEqual(serial.out, parallel.out);
    ASSERT_EQ(serial.grads.size(), parallel.grads.size());
    for (size_t i = 0; i < serial.grads.size(); ++i) {
      ExpectBitwiseEqual(serial.grads[i], parallel.grads[i]);
    }
  }
}

TEST(ParallelDeterminismTest, Conv2dForwardBackwardBitwiseInvariant) {
  const ForwardBackward serial = WithPool(1, [] {
    return RunConv2d(4, 16);
  });
  for (const int threads : {2, 4}) {
    const ForwardBackward parallel = WithPool(threads, [] {
      return RunConv2d(4, 16);
    });
    ExpectBitwiseEqual(serial.out, parallel.out);
    ASSERT_EQ(serial.grads.size(), parallel.grads.size());
    for (size_t i = 0; i < serial.grads.size(); ++i) {
      ExpectBitwiseEqual(serial.grads[i], parallel.grads[i]);
    }
  }
}

env::Map SmallMap() {
  env::MapConfig config;
  config.num_pois = 40;
  config.num_workers = 2;
  config.num_stations = 2;
  config.num_obstacles = 2;
  Rng rng(42);
  auto result = env::GenerateMap(config, rng);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

agents::TrainerConfig TinyTrainer(int runtime_threads) {
  agents::TrainerConfig config;
  // One employee: with several employees the order in which gradient sums
  // land in the chief's buffer is arrival-order nondeterministic, which is
  // independent of the kernel pool under test.
  config.num_employees = 1;
  config.episodes = 2;
  config.batch_size = 16;
  config.update_epochs = 2;
  config.env.horizon = 16;
  config.encoder.grid = 10;
  config.net.grid = 10;
  config.net.conv1_channels = 4;
  config.net.conv2_channels = 4;
  config.net.conv3_channels = 4;
  config.net.feature_dim = 32;
  config.seed = 3;
  config.runtime_threads = runtime_threads;
  return config;
}

TEST(ParallelDeterminismTest, TrainingRunInvariantToRuntimeThreads) {
  const env::Map map = SmallMap();

  agents::ChiefEmployeeTrainer serial(TinyTrainer(/*runtime_threads=*/1),
                                      map);
  const agents::TrainResult serial_result = serial.Train();
  std::vector<std::vector<float>> serial_params;
  for (const nn::Tensor& p : serial.global_net().Parameters()) {
    serial_params.push_back(ToVec(p));
  }

  agents::ChiefEmployeeTrainer parallel(TinyTrainer(/*runtime_threads=*/4),
                                        map);
  const agents::TrainResult parallel_result = parallel.Train();
  runtime::SetGlobalPoolThreads(1);

  ASSERT_EQ(serial_result.history.size(), parallel_result.history.size());
  for (size_t i = 0; i < serial_result.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial_result.history[i].kappa,
                     parallel_result.history[i].kappa);
    EXPECT_DOUBLE_EQ(serial_result.history[i].extrinsic_reward,
                     parallel_result.history[i].extrinsic_reward);
    EXPECT_DOUBLE_EQ(serial_result.history[i].intrinsic_reward,
                     parallel_result.history[i].intrinsic_reward);
  }
  const std::vector<nn::Tensor> parallel_params =
      parallel.global_net().Parameters();
  ASSERT_EQ(serial_params.size(), parallel_params.size());
  for (size_t i = 0; i < serial_params.size(); ++i) {
    ExpectBitwiseEqual(serial_params[i], ToVec(parallel_params[i]));
  }
}

}  // namespace
}  // namespace cews
