#include "agents/curiosity.h"

#include <gtest/gtest.h>

#include "agents/rnd.h"
#include "nn/optimizer.h"
#include "nn/params.h"

namespace cews::agents {
namespace {

CuriosityConfig SmallConfig() {
  CuriosityConfig config;
  config.num_cells = 64;
  config.num_moves = 9;
  config.num_workers = 2;
  config.embed_dim = 8;
  config.hidden = 32;
  return config;
}

PositionObs Obs(int cell) {
  PositionObs o;
  o.cell = cell;
  o.sx = static_cast<float>(cell % 8) / 8.0f;
  o.sy = static_cast<float>(cell / 8) / 8.0f;
  return o;
}

TEST(CuriosityTest, IntrinsicRewardNonNegativeAndScalesWithEta) {
  CuriosityConfig config = SmallConfig();
  SpatialCuriosity a(config, 1);
  config.eta = 0.6f;
  SpatialCuriosity b(config, 1);  // same seed: same nets
  const double ra = a.IntrinsicReward(0, Obs(3), 2, Obs(4));
  const double rb = b.IntrinsicReward(0, Obs(3), 2, Obs(4));
  EXPECT_GE(ra, 0.0);
  EXPECT_NEAR(rb, ra * 2.0, 1e-9);
}

TEST(CuriosityTest, SameSeedGivesIdenticalModel) {
  const CuriosityConfig config = SmallConfig();
  SpatialCuriosity a(config, 42), b(config, 42);
  EXPECT_NEAR(a.IntrinsicReward(1, Obs(10), 5, Obs(11)),
              b.IntrinsicReward(1, Obs(10), 5, Obs(11)), 1e-12);
}

TEST(CuriosityTest, TrainingReducesIntrinsicRewardOnSeenTransitions) {
  const CuriosityConfig config = SmallConfig();
  SpatialCuriosity curiosity(config, 7);
  std::vector<CuriositySample> batch;
  for (int i = 0; i < 16; ++i) {
    batch.push_back(CuriositySample{0, Obs(i), i % 9, Obs(i + 1)});
  }
  const double before =
      curiosity.IntrinsicReward(0, batch[0].from, batch[0].move, batch[0].to);
  nn::Adam adam(curiosity.Parameters(), 0.01f);
  for (int step = 0; step < 200; ++step) {
    adam.ZeroGrad();
    nn::Tensor loss = curiosity.Loss(batch);
    loss.Backward();
    adam.Step();
  }
  const double after =
      curiosity.IntrinsicReward(0, batch[0].from, batch[0].move, batch[0].to);
  EXPECT_LT(after, before * 0.2);
}

TEST(CuriosityTest, NovelTransitionStaysMoreSurprising) {
  // Train on a small set of transitions; an unseen cell far away in the
  // embedding should retain a larger prediction error on average.
  const CuriosityConfig config = SmallConfig();
  SpatialCuriosity curiosity(config, 9);
  std::vector<CuriositySample> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back(CuriositySample{0, Obs(i), 1, Obs(i + 1)});
  }
  nn::Adam adam(curiosity.Parameters(), 0.01f);
  for (int step = 0; step < 300; ++step) {
    adam.ZeroGrad();
    nn::Tensor loss = curiosity.Loss(batch);
    loss.Backward();
    adam.Step();
  }
  double seen = 0.0, novel = 0.0;
  for (int i = 0; i < 8; ++i) {
    seen += curiosity.IntrinsicReward(0, Obs(i), 1, Obs(i + 1));
    novel += curiosity.IntrinsicReward(0, Obs(40 + i), 1, Obs(50 + i));
  }
  EXPECT_LT(seen, novel);
}

TEST(CuriosityTest, SharedStructureHasOneModel) {
  CuriosityConfig config = SmallConfig();
  config.structure = CuriosityStructure::kShared;
  SpatialCuriosity shared(config, 3);
  config.structure = CuriosityStructure::kIndependent;
  SpatialCuriosity independent(config, 3);
  // Independent has num_workers x the parameters ("the space complexity for
  // independent structure will be multiplied", Section VII-D).
  EXPECT_EQ(independent.Parameters().size(),
            shared.Parameters().size() * 2);
}

TEST(CuriosityTest, IndependentModelsDivergePerWorker) {
  CuriosityConfig config = SmallConfig();
  config.structure = CuriosityStructure::kIndependent;
  SpatialCuriosity curiosity(config, 5);
  // Train only worker 0's model.
  std::vector<CuriositySample> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back(CuriositySample{0, Obs(i), 1, Obs(i + 1)});
  }
  nn::Adam adam(curiosity.Parameters(), 0.01f);
  for (int step = 0; step < 200; ++step) {
    adam.ZeroGrad();
    nn::Tensor loss = curiosity.Loss(batch);
    loss.Backward();
    adam.Step();
  }
  const double r0 = curiosity.IntrinsicReward(0, Obs(0), 1, Obs(1));
  const double r1 = curiosity.IntrinsicReward(1, Obs(0), 1, Obs(1));
  EXPECT_LT(r0, r1);
}

TEST(CuriosityTest, DirectFeatureWorks) {
  CuriosityConfig config = SmallConfig();
  config.feature = CuriosityFeature::kDirect;
  SpatialCuriosity curiosity(config, 6);
  const double r = curiosity.IntrinsicReward(0, Obs(3), 2, Obs(4));
  EXPECT_GE(r, 0.0);
  std::vector<CuriositySample> batch = {
      CuriositySample{0, Obs(3), 2, Obs(4)}};
  nn::Tensor loss = curiosity.Loss(batch);
  EXPECT_GE(loss.item(), 0.0f);
}

TEST(CuriosityTest, MeanIntrinsicRewardAveragesWorkers) {
  const CuriosityConfig config = SmallConfig();
  SpatialCuriosity curiosity(config, 8);
  const std::vector<PositionObs> from = {Obs(1), Obs(2)};
  const std::vector<int> moves = {3, 4};
  const std::vector<PositionObs> to = {Obs(9), Obs(10)};
  const double mean = curiosity.MeanIntrinsicReward(from, moves, to);
  const double manual = (curiosity.IntrinsicReward(0, from[0], 3, to[0]) +
                         curiosity.IntrinsicReward(1, from[1], 4, to[1])) /
                        2.0;
  EXPECT_NEAR(mean, manual, 1e-12);
}

TEST(CuriosityTest, EmbeddingIsFrozenDuringTraining) {
  const CuriosityConfig config = SmallConfig();
  SpatialCuriosity curiosity(config, 10);
  // Parameters() exposes only forward-model weights: 2 layers x (W, b).
  EXPECT_EQ(curiosity.Parameters().size(), 4u);
}

TEST(RndTest, IntrinsicRewardDropsWithPredictorTraining) {
  RndConfig config;
  config.state_size = 48;
  config.hidden = 32;
  config.out_dim = 8;
  RndCuriosity rnd(config, 21);
  std::vector<std::vector<float>> states;
  Rng rng(22);
  for (int i = 0; i < 8; ++i) {
    std::vector<float> s(48);
    for (float& v : s) v = static_cast<float>(rng.Uniform(-1, 1));
    states.push_back(std::move(s));
  }
  double before = 0.0;
  for (const auto& s : states) before += rnd.IntrinsicReward(s);
  std::vector<const std::vector<float>*> batch;
  for (const auto& s : states) batch.push_back(&s);
  nn::Adam adam(rnd.Parameters(), 0.005f);
  for (int step = 0; step < 300; ++step) {
    adam.ZeroGrad();
    nn::Tensor loss = rnd.Loss(batch);
    loss.Backward();
    adam.Step();
  }
  double after = 0.0;
  for (const auto& s : states) after += rnd.IntrinsicReward(s);
  EXPECT_LT(after, before * 0.3);
}

TEST(RndTest, SameSeedSameReward) {
  RndConfig config;
  config.state_size = 10;
  RndCuriosity a(config, 5), b(config, 5);
  const std::vector<float> s(10, 0.3f);
  EXPECT_NEAR(a.IntrinsicReward(s), b.IntrinsicReward(s), 1e-12);
}

TEST(RndTest, OnlyPredictorIsTrainable) {
  RndConfig config;
  config.state_size = 10;
  RndCuriosity rnd(config, 6);
  // One MLP worth of parameters (2 layers x W, b), not two.
  EXPECT_EQ(rnd.Parameters().size(), 4u);
}

}  // namespace
}  // namespace cews::agents
