// Finite-difference verification of every op's backward pass.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.h"
#include "nn/ops.h"

namespace cews::nn {
namespace {

using LossFn = std::function<Tensor(const Tensor&)>;

/// Fills t with values in [lo, hi] away from kinks.
Tensor RandomTensor(const Shape& shape, Rng& rng, float lo = -1.0f,
                    float hi = 1.0f, bool requires_grad = true) {
  Tensor t = Tensor::Zeros(shape, requires_grad);
  for (Index i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

/// Compares the autograd gradient of fn at x against central differences.
void CheckGradient(Tensor x, const LossFn& fn, float h = 1e-3f,
                   float rtol = 2e-2f, float atol = 2e-3f) {
  Tensor loss = fn(x);
  ASSERT_EQ(loss.numel(), 1) << "loss must be scalar";
  x.ZeroGrad();
  loss.Backward();
  ASSERT_NE(x.grad(), nullptr);
  std::vector<float> analytic(x.grad(), x.grad() + x.numel());

  for (Index i = 0; i < x.numel(); ++i) {
    const float saved = x.data()[i];
    x.data()[i] = saved + h;
    const float lp = fn(x).item();
    x.data()[i] = saved - h;
    const float lm = fn(x).item();
    x.data()[i] = saved;
    const float numeric = (lp - lm) / (2.0f * h);
    EXPECT_NEAR(analytic[static_cast<size_t>(i)], numeric,
                atol + rtol * std::abs(numeric))
        << "element " << i;
  }
}

TEST(GradCheck, AddBothInputs) {
  Rng rng(1);
  Tensor c = RandomTensor({3, 2}, rng, -1, 1, false);
  CheckGradient(RandomTensor({3, 2}, rng),
                [&](const Tensor& x) { return Sum(Square(Add(x, c))); });
}

TEST(GradCheck, Sub) {
  Rng rng(2);
  Tensor c = RandomTensor({4}, rng, -1, 1, false);
  CheckGradient(RandomTensor({4}, rng),
                [&](const Tensor& x) { return Sum(Square(Sub(c, x))); });
}

TEST(GradCheck, SubLeftInput) {
  // The existing Sub test differentiates through the right input only; the
  // left path (+dy instead of -dy) gets its own check.
  Rng rng(40);
  Tensor c = RandomTensor({4}, rng, -1, 1, false);
  CheckGradient(RandomTensor({4}, rng),
                [&](const Tensor& x) { return Sum(Square(Sub(x, c))); });
}

TEST(GradCheck, NegOp) {
  Rng rng(41);
  CheckGradient(RandomTensor({5}, rng),
                [](const Tensor& x) { return Sum(Square(Neg(x))); });
}

TEST(GradCheck, MulElementwise) {
  Rng rng(3);
  Tensor c = RandomTensor({5}, rng, 0.5f, 1.5f, false);
  CheckGradient(RandomTensor({5}, rng),
                [&](const Tensor& x) { return Sum(Mul(x, c)); });
}

TEST(GradCheck, MulSelf) {
  Rng rng(4);
  CheckGradient(RandomTensor({5}, rng),
                [&](const Tensor& x) { return Sum(Mul(x, x)); });
}

TEST(GradCheck, ScalarOps) {
  Rng rng(5);
  CheckGradient(RandomTensor({3}, rng), [&](const Tensor& x) {
    return Sum(AddScalar(MulScalar(x, 3.0f), -0.5f));
  });
}

TEST(GradCheck, AddBiasThroughX) {
  Rng rng(6);
  Tensor b = RandomTensor({3}, rng, -1, 1, false);
  CheckGradient(RandomTensor({2, 3}, rng), [&](const Tensor& x) {
    return Sum(Square(AddBias(x, b)));
  });
}

TEST(GradCheck, AddBiasThroughBias) {
  Rng rng(7);
  Tensor x = RandomTensor({2, 3}, rng, -1, 1, false);
  CheckGradient(RandomTensor({3}, rng), [&](const Tensor& b) {
    return Sum(Square(AddBias(x, b)));
  });
}

TEST(GradCheck, MatMulLeft) {
  Rng rng(8);
  Tensor b = RandomTensor({3, 4}, rng, -1, 1, false);
  CheckGradient(RandomTensor({2, 3}, rng), [&](const Tensor& a) {
    return Sum(Square(MatMul(a, b)));
  });
}

TEST(GradCheck, MatMulRight) {
  Rng rng(9);
  Tensor a = RandomTensor({2, 3}, rng, -1, 1, false);
  CheckGradient(RandomTensor({3, 4}, rng), [&](const Tensor& b) {
    return Sum(Square(MatMul(a, b)));
  });
}

TEST(GradCheck, ReluAwayFromKink) {
  Rng rng(10);
  Tensor x = RandomTensor({6}, rng);
  for (Index i = 0; i < x.numel(); ++i) {
    if (std::abs(x.data()[i]) < 0.05f) x.data()[i] = 0.1f;
  }
  CheckGradient(x, [](const Tensor& t) { return Sum(Square(Relu(t))); });
}

TEST(GradCheck, TanhSigmoidExp) {
  Rng rng(11);
  CheckGradient(RandomTensor({4}, rng),
                [](const Tensor& x) { return Sum(Tanh(x)); });
  CheckGradient(RandomTensor({4}, rng),
                [](const Tensor& x) { return Sum(Sigmoid(x)); });
  CheckGradient(RandomTensor({4}, rng),
                [](const Tensor& x) { return Sum(Exp(x)); });
}

TEST(GradCheck, LogOfPositive) {
  Rng rng(12);
  CheckGradient(RandomTensor({4}, rng, 0.5f, 2.0f),
                [](const Tensor& x) { return Sum(Log(x)); });
}

TEST(GradCheck, SquareOp) {
  Rng rng(13);
  CheckGradient(RandomTensor({4}, rng),
                [](const Tensor& x) { return Sum(Square(x)); });
}

TEST(GradCheck, ClipInterior) {
  Rng rng(14);
  // Values well inside the clip band so finite differences do not cross it.
  CheckGradient(RandomTensor({5}, rng, -0.4f, 0.4f), [](const Tensor& x) {
    return Sum(Square(Clip(x, -0.5f, 0.5f)));
  });
}

TEST(GradCheck, MinMaxSelect) {
  Rng rng(15);
  Tensor b = RandomTensor({6}, rng, -1, 1, false);
  // Separate x from b so the selection does not flip under perturbation.
  Tensor x0 = RandomTensor({6}, rng);
  for (Index i = 0; i < 6; ++i) {
    if (std::abs(x0.data()[i] - b.data()[i]) < 0.05f) {
      x0.data()[i] += 0.2f;
    }
  }
  CheckGradient(x0, [&](const Tensor& x) { return Sum(Min(x, b)); });
  CheckGradient(x0, [&](const Tensor& x) { return Sum(Max(x, b)); });
}

TEST(GradCheck, SoftmaxWeighted) {
  Rng rng(16);
  Tensor w = RandomTensor({2, 4}, rng, -1, 1, false);
  CheckGradient(RandomTensor({2, 4}, rng), [&](const Tensor& x) {
    return Sum(Mul(Softmax(x), w));
  });
}

TEST(GradCheck, LogSoftmaxGathered) {
  Rng rng(17);
  CheckGradient(RandomTensor({3, 4}, rng), [](const Tensor& x) {
    return Sum(GatherLastDim(LogSoftmax(x), {1, 0, 3}));
  });
}

TEST(GradCheck, Reductions) {
  Rng rng(18);
  CheckGradient(RandomTensor({2, 3}, rng),
                [](const Tensor& x) { return Mean(Square(x)); });
  CheckGradient(RandomTensor({2, 3}, rng), [](const Tensor& x) {
    return Sum(Square(SumLastDim(x)));
  });
}

TEST(GradCheck, ReshapeAndConcat) {
  Rng rng(19);
  Tensor c = RandomTensor({2, 2}, rng, -1, 1, false);
  CheckGradient(RandomTensor({2, 3}, rng), [&](const Tensor& x) {
    return Sum(Square(Concat(Reshape(x, {2, 3}), c)));
  });
}

TEST(GradCheck, ConcatSecondInput) {
  // ReshapeAndConcat covers the first operand; route the gradient through
  // the second (the da-offset slice of the backward).
  Rng rng(42);
  Tensor a = RandomTensor({2, 2}, rng, -1, 1, false);
  CheckGradient(RandomTensor({2, 3}, rng), [&](const Tensor& x) {
    return Sum(Square(Concat(a, x)));
  });
}

TEST(GradCheck, Conv2dInput) {
  Rng rng(20);
  Tensor w = RandomTensor({2, 2, 3, 3}, rng, -0.5f, 0.5f, false);
  Tensor b = RandomTensor({2}, rng, -0.5f, 0.5f, false);
  CheckGradient(RandomTensor({1, 2, 4, 4}, rng), [&](const Tensor& x) {
    return Sum(Square(Conv2d(x, w, b, 1, 1)));
  });
}

TEST(GradCheck, Conv2dWeight) {
  Rng rng(21);
  Tensor x = RandomTensor({1, 2, 4, 4}, rng, -1, 1, false);
  Tensor b = RandomTensor({2}, rng, -0.5f, 0.5f, false);
  CheckGradient(RandomTensor({2, 2, 3, 3}, rng, -0.5f, 0.5f),
                [&](const Tensor& w) {
                  return Sum(Square(Conv2d(x, w, b, 2, 1)));
                });
}

TEST(GradCheck, Conv2dBias) {
  Rng rng(22);
  Tensor x = RandomTensor({2, 1, 3, 3}, rng, -1, 1, false);
  Tensor w = RandomTensor({2, 1, 2, 2}, rng, -0.5f, 0.5f, false);
  CheckGradient(RandomTensor({2}, rng), [&](const Tensor& b) {
    return Sum(Square(Conv2d(x, w, b, 1, 0)));
  });
}

TEST(GradCheck, LayerNormInput) {
  Rng rng(23);
  Tensor gamma = RandomTensor({4}, rng, 0.5f, 1.5f, false);
  Tensor beta = RandomTensor({4}, rng, -0.5f, 0.5f, false);
  CheckGradient(RandomTensor({3, 4}, rng, -2.0f, 2.0f),
                [&](const Tensor& x) {
                  return Sum(Square(LayerNormOp(x, gamma, beta)));
                },
                /*h=*/1e-2f, /*rtol=*/5e-2f, /*atol=*/5e-3f);
}

TEST(GradCheck, LayerNormGammaBeta) {
  Rng rng(24);
  Tensor x = RandomTensor({3, 4}, rng, -2.0f, 2.0f, false);
  CheckGradient(RandomTensor({4}, rng, 0.5f, 1.5f), [&](const Tensor& g) {
    Tensor beta = Tensor::Zeros({4});
    return Sum(Square(LayerNormOp(x, g, beta)));
  });
  CheckGradient(RandomTensor({4}, rng), [&](const Tensor& b) {
    Tensor gamma = Tensor::Full({4}, 1.0f);
    return Sum(Square(LayerNormOp(x, gamma, b)));
  });
}

TEST(GradCheck, EmbeddingTable) {
  Rng rng(25);
  CheckGradient(RandomTensor({5, 3}, rng), [](const Tensor& table) {
    return Sum(Square(EmbeddingLookup(table, {0, 2, 4, 2})));
  });
}

TEST(GradCheck, HuberInteriorAndTails) {
  Rng rng(30);
  // Interior (quadratic zone).
  CheckGradient(RandomTensor({5}, rng, -0.4f, 0.4f),
                [](const Tensor& x) { return Sum(Huber(x, 1.0f)); });
  // Tails (linear zone), away from the kink at |x| = delta.
  CheckGradient(RandomTensor({5}, rng, 1.5f, 3.0f),
                [](const Tensor& x) { return Sum(Huber(x, 1.0f)); });
}

TEST(GradCheck, HuberLossComposite) {
  Rng rng(31);
  Tensor t = RandomTensor({6}, rng, -2.0f, 2.0f, false);
  CheckGradient(RandomTensor({6}, rng, -2.0f, 2.0f), [&](const Tensor& x) {
    return HuberLoss(x, t, 0.7f);
  });
}

TEST(GradCheck, MseLossBothSides) {
  Rng rng(26);
  Tensor t = RandomTensor({4}, rng, -1, 1, false);
  CheckGradient(RandomTensor({4}, rng),
                [&](const Tensor& x) { return MseLoss(x, t); });
}

TEST(GradCheck, CompositePpoLikeObjective) {
  // A miniature of the PPO surrogate: ratio = exp(logp - logp_old),
  // clipped objective with constant advantages.
  Rng rng(27);
  Tensor logp_old = RandomTensor({6}, rng, -2.0f, -0.5f, false);
  Tensor adv = RandomTensor({6}, rng, -1.0f, 1.0f, false);
  CheckGradient(
      RandomTensor({6}, rng, -2.0f, -0.5f),
      [&](const Tensor& logp) {
        Tensor ratio = Exp(Sub(logp, logp_old));
        Tensor s1 = Mul(ratio, adv);
        Tensor s2 = Mul(Clip(ratio, 0.8f, 1.2f), adv);
        return Neg(Mean(Min(s1, s2)));
      },
      /*h=*/1e-3f, /*rtol=*/5e-2f, /*atol=*/5e-3f);
}

}  // namespace
}  // namespace cews::nn
