#include <gtest/gtest.h>

#include "baselines/dnc.h"
#include "baselines/edics.h"
#include "baselines/greedy.h"
#include "baselines/planner.h"

namespace cews::baselines {
namespace {

using env::ChargingStation;
using env::Map;
using env::Poi;
using env::Position;
using env::Rect;

Map HandMap() {
  Map map;
  map.config.size_x = 10.0;
  map.config.size_y = 10.0;
  map.config.hard_corner = false;
  map.pois = {Poi{{5.0, 5.0}, 1.0}};
  map.stations = {ChargingStation{{1.0, 1.0}}};
  map.worker_spawns = {{5.0, 5.0}};
  return map;
}

TEST(GreedyTest, CollectsNearbyData) {
  env::Env env(env::EnvConfig{}, HandMap());
  const agents::EvalResult result =
      RunPlannerEpisode(GreedyPlanner(), env);
  EXPECT_GT(result.kappa, 0.9);  // single PoI under the worker: all of it
}

TEST(GreedyTest, MovesTowardRicherPosition) {
  Map map = HandMap();
  map.pois = {Poi{{5.0, 5.8}, 1.0}};  // in range after moving north a bit
  map.worker_spawns = {{5.0, 4.5}};   // PoI at distance 1.3, out of range
  env::Env env(env::EnvConfig{}, map);
  GreedyPlanner planner;
  const auto actions = planner.Plan(env);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_NE(actions[0].move, 0);  // must move toward the PoI
  env.Step(actions);
  EXPECT_GT(env.PotentialCollection(env.workers()[0].pos), 0.0);
}

TEST(GreedyTest, ChargesWhenLowAndInRange) {
  Map map = HandMap();
  map.worker_spawns = {{1.0, 1.0}};  // on the station
  map.pois = {Poi{{9.0, 9.0}, 1.0}};
  env::EnvConfig config;
  config.initial_energy = 5.0;  // below 30% of b0? threshold uses b0 = 5
  config.energy_capacity = 40.0;
  env::Env env(config, map);
  // Drain below the 30% threshold (1.5): 40 moves of 0.1 each.
  for (int i = 0; i < 40; ++i) {
    env.Step({env::WorkerAction{i % 2 == 0 ? 9 : 13, false}});
  }
  ASSERT_LT(env.workers()[0].energy, 0.3 * config.initial_energy);
  GreedyPlanner planner;
  const auto actions = planner.Plan(env);
  EXPECT_TRUE(actions[0].charge);
}

TEST(GreedyTest, SeeksStationWhenLowAndFar) {
  Map map = HandMap();
  map.worker_spawns = {{8.0, 8.0}};
  map.pois = {Poi{{9.5, 9.5}, 1.0}};
  env::EnvConfig config;
  config.initial_energy = 5.0;
  config.energy_capacity = 40.0;
  config.horizon = 200;
  env::Env env(config, map);
  // Drain below the 30% threshold (1.5) by oscillating E/W.
  for (int i = 0; i < 40; ++i) {
    env.Step({env::WorkerAction{i % 2 == 0 ? 13 : 9, false}});
  }
  ASSERT_LT(env.workers()[0].energy, 0.3 * config.initial_energy);
  GreedyPlanner planner;
  const auto actions = planner.Plan(env);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_FALSE(actions[0].charge);
  const Position from = env.workers()[0].pos;
  const Position target = env.MoveTarget(0, actions[0].move);
  // Moving toward station at (1, 1) means distance decreases.
  EXPECT_LT(env::Distance(target, {1.0, 1.0}),
            env::Distance(from, {1.0, 1.0}));
}

TEST(DncTest, LooksTwoStepsAhead) {
  // PoI reachable only after two 1.0-steps: greedy stays (no immediate
  // gain anywhere), D&C starts moving.
  Map map = HandMap();
  map.pois = {Poi{{5.0, 7.3}, 1.0}};  // 2.3 north of the worker
  map.worker_spawns = {{5.0, 5.0}};
  env::Env env(env::EnvConfig{}, map);
  GreedyPlanner greedy;
  DncPlanner dnc;
  EXPECT_EQ(greedy.Plan(env)[0].move, 0);
  const auto actions = dnc.Plan(env);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_NE(actions[0].move, 0);
  const Position target = env.MoveTarget(0, actions[0].move);
  EXPECT_GT(target.y, 5.4);  // heading north toward the PoI
}

TEST(DncTest, AccountsForDepletionBetweenSteps) {
  // One PoI: after collecting this slot, next slot's expected collection
  // shrinks. The two-step estimate must not double count beyond lambda*2.
  Map map = HandMap();
  env::Env env(env::EnvConfig{}, map);
  DncPlanner dnc;
  const auto actions = dnc.Plan(env);
  // Best plan is to stay on the PoI (collect 0.2 + 0.2).
  EXPECT_EQ(actions[0].move, 0);
  EXPECT_FALSE(actions[0].charge);
}

TEST(DncTest, OutperformsGreedyOnSpreadData) {
  // A small cluster plus a distant cluster: the lookahead finds more data.
  Map map = HandMap();
  map.pois.clear();
  for (int i = 0; i < 5; ++i) {
    map.pois.push_back(Poi{{2.0 + 0.3 * i, 8.0}, 0.8});
    map.pois.push_back(Poi{{8.0, 2.0 + 0.3 * i}, 0.8});
  }
  map.worker_spawns = {{5.0, 5.0}};
  env::EnvConfig config;
  config.horizon = 40;
  env::Env env_g(config, map);
  env::Env env_d(config, map);
  const double greedy_kappa =
      RunPlannerEpisode(GreedyPlanner(), env_g).kappa;
  const double dnc_kappa = RunPlannerEpisode(DncPlanner(), env_d).kappa;
  EXPECT_GE(dnc_kappa, greedy_kappa - 1e-9);
}

TEST(PlannerTest, EpisodeRunnerReportsBoundedMetrics) {
  env::Env env(env::EnvConfig{}, HandMap());
  const agents::EvalResult r = RunPlannerEpisode(GreedyPlanner(), env);
  EXPECT_GE(r.kappa, 0.0);
  EXPECT_LE(r.kappa, 1.0 + 1e-9);
  EXPECT_GE(r.xi, 0.0);
  EXPECT_LE(r.xi, 1.0 + 1e-9);
  EXPECT_GE(r.rho, 0.0);
  EXPECT_TRUE(env.Done());
}

env::Map GeneratedMap() {
  env::MapConfig config;
  config.num_pois = 30;
  config.num_workers = 2;
  Rng rng(5);
  auto result = env::GenerateMap(config, rng);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(EdicsTest, TrainsAndEvaluates) {
  EdicsConfig config;
  config.episodes = 3;
  config.update_epochs = 2;
  config.minibatch = 16;
  config.env.horizon = 20;
  config.encoder.grid = 10;
  config.net.grid = 10;
  config.net.conv1_channels = 4;
  config.net.conv2_channels = 4;
  config.net.conv3_channels = 4;
  config.net.feature_dim = 32;
  EdicsTrainer trainer(config, GeneratedMap());
  EXPECT_EQ(trainer.num_agents(), 2);
  const auto history = trainer.Train();
  ASSERT_EQ(history.size(), 3u);
  for (const auto& rec : history) {
    EXPECT_GE(rec.kappa, 0.0);
    EXPECT_LE(rec.kappa, 1.0 + 1e-9);
  }
  Rng rng(9);
  const agents::EvalResult result = trainer.Evaluate(rng);
  EXPECT_GE(result.kappa, 0.0);
  EXPECT_LE(result.xi, 1.0 + 1e-9);
}

}  // namespace
}  // namespace cews::baselines
