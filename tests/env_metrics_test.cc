// The three evaluation metrics: kappa (Eqn 4), xi (Eqn 5), rho (Eqn 6).
#include <gtest/gtest.h>

#include "common/math_util.h"
#include "env/env.h"

namespace cews::env {
namespace {

Map TwoPoiMap() {
  Map map;
  map.config.size_x = 10.0;
  map.config.size_y = 10.0;
  map.config.hard_corner = false;
  map.pois = {Poi{{2.0, 2.0}, 1.0}, Poi{{8.0, 8.0}, 1.0}};
  map.stations = {ChargingStation{{5.0, 1.0}}};
  map.worker_spawns = {{2.0, 2.0}};
  return map;
}

std::vector<WorkerAction> Stay() { return {WorkerAction{0, false}}; }

TEST(EnvMetricsTest, InitialMetrics) {
  Env env(EnvConfig{}, TwoPoiMap());
  EXPECT_DOUBLE_EQ(env.Kappa(), 0.0);
  EXPECT_DOUBLE_EQ(env.Xi(), 1.0);
  EXPECT_DOUBLE_EQ(env.Rho(), 0.0);
}

TEST(EnvMetricsTest, KappaIsCollectedFraction) {
  Env env(EnvConfig{}, TwoPoiMap());
  env.Step(Stay());  // collects 0.2 of 2.0 total
  EXPECT_NEAR(env.Kappa(), 0.1, 1e-12);
  env.Step(Stay());
  EXPECT_NEAR(env.Kappa(), 0.2, 1e-12);
}

TEST(EnvMetricsTest, KappaNeverExceedsOne) {
  Env env(EnvConfig{}, TwoPoiMap());
  while (!env.Done()) env.Step(Stay());
  EXPECT_LE(env.Kappa(), 1.0 + 1e-9);
}

TEST(EnvMetricsTest, XiIsMeanRemainingRatio) {
  Env env(EnvConfig{}, TwoPoiMap());
  env.Step(Stay());  // PoI 0: 0.8 remains; PoI 1 untouched
  EXPECT_NEAR(env.Xi(), (0.8 + 1.0) / 2.0, 1e-12);
}

TEST(EnvMetricsTest, XiMonotonicallyNonIncreasing) {
  Env env(EnvConfig{}, TwoPoiMap());
  double prev = env.Xi();
  for (int t = 0; t < 10; ++t) {
    env.Step(Stay());
    EXPECT_LE(env.Xi(), prev + 1e-12);
    prev = env.Xi();
  }
}

TEST(EnvMetricsTest, RhoCombinesFairnessAndEfficiency) {
  // Collect only PoI 0 fully: fairness over per-PoI coverage = Jain(x, 0)
  // = 1/2; efficiency = Q/E with Q = 1.0, E = alpha * 1.0 = 1.0.
  Env env(EnvConfig{}, TwoPoiMap());
  for (int t = 0; t < 5; ++t) env.Step(Stay());
  EXPECT_NEAR(env.Kappa(), 0.5, 1e-9);
  EXPECT_NEAR(env.Rho(), 0.5 * 1.0, 1e-6);
}

TEST(EnvMetricsTest, RhoRewardsEvenCoverage) {
  // A worker splitting collection across both PoIs beats one camping on a
  // single PoI at equal total collection: fairness 1 vs 1/2.
  Map map = TwoPoiMap();
  map.pois[1].pos = {2.0, 3.0};  // both PoIs in range of (2, 2.5)
  map.worker_spawns[0] = {2.0, 2.5};
  Env even(EnvConfig{}, map);
  for (int t = 0; t < 5; ++t) even.Step(Stay());  // collects both equally

  Env skewed(EnvConfig{}, TwoPoiMap());
  for (int t = 0; t < 10; ++t) skewed.Step(Stay());  // camps on PoI 0

  // Even coverage: fairness 1 and efficiency 1 -> rho = 1; camping gets
  // fairness 1/2 at the same efficiency -> rho = 1/2.
  EXPECT_NEAR(even.Rho(), 1.0, 1e-6);
  EXPECT_NEAR(skewed.Rho(), 0.5, 1e-6);
  EXPECT_GT(even.Rho(), skewed.Rho());
}

TEST(EnvMetricsTest, RhoJainTermMatchesFormula) {
  Env env(EnvConfig{}, TwoPoiMap());
  for (int t = 0; t < 3; ++t) env.Step(Stay());
  // Coverage x_p = (delta0 - delta_t) / (lambda * delta0).
  const double x0 = (1.0 - env.poi_values()[0]) / 0.2;
  const double x1 = (1.0 - env.poi_values()[1]) / 0.2;
  const double fairness = JainFairness({x0, x1});
  const WorkerState& w = env.workers()[0];
  const double eff = w.collected_total / w.energy_used_total;
  EXPECT_NEAR(env.Rho(), fairness * eff, 1e-9);
}

TEST(EnvMetricsTest, MultiWorkerEfficiencyAveraged) {
  Map map = TwoPoiMap();
  map.worker_spawns = {{2.0, 2.0}, {8.0, 8.0}};  // one on each PoI
  Env env(EnvConfig{}, map);
  env.Step({WorkerAction{0, false}, WorkerAction{0, false}});
  // Both collect 0.2 at cost 0.2 -> Q/E = 1 each; fairness = 1.
  EXPECT_NEAR(env.Rho(), 1.0, 1e-9);
  EXPECT_NEAR(env.Kappa(), 0.2, 1e-12);
}

TEST(EnvMetricsTest, SparseRewardAveragedOverWorkersEqn19) {
  Map map = TwoPoiMap();
  map.worker_spawns = {{2.0, 2.0}, {5.0, 5.0}};  // second collects nothing
  Env env(EnvConfig{}, map);
  const StepResult r =
      env.Step({WorkerAction{0, false}, WorkerAction{0, false}});
  // Worker 0 crosses its 5% milestone (0.2/2.0 = 10%); worker 1 earns 0.
  EXPECT_NEAR(r.per_worker_sparse[0], 1.0, 1e-9);
  EXPECT_NEAR(r.per_worker_sparse[1], 0.0, 1e-9);
  EXPECT_NEAR(r.sparse_reward, 0.5, 1e-9);
}

}  // namespace
}  // namespace cews::env
