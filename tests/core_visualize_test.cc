#include "core/visualize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace cews::core {
namespace {

env::Map SmallMap() {
  env::Map map;
  map.config.size_x = 10.0;
  map.config.size_y = 10.0;
  map.pois = {env::Poi{{2, 2}, 0.5}, env::Poi{{7, 7}, 0.9}};
  map.stations = {env::ChargingStation{{5, 1}}};
  map.obstacles = {env::Rect{4, 4, 6, 6}};
  map.worker_spawns = {{1, 1}, {9, 9}};
  return map;
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(VisualizeTest, TrajectorySvgStructure) {
  const env::Map map = SmallMap();
  std::vector<std::vector<env::Position>> trajectories = {
      {{1, 1}, {2, 2}, {3, 3}},
      {{9, 9}, {8, 8}},
  };
  const std::string svg = TrajectorySvg(map, trajectories);
  EXPECT_EQ(CountOccurrences(svg, "<svg"), 1u);
  EXPECT_EQ(CountOccurrences(svg, "</svg>"), 1u);
  EXPECT_EQ(CountOccurrences(svg, "<polyline"), 2u);  // one per worker
  // Two PoIs + two start markers = 4 circles.
  EXPECT_EQ(CountOccurrences(svg, "<circle"), 4u);
  // Obstacle + station + background rects present.
  EXPECT_GE(CountOccurrences(svg, "<rect"), 3u);
}

TEST(VisualizeTest, EmptyTrajectorySkipped) {
  const env::Map map = SmallMap();
  const std::string svg = TrajectorySvg(map, {{}, {{1, 1}, {2, 2}}});
  EXPECT_EQ(CountOccurrences(svg, "<polyline"), 1u);
}

TEST(VisualizeTest, YAxisIsFlipped) {
  // A point at the top of the space (y near size_y) lands near SVG y=0.
  env::Map map = SmallMap();
  map.pois = {env::Poi{{5.0, 9.5}, 1.0}};
  map.obstacles.clear();
  map.stations.clear();
  const std::string svg = TrajectorySvg(map, {});
  EXPECT_NE(svg.find("cy=\"20\""), std::string::npos);  // (10-9.5)*40
}

TEST(VisualizeTest, HeatmapSvgStructure) {
  const env::Map map = SmallMap();
  agents::HeatmapSnapshot snapshot;
  snapshot.episode = 120;
  snapshot.cell_values.assign(25, 0.0);
  snapshot.cell_values[12] = 1.0;
  snapshot.cell_values[13] = 0.5;
  const std::string svg = HeatmapSvg(map, snapshot, 5);
  EXPECT_EQ(CountOccurrences(svg, "<svg"), 1u);
  // Two hot cells drawn.
  EXPECT_EQ(CountOccurrences(svg, "fill=\"rgb("), 2u);
  EXPECT_NE(svg.find("episode 120"), std::string::npos);
}

TEST(VisualizeTest, HeatmapAllZeroDrawsNoCells) {
  const env::Map map = SmallMap();
  agents::HeatmapSnapshot snapshot;
  snapshot.cell_values.assign(25, 0.0);
  const std::string svg = HeatmapSvg(map, snapshot, 5);
  EXPECT_EQ(CountOccurrences(svg, "fill=\"rgb("), 0u);
}

TEST(VisualizeTest, WriteFilesToDisk) {
  const env::Map map = SmallMap();
  const std::string traj_path = ::testing::TempDir() + "/cews_traj.svg";
  ASSERT_TRUE(
      WriteTrajectorySvg(map, {{{1, 1}, {2, 2}}}, traj_path).ok());
  std::ifstream in(traj_path);
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_NE(first_line.find("<svg"), std::string::npos);
  std::remove(traj_path.c_str());

  agents::HeatmapSnapshot snapshot;
  snapshot.cell_values.assign(25, 0.1);
  const std::string heat_path = ::testing::TempDir() + "/cews_heat.svg";
  ASSERT_TRUE(WriteHeatmapSvg(map, snapshot, 5, heat_path).ok());
  std::remove(heat_path.c_str());
}

TEST(VisualizeTest, WriteToBadPathFails) {
  const env::Map map = SmallMap();
  const Status status =
      WriteTrajectorySvg(map, {}, "/nonexistent/dir/x.svg");
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace cews::core
