#include "agents/cnn_trunk.h"

#include <gtest/gtest.h>

#include "nn/params.h"

namespace cews::agents {
namespace {

CnnTrunkConfig Tiny(int grid = 12) {
  CnnTrunkConfig config;
  config.grid = grid;
  config.conv1_channels = 4;
  config.conv2_channels = 6;
  config.conv3_channels = 6;
  config.feature_dim = 32;
  return config;
}

TEST(CnnTrunkTest, OutputShape) {
  Rng rng(1);
  CnnTrunk trunk(Tiny(), rng);
  const nn::Tensor y = trunk.Forward(nn::Tensor::Zeros({3, 3, 12, 12}));
  EXPECT_EQ(y.shape(), (nn::Shape{3, 32}));
}

TEST(CnnTrunkTest, HandlesVariousGridSizes) {
  for (const int grid : {8, 12, 16, 20, 25}) {
    Rng rng(2);
    CnnTrunk trunk(Tiny(grid), rng);
    const nn::Tensor y =
        trunk.Forward(nn::Tensor::Zeros({1, 3, grid, grid}));
    EXPECT_EQ(y.shape(), (nn::Shape{1, 32})) << "grid " << grid;
  }
}

TEST(CnnTrunkTest, ReluOutputsNonNegative) {
  Rng rng(3);
  CnnTrunk trunk(Tiny(), rng);
  nn::Tensor x = nn::Tensor::Zeros({1, 3, 12, 12});
  Rng noise(4);
  for (nn::Index i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(noise.Uniform(-1, 1));
  }
  const nn::Tensor y = trunk.Forward(x);
  for (nn::Index i = 0; i < y.numel(); ++i) {
    EXPECT_GE(y.data()[i], 0.0f);
  }
}

TEST(CnnTrunkTest, SeedDeterminesParameters) {
  Rng a(7), b(7), c(8);
  CnnTrunk ta(Tiny(), a), tb(Tiny(), b), tc(Tiny(), c);
  EXPECT_EQ(nn::FlattenValues(ta.Parameters()),
            nn::FlattenValues(tb.Parameters()));
  EXPECT_NE(nn::FlattenValues(ta.Parameters()),
            nn::FlattenValues(tc.Parameters()));
}

TEST(CnnTrunkTest, ParameterCount) {
  Rng rng(9);
  const CnnTrunkConfig config = Tiny();
  CnnTrunk trunk(config, rng);
  // conv1: 4*3*9+4; ln1: 2*4*12*12; conv2: 6*4*9+6; ln2: 2*6*6*6;
  // conv3: 6*6*9+6; ln3: 2*6*3*3; fc: 54*32+32.
  const nn::Index expected = (4 * 3 * 9 + 4) + 2 * 4 * 144 +
                             (6 * 4 * 9 + 6) + 2 * 6 * 36 +
                             (6 * 6 * 9 + 6) + 2 * 6 * 9 + (54 * 32 + 32);
  EXPECT_EQ(trunk.NumParameters(), expected);
}

TEST(CnnTrunkTest, GradientsFlowToAllParameters) {
  Rng rng(10);
  CnnTrunk trunk(Tiny(), rng);
  nn::Tensor x = nn::Tensor::Full({2, 3, 12, 12}, 0.5f);
  nn::ZeroGradients(trunk.Parameters());
  nn::Tensor loss = nn::Mean(nn::Square(trunk.Forward(x)));
  loss.Backward();
  // Every parameter tensor receives some gradient signal.
  for (const nn::Tensor& p : trunk.Parameters()) {
    double norm = 0.0;
    for (nn::Index i = 0; i < p.numel(); ++i) {
      norm += std::abs(p.grad()[i]);
    }
    EXPECT_GT(norm, 0.0);
  }
}

}  // namespace
}  // namespace cews::agents
