// Property-based fuzzing of the environment: random action sequences over
// many seeds must never violate the physical invariants.
#include <gtest/gtest.h>

#include "env/env.h"
#include "env/state_encoder.h"

namespace cews::env {
namespace {

struct FuzzCase {
  uint64_t seed;
  int workers;
  int pois;
  double charge_prob;
};

class EnvFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(EnvFuzz, InvariantsHoldUnderRandomActions) {
  const FuzzCase param = GetParam();
  MapConfig map_config;
  map_config.num_pois = param.pois;
  map_config.num_workers = param.workers;
  Rng map_rng(param.seed);
  auto map_or = GenerateMap(map_config, map_rng);
  ASSERT_TRUE(map_or.ok());
  const Map map = std::move(map_or).value();

  EnvConfig config;
  config.horizon = 50;
  Env env(config, map);
  StateEncoder encoder({12});
  Rng rng(param.seed * 31 + 7);
  const int num_moves = config.action_space.num_moves();

  double collected_prev = 0.0;
  while (!env.Done()) {
    std::vector<WorkerAction> actions(static_cast<size_t>(param.workers));
    for (auto& a : actions) {
      a.move = static_cast<int>(rng.UniformInt(num_moves));
      a.charge = rng.Bernoulli(param.charge_prob);
    }
    const StepResult step = env.Step(actions);

    // Per-step accounting.
    double collected_now = 0.0;
    for (int w = 0; w < param.workers; ++w) {
      const WorkerState& ws = env.workers()[static_cast<size_t>(w)];
      // Battery stays within physical bounds.
      EXPECT_GE(ws.energy, 0.0);
      EXPECT_LE(ws.energy, config.energy_capacity + 1e-9);
      // Workers never end up inside obstacles or out of bounds.
      EXPECT_TRUE(map.InBounds(ws.pos));
      EXPECT_FALSE(map.InObstacle(ws.pos));
      // Step outputs are non-negative.
      EXPECT_GE(step.collected[static_cast<size_t>(w)], 0.0);
      EXPECT_GE(step.energy_used[static_cast<size_t>(w)], 0.0);
      EXPECT_GE(step.charged[static_cast<size_t>(w)], 0.0);
      collected_now += ws.collected_total;
    }
    // Cumulative collection is monotone.
    EXPECT_GE(collected_now, collected_prev - 1e-12);
    collected_prev = collected_now;

    // PoI data stays within [0, delta_0].
    for (int p = 0; p < env.num_pois(); ++p) {
      EXPECT_GE(env.poi_values()[static_cast<size_t>(p)], -1e-12);
      EXPECT_LE(env.poi_values()[static_cast<size_t>(p)],
                map.pois[static_cast<size_t>(p)].initial_value + 1e-12);
    }

    // Metrics stay within their ranges.
    EXPECT_GE(env.Kappa(), 0.0);
    EXPECT_LE(env.Kappa(), 1.0 + 1e-9);
    EXPECT_GE(env.Xi(), 0.0);
    EXPECT_LE(env.Xi(), 1.0 + 1e-9);
    EXPECT_GE(env.Rho(), 0.0);

    // Conservation: kappa * total == sum of worker collections.
    double total_collected = 0.0;
    for (const WorkerState& ws : env.workers()) {
      total_collected += ws.collected_total;
    }
    double total_remaining = 0.0;
    for (double v : env.poi_values()) total_remaining += v;
    EXPECT_NEAR(total_collected + total_remaining, map.TotalInitialData(),
                1e-6);
  }

  // Encoder never produces NaN/inf on any visited state.
  const std::vector<float> state = encoder.Encode(env);
  for (float v : state) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(
    RandomWalks, EnvFuzz,
    ::testing::Values(FuzzCase{1, 1, 40, 0.1}, FuzzCase{2, 2, 80, 0.3},
                      FuzzCase{3, 4, 120, 0.5}, FuzzCase{4, 8, 60, 0.05},
                      FuzzCase{5, 2, 200, 0.9}, FuzzCase{6, 3, 30, 0.0},
                      FuzzCase{7, 1, 100, 1.0}, FuzzCase{99, 5, 150, 0.2}));

TEST(EnvFuzzDeterminism, SameSeedSameTrace) {
  MapConfig map_config;
  map_config.num_pois = 50;
  map_config.num_workers = 2;
  Rng map_rng(11);
  const Map map = std::move(GenerateMap(map_config, map_rng)).value();
  EnvConfig config;
  config.horizon = 30;

  auto run = [&](uint64_t seed) {
    Env env(config, map);
    Rng rng(seed);
    std::vector<double> trace;
    while (!env.Done()) {
      std::vector<WorkerAction> actions(2);
      for (auto& a : actions) {
        a.move = static_cast<int>(rng.UniformInt(17));
        a.charge = rng.Bernoulli(0.2);
      }
      env.Step(actions);
      trace.push_back(env.Kappa());
      trace.push_back(env.workers()[0].energy);
      trace.push_back(env.workers()[1].pos.x);
    }
    return trace;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace cews::env
