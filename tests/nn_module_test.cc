#include "nn/module.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "nn/params.h"
#include "nn/serialize.h"

namespace cews::nn {
namespace {

TEST(LinearTest, ShapesAndParamCount) {
  Rng rng(1);
  Linear layer(4, 3, rng);
  EXPECT_EQ(layer.in_features(), 4);
  EXPECT_EQ(layer.out_features(), 3);
  EXPECT_EQ(layer.NumParameters(), 4 * 3 + 3);
  Tensor x = Tensor::Zeros({5, 4});
  Tensor y = layer.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{5, 3}));
}

TEST(LinearTest, ZeroInputYieldsBias) {
  Rng rng(2);
  Linear layer(3, 2, rng);
  Tensor bias = layer.Parameters()[1];
  bias.data()[0] = 0.5f;
  bias.data()[1] = -0.5f;
  Tensor y = layer.Forward(Tensor::Zeros({1, 3}));
  EXPECT_FLOAT_EQ(y.data()[0], 0.5f);
  EXPECT_FLOAT_EQ(y.data()[1], -0.5f);
}

TEST(LinearTest, GainScalesInit) {
  Rng rng1(3), rng2(3);
  Linear big(8, 8, rng1, 1.0f);
  Linear small(8, 8, rng2, 0.01f);
  const Tensor wb = big.Parameters()[0];
  const Tensor ws = small.Parameters()[0];
  for (Index i = 0; i < wb.numel(); ++i) {
    EXPECT_NEAR(ws.data()[i], wb.data()[i] * 0.01f, 1e-7);
  }
}

TEST(Conv2dLayerTest, OutputGeometry) {
  Rng rng(4);
  Conv2dLayer conv(3, 8, 3, /*stride=*/2, /*padding=*/1, rng);
  Tensor x = Tensor::Zeros({2, 3, 16, 16});
  Tensor y = conv.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 8, 8, 8}));
  EXPECT_EQ(conv.NumParameters(), 8 * 3 * 3 * 3 + 8);
}

TEST(LayerNormTest, NormalizesPerSample) {
  LayerNorm ln(6);
  Tensor x = Tensor::FromData({2, 6}, {1, 2, 3, 4, 5, 6, -3, -1, 0, 2, 4, 10});
  Tensor y = ln.Forward(x);
  for (int r = 0; r < 2; ++r) {
    float mean = 0.0f;
    for (int j = 0; j < 6; ++j) mean += y.at({r, j});
    EXPECT_NEAR(mean / 6.0f, 0.0f, 1e-5);
  }
  EXPECT_EQ(ln.NumParameters(), 12);
}

TEST(EmbeddingTest, FrozenHasNoParameters) {
  Rng rng(5);
  Embedding frozen(10, 4, rng, /*trainable=*/false);
  Embedding trainable(10, 4, rng, /*trainable=*/true);
  EXPECT_TRUE(frozen.Parameters().empty());
  EXPECT_EQ(trainable.Parameters().size(), 1u);
  EXPECT_EQ(frozen.vocab(), 10);
  EXPECT_EQ(frozen.dim(), 4);
}

TEST(EmbeddingTest, LookupIsConsistent) {
  Rng rng(6);
  Embedding e(5, 3, rng, false);
  Tensor a = e.Forward({2});
  Tensor b = e.Forward({2, 2});
  for (int j = 0; j < 3; ++j) {
    EXPECT_FLOAT_EQ((a.at({0, j})), (b.at({0, j})));
    EXPECT_FLOAT_EQ((a.at({0, j})), (b.at({1, j})));
  }
}

TEST(MlpTest, ForwardShapeAndParams) {
  Rng rng(7);
  Mlp mlp({4, 8, 8, 2}, Activation::kRelu, rng);
  Tensor y = mlp.Forward(Tensor::Zeros({3, 4}));
  EXPECT_EQ(y.shape(), (Shape{3, 2}));
  EXPECT_EQ(mlp.NumParameters(), (4 * 8 + 8) + (8 * 8 + 8) + (8 * 2 + 2));
}

TEST(MlpTest, TanhActivationBoundsHidden) {
  Rng rng(8);
  Mlp mlp({2, 4, 1}, Activation::kTanh, rng);
  // Just exercise the tanh path; output exists and is finite.
  Tensor y = mlp.Forward(Tensor::Full({1, 2}, 100.0f));
  EXPECT_TRUE(std::isfinite(y.item()));
}

TEST(ModuleTest, ZeroGradClearsAll) {
  Rng rng(9);
  Linear layer(2, 2, rng);
  Tensor loss = Sum(Square(layer.Forward(Tensor::Full({1, 2}, 1.0f))));
  loss.Backward();
  bool any_nonzero = false;
  for (Tensor p : layer.Parameters()) {
    for (Index i = 0; i < p.numel(); ++i) {
      if (p.grad()[i] != 0.0f) any_nonzero = true;
    }
  }
  EXPECT_TRUE(any_nonzero);
  layer.ZeroGrad();
  for (Tensor p : layer.Parameters()) {
    for (Index i = 0; i < p.numel(); ++i) EXPECT_EQ(p.grad()[i], 0.0f);
  }
}

TEST(ParamsTest, CopyParameters) {
  Rng rng(10);
  Linear a(3, 3, rng), b(3, 3, rng);
  CopyParameters(a.Parameters(), b.Parameters());
  const Tensor wa = a.Parameters()[0];
  const Tensor wb = b.Parameters()[0];
  for (Index i = 0; i < wa.numel(); ++i) {
    EXPECT_EQ(wa.data()[i], wb.data()[i]);
  }
}

TEST(ParamsTest, FlattenRoundTrip) {
  Rng rng(11);
  Mlp mlp({2, 3, 1}, Activation::kRelu, rng);
  const auto params = mlp.Parameters();
  const std::vector<float> flat = FlattenValues(params);
  EXPECT_EQ(static_cast<Index>(flat.size()), FlatSize(params));
  Rng rng2(99);
  Mlp other({2, 3, 1}, Activation::kRelu, rng2);
  LoadFlatValues(other.Parameters(), flat);
  EXPECT_EQ(FlattenValues(other.Parameters()), flat);
}

TEST(ParamsTest, GradientFlattenAndAccumulate) {
  Rng rng(12);
  Linear layer(2, 2, rng);
  const auto params = layer.Parameters();
  Tensor loss = Sum(layer.Forward(Tensor::Full({1, 2}, 1.0f)));
  loss.Backward();
  const std::vector<float> flat = FlattenGradients(params);
  // Accumulating the same flat gradient doubles every entry.
  AccumulateFlatGradients(params, flat);
  const std::vector<float> doubled = FlattenGradients(params);
  for (size_t i = 0; i < flat.size(); ++i) {
    EXPECT_FLOAT_EQ(doubled[i], 2.0f * flat[i]);
  }
}

TEST(ParamsTest, GlobalNormAndClip) {
  Rng rng(13);
  Linear layer(2, 2, rng);
  const auto params = layer.Parameters();
  ZeroGradients(params);
  // Install a known gradient: all ones -> norm = sqrt(numel).
  for (Tensor p : params) {
    for (Index i = 0; i < p.numel(); ++i) p.grad()[i] = 1.0f;
  }
  const double n = GlobalGradNorm(params);
  EXPECT_NEAR(n, std::sqrt(6.0), 1e-6);
  const double pre = ClipGradByGlobalNorm(params, 1.0);
  EXPECT_NEAR(pre, std::sqrt(6.0), 1e-6);
  EXPECT_NEAR(GlobalGradNorm(params), 1.0, 1e-5);
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  Rng rng(14);
  Mlp a({3, 4, 2}, Activation::kRelu, rng);
  const std::string path = ::testing::TempDir() + "/cews_params_test.bin";
  ASSERT_TRUE(SaveParameters(path, a.Parameters()).ok());
  Rng rng2(77);
  Mlp b({3, 4, 2}, Activation::kRelu, rng2);
  ASSERT_TRUE(LoadParameters(path, b.Parameters()).ok());
  EXPECT_EQ(FlattenValues(a.Parameters()), FlattenValues(b.Parameters()));
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Rng rng(15);
  Mlp a({3, 4, 2}, Activation::kRelu, rng);
  const std::string path = ::testing::TempDir() + "/cews_params_test2.bin";
  ASSERT_TRUE(SaveParameters(path, a.Parameters()).ok());
  Mlp b({3, 5, 2}, Activation::kRelu, rng);
  const Status s = LoadParameters(path, b.Parameters());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsIOError) {
  Rng rng(16);
  Linear layer(2, 2, rng);
  const Status s =
      LoadParameters("/nonexistent/cews.bin", layer.Parameters());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

TEST(SerializeTest, GarbageFileRejected) {
  const std::string path = ::testing::TempDir() + "/cews_garbage.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("not a checkpoint", f);
    std::fclose(f);
  }
  Rng rng(17);
  Linear layer(2, 2, rng);
  const Status s = LoadParameters(path, layer.Parameters());
  EXPECT_FALSE(s.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cews::nn
