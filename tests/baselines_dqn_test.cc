#include "baselines/dqn.h"

#include <gtest/gtest.h>

#include "baselines/greedy.h"
#include "baselines/nav_greedy.h"
#include "baselines/planner.h"

namespace cews::baselines {
namespace {

env::Map SmallMap(uint64_t seed = 5) {
  env::MapConfig config;
  config.num_pois = 30;
  config.num_workers = 2;
  Rng rng(seed);
  auto result = env::GenerateMap(config, rng);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

DqnConfig TinyDqn() {
  DqnConfig config;
  config.episodes = 3;
  config.batch_size = 8;
  config.replay_capacity = 512;
  config.updates_per_episode = 4;
  config.env.horizon = 15;
  config.encoder.grid = 10;
  config.trunk.grid = 10;
  config.trunk.conv1_channels = 4;
  config.trunk.conv2_channels = 4;
  config.trunk.conv3_channels = 4;
  config.trunk.feature_dim = 32;
  config.seed = 2;
  return config;
}

TEST(QNetworkTest, OutputShape) {
  agents::CnnTrunkConfig trunk;
  trunk.grid = 10;
  trunk.conv1_channels = 4;
  trunk.conv2_channels = 4;
  trunk.conv3_channels = 4;
  trunk.feature_dim = 32;
  Rng rng(1);
  QNetwork net(trunk, 34, rng);
  EXPECT_EQ(net.num_actions(), 34);
  const nn::Tensor q = net.Forward(nn::Tensor::Zeros({2, 3, 10, 10}));
  EXPECT_EQ(q.shape(), (nn::Shape{2, 34}));
  EXPECT_GT(net.NumParameters(), 0);
}

TEST(DqnTrainerTest, EpsilonScheduleIsLinear) {
  DqnConfig config = TinyDqn();
  config.epsilon_start = 1.0f;
  config.epsilon_end = 0.1f;
  config.epsilon_decay_episodes = 100;
  DqnTrainer trainer(config, SmallMap());
  EXPECT_FLOAT_EQ(trainer.EpsilonAt(0), 1.0f);
  EXPECT_NEAR(trainer.EpsilonAt(50), 0.55f, 1e-6);
  EXPECT_FLOAT_EQ(trainer.EpsilonAt(100), 0.1f);
  EXPECT_FLOAT_EQ(trainer.EpsilonAt(5000), 0.1f);
}

TEST(DqnTrainerTest, TrainsAndEvaluates) {
  DqnTrainer trainer(TinyDqn(), SmallMap());
  EXPECT_EQ(trainer.num_agents(), 2);
  const auto history = trainer.Train();
  ASSERT_EQ(history.size(), 3u);
  for (const auto& rec : history) {
    EXPECT_GE(rec.kappa, 0.0);
    EXPECT_LE(rec.kappa, 1.0 + 1e-9);
  }
  Rng rng(3);
  const agents::EvalResult result = trainer.Evaluate(rng);
  EXPECT_GE(result.kappa, 0.0);
  EXPECT_LE(result.xi, 1.0 + 1e-9);
}

TEST(DqnTrainerTest, QLearningImprovesOnStaticGradient) {
  // A single stationary high-value spot: the greedy-Q policy should collect
  // more after training than an untrained (random-ish) one.
  env::Map map;
  map.config.size_x = 8.0;
  map.config.size_y = 8.0;
  map.config.hard_corner = false;
  map.pois = {env::Poi{{4.0, 4.0}, 1.0}, env::Poi{{4.4, 4.4}, 1.0}};
  map.stations = {env::ChargingStation{{1.0, 1.0}}};
  map.worker_spawns = {{4.0, 3.6}};
  DqnConfig config = TinyDqn();
  config.episodes = 40;
  config.updates_per_episode = 12;
  config.epsilon_decay_episodes = 25;
  config.env.horizon = 12;
  DqnTrainer trainer(config, map);
  Rng rng(9);
  const double before = trainer.Evaluate(rng, /*epsilon=*/0.0f).kappa;
  trainer.Train();
  const double after = trainer.Evaluate(rng, /*epsilon=*/0.0f).kappa;
  EXPECT_GE(after, before);
  EXPECT_GT(after, 0.2);  // learned to sit on the data
}

TEST(NavGreedyTest, ValidActionsAndCollection) {
  const env::Map map = SmallMap(8);
  env::Env env(env::EnvConfig{}, map);
  NavGreedyPlanner planner(map);
  const agents::EvalResult result = RunPlannerEpisode(planner, env);
  EXPECT_GT(result.kappa, 0.0);
  EXPECT_LE(result.kappa, 1.0 + 1e-9);
}

TEST(NavGreedyTest, ReachesDataBehindWall) {
  // All data behind a wall with a gap at the bottom: plain Greedy stalls
  // against the wall, NavGreedy routes around.
  env::Map map;
  map.config.size_x = 12.0;
  map.config.size_y = 12.0;
  map.config.hard_corner = false;
  map.obstacles = {env::Rect{6.0, 2.0, 6.5, 12.0}};
  for (int i = 0; i < 5; ++i) {
    map.pois.push_back(env::Poi{{9.0, 5.0 + i * 0.5}, 1.0});
  }
  map.stations = {env::ChargingStation{{2.0, 2.0}}};
  map.worker_spawns = {{3.0, 8.0}};
  env::EnvConfig config;
  config.horizon = 40;

  env::Env greedy_env(config, map);
  const double greedy_kappa =
      RunPlannerEpisode(GreedyPlanner(), greedy_env).kappa;
  env::Env nav_env(config, map);
  NavGreedyPlanner nav(map);
  const double nav_kappa = RunPlannerEpisode(nav, nav_env).kappa;
  EXPECT_GT(nav_kappa, greedy_kappa + 0.1);
  EXPECT_GT(nav_kappa, 0.3);
}

TEST(NavGreedyTest, StillChargesWhenLow) {
  env::Map map;
  map.config.size_x = 10.0;
  map.config.size_y = 10.0;
  map.config.hard_corner = false;
  map.pois = {env::Poi{{9.0, 9.0}, 1.0}};
  map.stations = {env::ChargingStation{{1.0, 1.0}}};
  map.worker_spawns = {{1.0, 1.0}};
  env::EnvConfig config;
  config.initial_energy = 5.0;
  config.energy_capacity = 40.0;
  config.horizon = 200;
  env::Env env(config, map);
  for (int i = 0; i < 40; ++i) {
    env.Step({env::WorkerAction{i % 2 == 0 ? 9 : 13, false}});
  }
  ASSERT_LT(env.workers()[0].energy, 0.3 * config.initial_energy);
  NavGreedyPlanner planner(map);
  const auto actions = planner.Plan(env);
  EXPECT_TRUE(actions[0].charge);
}

}  // namespace
}  // namespace cews::baselines
