#include "agents/async_trainer.h"

#include <gtest/gtest.h>

#include "agents/reward_normalizer.h"
#include "env/map.h"

namespace cews::agents {
namespace {

TEST(VtraceTest, ReducesToDiscountedReturnsOnPolicy) {
  // ratios = 1 everywhere and V = 0: vs_t = discounted return.
  const std::vector<float> rewards = {1.0f, 0.0f, 2.0f};
  const std::vector<bool> dones = {false, false, true};
  const std::vector<float> values = {0.0f, 0.0f, 0.0f, 0.0f};
  const std::vector<float> ratios = {1.0f, 1.0f, 1.0f};
  const VtraceResult r =
      ComputeVtrace(rewards, dones, values, ratios, 0.5f);
  EXPECT_NEAR(r.vs[2], 2.0f, 1e-6);
  EXPECT_NEAR(r.vs[1], 0.0f + 0.5f * 2.0f, 1e-6);
  EXPECT_NEAR(r.vs[0], 1.0f + 0.5f * 1.0f, 1e-6);
  // With V = 0, pg advantage equals r + gamma * vs_{t+1}.
  EXPECT_NEAR(r.pg_advantages[0], 1.0f + 0.5f * 1.0f, 1e-6);
}

TEST(VtraceTest, PerfectValueFunctionGivesZeroCorrections) {
  // When V already equals the true return, vs == V and advantages vanish.
  const std::vector<float> rewards = {1.0f, 1.0f};
  const std::vector<bool> dones = {false, true};
  const std::vector<float> values = {1.0f + 0.9f, 1.0f, 0.0f};
  const std::vector<float> ratios = {1.0f, 1.0f};
  const VtraceResult r =
      ComputeVtrace(rewards, dones, values, ratios, 0.9f);
  EXPECT_NEAR(r.vs[0], values[0], 1e-6);
  EXPECT_NEAR(r.vs[1], values[1], 1e-6);
  EXPECT_NEAR(r.pg_advantages[0], 0.0f, 1e-6);
  EXPECT_NEAR(r.pg_advantages[1], 0.0f, 1e-6);
}

TEST(VtraceTest, RhoBarClipsLargeRatios) {
  const std::vector<float> rewards = {1.0f};
  const std::vector<bool> dones = {true};
  const std::vector<float> values = {0.0f, 0.0f};
  const std::vector<float> big = {10.0f};
  const VtraceResult clipped =
      ComputeVtrace(rewards, dones, values, big, 0.9f, /*rho_bar=*/1.0f);
  EXPECT_NEAR(clipped.vs[0], 1.0f, 1e-6);  // delta clipped to rho=1
  const VtraceResult loose =
      ComputeVtrace(rewards, dones, values, big, 0.9f, /*rho_bar=*/20.0f);
  EXPECT_NEAR(loose.vs[0], 10.0f, 1e-6);
}

TEST(VtraceTest, SmallRatiosShrinkCorrections) {
  const std::vector<float> rewards = {1.0f, 1.0f};
  const std::vector<bool> dones = {false, true};
  const std::vector<float> values = {0.0f, 0.0f, 0.0f};
  const std::vector<float> tiny = {0.1f, 0.1f};
  const VtraceResult r = ComputeVtrace(rewards, dones, values, tiny, 0.9f);
  // delta_1 = 0.1; vs_0 = 0.1*(1) + 0.9*0.1*(0.1) = 0.109.
  EXPECT_NEAR(r.vs[1], 0.1f, 1e-6);
  EXPECT_NEAR(r.vs[0], 0.1f + 0.9f * 0.1f * 0.1f, 1e-6);
}

TEST(VtraceTest, DoneCutsTheTrace) {
  const std::vector<float> rewards = {0.0f, 5.0f};
  const std::vector<bool> dones = {true, true};
  const std::vector<float> values = {0.0f, 0.0f, 0.0f};
  const std::vector<float> ratios = {1.0f, 1.0f};
  const VtraceResult r = ComputeVtrace(rewards, dones, values, ratios, 0.9f);
  EXPECT_NEAR(r.vs[0], 0.0f, 1e-6);  // sees none of the 5
}

env::Map SmallMap() {
  env::MapConfig config;
  config.num_pois = 30;
  config.num_workers = 2;
  Rng rng(6);
  auto result = env::GenerateMap(config, rng);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

AsyncTrainerConfig TinyAsync(bool vtrace) {
  AsyncTrainerConfig config;
  config.num_employees = 2;
  config.episodes = 3;
  config.use_vtrace = vtrace;
  config.env.horizon = 15;
  config.encoder.grid = 10;
  config.net.grid = 10;
  config.net.conv1_channels = 4;
  config.net.conv2_channels = 4;
  config.net.conv3_channels = 4;
  config.net.feature_dim = 32;
  config.seed = 4;
  return config;
}

TEST(AsyncTrainerTest, RunsWithVtrace) {
  AsyncTrainer trainer(TinyAsync(true), SmallMap());
  const TrainResult result = trainer.Train();
  EXPECT_EQ(result.history.size(), 6u);  // 2 employees x 3 episodes
  for (const EpisodeRecord& rec : result.history) {
    EXPECT_GE(rec.kappa, 0.0);
    EXPECT_LE(rec.kappa, 1.0 + 1e-9);
  }
}

TEST(AsyncTrainerTest, RunsWithoutVtrace) {
  AsyncTrainer trainer(TinyAsync(false), SmallMap());
  const TrainResult result = trainer.Train();
  EXPECT_EQ(result.history.size(), 6u);
  EXPECT_GT(result.seconds, 0.0);
}

TEST(RunningStatTest, MatchesClosedForm) {
  RunningStat stat;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.Push(x);
  EXPECT_EQ(stat.count(), 8);
  EXPECT_NEAR(stat.mean(), 5.0, 1e-12);
  EXPECT_NEAR(stat.variance(), 4.0, 1e-12);
  EXPECT_NEAR(stat.stddev(), 2.0, 1e-12);
}

TEST(RunningStatTest, DegenerateCases) {
  RunningStat stat;
  EXPECT_EQ(stat.variance(), 0.0);
  stat.Push(3.0);
  EXPECT_EQ(stat.variance(), 0.0);
  EXPECT_EQ(stat.mean(), 3.0);
}

TEST(RewardNormalizerTest, PassesThroughEarlySamples) {
  RewardNormalizer normalizer(0.99f);
  EXPECT_FLOAT_EQ(normalizer.Normalize(5.0f), 5.0f);
}

TEST(RewardNormalizerTest, ShrinksLargeRewardsEventually) {
  RewardNormalizer normalizer(0.9f);
  Rng rng(2);
  float last = 0.0f;
  for (int i = 0; i < 500; ++i) {
    last = normalizer.Normalize(
        static_cast<float>(rng.Uniform(5.0, 15.0)));
  }
  // Discounted-return proxy of ~10/(1-0.9) = 100 -> rewards scaled well
  // below their raw magnitude.
  EXPECT_LT(std::abs(last), 2.0f);
  EXPECT_GT(normalizer.stat().stddev(), 1.0);
}

TEST(RewardNormalizerTest, EndEpisodeResetsTheReturnOnly) {
  RewardNormalizer normalizer(1.0f);
  for (int i = 0; i < 50; ++i) normalizer.Normalize(1.0f);
  const int64_t count = normalizer.stat().count();
  normalizer.EndEpisode();
  EXPECT_EQ(normalizer.stat().count(), count);  // stats persist
}

TEST(RewardNormalizerTest, TrainerIntegration) {
  TrainerConfig config;
  config.num_employees = 1;
  config.episodes = 2;
  config.batch_size = 8;
  config.update_epochs = 1;
  config.env.horizon = 10;
  config.encoder.grid = 10;
  config.net.grid = 10;
  config.net.conv1_channels = 4;
  config.net.conv2_channels = 4;
  config.net.conv3_channels = 4;
  config.net.feature_dim = 32;
  config.normalize_rewards = true;
  ChiefEmployeeTrainer trainer(config, SmallMap());
  const TrainResult result = trainer.Train();
  EXPECT_EQ(result.history.size(), 2u);
}

}  // namespace
}  // namespace cews::agents
