// Forward-value correctness of every tensor op (gradients are covered by
// nn_grad_check_test.cc).
#include "nn/ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cews::nn {
namespace {

Tensor Vec(std::vector<float> v, bool rg = false) {
  const Index n = static_cast<Index>(v.size());
  return Tensor::FromData({n}, std::move(v), rg);
}

TEST(OpsTest, AddSubMul) {
  Tensor a = Vec({1, 2, 3});
  Tensor b = Vec({4, 5, 6});
  EXPECT_FLOAT_EQ(Add(a, b).data()[1], 7.0f);
  EXPECT_FLOAT_EQ(Sub(a, b).data()[2], -3.0f);
  EXPECT_FLOAT_EQ(Mul(a, b).data()[0], 4.0f);
}

TEST(OpsTest, ScalarOpsAndOperators) {
  Tensor a = Vec({1, -2});
  EXPECT_FLOAT_EQ(AddScalar(a, 0.5f).data()[0], 1.5f);
  EXPECT_FLOAT_EQ(MulScalar(a, -2.0f).data()[1], 4.0f);
  EXPECT_FLOAT_EQ(Neg(a).data()[0], -1.0f);
  EXPECT_FLOAT_EQ((a + a).data()[0], 2.0f);
  EXPECT_FLOAT_EQ((a - a).data()[0], 0.0f);
  EXPECT_FLOAT_EQ((a * a).data()[1], 4.0f);
  EXPECT_FLOAT_EQ((2.0f * a).data()[0], 2.0f);
  EXPECT_FLOAT_EQ((-a).data()[0], -1.0f);
}

TEST(OpsTest, AddBias) {
  Tensor x = Tensor::FromData({2, 3}, {0, 0, 0, 1, 1, 1});
  Tensor b = Vec({10, 20, 30});
  Tensor y = AddBias(x, b);
  EXPECT_FLOAT_EQ((y.at({0, 1})), 20.0f);
  EXPECT_FLOAT_EQ((y.at({1, 2})), 31.0f);
}

TEST(OpsTest, MatMulKnownProduct) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  ASSERT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ((c.at({0, 0})), 58.0f);
  EXPECT_FLOAT_EQ((c.at({0, 1})), 64.0f);
  EXPECT_FLOAT_EQ((c.at({1, 0})), 139.0f);
  EXPECT_FLOAT_EQ((c.at({1, 1})), 154.0f);
}

TEST(OpsTest, Activations) {
  Tensor x = Vec({-1.0f, 0.0f, 2.0f});
  EXPECT_FLOAT_EQ(Relu(x).data()[0], 0.0f);
  EXPECT_FLOAT_EQ(Relu(x).data()[2], 2.0f);
  EXPECT_NEAR(Tanh(x).data()[2], std::tanh(2.0f), 1e-6);
  EXPECT_NEAR(Sigmoid(x).data()[0], 1.0f / (1.0f + std::exp(1.0f)), 1e-6);
  EXPECT_NEAR(Exp(x).data()[2], std::exp(2.0f), 1e-4);
  EXPECT_FLOAT_EQ(Square(x).data()[0], 1.0f);
}

TEST(OpsTest, LogOfPositive) {
  Tensor x = Vec({1.0f, std::exp(1.0f)});
  EXPECT_NEAR(Log(x).data()[0], 0.0f, 1e-6);
  EXPECT_NEAR(Log(x).data()[1], 1.0f, 1e-6);
}

TEST(OpsTest, ClipMinMax) {
  Tensor x = Vec({-2, 0.5, 3});
  Tensor c = Clip(x, 0.0f, 1.0f);
  EXPECT_FLOAT_EQ(c.data()[0], 0.0f);
  EXPECT_FLOAT_EQ(c.data()[1], 0.5f);
  EXPECT_FLOAT_EQ(c.data()[2], 1.0f);
  Tensor a = Vec({1, 5});
  Tensor b = Vec({2, 4});
  EXPECT_FLOAT_EQ(Min(a, b).data()[0], 1.0f);
  EXPECT_FLOAT_EQ(Min(a, b).data()[1], 4.0f);
  EXPECT_FLOAT_EQ(Max(a, b).data()[0], 2.0f);
  EXPECT_FLOAT_EQ(Max(a, b).data()[1], 5.0f);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Tensor x = Tensor::FromData({2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor p = Softmax(x);
  for (int r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (int j = 0; j < 3; ++j) sum += p.at({r, j});
    EXPECT_NEAR(sum, 1.0f, 1e-6);
  }
  // Larger logits get larger probabilities.
  EXPECT_GT((p.at({0, 2})), (p.at({0, 0})));
}

TEST(OpsTest, SoftmaxNumericallyStableForHugeLogits) {
  Tensor x = Tensor::FromData({1, 2}, {1000.0f, 1000.0f});
  Tensor p = Softmax(x);
  EXPECT_NEAR(p.data()[0], 0.5f, 1e-6);
}

TEST(OpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  Tensor x = Tensor::FromData({1, 4}, {0.1f, -0.3f, 2.0f, 0.7f});
  Tensor ls = LogSoftmax(x);
  Tensor p = Softmax(x);
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(ls.data()[j], std::log(p.data()[j]), 1e-5);
  }
}

TEST(OpsTest, Reductions) {
  Tensor x = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(Sum(x).item(), 10.0f);
  EXPECT_FLOAT_EQ(Mean(x).item(), 2.5f);
  Tensor s = SumLastDim(x);
  ASSERT_EQ(s.shape(), (Shape{2}));
  EXPECT_FLOAT_EQ(s.data()[0], 3.0f);
  EXPECT_FLOAT_EQ(s.data()[1], 7.0f);
}

TEST(OpsTest, ReshapePreservesData) {
  Tensor x = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Reshape(x, {3, 2});
  ASSERT_EQ(r.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ((r.at({2, 1})), 6.0f);
}

TEST(OpsTest, ConcatLastDim) {
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromData({2, 1}, {9, 8});
  Tensor c = Concat(a, b);
  ASSERT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ((c.at({0, 2})), 9.0f);
  EXPECT_FLOAT_EQ((c.at({1, 0})), 3.0f);
}

TEST(OpsTest, GatherLastDim) {
  Tensor x = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor g = GatherLastDim(x, {2, 0});
  ASSERT_EQ(g.shape(), (Shape{2}));
  EXPECT_FLOAT_EQ(g.data()[0], 3.0f);
  EXPECT_FLOAT_EQ(g.data()[1], 4.0f);
}

TEST(OpsTest, GatherOn3D) {
  // [1, 2, 2] -> rows are (batch, worker) pairs.
  Tensor x = Tensor::FromData({1, 2, 2}, {1, 2, 3, 4});
  Tensor g = GatherLastDim(x, {1, 0});
  ASSERT_EQ(g.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(g.data()[0], 2.0f);
  EXPECT_FLOAT_EQ(g.data()[1], 3.0f);
}

TEST(OpsTest, Conv2dIdentityKernel) {
  // 1x1 kernel with weight 1 reproduces the input.
  Tensor x = Tensor::FromData({1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor w = Tensor::FromData({1, 1, 1, 1}, {1.0f});
  Tensor y = Conv2d(x, w, Tensor(), /*stride=*/1, /*padding=*/0);
  ASSERT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
}

TEST(OpsTest, Conv2dSumKernelWithPadding) {
  // 3x3 all-ones kernel with padding 1: center output = sum of all inputs.
  Tensor x = Tensor::FromData({1, 1, 3, 3}, {1, 1, 1, 1, 1, 1, 1, 1, 1});
  Tensor w = Tensor::Full({1, 1, 3, 3}, 1.0f);
  Tensor y = Conv2d(x, w, Tensor(), 1, 1);
  ASSERT_EQ(y.shape(), (Shape{1, 1, 3, 3}));
  EXPECT_FLOAT_EQ((y.at({0, 0, 1, 1})), 9.0f);  // full overlap
  EXPECT_FLOAT_EQ((y.at({0, 0, 0, 0})), 4.0f);  // corner overlap
}

TEST(OpsTest, Conv2dStrideAndBias) {
  Tensor x = Tensor::FromData({1, 1, 4, 4},
                              {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14,
                               15, 16});
  Tensor w = Tensor::FromData({1, 1, 2, 2}, {1, 0, 0, 1});
  Tensor b = Tensor::FromData({1}, {100.0f});
  Tensor y = Conv2d(x, w, b, /*stride=*/2, /*padding=*/0);
  ASSERT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ((y.at({0, 0, 0, 0})), 1.0f + 6.0f + 100.0f);
  EXPECT_FLOAT_EQ((y.at({0, 0, 1, 1})), 11.0f + 16.0f + 100.0f);
}

TEST(OpsTest, Conv2dMultiChannel) {
  // Two input channels, kernel sums both.
  Tensor x = Tensor::FromData({1, 2, 1, 1}, {3.0f, 4.0f});
  Tensor w = Tensor::FromData({1, 2, 1, 1}, {1.0f, 1.0f});
  Tensor y = Conv2d(x, w, Tensor(), 1, 0);
  EXPECT_FLOAT_EQ(y.item(), 7.0f);
}

TEST(OpsTest, LayerNormZeroMeanUnitVar) {
  Tensor x = Tensor::FromData({2, 4}, {1, 2, 3, 4, -1, -2, -3, -4});
  Tensor gamma = Tensor::Full({4}, 1.0f);
  Tensor beta = Tensor::Zeros({4});
  Tensor y = LayerNormOp(x, gamma, beta);
  for (int r = 0; r < 2; ++r) {
    float mean = 0.0f, var = 0.0f;
    for (int j = 0; j < 4; ++j) mean += y.at({r, j});
    mean /= 4.0f;
    for (int j = 0; j < 4; ++j) {
      var += (y.at({r, j}) - mean) * (y.at({r, j}) - mean);
    }
    var /= 4.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-5);
    EXPECT_NEAR(var, 1.0f, 1e-3);
  }
}

TEST(OpsTest, LayerNormAffine) {
  Tensor x = Tensor::FromData({1, 2}, {-1.0f, 1.0f});
  Tensor gamma = Tensor::FromData({2}, {2.0f, 2.0f});
  Tensor beta = Tensor::FromData({2}, {5.0f, 5.0f});
  Tensor y = LayerNormOp(x, gamma, beta);
  // Normalized x is (-1, 1); y = 2 * xhat + 5.
  EXPECT_NEAR(y.data()[0], 3.0f, 1e-3);
  EXPECT_NEAR(y.data()[1], 7.0f, 1e-3);
}

TEST(OpsTest, EmbeddingLookupRows) {
  Tensor table = Tensor::FromData({3, 2}, {0, 1, 10, 11, 20, 21});
  Tensor e = EmbeddingLookup(table, {2, 0, 2});
  ASSERT_EQ(e.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ((e.at({0, 0})), 20.0f);
  EXPECT_FLOAT_EQ((e.at({1, 1})), 1.0f);
  EXPECT_FLOAT_EQ((e.at({2, 0})), 20.0f);
}

TEST(OpsTest, MseLoss) {
  Tensor a = Vec({1, 2, 3});
  Tensor b = Vec({1, 0, 0});
  EXPECT_NEAR(MseLoss(a, b).item(), (0.0f + 4.0f + 9.0f) / 3.0f, 1e-6);
}

TEST(OpsTest, HuberQuadraticInsideLinearOutside) {
  Tensor x = Vec({0.5f, -0.5f, 3.0f, -3.0f});
  Tensor h = Huber(x, 1.0f);
  EXPECT_NEAR(h.data()[0], 0.125f, 1e-6);           // 0.5 * 0.25
  EXPECT_NEAR(h.data()[1], 0.125f, 1e-6);
  EXPECT_NEAR(h.data()[2], 1.0f * (3.0f - 0.5f), 1e-6);  // delta(|x|-d/2)
  EXPECT_NEAR(h.data()[3], 2.5f, 1e-6);
}

TEST(OpsTest, HuberContinuousAtDelta) {
  Tensor x = Vec({0.999f, 1.001f});
  Tensor h = Huber(x, 1.0f);
  EXPECT_NEAR(h.data()[0], h.data()[1], 1e-2);
}

TEST(OpsTest, HuberLossMatchesMseForSmallErrors) {
  Tensor a = Vec({0.1f, -0.2f});
  Tensor b = Vec({0.0f, 0.0f});
  // Inside the quadratic zone Huber = 0.5 * mse.
  EXPECT_NEAR(HuberLoss(a, b, 1.0f).item(), 0.5f * MseLoss(a, b).item(),
              1e-6);
}

}  // namespace
}  // namespace cews::nn
