// The 3-channel state encoding of Section V.
#include "env/state_encoder.h"

#include <gtest/gtest.h>

namespace cews::env {
namespace {

Map SmallMap() {
  Map map;
  map.config.size_x = 10.0;
  map.config.size_y = 10.0;
  map.config.hard_corner = false;
  map.pois = {Poi{{2.5, 2.5}, 0.9}};
  map.stations = {ChargingStation{{7.5, 7.5}}};
  map.obstacles = {Rect{4.0, 4.0, 6.0, 6.0}};
  map.worker_spawns = {{1.5, 8.5}};
  return map;
}

TEST(StateEncoderTest, SizesAndCells) {
  StateEncoder encoder({10});
  EXPECT_EQ(encoder.grid(), 10);
  EXPECT_EQ(encoder.StateSize(), 3 * 100);
  EXPECT_EQ(encoder.NumCells(), 100);
}

TEST(StateEncoderTest, CellIndexMapsCorners) {
  StateEncoder encoder({10});
  const Map map = SmallMap();
  EXPECT_EQ(encoder.CellIndex(map, {0.01, 0.01}), 0);
  EXPECT_EQ(encoder.CellIndex(map, {9.99, 0.01}), 9);
  EXPECT_EQ(encoder.CellIndex(map, {0.01, 9.99}), 90);
  EXPECT_EQ(encoder.CellIndex(map, {9.99, 9.99}), 99);
  // Out-of-range positions clamp instead of overflowing.
  EXPECT_EQ(encoder.CellIndex(map, {-5.0, -5.0}), 0);
  EXPECT_EQ(encoder.CellIndex(map, {50.0, 50.0}), 99);
}

TEST(StateEncoderTest, WorkerEnergyInChannel0) {
  StateEncoder encoder({10});
  const Map map = SmallMap();
  Env env(EnvConfig{}, map);
  const std::vector<float> s = encoder.Encode(env);
  const int cell = encoder.CellIndex(map, map.worker_spawns[0]);
  EXPECT_NEAR(s[static_cast<size_t>(cell)], 1.0f, 1e-6);  // full battery
  // Everything else in channel 0 is zero.
  float total = 0.0f;
  for (int i = 0; i < 100; ++i) total += s[static_cast<size_t>(i)];
  EXPECT_NEAR(total, 1.0f, 1e-6);
}

TEST(StateEncoderTest, GeometryInChannel1) {
  StateEncoder encoder({10});
  const Map map = SmallMap();
  Env env(EnvConfig{}, map);
  const std::vector<float> s = encoder.Encode(env);
  const float* ch1 = s.data() + 100;
  const int station_cell = encoder.CellIndex(map, map.stations[0].pos);
  EXPECT_FLOAT_EQ(ch1[station_cell], 2.0f);
  const int obstacle_cell = encoder.CellIndex(map, {5.0, 5.0});
  EXPECT_FLOAT_EQ(ch1[obstacle_cell], -1.0f);
  const int poi_cell = encoder.CellIndex(map, map.pois[0].pos);
  EXPECT_NEAR(ch1[poi_cell], 0.9f, 1e-6);
}

TEST(StateEncoderTest, PoiValueDecaysAfterCollection) {
  StateEncoder encoder({10});
  Map map = SmallMap();
  map.worker_spawns[0] = map.pois[0].pos;  // sit on the PoI
  Env env(EnvConfig{}, map);
  env.Step({WorkerAction{0, false}});
  const std::vector<float> s = encoder.Encode(env);
  const int poi_cell = encoder.CellIndex(map, map.pois[0].pos);
  EXPECT_NEAR(s[static_cast<size_t>(100 + poi_cell)], 0.9f - 0.18f, 1e-5);
}

TEST(StateEncoderTest, AccessTimeInChannel2) {
  StateEncoder encoder({10});
  Map map = SmallMap();
  map.worker_spawns[0] = map.pois[0].pos;
  EnvConfig config;
  config.horizon = 100;
  Env env(config, map);
  const int poi_cell = encoder.CellIndex(map, map.pois[0].pos);
  {
    const std::vector<float> s = encoder.Encode(env);
    EXPECT_FLOAT_EQ(s[static_cast<size_t>(200 + poi_cell)], 0.0f);
  }
  env.Step({WorkerAction{0, false}});
  env.Step({WorkerAction{0, false}});
  {
    const std::vector<float> s = encoder.Encode(env);
    EXPECT_NEAR(s[static_cast<size_t>(200 + poi_cell)], 2.0f / 100.0f, 1e-6);
  }
}

TEST(StateEncoderTest, MultiplePoisAccumulatePerCell) {
  StateEncoder encoder({10});
  Map map = SmallMap();
  map.pois.push_back(Poi{{2.6, 2.6}, 0.5});  // same cell as the first PoI
  Env env(EnvConfig{}, map);
  const std::vector<float> s = encoder.Encode(env);
  const int poi_cell = encoder.CellIndex(map, map.pois[0].pos);
  EXPECT_NEAR(s[static_cast<size_t>(100 + poi_cell)], 1.4f, 1e-5);
}

TEST(StateEncoderTest, MultipleWorkersAccumulate) {
  StateEncoder encoder({10});
  Map map = SmallMap();
  map.worker_spawns = {{1.5, 8.5}, {1.6, 8.6}};  // same cell
  Env env(EnvConfig{}, map);
  const std::vector<float> s = encoder.Encode(env);
  const int cell = encoder.CellIndex(map, map.worker_spawns[0]);
  EXPECT_NEAR(s[static_cast<size_t>(cell)], 2.0f, 1e-6);
}

}  // namespace
}  // namespace cews::env
