#include "env/geometry.h"

#include <gtest/gtest.h>

#include "env/action_space.h"

namespace cews::env {
namespace {

TEST(GeometryTest, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
}

TEST(RectTest, ContainsInclusiveBoundary) {
  const Rect r{1, 1, 3, 3};
  EXPECT_TRUE(r.Contains({2, 2}));
  EXPECT_TRUE(r.Contains({1, 1}));
  EXPECT_TRUE(r.Contains({3, 3}));
  EXPECT_FALSE(r.Contains({0.99, 2}));
  EXPECT_FALSE(r.Contains({2, 3.01}));
}

TEST(RectTest, SegmentThroughCenterIntersects) {
  const Rect r{1, 1, 3, 3};
  EXPECT_TRUE(r.IntersectsSegment({0, 2}, {4, 2}));
  EXPECT_TRUE(r.IntersectsSegment({2, 0}, {2, 4}));
  EXPECT_TRUE(r.IntersectsSegment({0, 0}, {4, 4}));  // diagonal
}

TEST(RectTest, SegmentMissesIntersectsNothing) {
  const Rect r{1, 1, 3, 3};
  EXPECT_FALSE(r.IntersectsSegment({0, 0}, {0.5, 4}));
  EXPECT_FALSE(r.IntersectsSegment({0, 4}, {4, 4.5}));
  EXPECT_FALSE(r.IntersectsSegment({4, 0}, {5, 5}));
}

TEST(RectTest, SegmentEndingInsideIntersects) {
  const Rect r{1, 1, 3, 3};
  EXPECT_TRUE(r.IntersectsSegment({0, 0}, {2, 2}));
  EXPECT_TRUE(r.IntersectsSegment({2, 2}, {4, 4}));  // starts inside
}

TEST(RectTest, SegmentFullyInsideIntersects) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.IntersectsSegment({2, 2}, {3, 3}));
}

TEST(RectTest, ThinWallNotTunnelledByLongStep) {
  // A 0.4-thick wall must stop a 1.0-length step crossing it.
  const Rect wall{5.0, 0.0, 5.4, 10.0};
  EXPECT_TRUE(wall.IntersectsSegment({4.8, 5.0}, {5.8, 5.0}));
  EXPECT_TRUE(wall.IntersectsSegment({4.9, 4.5}, {5.6, 5.2}));
}

TEST(RectTest, DegenerateZeroLengthSegment) {
  const Rect r{1, 1, 3, 3};
  EXPECT_TRUE(r.IntersectsSegment({2, 2}, {2, 2}));
  EXPECT_FALSE(r.IntersectsSegment({0, 0}, {0, 0}));
}

TEST(ActionSpaceTest, MoveCountAndStay) {
  ActionSpace space({0.5, 1.0});
  EXPECT_EQ(space.num_moves(), 17);
  const Position stay = space.Delta(0);
  EXPECT_DOUBLE_EQ(stay.x, 0.0);
  EXPECT_DOUBLE_EQ(stay.y, 0.0);
  EXPECT_DOUBLE_EQ(space.StepLength(0), 0.0);
  EXPECT_DOUBLE_EQ(space.max_step(), 1.0);
}

TEST(ActionSpaceTest, DeltasHaveRequestedLength) {
  ActionSpace space({0.5, 1.0});
  for (int m = 1; m < space.num_moves(); ++m) {
    const Position d = space.Delta(m);
    const double len = std::sqrt(d.x * d.x + d.y * d.y);
    EXPECT_NEAR(len, space.StepLength(m), 1e-12) << "move " << m;
  }
}

TEST(ActionSpaceTest, EightDistinctHeadingsPerRing) {
  ActionSpace space({1.0});
  EXPECT_EQ(space.num_moves(), 9);
  for (int a = 1; a < 9; ++a) {
    for (int b = a + 1; b < 9; ++b) {
      const Position da = space.Delta(a), db = space.Delta(b);
      EXPECT_GT(std::abs(da.x - db.x) + std::abs(da.y - db.y), 1e-9);
    }
  }
}

TEST(ActionSpaceTest, SingleStepLength) {
  ActionSpace space({0.7});
  EXPECT_EQ(space.num_moves(), 9);
  EXPECT_DOUBLE_EQ(space.StepLength(3), 0.7);
}

}  // namespace
}  // namespace cews::env
