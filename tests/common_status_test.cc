#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace cews {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad shape");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad shape");
}

TEST(StatusTest, EveryFactoryMapsToItsCode) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::IOError("a"), Status::IOError("a"));
  EXPECT_FALSE(Status::IOError("a") == Status::IOError("b"));
  EXPECT_FALSE(Status::IOError("a") == Status::Internal("a"));
}

Status FailWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  CEWS_RETURN_IF_ERROR(FailWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("must be positive");
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-2);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

Result<int> DoubleIt(int x) {
  CEWS_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturn) {
  ASSERT_TRUE(DoubleIt(3).ok());
  EXPECT_EQ(*DoubleIt(3), 6);
  EXPECT_EQ(DoubleIt(0).status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

}  // namespace
}  // namespace cews
