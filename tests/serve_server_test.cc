#include "serve/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "agents/eval.h"
#include "agents/policy_net.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/status.h"
#include "env/env.h"
#include "env/state_encoder.h"
#include "nn/params.h"
#include "nn/serialize.h"
#include "serve/loadgen.h"

namespace cews::serve {
namespace {

/// Small net matching the default 17-move action space; grid 8 keeps the
/// forward cheap enough for sanitizer runs.
agents::PolicyNetConfig TinyNet() {
  agents::PolicyNetConfig net;
  net.in_channels = 3;
  net.grid = 8;
  net.num_workers = 2;
  net.num_moves = 17;
  net.conv1_channels = 4;
  net.conv2_channels = 4;
  net.conv3_channels = 4;
  net.feature_dim = 32;
  return net;
}

PolicyServerConfig ServerConfig(int threads, int max_batch,
                                int64_t delay_us) {
  PolicyServerConfig config;
  config.net = TinyNet();
  config.num_threads = threads;
  config.max_batch = max_batch;
  config.max_queue_delay_us = delay_us;
  config.runtime_threads = 1;
  config.seed = 11;
  return config;
}

/// 10x10 two-worker map (matches TinyNet().num_workers).
env::Map TinyMap() {
  env::Map map;
  map.config.size_x = 10.0;
  map.config.size_y = 10.0;
  map.config.hard_corner = false;
  map.pois = {env::Poi{{3.0, 3.0}, 1.0}, env::Poi{{7.0, 6.0}, 1.0}};
  map.stations = {env::ChargingStation{{1.0, 1.0}}};
  map.worker_spawns = {{2.0, 2.0}, {8.0, 8.0}};
  return map;
}

std::unique_ptr<PolicyServer> MakeServer(const PolicyServerConfig& config) {
  Result<std::unique_ptr<PolicyServer>> server = PolicyServer::Create(config);
  CEWS_CHECK(server.ok()) << server.status().ToString();
  return std::move(server).value();
}

/// An arbitrary (but fixed) pre-encoded state for TinyNet.
std::vector<float> FixedState() {
  std::vector<float> state(3 * 8 * 8);
  for (size_t i = 0; i < state.size(); ++i) {
    state[i] = 0.01f * static_cast<float>(i % 37);
  }
  return state;
}

TEST(PolicyServerTest, ServesPreEncodedState) {
  std::unique_ptr<PolicyServer> server =
      MakeServer(ServerConfig(/*threads=*/1, /*max_batch=*/4,
                              /*delay_us=*/100));
  ScheduleRequest request;
  request.state = FixedState();
  const ScheduleResponse response = server->Submit(std::move(request)).get();
  ASSERT_TRUE(response.ok()) << response.status.ToString();
  EXPECT_EQ(response.epoch, 0u);
  EXPECT_EQ(response.act.moves.size(), 2u);
  EXPECT_EQ(response.act.charges.size(), 2u);
  EXPECT_EQ(response.act.actions.size(), 2u);
  EXPECT_EQ(response.move_logits.size(), 2u * 17u);
  EXPECT_EQ(response.charge_logits.size(), 2u * 2u);
  EXPECT_TRUE(std::isfinite(response.act.value));
  EXPECT_GE(response.batch_size, 1);
  EXPECT_GT(response.latency_ns, 0u);
}

TEST(PolicyServerTest, ServerSideEncodingMatchesPreEncoded) {
  std::unique_ptr<PolicyServer> server =
      MakeServer(ServerConfig(/*threads=*/1, /*max_batch=*/4,
                              /*delay_us=*/100));
  const env::Map map = TinyMap();
  env::Env env(env::EnvConfig{}, map);
  const env::StateEncoder encoder(env::StateEncoderConfig{8});

  ScheduleRequest pre;
  pre.state = encoder.Encode(env);
  pre.deterministic = true;
  ScheduleRequest raw;
  raw.env = &env;
  raw.deterministic = true;

  const ScheduleResponse a = server->Submit(std::move(pre)).get();
  const ScheduleResponse b = server->Submit(std::move(raw)).get();
  ASSERT_TRUE(a.ok()) << a.status.ToString();
  ASSERT_TRUE(b.ok()) << b.status.ToString();
  // Same snapshot, same observation, argmax decisions: the two encoding
  // paths must agree bitwise.
  EXPECT_EQ(a.act.moves, b.act.moves);
  EXPECT_EQ(a.act.charges, b.act.charges);
  EXPECT_EQ(a.act.value, b.act.value);
  EXPECT_EQ(a.move_logits, b.move_logits);
  EXPECT_EQ(a.charge_logits, b.charge_logits);
}

TEST(PolicyServerTest, RejectsMalformedRequests) {
  std::unique_ptr<PolicyServer> server =
      MakeServer(ServerConfig(/*threads=*/1, /*max_batch=*/4,
                              /*delay_us=*/100));

  {
    ScheduleRequest request;  // neither state nor env
    const ScheduleResponse response =
        server->Submit(std::move(request)).get();
    EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
  }
  {
    ScheduleRequest request;
    request.state = {1.0f, 2.0f};  // wrong size
    const ScheduleResponse response =
        server->Submit(std::move(request)).get();
    EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
  }
  {
    ScheduleRequest request;
    request.state = FixedState();
    request.move_mask.assign(5, 1);  // wrong mask size
    const ScheduleResponse response =
        server->Submit(std::move(request)).get();
    EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
  }
  {
    env::Map one_worker = TinyMap();
    one_worker.worker_spawns = {{2.0, 2.0}};
    env::Env env(env::EnvConfig{}, one_worker);
    ScheduleRequest request;
    request.env = &env;  // fleet size mismatch
    const ScheduleResponse response =
        server->Submit(std::move(request)).get();
    EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
  }
}

TEST(PolicyServerTest, SubmitAfterStopFailsPrecondition) {
  std::unique_ptr<PolicyServer> server =
      MakeServer(ServerConfig(/*threads=*/2, /*max_batch=*/4,
                              /*delay_us=*/100));
  server->Stop();
  ScheduleRequest request;
  request.state = FixedState();
  const ScheduleResponse response = server->Submit(std::move(request)).get();
  EXPECT_EQ(response.status.code(), StatusCode::kFailedPrecondition);
  server->Stop();  // idempotent
}

TEST(PolicyServerTest, MoveMaskConfinesDecisions) {
  std::unique_ptr<PolicyServer> server =
      MakeServer(ServerConfig(/*threads=*/1, /*max_batch=*/4,
                              /*delay_us=*/100));
  // Worker 0 may only take move 3, worker 1 only move 5; sampling then has
  // a single non-(-1e9) logit per worker to draw from.
  std::vector<uint8_t> mask(2 * 17, 0);
  mask[3] = 1;
  mask[17 + 5] = 1;
  ScheduleRequest request;
  request.state = FixedState();
  request.move_mask = mask;
  const ScheduleResponse response = server->Submit(std::move(request)).get();
  ASSERT_TRUE(response.ok()) << response.status.ToString();
  ASSERT_EQ(response.act.moves.size(), 2u);
  EXPECT_EQ(response.act.moves[0], 3);
  EXPECT_EQ(response.act.moves[1], 5);
  // The returned logits are the post-masking ones actually sampled from.
  for (int w = 0; w < 2; ++w) {
    for (int m = 0; m < 17; ++m) {
      const float logit = response.move_logits[static_cast<size_t>(w * 17 + m)];
      if (mask[static_cast<size_t>(w * 17 + m)] == 0) {
        EXPECT_EQ(logit, -1e9f) << "worker " << w << " move " << m;
      } else {
        EXPECT_GT(logit, -1e8f);
      }
    }
  }
}

TEST(PolicyServerTest, DeterministicRequestsRepeat) {
  std::unique_ptr<PolicyServer> server =
      MakeServer(ServerConfig(/*threads=*/2, /*max_batch=*/4,
                              /*delay_us=*/100));
  ScheduleRequest first;
  first.state = FixedState();
  first.deterministic = true;
  ScheduleRequest second = first;
  const ScheduleResponse a = server->Submit(std::move(first)).get();
  const ScheduleResponse b = server->Submit(std::move(second)).get();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.act.moves, b.act.moves);
  EXPECT_EQ(a.act.charges, b.act.charges);
  EXPECT_EQ(a.move_logits, b.move_logits);
}

TEST(PolicyServerTest, FlushBySizeSharesOneBatch) {
  // Delay long enough that only the size trigger can flush this quickly.
  std::unique_ptr<PolicyServer> server =
      MakeServer(ServerConfig(/*threads=*/1, /*max_batch=*/3,
                              /*delay_us=*/500'000));
  std::vector<std::future<ScheduleResponse>> futures;
  for (int i = 0; i < 3; ++i) {
    ScheduleRequest request;
    request.state = FixedState();
    futures.push_back(server->Submit(std::move(request)));
  }
  const auto start = std::chrono::steady_clock::now();
  for (std::future<ScheduleResponse>& f : futures) {
    const ScheduleResponse response = f.get();
    ASSERT_TRUE(response.ok()) << response.status.ToString();
    EXPECT_EQ(response.batch_size, 3);
  }
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(400));
}

TEST(PolicyServerTest, FlushByTimeoutServesLoneRequest) {
  std::unique_ptr<PolicyServer> server =
      MakeServer(ServerConfig(/*threads=*/1, /*max_batch=*/64,
                              /*delay_us=*/30'000));
  const auto start = std::chrono::steady_clock::now();
  ScheduleRequest request;
  request.state = FixedState();
  const ScheduleResponse response = server->Submit(std::move(request)).get();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(response.ok()) << response.status.ToString();
  EXPECT_EQ(response.batch_size, 1);
  // Nowhere near max_batch, so the request was released by the delay bound,
  // not flushed immediately.
  EXPECT_GE(elapsed, std::chrono::milliseconds(10));
}

TEST(PolicyServerTest, ClosedLoopLoadRunsCleanly) {
  std::unique_ptr<PolicyServer> server =
      MakeServer(ServerConfig(/*threads=*/2, /*max_batch=*/8,
                              /*delay_us=*/200));
  LoadGenOptions options;
  options.clients = 4;
  options.requests_per_client = 20;
  options.env.horizon = 30;
  const Result<LoadGenResult> result =
      RunClosedLoopLoad(*server, TinyMap(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().requests, 80u);
  EXPECT_EQ(result.value().errors, 0u);
  EXPECT_GT(result.value().throughput_rps, 0.0);
  EXPECT_GT(result.value().latency_p50_us, 0.0);
  EXPECT_GE(result.value().latency_p99_us, result.value().latency_p50_us);
  EXPECT_GE(result.value().mean_batch, 1.0);
}

TEST(PolicyServerTest, RegistryPublishValidatesShapes) {
  std::unique_ptr<PolicyServer> server =
      MakeServer(ServerConfig(/*threads=*/1, /*max_batch=*/4,
                              /*delay_us=*/100));
  EXPECT_EQ(server->epoch(), 0u);

  // Wrong tensor count.
  EXPECT_EQ(server->Publish({nn::Tensor::Zeros({3})}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(server->epoch(), 0u);

  // Right count, wrong shape on the first tensor.
  std::shared_ptr<const ModelRegistry::Snapshot> snapshot =
      server->registry().Acquire();
  std::vector<nn::Tensor> wrong;
  for (const nn::Tensor& t : snapshot->params) wrong.push_back(t.Clone());
  wrong[0] = nn::Tensor::Zeros({1, 2, 3});
  EXPECT_EQ(server->Publish(wrong).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server->epoch(), 0u);

  // A matching set publishes as epoch 1.
  Rng rng(99);
  const agents::PolicyNet fresh(TinyNet(), rng);
  ASSERT_TRUE(server->Publish(fresh.Parameters()).ok());
  EXPECT_EQ(server->epoch(), 1u);
}

TEST(PolicyServerTest, PublishFromFileLoadsCheckpointOrFailsUntouched) {
  std::unique_ptr<PolicyServer> server =
      MakeServer(ServerConfig(/*threads=*/1, /*max_batch=*/4,
                              /*delay_us=*/100));
  EXPECT_FALSE(server->PublishFromFile("/nonexistent/ckpt.bin").ok());
  EXPECT_EQ(server->epoch(), 0u);

  Rng rng(123);
  const agents::PolicyNet trained(TinyNet(), rng);
  const std::string path = testing::TempDir() + "/serve_ckpt.bin";
  ASSERT_TRUE(nn::SaveParameters(path, trained.Parameters()).ok());
  ASSERT_TRUE(server->PublishFromFile(path).ok());
  EXPECT_EQ(server->epoch(), 1u);
}

// The acceptance test for the hot-swap protocol: every response must be
// computed from exactly one published parameter set — old or new, never a
// torn mix. Strategy: three parameter sets with locally-precomputed argmax
// outputs for one fixed state, concurrent deterministic clients while the
// main thread keeps alternating publishes, then a bitwise check of every
// response against the output its epoch implies. Bitwise equality is valid
// because inference is deterministic at any batch size and thread count.
TEST(PolicyServerTest, HotSwapNeverServesTornParameters) {
  const PolicyServerConfig config =
      ServerConfig(/*threads=*/2, /*max_batch=*/4, /*delay_us=*/100);
  const std::vector<float> state = FixedState();

  // The server's epoch-0 net is initialized from Rng(seed); replicate it,
  // plus the two sets we'll alternate, and precompute their argmax outputs.
  Rng rng0(config.seed);
  agents::PolicyNet local(config.net, rng0);
  const std::vector<nn::Tensor> local_params = local.Parameters();
  Rng rng_a(20001);
  const agents::PolicyNet net_a(config.net, rng_a);
  Rng rng_b(20002);
  const agents::PolicyNet net_b(config.net, rng_b);

  Rng unused(1);  // deterministic decisions consume no randomness
  const uint8_t kDet = 1;
  const auto expect_for = [&](const std::vector<nn::Tensor>* params) {
    if (params != nullptr) nn::CopyParameters(*params, local_params);
    return agents::DecidePolicyBatch(local, state, 1, unused, &kDet)[0];
  };
  const agents::PolicyDecision expected0 = expect_for(nullptr);
  const std::vector<nn::Tensor> params_a = net_a.Parameters();
  const std::vector<nn::Tensor> params_b = net_b.Parameters();
  const agents::PolicyDecision expected_a = expect_for(&params_a);
  const agents::PolicyDecision expected_b = expect_for(&params_b);

  // Distinct random inits must be distinguishable, or the torn check below
  // would be vacuous.
  ASSERT_NE(expected0.move_logits, expected_a.move_logits);
  ASSERT_NE(expected0.move_logits, expected_b.move_logits);
  ASSERT_NE(expected_a.move_logits, expected_b.move_logits);

  std::unique_ptr<PolicyServer> server = MakeServer(config);

  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 40;
  std::mutex mu;
  std::vector<ScheduleResponse> responses;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        ScheduleRequest request;
        request.state = state;
        request.deterministic = true;
        ScheduleResponse response = server->Submit(std::move(request)).get();
        std::lock_guard<std::mutex> lock(mu);
        responses.push_back(std::move(response));
      }
    });
  }

  // Publish A on odd epochs, B on even, mid-flight.
  for (int p = 0; p < 14; ++p) {
    ASSERT_TRUE(
        server
            ->Publish(p % 2 == 0 ? net_a.Parameters() : net_b.Parameters())
            .ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (std::thread& t : clients) t.join();

  ASSERT_EQ(responses.size(),
            static_cast<size_t>(kClients * kRequestsPerClient));
  bool saw_multiple_epochs = false;
  for (const ScheduleResponse& response : responses) {
    ASSERT_TRUE(response.ok()) << response.status.ToString();
    const agents::PolicyDecision& expected =
        response.epoch == 0
            ? expected0
            : (response.epoch % 2 == 1 ? expected_a : expected_b);
    EXPECT_EQ(response.act.value, expected.act.value)
        << "epoch " << response.epoch;
    EXPECT_EQ(response.move_logits, expected.move_logits)
        << "epoch " << response.epoch;
    EXPECT_EQ(response.charge_logits, expected.charge_logits)
        << "epoch " << response.epoch;
    EXPECT_EQ(response.act.moves, expected.act.moves)
        << "epoch " << response.epoch;
    if (response.epoch != responses.front().epoch) saw_multiple_epochs = true;
  }
  // With 14 publishes spread across the client run this is effectively
  // guaranteed; if it ever flakes the test got too fast, not the server
  // wrong.
  EXPECT_TRUE(saw_multiple_epochs);
}

}  // namespace
}  // namespace cews::serve
