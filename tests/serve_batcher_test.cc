#include "serve/batcher.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace cews::serve {
namespace {

/// A request whose state[0] carries an id, so once-delivery is checkable.
PendingRequest Tagged(float id) {
  PendingRequest item;
  item.request.state = {id};
  return item;
}

TEST(RequestBatcherTest, FlushBySizeReturnsFullBatchInArrivalOrder) {
  // Delay far beyond the test runtime: the only way PopBatch returns
  // quickly is the size trigger.
  RequestBatcher batcher(/*max_batch=*/4, /*max_queue_delay_us=*/5'000'000);
  for (int i = 0; i < 4; ++i) {
    PendingRequest item = Tagged(static_cast<float>(i));
    ASSERT_EQ(batcher.Push(item), PushResult::kAccepted);
  }
  const auto start = std::chrono::steady_clock::now();
  const std::vector<PendingRequest> batch = batcher.PopBatch();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_EQ(batch.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(batch[static_cast<size_t>(i)].request.state[0],
              static_cast<float>(i));
  }
  EXPECT_LT(elapsed, std::chrono::seconds(2));
  EXPECT_EQ(batcher.depth(), 0);
}

TEST(RequestBatcherTest, FlushByTimeoutReleasesPartialBatch) {
  RequestBatcher batcher(/*max_batch=*/64, /*max_queue_delay_us=*/30'000);
  PendingRequest a = Tagged(1.0f);
  PendingRequest b = Tagged(2.0f);
  ASSERT_EQ(batcher.Push(a), PushResult::kAccepted);
  ASSERT_EQ(batcher.Push(b), PushResult::kAccepted);
  const auto start = std::chrono::steady_clock::now();
  const std::vector<PendingRequest> batch = batcher.PopBatch();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(batch.size(), 2u);
  // Far below max_batch, so only the oldest request aging past the delay
  // bound can have released the batch. (Lower bound is loose: the requests
  // aged a bit before PopBatch was called.)
  EXPECT_GE(elapsed, std::chrono::milliseconds(10));
}

TEST(RequestBatcherTest, PopBatchCapsAtMaxBatch) {
  RequestBatcher batcher(/*max_batch=*/3, /*max_queue_delay_us=*/5'000'000);
  for (int i = 0; i < 7; ++i) {
    PendingRequest item = Tagged(static_cast<float>(i));
    ASSERT_EQ(batcher.Push(item), PushResult::kAccepted);
  }
  EXPECT_EQ(batcher.depth(), 7);
  EXPECT_EQ(batcher.PopBatch().size(), 3u);
  EXPECT_EQ(batcher.depth(), 4);
  EXPECT_EQ(batcher.PopBatch().size(), 3u);
  // The remainder is below max_batch, but shutdown flushes it immediately.
  batcher.Shutdown();
  EXPECT_EQ(batcher.PopBatch().size(), 1u);
}

TEST(RequestBatcherTest, ShutdownDrainsThenReturnsEmpty) {
  RequestBatcher batcher(/*max_batch=*/8, /*max_queue_delay_us=*/5'000'000);
  for (int i = 0; i < 3; ++i) {
    PendingRequest item = Tagged(static_cast<float>(i));
    ASSERT_EQ(batcher.Push(item), PushResult::kAccepted);
  }
  batcher.Shutdown();
  EXPECT_EQ(batcher.PopBatch().size(), 3u);  // graceful drain
  EXPECT_TRUE(batcher.PopBatch().empty());   // consumer exit signal
  EXPECT_TRUE(batcher.PopBatch().empty());   // stays empty (idempotent)
}

TEST(RequestBatcherTest, PushAfterShutdownLeavesItemWithCaller) {
  RequestBatcher batcher(/*max_batch=*/2, /*max_queue_delay_us=*/100);
  batcher.Shutdown();
  PendingRequest item = Tagged(7.0f);
  EXPECT_EQ(batcher.Push(item), PushResult::kShutdown);
  EXPECT_EQ(batcher.depth(), 0);
  // The batcher must not have consumed the item: the caller still owns the
  // promise and can complete it with a rejection.
  ScheduleResponse response;
  response.status = Status::FailedPrecondition("stopped");
  item.promise.set_value(std::move(response));
  EXPECT_FALSE(item.promise.get_future().get().ok());
}

TEST(RequestBatcherTest, BoundedDepthShedsInsteadOfGrowing) {
  RequestBatcher batcher(/*max_batch=*/8, /*max_queue_delay_us=*/5'000'000,
                         /*max_depth=*/3);
  for (int i = 0; i < 3; ++i) {
    PendingRequest item = Tagged(static_cast<float>(i));
    ASSERT_EQ(batcher.Push(item), PushResult::kAccepted);
  }
  // At the bound: Push resolves immediately with kOverloaded, never blocks,
  // and leaves the item (and its promise) with the caller.
  PendingRequest over = Tagged(99.0f);
  EXPECT_EQ(batcher.Push(over), PushResult::kOverloaded);
  EXPECT_EQ(batcher.depth(), 3);
  ScheduleResponse response;
  response.status = Status::ResourceExhausted("shed");
  over.promise.set_value(std::move(response));
  EXPECT_EQ(over.promise.get_future().get().status.code(),
            StatusCode::kResourceExhausted);

  // Draining reopens admission.
  batcher.Shutdown();
  EXPECT_EQ(batcher.PopBatch().size(), 3u);
}

TEST(RequestBatcherTest, UnboundedDepthNeverSheds) {
  RequestBatcher batcher(/*max_batch=*/4, /*max_queue_delay_us=*/5'000'000,
                         /*max_depth=*/0);
  for (int i = 0; i < 100; ++i) {
    PendingRequest item = Tagged(static_cast<float>(i));
    ASSERT_EQ(batcher.Push(item), PushResult::kAccepted);
  }
  EXPECT_EQ(batcher.depth(), 100);
}

TEST(RequestBatcherTest, ManyProducersManyConsumersDeliverEachRequestOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 50;
  RequestBatcher batcher(/*max_batch=*/5, /*max_queue_delay_us=*/500);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&batcher, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        PendingRequest item = Tagged(static_cast<float>(p * kPerProducer + i));
        ASSERT_EQ(batcher.Push(item), PushResult::kAccepted);
      }
    });
  }

  std::mutex mu;
  std::multiset<int> delivered;
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&batcher, &mu, &delivered] {
      for (;;) {
        const std::vector<PendingRequest> batch = batcher.PopBatch();
        if (batch.empty()) return;
        std::lock_guard<std::mutex> lock(mu);
        for (const PendingRequest& item : batch) {
          delivered.insert(static_cast<int>(item.request.state[0]));
        }
      }
    });
  }

  for (std::thread& t : producers) t.join();
  batcher.Shutdown();
  for (std::thread& t : consumers) t.join();

  ASSERT_EQ(delivered.size(),
            static_cast<size_t>(kProducers * kPerProducer));
  for (int id = 0; id < kProducers * kPerProducer; ++id) {
    EXPECT_EQ(delivered.count(id), 1u) << "request " << id;
  }
  EXPECT_EQ(batcher.depth(), 0);
}

TEST(RequestBatcherTest, StampsEnqueueTime) {
  RequestBatcher batcher(/*max_batch=*/1, /*max_queue_delay_us=*/0);
  PendingRequest item = Tagged(0.0f);
  ASSERT_EQ(batcher.Push(item), PushResult::kAccepted);
  const std::vector<PendingRequest> batch = batcher.PopBatch();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_GT(batch[0].enqueue_ns, 0u);
}

}  // namespace
}  // namespace cews::serve
