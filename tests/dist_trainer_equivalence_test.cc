// The distributed trainer's headline contract: a chief + N forked employee
// processes exchanging parameters and rollouts over real sockets produce
// BITWISE-identical final parameters to TrainDistReference (the same cores
// driven in rank order in one process, no transport). Everything the wire
// touches — float bit patterns, merge order, seed derivations — has to be
// exact for this to hold.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dist/trainer.h"
#include "dist/wire.h"
#include "env/map.h"

namespace cews::dist {
namespace {

env::Map SmallMap(uint64_t seed = 42) {
  env::MapConfig config;
  config.num_pois = 30;
  config.num_workers = 2;
  config.num_stations = 2;
  config.num_obstacles = 2;
  Rng rng(seed);
  auto result = env::GenerateMap(config, rng);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

std::string TempAddress(const char* tag) {
  return std::string("unix:/tmp/cews_dist_eq_") + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

DistTrainerConfig TinyDistConfig(agents::IntrinsicMode intrinsic,
                                 int envs_per_employee, const char* tag) {
  DistTrainerConfig cfg;
  cfg.trainer.num_employees = 2;
  cfg.trainer.episodes = 3;
  cfg.trainer.batch_size = 16;
  cfg.trainer.update_epochs = 2;
  cfg.trainer.envs_per_employee = envs_per_employee;
  cfg.trainer.runtime_threads = 1;  // fork safety: no kernel pool threads
  cfg.trainer.env.horizon = 10;
  cfg.trainer.encoder.grid = 10;
  cfg.trainer.net.grid = 10;
  cfg.trainer.net.conv1_channels = 4;
  cfg.trainer.net.conv2_channels = 4;
  cfg.trainer.net.conv3_channels = 4;
  cfg.trainer.net.feature_dim = 32;
  cfg.trainer.intrinsic = intrinsic;
  cfg.trainer.seed = 5;
  cfg.address = TempAddress(tag);
  return cfg;
}

void ExpectBitwiseEqual(const std::vector<float>& a,
                        const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what << " size mismatch";
  if (a.empty()) return;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what << " values are not bitwise identical";
}

/// Runs the reference, then the real multi-process version, and demands
/// bitwise-identical results.
void RunEquivalence(DistTrainerConfig cfg, const env::Map& map) {
  auto ref = TrainDistReference(cfg, map);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  ChiefServer server(cfg, map);
  ASSERT_TRUE(server.Bind().ok());
  cfg.address = server.address();  // resolved (tcp port 0 -> real port)
  auto pids = SpawnEmployees(cfg, map);
  ASSERT_TRUE(pids.ok()) << pids.status().ToString();

  DistTrainResult result;
  const Status run_status = server.Run(&result);
  const Status reap_status = ReapEmployees(*pids);
  ASSERT_TRUE(run_status.ok()) << run_status.ToString();
  ASSERT_TRUE(reap_status.ok()) << reap_status.ToString();

  ExpectBitwiseEqual(result.final_policy, ref->final_policy, "final_policy");
  ExpectBitwiseEqual(result.final_intrinsic, ref->final_intrinsic,
                     "final_intrinsic");

  // The per-iteration records must agree exactly too (same merged buffers,
  // same metrics) — only wall-clock fields may differ.
  ASSERT_EQ(result.history.size(), ref->history.size());
  for (size_t i = 0; i < result.history.size(); ++i) {
    EXPECT_EQ(result.history[i].kappa, ref->history[i].kappa) << "iter " << i;
    EXPECT_EQ(result.history[i].xi, ref->history[i].xi) << "iter " << i;
    EXPECT_EQ(result.history[i].extrinsic_reward,
              ref->history[i].extrinsic_reward)
        << "iter " << i;
    EXPECT_EQ(result.history[i].intrinsic_reward,
              ref->history[i].intrinsic_reward)
        << "iter " << i;
  }
  EXPECT_GT(result.bytes_tx, 0u);
  EXPECT_GT(result.bytes_rx, 0u);
}

TEST(DistEquivalenceTest, SpatialCuriositySingleEnvBitwise) {
  const env::Map map = SmallMap();
  RunEquivalence(
      TinyDistConfig(agents::IntrinsicMode::kSpatialCuriosity, 1, "spatial"),
      map);
}

TEST(DistEquivalenceTest, RndTwoEnvsPerEmployeeBitwise) {
  const env::Map map = SmallMap();
  RunEquivalence(TinyDistConfig(agents::IntrinsicMode::kRnd, 2, "rnd"), map);
}

TEST(DistEquivalenceTest, NoIntrinsicOverTcpBitwise) {
  const env::Map map = SmallMap();
  DistTrainerConfig cfg =
      TinyDistConfig(agents::IntrinsicMode::kNone, 1, "unused");
  cfg.address = "tcp:127.0.0.1:0";  // ephemeral port, resolved by Bind
  RunEquivalence(cfg, map);
}

TEST(DistEquivalenceTest, HandshakeRejectsConfigMismatch) {
  const env::Map map = SmallMap();
  DistTrainerConfig cfg =
      TinyDistConfig(agents::IntrinsicMode::kNone, 1, "mismatch");
  cfg.trainer.num_employees = 1;
  cfg.handshake_timeout_ms = 5000;

  ChiefServer server(cfg, map);
  ASSERT_TRUE(server.Bind().ok());
  cfg.address = server.address();

  // The employee trains a different problem (different seed -> different
  // hash): the chief must refuse it during the handshake.
  DistTrainerConfig skewed = cfg;
  skewed.trainer.seed += 1;
  auto pids = SpawnEmployees(skewed, map);
  ASSERT_TRUE(pids.ok());
  DistTrainResult result;
  const Status run_status = server.Run(&result);
  (void)ReapEmployees(*pids);  // the refused employee exits non-zero
  ASSERT_FALSE(run_status.ok());
  EXPECT_EQ(run_status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(run_status.message().find("hash mismatch"), std::string::npos);
}

TEST(DistEquivalenceTest, MergeRolloutsIsRankMajor) {
  // Two payloads whose buffers carry distinguishable rewards: after the
  // merge, rank 0's transitions must come first, in order.
  auto make = [](uint32_t rank, float tag) {
    RolloutPayload p;
    p.rank = rank;
    p.iteration = 0;
    agents::RolloutBuffer buffer;
    for (int t = 0; t < 3; ++t) {
      agents::Transition tr;
      tr.state = {tag + static_cast<float>(t)};
      tr.moves = {0};
      tr.charges = {0};
      tr.reward = tag + static_cast<float>(t);
      tr.done = t == 2;
      buffer.Add(std::move(tr));
    }
    buffer.ComputeAdvantages(0.99f, 0.95f, 0.0f);
    p.buffers.push_back(std::move(buffer));
    p.stats.env_steps = 3;
    return p;
  };
  std::vector<RolloutPayload> payloads;
  payloads.push_back(make(0, 100.0f));
  payloads.push_back(make(1, 200.0f));
  const MergedRollout merged = MergeRollouts(std::move(payloads));
  ASSERT_EQ(merged.buffer.size(), 6u);
  EXPECT_EQ(merged.buffer[0].reward, 100.0f);
  EXPECT_EQ(merged.buffer[2].reward, 102.0f);
  EXPECT_EQ(merged.buffer[3].reward, 200.0f);
  EXPECT_EQ(merged.buffer[5].reward, 202.0f);
  EXPECT_EQ(merged.totals.env_steps, 6);
}

}  // namespace
}  // namespace cews::dist
