// Per-channel int8 quantization and the packed int8 GEMM kernels.
//
// The quantizer promises a per-channel round-trip error of at most half a
// quantization step, exact zero preservation, and saturation confined to
// [-127, 127]. The kernels promise (a) exact agreement with an integer
// reference (int32 accumulation has no rounding, so the only float ops are
// the per-element dequantize epilogue), (b) an analytic error bound against
// the fp32 product, and (c) bitwise identity across thread counts — the
// partition-invariance contract the serve path's determinism rests on. All
// three are exercised over the same edge-shape grid as nn_gemm_test.
#include "nn/quant.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/gemm_int8.h"
#include "nn/tensor.h"
#include "nn/workspace.h"

namespace cews::nn {
namespace {

std::vector<float> RandomData(size_t n, uint64_t seed,
                              double zero_fraction = 0.0) {
  Rng rng(seed);
  std::vector<float> data(n);
  for (float& v : data) {
    if (zero_fraction > 0.0 && rng.Uniform(0.0, 1.0) < zero_fraction) {
      v = 0.0f;
      continue;
    }
    v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  return data;
}

struct GemmCase {
  Index m, n, k;
};

// Same grid as nn_gemm_test: register-tile multiples (kNrQ=32, kMrQ=4),
// off-by-ones, long/short reductions, empty dimensions.
const GemmCase kCases[] = {
    {1, 1, 1},    {1, 32, 1},    {1, 1, 129},  {4, 32, 128}, {3, 5, 7},
    {4, 31, 16},  {5, 33, 129},  {7, 64, 130}, {33, 100, 64}, {64, 48, 96},
    {2, 1, 257},  {31, 32, 33},  {1, 257, 4},  {8, 96, 41},  {40, 36, 100},
    {0, 5, 4},    {4, 0, 5},     {2, 3, 0},
};

std::string CaseName(const GemmCase& c, int threads) {
  return "m=" + std::to_string(c.m) + " n=" + std::to_string(c.n) +
         " k=" + std::to_string(c.k) + " threads=" + std::to_string(threads);
}

/// Runs quantize + pack + Int8GemmPrepacked for one case, returning C.
std::vector<float> RunInt8Gemm(const GemmCase& c, const std::vector<float>& a,
                               const std::vector<float>& b,
                               const std::vector<float>& bias_row,
                               const std::vector<float>& bias_col,
                               std::vector<int8_t>* qa_out = nullptr,
                               std::vector<int8_t>* qb_out = nullptr,
                               std::vector<float>* sa_out = nullptr,
                               std::vector<float>* sb_out = nullptr) {
  std::vector<int8_t> qa(static_cast<size_t>(c.m * c.k));
  std::vector<int8_t> qb(static_cast<size_t>(c.k * c.n));
  std::vector<float> sa(static_cast<size_t>(c.m));
  std::vector<float> sb(static_cast<size_t>(c.n));
  gemm::QuantizeRowsInt8(c.m, c.k, a.data(), c.k, qa.data(), sa.data());
  gemm::QuantizeColsInt8(c.k, c.n, b.data(), c.n, qb.data(), sb.data());
  std::vector<int8_t> packed(static_cast<size_t>(gemm::Int8PanelBytes(c.k, c.n)));
  gemm::PackInt8NN(c.k, c.n, qb.data(), c.n, packed.data());
  std::vector<float> cmat(static_cast<size_t>(c.m * c.n), -777.0f);
  gemm::Int8GemmPrepacked(c.m, c.n, c.k, qa.data(), c.k, sa.data(),
                          packed.data(), sb.data(), bias_row.data(),
                          bias_col.data(), cmat.data(), c.n);
  if (qa_out != nullptr) *qa_out = qa;
  if (qb_out != nullptr) *qb_out = qb;
  if (sa_out != nullptr) *sa_out = sa;
  if (sb_out != nullptr) *sb_out = sb;
  return cmat;
}

TEST(QuantizeTest, RoundTripErrorBoundedByHalfStepPerChannel) {
  const Index out = 7, in = 53;
  std::vector<float> data = RandomData(static_cast<size_t>(in * out), 21);
  // Scale channels very differently so a shared scale would blow the bound.
  for (Index l = 0; l < in; ++l) {
    for (Index ch = 0; ch < out; ++ch) {
      data[static_cast<size_t>(l * out + ch)] *=
          std::pow(10.0f, static_cast<float>(ch) - 3.0f);
    }
  }
  const Tensor w = Tensor::FromData({in, out}, data);
  const quant::QuantizedTensor qt = quant::QuantizeLinearWeight(w);
  ASSERT_EQ(qt.channels, out);
  ASSERT_EQ(qt.per_channel, in);
  std::vector<float> round_trip(static_cast<size_t>(in));
  for (Index ch = 0; ch < out; ++ch) {
    quant::DequantizeChannel(qt, ch, round_trip.data());
    const float step = qt.scales[static_cast<size_t>(ch)];
    for (Index l = 0; l < in; ++l) {
      const float orig = data[static_cast<size_t>(l * out + ch)];
      EXPECT_LE(std::fabs(round_trip[static_cast<size_t>(l)] - orig),
                0.5f * step + 1e-12f)
          << "ch=" << ch << " l=" << l;
    }
  }
}

TEST(QuantizeTest, SaturatesAtPlusMinus127) {
  // Row quantizer: the absmax element must map to exactly +/-127 and no
  // code may leave [-127, 127] (-128 is excluded from the symmetric grid).
  const Index k = 64;
  std::vector<float> row(static_cast<size_t>(k));
  for (Index l = 0; l < k; ++l) {
    row[static_cast<size_t>(l)] = static_cast<float>(l - 32) * 0.25f;
  }
  row[5] = -9.0f;  // absmax, negative
  std::vector<int8_t> q(static_cast<size_t>(k));
  float scale = 0.0f;
  gemm::QuantizeRowsInt8(1, k, row.data(), k, q.data(), &scale);
  EXPECT_FLOAT_EQ(scale, 9.0f / 127.0f);
  EXPECT_EQ(q[5], -127);
  for (Index l = 0; l < k; ++l) {
    EXPECT_GE(q[static_cast<size_t>(l)], -127);
    EXPECT_LE(q[static_cast<size_t>(l)], 127);
  }
}

TEST(QuantizeTest, ExactZerosSurviveRoundTrip) {
  const Index in = 16, out = 3;
  std::vector<float> data = RandomData(static_cast<size_t>(in * out), 5);
  data[static_cast<size_t>(0 * out + 1)] = 0.0f;
  data[static_cast<size_t>(7 * out + 1)] = 0.0f;
  const quant::QuantizedTensor qt =
      quant::QuantizeLinearWeight(Tensor::FromData({in, out}, data));
  std::vector<float> round_trip(static_cast<size_t>(in));
  quant::DequantizeChannel(qt, 1, round_trip.data());
  EXPECT_EQ(round_trip[0], 0.0f);  // exactly, not approximately
  EXPECT_EQ(round_trip[7], 0.0f);
  EXPECT_EQ(qt.rows.data()[1 * in + 0], 0);
  EXPECT_EQ(qt.rows.data()[1 * in + 7], 0);
}

TEST(QuantizeTest, AllEqualChannelMapsTo127) {
  // A channel whose entries are all the same value v: scale = |v|/127,
  // every code is +/-127, and the round trip recovers v to float rounding.
  const Index in = 33, out = 2;
  const float v = 0.37f;
  std::vector<float> data(static_cast<size_t>(in * out));
  for (Index l = 0; l < in; ++l) {
    data[static_cast<size_t>(l * out + 0)] = v;
    data[static_cast<size_t>(l * out + 1)] = -2.0f * v;
  }
  const quant::QuantizedTensor qt =
      quant::QuantizeLinearWeight(Tensor::FromData({in, out}, data));
  std::vector<float> round_trip(static_cast<size_t>(in));
  for (Index ch = 0; ch < out; ++ch) {
    const float want = ch == 0 ? v : -2.0f * v;
    quant::DequantizeChannel(qt, ch, round_trip.data());
    for (Index l = 0; l < in; ++l) {
      EXPECT_EQ(qt.rows.data()[ch * in + l], want > 0 ? 127 : -127);
      EXPECT_NEAR(round_trip[static_cast<size_t>(l)], want,
                  1e-6f * std::fabs(want));
    }
  }
}

TEST(QuantizeTest, AllZeroChannelGetsUnitScaleAndZeroCodes) {
  const Index in = 8, out = 2;
  std::vector<float> data(static_cast<size_t>(in * out), 0.0f);
  for (Index l = 0; l < in; ++l) {
    data[static_cast<size_t>(l * out + 1)] = 0.5f;  // channel 1 non-zero
  }
  const quant::QuantizedTensor qt =
      quant::QuantizeLinearWeight(Tensor::FromData({in, out}, data));
  EXPECT_FLOAT_EQ(qt.scales[0], 1.0f);
  for (Index l = 0; l < in; ++l) EXPECT_EQ(qt.rows.data()[l], 0);
}

TEST(Int8GemmTest, MatchesIntegerReferenceAcrossShapesAndThreads) {
  for (const int threads : {0, 1, 4}) {
    runtime::SetGlobalPoolThreads(threads);
    for (const GemmCase& c : kCases) {
      const auto a =
          RandomData(static_cast<size_t>(c.m * c.k), 31, /*zeros=*/0.2);
      const auto b = RandomData(static_cast<size_t>(c.k * c.n), 37);
      const auto bias_row = RandomData(static_cast<size_t>(c.m), 41);
      const auto bias_col = RandomData(static_cast<size_t>(c.n), 43);
      std::vector<int8_t> qa, qb;
      std::vector<float> sa, sb;
      const std::vector<float> got =
          RunInt8Gemm(c, a, b, bias_row, bias_col, &qa, &qb, &sa, &sb);
      // Integer reference: the int32 accumulation is exact, so the only
      // slack is the float dequantize epilogue (a handful of ulps).
      for (Index i = 0; i < c.m; ++i) {
        for (Index j = 0; j < c.n; ++j) {
          int64_t acc = 0;
          for (Index l = 0; l < c.k; ++l) {
            acc += static_cast<int64_t>(qa[static_cast<size_t>(i * c.k + l)]) *
                   static_cast<int64_t>(qb[static_cast<size_t>(l * c.n + j)]);
          }
          const double want =
              static_cast<double>(sa[static_cast<size_t>(i)]) *
                  static_cast<double>(sb[static_cast<size_t>(j)]) *
                  static_cast<double>(acc) +
              bias_row[static_cast<size_t>(i)] +
              bias_col[static_cast<size_t>(j)];
          const double tol = 1e-5 * (1.0 + std::fabs(want));
          EXPECT_NEAR(got[static_cast<size_t>(i * c.n + j)], want, tol)
              << CaseName(c, threads) << " i=" << i << " j=" << j;
        }
      }
    }
  }
  runtime::SetGlobalPoolThreads(1);
}

TEST(Int8GemmTest, ErrorVsFp32WithinAnalyticBound) {
  // a = qa*sa + ea with |ea| <= sa/2 (same for b), so per summand
  // |a*b - (qa sa)(qb sb)| <= |a| sb/2 + |b| sa/2 + sa sb/4. The bound is
  // checked per output element; a violation means a quantizer or kernel
  // bug, not bad luck.
  runtime::SetGlobalPoolThreads(1);
  for (const GemmCase& c : kCases) {
    if (c.m == 0 || c.n == 0 || c.k == 0) continue;
    const auto a = RandomData(static_cast<size_t>(c.m * c.k), 51);
    const auto b = RandomData(static_cast<size_t>(c.k * c.n), 53);
    const std::vector<float> zero_row(static_cast<size_t>(c.m), 0.0f);
    const std::vector<float> zero_col(static_cast<size_t>(c.n), 0.0f);
    std::vector<float> sa, sb;
    const std::vector<float> got =
        RunInt8Gemm(c, a, b, zero_row, zero_col, nullptr, nullptr, &sa, &sb);
    for (Index i = 0; i < c.m; ++i) {
      for (Index j = 0; j < c.n; ++j) {
        double fp32 = 0.0, abs_a = 0.0, abs_b = 0.0;
        for (Index l = 0; l < c.k; ++l) {
          const double av = a[static_cast<size_t>(i * c.k + l)];
          const double bv = b[static_cast<size_t>(l * c.n + j)];
          fp32 += av * bv;
          abs_a += std::fabs(av);
          abs_b += std::fabs(bv);
        }
        const double half_sa = 0.5 * sa[static_cast<size_t>(i)];
        const double half_sb = 0.5 * sb[static_cast<size_t>(j)];
        const double bound = abs_a * half_sb + abs_b * half_sa +
                             static_cast<double>(c.k) * half_sa * half_sb +
                             1e-5 * (1.0 + std::fabs(fp32));
        EXPECT_LE(
            std::fabs(got[static_cast<size_t>(i * c.n + j)] - fp32), bound)
            << CaseName(c, 1) << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST(Int8GemmTest, BitwiseIdenticalAcrossThreadCounts) {
  // The int32 accumulation is exact, so no fmaf pinning is needed: any
  // row partition produces identical bits.
  for (const GemmCase& c : kCases) {
    const auto a = RandomData(static_cast<size_t>(c.m * c.k), 61);
    const auto b = RandomData(static_cast<size_t>(c.k * c.n), 67);
    const auto bias_row = RandomData(static_cast<size_t>(c.m), 71);
    const auto bias_col = RandomData(static_cast<size_t>(c.n), 73);
    std::vector<std::vector<float>> runs;
    for (const int threads : {0, 1, 4}) {
      runtime::SetGlobalPoolThreads(threads);
      runs.push_back(RunInt8Gemm(c, a, b, bias_row, bias_col));
    }
    for (size_t r = 1; r < runs.size(); ++r) {
      ASSERT_EQ(runs[0].size(), runs[r].size());
      if (runs[0].empty()) continue;
      EXPECT_EQ(std::memcmp(runs[0].data(), runs[r].data(),
                            runs[0].size() * sizeof(float)),
                0)
          << CaseName(c, r == 1 ? 1 : 4);
    }
  }
  runtime::SetGlobalPoolThreads(1);
}

TEST(Int8GemmTest, PrepackedLinearWeightMatchesUnpackedReference) {
  // The publish-time pipeline (QuantizeLinearWeight -> stored panel) must
  // produce the same product as packing the quantized rows on the fly.
  const Index m = 5, k = 96, n = 33;
  const auto x = RandomData(static_cast<size_t>(m * k), 81);
  const auto wdata = RandomData(static_cast<size_t>(k * n), 83);
  const quant::QuantizedTensor qt =
      quant::QuantizeLinearWeight(Tensor::FromData({k, n}, wdata));
  ASSERT_FALSE(qt.packed.empty());

  std::vector<int8_t> xq(static_cast<size_t>(m * k));
  std::vector<float> sx(static_cast<size_t>(m));
  gemm::QuantizeRowsInt8(m, k, x.data(), k, xq.data(), sx.data());
  const std::vector<float> bias = RandomData(static_cast<size_t>(n), 85);

  std::vector<float> via_bundle(static_cast<size_t>(m * n));
  gemm::Int8GemmPrepacked(m, n, k, xq.data(), k, sx.data(), qt.packed.data(),
                          qt.scales.data(), nullptr, bias.data(),
                          via_bundle.data(), n);

  // On-the-fly: the quantized rows ARE the Y operand of PackInt8NT.
  std::vector<int8_t> packed(static_cast<size_t>(gemm::Int8PanelBytes(k, n)));
  gemm::PackInt8NT(k, n, qt.rows.data(), k, packed.data());
  std::vector<float> via_fresh(static_cast<size_t>(m * n));
  gemm::Int8GemmPrepacked(m, n, k, xq.data(), k, sx.data(), packed.data(),
                          qt.scales.data(), nullptr, bias.data(),
                          via_fresh.data(), n);
  EXPECT_EQ(std::memcmp(via_bundle.data(), via_fresh.data(),
                        via_bundle.size() * sizeof(float)),
            0);
}

TEST(Int8GemmTest, FusedQuantizePackMatchesSeparateSteps) {
  // The request-time conv path fuses column-quantize and panel-pack into
  // one pass; it must be bit-identical — codes, scales, and pad bytes —
  // to running QuantizeColsInt8 then PackInt8NN, across full tiles
  // (w == 32), half tiles (w == 16), ragged widths, and k tails.
  for (const GemmCase& c : kCases) {
    if (c.k <= 0 || c.n <= 0) continue;
    const auto b = RandomData(static_cast<size_t>(c.k * c.n), 91,
                              /*zero_fraction=*/0.1);
    std::vector<int8_t> qb(static_cast<size_t>(c.k * c.n));
    std::vector<float> sb(static_cast<size_t>(c.n));
    gemm::QuantizeColsInt8(c.k, c.n, b.data(), c.n, qb.data(), sb.data());
    const size_t bytes = static_cast<size_t>(gemm::Int8PanelBytes(c.k, c.n));
    std::vector<int8_t> packed(bytes, int8_t{-99});
    gemm::PackInt8NN(c.k, c.n, qb.data(), c.n, packed.data());

    std::vector<int8_t> fused(bytes, int8_t{-99});
    std::vector<float> sb_fused(static_cast<size_t>(c.n));
    gemm::QuantizePackColsInt8(c.k, c.n, b.data(), c.n, fused.data(),
                               sb_fused.data());
    EXPECT_EQ(std::memcmp(packed.data(), fused.data(), bytes), 0)
        << CaseName(c, 1);
    EXPECT_EQ(std::memcmp(sb.data(), sb_fused.data(),
                          sb.size() * sizeof(float)),
              0)
        << CaseName(c, 1);
  }
}

TEST(WorkspaceAlignmentTest, AlignedScopedBytesHonors64ByteContract) {
  for (const Index bytes : {Index{0}, Index{1}, Index{63}, Index{64},
                            Index{65}, Index{4096}, Index{12345}}) {
    AlignedScopedBytes buf(bytes);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kPanelAlignment,
              0u)
        << "bytes=" << bytes;
    EXPECT_EQ(buf.size(), bytes);
    // The span is writable end to end.
    if (bytes > 0) {
      std::memset(buf.data(), 0x5A, static_cast<size_t>(bytes));
      EXPECT_EQ(buf.data()[bytes - 1], 0x5A);
    }
  }
}

TEST(WorkspaceAlignmentTest, AlignedInt8BufferStaysAlignedAfterCopyAndMove) {
  quant::AlignedInt8Buffer original(1000);
  std::memset(original.data(), 7, 1000);
  EXPECT_EQ(
      reinterpret_cast<std::uintptr_t>(original.data()) % kPanelAlignment,
      0u);
  quant::AlignedInt8Buffer copy = original;
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(copy.data()) % kPanelAlignment,
            0u);
  EXPECT_EQ(copy.data()[999], 7);
  quant::AlignedInt8Buffer moved = std::move(original);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(moved.data()) % kPanelAlignment,
            0u);
  EXPECT_EQ(moved.data()[0], 7);
}

}  // namespace
}  // namespace cews::nn
