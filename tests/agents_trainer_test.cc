#include "agents/chief_employee.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "baselines/dppo.h"
#include "env/map.h"

namespace cews::agents {
namespace {

env::Map SmallMap(uint64_t seed = 42) {
  env::MapConfig config;
  config.num_pois = 40;
  config.num_workers = 2;
  config.num_stations = 2;
  config.num_obstacles = 2;
  Rng rng(seed);
  auto result = env::GenerateMap(config, rng);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TrainerConfig TinyTrainer(int employees = 2, int episodes = 4) {
  TrainerConfig config;
  config.num_employees = employees;
  config.episodes = episodes;
  config.batch_size = 16;
  config.update_epochs = 2;
  config.env.horizon = 20;
  config.encoder.grid = 10;
  config.net.grid = 10;
  config.net.conv1_channels = 4;
  config.net.conv2_channels = 4;
  config.net.conv3_channels = 4;
  config.net.feature_dim = 32;
  config.seed = 3;
  return config;
}

TEST(TrainerTest, ProducesFullHistory) {
  ChiefEmployeeTrainer trainer(TinyTrainer(), SmallMap());
  const TrainResult result = trainer.Train();
  ASSERT_EQ(result.history.size(), 4u);
  EXPECT_GT(result.seconds, 0.0);
  for (const EpisodeRecord& rec : result.history) {
    EXPECT_GE(rec.kappa, 0.0);
    EXPECT_LE(rec.kappa, 1.0 + 1e-9);
    EXPECT_GE(rec.xi, 0.0);
    EXPECT_LE(rec.xi, 1.0 + 1e-9);
    EXPECT_GE(rec.rho, 0.0);
    EXPECT_GE(rec.intrinsic_reward, 0.0);  // curiosity active by default
  }
}

TEST(TrainerTest, AutoFillsDependentDimensions) {
  TrainerConfig config = TinyTrainer();
  config.net.num_workers = 99;  // wrong on purpose; trainer must fix it
  config.curiosity.num_cells = 1;
  ChiefEmployeeTrainer trainer(config, SmallMap());
  EXPECT_EQ(trainer.config().net.num_workers, 2);
  EXPECT_EQ(trainer.config().curiosity.num_cells, 100);
  EXPECT_EQ(trainer.config().curiosity.num_moves,
            trainer.config().env.action_space.num_moves());
  EXPECT_EQ(trainer.config().rnd.state_size, 300);
}

TEST(TrainerTest, SingleEmployeeIsDeterministic) {
  const TrainerConfig config = TinyTrainer(/*employees=*/1, /*episodes=*/3);
  const env::Map map = SmallMap();
  ChiefEmployeeTrainer a(config, map);
  ChiefEmployeeTrainer b(config, map);
  const TrainResult ra = a.Train();
  const TrainResult rb = b.Train();
  ASSERT_EQ(ra.history.size(), rb.history.size());
  for (size_t i = 0; i < ra.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.history[i].kappa, rb.history[i].kappa);
    EXPECT_DOUBLE_EQ(ra.history[i].extrinsic_reward,
                     rb.history[i].extrinsic_reward);
  }
}

TEST(TrainerTest, DenseRewardModeRuns) {
  TrainerConfig config = TinyTrainer();
  config.reward_mode = RewardMode::kDense;
  config.intrinsic = IntrinsicMode::kNone;
  ChiefEmployeeTrainer trainer(config, SmallMap());
  const TrainResult result = trainer.Train();
  for (const EpisodeRecord& rec : result.history) {
    EXPECT_EQ(rec.intrinsic_reward, 0.0);
  }
}

TEST(TrainerTest, RndIntrinsicModeRuns) {
  TrainerConfig config = TinyTrainer(1, 2);
  config.intrinsic = IntrinsicMode::kRnd;
  ChiefEmployeeTrainer trainer(config, SmallMap());
  const TrainResult result = trainer.Train();
  double total_intrinsic = 0.0;
  for (const EpisodeRecord& rec : result.history) {
    total_intrinsic += rec.intrinsic_reward;
  }
  EXPECT_GT(total_intrinsic, 0.0);
}

TEST(TrainerTest, HeatmapSnapshotsWhenEnabled) {
  TrainerConfig config = TinyTrainer(2, 6);
  config.heatmap_snapshot_every = 2;
  ChiefEmployeeTrainer trainer(config, SmallMap());
  trainer.Train();
  const auto& snaps = trainer.heatmap_snapshots();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].episode, 2);
  EXPECT_EQ(snaps[2].episode, 6);
  for (const HeatmapSnapshot& snap : snaps) {
    ASSERT_EQ(snap.cell_values.size(), 100u);
    double total = 0.0;
    for (double v : snap.cell_values) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_GT(total, 0.0);  // workers visited somewhere
  }
}

TEST(TrainerTest, HeatmapDisabledByDefault) {
  ChiefEmployeeTrainer trainer(TinyTrainer(), SmallMap());
  trainer.Train();
  EXPECT_TRUE(trainer.heatmap_snapshots().empty());
}

TEST(TrainerTest, CuriosityVariantsAllRun) {
  for (const CuriosityFeature feature :
       {CuriosityFeature::kEmbedding, CuriosityFeature::kDirect}) {
    for (const CuriosityStructure structure :
         {CuriosityStructure::kShared, CuriosityStructure::kIndependent}) {
      TrainerConfig config = TinyTrainer(1, 2);
      config.curiosity.feature = feature;
      config.curiosity.structure = structure;
      ChiefEmployeeTrainer trainer(config, SmallMap());
      const TrainResult result = trainer.Train();
      EXPECT_EQ(result.history.size(), 2u);
    }
  }
}

TEST(TrainerTest, PeriodicCheckpointsWritten) {
  TrainerConfig config = TinyTrainer(1, 4);
  config.checkpoint_every = 2;
  config.checkpoint_prefix = ::testing::TempDir() + "/cews_trainer_ckpt_";
  ChiefEmployeeTrainer trainer(config, SmallMap());
  trainer.Train();
  for (const int episode : {2, 4}) {
    const std::string path =
        config.checkpoint_prefix + std::to_string(episode) + ".bin";
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(in)) << path;
    in.close();
    std::remove(path.c_str());
  }
  // The checkpoint is loadable into a compatible net.
  // (Round-trip correctness is covered by nn serialize tests.)
}

TEST(DppoConfigTest, FactorySetsPaperSettings) {
  TrainerConfig base;
  base.reward_mode = RewardMode::kSparse;
  base.intrinsic = IntrinsicMode::kSpatialCuriosity;
  const TrainerConfig dppo = cews::baselines::MakeDppoConfig(base);
  EXPECT_EQ(dppo.reward_mode, RewardMode::kDense);
  EXPECT_EQ(dppo.intrinsic, IntrinsicMode::kNone);
  EXPECT_EQ(dppo.num_employees, 8);
  EXPECT_EQ(dppo.batch_size, 250);
  EXPECT_TRUE(dppo.ppo.normalize_advantages);
}

}  // namespace
}  // namespace cews::agents
