// Environment transition semantics: Eqns (1)-(3), charging, collisions,
// sparse reward milestones (Eqn 18) and bookkeeping invariants.
#include <gtest/gtest.h>

#include "env/env.h"

namespace cews::env {
namespace {

/// Hand-built 10x10 map: full control over geometry.
Map HandMap() {
  Map map;
  map.config.size_x = 10.0;
  map.config.size_y = 10.0;
  map.config.hard_corner = false;
  map.pois = {Poi{{5.0, 5.0}, 1.0}};
  map.stations = {ChargingStation{{1.0, 1.0}}};
  map.worker_spawns = {{5.0, 5.0}};
  return map;
}

std::vector<WorkerAction> Stay(int workers) {
  return std::vector<WorkerAction>(static_cast<size_t>(workers),
                                   WorkerAction{0, false});
}

TEST(EnvDynamicsTest, CollectionFollowsEqn1) {
  // Worker sits on a single PoI (delta0 = 1, lambda = 0.2): collects
  // exactly 0.2 per slot for 5 slots, then nothing.
  Env env(EnvConfig{}, HandMap());
  for (int t = 0; t < 5; ++t) {
    const StepResult r = env.Step(Stay(1));
    EXPECT_NEAR(r.collected[0], 0.2, 1e-12) << "slot " << t;
  }
  const StepResult r = env.Step(Stay(1));
  EXPECT_NEAR(r.collected[0], 0.0, 1e-12);
  EXPECT_NEAR(env.poi_values()[0], 0.0, 1e-12);
  EXPECT_NEAR(env.workers()[0].collected_total, 1.0, 1e-12);
}

TEST(EnvDynamicsTest, AccessTimeIncrementsOnCollection) {
  Env env(EnvConfig{}, HandMap());
  EXPECT_EQ(env.poi_access()[0], 0);
  env.Step(Stay(1));
  EXPECT_EQ(env.poi_access()[0], 1);
  env.Step(Stay(1));
  EXPECT_EQ(env.poi_access()[0], 2);
  // Depleted PoI stops counting.
  for (int t = 0; t < 5; ++t) env.Step(Stay(1));
  const int h = env.poi_access()[0];
  env.Step(Stay(1));
  EXPECT_EQ(env.poi_access()[0], h);
}

TEST(EnvDynamicsTest, SensingRangeRespected) {
  Map map = HandMap();
  map.pois[0].pos = {5.0, 5.0 + 0.81};  // just outside g = 0.8
  Env env(EnvConfig{}, map);
  const StepResult r = env.Step(Stay(1));
  EXPECT_EQ(r.collected[0], 0.0);
}

TEST(EnvDynamicsTest, EnergyFollowsEqn3) {
  // Move east 1.0 with no PoI in range: e = beta * 1.0 = 0.1.
  Map map = HandMap();
  map.pois[0].pos = {9.0, 9.0};
  Env env(EnvConfig{}, map);
  // Move index 9 = heading E with step length 1.0 (second ring).
  const StepResult r = env.Step({WorkerAction{9, false}});
  EXPECT_NEAR(r.energy_used[0], 0.1, 1e-9);
  EXPECT_NEAR(env.workers()[0].energy, 40.0 - 0.1, 1e-9);
  EXPECT_NEAR(env.workers()[0].pos.x, 6.0, 1e-9);
}

TEST(EnvDynamicsTest, EnergyChargesForCollection) {
  // Stay on the PoI: e = alpha * q = 1.0 * 0.2.
  Env env(EnvConfig{}, HandMap());
  const StepResult r = env.Step(Stay(1));
  EXPECT_NEAR(r.energy_used[0], 0.2, 1e-9);
}

TEST(EnvDynamicsTest, EnergyConservationInvariant) {
  // b_t == b_0 - E_t + charged_total at every step.
  Map map = HandMap();
  map.worker_spawns[0] = {1.0, 1.0};  // at the station
  Env env(EnvConfig{}, map);
  Rng rng(3);
  while (!env.Done()) {
    std::vector<WorkerAction> actions = {
        WorkerAction{static_cast<int>(rng.UniformInt(17)),
                     rng.Bernoulli(0.3)}};
    env.Step(actions);
    const WorkerState& w = env.workers()[0];
    EXPECT_NEAR(w.energy,
                env.config().initial_energy - w.energy_used_total +
                    w.charged_total,
                1e-6);
  }
}

TEST(EnvDynamicsTest, ObstacleCollisionStaysAndPenalizes) {
  Map map = HandMap();
  map.obstacles = {Rect{5.5, 4.0, 6.5, 6.0}};  // wall east of the worker
  map.pois[0].pos = {9.0, 9.0};
  Env env(EnvConfig{}, map);
  const Position before = env.workers()[0].pos;
  const StepResult r = env.Step({WorkerAction{9, false}});  // move east 1.0
  EXPECT_TRUE(r.collided[0]);
  EXPECT_TRUE(env.workers()[0].pos == before);
  EXPECT_EQ(env.workers()[0].collisions, 1);
  EXPECT_NEAR(r.per_worker_sparse[0], -env.config().obstacle_penalty, 1e-9);
  // A collided worker also collects nothing this slot.
  EXPECT_EQ(r.collected[0], 0.0);
}

TEST(EnvDynamicsTest, BoundaryCollision) {
  Map map = HandMap();
  map.worker_spawns[0] = {0.3, 5.0};
  map.pois[0].pos = {9.0, 9.0};
  Env env(EnvConfig{}, map);
  const StepResult r = env.Step({WorkerAction{13, false}});  // west 1.0
  EXPECT_TRUE(r.collided[0]);
  EXPECT_NEAR(env.workers()[0].pos.x, 0.3, 1e-12);
}

TEST(EnvDynamicsTest, ChargingInRange) {
  Map map = HandMap();
  map.worker_spawns[0] = {1.0, 1.5};  // within 0.8 of station at (1,1)
  map.pois[0].pos = {9.0, 9.0};
  EnvConfig config;
  Env env(config, map);
  // Drain some energy first so charging has headroom.
  env.Step({WorkerAction{9, false}});
  env.Step({WorkerAction{13, false}});
  const double before = env.workers()[0].energy;
  const StepResult r = env.Step({WorkerAction{0, true}});
  EXPECT_TRUE(r.charging[0]);
  EXPECT_GT(r.charged[0], 0.0);
  EXPECT_NEAR(env.workers()[0].energy,
              std::min(before + config.charge_rate, config.energy_capacity),
              1e-9);
}

TEST(EnvDynamicsTest, ChargingSaturatesAtCapacity) {
  Map map = HandMap();
  map.worker_spawns[0] = {1.0, 1.0};
  map.pois[0].pos = {9.0, 9.0};
  Env env(EnvConfig{}, map);
  // Full battery: charge request is refused outright.
  const StepResult r = env.Step({WorkerAction{0, true}});
  EXPECT_FALSE(r.charging[0]);
  EXPECT_EQ(r.charged[0], 0.0);
  EXPECT_NEAR(env.workers()[0].energy, 40.0, 1e-9);
}

TEST(EnvDynamicsTest, ChargingOutOfRangeDegradesToStay) {
  Map map = HandMap();
  map.worker_spawns[0] = {5.0, 5.0};  // far from station
  map.pois[0].pos = {9.0, 9.0};
  Env env(EnvConfig{}, map);
  const StepResult r = env.Step({WorkerAction{0, true}});
  EXPECT_FALSE(r.charging[0]);
  EXPECT_EQ(r.charged[0], 0.0);
  EXPECT_FALSE(r.collided[0]);  // no penalty for a refused charge
}

TEST(EnvDynamicsTest, StationCompetitionOnePumpPerSlot) {
  Map map = HandMap();
  map.worker_spawns = {{1.0, 1.4}, {1.0, 0.6}};  // both in range
  map.pois[0].pos = {9.0, 9.0};
  EnvConfig config;
  Env env(config, map);
  // Drain both a bit.
  env.Step({WorkerAction{9, false}, WorkerAction{9, false}});
  env.Step({WorkerAction{13, false}, WorkerAction{13, false}});
  const StepResult r =
      env.Step({WorkerAction{0, true}, WorkerAction{0, true}});
  EXPECT_TRUE(r.charging[0]);   // lower index wins the pump
  EXPECT_FALSE(r.charging[1]);  // competitor must wait
}

TEST(EnvDynamicsTest, ChargingExcludesCollection) {
  Map map = HandMap();
  map.worker_spawns[0] = {1.0, 1.0};
  map.pois[0].pos = {1.0, 1.3};  // PoI in sensing range of the station spot
  Env env(EnvConfig{}, map);
  env.Step({WorkerAction{9, false}});   // drain
  env.Step({WorkerAction{13, false}});  // come back
  const StepResult r = env.Step({WorkerAction{0, true}});
  EXPECT_TRUE(r.charging[0]);
  EXPECT_EQ(r.collected[0], 0.0);  // charging slot collects nothing
}

TEST(EnvDynamicsTest, ExhaustedWorkerStopsMoving) {
  Map map = HandMap();
  map.pois[0].pos = {9.0, 9.0};
  EnvConfig config;
  config.initial_energy = 0.25;  // dies after two 1.0 moves
  config.energy_capacity = 40.0;
  config.horizon = 50;
  Env env(config, map);
  env.Step({WorkerAction{9, false}});
  env.Step({WorkerAction{9, false}});
  env.Step({WorkerAction{9, false}});
  EXPECT_NEAR(env.workers()[0].energy, 0.0, 1e-9);
  const Position stuck = env.workers()[0].pos;
  const StepResult r = env.Step({WorkerAction{9, false}});
  EXPECT_TRUE(env.workers()[0].pos == stuck);
  EXPECT_EQ(r.energy_used[0], 0.0);
}

TEST(EnvDynamicsTest, SparseCollectionMilestoneEqn18) {
  // Total initial data = 1.0, eps1 = 5%: the first 0.2-collection crosses
  // the 5% milestone -> Upsilon1 = 1 on slot 1, then the next milestone is
  // above 20%+5%... collecting 0.2 per slot keeps crossing. After
  // depletion, no more milestone rewards.
  Env env(EnvConfig{}, HandMap());
  for (int t = 0; t < 5; ++t) {
    const StepResult r = env.Step(Stay(1));
    EXPECT_NEAR(r.per_worker_sparse[0], 1.0, 1e-9) << "slot " << t;
  }
  const StepResult r = env.Step(Stay(1));
  EXPECT_NEAR(r.per_worker_sparse[0], 0.0, 1e-9);
}

TEST(EnvDynamicsTest, SparseChargeMilestoneEqn18) {
  // eps2 = 40% of b0 = 16 energy. Charge rate 10/slot: milestone reached on
  // the second charging slot.
  Map map = HandMap();
  map.worker_spawns[0] = {1.0, 1.0};
  map.pois[0].pos = {9.0, 9.0};
  EnvConfig config;
  config.initial_energy = 10.0;  // room to charge 30 units
  config.energy_capacity = 40.0;
  Env env(config, map);
  const StepResult r1 = env.Step({WorkerAction{0, true}});
  EXPECT_TRUE(r1.charging[0]);
  EXPECT_NEAR(r1.per_worker_sparse[0], 1.0, 1e-9);  // 10/10 >= 40%? b0=10!
  // With b0 = 10 and rate 10, a single slot charges 100% >= 40%.
}

TEST(EnvDynamicsTest, DenseRewardEqn20) {
  // Stay on PoI: q = 0.2, e = 0.2 -> q/e = 1.0; no charge, no collision.
  Env env(EnvConfig{}, HandMap());
  const StepResult r = env.Step(Stay(1));
  EXPECT_NEAR(r.dense_reward, 1.0, 1e-9);
}

TEST(EnvDynamicsTest, EpisodeTerminatesAtHorizon) {
  EnvConfig config;
  config.horizon = 3;
  Env env(config, HandMap());
  EXPECT_FALSE(env.Done());
  env.Step(Stay(1));
  env.Step(Stay(1));
  const StepResult r = env.Step(Stay(1));
  EXPECT_TRUE(r.done);
  EXPECT_TRUE(env.Done());
  EXPECT_EQ(env.t(), 3);
}

TEST(EnvDynamicsTest, ResetRestoresEverything) {
  Env env(EnvConfig{}, HandMap());
  env.Step(Stay(1));
  env.Step({WorkerAction{9, false}});
  env.Reset();
  EXPECT_EQ(env.t(), 0);
  EXPECT_NEAR(env.poi_values()[0], 1.0, 1e-12);
  EXPECT_EQ(env.poi_access()[0], 0);
  EXPECT_NEAR(env.workers()[0].energy, 40.0, 1e-12);
  EXPECT_TRUE(env.workers()[0].pos == Position({5.0, 5.0}));
  EXPECT_EQ(env.trajectories()[0].size(), 1u);
}

TEST(EnvDynamicsTest, TrajectoriesRecordEverySlot) {
  Env env(EnvConfig{}, HandMap());
  env.Step({WorkerAction{9, false}});
  env.Step({WorkerAction{1, false}});
  ASSERT_EQ(env.trajectories()[0].size(), 3u);  // spawn + 2 steps
  EXPECT_NEAR(env.trajectories()[0][1].x, 6.0, 1e-9);
}

TEST(EnvDynamicsTest, HelperQueries) {
  Map map = HandMap();
  map.stations.push_back(ChargingStation{{9.0, 9.0}});
  Env env(EnvConfig{}, map);
  EXPECT_EQ(env.NearestStation({8.0, 8.0}), 1);
  EXPECT_EQ(env.NearestStation({0.5, 0.5}), 0);
  EXPECT_TRUE(env.CanChargeAt({1.2, 1.2}));
  EXPECT_FALSE(env.CanChargeAt({5.0, 5.0}));
  EXPECT_GT(env.PotentialCollection({5.0, 5.0}), 0.0);
  EXPECT_EQ(env.PotentialCollection({2.0, 8.0}), 0.0);
  EXPECT_TRUE(env.MoveValid(0, 0));
  const Position t9 = env.MoveTarget(0, 9);
  EXPECT_NEAR(t9.x, 6.0, 1e-9);
  EXPECT_NEAR(t9.y, 5.0, 1e-9);
}

TEST(EnvDynamicsTest, SnapshotRestoreRoundTrip) {
  Env env(EnvConfig{}, HandMap());
  env.Step(Stay(1));
  env.Step({WorkerAction{9, false}});
  const Env::Snapshot snapshot = env.Save();
  const double kappa = env.Kappa();
  const Position pos = env.workers()[0].pos;
  // Diverge, then roll back.
  env.Step({WorkerAction{9, false}});
  env.Step({WorkerAction{9, false}});
  EXPECT_NE(env.workers()[0].pos.x, pos.x);
  env.Restore(snapshot);
  EXPECT_EQ(env.t(), 2);
  EXPECT_DOUBLE_EQ(env.Kappa(), kappa);
  EXPECT_TRUE(env.workers()[0].pos == pos);
  // Stepping again from the restored state matches a fresh rollout.
  const StepResult r = env.Step({WorkerAction{13, false}});
  EXPECT_FALSE(r.collided[0]);
  EXPECT_NEAR(env.workers()[0].pos.x, pos.x - 1.0, 1e-9);
}

TEST(EnvDynamicsTest, SnapshotSimulationDoesNotLeak) {
  // Planner-style usage: branch N times from the same state.
  Env env(EnvConfig{}, HandMap());
  env.Step(Stay(1));
  const Env::Snapshot snapshot = env.Save();
  double q_east, q_stay;
  {
    env.Step({WorkerAction{9, false}});
    q_east = env.workers()[0].collected_total;
    env.Restore(snapshot);
  }
  {
    env.Step(Stay(1));
    q_stay = env.workers()[0].collected_total;
    env.Restore(snapshot);
  }
  EXPECT_GT(q_stay, q_east);  // staying on the PoI collects more
  EXPECT_EQ(env.t(), 1);
  EXPECT_NEAR(env.workers()[0].collected_total, 0.2, 1e-12);
}

TEST(EnvDynamicsTest, StepCountMustMatchWorkers) {
  Map map = HandMap();
  map.worker_spawns.push_back({2.0, 2.0});
  Env env(EnvConfig{}, map);
  const StepResult r = env.Step(Stay(2));
  EXPECT_EQ(r.collected.size(), 2u);
}

}  // namespace
}  // namespace cews::env
