// The shared vectorized acting core: batched sampling vs the single-state
// path, validity masking, RunVecRollout vs a hand-rolled legacy loop, and
// buffer merging.
#include "agents/trainer_core.h"

#include <gtest/gtest.h>

#include <cmath>

#include "agents/eval.h"
#include "agents/policy_net.h"
#include "common/thread_pool.h"
#include "env/map.h"
#include "env/state_encoder.h"
#include "env/vec_env.h"
#include "nn/ops.h"
#include "nn/workspace.h"

namespace cews::agents {
namespace {

env::Map SmallMap(uint64_t seed = 42) {
  env::MapConfig config;
  config.num_pois = 30;
  config.num_workers = 2;
  config.num_stations = 2;
  config.num_obstacles = 2;
  Rng rng(seed);
  auto result = env::GenerateMap(config, rng);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

env::EnvConfig ShortConfig(int horizon = 6) {
  env::EnvConfig config;
  config.horizon = horizon;
  return config;
}

PolicyNetConfig TinyNet(const env::Map& map, const env::EnvConfig& env,
                        int grid) {
  PolicyNetConfig net;
  net.grid = grid;
  net.num_workers = static_cast<int>(map.worker_spawns.size());
  net.num_moves = env.action_space.num_moves();
  net.conv1_channels = 4;
  net.conv2_channels = 4;
  net.conv3_channels = 4;
  net.feature_dim = 32;
  return net;
}

TEST(SamplePolicyBatchTest, BatchOneIsBitwiseIdenticalToSamplePolicy) {
  const env::Map map = SmallMap();
  const env::EnvConfig env_config = ShortConfig();
  env::StateEncoderConfig encoder_config;
  encoder_config.grid = 10;
  const env::StateEncoder encoder(encoder_config);
  Rng net_rng(5);
  const PolicyNet net(TinyNet(map, env_config, 10), net_rng);

  env::Env env(env_config, map);
  const std::vector<float> state = encoder.Encode(env);

  Rng rng_a(99), rng_b(99);
  const ActResult single = SamplePolicy(net, state, rng_a, false);
  const std::vector<ActResult> batch =
      SamplePolicyBatch(net, state, 1, rng_b, false);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(single.moves, batch[0].moves);
  EXPECT_EQ(single.charges, batch[0].charges);
  EXPECT_EQ(single.log_prob, batch[0].log_prob);  // bitwise
  EXPECT_EQ(single.value, batch[0].value);
  EXPECT_EQ(rng_a.NextU64(), rng_b.NextU64());  // same draws consumed
}

TEST(SamplePolicyBatchTest, BatchRowsMatchSequentialSingleCalls) {
  const env::Map map = SmallMap();
  const env::EnvConfig env_config = ShortConfig();
  env::StateEncoderConfig encoder_config;
  encoder_config.grid = 10;
  const env::StateEncoder encoder(encoder_config);
  Rng net_rng(5);
  const PolicyNet net(TinyNet(map, env_config, 10), net_rng);

  env::VecEnv vec(env_config, map, /*num_envs=*/3);
  std::vector<std::vector<env::WorkerAction>> actions(
      3, std::vector<env::WorkerAction>(2, env::WorkerAction{0, false}));
  actions[1][0] = env::WorkerAction{1, false};
  actions[2][1] = env::WorkerAction{3, false};
  vec.Step(actions);
  const std::vector<float> states = encoder.EncodeBatch(vec.EnvPtrs());

  Rng rng_batch(7), rng_seq(7);
  const std::vector<ActResult> batched =
      SamplePolicyBatch(net, states, 3, rng_batch, false);
  const size_t stride = static_cast<size_t>(encoder.StateSize());
  for (int i = 0; i < 3; ++i) {
    const std::vector<float> state(
        states.begin() + static_cast<ptrdiff_t>(i * stride),
        states.begin() + static_cast<ptrdiff_t>((i + 1) * stride));
    const ActResult single = SamplePolicy(net, state, rng_seq, false);
    EXPECT_EQ(single.moves, batched[static_cast<size_t>(i)].moves);
    EXPECT_EQ(single.charges, batched[static_cast<size_t>(i)].charges);
    EXPECT_EQ(single.log_prob, batched[static_cast<size_t>(i)].log_prob);
    EXPECT_EQ(single.value, batched[static_cast<size_t>(i)].value);
  }
}

TEST(SamplePolicyBatchTest, MasksConfineMovesToValidOptions) {
  const env::Map map = SmallMap();
  const env::EnvConfig env_config = ShortConfig();
  env::StateEncoderConfig encoder_config;
  encoder_config.grid = 10;
  const env::StateEncoder encoder(encoder_config);
  Rng net_rng(5);
  const PolicyNetConfig net_config = TinyNet(map, env_config, 10);
  const PolicyNet net(net_config, net_rng);

  env::VecEnv vec(env_config, map, /*num_envs=*/2);
  const std::vector<float> states = encoder.EncodeBatch(vec.EnvPtrs());
  const std::vector<uint8_t> masks = vec.MoveValidityMasks();

  // Sampled (and argmax) moves always land on a mask-valid option.
  for (const bool deterministic : {false, true}) {
    Rng rng(13);
    const std::vector<ActResult> acts = SamplePolicyBatch(
        net, states, 2, rng, deterministic, masks.data());
    for (int i = 0; i < 2; ++i) {
      for (int w = 0; w < net_config.num_workers; ++w) {
        const int move =
            acts[static_cast<size_t>(i)].moves[static_cast<size_t>(w)];
        EXPECT_TRUE(vec.env(i).MoveValid(w, move))
            << "env " << i << " worker " << w << " move " << move;
      }
    }
  }

  // A mask that forbids everything but move 0 forces move 0.
  std::vector<uint8_t> only_stay(masks.size(), 0);
  const int num_moves = net_config.num_moves;
  for (size_t k = 0; k < only_stay.size(); k += num_moves) only_stay[k] = 1;
  Rng rng(13);
  const std::vector<ActResult> forced =
      SamplePolicyBatch(net, states, 2, rng, false, only_stay.data());
  for (const ActResult& act : forced) {
    for (int move : act.moves) EXPECT_EQ(move, 0);
  }
}

TEST(RunVecRolloutTest, SingleEnvMatchesHandRolledLegacyLoop) {
  const env::Map map = SmallMap();
  const env::EnvConfig env_config = ShortConfig();
  env::StateEncoderConfig encoder_config;
  encoder_config.grid = 10;
  const env::StateEncoder encoder(encoder_config);
  Rng net_rng(5);
  const PolicyNet net(TinyNet(map, env_config, 10), net_rng);
  const float reward_scale = 0.1f;

  // Reference: the legacy single-env rollout, verbatim.
  RolloutBuffer expected;
  double expected_ext = 0.0;
  {
    env::Env env(env_config, map);
    Rng rng(77);
    std::vector<float> state = encoder.Encode(env);
    while (!env.Done()) {
      const ActResult act = SamplePolicy(net, state, rng, false);
      const env::StepResult step = env.Step(act.actions);
      Transition t;
      t.state = std::move(state);
      t.moves = act.moves;
      t.charges = act.charges;
      t.log_prob = act.log_prob;
      t.value = act.value;
      t.reward = reward_scale * static_cast<float>(step.dense_reward);
      t.done = step.done;
      expected.Add(std::move(t));
      state = encoder.Encode(env);
      expected_ext += step.dense_reward;
    }
  }

  env::VecEnv vec(env_config, map, /*num_envs=*/1);
  Rng rng(77);
  VecRolloutOptions options;
  options.sparse_reward = false;
  options.reward_scale = reward_scale;
  VecRolloutResult rollout =
      RunVecRollout(net, vec, encoder, rng, options);

  ASSERT_EQ(rollout.buffers.size(), 1u);
  ASSERT_EQ(rollout.buffers[0].size(), expected.size());
  EXPECT_EQ(rollout.env_steps, static_cast<int64_t>(expected.size()));
  EXPECT_DOUBLE_EQ(rollout.extrinsic_sums[0], expected_ext);
  for (size_t t = 0; t < expected.size(); ++t) {
    const Transition& a = expected[t];
    const Transition& b = rollout.buffers[0][t];
    EXPECT_EQ(a.state, b.state);
    EXPECT_EQ(a.moves, b.moves);
    EXPECT_EQ(a.charges, b.charges);
    EXPECT_EQ(a.log_prob, b.log_prob);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.reward, b.reward);
    EXPECT_EQ(a.done, b.done);
  }
}

TEST(RunVecRolloutTest, MultiEnvFillsEveryBuffer) {
  const env::Map map = SmallMap();
  const env::EnvConfig env_config = ShortConfig(/*horizon=*/4);
  env::StateEncoderConfig encoder_config;
  encoder_config.grid = 10;
  const env::StateEncoder encoder(encoder_config);
  Rng net_rng(5);
  const PolicyNet net(TinyNet(map, env_config, 10), net_rng);

  env::VecEnv vec(env_config, map, /*num_envs=*/3);
  Rng rng(21);
  VecRolloutOptions options;
  VecRolloutResult rollout =
      RunVecRollout(net, vec, encoder, rng, options);
  ASSERT_EQ(rollout.buffers.size(), 3u);
  EXPECT_EQ(rollout.env_steps, 3 * 4);
  for (const RolloutBuffer& b : rollout.buffers) {
    EXPECT_EQ(b.size(), 4u);
    EXPECT_TRUE(b[3].done);
  }
}

TEST(WorkspaceChurnTest, PolicyNetStepIsAllocationFreeInSteadyState) {
  // A full policy-net forward + backward — the inner loop of every PPO
  // update epoch — must run out of the per-thread workspace arena once it
  // is warm: zero allocator hits (workspace misses) per steady-state step.
  // Serial pool so every acquisition lands on one arena; with workers the
  // warm-up set is split nondeterministically across threads.
  runtime::SetGlobalPoolThreads(1);
  const env::Map map = SmallMap();
  const env::EnvConfig env_config = ShortConfig();
  env::StateEncoderConfig encoder_config;
  encoder_config.grid = 10;
  const env::StateEncoder encoder(encoder_config);
  Rng net_rng(5);
  const PolicyNet net(TinyNet(map, env_config, 10), net_rng);

  env::VecEnv vec(env_config, map, /*num_envs=*/4);
  const std::vector<float> states = encoder.EncodeBatch(vec.EnvPtrs());
  const PolicyNetConfig& cfg = net.config();
  const std::vector<nn::Tensor> params = net.Parameters();

  auto step = [&]() {
    std::vector<float> batch = nn::Workspace::AcquireVec(
        static_cast<nn::Index>(states.size()));
    std::copy(states.begin(), states.end(), batch.begin());
    nn::Tensor x = nn::Tensor::FromData(
        {4, cfg.in_channels, cfg.grid, cfg.grid}, std::move(batch), false);
    const PolicyOutput out = net.Forward(x);
    nn::Tensor loss =
        nn::Add(nn::Add(nn::Mean(nn::Square(out.move_logits)),
                        nn::Mean(nn::Square(out.charge_logits))),
                nn::Mean(nn::Square(out.value)));
    for (const nn::Tensor& p : params) {
      nn::Tensor grad_holder = p;
      grad_holder.ZeroGrad();
    }
    loss.Backward();
  };

  for (int i = 0; i < 3; ++i) step();  // warm the arena
  const nn::Workspace::Stats before = nn::Workspace::GlobalStats();
  for (int i = 0; i < 5; ++i) step();
  const nn::Workspace::Stats after = nn::Workspace::GlobalStats();
  EXPECT_EQ(after.misses, before.misses)
      << "steady-state policy-net step hit the allocator";
  EXPECT_GT(after.reuse_hits, before.reuse_hits);
}

TEST(MergeBuffersTest, ConcatenatesInOrder) {
  auto make = [](float base, int steps) {
    RolloutBuffer buffer;
    for (int t = 0; t < steps; ++t) {
      Transition tr;
      tr.reward = base + static_cast<float>(t);
      tr.value = 0.0f;
      tr.done = t == steps - 1;
      buffer.Add(std::move(tr));
    }
    buffer.ComputeAdvantages(0.9f, 0.95f, 0.0f);
    return buffer;
  };
  std::vector<RolloutBuffer> buffers;
  buffers.push_back(make(10.0f, 2));
  buffers.push_back(make(20.0f, 3));
  const RolloutBuffer merged = MergeBuffers(std::move(buffers));
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_EQ(merged[0].reward, 10.0f);
  EXPECT_EQ(merged[1].reward, 11.0f);
  EXPECT_EQ(merged[2].reward, 20.0f);
  EXPECT_EQ(merged[4].reward, 22.0f);
  ASSERT_EQ(merged.advantages().size(), 5u);
  // Advantages were computed per episode, before merging: the merged
  // buffer's tail must equal a standalone computation on the second
  // episode.
  const RolloutBuffer solo = make(20.0f, 3);
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(merged.advantages()[static_cast<size_t>(2 + t)],
              solo.advantages()[static_cast<size_t>(t)]);
  }
}

}  // namespace
}  // namespace cews::agents
