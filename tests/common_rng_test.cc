#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace cews {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(19);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianShifted) {
  Rng rng(29);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 0.5);
  EXPECT_NEAR(sum / n, 10.0, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(37);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, ForkIndependence) {
  Rng a(41);
  Rng b = a.Fork();
  // Forked stream differs from parent continuing.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, UniformIntStaysInBound) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.UniformInt(13), 13u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xFFFFFFFFULL,
                                           0xDEADBEEFDEADBEEFULL));

}  // namespace
}  // namespace cews
