#include "env/map_io.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace cews::env {
namespace {

Map GeneratedMap(uint64_t seed = 17) {
  MapConfig config;
  config.num_pois = 60;
  config.num_workers = 3;
  config.num_stations = 2;
  Rng rng(seed);
  auto result = GenerateMap(config, rng);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(MapIoTest, RoundTripPreservesEverything) {
  const Map original = GeneratedMap();
  const std::string text = MapToString(original);
  auto loaded_or = MapFromString(text);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const Map& loaded = *loaded_or;
  EXPECT_EQ(loaded.config.size_x, original.config.size_x);
  EXPECT_EQ(loaded.config.size_y, original.config.size_y);
  ASSERT_EQ(loaded.obstacles.size(), original.obstacles.size());
  ASSERT_EQ(loaded.pois.size(), original.pois.size());
  for (size_t i = 0; i < original.pois.size(); ++i) {
    EXPECT_EQ(loaded.pois[i].pos, original.pois[i].pos);
    EXPECT_EQ(loaded.pois[i].initial_value, original.pois[i].initial_value);
  }
  ASSERT_EQ(loaded.stations.size(), original.stations.size());
  ASSERT_EQ(loaded.worker_spawns.size(), original.worker_spawns.size());
  EXPECT_DOUBLE_EQ(loaded.TotalInitialData(), original.TotalInitialData());
}

TEST(MapIoTest, FileRoundTrip) {
  const Map original = GeneratedMap(23);
  const std::string path = ::testing::TempDir() + "/cews_map_io_test.map";
  ASSERT_TRUE(SaveMap(original, path).ok());
  auto loaded_or = LoadMap(path);
  ASSERT_TRUE(loaded_or.ok());
  EXPECT_EQ(loaded_or->pois.size(), original.pois.size());
  std::remove(path.c_str());
}

TEST(MapIoTest, HandWrittenDocumentParses) {
  const std::string text =
      "cews-map 1\n"
      "size 8 8\n"
      "obstacle 3 3 4 4\n"
      "poi 1 1 0.5\n"
      "poi 6 6 0.9\n"
      "station 2 6\n"
      "spawn 1 7\n";
  auto map_or = MapFromString(text);
  ASSERT_TRUE(map_or.ok()) << map_or.status().ToString();
  EXPECT_EQ(map_or->pois.size(), 2u);
  EXPECT_EQ(map_or->obstacles.size(), 1u);
  EXPECT_EQ(map_or->stations.size(), 1u);
  EXPECT_DOUBLE_EQ(map_or->TotalInitialData(), 1.4);
}

TEST(MapIoTest, RejectsBadMagic) {
  EXPECT_FALSE(MapFromString("other-format 1\nsize 8 8\n").ok());
}

TEST(MapIoTest, RejectsWrongVersion) {
  EXPECT_FALSE(MapFromString("cews-map 9\nsize 8 8\npoi 1 1 1\n").ok());
}

TEST(MapIoTest, RejectsMissingSize) {
  EXPECT_FALSE(
      MapFromString("cews-map 1\npoi 1 1 0.5\nspawn 1 1\n").ok());
}

TEST(MapIoTest, RejectsUnknownDirective) {
  const auto r = MapFromString(
      "cews-map 1\nsize 8 8\nteleporter 1 1\npoi 1 1 1\nspawn 2 2\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("teleporter"), std::string::npos);
}

TEST(MapIoTest, RejectsPoiInsideObstacle) {
  EXPECT_FALSE(MapFromString("cews-map 1\n"
                             "size 8 8\n"
                             "obstacle 0.5 0.5 2 2\n"
                             "poi 1 1 0.5\n"
                             "spawn 5 5\n")
                   .ok());
}

TEST(MapIoTest, RejectsOutOfBoundsEntities) {
  EXPECT_FALSE(MapFromString("cews-map 1\nsize 8 8\npoi 9 1 0.5\nspawn 1 1\n")
                   .ok());
  EXPECT_FALSE(MapFromString("cews-map 1\nsize 8 8\npoi 1 1 0.5\nspawn -1 1\n")
                   .ok());
}

TEST(MapIoTest, RejectsNonPositivePoiValue) {
  EXPECT_FALSE(
      MapFromString("cews-map 1\nsize 8 8\npoi 1 1 0\nspawn 1 1\n").ok());
}

TEST(MapIoTest, RejectsInvertedObstacle) {
  EXPECT_FALSE(MapFromString("cews-map 1\n"
                             "size 8 8\n"
                             "obstacle 4 4 3 3\n"
                             "poi 1 1 0.5\n"
                             "spawn 5 5\n")
                   .ok());
}

TEST(MapIoTest, RejectsEmptyMap) {
  EXPECT_FALSE(MapFromString("cews-map 1\nsize 8 8\nspawn 1 1\n").ok());
  EXPECT_FALSE(MapFromString("cews-map 1\nsize 8 8\npoi 1 1 1\n").ok());
}

TEST(MapIoTest, MissingFileIsIOError) {
  const auto r = LoadMap("/nonexistent/cews.map");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace cews::env
