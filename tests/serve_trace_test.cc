// End-to-end tests for request-lifecycle tracing on the serving path: every
// traced request leaves the four phase spans (queue_wait, batch_assemble,
// forward, scatter) correlated by request id and tagged with its shard, the
// phases tile the request's time on the server, and the rolling-window
// latency histogram agrees with the load generator's exact percentiles.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "agents/policy_net.h"
#include "common/check.h"
#include "obs/rolling_histogram.h"
#include "obs/trace.h"
#include "serve/fleet.h"
#include "serve/loadgen.h"

namespace cews::serve {
namespace {

agents::PolicyNetConfig TinyNet() {
  agents::PolicyNetConfig net;
  net.in_channels = 3;
  net.grid = 8;
  net.num_workers = 2;
  net.num_moves = 17;
  net.conv1_channels = 4;
  net.conv2_channels = 4;
  net.conv3_channels = 4;
  net.feature_dim = 32;
  return net;
}

FleetConfig TinyFleet(int shards) {
  FleetConfig config;
  config.net = TinyNet();
  config.num_shards = shards;
  config.threads_per_shard = 1;
  config.max_batch = 4;
  config.max_queue_delay_us = 100;
  config.runtime_threads = 1;
  config.seed = 29;
  return config;
}

std::unique_ptr<Fleet> MakeFleet(const FleetConfig& config) {
  Result<std::unique_ptr<Fleet>> fleet = Fleet::Create(config);
  CEWS_CHECK(fleet.ok()) << fleet.status().ToString();
  return std::move(fleet).value();
}

env::Map TinyMap() {
  env::Map map;
  map.config.size_x = 10.0;
  map.config.size_y = 10.0;
  map.config.hard_corner = false;
  map.pois = {env::Poi{{3.0, 3.0}, 1.0}, env::Poi{{7.0, 6.0}, 1.0}};
  map.stations = {env::ChargingStation{{1.0, 1.0}}};
  map.worker_spawns = {{2.0, 2.0}, {8.0, 8.0}};
  return map;
}

/// One request's phase spans, keyed by phase name.
struct Phase {
  uint64_t start = 0;
  uint64_t end = 0;
  int64_t shard = -1;
};
using RequestPhases = std::map<std::string, Phase>;

std::map<uint64_t, RequestPhases> GroupSpansByRequest(
    const std::vector<obs::CollectedSpan>& spans) {
  std::map<uint64_t, RequestPhases> by_request;
  for (const obs::CollectedSpan& span : spans) {
    if (span.id == 0) continue;  // untagged scope span
    Phase phase;
    phase.start = span.start_ns;
    phase.end = span.start_ns + span.dur_ns;
    phase.shard = span.arg;
    by_request[span.id][span.name] = phase;
  }
  return by_request;
}

/// RAII: no test may leak tracing enabled into the rest of the binary.
struct TraceEnabledScope {
  TraceEnabledScope() {
    obs::ClearTraceForTest();
    obs::SetTraceEnabled(true);
  }
  ~TraceEnabledScope() { obs::SetTraceEnabled(false); }
};

TEST(ServeTraceTest, EveryRequestLeavesFourOrderedPhaseSpans) {
  TraceEnabledScope tracing;
  constexpr int kShards = 2;
  std::unique_ptr<Fleet> fleet = MakeFleet(TinyFleet(kShards));

  LoadSpec spec;
  spec.mode = LoadMode::kClosedLoop;
  spec.clients = 4;
  spec.requests_per_client = 25;
  spec.env.horizon = 30;
  const Result<LoadResult> result = RunLoad(*fleet, TinyMap(), spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().requests, 100u);
  ASSERT_EQ(result.value().shed, 0u);
  ASSERT_EQ(result.value().errors, 0u);
  fleet->Stop();

  const std::map<uint64_t, RequestPhases> by_request =
      GroupSpansByRequest(obs::CollectSpans());
  // Every completed request was traced (ids are assigned at Submit).
  ASSERT_EQ(by_request.size(), 100u);

  const char* const kPhases[] = {"serve.queue_wait", "serve.batch_assemble",
                                 "serve.forward", "serve.scatter"};
  for (const auto& [id, phases] : by_request) {
    ASSERT_EQ(phases.size(), 4u) << "request " << id;
    for (const char* name : kPhases) {
      ASSERT_TRUE(phases.count(name)) << "request " << id << " lacks "
                                      << name;
    }
    // All four phases attribute the request to one real shard.
    const int64_t shard = phases.at("serve.queue_wait").shard;
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, kShards);
    for (const char* name : kPhases) {
      EXPECT_EQ(phases.at(name).shard, shard) << "request " << id;
    }
    // The phases tile the request's server-side lifetime: each phase ends
    // exactly where the next begins (they share the recorded timestamps).
    for (int p = 0; p + 1 < 4; ++p) {
      EXPECT_EQ(phases.at(kPhases[p]).end, phases.at(kPhases[p + 1]).start)
          << "request " << id << " gap after " << kPhases[p];
      EXPECT_LE(phases.at(kPhases[p]).start, phases.at(kPhases[p]).end)
          << "request " << id;
    }
  }
}

TEST(ServeTraceTest, ChromeJsonCarriesRequestAndShardArgs) {
  TraceEnabledScope tracing;
  std::unique_ptr<Fleet> fleet = MakeFleet(TinyFleet(1));

  LoadSpec spec;
  spec.mode = LoadMode::kClosedLoop;
  spec.clients = 2;
  spec.requests_per_client = 5;
  spec.env.horizon = 30;
  ASSERT_TRUE(RunLoad(*fleet, TinyMap(), spec).ok());
  fleet->Stop();

  const std::string json = obs::SpansToChromeJson(obs::CollectSpans());
  EXPECT_NE(json.find("serve.queue_wait"), std::string::npos);
  EXPECT_NE(json.find("\"request\""), std::string::npos);
  EXPECT_NE(json.find("\"shard\""), std::string::npos);
}

TEST(ServeTraceTest, DisabledTracingLeavesNoTaggedSpans) {
  obs::ClearTraceForTest();
  obs::SetTraceEnabled(false);
  std::unique_ptr<Fleet> fleet = MakeFleet(TinyFleet(1));

  LoadSpec spec;
  spec.mode = LoadMode::kClosedLoop;
  spec.clients = 2;
  spec.requests_per_client = 10;
  spec.env.horizon = 30;
  ASSERT_TRUE(RunLoad(*fleet, TinyMap(), spec).ok());
  fleet->Stop();

  for (const obs::CollectedSpan& span : obs::CollectSpans()) {
    EXPECT_EQ(span.id, 0u) << span.name;
  }
}

TEST(ServeTraceTest, RollingWindowP99AgreesWithLoadgen) {
  // The rolling histogram is bucketed (power-of-two buckets, interpolated)
  // while the loadgen computes exact percentiles over every completion, and
  // the two measure slightly different intervals (enqueue->forward-done vs
  // submit->response). They must still agree to within bucket resolution.
  for (obs::RollingHistogram* hist : obs::AllRollingHistograms()) {
    hist->ResetForTest();
  }
  std::unique_ptr<Fleet> fleet = MakeFleet(TinyFleet(2));

  LoadSpec spec;
  spec.mode = LoadMode::kClosedLoop;
  spec.clients = 8;
  spec.requests_per_client = 50;
  spec.env.horizon = 30;
  const Result<LoadResult> result = RunLoad(*fleet, TinyMap(), spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  fleet->Stop();

  obs::RollingHistogram* fleet_latency =
      obs::GetRollingHistogram("serve.fleet.latency");
  const obs::HistogramSnapshot window =
      fleet_latency->Window(obs::kMaxWindowSeconds);
  // Every completion landed in the window (the run is far shorter than the
  // ring) and none were shed.
  EXPECT_EQ(window.count, result.value().requests - result.value().shed -
                              result.value().errors);
  ASSERT_GT(window.count, 0u);

  const double rolling_p99_us =
      static_cast<double>(window.Percentile(0.99)) / 1e3;
  const double exact_p99_us = result.value().latency_p99_us;
  ASSERT_GT(exact_p99_us, 0.0);
  const double ratio = rolling_p99_us / exact_p99_us;
  EXPECT_GT(ratio, 0.3) << "rolling " << rolling_p99_us << "us vs exact "
                        << exact_p99_us << "us";
  EXPECT_LT(ratio, 3.0) << "rolling " << rolling_p99_us << "us vs exact "
                        << exact_p99_us << "us";
}

}  // namespace
}  // namespace cews::serve
