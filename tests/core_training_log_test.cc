#include "core/training_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace cews::core {
namespace {

std::vector<agents::EpisodeRecord> MakeHistory(int n) {
  std::vector<agents::EpisodeRecord> history;
  for (int i = 0; i < n; ++i) {
    agents::EpisodeRecord rec;
    rec.episode = i;
    rec.kappa = 0.1 * i;
    rec.xi = 1.0 - 0.1 * i;
    rec.rho = 0.05 * i;
    rec.extrinsic_reward = i;
    rec.intrinsic_reward = 0.5 * i;
    rec.wall_seconds = 2.0 * i;
    rec.steps_per_sec = 100.0 * i;
    history.push_back(rec);
  }
  return history;
}

TEST(TrainingLogTest, CsvHeaderAndRows) {
  const std::string csv = HistoryToCsv(MakeHistory(3));
  std::istringstream in(csv);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line,
            "episode,kappa,xi,rho,extrinsic_reward,intrinsic_reward,"
            "wall_seconds,steps_per_sec");
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 3);
  EXPECT_NE(csv.find("2,0.2,0.8,0.1,2,1,4,200"), std::string::npos);
}

TEST(TrainingLogTest, EmptyHistoryIsHeaderOnly) {
  const std::string csv = HistoryToCsv({});
  EXPECT_EQ(csv,
            "episode,kappa,xi,rho,extrinsic_reward,intrinsic_reward,"
            "wall_seconds,steps_per_sec\n");
}

TEST(TrainingLogTest, WriteAndReadBack) {
  const std::string path = ::testing::TempDir() + "/cews_history.csv";
  ASSERT_TRUE(WriteHistoryCsv(MakeHistory(5), path).ok());
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header,
            "episode,kappa,xi,rho,extrinsic_reward,intrinsic_reward,"
            "wall_seconds,steps_per_sec");
  std::remove(path.c_str());
  EXPECT_EQ(WriteHistoryCsv({}, "/nonexistent/x.csv").code(),
            StatusCode::kIOError);
}

TEST(TrainingLogTest, MovingAverageRampsAndSlides) {
  const auto history = MakeHistory(6);  // kappa = 0, .1, .2, .3, .4, .5
  const auto avg = MovingAverage(
      history, 3, [](const agents::EpisodeRecord& r) { return r.kappa; });
  ASSERT_EQ(avg.size(), 6u);
  EXPECT_NEAR(avg[0], 0.0, 1e-12);
  EXPECT_NEAR(avg[1], 0.05, 1e-12);        // (0 + .1) / 2
  EXPECT_NEAR(avg[2], 0.1, 1e-12);         // (0 + .1 + .2) / 3
  EXPECT_NEAR(avg[5], 0.4, 1e-12);         // (.3 + .4 + .5) / 3
}

TEST(TrainingLogTest, MovingAverageWindowOneIsIdentity) {
  const auto history = MakeHistory(4);
  const auto avg = MovingAverage(
      history, 1, [](const agents::EpisodeRecord& r) { return r.rho; });
  for (size_t i = 0; i < history.size(); ++i) {
    EXPECT_NEAR(avg[i], history[i].rho, 1e-12);
  }
}

}  // namespace
}  // namespace cews::core
