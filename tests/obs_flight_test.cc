// Tests for the crash flight recorder: ring ordering and eviction, detail
// sanitization, the post-mortem dump document (the same formatter the
// fatal-signal path uses), and the embedded metrics snapshot.
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace cews::obs {
namespace {

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Crude structural check: balanced braces/brackets outside strings. The
/// repo has no JSON parser; this still catches an unterminated string or a
/// dangling comma-brace from the hand-rolled formatter.
bool LooksLikeBalancedJson(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') ++i;  // skip the escaped char
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override { FlightRecorder::Global().ClearForTest(); }
};

TEST_F(FlightRecorderTest, RecordsInOrderWithFields) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Record(FlightEventKind::kServerStart, nullptr, /*a=*/3);
  recorder.Record(FlightEventKind::kPublish, "scenario_a", /*a=*/0,
                  /*b=*/7);
  recorder.Record(FlightEventKind::kShed, nullptr, /*a=*/3, /*b=*/64);

  const std::vector<FlightEvent> events = recorder.Collect();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kServerStart);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[0].a, 3);
  EXPECT_TRUE(events[0].detail.empty());

  EXPECT_EQ(events[1].kind, FlightEventKind::kPublish);
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_EQ(events[1].detail, "scenario_a");
  EXPECT_EQ(events[1].b, 7);

  EXPECT_EQ(events[2].kind, FlightEventKind::kShed);
  EXPECT_GT(events[2].ts_ns, 0u);
  // Timestamps are monotone with the sequence.
  EXPECT_LE(events[0].ts_ns, events[2].ts_ns);
}

TEST_F(FlightRecorderTest, RingKeepsNewestEvents) {
  FlightRecorder& recorder = FlightRecorder::Global();
  const int total = kFlightRingSlots + 300;
  for (int i = 0; i < total; ++i) {
    recorder.Record(FlightEventKind::kNote, nullptr, /*a=*/i);
  }
  const std::vector<FlightEvent> events = recorder.Collect();
  ASSERT_EQ(events.size(), static_cast<size_t>(kFlightRingSlots));
  // Oldest surviving event is the one the ring stopped evicting at.
  EXPECT_EQ(events.front().seq, static_cast<uint64_t>(total) -
                                    kFlightRingSlots + 1);
  EXPECT_EQ(events.back().seq, static_cast<uint64_t>(total));
  // Contiguous and in order.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
  EXPECT_EQ(events.back().a, total - 1);
}

TEST_F(FlightRecorderTest, DetailSanitizedAndTruncated) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Record(FlightEventKind::kNote, "quote\"back\\slash\nnewline");
  const std::string long_detail(100, 'x');
  recorder.Record(FlightEventKind::kNote, long_detail.c_str());

  const std::vector<FlightEvent> events = recorder.Collect();
  ASSERT_EQ(events.size(), 2u);
  // JSON-hostile bytes replaced at record time.
  EXPECT_EQ(events[0].detail, "quote_back_slash_newline");
  // Truncated to the fixed detail payload.
  EXPECT_EQ(events[1].detail,
            std::string(static_cast<size_t>(kFlightDetailBytes), 'x'));
}

TEST_F(FlightRecorderTest, DumpBeforeMetricsPublishedSaysNull) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Record(FlightEventKind::kServerStop, nullptr, /*a=*/1);

  const std::string path =
      ::testing::TempDir() + "/flight_dump_nometrics.json";
  ASSERT_TRUE(recorder.WriteDump(path, "unit_test").ok());
  const std::string dump = ReadWholeFile(path);

  EXPECT_NE(dump.find("\"schema\": \"cews.postmortem.v1\""),
            std::string::npos);
  EXPECT_NE(dump.find("\"reason\": \"unit_test\""), std::string::npos);
  EXPECT_NE(dump.find("\"pid\": "), std::string::npos);
  EXPECT_NE(dump.find("\"kind\": \"server_stop\""), std::string::npos);
  EXPECT_NE(dump.find("\"metrics\": null"), std::string::npos);
  EXPECT_TRUE(LooksLikeBalancedJson(dump)) << dump;
}

TEST_F(FlightRecorderTest, DumpEmbedsPublishedMetricsJson) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Record(FlightEventKind::kPublish, "m", /*a=*/0, /*b=*/1);
  recorder.SetMetricsJson("{\"counters\": {\"x\": 1}}");

  const std::string path =
      ::testing::TempDir() + "/flight_dump_metrics.json";
  ASSERT_TRUE(recorder.WriteDump(path, "unit_test").ok());
  const std::string dump = ReadWholeFile(path);

  EXPECT_NE(dump.find("\"metrics\": {\"counters\": {\"x\": 1}}"),
            std::string::npos);
  EXPECT_TRUE(LooksLikeBalancedJson(dump)) << dump;
}

TEST_F(FlightRecorderTest, OversizeMetricsJsonDegradesToNull) {
  FlightRecorder& recorder = FlightRecorder::Global();
  // First publish a small document, then an oversize one: the recorder
  // must not keep serving the stale small document as if it were current,
  // and must not emit a truncated (unparseable) blob either.
  recorder.SetMetricsJson("{\"small\": true}");
  recorder.SetMetricsJson(std::string(256 * 1024, ' '));

  const std::string path =
      ::testing::TempDir() + "/flight_dump_oversize.json";
  ASSERT_TRUE(recorder.WriteDump(path, "unit_test").ok());
  const std::string dump = ReadWholeFile(path);
  EXPECT_NE(dump.find("\"metrics\": null"), std::string::npos);
  EXPECT_EQ(dump.find("\"small\""), std::string::npos);
  EXPECT_TRUE(LooksLikeBalancedJson(dump)) << dump;
}

TEST_F(FlightRecorderTest, DumpSanitizesHostileReason) {
  const std::string path =
      ::testing::TempDir() + "/flight_dump_reason.json";
  ASSERT_TRUE(FlightRecorder::Global()
                  .WriteDump(path, "bad\"reason\\with\ncontrol")
                  .ok());
  const std::string dump = ReadWholeFile(path);
  EXPECT_NE(dump.find("\"reason\": \"bad_reason_with_control\""),
            std::string::npos);
  EXPECT_TRUE(LooksLikeBalancedJson(dump)) << dump;
}

TEST_F(FlightRecorderTest, ConcurrentRecordersStayParseable) {
  // Hammer the ring from several threads while a reader dumps mid-storm:
  // the per-slot seqlock must keep every surviving event internally
  // consistent (detail matches kind) and the dump structurally valid.
  FlightRecorder& recorder = FlightRecorder::Global();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&go, &recorder, t]() {
      while (!go.load(std::memory_order_acquire)) {}
      for (int i = 0; i < kPerThread; ++i) {
        recorder.Record(FlightEventKind::kNote, "writer_note",
                        /*a=*/t, /*b=*/i);
      }
    });
  }
  go.store(true, std::memory_order_release);

  const std::string path =
      ::testing::TempDir() + "/flight_dump_concurrent.json";
  EXPECT_TRUE(recorder.WriteDump(path, "mid_storm").ok());
  for (std::thread& w : writers) w.join();

  EXPECT_TRUE(LooksLikeBalancedJson(ReadWholeFile(path)));

  // A thread that stalled holding a claimed ticket can overwrite one slot
  // with an already-evicted seq (then skipped by Collect), so allow one
  // missing slot per writer thread.
  const std::vector<FlightEvent> events = recorder.Collect();
  EXPECT_LE(events.size(), static_cast<size_t>(kFlightRingSlots));
  EXPECT_GE(events.size(),
            static_cast<size_t>(kFlightRingSlots - kThreads));
  for (const FlightEvent& event : events) {
    EXPECT_EQ(event.kind, FlightEventKind::kNote);
    EXPECT_EQ(event.detail, "writer_note");
    EXPECT_GE(event.a, 0);
    EXPECT_LT(event.a, kThreads);
  }
}

TEST_F(FlightRecorderTest, ClearForTestEmptiesTheRing) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Record(FlightEventKind::kNote, "x");
  recorder.SetMetricsJson("{}");
  recorder.ClearForTest();
  EXPECT_TRUE(recorder.Collect().empty());

  const std::string path = ::testing::TempDir() + "/flight_dump_clear.json";
  ASSERT_TRUE(recorder.WriteDump(path, "after_clear").ok());
  const std::string dump = ReadWholeFile(path);
  EXPECT_NE(dump.find("\"events\": [\n]"), std::string::npos);
  EXPECT_NE(dump.find("\"metrics\": null"), std::string::npos);
}

}  // namespace
}  // namespace cews::obs
