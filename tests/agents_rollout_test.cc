#include "agents/rollout.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace cews::agents {
namespace {

Transition MakeTransition(float reward, float value, bool done) {
  Transition t;
  t.state = {0.0f};
  t.moves = {0};
  t.charges = {0};
  t.reward = reward;
  t.value = value;
  t.done = done;
  return t;
}

TEST(RolloutBufferTest, AddClearSize) {
  RolloutBuffer buffer;
  EXPECT_TRUE(buffer.empty());
  buffer.Add(MakeTransition(1, 0, false));
  buffer.Add(MakeTransition(2, 0, true));
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_FLOAT_EQ(buffer[1].reward, 2.0f);
  buffer.Clear();
  EXPECT_TRUE(buffer.empty());
}

TEST(RolloutBufferTest, GaeMatchesHandComputation) {
  // T = 3, gamma = 0.9, lambda = 0.8, terminal at the end.
  // rewards = {1, 0, 2}; values = {0.5, 0.4, 0.3}.
  RolloutBuffer buffer;
  buffer.Add(MakeTransition(1.0f, 0.5f, false));
  buffer.Add(MakeTransition(0.0f, 0.4f, false));
  buffer.Add(MakeTransition(2.0f, 0.3f, true));
  buffer.ComputeAdvantages(0.9f, 0.8f, /*last_value=*/0.0f);

  // delta_2 = 2 + 0 - 0.3 = 1.7 ; A_2 = 1.7
  // delta_1 = 0 + 0.9*0.3 - 0.4 = -0.13 ; A_1 = -0.13 + 0.72*1.7 = 1.094
  // delta_0 = 1 + 0.9*0.4 - 0.5 = 0.86 ; A_0 = 0.86 + 0.72*1.094 = 1.64768
  EXPECT_NEAR(buffer.advantages()[2], 1.7f, 1e-5);
  EXPECT_NEAR(buffer.advantages()[1], 1.094f, 1e-5);
  EXPECT_NEAR(buffer.advantages()[0], 1.64768f, 1e-5);
  // returns = advantages + values.
  EXPECT_NEAR(buffer.returns()[0], 1.64768f + 0.5f, 1e-5);
  EXPECT_NEAR(buffer.returns()[2], 2.0f, 1e-5);
}

TEST(RolloutBufferTest, DoneBlocksBootstrapAcrossEpisodes) {
  // An intermediate done must cut the credit flow.
  RolloutBuffer buffer;
  buffer.Add(MakeTransition(0.0f, 0.0f, true));   // episode boundary
  buffer.Add(MakeTransition(10.0f, 0.0f, true));  // next episode
  buffer.ComputeAdvantages(0.99f, 0.95f, 0.0f);
  // First step sees none of the 10.
  EXPECT_NEAR(buffer.advantages()[0], 0.0f, 1e-6);
  EXPECT_NEAR(buffer.advantages()[1], 10.0f, 1e-6);
}

TEST(RolloutBufferTest, TruncationBootstrapsWithLastValue) {
  RolloutBuffer buffer;
  buffer.Add(MakeTransition(0.0f, 0.0f, /*done=*/false));
  buffer.ComputeAdvantages(0.5f, 1.0f, /*last_value=*/4.0f);
  // delta = 0 + 0.5*4 - 0 = 2.
  EXPECT_NEAR(buffer.advantages()[0], 2.0f, 1e-6);
}

TEST(RolloutBufferTest, GammaZeroMakesAdvantageRewardMinusValue) {
  RolloutBuffer buffer;
  buffer.Add(MakeTransition(3.0f, 1.0f, false));
  buffer.Add(MakeTransition(5.0f, 2.0f, true));
  buffer.ComputeAdvantages(0.0f, 0.95f, 0.0f);
  EXPECT_NEAR(buffer.advantages()[0], 2.0f, 1e-6);
  EXPECT_NEAR(buffer.advantages()[1], 3.0f, 1e-6);
}

TEST(RolloutBufferTest, SampleWithoutReplacementIsUniquePrefix) {
  RolloutBuffer buffer;
  for (int i = 0; i < 20; ++i) buffer.Add(MakeTransition(0, 0, false));
  Rng rng(1);
  const std::vector<size_t> idx = buffer.SampleIndices(10, rng);
  EXPECT_EQ(idx.size(), 10u);
  std::set<size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 10u);
  for (size_t i : idx) EXPECT_LT(i, 20u);
}

TEST(RolloutBufferTest, OversizedBatchSamplesWithReplacement) {
  RolloutBuffer buffer;
  for (int i = 0; i < 5; ++i) buffer.Add(MakeTransition(0, 0, false));
  Rng rng(2);
  const std::vector<size_t> idx = buffer.SampleIndices(50, rng);
  EXPECT_EQ(idx.size(), 50u);
  for (size_t i : idx) EXPECT_LT(i, 5u);
}

TEST(RolloutBufferTest, SamplingIsSeedDeterministic) {
  RolloutBuffer buffer;
  for (int i = 0; i < 30; ++i) buffer.Add(MakeTransition(0, 0, false));
  Rng a(7), b(7);
  EXPECT_EQ(buffer.SampleIndices(10, a), buffer.SampleIndices(10, b));
}

Transition MakeRichTransition(int tag) {
  Transition t;
  const float f = static_cast<float>(tag);
  t.state = {f, f + 0.5f, f + 0.75f};
  t.moves = {tag % 17, (tag + 3) % 17};
  t.charges = {tag % 2, (tag + 1) % 2};
  t.log_prob = -0.1f * f;
  t.value = 0.2f * f;
  t.reward = f;
  t.done = tag % 4 == 3;
  return t;
}

TEST(MiniBatchTest, GatherBatchPacksTransitionsContiguously) {
  RolloutBuffer buffer;
  for (int i = 0; i < 6; ++i) buffer.Add(MakeRichTransition(i));
  buffer.ComputeAdvantages(0.9f, 0.95f, 0.0f);

  const std::vector<size_t> idx = {4, 0, 2};
  const MiniBatch mb = buffer.GatherBatch(idx);
  EXPECT_EQ(mb.batch, 3);
  EXPECT_EQ(mb.state_size, 3);
  EXPECT_EQ(mb.num_workers, 2);
  ASSERT_EQ(mb.states.size(), 9u);
  ASSERT_EQ(mb.move_indices.size(), 6u);
  ASSERT_EQ(mb.advantages.size(), 3u);
  for (size_t i = 0; i < idx.size(); ++i) {
    const Transition& t = buffer[idx[i]];
    for (size_t j = 0; j < t.state.size(); ++j) {
      EXPECT_FLOAT_EQ(mb.states[i * 3 + j], t.state[j]);
    }
    for (size_t w = 0; w < 2; ++w) {
      EXPECT_EQ(mb.move_indices[i * 2 + w], t.moves[w]);
      EXPECT_EQ(mb.charge_indices[i * 2 + w], t.charges[w]);
    }
    EXPECT_FLOAT_EQ(mb.log_probs[i], t.log_prob);
    EXPECT_FLOAT_EQ(mb.values[i], t.value);
    EXPECT_FLOAT_EQ(mb.rewards[i], t.reward);
    EXPECT_EQ(mb.dones[i] != 0, t.done);
    EXPECT_FLOAT_EQ(mb.advantages[i], buffer.advantages()[idx[i]]);
    EXPECT_FLOAT_EQ(mb.returns[i], buffer.returns()[idx[i]]);
  }
}

TEST(MiniBatchTest, AdvantagesEmptyBeforeComputeAdvantages) {
  RolloutBuffer buffer;
  buffer.Add(MakeRichTransition(1));
  const MiniBatch mb = buffer.GatherBatch({0});
  EXPECT_TRUE(mb.advantages.empty());
  EXPECT_TRUE(mb.returns.empty());
}

TEST(MiniBatchTest, SampleBatchMatchesSampleIndicesGather) {
  RolloutBuffer buffer;
  for (int i = 0; i < 12; ++i) buffer.Add(MakeRichTransition(i));
  buffer.ComputeAdvantages(0.9f, 0.95f, 0.0f);
  Rng a(9), b(9);
  const MiniBatch sampled = buffer.SampleBatch(5, a);
  const MiniBatch gathered = buffer.GatherBatch(buffer.SampleIndices(5, b));
  EXPECT_EQ(sampled.states, gathered.states);
  EXPECT_EQ(sampled.move_indices, gathered.move_indices);
  EXPECT_EQ(sampled.charge_indices, gathered.charge_indices);
  EXPECT_EQ(sampled.log_probs, gathered.log_probs);
  EXPECT_EQ(sampled.advantages, gathered.advantages);
}

TEST(MiniBatchTest, PackAllPreservesOrder) {
  RolloutBuffer buffer;
  for (int i = 0; i < 4; ++i) buffer.Add(MakeRichTransition(i));
  const MiniBatch mb = buffer.PackAll();
  EXPECT_EQ(mb.batch, 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(mb.rewards[static_cast<size_t>(i)],
                    static_cast<float>(i));
  }
}

TEST(RolloutBufferDeathTest, SampleIndicesOnEmptyBufferDies) {
  RolloutBuffer buffer;
  Rng rng(1);
  EXPECT_DEATH(buffer.SampleIndices(4, rng), "empty RolloutBuffer");
}

TEST(RolloutBufferDeathTest, SampleBatchOnEmptyBufferDies) {
  RolloutBuffer buffer;
  Rng rng(1);
  EXPECT_DEATH(buffer.SampleBatch(4, rng), "empty RolloutBuffer");
}

TEST(RolloutBufferDeathTest, ZeroBatchDies) {
  RolloutBuffer buffer;
  buffer.Add(MakeRichTransition(0));
  Rng rng(1);
  EXPECT_DEATH(buffer.SampleIndices(0, rng), "batch == 0");
}

class GaeSweep : public ::testing::TestWithParam<std::pair<float, float>> {};

TEST_P(GaeSweep, ReturnsEqualAdvantagePlusValue) {
  const auto [gamma, lambda] = GetParam();
  RolloutBuffer buffer;
  Rng rng(3);
  for (int i = 0; i < 25; ++i) {
    buffer.Add(MakeTransition(static_cast<float>(rng.Uniform(-1, 1)),
                              static_cast<float>(rng.Uniform(-1, 1)),
                              i == 24));
  }
  buffer.ComputeAdvantages(gamma, lambda, 0.0f);
  for (size_t i = 0; i < buffer.size(); ++i) {
    EXPECT_NEAR(buffer.returns()[i],
                buffer.advantages()[i] + buffer[i].value, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    GammaLambda, GaeSweep,
    ::testing::Values(std::make_pair(0.0f, 0.0f), std::make_pair(0.9f, 0.0f),
                      std::make_pair(0.99f, 0.95f),
                      std::make_pair(1.0f, 1.0f)));

}  // namespace
}  // namespace cews::agents
