// Tests of the cews::runtime intra-op thread pool: coverage (every index
// exactly once), concurrent callers (the chief-employee pattern), nested
// use from inside pool workers, exception propagation, and the
// CEWS_NUM_THREADS / configured-thread resolution rules.
#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace cews::runtime {
namespace {

TEST(ThreadPoolTest, SerialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(0, 100, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr int64_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(0, kN, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, EmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(7, 8, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 7);
}

TEST(ThreadPoolTest, RespectsGrain) {
  ThreadPool pool(4);
  std::atomic<int64_t> min_chunk{1 << 30};
  pool.ParallelFor(0, 1000, /*grain=*/128,
                   [&](int64_t begin, int64_t end) {
                     const int64_t len = end - begin;
                     int64_t seen = min_chunk.load();
                     while (len < seen &&
                            !min_chunk.compare_exchange_weak(seen, len)) {
                     }
                   });
  // Only the final chunk of the range may be shorter than the grain.
  EXPECT_GE(min_chunk.load(), 1000 % 128);
}

TEST(ThreadPoolTest, StartupShutdownStress) {
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(3);
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(0, 1000, [&](int64_t begin, int64_t end) {
      int64_t local = 0;
      for (int64_t i = begin; i < end; ++i) local += i;
      sum += local;
    });
    EXPECT_EQ(sum.load(), 1000 * 999 / 2);
  }
}

TEST(ThreadPoolTest, PropagatesFirstExceptionAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 1000,
                       [](int64_t begin, int64_t) {
                         if (begin >= 0) {
                           throw std::runtime_error("kernel failure");
                         }
                       }),
      std::runtime_error);
  // The pool must survive a failed region and run subsequent work.
  std::atomic<int64_t> count{0};
  pool.ParallelFor(0, 500, [&](int64_t begin, int64_t end) {
    count += end - begin;
  });
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPoolTest, ConcurrentCallersFromEmployeeThreads) {
  // The chief-employee trainer has E threads issuing ParallelFor at once;
  // all regions must complete without deadlock and cover their ranges.
  ThreadPool pool(4);
  constexpr int kCallers = 8;
  constexpr int64_t kN = 20000;
  std::vector<int64_t> sums(kCallers, 0);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &sums, c]() {
      for (int repeat = 0; repeat < 5; ++repeat) {
        std::atomic<int64_t> sum{0};
        pool.ParallelFor(0, kN, [&](int64_t begin, int64_t end) {
          int64_t local = 0;
          for (int64_t i = begin; i < end; ++i) local += i;
          sum += local;
        });
        sums[static_cast<size_t>(c)] = sum.load();
      }
    });
  }
  for (std::thread& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(sums[static_cast<size_t>(c)], kN * (kN - 1) / 2);
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int64_t> inner_total{0};
  pool.ParallelFor(0, 8, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      // A kernel invoked from inside a pool worker (e.g. a conv calling
      // matmul) must not deadlock waiting for the busy pool.
      pool.ParallelFor(0, 100, [&](int64_t b, int64_t e) {
        inner_total += e - b;
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 8 * 100);
}

TEST(ResolveNumThreadsTest, EnvOverridesConfigured) {
  ::setenv("CEWS_NUM_THREADS", "3", 1);
  EXPECT_EQ(ResolveNumThreads(8), 3);
  EXPECT_EQ(ResolveNumThreads(0), 3);
  ::unsetenv("CEWS_NUM_THREADS");
}

TEST(ResolveNumThreadsTest, ConfiguredWinsWithoutEnv) {
  ::unsetenv("CEWS_NUM_THREADS");
  EXPECT_EQ(ResolveNumThreads(5), 5);
  EXPECT_EQ(ResolveNumThreads(1), 1);
}

TEST(ResolveNumThreadsTest, AutoFallsBackToHardware) {
  ::unsetenv("CEWS_NUM_THREADS");
  const int resolved = ResolveNumThreads(0);
  EXPECT_GE(resolved, 1);
}

TEST(ResolveNumThreadsTest, IgnoresNonPositiveEnv) {
  ::setenv("CEWS_NUM_THREADS", "0", 1);
  EXPECT_EQ(ResolveNumThreads(4), 4);
  ::setenv("CEWS_NUM_THREADS", "garbage", 1);
  EXPECT_EQ(ResolveNumThreads(4), 4);
  ::unsetenv("CEWS_NUM_THREADS");
}

TEST(GlobalPoolTest, ResizeAndQuery) {
  ::unsetenv("CEWS_NUM_THREADS");
  SetGlobalPoolThreads(2);
  EXPECT_EQ(GlobalPoolThreads(), 2);
  std::atomic<int64_t> count{0};
  GlobalPool().ParallelFor(0, 1000, [&](int64_t begin, int64_t end) {
    count += end - begin;
  });
  EXPECT_EQ(count.load(), 1000);
  SetGlobalPoolThreads(1);
  EXPECT_EQ(GlobalPoolThreads(), 1);
}

}  // namespace
}  // namespace cews::runtime
