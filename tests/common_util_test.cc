#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <thread>

#include "common/barrier.h"
#include "common/env_flags.h"
#include "common/math_util.h"
#include "common/stopwatch.h"
#include "common/table.h"

namespace cews {
namespace {

TEST(MathUtilTest, Clamp) {
  EXPECT_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(MathUtilTest, MeanVarianceStdDev) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(Variance(v), 1.25);
  EXPECT_NEAR(StdDev(v), 1.1180339887, 1e-9);
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(Variance({2.0}), 0.0);
}

TEST(MathUtilTest, JainFairnessEqualInputsIsOne) {
  EXPECT_DOUBLE_EQ(JainFairness({3.0, 3.0, 3.0}), 1.0);
}

TEST(MathUtilTest, JainFairnessSingleWinner) {
  // One of n gets everything: J = 1/n.
  EXPECT_NEAR(JainFairness({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(MathUtilTest, JainFairnessScaleInvariant) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b;
  for (double x : a) b.push_back(x * 17.0);
  EXPECT_NEAR(JainFairness(a), JainFairness(b), 1e-12);
}

TEST(MathUtilTest, JainFairnessDegenerate) {
  EXPECT_EQ(JainFairness({}), 0.0);
  EXPECT_EQ(JainFairness({0.0, 0.0}), 0.0);
}

TEST(MathUtilTest, Distance) {
  EXPECT_DOUBLE_EQ(Distance(0, 0, 3, 4), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(1, 1, 2, 2), 2.0);
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(w.ElapsedMillis(), 15.0);
  w.Restart();
  EXPECT_LT(w.ElapsedMillis(), 15.0);
}

TEST(BarrierTest, ReleasesAllThreadsEachCycle) {
  constexpr int kThreads = 4;
  constexpr int kCycles = 25;
  Barrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::atomic<int> violations{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&]() {
      for (int c = 0; c < kCycles; ++c) {
        counter.fetch_add(1);
        barrier.ArriveAndWait();
        // After the barrier every thread of this cycle has incremented.
        if (counter.load() < (c + 1) * kThreads) violations.fetch_add(1);
        barrier.ArriveAndWait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(counter.load(), kThreads * kCycles);
}

TEST(BarrierTest, CompletionRunsExactlyOncePerCycleBeforeRelease) {
  constexpr int kThreads = 3;
  constexpr int kCycles = 10;
  Barrier barrier(kThreads);
  std::atomic<int> completions{0};
  std::atomic<int> violations{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&]() {
      for (int c = 0; c < kCycles; ++c) {
        barrier.ArriveAndWait([&]() { completions.fetch_add(1); });
        // The completion of this cycle must be visible to every thread.
        if (completions.load() < c + 1) violations.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(completions.load(), kCycles);
  EXPECT_EQ(violations.load(), 0);
}

TEST(TableTest, AlignedRendering) {
  Table t({"name", "value"});
  t.AddRow({"kappa", "0.93"});
  t.AddRow({"rho", "0.4"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| kappa | 0.93  |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 2u);
}

TEST(TableTest, CsvEscaping) {
  Table t({"a", "b"});
  t.AddRow({"plain", "with,comma"});
  t.AddRow({"with\"quote", "x"});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("plain,\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\",x"), std::string::npos);
}

TEST(TableTest, WriteCsvRoundTrip) {
  Table t({"x"});
  t.AddRow({"1"});
  const std::string path = ::testing::TempDir() + "/cews_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x");
  std::getline(in, line);
  EXPECT_EQ(line, "1");
  std::remove(path.c_str());
}

TEST(TableTest, FmtPrecision) {
  EXPECT_EQ(Table::Fmt(0.123456, 3), "0.123");
  EXPECT_EQ(Table::Fmt(2.0, 1), "2.0");
}

TEST(EnvFlagsTest, IntFallbacks) {
  unsetenv("CEWS_TEST_FLAG");
  EXPECT_EQ(GetEnvInt("CEWS_TEST_FLAG", 5), 5);
  setenv("CEWS_TEST_FLAG", "12", 1);
  EXPECT_EQ(GetEnvInt("CEWS_TEST_FLAG", 5), 12);
  setenv("CEWS_TEST_FLAG", "junk", 1);
  EXPECT_EQ(GetEnvInt("CEWS_TEST_FLAG", 5), 5);
  unsetenv("CEWS_TEST_FLAG");
}

TEST(EnvFlagsTest, BoolSemantics) {
  unsetenv("CEWS_TEST_BOOL");
  EXPECT_FALSE(GetEnvBool("CEWS_TEST_BOOL"));
  EXPECT_TRUE(GetEnvBool("CEWS_TEST_BOOL", true));
  setenv("CEWS_TEST_BOOL", "0", 1);
  EXPECT_FALSE(GetEnvBool("CEWS_TEST_BOOL", true));
  setenv("CEWS_TEST_BOOL", "1", 1);
  EXPECT_TRUE(GetEnvBool("CEWS_TEST_BOOL"));
  unsetenv("CEWS_TEST_BOOL");
}

}  // namespace
}  // namespace cews
