// Compiled expression graphs (nn/graph.h): replay correctness against the
// tape (bitwise), constant-subgraph memoization, static arena planning,
// steady-state zero workspace churn, gradient checkpointing, and the
// double-backward / forward-only guard rails.
#include "nn/graph.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/ops.h"
#include "nn/workspace.h"
#include "obs/metrics.h"

namespace cews::nn {
namespace {

std::vector<float> RandVec(size_t n, Rng& rng, float lo = -1.0f,
                           float hi = 1.0f) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.Uniform(lo, hi));
  return v;
}

/// A small MLP exercising MatMul, AddBias, LayerNorm, Relu, LogSoftmax,
/// GatherLastDim (shared index handle), Concat and the reductions.
struct MlpParams {
  Tensor w1, b1, gamma, beta, w2;

  static MlpParams Make(Index in, Index hidden, Index classes, uint64_t seed) {
    Rng rng(seed);
    MlpParams p;
    p.w1 = Tensor::FromData({in, hidden},
                            RandVec(static_cast<size_t>(in * hidden), rng),
                            /*requires_grad=*/true);
    p.b1 = Tensor::FromData({hidden}, RandVec(static_cast<size_t>(hidden), rng),
                            true);
    p.gamma = Tensor::FromData(
        {hidden}, RandVec(static_cast<size_t>(hidden), rng, 0.5f, 1.5f), true);
    p.beta = Tensor::FromData({hidden},
                              RandVec(static_cast<size_t>(hidden), rng), true);
    p.w2 = Tensor::FromData(
        {hidden, classes}, RandVec(static_cast<size_t>(hidden * classes), rng),
        true);
    return p;
  }

  std::vector<Tensor> All() const { return {w1, b1, gamma, beta, w2}; }
};

Tensor MlpLoss(const MlpParams& p, const Tensor& x,
               std::shared_ptr<const std::vector<Index>> idx) {
  Tensor h = AddBias(MatMul(x, p.w1), p.b1);
  h = Relu(LayerNormOp(h, p.gamma, p.beta));
  Tensor lp = LogSoftmax(MatMul(h, p.w2));
  Tensor picked = GatherLastDim(lp, std::move(idx));
  // Concat keeps a second consumer of `picked` alive through the planner.
  Tensor both = Concat(Reshape(picked, {picked.numel(), 1}),
                       Reshape(picked, {picked.numel(), 1}));
  return Add(Neg(Mean(picked)), MulScalar(Mean(Square(both)), 0.25f));
}

/// A 3-block conv chain with checkpoint markers after the first two ReLUs —
/// the cnn_trunk shape in miniature.
struct ConvParams {
  Tensor w1, b1, w2, b2, w3, b3;

  static ConvParams Make(uint64_t seed) {
    Rng rng(seed);
    ConvParams p;
    auto t = [&](const Shape& s, float scale) {
      std::vector<float> v =
          RandVec(static_cast<size_t>(NumElements(s)), rng, -scale, scale);
      return Tensor::FromData(s, std::move(v), true);
    };
    p.w1 = t({4, 2, 3, 3}, 0.4f);
    p.b1 = t({4}, 0.2f);
    p.w2 = t({4, 4, 3, 3}, 0.3f);
    p.b2 = t({4}, 0.2f);
    p.w3 = t({2, 4, 3, 3}, 0.3f);
    p.b3 = t({2}, 0.2f);
    return p;
  }

  std::vector<Tensor> All() const { return {w1, b1, w2, b2, w3, b3}; }
};

Tensor ConvLoss(const ConvParams& p, const Tensor& x) {
  Tensor h = Conv2d(x, p.w1, p.b1, 1, 1);
  h = Checkpoint(Relu(h));
  h = Conv2d(h, p.w2, p.b2, 1, 1);
  h = Checkpoint(Relu(h));
  h = Conv2d(h, p.w3, p.b3, 1, 1);
  return Mean(Square(Relu(h)));
}

std::vector<std::vector<float>> Grads(const std::vector<Tensor>& params) {
  std::vector<std::vector<float>> out;
  for (const Tensor& t : params) {
    EXPECT_NE(t.grad(), nullptr);
    if (t.grad() == nullptr) {
      out.emplace_back();
      continue;
    }
    out.emplace_back(t.grad(), t.grad() + t.numel());
  }
  return out;
}

TEST(GraphTest, ReplayMatchesTapeBitwise) {
  const Index kB = 3, kIn = 6, kH = 8, kC = 5;
  Rng data_rng(100);
  // Three batches: the first is recorded, the rest replayed.
  std::vector<std::vector<float>> batches;
  std::vector<std::vector<Index>> indices;
  for (int it = 0; it < 3; ++it) {
    batches.push_back(RandVec(static_cast<size_t>(kB * kIn), data_rng));
    std::vector<Index> idx;
    for (Index i = 0; i < kB; ++i) {
      idx.push_back(static_cast<Index>(data_rng.UniformInt(kC)));
    }
    indices.push_back(std::move(idx));
  }

  // Tape reference: fresh graph per batch, grads accumulate across batches.
  MlpParams tape = MlpParams::Make(kIn, kH, kC, 7);
  std::vector<float> tape_losses;
  for (int it = 0; it < 3; ++it) {
    Tensor x = Tensor::FromData({kB, kIn}, batches[static_cast<size_t>(it)]);
    Tensor loss = MlpLoss(
        tape, x,
        std::make_shared<const std::vector<Index>>(
            indices[static_cast<size_t>(it)]));
    tape_losses.push_back(loss.item());
    loss.Backward();
  }

  // Graph: record batch 0, replay batches 1-2 through rewritten
  // placeholders and the shared index handle.
  MlpParams gp = MlpParams::Make(kIn, kH, kC, 7);
  Tensor x = Tensor::FromData({kB, kIn}, batches[0]);
  auto idx = std::make_shared<std::vector<Index>>(indices[0]);
  graph::BeginRecording();
  graph::MarkPlaceholder(x);
  Tensor loss = MlpLoss(gp, x, idx);
  graph::GraphPtr g = graph::EndRecording(loss);
  ASSERT_TRUE(g != nullptr);
  EXPECT_GT(g->num_steps(), 10);

  for (int it = 0; it < 3; ++it) {
    if (it > 0) {
      const std::vector<float>& b = batches[static_cast<size_t>(it)];
      std::copy(b.begin(), b.end(), x.data());
      *idx = indices[static_cast<size_t>(it)];
      g->Forward();
    }
    EXPECT_EQ(loss.item(), tape_losses[static_cast<size_t>(it)])
        << "replay " << it;
    loss.Backward();
  }

  const auto want = Grads(tape.All());
  const auto got = Grads(gp.All());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i].size(), got[i].size());
    for (size_t j = 0; j < want[i].size(); ++j) {
      EXPECT_EQ(want[i][j], got[i][j]) << "param " << i << " elem " << j;
    }
  }
}

TEST(GraphTest, MemoizesConstantSubgraphs) {
  Rng rng(8);
  Tensor c = Tensor::FromData({4}, RandVec(4, rng));
  Tensor x = Tensor::FromData({4}, RandVec(4, rng));
  Tensor w = Tensor::FromData({4}, RandVec(4, rng), true);
  graph::BeginRecording();
  graph::MarkPlaceholder(x);
  // Softmax(Exp(c)) is pure-constant: both steps must run once and never
  // replay. The x and w paths must not be memoized.
  Tensor konst = Softmax(Exp(c));
  Tensor loss = Sum(Mul(Add(x, konst), w));
  graph::GraphPtr g = graph::EndRecording(loss);
  EXPECT_EQ(g->num_memoized(), 2);

  // Replays still see the constant's value.
  Rng rng2(9);
  std::vector<float> x2 = RandVec(4, rng2);
  std::copy(x2.begin(), x2.end(), x.data());
  g->Forward();

  Tensor x_ref = Tensor::FromData({4}, x2);
  Tensor ref = Sum(Mul(Add(x_ref, Softmax(Exp(c))), w.Clone()));
  EXPECT_EQ(loss.item(), ref.item());
}

TEST(GraphTest, PlansArenaAndReportsMetrics) {
  const uint64_t plan0 = obs::SnapshotMetrics().CounterValue("nn.graph.plan_bytes");
  MlpParams p = MlpParams::Make(6, 32, 5, 3);
  Rng rng(4);
  Tensor x = Tensor::FromData({4, 6}, RandVec(24, rng));
  auto idx = std::make_shared<const std::vector<Index>>(
      std::vector<Index>{0, 1, 2, 3});
  graph::BeginRecording();
  graph::MarkPlaceholder(x);
  Tensor loss = MlpLoss(p, x, idx);
  graph::GraphPtr g = graph::EndRecording(loss);

  EXPECT_GT(g->arena_bytes(), 0);
  // Root output is pinned resident.
  EXPECT_GT(g->persistent_bytes(), 0);
  const obs::MetricsSnapshot snap = obs::SnapshotMetrics();
  EXPECT_GE(snap.CounterValue("nn.graph.plan_bytes") - plan0,
            static_cast<uint64_t>(g->arena_bytes()));
  EXPECT_GE(snap.GaugeValue("nn.graph.peak_arena_bytes"),
            static_cast<double>(g->arena_bytes()));
}

TEST(GraphTest, SteadyStateReplayHasZeroWorkspaceChurn) {
  // The churn guard of the issue: a warmed-up graph training step must not
  // touch the workspace buckets at all — every intermediate and every
  // kernel scratch lives at a planned arena offset.
  ConvParams p = ConvParams::Make(11);
  Rng rng(12);
  const Shape xshape{2, 2, 6, 6};
  Tensor x = Tensor::FromData(
      xshape, RandVec(static_cast<size_t>(NumElements(xshape)), rng));
  graph::BeginRecording();
  graph::MarkPlaceholder(x);
  Tensor loss = ConvLoss(p, x);
  graph::GraphPtr g = graph::EndRecording(loss);

  // Warm-up: first backward allocates interior grad buffers.
  for (int it = 0; it < 2; ++it) {
    std::vector<float> nx =
        RandVec(static_cast<size_t>(NumElements(xshape)), rng);
    std::copy(nx.begin(), nx.end(), x.data());
    g->Forward();
    loss.Backward();
  }

  std::vector<float> nx = RandVec(static_cast<size_t>(NumElements(xshape)), rng);
  const Workspace::Stats before = Workspace::GlobalStats();
  std::copy(nx.begin(), nx.end(), x.data());
  g->Forward();
  loss.Backward();
  const Workspace::Stats after = Workspace::GlobalStats();
  EXPECT_EQ(after.reuse_hits - before.reuse_hits, 0u);
  EXPECT_EQ(after.misses - before.misses, 0u);
}

TEST(GraphTest, CheckpointingIsBitwiseAndShrinksArena) {
  Rng rng(21);
  const Shape xshape{2, 2, 8, 8};
  std::vector<std::vector<float>> batches;
  for (int it = 0; it < 3; ++it) {
    batches.push_back(RandVec(static_cast<size_t>(NumElements(xshape)), rng));
  }

  auto run = [&](bool ckpt) {
    setenv("CEWS_NN_CKPT", ckpt ? "1" : "0", 1);
    ConvParams p = ConvParams::Make(33);
    Tensor x = Tensor::FromData(xshape, batches[0]);
    graph::BeginRecording();
    graph::MarkPlaceholder(x);
    Tensor loss = ConvLoss(p, x);
    graph::GraphPtr g = graph::EndRecording(loss);
    EXPECT_EQ(g->checkpointing(), ckpt);
    if (ckpt) {
      EXPECT_GE(g->num_segments(), 3);
    }
    std::vector<float> losses;
    for (int it = 0; it < 3; ++it) {
      if (it > 0) {
        std::copy(batches[static_cast<size_t>(it)].begin(),
                  batches[static_cast<size_t>(it)].end(), x.data());
        g->Forward();
      }
      losses.push_back(loss.item());
      loss.Backward();
    }
    struct Result {
      std::vector<float> losses;
      std::vector<std::vector<float>> grads;
      Index arena = 0;
    } r;
    r.losses = std::move(losses);
    r.grads = Grads(p.All());
    r.arena = g->arena_bytes();
    return r;
  };

  const uint64_t recompute0 =
      obs::SnapshotMetrics().CounterValue("nn.graph.recompute_ns");
  const auto off = run(false);
  const auto on = run(true);
  unsetenv("CEWS_NN_CKPT");

  ASSERT_EQ(off.losses.size(), on.losses.size());
  for (size_t i = 0; i < off.losses.size(); ++i) {
    EXPECT_EQ(off.losses[i], on.losses[i]);
  }
  ASSERT_EQ(off.grads.size(), on.grads.size());
  for (size_t i = 0; i < off.grads.size(); ++i) {
    ASSERT_EQ(off.grads[i].size(), on.grads[i].size());
    for (size_t j = 0; j < off.grads[i].size(); ++j) {
      EXPECT_EQ(off.grads[i][j], on.grads[i][j])
          << "param " << i << " elem " << j;
    }
  }
  // Dropping the two checkpointed conv-block activation sets must shrink
  // the planned arena.
  EXPECT_LT(on.arena, off.arena);
  // Recompute time was recorded.
  EXPECT_GT(obs::SnapshotMetrics().CounterValue("nn.graph.recompute_ns"),
            recompute0);
}

TEST(GraphDeathTest, DoubleBackwardOnGraphRootDies) {
  MlpParams p = MlpParams::Make(4, 6, 3, 5);
  Rng rng(6);
  Tensor x = Tensor::FromData({2, 4}, RandVec(8, rng));
  auto idx =
      std::make_shared<const std::vector<Index>>(std::vector<Index>{0, 2});
  graph::BeginRecording();
  graph::MarkPlaceholder(x);
  Tensor loss = MlpLoss(p, x, idx);
  graph::GraphPtr g = graph::EndRecording(loss);
  loss.Backward();
  EXPECT_DEATH(loss.Backward(), "double Backward");
  // A fresh Forward re-arms it.
  g->Forward();
  loss.Backward();
}

TEST(GraphDeathTest, ForwardOnlyGraphRefusesBackward) {
  Rng rng(7);
  Tensor w = Tensor::FromData({4, 4}, RandVec(16, rng));
  Tensor x = Tensor::FromData({2, 4}, RandVec(8, rng));
  graph::GraphPtr g;
  Tensor y;
  {
    NoGradGuard no_grad;
    graph::BeginRecording();
    graph::MarkPlaceholder(x);
    y = Softmax(MatMul(x, w));
    graph::Retain(y);
    g = graph::EndRecording(Tensor());
  }

  // Replay matches an eager no-grad forward bitwise.
  std::vector<float> x2 = RandVec(8, rng);
  std::copy(x2.begin(), x2.end(), x.data());
  g->Forward();
  std::vector<float> ref;
  {
    NoGradGuard no_grad;
    ref = Softmax(MatMul(Tensor::FromData({2, 4}, x2), w)).ToVector();
  }
  for (Index i = 0; i < y.numel(); ++i) {
    EXPECT_EQ(y.data()[i], ref[static_cast<size_t>(i)]);
  }
  EXPECT_DEATH(g->Backward(), "forward-only");
}

TEST(GraphTest, AbandonRecordingLeavesTapeTensorsValid) {
  Rng rng(9);
  Tensor w = Tensor::FromData({3}, RandVec(3, rng), true);
  graph::BeginRecording();
  Tensor y = Sum(Square(w));
  graph::AbandonRecording();
  EXPECT_FALSE(graph::Recording());
  y.Backward();
  ASSERT_NE(w.grad(), nullptr);
  for (Index i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(w.grad()[i], 2.0f * w.data()[i]);
  }
}

}  // namespace
}  // namespace cews::nn
