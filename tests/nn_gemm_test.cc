// Packed GEMM kernels and the transient-buffer workspace.
//
// The packed kernels (nn/gemm.h) promise bitwise identity with the retained
// pre-packing reference kernels at any thread count, including ragged
// shapes, degenerate dimensions and transposed A-reads — that contract is
// what lets ops.cc route every hot product through them without perturbing
// the PR-1 determinism guarantees. The workspace promises that steady-state
// kernel calls never touch the allocator; the reuse counters are the proof.
#include "nn/gemm.h"

#include <cstdlib>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/ops.h"
#include "nn/tensor.h"
#include "nn/workspace.h"

namespace cews::nn {
namespace {

/// Uniform floats in (-1, 1); zero_fraction of the entries are exactly 0.0f
/// to exercise the zero-skip the reference kernels have and the packed
/// kernels dropped.
std::vector<float> RandomData(size_t n, uint64_t seed,
                              double zero_fraction = 0.0) {
  Rng rng(seed);
  std::vector<float> data(n);
  for (float& v : data) {
    if (zero_fraction > 0.0 && rng.Uniform(0.0, 1.0) < zero_fraction) {
      v = 0.0f;
      continue;
    }
    v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  return data;
}

void ExpectBitwiseEqual(const std::vector<float>& a,
                        const std::vector<float>& b, const std::string& ctx) {
  ASSERT_EQ(a.size(), b.size()) << ctx;
  if (a.empty()) return;
  ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << ctx;
}

struct GemmCase {
  Index m, n, k;
};

std::string CaseName(const GemmCase& c, int threads) {
  return "m=" + std::to_string(c.m) + " n=" + std::to_string(c.n) +
         " k=" + std::to_string(c.k) + " threads=" + std::to_string(threads);
}

// Shapes chosen to hit every kernel edge: single elements, single rows and
// columns, exact register-tile multiples (kNr=32, kMr=4), off-by-one around
// them, reductions shorter and longer than kKc=128, empty dimensions, and
// the trainer/serve shapes that dominate production calls.
const GemmCase kCases[] = {
    {1, 1, 1},    {1, 32, 1},    {1, 1, 129},  {4, 32, 128}, {3, 5, 7},
    {4, 31, 16},  {5, 33, 129},  {7, 64, 130}, {33, 100, 64}, {64, 48, 96},
    {2, 1, 257},  {31, 32, 33},  {1, 257, 4},  {8, 96, 41},  {40, 36, 100},
    {0, 5, 4},    {4, 0, 5},     {2, 3, 0},
};

TEST(GemmPackedTest, NNBitwiseMatchesReferenceAcrossShapesAndThreads) {
  for (const int threads : {0, 1, 4}) {
    runtime::SetGlobalPoolThreads(threads);
    for (const GemmCase& c : kCases) {
      const auto a =
          RandomData(static_cast<size_t>(c.m * c.k), 11, /*zeros=*/0.25);
      const auto b = RandomData(static_cast<size_t>(c.k * c.n), 13);
      auto want = RandomData(static_cast<size_t>(c.m * c.n), 17);
      auto got = want;
      gemm::reference::GemmNN(c.m, c.n, c.k, a.data(), c.k, 1, b.data(), c.n,
                              want.data(), c.n);
      gemm::GemmNN(c.m, c.n, c.k, a.data(), c.k, 1, b.data(), c.n,
                   got.data(), c.n);
      ExpectBitwiseEqual(want, got, "NN " + CaseName(c, threads));
    }
  }
  runtime::SetGlobalPoolThreads(1);
}

TEST(GemmPackedTest, NNTransposedAReadMatchesReference) {
  // The dB product reads A transposed (rsa=1, csa=lda); same contract.
  for (const int threads : {1, 4}) {
    runtime::SetGlobalPoolThreads(threads);
    for (const GemmCase& c : kCases) {
      // A stored k-major: element (i, l) at a[l * m + i].
      const auto a =
          RandomData(static_cast<size_t>(c.m * c.k), 29, /*zeros=*/0.25);
      const auto b = RandomData(static_cast<size_t>(c.k * c.n), 31);
      auto want = RandomData(static_cast<size_t>(c.m * c.n), 37);
      auto got = want;
      gemm::reference::GemmNN(c.m, c.n, c.k, a.data(), 1, c.m, b.data(), c.n,
                              want.data(), c.n);
      gemm::GemmNN(c.m, c.n, c.k, a.data(), 1, c.m, b.data(), c.n,
                   got.data(), c.n);
      ExpectBitwiseEqual(want, got, "NN^T " + CaseName(c, threads));
    }
  }
  runtime::SetGlobalPoolThreads(1);
}

TEST(GemmPackedTest, NTBitwiseMatchesReferenceAcrossShapesAndThreads) {
  for (const int threads : {0, 1, 4}) {
    runtime::SetGlobalPoolThreads(threads);
    for (const GemmCase& c : kCases) {
      const auto x =
          RandomData(static_cast<size_t>(c.m * c.k), 41, /*zeros=*/0.25);
      const auto y = RandomData(static_cast<size_t>(c.n * c.k), 43);
      auto want = RandomData(static_cast<size_t>(c.m * c.n), 47);
      auto got = want;
      gemm::reference::GemmNT(c.m, c.n, c.k, x.data(), c.k, y.data(), c.k,
                              want.data(), c.n);
      gemm::GemmNT(c.m, c.n, c.k, x.data(), c.k, y.data(), c.k, got.data(),
                   c.n);
      ExpectBitwiseEqual(want, got, "NT " + CaseName(c, threads));
    }
  }
  runtime::SetGlobalPoolThreads(1);
}

TEST(WorkspaceTest, RecycleThenAcquireReusesStorageZeroFilled) {
  Workspace::TrimThisThread();
  const Workspace::Stats s0 = Workspace::GlobalStats();
  std::vector<float> v = Workspace::AcquireVec(1000);  // non-pow2 on purpose
  ASSERT_EQ(v.size(), 1000u);
  for (float& f : v) f = 3.5f;
  Workspace::Recycle(std::move(v));
  std::vector<float> w = Workspace::AcquireVec(1000);
  const Workspace::Stats s1 = Workspace::GlobalStats();
  EXPECT_EQ(s1.misses, s0.misses + 1);
  EXPECT_EQ(s1.reuse_hits, s0.reuse_hits + 1);
  EXPECT_EQ(s1.recycles, s0.recycles + 1);
  ASSERT_EQ(w.size(), 1000u);
  for (float f : w) ASSERT_EQ(f, 0.0f);  // recycled storage comes back zeroed
}

TEST(WorkspaceTest, SmallerRequestReusesLargerChunk) {
  Workspace::TrimThisThread();
  Workspace::Recycle(std::vector<float>(512));
  const Workspace::Stats s0 = Workspace::GlobalStats();
  std::vector<float> v = Workspace::AcquireVec(300);  // same bucket as 512
  const Workspace::Stats s1 = Workspace::GlobalStats();
  EXPECT_EQ(s1.reuse_hits, s0.reuse_hits + 1);
  EXPECT_EQ(v.size(), 300u);
  EXPECT_GE(v.capacity(), 512u);
}

TEST(WorkspaceTest, AcquireZeroIsFreeAndUncounted) {
  const Workspace::Stats s0 = Workspace::GlobalStats();
  std::vector<float> v = Workspace::AcquireVec(0);
  EXPECT_TRUE(v.empty());
  Workspace::Recycle(std::move(v));
  const Workspace::Stats s1 = Workspace::GlobalStats();
  EXPECT_EQ(s1.misses, s0.misses);
  EXPECT_EQ(s1.reuse_hits, s0.reuse_hits);
  EXPECT_EQ(s1.recycles, s0.recycles);
}

TEST(WorkspaceTest, ScopedVecRecyclesOnDestruction) {
  Workspace::TrimThisThread();
  const Workspace::Stats s0 = Workspace::GlobalStats();
  { ScopedVec v(256); EXPECT_EQ(v.size(), 256); }
  { ScopedVec v(256); }  // must be served from the recycled chunk
  const Workspace::Stats s1 = Workspace::GlobalStats();
  EXPECT_EQ(s1.misses, s0.misses + 1);
  EXPECT_EQ(s1.reuse_hits, s0.reuse_hits + 1);
  EXPECT_EQ(s1.recycles, s0.recycles + 2);
}

TEST(WorkspaceTest, TrimReleasesRetainedBytes) {
  Workspace::Recycle(std::vector<float>(4096));
  EXPECT_GT(Workspace::GlobalStats().bytes_in_use, 0);
  Workspace::TrimThisThread();
  // Other threads' arenas may retain bytes, but this thread's 4096-float
  // chunk is gone; a re-acquire must miss.
  const Workspace::Stats s0 = Workspace::GlobalStats();
  std::vector<float> v = Workspace::AcquireVec(4096);
  EXPECT_EQ(Workspace::GlobalStats().misses, s0.misses + 1);
}

/// One synthetic "training step" over both hot kernels: MatMul and Conv2d
/// forward + backward, with fresh output/grad/scratch buffers each time.
void KernelStep(Tensor& a, Tensor& b, Tensor& x, Tensor& w, Tensor& bias) {
  Tensor mm = MatMul(a, b);
  Tensor cv = Conv2d(x, w, bias, /*stride=*/1, /*padding=*/1);
  Tensor loss = Add(Mean(Square(mm)), Mean(Square(cv)));
  a.ZeroGrad();
  b.ZeroGrad();
  x.ZeroGrad();
  w.ZeroGrad();
  bias.ZeroGrad();
  loss.Backward();
}

TEST(WorkspaceChurnTest, KernelStepsAreAllocationFreeInSteadyState) {
  // Serial pool: with workers, which thread first claims a chunk (and thus
  // which arena warms up) is nondeterministic; the zero-miss property is
  // per-arena and is asserted where every acquisition lands on one thread.
  runtime::SetGlobalPoolThreads(1);
  Tensor a = Tensor::FromData({16, 48}, RandomData(16 * 48, 3), true);
  Tensor b = Tensor::FromData({48, 24}, RandomData(48 * 24, 5), true);
  Tensor x = Tensor::FromData({2, 3, 10, 10}, RandomData(600, 7), true);
  Tensor w = Tensor::FromData({4, 3, 3, 3}, RandomData(108, 9), true);
  Tensor bias = Tensor::FromData({4}, RandomData(4, 11), true);
  for (int i = 0; i < 3; ++i) KernelStep(a, b, x, w, bias);  // warm the arena
  const Workspace::Stats s0 = Workspace::GlobalStats();
  for (int i = 0; i < 5; ++i) KernelStep(a, b, x, w, bias);
  const Workspace::Stats s1 = Workspace::GlobalStats();
  EXPECT_EQ(s1.misses, s0.misses) << "steady-state step hit the allocator";
  EXPECT_GT(s1.reuse_hits, s0.reuse_hits);
}

TEST(WorkspaceChurnTest, ConvCacheOffStaysAllocationFreeToo) {
  runtime::SetGlobalPoolThreads(1);
  setenv("CEWS_CONV_CACHE", "0", 1);
  Tensor a = Tensor::FromData({16, 48}, RandomData(16 * 48, 3), true);
  Tensor b = Tensor::FromData({48, 24}, RandomData(48 * 24, 5), true);
  Tensor x = Tensor::FromData({2, 3, 10, 10}, RandomData(600, 7), true);
  Tensor w = Tensor::FromData({4, 3, 3, 3}, RandomData(108, 9), true);
  Tensor bias = Tensor::FromData({4}, RandomData(4, 11), true);
  for (int i = 0; i < 3; ++i) KernelStep(a, b, x, w, bias);
  const Workspace::Stats s0 = Workspace::GlobalStats();
  for (int i = 0; i < 5; ++i) KernelStep(a, b, x, w, bias);
  const Workspace::Stats s1 = Workspace::GlobalStats();
  unsetenv("CEWS_CONV_CACHE");
  EXPECT_EQ(s1.misses, s0.misses);
}

struct ConvRun {
  std::vector<float> out;
  std::vector<float> dx, dw, db;
};

ConvRun RunConvForwardBackward() {
  Tensor x = Tensor::FromData({2, 3, 8, 8}, RandomData(384, 51), true);
  Tensor w = Tensor::FromData({5, 3, 3, 3}, RandomData(135, 53), true);
  Tensor bias = Tensor::FromData({5}, RandomData(5, 57), true);
  Tensor y = Conv2d(x, w, bias, /*stride=*/1, /*padding=*/1);
  Mean(Square(y)).Backward();
  auto vec = [](const float* p, Index n) {
    return std::vector<float>(p, p + n);
  };
  return {vec(y.data(), y.numel()), vec(x.grad(), x.numel()),
          vec(w.grad(), w.numel()), vec(bias.grad(), bias.numel())};
}

TEST(ConvColsCacheTest, DisablingCacheIsBitwiseNeutral) {
  runtime::SetGlobalPoolThreads(1);
  const ConvRun cached = RunConvForwardBackward();
  setenv("CEWS_CONV_CACHE", "0", 1);
  const ConvRun recomputed = RunConvForwardBackward();
  unsetenv("CEWS_CONV_CACHE");
  ExpectBitwiseEqual(cached.out, recomputed.out, "conv out");
  ExpectBitwiseEqual(cached.dx, recomputed.dx, "conv dx");
  ExpectBitwiseEqual(cached.dw, recomputed.dw, "conv dw");
  ExpectBitwiseEqual(cached.db, recomputed.db, "conv db");
}

}  // namespace
}  // namespace cews::nn
