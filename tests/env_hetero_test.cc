// Heterogeneous fleets: per-worker sensing ranges g^w and energy budgets
// b_0^w (Definition 2).
#include <gtest/gtest.h>

#include "env/env.h"

namespace cews::env {
namespace {

Map TwoWorkerMap() {
  Map map;
  map.config.size_x = 10.0;
  map.config.size_y = 10.0;
  map.config.hard_corner = false;
  // One PoI 1.2 away from each worker's spawn.
  map.pois = {Poi{{2.0, 3.2}, 1.0}, Poi{{8.0, 3.2}, 1.0}};
  map.stations = {ChargingStation{{5.0, 9.0}}};
  map.worker_spawns = {{2.0, 2.0}, {8.0, 2.0}};
  return map;
}

TEST(HeteroEnvTest, UniformDefaultsMatchScalars) {
  Env env(EnvConfig{}, TwoWorkerMap());
  EXPECT_DOUBLE_EQ(env.SensingRange(0), 0.8);
  EXPECT_DOUBLE_EQ(env.SensingRange(1), 0.8);
  EXPECT_DOUBLE_EQ(env.InitialEnergy(0), 40.0);
}

TEST(HeteroEnvTest, PerWorkerSensingRangeGovernsCollection) {
  EnvConfig config;
  config.per_worker_sensing_range = {1.5, 0.8};  // only worker 0 reaches
  Env env(config, TwoWorkerMap());
  const StepResult r =
      env.Step({WorkerAction{0, false}, WorkerAction{0, false}});
  EXPECT_GT(r.collected[0], 0.0);   // PoI at distance 1.2 < 1.5
  EXPECT_EQ(r.collected[1], 0.0);   // 1.2 > 0.8
}

TEST(HeteroEnvTest, PerWorkerEnergyBudget) {
  EnvConfig config;
  config.per_worker_initial_energy = {0.15, 40.0};
  Env env(config, TwoWorkerMap());
  EXPECT_DOUBLE_EQ(env.workers()[0].energy, 0.15);
  EXPECT_DOUBLE_EQ(env.workers()[1].energy, 40.0);
  // Worker 0 dies after one long move; worker 1 keeps going.
  env.Step({WorkerAction{9, false}, WorkerAction{9, false}});
  env.Step({WorkerAction{9, false}, WorkerAction{9, false}});
  const Position stuck = env.workers()[0].pos;
  env.Step({WorkerAction{9, false}, WorkerAction{9, false}});
  EXPECT_TRUE(env.workers()[0].pos == stuck);
  EXPECT_GT(env.workers()[1].energy, 39.0);
}

TEST(HeteroEnvTest, SparseChargeMilestoneUsesOwnBudget) {
  // Worker 0 has a tiny budget: one charging slot exceeds 40% of b_0^0.
  Map map = TwoWorkerMap();
  map.worker_spawns = {{5.0, 9.0}, {8.0, 2.0}};  // worker 0 at the station
  EnvConfig config;
  config.per_worker_initial_energy = {5.0, 40.0};
  Env env(config, map);
  // Drain worker 0 slightly so there is charge headroom.
  env.Step({WorkerAction{9, false}, WorkerAction{0, false}});
  env.Step({WorkerAction{13, false}, WorkerAction{0, false}});
  const StepResult r =
      env.Step({WorkerAction{0, true}, WorkerAction{0, false}});
  ASSERT_TRUE(r.charging[0]);
  // sigma = min(10, cap - b) and b0 = 5 -> ratio >= 40% immediately.
  EXPECT_NEAR(r.per_worker_sparse[0], 1.0, 1e-9);
}

TEST(HeteroEnvTest, PotentialCollectionRangeOverload) {
  Env env(EnvConfig{}, TwoWorkerMap());
  const Position p{2.0, 2.0};
  EXPECT_EQ(env.PotentialCollection(p, 0.8), 0.0);
  EXPECT_GT(env.PotentialCollection(p, 1.5), 0.0);
  EXPECT_DOUBLE_EQ(env.PotentialCollection(p),
                   env.PotentialCollection(p, 0.8));
}

TEST(HeteroEnvDeathTest, WrongVectorSizeRejected) {
  EnvConfig config;
  config.per_worker_sensing_range = {0.8};  // two workers on the map
  EXPECT_DEATH({ Env env(config, TwoWorkerMap()); }, "CHECK failed");
}

TEST(HeteroEnvDeathTest, BudgetAboveCapacityRejected) {
  EnvConfig config;
  config.per_worker_initial_energy = {50.0, 40.0};  // capacity is 40
  EXPECT_DEATH({ Env env(config, TwoWorkerMap()); }, "CHECK failed");
}

}  // namespace
}  // namespace cews::env
