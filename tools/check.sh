#!/usr/bin/env bash
# Repo health check: tier-1 build + tests, then a ThreadSanitizer build of
# the concurrency-sensitive targets (thread pool, parallel kernels, both
# trainers). Run from anywhere; builds land in build/ and build-tsan/.
#
# Usage: tools/check.sh [--skip-tsan]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
skip_tsan=0
[[ "${1:-}" == "--skip-tsan" ]] && skip_tsan=1

echo "== tier-1: configure + build =="
cmake -B "$repo/build" -S "$repo" >/dev/null
cmake --build "$repo/build" -j "$jobs"

echo "== tier-1: ctest =="
(cd "$repo/build" && ctest --output-on-failure -j "$jobs")

if [[ "$skip_tsan" == 1 ]]; then
  echo "== skipping TSan pass (--skip-tsan) =="
  exit 0
fi

echo "== tsan: configure + build (tests only) =="
cmake -B "$repo/build-tsan" -S "$repo" \
  -DCEWS_SANITIZE=thread \
  -DCEWS_BUILD_BENCHMARKS=OFF \
  -DCEWS_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$repo/build-tsan" -j "$jobs" --target \
  common_thread_pool_test nn_parallel_determinism_test \
  agents_trainer_test agents_async_test

echo "== tsan: concurrency tests =="
(cd "$repo/build-tsan" && ctest --output-on-failure -j "$jobs" -R \
  "common_thread_pool_test|nn_parallel_determinism_test|agents_trainer_test|agents_async_test")

echo "== all checks passed =="
