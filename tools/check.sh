#!/usr/bin/env bash
# Repo health check: tier-1 build + tests, then a ThreadSanitizer build of
# the concurrency-sensitive targets (thread pool, parallel kernels, the
# expression-graph engine, both trainers, the serve and dist subsystems)
# and an ASan+UBSan build of the vectorized acting path (VecEnv, trainer
# core, both trainers) plus the graph, serve, dist and
# checkpoint-serialization tests, ending with the gradient-checkpointing
# bitwise guard and a multi-process train-dist smoke that must drive the
# publish gate through a reject-then-accept sequence into a live fleet,
# whose trained snapshot then backs an int8 serve smoke (the startup
# agreement gate must clear 99%). Both sanitizer passes include the int8
# quantization/kernel tests (nn_quant_test, serve_quant_test), and an int8
# kernel sweep guard requires the quantized serve shapes to stay at or
# above packed-fp32 parity.
# Run from anywhere; builds land in build/, build-tsan/, and build-asan/.
#
# Usage: tools/check.sh [--skip-tsan] [--skip-asan]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
skip_tsan=0
skip_asan=0
for arg in "$@"; do
  [[ "$arg" == "--skip-tsan" ]] && skip_tsan=1
  [[ "$arg" == "--skip-asan" ]] && skip_asan=1
done

echo "== tier-1: configure + build =="
cmake -B "$repo/build" -S "$repo" >/dev/null
cmake --build "$repo/build" -j "$jobs"

echo "== tier-1: ctest =="
(cd "$repo/build" && ctest --output-on-failure -j "$jobs")

echo "== obs: tracing overhead guard =="
# Budget (see DESIGN.md "Observability"): enabling tracing may add at most
# ~5% to the matmul micro-kernel; the always-on metrics path (what you pay
# with tracing *disabled*) is strictly cheaper than that — a branch plus a
# pair of relaxed counter bumps per kernel call. Machine noise on shared CI
# easily exceeds a few percent, so an overshoot is logged, never fatal.
if [[ -x "$repo/build/bench/bench_micro_nn" ]]; then
  bench_filter='BM_MatMul/n:128/threads:1$'
  run_bench() {  # $1 = CEWS_OBS_TRACE value ("" to leave unset)
    local out
    out="$(CEWS_OBS_TRACE="${1:-}" "$repo/build/bench/bench_micro_nn" \
      --benchmark_filter="$bench_filter" \
      --benchmark_min_time=0.1 2>/dev/null |
      awk '/BM_MatMul/ {print $2; exit}')"
    echo "${out:-0}"
  }
  off_ns="$(run_bench "")"
  on_ns="$(run_bench 1)"
  if [[ "$off_ns" != 0 && "$on_ns" != 0 ]]; then
    overhead="$(awk -v a="$off_ns" -v b="$on_ns" \
      'BEGIN {printf "%.1f", (b - a) / a * 100.0}')"
    echo "matmul n=128: tracing off ${off_ns} ns, on ${on_ns} ns" \
         "(tracing adds ${overhead}%; budget 5%)"
    if awk -v o="$overhead" 'BEGIN {exit !(o > 5.0)}'; then
      echo "WARNING: tracing overhead ${overhead}% exceeds the 5% budget" \
           "(informational only — rerun on an idle machine before acting)"
    fi
  else
    echo "could not parse bench output; skipping overhead comparison"
  fi
else
  echo "bench_micro_nn not built; skipping overhead guard"
fi

echo "== nn: int8 kernel sweep guard =="
# The quantized serve path's reason to exist is beating packed fp32 on the
# serve-hot shapes. Run the kernel sweep (CEWS_BENCH_KERNELS=1) and require
# the int8 rows to be present and faster than fp32 on every serve shape.
# Machine noise can flatter or punish a single run, so the hard floor here
# is 1.0x (a regression below parity is a real bug, not noise); the
# headline >=1.5x numbers live in BENCH_kernels.json.
if [[ -x "$repo/build/bench/bench_micro_nn" ]]; then
  kernels_out="$(cd "$repo/build" && CEWS_BENCH_KERNELS=1 \
    ./bench/bench_micro_nn --benchmark_filter=NONE 2>/dev/null |
    grep -E 'serve_(fc_fwd|conv2_img).*(fc|conv) +m=' || true)"
  echo "$kernels_out"
  int8_rows="$(echo "$kernels_out" | grep -c 'int8' || true)"
  if [[ "$int8_rows" -lt 4 ]]; then
    echo "FAIL: expected >=4 int8 kernel rows in the sweep (got ${int8_rows})"
    exit 1
  fi
  if echo "$kernels_out" | awk '{for (i=1;i<=NF;i++) if ($i == "speedup")
      {s=$(i+1); sub(/x$/, "", s); if (s + 0 < 1.0) exit 1}}'; then
    echo "int8 rows all at or above fp32 parity"
  else
    echo "FAIL: an int8 serve-shape row regressed below packed-fp32 parity"
    exit 1
  fi
else
  echo "bench_micro_nn not built; skipping int8 kernel sweep guard"
fi

echo "== serve: request-tracing overhead guard =="
# The disabled-tracing serve path pays one relaxed atomic load per request
# (budget: <=1% on p99); with --trace-out each request additionally records
# four tagged spans. Open-loop p99 at this scale is dominated by batching
# delay and scheduler noise, so like the matmul guard this is informational:
# a big delta means "rerun on an idle machine", not "fail the check".
if [[ -x "$repo/build/tools/cews" ]]; then
  serve_p99() {  # $1 = extra args
    # shellcheck disable=SC2086
    "$repo/build/tools/cews" serve --scenario open-field --mode open \
      --arrival-rps 2000 --duration 1 --clients 1000 --shards 2 \
      --seed 7 $1 2>/dev/null |
      awk -F'|' '/^\| [0-9]/ {gsub(/ /, "", $12); print $12; exit}'
  }
  off_p99="$(serve_p99 "")"
  on_p99="$(serve_p99 "--trace-out $repo/build/check_serve_trace.json")"
  if [[ -n "$off_p99" && -n "$on_p99" ]]; then
    delta="$(awk -v a="$off_p99" -v b="$on_p99" \
      'BEGIN {printf "%.1f", (b - a) / a * 100.0}')"
    echo "open-loop p99: tracing off ${off_p99} us, on ${on_p99} us" \
         "(tracing adds ${delta}%)"
    if awk -v d="$delta" 'BEGIN {exit !(d > 10.0)}'; then
      echo "WARNING: request tracing moved open-loop p99 by ${delta}%" \
           "(informational only — rerun on an idle machine before acting)"
    fi
  else
    echo "could not parse serve output; skipping serve overhead comparison"
  fi
  rm -f "$repo/build/check_serve_trace.json"
else
  echo "cews CLI not built; skipping serve overhead guard"
fi

if [[ "$skip_tsan" == 1 ]]; then
  echo "== skipping TSan pass (--skip-tsan) =="
else
  echo "== tsan: configure + build (tests only) =="
  cmake -B "$repo/build-tsan" -S "$repo" \
    -DCEWS_SANITIZE=thread \
    -DCEWS_BUILD_BENCHMARKS=OFF \
    -DCEWS_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build "$repo/build-tsan" -j "$jobs" --target \
    common_thread_pool_test nn_parallel_determinism_test nn_gemm_test \
    nn_quant_test nn_graph_test agents_graph_equivalence_test \
    agents_trainer_test agents_async_test \
    obs_metrics_test obs_trace_test obs_integration_test \
    obs_rolling_test obs_flight_test \
    serve_batcher_test serve_server_test serve_fleet_test serve_trace_test \
    serve_quant_test dist_transport_test dist_trainer_equivalence_test

  echo "== tsan: concurrency tests =="
  (cd "$repo/build-tsan" && ctest --output-on-failure -j "$jobs" -R \
    "common_thread_pool_test|nn_parallel_determinism_test|nn_gemm_test|nn_quant_test|nn_graph_test|agents_graph_equivalence_test|agents_trainer_test|agents_async_test|obs_metrics_test|obs_trace_test|obs_integration_test|obs_rolling_test|obs_flight_test|serve_batcher_test|serve_server_test|serve_fleet_test|serve_trace_test|serve_quant_test|dist_transport_test|dist_trainer_equivalence_test")
fi

if [[ "$skip_asan" == 1 ]]; then
  echo "== skipping ASan+UBSan pass (--skip-asan) =="
else
  echo "== asan+ubsan: configure + build (tests only) =="
  cmake -B "$repo/build-asan" -S "$repo" \
    -DCEWS_SANITIZE=address,undefined \
    -DCEWS_BUILD_BENCHMARKS=OFF \
    -DCEWS_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build "$repo/build-asan" -j "$jobs" --target \
    env_vec_env_test agents_trainer_core_test agents_vec_equivalence_test \
    agents_trainer_test agents_async_test nn_gemm_test nn_quant_test \
    nn_graph_test agents_graph_equivalence_test \
    nn_serialize_test obs_rolling_test obs_flight_test \
    serve_batcher_test serve_server_test serve_fleet_test serve_trace_test \
    serve_quant_test dist_transport_test dist_trainer_equivalence_test

  echo "== asan+ubsan: vec acting + serve + dist path tests =="
  (cd "$repo/build-asan" && ctest --output-on-failure -j "$jobs" -R \
    "env_vec_env_test|agents_trainer_core_test|agents_vec_equivalence_test|agents_trainer_test|agents_async_test|nn_gemm_test|nn_quant_test|nn_graph_test|agents_graph_equivalence_test|nn_serialize_test|obs_rolling_test|obs_flight_test|serve_batcher_test|serve_server_test|serve_fleet_test|serve_trace_test|serve_quant_test|dist_transport_test|dist_trainer_equivalence_test")

  echo "== graph: checkpoint bitwise guard =="
  # Gradient checkpointing must never change training numerics: replaying
  # the recompute-from-boundary plan has to reproduce the keep-everything
  # plan bit for bit (same creation-order backward). Runs the dedicated
  # equivalence filter in the plain build so a planner regression fails the
  # check even when both sanitizer passes are skipped.
  "$repo/build/tests/agents_graph_equivalence_test" \
    --gtest_filter='*CheckpointBitwise*'
fi

echo "== dist: multi-process train-dist + publish-gate smoke =="
# End-to-end exercise of the distributed trainer: a chief forks two
# employee processes, trains 8 iterations over a unix socket, and the
# deploy gate (every 2 iterations) evaluates each candidate before
# publishing into a live fleet. Seed 8 is chosen because its kappa curve
# dips and recovers, so the gate must REJECT at least one snapshot and
# later ACCEPT again — proving both gate branches and the re-publish path.
# The whole run is bitwise deterministic, so this sequence is stable.
if [[ -x "$repo/build/tools/cews" ]]; then
  smoke_out="$("$repo/build/tools/cews" train-dist --spawn 2 \
    --iterations 8 --publish-every 2 --horizon 20 --pois 30 --batch 32 \
    --envs-per-employee 1 --seed 8 \
    --snapshot "$repo/build/check_dist_snapshot.bin" \
    --address "unix:/tmp/cews_check_dist_$$.sock" 2>&1)" || {
    echo "$smoke_out"
    echo "FAIL: train-dist smoke run exited non-zero"
    exit 1
  }
  gate_seq="$(echo "$smoke_out" | grep -o 'deploy gate [A-Z]*' |
    awk '{print $3}' | paste -sd' ' -)"
  echo "publish gate sequence: ${gate_seq}"
  if ! echo "$gate_seq" | grep -q 'REJECTED.*ACCEPTED'; then
    echo "$smoke_out"
    echo "FAIL: expected a REJECTED publish followed by a later ACCEPTED" \
         "(got: ${gate_seq})"
    exit 1
  fi
  fleet_line="$(echo "$smoke_out" | grep 'fleet check:')"
  echo "$fleet_line"
  if ! echo "$fleet_line" | grep -q 'errors=0'; then
    echo "$smoke_out"
    echo "FAIL: fleet served errors after publish (${fleet_line})"
    exit 1
  fi
  echo "== serve: int8 agreement smoke (trained checkpoint) =="
  # Serve the snapshot the dist smoke just trained at int8: the startup
  # gate replays a deterministic rollout and refuses to serve below 99%
  # fp32-argmax agreement, so a quantization regression fails the check
  # with a real (trained, non-random) policy.
  agree_out="$("$repo/build/tools/cews" serve --scenario earthquake-site \
    --ckpt "$repo/build/check_dist_snapshot.bin" --precision int8 \
    --clients 4 --requests 8 2>&1)" || {
    echo "$agree_out"
    echo "FAIL: int8 serve smoke exited non-zero (agreement gate?)"
    exit 1
  }
  echo "$agree_out" | grep 'int8 agreement:' || {
    echo "$agree_out"
    echo "FAIL: int8 serve smoke printed no agreement line"
    exit 1
  }
  rm -f "$repo/build/check_dist_snapshot.bin"
else
  echo "FAIL: cews CLI not built; dist smoke cannot run"
  exit 1
fi

echo "== all checks passed =="
