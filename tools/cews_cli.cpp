// cews — command-line front end for the library.
//
//   cews scenarios                                  list built-in scenarios
//   cews map --scenario earthquake-site --pois 200 --seed 42
//            [--out site.map] [--svg site.svg]      generate & render a map
//   cews show --map site.map                        render a saved map
//   cews train --scenario X | --map FILE
//              [--algorithm drl-cews|dppo] [--episodes N] [--employees N]
//              [--threads N] [--envs-per-employee N] [--seed N]
//              [--ckpt policy.bin]
//              [--history history.csv]
//              [--metrics-out metrics.json] [--trace-out trace.json]
//              [--heartbeat SECONDS]
//              train a policy and export artifacts
//              (--threads sizes the intra-op NN kernel pool; 0 = all cores,
//               the CEWS_NUM_THREADS env var overrides;
//               --envs-per-employee drives N env instances per employee
//               through the vectorized acting path — one batched policy
//               Forward per lockstep step; 1 = the legacy single-env loop;
//               --metrics-out dumps the obs counters/histograms as JSON,
//               --trace-out enables span tracing and writes a Chrome
//               trace_event file loadable in Perfetto / chrome://tracing,
//               --heartbeat logs a periodic one-line training pulse)
//   cews train-dist --scenario X | --map FILE
//              [--role chief|employee] [--spawn N] [--rank R]
//              [--address unix:/path | tcp:ip:port]
//              [--iterations N] [--employees N] [--envs-per-employee N]
//              [--batch N] [--epochs K] [--threads N] [--seed N]
//              [--algorithm drl-cews|dppo] [--horizon N]
//              [--publish-every K] [--min-delta D] [--eval-envs N]
//              [--shards N] [--snapshot FILE] [--init-ckpt FILE]
//              [--ckpt FILE] [--history FILE] [--metrics-out FILE]
//              [--heartbeat SECONDS]
//              multi-process chief/employee training (src/dist): the chief
//              broadcasts parameters each iteration, merges employee
//              rollouts in rank order, trains, and every --publish-every
//              iterations runs the eval gate and publishes accepted
//              snapshots into a live in-process serving fleet
//              (--spawn N forks N employee processes and runs the chief —
//               the single-host mode; --role employee --rank R dials
//               --address and serves as one rollout actor, for manually
//               placed multi-process runs;
//               --iterations are distributed training iterations (the
//               trainer's episodes); --employees is the world size (set
//               automatically by --spawn);
//               --init-ckpt warm-starts the chief's policy — loaded in
//               strict mode, a checkpoint without a CRC footer is refused
//               since its parameters would fan out to every employee;
//               --publish-every <= 0 disables the publish loop;
//               --snapshot is the crash-safe file accepted candidates are
//               saved to and published from; --ckpt saves the final policy)
//   cews eval --map FILE --ckpt policy.bin
//             [--episodes N] [--svg traj.svg]       evaluate a checkpoint
//   cews serve --map FILE | --scenario X [--ckpt policy.bin]
//              [--shards N] [--max-queue N] [--mode closed|open]
//              [--precision fp32|int8] [--agreement-min R]
//              [--clients N] [--requests N]
//              [--arrival-rps R] [--duration S] [--submit-threads N]
//              [--max-batch N] [--delay-us N]
//              [--serve-threads N] [--threads N] [--seed N]
//              [--metrics-out metrics.json] [--trace-out trace.json]
//              [--heartbeat SECONDS] [--slo SPEC]
//              [--metrics-jsonl ticks.jsonl] [--prom-out metrics.prom]
//              [--export-period SECONDS] [--postmortem-dir DIR]
//              start an in-process serving fleet (N consistent-hash-routed
//              micro-batching shards), drive it with a synthetic load, and
//              print a latency/throughput table
//              (--mode closed: N clients each issuing N completion-gated
//               requests against their own env — throughput/batching focus;
//               --mode open: Poisson arrivals at --arrival-rps for
//               --duration seconds from a simulated population of --clients
//               ids — honest tail latency, including p999 and shed counts;
//               --ckpt hot-loads a checkpoint trained on the same map and
//               options — without it a randomly initialized policy serves;
//               --precision int8 serves the publish-time quantized bundle
//               (per-output-channel int8 weights on the packed int8 GEMM
//               path) instead of fp32; before taking load the CLI replays
//               a deterministic rollout and requires quantized-vs-fp32
//               argmax agreement >= --agreement-min (default 0.99),
//               exiting non-zero below it;
//               --shards sizes the fleet, --max-queue bounds each shard's
//               queue (overload is shed with ResourceExhausted, 0 =
//               unbounded), --max-batch / --delay-us tune the per-shard
//               micro-batcher, --serve-threads sets inference workers per
//               shard, --threads the intra-op NN kernel pool;
//               --trace-out also tags each request's lifecycle spans
//               (queue_wait/batch_assemble/forward/scatter) with its
//               request id and shard;
//               --heartbeat logs the periodic pulse incl. serve rates;
//               --slo evaluates rolling-window targets each export tick,
//               e.g. "p99<5000,shed<0.01" or "p50<200@60" (latency in us
//               over a @window in seconds, shed as a ratio), and prints a
//               status table after the run;
//               --metrics-jsonl appends one windowed metrics snapshot per
//               export tick, --prom-out rewrites a Prometheus text file,
//               --export-period tunes the tick (default 1s);
//               --postmortem-dir installs fatal-signal handlers that dump
//               a flight-recorder post-mortem (recent publishes, swaps,
//               sheds, SLO breaches + last metrics) to
//               DIR/postmortem.<pid>.json — also written on clean exit)
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "agents/eval.h"
#include "agents/policy_net.h"
#include "agents/quant_policy.h"
#include "core/algorithms.h"
#include "core/drl_cews.h"
#include "core/scenarios.h"
#include "core/training_log.h"
#include "core/visualize.h"
#include "common/table.h"
#include "dist/deploy_loop.h"
#include "dist/trainer.h"
#include "nn/params.h"
#include "nn/serialize.h"
#include "env/env.h"
#include "env/map_io.h"
#include "env/state_encoder.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/metrics_exporter.h"
#include "obs/slo.h"
#include "obs/stats_reporter.h"
#include "obs/trace.h"
#include "serve/fleet.h"
#include "serve/loadgen.h"

namespace {

using namespace cews;

/// Flat --flag value parser: everything after the subcommand must be
/// "--key value" pairs.
class Args {
 public:
  static Result<Args> Parse(int argc, char** argv, int start) {
    Args args;
    for (int i = start; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        return Status::InvalidArgument("expected --flag, got '" + key + "'");
      }
      key = key.substr(2);
      if (i + 1 >= argc) {
        return Status::InvalidArgument("--" + key + " is missing its value");
      }
      args.values_[key] = argv[++i];
    }
    return args;
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  long GetInt(const std::string& key, long fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtol(it->second.c_str(),
                                                        nullptr, 10);
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Result<env::Map> ResolveMap(const Args& args) {
  if (args.Has("map")) return env::LoadMap(args.Get("map", ""));
  CEWS_ASSIGN_OR_RETURN(
      const core::Scenario scenario,
      core::ScenarioFromName(args.Get("scenario", "earthquake-site")));
  return core::MakeScenario(
      scenario, static_cast<int>(args.GetInt("pois", 150)),
      static_cast<int>(args.GetInt("workers", 2)),
      static_cast<int>(args.GetInt("stations", 4)),
      static_cast<uint64_t>(args.GetInt("seed", 42)));
}

int CmdScenarios() {
  for (const core::Scenario scenario : core::AllScenarios()) {
    std::printf("%s\n", core::ScenarioName(scenario).c_str());
  }
  return 0;
}

int CmdMap(const Args& args) {
  auto map_or = ResolveMap(args);
  if (!map_or.ok()) return Fail(map_or.status());
  const env::Map& map = *map_or;
  std::printf("%s", core::AsciiMap(map, 64).c_str());
  std::printf(
      "(%zu PoIs '*', %zu stations 'C', %zu spawns 'W', %zu obstacles '#')\n",
      map.pois.size(), map.stations.size(), map.worker_spawns.size(),
      map.obstacles.size());
  if (args.Has("out")) {
    const Status status = env::SaveMap(map, args.Get("out", ""));
    if (!status.ok()) return Fail(status);
    std::printf("saved -> %s\n", args.Get("out", "").c_str());
  }
  if (args.Has("svg")) {
    const Status status =
        core::WriteTrajectorySvg(map, {}, args.Get("svg", ""));
    if (!status.ok()) return Fail(status);
    std::printf("svg -> %s\n", args.Get("svg", "").c_str());
  }
  return 0;
}

core::BenchmarkOptions OptionsFrom(const Args& args) {
  core::BenchmarkOptions options;
  options.episodes = static_cast<int>(args.GetInt("episodes", 200));
  options.num_employees = static_cast<int>(args.GetInt("employees", 2));
  options.batch_size = static_cast<int>(args.GetInt("batch", 64));
  options.runtime_threads = static_cast<int>(args.GetInt("threads", 1));
  options.envs_per_employee =
      static_cast<int>(args.GetInt("envs-per-employee", 1));
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  options.grid = 12;
  options.net.conv1_channels = 4;
  options.net.conv2_channels = 6;
  options.net.conv3_channels = 6;
  options.net.feature_dim = 64;
  return options;
}

int CmdTrain(const Args& args) {
  auto map_or = ResolveMap(args);
  if (!map_or.ok()) return Fail(map_or.status());
  const std::string algorithm = args.Get("algorithm", "drl-cews");
  const core::Algorithm which = algorithm == "dppo" ? core::Algorithm::kDppo
                                                    : core::Algorithm::kDrlCews;
  if (algorithm != "dppo" && algorithm != "drl-cews") {
    return Fail(Status::InvalidArgument(
        "train supports drl-cews or dppo, got '" + algorithm + "'"));
  }
  env::EnvConfig env_config;
  env_config.horizon = static_cast<int>(args.GetInt("horizon", 60));
  const core::BenchmarkOptions options = OptionsFrom(args);
  agents::TrainerConfig trainer_config =
      core::MakeTrainerConfig(which, env_config, options);
  trainer_config.heartbeat_seconds = args.GetDouble("heartbeat", 0.0);
  if (args.Has("trace-out")) obs::SetTraceEnabled(true);
  auto system_or = core::DrlCews::Create(trainer_config, *map_or);
  if (!system_or.ok()) return Fail(system_or.status());
  core::DrlCews& system = **system_or;
  std::printf("training %s: %d episodes x %d employees...\n",
              algorithm.c_str(), options.episodes, options.num_employees);
  const agents::TrainResult result = system.Train();
  std::printf("done in %.1fs\n", result.seconds);
  const agents::EvalResult eval = system.Evaluate(3);
  std::printf("eval: kappa=%.3f xi=%.3f rho=%.3f\n", eval.kappa, eval.xi,
              eval.rho);
  if (args.Has("ckpt")) {
    const Status status = system.SaveCheckpoint(args.Get("ckpt", ""));
    if (!status.ok()) return Fail(status);
    std::printf("checkpoint -> %s\n", args.Get("ckpt", "").c_str());
  }
  if (args.Has("history")) {
    const Status status =
        core::WriteHistoryCsv(result.history, args.Get("history", ""));
    if (!status.ok()) return Fail(status);
    std::printf("history -> %s\n", args.Get("history", "").c_str());
  }
  if (args.Has("metrics-out")) {
    const Status status = obs::WriteMetricsJson(args.Get("metrics-out", ""));
    if (!status.ok()) return Fail(status);
    std::printf("metrics -> %s\n", args.Get("metrics-out", "").c_str());
  }
  if (args.Has("trace-out")) {
    const Status status = obs::WriteChromeTrace(args.Get("trace-out", ""));
    if (!status.ok()) return Fail(status);
    std::printf("trace -> %s\n", args.Get("trace-out", "").c_str());
  }
  return 0;
}

int CmdTrainDist(const Args& args) {
  auto map_or = ResolveMap(args);
  if (!map_or.ok()) return Fail(map_or.status());
  const env::Map& map = *map_or;
  const std::string algorithm = args.Get("algorithm", "drl-cews");
  if (algorithm != "dppo" && algorithm != "drl-cews") {
    return Fail(Status::InvalidArgument(
        "train-dist supports drl-cews or dppo, got '" + algorithm + "'"));
  }
  const core::Algorithm which = algorithm == "dppo" ? core::Algorithm::kDppo
                                                    : core::Algorithm::kDrlCews;
  env::EnvConfig env_config;
  env_config.horizon = static_cast<int>(args.GetInt("horizon", 60));
  core::BenchmarkOptions options = OptionsFrom(args);
  // --iterations aliases the trainer's episodes in the distributed loop.
  options.episodes = static_cast<int>(
      args.GetInt("iterations", args.GetInt("episodes", 30)));

  dist::DistTrainerConfig dcfg;
  dcfg.trainer = core::MakeTrainerConfig(which, env_config, options);
  const int spawn = static_cast<int>(args.GetInt("spawn", 0));
  if (spawn > 0) dcfg.trainer.num_employees = spawn;
  dcfg.address = args.Get(
      "address", "unix:/tmp/cews_dist_" + std::to_string(::getpid()) + ".sock");
  dcfg.init_checkpoint = args.Get("init-ckpt", "");

  const std::string role = args.Get("role", "chief");
  if (role == "employee") {
    if (!args.Has("rank") || !args.Has("address")) {
      return Fail(Status::InvalidArgument(
          "train-dist --role employee requires --rank and --address"));
    }
    dist::EmployeeClient client(dcfg, map,
                                static_cast<int>(args.GetInt("rank", 0)));
    const Status status = client.Run();
    if (!status.ok()) return Fail(status);
    return 0;
  }
  if (role != "chief") {
    return Fail(Status::InvalidArgument(
        "--role must be 'chief' or 'employee', got '" + role + "'"));
  }

  const std::string scenario_name =
      args.Has("map") ? std::string(serve::ScenarioRegistry::kDefaultScenario)
                      : args.Get("scenario", "earthquake-site");
  const agents::TrainerConfig norm = dist::NormalizeConfig(dcfg.trainer, map);

  dist::ChiefServer server(dcfg, map);
  const Status bind_status = server.Bind();
  if (!bind_status.ok()) return Fail(bind_status);
  dcfg.address = server.address();  // resolved (tcp:...:0 -> real port)

  // Fork employees while this process is still single-threaded — the fleet,
  // heartbeat reporter and kernel pool threads all come after.
  std::vector<pid_t> pids;
  if (spawn > 0) {
    auto pids_or = dist::SpawnEmployees(dcfg, map);
    if (!pids_or.ok()) return Fail(pids_or.status());
    pids = std::move(*pids_or);
    std::printf("chief @ %s: forked %d employees\n", dcfg.address.c_str(),
                spawn);
  } else {
    std::printf("chief @ %s: waiting for %d employees\n", dcfg.address.c_str(),
                dcfg.trainer.num_employees);
  }

  // The publish target: a live serving fleet in this process. The deploy
  // loop's accepted snapshots hot-swap into it while training continues.
  const int publish_every = static_cast<int>(args.GetInt("publish-every", 5));
  std::unique_ptr<serve::Fleet> fleet;
  std::unique_ptr<dist::DeployLoop> deploy;
  if (publish_every > 0) {
    serve::FleetConfig fleet_config;
    fleet_config.net = norm.net;
    fleet_config.num_shards = static_cast<int>(args.GetInt("shards", 1));
    fleet_config.runtime_threads = options.runtime_threads;
    fleet_config.seed = options.seed;
    fleet_config.scenarios = {scenario_name};
    auto fleet_or = serve::Fleet::Create(fleet_config);
    if (!fleet_or.ok()) return Fail(fleet_or.status());
    fleet = std::move(*fleet_or);

    dist::DeployOptions deploy_options;
    deploy_options.publish_every = publish_every;
    deploy_options.scenario = scenario_name;
    deploy_options.snapshot_path =
        args.Get("snapshot", "cews_deploy_snapshot.bin");
    deploy_options.eval_envs = static_cast<int>(args.GetInt("eval-envs", 2));
    deploy_options.eval_seed = options.seed * 31 + 7;
    deploy_options.min_delta = args.GetDouble("min-delta", 0.0);
    deploy =
        std::make_unique<dist::DeployLoop>(deploy_options, norm, map, fleet.get());
  }
  std::unique_ptr<obs::StatsReporter> heartbeat;
  if (args.GetDouble("heartbeat", 0.0) > 0.0) {
    heartbeat =
        std::make_unique<obs::StatsReporter>(args.GetDouble("heartbeat", 0.0));
  }

  dist::DistTrainResult result;
  const Status run_status = server.Run(&result, deploy.get());
  const Status reap_status = dist::ReapEmployees(pids);
  if (!run_status.ok()) return Fail(run_status);
  if (!reap_status.ok()) return Fail(reap_status);

  const agents::EpisodeRecord& last = result.history.back();
  std::printf("done in %.1fs: %zu iterations, last kappa=%.3f xi=%.3f "
              "rho=%.3f, transport tx=%llu B rx=%llu B\n",
              result.seconds, result.history.size(), last.kappa, last.xi,
              last.rho, static_cast<unsigned long long>(result.bytes_tx),
              static_cast<unsigned long long>(result.bytes_rx));
  if (deploy != nullptr) {
    std::printf("publish gate: accepted=%d rejected=%d published_kappa=%.3f\n",
                deploy->accepted(), deploy->rejected(),
                deploy->published_score());
  }

  // Prove the published model is actually serving: drive a short closed
  // loop against the fleet and report request/error counts and the epoch.
  if (fleet != nullptr) {
    serve::LoadSpec spec;
    spec.mode = serve::LoadMode::kClosedLoop;
    spec.clients = 4;
    spec.requests_per_client = 8;
    spec.submit_threads = 2;
    spec.env = env_config;
    spec.scenario = scenario_name;
    spec.seed = options.seed + 77;
    auto load_or = serve::RunLoad(*fleet, map, spec);
    if (!load_or.ok()) return Fail(load_or.status());
    const auto epoch_or = fleet->Epoch(scenario_name);
    std::printf("fleet check: requests=%lld shed=%lld errors=%lld epoch=%llu\n",
                static_cast<long long>(load_or->requests),
                static_cast<long long>(load_or->shed),
                static_cast<long long>(load_or->errors),
                static_cast<unsigned long long>(
                    epoch_or.ok() ? epoch_or.value() : 0));
    fleet->Stop();
  }
  heartbeat.reset();

  if (args.Has("ckpt")) {
    Rng net_rng(options.seed);
    agents::PolicyNet net(norm.net, net_rng);
    nn::LoadFlatValues(net.Parameters(), result.final_policy);
    const Status status =
        nn::SaveParameters(args.Get("ckpt", ""), net.Parameters());
    if (!status.ok()) return Fail(status);
    std::printf("checkpoint -> %s\n", args.Get("ckpt", "").c_str());
  }
  if (args.Has("history")) {
    const Status status =
        core::WriteHistoryCsv(result.history, args.Get("history", ""));
    if (!status.ok()) return Fail(status);
    std::printf("history -> %s\n", args.Get("history", "").c_str());
  }
  if (args.Has("metrics-out")) {
    const Status status = obs::WriteMetricsJson(args.Get("metrics-out", ""));
    if (!status.ok()) return Fail(status);
    std::printf("metrics -> %s\n", args.Get("metrics-out", "").c_str());
  }
  return 0;
}

int CmdEval(const Args& args) {
  if (!args.Has("ckpt")) {
    return Fail(Status::InvalidArgument("eval requires --ckpt"));
  }
  auto map_or = ResolveMap(args);
  if (!map_or.ok()) return Fail(map_or.status());
  env::EnvConfig env_config;
  env_config.horizon = static_cast<int>(args.GetInt("horizon", 60));
  const core::BenchmarkOptions options = OptionsFrom(args);
  auto system_or = core::DrlCews::Create(
      core::MakeTrainerConfig(core::Algorithm::kDrlCews, env_config, options),
      *map_or);
  if (!system_or.ok()) return Fail(system_or.status());
  core::DrlCews& system = **system_or;
  const Status load = system.LoadCheckpoint(args.Get("ckpt", ""));
  if (!load.ok()) return Fail(load);
  const agents::EvalResult eval =
      system.Evaluate(static_cast<int>(args.GetInt("episodes", 3)));
  std::printf("kappa=%.3f xi=%.3f rho=%.3f\n", eval.kappa, eval.xi,
              eval.rho);
  if (args.Has("svg")) {
    env::Env env(env_config, *map_or);
    env::StateEncoder encoder({options.grid});
    Rng rng(options.seed + 3);
    agents::EvaluatePolicy(system.net(), env, encoder, rng);
    const Status status = core::WriteTrajectorySvg(
        *map_or, env.trajectories(), args.Get("svg", ""));
    if (!status.ok()) return Fail(status);
    std::printf("svg -> %s\n", args.Get("svg", "").c_str());
  }
  return 0;
}

int CmdServe(const Args& args) {
  auto map_or = ResolveMap(args);
  if (!map_or.ok()) return Fail(map_or.status());
  const env::Map& map = *map_or;
  env::EnvConfig env_config;
  env_config.horizon = static_cast<int>(args.GetInt("horizon", 60));
  const core::BenchmarkOptions options = OptionsFrom(args);
  const std::string mode = args.Get("mode", "closed");
  if (mode != "closed" && mode != "open") {
    return Fail(Status::InvalidArgument(
        "--mode must be 'closed' or 'open', got '" + mode + "'"));
  }
  // The fleet's scenario name is the map scenario (or "default" for a
  // --map file); requests and publishes are tagged with it.
  const std::string scenario_name =
      args.Has("map")
          ? std::string(serve::ScenarioRegistry::kDefaultScenario)
          : args.Get("scenario", "earthquake-site");

  // Mirror the trainers' net sizing (map fleet + action space + bench
  // grid), so a --ckpt from `cews train` on the same map loads unchanged.
  serve::FleetConfig fleet_config;
  fleet_config.net = options.net;
  fleet_config.net.grid = options.grid;
  fleet_config.net.num_workers = static_cast<int>(map.worker_spawns.size());
  fleet_config.net.num_moves = env_config.action_space.num_moves();
  fleet_config.num_shards = static_cast<int>(args.GetInt("shards", 1));
  fleet_config.threads_per_shard =
      static_cast<int>(args.GetInt("serve-threads", 1));
  fleet_config.max_batch = static_cast<int>(args.GetInt("max-batch", 8));
  fleet_config.max_queue_delay_us = args.GetInt("delay-us", 200);
  fleet_config.max_queue_depth =
      static_cast<int>(args.GetInt("max-queue", 1024));
  fleet_config.runtime_threads = options.runtime_threads;
  fleet_config.seed = options.seed;
  fleet_config.scenarios = {scenario_name};
  auto precision_or = serve::ParsePrecision(args.Get("precision", "fp32"));
  if (!precision_or.ok()) return Fail(precision_or.status());
  fleet_config.precision = *precision_or;
  if (args.Has("trace-out")) obs::SetTraceEnabled(true);

  // Install the crash handler before the fleet exists so a fault anywhere
  // in startup or load already leaves a post-mortem.
  const std::string postmortem_dir = args.Get("postmortem-dir", "");
  if (!postmortem_dir.empty()) {
    obs::InstallFlightRecorderSignalHandler(postmortem_dir);
  }
  std::unique_ptr<obs::SloMonitor> slo;
  if (args.Has("slo")) {
    auto targets_or = obs::ParseSloTargets(args.Get("slo", ""));
    if (!targets_or.ok()) return Fail(targets_or.status());
    slo = std::make_unique<obs::SloMonitor>(std::move(*targets_or));
  }

  auto fleet_or = serve::Fleet::Create(fleet_config);
  if (!fleet_or.ok()) return Fail(fleet_or.status());
  serve::Fleet& fleet = **fleet_or;
  if (args.Has("ckpt")) {
    const Status status =
        fleet.PublishFromFile(scenario_name, args.Get("ckpt", ""));
    if (!status.ok()) return Fail(status);
    const auto epoch_or = fleet.Epoch(scenario_name);
    std::printf("serving checkpoint %s (scenario '%s', epoch %llu)\n",
                args.Get("ckpt", "").c_str(), scenario_name.c_str(),
                static_cast<unsigned long long>(
                    epoch_or.ok() ? epoch_or.value() : 0));
  } else {
    std::printf(
        "warning: no --ckpt, serving a randomly initialized policy\n");
  }

  // Int8 startup gate: before taking any load, quantize the policy exactly
  // as Publish did and replay a deterministic rollout on this map, requiring
  // the quantized argmax decisions to agree with fp32 at --agreement-min.
  // A checkpoint whose quantization flips too many decisions never serves.
  if (fleet_config.precision == serve::Precision::kInt8) {
    const double agreement_min = args.GetDouble("agreement-min", 0.99);
    Rng net_rng(options.seed);
    agents::PolicyNet net(fleet_config.net, net_rng);
    if (args.Has("ckpt")) {
      const Status status =
          nn::LoadParameters(args.Get("ckpt", ""), net.Parameters());
      if (!status.ok()) return Fail(status);
    }
    const nn::quant::QuantizedParams qp =
        agents::QuantizePolicyParams(net.Parameters());
    const env::StateEncoder encoder(
        env::StateEncoderConfig{fleet_config.net.grid});
    env::Env env(env_config, map);
    env.Reset();
    Rng rollout_rng(options.seed ^ 0x5A5AULL);
    std::vector<float> states;
    int visited = 0;
    for (int step = 0; step < 32 && !env.Done(); ++step) {
      const std::vector<float> state = encoder.Encode(env);
      states.insert(states.end(), state.begin(), state.end());
      ++visited;
      const agents::ActResult act = agents::SamplePolicy(
          net, state, rollout_rng, /*deterministic=*/true);
      env.Step(act.actions);
    }
    const agents::AgreementStats stats =
        agents::ActionAgreementOnStates(net, qp, states, visited);
    std::printf("int8 agreement: %.4f (%lld/%lld decisions over %d states)\n",
                stats.rate(), static_cast<long long>(stats.matched),
                static_cast<long long>(stats.decisions), visited);
    if (stats.rate() < agreement_min) {
      return Fail(Status::FailedPrecondition(
          "int8 action agreement " + std::to_string(stats.rate()) +
          " below --agreement-min " + std::to_string(agreement_min)));
    }
  }

  serve::LoadSpec spec;
  spec.mode = mode == "open" ? serve::LoadMode::kOpenLoop
                             : serve::LoadMode::kClosedLoop;
  spec.clients = static_cast<int>(args.GetInt("clients", 8));
  spec.requests_per_client = static_cast<int>(args.GetInt("requests", 100));
  spec.arrival_rps = args.GetDouble("arrival-rps", 1000.0);
  spec.duration_seconds = args.GetDouble("duration", 1.0);
  spec.submit_threads = static_cast<int>(args.GetInt("submit-threads", 2));
  spec.env = env_config;
  spec.scenario = scenario_name;
  spec.seed = options.seed;

  // Observability side-cars for the duration of the load: the human
  // heartbeat and the machine-readable exporter (windowed gauges, SLO
  // evaluation, JSONL/Prometheus sinks, crash-dump snapshot refresh).
  std::unique_ptr<obs::StatsReporter> heartbeat;
  if (args.GetDouble("heartbeat", 0.0) > 0.0) {
    heartbeat =
        std::make_unique<obs::StatsReporter>(args.GetDouble("heartbeat", 0.0));
  }
  std::unique_ptr<obs::MetricsExporter> exporter;
  if (slo != nullptr || args.Has("metrics-jsonl") || args.Has("prom-out") ||
      !postmortem_dir.empty()) {
    obs::MetricsExporterConfig export_config;
    export_config.period_seconds = args.GetDouble("export-period", 1.0);
    export_config.jsonl_path = args.Get("metrics-jsonl", "");
    export_config.prom_path = args.Get("prom-out", "");
    export_config.slo = slo.get();
    exporter = std::make_unique<obs::MetricsExporter>(export_config);
  }
  if (spec.mode == serve::LoadMode::kClosedLoop) {
    std::printf("load: %d closed-loop clients x %d requests, shards=%d "
                "max_batch=%d delay=%lldus serve_threads=%d precision=%s\n",
                spec.clients, spec.requests_per_client,
                fleet_config.num_shards, fleet_config.max_batch,
                static_cast<long long>(fleet_config.max_queue_delay_us),
                fleet_config.threads_per_shard,
                serve::PrecisionName(fleet_config.precision));
  } else {
    std::printf("load: open-loop %.0f req/s for %.2fs over %d clients, "
                "shards=%d max_queue=%d max_batch=%d delay=%lldus "
                "serve_threads=%d precision=%s\n",
                spec.arrival_rps, spec.duration_seconds, spec.clients,
                fleet_config.num_shards, fleet_config.max_queue_depth,
                fleet_config.max_batch,
                static_cast<long long>(fleet_config.max_queue_delay_us),
                fleet_config.threads_per_shard,
                serve::PrecisionName(fleet_config.precision));
  }
  auto result_or = serve::RunLoad(fleet, map, spec);
  if (!result_or.ok()) return Fail(result_or.status());
  const serve::LoadResult& result = *result_or;

  Table table({"shards", "clients", "requests", "shed", "errors",
               "offered_rps", "rps", "mean_us", "p50_us", "p95_us",
               "p99_us", "p999_us", "mean_batch"});
  table.AddRow({std::to_string(fleet.num_shards()),
                std::to_string(spec.clients),
                std::to_string(result.requests),
                std::to_string(result.shed),
                std::to_string(result.errors),
                Table::Fmt(result.offered_rps, 1),
                Table::Fmt(result.throughput_rps, 1),
                Table::Fmt(result.latency_mean_us, 1),
                Table::Fmt(result.latency_p50_us, 1),
                Table::Fmt(result.latency_p95_us, 1),
                Table::Fmt(result.latency_p99_us, 1),
                Table::Fmt(result.latency_p999_us, 1),
                Table::Fmt(result.mean_batch, 2)});
  std::printf("%s", table.ToString().c_str());

  fleet.Stop();
  heartbeat.reset();  // final heartbeat line
  exporter.reset();   // final export tick (JSONL/prom/flight snapshot)
  if (slo != nullptr) {
    // One more pass now that the exporter thread is gone (SloMonitor is
    // single-caller), so the table reflects end-of-run state.
    std::printf("%s", obs::SloMonitor::FormatTable(slo->Evaluate()).c_str());
  }
  if (args.Has("metrics-out")) {
    const Status status = obs::WriteMetricsJson(args.Get("metrics-out", ""));
    if (!status.ok()) return Fail(status);
    std::printf("metrics -> %s\n", args.Get("metrics-out", "").c_str());
  }
  if (args.Has("trace-out")) {
    const Status status = obs::WriteChromeTrace(args.Get("trace-out", ""));
    if (!status.ok()) return Fail(status);
    std::printf("trace -> %s\n", args.Get("trace-out", "").c_str());
  }
  if (!postmortem_dir.empty()) {
    const std::string path = postmortem_dir + "/postmortem." +
                             std::to_string(::getpid()) + ".json";
    const Status status =
        obs::FlightRecorder::Global().WriteDump(path, "clean_shutdown");
    if (!status.ok()) return Fail(status);
    std::printf("postmortem -> %s\n", path.c_str());
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: cews <scenarios|map|show|train|train-dist|eval|serve>"
               " [--flag value]\n"
               "see the header of tools/cews_cli.cpp for details\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  auto args_or = Args::Parse(argc, argv, 2);
  if (!args_or.ok()) return Fail(args_or.status());
  const Args& args = *args_or;
  if (command == "scenarios") return CmdScenarios();
  if (command == "map") return CmdMap(args);
  if (command == "show") {
    if (!args.Has("map")) {
      return Fail(Status::InvalidArgument("show requires --map"));
    }
    return CmdMap(args);
  }
  if (command == "train") return CmdTrain(args);
  if (command == "train-dist") return CmdTrainDist(args);
  if (command == "eval") return CmdEval(args);
  if (command == "serve") return CmdServe(args);
  return Usage();
}
