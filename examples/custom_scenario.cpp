// Config-driven scenario runner: reads a `key = value` file describing the
// scenario and algorithm, runs it, and exports artifacts (map file,
// trajectory SVG). With no argument it runs a built-in demo config.
//
// Usage: custom_scenario [scenario.conf]
//
// Recognized keys (all optional):
//   pois, workers, stations, obstacles     — map entities
//   hard_corner = true|false               — corner subarea
//   map_file                               — load a saved map instead
//   algorithm = drl-cews|dppo|edics|dnc|greedy|nav-greedy
//   episodes, employees, horizon, seed     — training knobs
//   export_map, export_svg                 — output paths
#include <cstdio>
#include <string>

#include "baselines/dnc.h"
#include "baselines/nav_greedy.h"
#include "baselines/planner.h"
#include "common/kv_config.h"
#include "core/algorithms.h"
#include "core/drl_cews.h"
#include "core/visualize.h"
#include "env/map_io.h"
#include "env/state_encoder.h"

namespace {

constexpr const char* kDemoConfig = R"(
# demo scenario: small disaster site, quick DRL-CEWS training
pois = 120
workers = 2
stations = 3
algorithm = drl-cews
episodes = 80
employees = 2
horizon = 60
seed = 11
export_svg = custom_scenario.svg
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace cews;

  Result<KvConfig> config_or =
      argc > 1 ? KvConfig::Load(argv[1]) : KvConfig::Parse(kDemoConfig);
  if (!config_or.ok()) {
    std::fprintf(stderr, "config error: %s\n",
                 config_or.status().ToString().c_str());
    return 1;
  }
  const KvConfig& conf = *config_or;

  // Scenario: either a saved map or a procedurally generated one.
  env::Map map;
  if (conf.Has("map_file")) {
    auto map_or = env::LoadMap(conf.GetString("map_file"));
    if (!map_or.ok()) {
      std::fprintf(stderr, "map load failed: %s\n",
                   map_or.status().ToString().c_str());
      return 1;
    }
    map = std::move(map_or).value();
  } else {
    env::MapConfig map_config;
    map_config.num_pois = static_cast<int>(conf.GetInt("pois", 150));
    map_config.num_workers = static_cast<int>(conf.GetInt("workers", 2));
    map_config.num_stations = static_cast<int>(conf.GetInt("stations", 4));
    map_config.num_obstacles = static_cast<int>(conf.GetInt("obstacles", 5));
    map_config.hard_corner = conf.GetBool("hard_corner", true);
    Rng rng(static_cast<uint64_t>(conf.GetInt("seed", 1)));
    auto map_or = env::GenerateMap(map_config, rng);
    if (!map_or.ok()) {
      std::fprintf(stderr, "map generation failed: %s\n",
                   map_or.status().ToString().c_str());
      return 1;
    }
    map = std::move(map_or).value();
  }
  std::printf("scenario: %zu PoIs, %zu stations, %zu obstacles, %zu workers\n",
              map.pois.size(), map.stations.size(), map.obstacles.size(),
              map.worker_spawns.size());

  env::EnvConfig env_config;
  env_config.horizon = static_cast<int>(conf.GetInt("horizon", 60));

  core::BenchmarkOptions options;
  options.episodes = static_cast<int>(conf.GetInt("episodes", 100));
  options.num_employees = static_cast<int>(conf.GetInt("employees", 2));
  options.seed = static_cast<uint64_t>(conf.GetInt("seed", 1));
  options.grid = 12;
  options.net.conv1_channels = 4;
  options.net.conv2_channels = 6;
  options.net.conv3_channels = 6;
  options.net.feature_dim = 64;
  options.batch_size = 64;

  const std::string algorithm = conf.GetString("algorithm", "drl-cews");
  agents::EvalResult result;
  std::vector<std::vector<env::Position>> trajectories;

  auto run_planner = [&](const baselines::Planner& planner) {
    env::Env env(env_config, map);
    result = baselines::RunPlannerEpisode(planner, env);
    trajectories = env.trajectories();
  };

  if (algorithm == "greedy") {
    run_planner(baselines::GreedyPlanner());
  } else if (algorithm == "nav-greedy") {
    run_planner(baselines::NavGreedyPlanner(map));
  } else if (algorithm == "dnc") {
    run_planner(baselines::DncPlanner());
  } else if (algorithm == "drl-cews" || algorithm == "dppo" ||
             algorithm == "edics") {
    const core::Algorithm which = algorithm == "drl-cews"
                                      ? core::Algorithm::kDrlCews
                                      : (algorithm == "dppo"
                                             ? core::Algorithm::kDppo
                                             : core::Algorithm::kEdics);
    if (which == core::Algorithm::kEdics) {
      result = core::RunAlgorithm(which, map, env_config, options);
    } else {
      auto system_or = core::DrlCews::Create(
          core::MakeTrainerConfig(which, env_config, options), map);
      if (!system_or.ok()) {
        std::fprintf(stderr, "bad config: %s\n",
                     system_or.status().ToString().c_str());
        return 1;
      }
      core::DrlCews& system = **system_or;
      const agents::TrainResult train = system.Train();
      std::printf("trained %s for %d episodes (%.1fs)\n", algorithm.c_str(),
                  options.episodes, train.seconds);
      env::Env env(env_config, map);
      env::StateEncoder encoder({options.grid});
      Rng eval_rng(options.seed + 99);
      result = agents::EvaluatePolicy(system.net(), env, encoder, eval_rng);
      trajectories = env.trajectories();
    }
  } else {
    std::fprintf(stderr, "unknown algorithm '%s'\n", algorithm.c_str());
    return 1;
  }

  std::printf("%s: kappa=%.3f xi=%.3f rho=%.3f\n", algorithm.c_str(),
              result.kappa, result.xi, result.rho);

  if (conf.Has("export_map")) {
    const std::string path = conf.GetString("export_map");
    const Status status = env::SaveMap(map, path);
    std::printf("map -> %s (%s)\n", path.c_str(),
                status.ok() ? "ok" : status.ToString().c_str());
  }
  if (conf.Has("export_svg") && !trajectories.empty()) {
    const std::string path = conf.GetString("export_svg");
    const Status status =
        core::WriteTrajectorySvg(map, trajectories, path);
    std::printf("trajectories -> %s (%s)\n", path.c_str(),
                status.ok() ? "ok" : status.ToString().c_str());
  }
  return 0;
}
