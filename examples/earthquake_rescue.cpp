// Post-earthquake rescue scenario (the paper's motivating application,
// Section VII-A): collapsed buildings, life-detection sensors clustered
// around damage sites, a semi-destroyed corner subarea reachable through a
// narrow passage, and drones that must balance data collection against
// recharging. Compares all five scheduling approaches on one instance.
#include <cstdio>

#include "core/algorithms.h"
#include "env/map.h"

int main() {
  using namespace cews;

  // The rescue site: a 16x16 disaster zone, 200 sensors (15% trapped in the
  // corner subarea), 5 collapsed buildings, 4 charging stations, 3 drones.
  env::MapConfig map_config;
  map_config.num_pois = 200;
  map_config.num_workers = 3;
  map_config.num_stations = 4;
  map_config.num_obstacles = 5;
  map_config.hard_corner = true;
  map_config.corner_fraction = 0.15;
  Rng rng(2020);
  auto map_or = env::GenerateMap(map_config, rng);
  if (!map_or.ok()) {
    std::fprintf(stderr, "map generation failed: %s\n",
                 map_or.status().ToString().c_str());
    return 1;
  }
  const env::Map map = std::move(map_or).value();

  int corner_sensors = 0;
  for (const env::Poi& p : map.pois) {
    if (p.pos.x > map_config.size_x - map_config.corner_size &&
        p.pos.y < map_config.corner_size) {
      ++corner_sensors;
    }
  }
  std::printf(
      "rescue site: %zu sensors (%d trapped in the corner area), %zu "
      "collapsed buildings, %zu stations, %zu drones\n\n",
      map.pois.size(), corner_sensors, map.obstacles.size(),
      map.stations.size(), map.worker_spawns.size());

  env::EnvConfig env_config;
  env_config.horizon = 60;

  // Scaled-down training so the example runs in about a minute; raise
  // episodes for stronger policies.
  core::BenchmarkOptions options;
  options.episodes = 150;
  options.num_employees = 2;
  options.batch_size = 64;
  options.update_epochs = 6;
  options.eval_episodes = 2;
  options.grid = 12;
  options.net.conv1_channels = 4;
  options.net.conv2_channels = 6;
  options.net.conv3_channels = 6;
  options.net.feature_dim = 64;
  options.seed = 1;

  std::printf("%-9s %8s %8s %8s\n", "approach", "kappa", "xi", "rho");
  for (const core::Algorithm algorithm : core::AllAlgorithms()) {
    const agents::EvalResult r =
        core::RunAlgorithm(algorithm, map, env_config, options);
    std::printf("%-9s %8.3f %8.3f %8.3f\n",
                core::AlgorithmName(algorithm).c_str(), r.kappa, r.xi,
                r.rho);
    std::fflush(stdout);
  }
  std::printf(
      "\nkappa: fraction of sensor data recovered; xi: mean data still "
      "stranded per sensor; rho: fairness-weighted energy efficiency.\n");
  return 0;
}
