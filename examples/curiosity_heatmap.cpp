// Curiosity introspection demo: trains a single drone and renders where the
// spatial curiosity model paid out intrinsic reward over the course of
// training (the Fig. 9 visualization, as a library API walkthrough).
#include <algorithm>
#include <cstdio>

#include "core/drl_cews.h"
#include "env/map.h"

int main() {
  using namespace cews;

  env::MapConfig map_config;
  map_config.num_pois = 120;
  map_config.num_workers = 1;
  map_config.num_stations = 3;
  Rng rng(9);
  auto map_or = env::GenerateMap(map_config, rng);
  if (!map_or.ok()) {
    std::fprintf(stderr, "map generation failed\n");
    return 1;
  }
  const env::Map map = std::move(map_or).value();

  agents::TrainerConfig config = core::DrlCews::DefaultConfig();
  config.episodes = 60;
  config.num_employees = 2;
  config.batch_size = 64;
  config.update_epochs = 4;
  config.env.horizon = 60;
  config.encoder.grid = 12;
  config.net.grid = 12;
  config.net.conv1_channels = 4;
  config.net.conv2_channels = 6;
  config.net.conv3_channels = 6;
  config.net.feature_dim = 64;
  config.heatmap_snapshot_every = 20;  // three panels
  config.seed = 8;

  auto system_or = core::DrlCews::Create(config, map);
  if (!system_or.ok()) {
    std::fprintf(stderr, "bad config: %s\n",
                 system_or.status().ToString().c_str());
    return 1;
  }
  core::DrlCews& system = **system_or;
  system.Train();

  const int grid = config.encoder.grid;
  double max_value = 0.0;
  for (const agents::HeatmapSnapshot& snap : system.heatmap_snapshots()) {
    for (double v : snap.cell_values) max_value = std::max(max_value, v);
  }
  for (const agents::HeatmapSnapshot& snap : system.heatmap_snapshots()) {
    std::printf("curiosity after episode %d (brighter = more surprising):\n",
                snap.episode);
    for (int y = grid - 1; y >= 0; --y) {
      std::printf("  ");
      for (int x = 0; x < grid; ++x) {
        const double v = snap.cell_values[static_cast<size_t>(y * grid + x)];
        const char* glyphs = " .:-=+*#%@";
        int level = 0;
        if (max_value > 0.0 && v > 0.0) {
          level = 1 + static_cast<int>(v / max_value * 8.999);
        }
        std::printf("%c", glyphs[level]);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf(
      "Brightness fades as the forward model learns the visited area; "
      "frontier cells stay bright, pulling the drone outward.\n");
  return 0;
}
