// Charging trade-off demo (Section III-A difficulty #4: "when and where to
// charge"). Runs a fleet on a *tight* energy budget and shows how the
// trained policy keeps drones alive by interleaving charging with
// collection, where the myopic Greedy planner strands its workers.
#include <cstdio>

#include "baselines/greedy.h"
#include "baselines/planner.h"
#include "core/drl_cews.h"
#include "env/map.h"
#include "env/state_encoder.h"

namespace {

struct FleetReport {
  double kappa = 0.0;
  double charged = 0.0;
  int stranded = 0;  // workers that ended with an empty battery
};

FleetReport Summarize(const cews::env::Env& env) {
  FleetReport report;
  report.kappa = env.Kappa();
  for (const cews::env::WorkerState& w : env.workers()) {
    report.charged += w.charged_total;
    if (w.energy <= 0.0) ++report.stranded;
  }
  return report;
}

}  // namespace

int main() {
  using namespace cews;

  env::MapConfig map_config;
  map_config.num_pois = 150;
  map_config.num_workers = 2;
  map_config.num_stations = 3;
  Rng rng(77);
  auto map_or = env::GenerateMap(map_config, rng);
  if (!map_or.ok()) {
    std::fprintf(stderr, "map generation failed\n");
    return 1;
  }
  const env::Map map = std::move(map_or).value();

  // Tight budget: 12 units at beta = 0.1 per unit distance and alpha = 1
  // per unit data. Without recharging, a drone dies in under half the
  // mission.
  env::EnvConfig env_config;
  env_config.horizon = 80;
  env_config.initial_energy = 12.0;
  env_config.energy_capacity = 40.0;

  // Greedy reference.
  env::Env greedy_env(env_config, map);
  baselines::RunPlannerEpisode(baselines::GreedyPlanner(), greedy_env);
  const FleetReport greedy = Summarize(greedy_env);

  // DRL-CEWS, scaled down.
  agents::TrainerConfig config = core::DrlCews::DefaultConfig();
  config.env = env_config;
  config.episodes = 150;
  config.num_employees = 2;
  config.batch_size = 64;
  config.update_epochs = 6;
  config.ppo.lr = 3e-3f;
  config.ppo.gamma = 0.95f;
  config.reward_scale = 0.1f;
  config.env.epsilon1 = 0.01;
  config.curiosity.lr = 3e-4f;
  config.curiosity.eta = 0.5f;
  config.encoder.grid = 12;
  config.net.grid = 12;
  config.net.conv1_channels = 4;
  config.net.conv2_channels = 6;
  config.net.conv3_channels = 6;
  config.net.feature_dim = 64;
  config.seed = 5;
  auto system_or = core::DrlCews::Create(config, map);
  if (!system_or.ok()) {
    std::fprintf(stderr, "bad config: %s\n",
                 system_or.status().ToString().c_str());
    return 1;
  }
  core::DrlCews& system = **system_or;
  const agents::TrainResult train = system.Train();
  std::printf("trained DRL-CEWS for %d episodes (%.1fs)\n\n",
              config.episodes, train.seconds);

  env::Env cews_env(config.env, map);
  env::StateEncoder encoder(config.encoder);
  Rng eval_rng(3);
  agents::EvaluatePolicy(system.net(), cews_env, encoder, eval_rng);
  const FleetReport cews = Summarize(cews_env);

  std::printf("%-10s %10s %16s %10s\n", "approach", "kappa",
              "charged energy", "stranded");
  std::printf("%-10s %10.3f %16.1f %10d\n", "greedy", greedy.kappa,
              greedy.charged, greedy.stranded);
  std::printf("%-10s %10.3f %16.1f %10d\n", "drl-cews", cews.kappa,
              cews.charged, cews.stranded);
  std::printf(
      "\nA drone is 'stranded' when its battery hits zero away from a "
      "charger — it stops moving for the rest of the mission.\n");
  return 0;
}
