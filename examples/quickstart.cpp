// Quickstart: generate a crowdsensing scenario, run the Greedy baseline,
// train a small DRL-CEWS model, and compare the three metrics.
#include <cstdio>

#include "baselines/greedy.h"
#include "baselines/planner.h"
#include "common/rng.h"
#include "core/algorithms.h"
#include "core/drl_cews.h"
#include "env/env.h"
#include "env/map.h"

int main() {
  using namespace cews;

  // 1. A scenario: 16x16 space, 150 PoIs, 4 charging stations, 2 drones,
  //    collapsed buildings and the hard-exploration corner room.
  env::MapConfig map_config;
  map_config.num_pois = 150;
  map_config.num_workers = 2;
  map_config.num_stations = 4;
  Rng rng(42);
  auto map_or = env::GenerateMap(map_config, rng);
  if (!map_or.ok()) {
    std::fprintf(stderr, "map generation failed: %s\n",
                 map_or.status().ToString().c_str());
    return 1;
  }
  env::Map map = std::move(map_or).value();
  std::printf("scenario: %zu PoIs, %zu stations, %zu obstacles, %zu drones\n",
              map.pois.size(), map.stations.size(), map.obstacles.size(),
              map.worker_spawns.size());

  // 2. Greedy baseline.
  env::EnvConfig env_config;
  env::Env env(env_config, map);
  const agents::EvalResult greedy =
      baselines::RunPlannerEpisode(baselines::GreedyPlanner(), env);
  std::printf("greedy   : kappa=%.3f xi=%.3f rho=%.3f\n", greedy.kappa,
              greedy.xi, greedy.rho);

  // 3. DRL-CEWS, scaled down for a quick demo (the paper trains 2,500
  //    episodes; raise `episodes` to approach its numbers). The quick-mode
  //    learning constants come from core::BenchmarkOptions.
  core::BenchmarkOptions options;
  options.episodes = 150;
  options.num_employees = 2;
  options.batch_size = 64;
  options.grid = 12;
  options.net.conv1_channels = 4;
  options.net.conv2_channels = 6;
  options.net.conv3_channels = 6;
  options.net.feature_dim = 64;
  options.seed = 7;
  env_config.horizon = 60;
  agents::TrainerConfig config = core::MakeTrainerConfig(
      core::Algorithm::kDrlCews, env_config, options);

  auto system_or = core::DrlCews::Create(config, map);
  if (!system_or.ok()) {
    std::fprintf(stderr, "bad config: %s\n",
                 system_or.status().ToString().c_str());
    return 1;
  }
  core::DrlCews& system = **system_or;
  const agents::TrainResult train = system.Train();
  std::printf("trained %d episodes x %d employees in %.1fs\n",
              config.episodes, config.num_employees, train.seconds);
  const agents::EvalResult cews = system.Evaluate(/*episodes=*/3);
  std::printf("drl-cews : kappa=%.3f xi=%.3f rho=%.3f\n", cews.kappa, cews.xi,
              cews.rho);
  return 0;
}
