// Obstacle-aware shortest paths over the crowdsensing space.
//
// The paper's planners (Greedy, D&C) head straight for charging stations and
// get trapped behind obstacles (Section VII-I). This A* grid planner is the
// substrate for the navigation-aware planner variants and for reachability
// analysis in tests (e.g. "the corner room is only reachable through the
// gap").
#ifndef CEWS_ENV_PATHFINDING_H_
#define CEWS_ENV_PATHFINDING_H_

#include <optional>
#include <vector>

#include "env/map.h"

namespace cews::env {

/// Grid A* planner over a rasterized occupancy map.
///
/// The map is sampled at `resolution` cells per axis once at construction;
/// queries then run A* with octile distance over free cells. Cell centers
/// adjacent to obstacles stay free only if the straight segment between
/// neighboring cell centers is collision-free, so paths never cut corners
/// through walls.
class PathPlanner {
 public:
  /// Rasterizes the map. Higher resolutions resolve narrower passages;
  /// the default resolves the standard corner-room gap.
  explicit PathPlanner(const Map& map, int resolution = 48);

  /// Shortest path from `from` to `to` as a series of waypoints (cell
  /// centers, ending exactly at `to`). Returns std::nullopt when no path
  /// exists. `from`/`to` are clamped to the nearest free cell.
  std::optional<std::vector<Position>> FindPath(const Position& from,
                                                const Position& to) const;

  /// Length of the shortest path, or infinity when unreachable.
  double PathLength(const Position& from, const Position& to) const;

  /// True when `to` is reachable from `from`.
  bool Reachable(const Position& from, const Position& to) const;

  /// First step of the shortest path: the next waypoint to move toward.
  /// Falls back to `to` itself when no path exists (caller degrades to the
  /// straight-line behaviour).
  Position NextWaypoint(const Position& from, const Position& to) const;

  int resolution() const { return resolution_; }

  /// True when the cell containing p is free (outside all obstacles).
  bool CellFree(const Position& p) const;

 private:
  int CellOf(const Position& p) const;
  Position CenterOf(int cell) const;
  /// Nearest free cell to p (p's own cell when free).
  int NearestFreeCell(const Position& p) const;

  const Map* map_;
  int resolution_;
  double cell_w_, cell_h_;
  std::vector<bool> free_;  // resolution^2 occupancy
  // Precomputed neighbor validity: for each cell, which of the 8 moves keep
  // the straight segment between cell centers collision-free.
  std::vector<uint8_t> neighbor_mask_;
};

}  // namespace cews::env

#endif  // CEWS_ENV_PATHFINDING_H_
