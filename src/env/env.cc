#include "env/env.h"

#include <algorithm>
#include <limits>
#include <string>

#include "common/check.h"
#include "common/math_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cews::env {

namespace {

std::string WithIndex(const char* what, size_t i) {
  return std::string(what) + "[" + std::to_string(i) + "]";
}

}  // namespace

Status EnvConfig::Validate(size_t num_workers) const {
  if (horizon <= 0) {
    return Status::InvalidArgument(
        "horizon must be positive, got " + std::to_string(horizon));
  }
  if (!(sensing_range > 0.0)) {
    return Status::InvalidArgument(
        "sensing_range must be positive, got " +
        std::to_string(sensing_range));
  }
  if (!(collection_rate > 0.0 && collection_rate <= 1.0)) {
    return Status::InvalidArgument(
        "collection_rate must be in (0, 1], got " +
        std::to_string(collection_rate));
  }
  if (alpha < 0.0 || beta < 0.0) {
    return Status::InvalidArgument(
        "energy-cost coefficients alpha/beta must be non-negative");
  }
  if (!(initial_energy > 0.0)) {
    return Status::InvalidArgument(
        "initial_energy must be positive, got " +
        std::to_string(initial_energy));
  }
  if (energy_capacity < initial_energy) {
    return Status::InvalidArgument(
        "energy_capacity (" + std::to_string(energy_capacity) +
        ") must be at least initial_energy (" +
        std::to_string(initial_energy) + ")");
  }
  if (charge_range < 0.0 || charge_rate < 0.0) {
    return Status::InvalidArgument(
        "charge_range and charge_rate must be non-negative");
  }
  if (obstacle_penalty < 0.0) {
    return Status::InvalidArgument(
        "obstacle_penalty must be non-negative, got " +
        std::to_string(obstacle_penalty));
  }
  if (!(epsilon1 > 0.0) || !(epsilon2 > 0.0)) {
    return Status::InvalidArgument(
        "sparse-reward milestones epsilon1/epsilon2 must be positive");
  }
  const struct {
    const char* name;
    const std::vector<double>& values;
  } overrides[] = {
      {"per_worker_sensing_range", per_worker_sensing_range},
      {"per_worker_initial_energy", per_worker_initial_energy},
  };
  for (const auto& o : overrides) {
    if (o.values.empty()) continue;
    if (num_workers > 0 && o.values.size() != num_workers) {
      return Status::InvalidArgument(
          std::string(o.name) + " has " + std::to_string(o.values.size()) +
          " entries but the map spawns " + std::to_string(num_workers) +
          " workers; leave it empty for a uniform fleet");
    }
    for (size_t i = 0; i < o.values.size(); ++i) {
      if (!(o.values[i] > 0.0)) {
        return Status::InvalidArgument(
            WithIndex(o.name, i) + " must be positive, got " +
            std::to_string(o.values[i]));
      }
    }
  }
  for (size_t i = 0; i < per_worker_initial_energy.size(); ++i) {
    if (per_worker_initial_energy[i] > energy_capacity) {
      return Status::InvalidArgument(
          WithIndex("per_worker_initial_energy", i) + " (" +
          std::to_string(per_worker_initial_energy[i]) +
          ") exceeds energy_capacity (" + std::to_string(energy_capacity) +
          ")");
    }
  }
  return Status::OK();
}

Env::Env(EnvConfig config, Map map)
    : config_(std::move(config)), map_(std::move(map)) {
  const Status valid = config_.Validate(map_.worker_spawns.size());
  CEWS_CHECK(valid.ok()) << "invalid EnvConfig: " << valid.ToString();
  CEWS_CHECK(!map_.pois.empty()) << "map has no PoIs";
  CEWS_CHECK(!map_.worker_spawns.empty()) << "map has no worker spawns";
  total_initial_data_ = map_.TotalInitialData();
  CEWS_CHECK(total_initial_data_ > 0.0);
  // Resolve per-worker capabilities (Definition 2's g^w and b_0^w).
  const size_t w_count = map_.worker_spawns.size();
  if (config_.per_worker_sensing_range.empty()) {
    sensing_range_.assign(w_count, config_.sensing_range);
  } else {
    sensing_range_ = config_.per_worker_sensing_range;
  }
  if (config_.per_worker_initial_energy.empty()) {
    initial_energy_.assign(w_count, config_.initial_energy);
  } else {
    initial_energy_ = config_.per_worker_initial_energy;
  }
  Reset();
}

void Env::Reset() {
  t_ = 0;
  const size_t w = map_.worker_spawns.size();
  workers_.assign(w, WorkerState{});
  trajectories_.assign(w, {});
  for (size_t i = 0; i < w; ++i) {
    workers_[i].pos = map_.worker_spawns[i];
    workers_[i].energy = initial_energy_[i];
    workers_[i].next_collect_milestone = config_.epsilon1;
    trajectories_[i].push_back(workers_[i].pos);
  }
  poi_values_.resize(map_.pois.size());
  for (size_t p = 0; p < map_.pois.size(); ++p) {
    poi_values_[p] = map_.pois[p].initial_value;
  }
  poi_access_.assign(map_.pois.size(), 0);
}

Env::Snapshot Env::Save() const {
  Snapshot snapshot;
  snapshot.workers = workers_;
  snapshot.poi_values = poi_values_;
  snapshot.poi_access = poi_access_;
  snapshot.t = t_;
  return snapshot;
}

void Env::Restore(const Snapshot& snapshot) {
  CEWS_CHECK_EQ(snapshot.workers.size(), workers_.size());
  CEWS_CHECK_EQ(snapshot.poi_values.size(), poi_values_.size());
  workers_ = snapshot.workers;
  poi_values_ = snapshot.poi_values;
  poi_access_ = snapshot.poi_access;
  t_ = snapshot.t;
  // Trajectories are visualization-only; truncate to the restored time so
  // subsequent steps stay consistent in length.
  for (auto& trajectory : trajectories_) {
    if (trajectory.size() > static_cast<size_t>(t_ + 1)) {
      trajectory.resize(static_cast<size_t>(t_ + 1));
    }
  }
}

Position Env::MoveTarget(int w, int move) const {
  CEWS_CHECK_GE(w, 0);
  CEWS_CHECK_LT(w, num_workers());
  const Position d = config_.action_space.Delta(move);
  return {workers_[static_cast<size_t>(w)].pos.x + d.x,
          workers_[static_cast<size_t>(w)].pos.y + d.y};
}

bool Env::MoveValid(int w, int move) const {
  const WorkerState& ws = workers_[static_cast<size_t>(w)];
  if (ws.energy <= 0.0) return move == 0;
  if (move == 0) return true;
  return map_.SegmentFree(ws.pos, MoveTarget(w, move));
}

double Env::PotentialCollection(const Position& p) const {
  return PotentialCollection(p, config_.sensing_range);
}

double Env::PotentialCollection(const Position& p,
                                double sensing_range) const {
  double q = 0.0;
  for (size_t i = 0; i < map_.pois.size(); ++i) {
    if (Distance(p, map_.pois[i].pos) <= sensing_range) {
      q += std::min(config_.collection_rate * map_.pois[i].initial_value,
                    poi_values_[i]);
    }
  }
  return q;
}

double Env::SensingRange(int w) const {
  CEWS_CHECK_GE(w, 0);
  CEWS_CHECK_LT(w, num_workers());
  return sensing_range_[static_cast<size_t>(w)];
}

double Env::InitialEnergy(int w) const {
  CEWS_CHECK_GE(w, 0);
  CEWS_CHECK_LT(w, num_workers());
  return initial_energy_[static_cast<size_t>(w)];
}

bool Env::CanChargeAt(const Position& p) const {
  for (const ChargingStation& s : map_.stations) {
    if (Distance(p, s.pos) <= config_.charge_range) return true;
  }
  return false;
}

int Env::NearestStation(const Position& p) const {
  int best = -1;
  double best_d = std::numeric_limits<double>::max();
  for (size_t i = 0; i < map_.stations.size(); ++i) {
    const double d = Distance(p, map_.stations[i].pos);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(i);
    }
  }
  return best;
}

StepResult Env::Step(const std::vector<WorkerAction>& actions) {
  CEWS_CHECK_EQ(static_cast<int>(actions.size()), num_workers());
  CEWS_CHECK(!Done()) << "Step() after episode end";
  CEWS_TRACE_SCOPE("env.Step");
  static obs::Counter* const steps = obs::GetCounter("env.steps");
  static obs::Histogram* const step_ns = obs::GetHistogram("env.step_ns");
  steps->Increment();
  obs::ScopedTimerNs step_timer(step_ns);
  const int w_count = num_workers();
  StepResult result;
  result.collected.assign(w_count, 0.0);
  result.energy_used.assign(w_count, 0.0);
  result.charged.assign(w_count, 0.0);
  result.per_worker_sparse.assign(w_count, 0.0);
  result.collided.assign(w_count, false);
  result.charging.assign(w_count, false);

  // One worker per station per slot: stations are scarce, so workers compete
  // (Section III-A, difficulty #3). Lower worker index wins ties.
  std::vector<bool> station_busy(map_.stations.size(), false);

  for (int w = 0; w < w_count; ++w) {
    WorkerState& ws = workers_[static_cast<size_t>(w)];
    const WorkerAction& action = actions[static_cast<size_t>(w)];
    double q = 0.0, e = 0.0, sigma = 0.0;
    bool collided = false;
    bool charging = false;

    if (ws.energy <= 0.0) {
      // Battery exhausted: the worker stops movement (Definition 2). It can
      // still charge if it happens to be parked in range of a free station.
      if (action.charge) {
        const int station = NearestStation(ws.pos);
        if (station >= 0 && !station_busy[static_cast<size_t>(station)] &&
            Distance(ws.pos, map_.stations[static_cast<size_t>(station)].pos) <=
                config_.charge_range) {
          station_busy[static_cast<size_t>(station)] = true;
          sigma = std::min(config_.charge_rate,
                           config_.energy_capacity - ws.energy);
          charging = true;
        }
      }
    } else if (action.charge) {
      // Charging is valid when within range of a station (Section V,
      // "Action") and the station pump is free. While charging the worker
      // neither moves nor collects ("it takes time that workers cannot
      // collect data", Section III-A).
      const int station = NearestStation(ws.pos);
      const bool in_range =
          station >= 0 &&
          Distance(ws.pos, map_.stations[static_cast<size_t>(station)].pos) <=
              config_.charge_range;
      if (in_range && !station_busy[static_cast<size_t>(station)] &&
          ws.energy < config_.energy_capacity) {
        station_busy[static_cast<size_t>(station)] = true;
        sigma = std::min(config_.charge_rate,
                         config_.energy_capacity - ws.energy);
        charging = true;
      }
      // An invalid charge request degrades to staying put (no penalty).
    } else {
      // Route planning.
      const Position target = MoveTarget(w, action.move);
      double dist = 0.0;
      if (action.move != 0) {
        if (map_.SegmentFree(ws.pos, target)) {
          dist = Distance(ws.pos, target);
          ws.pos = target;
        } else {
          collided = true;  // bumps and stays; tau penalty below
          ++ws.collisions;
        }
      }
      if (!collided) {
        // Collect from PoIs within g^w of the (new) position, Eqn (1).
        const double g = sensing_range_[static_cast<size_t>(w)];
        for (size_t p = 0; p < map_.pois.size(); ++p) {
          if (poi_values_[p] <= 0.0) continue;
          if (Distance(ws.pos, map_.pois[p].pos) > g) {
            continue;
          }
          const double take =
              std::min(config_.collection_rate * map_.pois[p].initial_value,
                       poi_values_[p]);
          if (take <= 0.0) continue;
          poi_values_[p] -= take;
          ++poi_access_[p];
          q += take;
        }
      }
      // Energy consumption, Eqn (3).
      e = config_.beta * dist + config_.alpha * q;
    }

    ws.energy = Clamp(ws.energy - e + sigma, 0.0, config_.energy_capacity);
    ws.collected_total += q;
    ws.energy_used_total += e;
    ws.charged_total += sigma;
    ws.charge_accum += sigma;

    result.collected[static_cast<size_t>(w)] = q;
    result.energy_used[static_cast<size_t>(w)] = e;
    result.charged[static_cast<size_t>(w)] = sigma;
    result.collided[static_cast<size_t>(w)] = collided;
    result.charging[static_cast<size_t>(w)] = charging;

    // Sparse extrinsic reward r_t^{w,ext} (Eqn 18).
    double upsilon1 = 0.0, upsilon2 = 0.0;
    const double ratio = ws.collected_total / total_initial_data_;
    if (ratio >= ws.next_collect_milestone) {
      upsilon1 = 1.0;
      while (ws.next_collect_milestone <= ratio) {
        ws.next_collect_milestone += config_.epsilon1;
      }
    }
    const double b0 = initial_energy_[static_cast<size_t>(w)];
    if (ws.charge_accum / b0 >= config_.epsilon2) {
      upsilon2 = 1.0;
      ws.charge_accum -= config_.epsilon2 * b0;
    }
    const double tau = collided ? config_.obstacle_penalty : 0.0;
    result.per_worker_sparse[static_cast<size_t>(w)] =
        upsilon1 + upsilon2 - tau;

    trajectories_[static_cast<size_t>(w)].push_back(ws.pos);
  }

  // Eqn (19): mean sparse reward.
  double sparse = 0.0;
  for (double r : result.per_worker_sparse) sparse += r;
  result.sparse_reward = sparse / static_cast<double>(w_count);

  // Eqn (20): dense reward for Edics / DPPO.
  double dense = 0.0;
  for (int w = 0; w < w_count; ++w) {
    const double qw = result.collected[static_cast<size_t>(w)];
    const double ew = result.energy_used[static_cast<size_t>(w)];
    const double data_term = ew > 1e-9 ? qw / ew : 0.0;
    const double charge_term = result.charged[static_cast<size_t>(w)] /
                               initial_energy_[static_cast<size_t>(w)];
    const double tau = result.collided[static_cast<size_t>(w)]
                           ? config_.obstacle_penalty
                           : 0.0;
    dense += data_term + charge_term - tau;
  }
  result.dense_reward = dense / static_cast<double>(w_count);

  ++t_;
  result.done = Done();
  return result;
}

double Env::Kappa() const {
  double collected = 0.0;
  for (const WorkerState& w : workers_) collected += w.collected_total;
  return collected / total_initial_data_;
}

double Env::Xi() const {
  double acc = 0.0;
  for (size_t p = 0; p < map_.pois.size(); ++p) {
    acc += poi_values_[p] / map_.pois[p].initial_value;
  }
  return acc / static_cast<double>(map_.pois.size());
}

double Env::Rho() const {
  // Jain fairness over per-PoI normalized collected fractions (Eqn 6).
  std::vector<double> covered(map_.pois.size());
  for (size_t p = 0; p < map_.pois.size(); ++p) {
    covered[p] = (map_.pois[p].initial_value - poi_values_[p]) /
                 (config_.collection_rate * map_.pois[p].initial_value);
  }
  const double fairness = JainFairness(covered);
  double efficiency = 0.0;
  for (const WorkerState& w : workers_) {
    if (w.energy_used_total > 1e-9) {
      efficiency += w.collected_total / w.energy_used_total;
    }
  }
  efficiency /= static_cast<double>(workers_.size());
  return fairness * efficiency;
}

}  // namespace cews::env
