#include "env/state_encoder.h"

#include <algorithm>

#include "common/check.h"
#include "common/math_util.h"

namespace cews::env {

StateEncoder::StateEncoder(StateEncoderConfig config) : config_(config) {
  CEWS_CHECK_GT(config_.grid, 1);
}

int StateEncoder::CellIndex(const Map& map, const Position& p) const {
  const int g = config_.grid;
  const int gx = static_cast<int>(
      Clamp(p.x / map.config.size_x * g, 0.0, static_cast<double>(g - 1)));
  const int gy = static_cast<int>(
      Clamp(p.y / map.config.size_y * g, 0.0, static_cast<double>(g - 1)));
  return gy * g + gx;
}

std::vector<float> StateEncoder::Encode(const Env& env) const {
  std::vector<float> state(static_cast<size_t>(StateSize()), 0.0f);
  EncodeInto(env, state.data());
  return state;
}

std::vector<float> StateEncoder::EncodeBatch(
    const std::vector<const Env*>& envs) const {
  CEWS_CHECK(!envs.empty()) << "EncodeBatch on an empty instance list";
  const size_t stride = static_cast<size_t>(StateSize());
  std::vector<float> batch(envs.size() * stride, 0.0f);
  for (size_t i = 0; i < envs.size(); ++i) {
    EncodeInto(*envs[i], batch.data() + i * stride);
  }
  return batch;
}

void StateEncoder::EncodeInto(const Env& env, float* state) const {
  const int g = config_.grid;
  const int plane = g * g;
  std::fill(state, state + kChannels * plane, 0.0f);
  const Map& map = env.map();

  // Channel 1 statics first: obstacles then stations (stations overwrite,
  // so a station adjacent to rubble stays visible).
  const double cell_w = map.config.size_x / g;
  const double cell_h = map.config.size_y / g;
  float* ch1 = state + plane;
  for (int gy = 0; gy < g; ++gy) {
    for (int gx = 0; gx < g; ++gx) {
      const Position center{(gx + 0.5) * cell_w, (gy + 0.5) * cell_h};
      if (map.InObstacle(center)) ch1[gy * g + gx] = -1.0f;
    }
  }
  for (const ChargingStation& s : map.stations) {
    ch1[CellIndex(map, s.pos)] = 2.0f;
  }
  // Remaining PoI data (accumulated per cell) and access times.
  float* ch2 = state + 2 * plane;
  const float inv_t = 1.0f / static_cast<float>(env.config().horizon);
  for (int p = 0; p < env.num_pois(); ++p) {
    const int cell = CellIndex(map, map.pois[static_cast<size_t>(p)].pos);
    ch1[cell] += static_cast<float>(env.poi_values()[static_cast<size_t>(p)]);
    ch2[cell] += static_cast<float>(env.poi_access()[static_cast<size_t>(p)]) *
                 inv_t;
  }
  // Channel 0: worker energy at worker cells.
  float* ch0 = state;
  for (const WorkerState& w : env.workers()) {
    ch0[CellIndex(map, w.pos)] +=
        static_cast<float>(w.energy / env.config().energy_capacity);
  }
}

}  // namespace cews::env
