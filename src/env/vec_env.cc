#include "env/vec_env.h"

#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "obs/metrics.h"

namespace cews::env {

std::vector<uint8_t> MoveValidityMask(const Env& env) {
  const int w_count = env.num_workers();
  const int num_moves = env.config().action_space.num_moves();
  std::vector<uint8_t> mask(static_cast<size_t>(w_count * num_moves), 0);
  for (int w = 0; w < w_count; ++w) {
    for (int m = 0; m < num_moves; ++m) {
      mask[static_cast<size_t>(w * num_moves + m)] =
          env.MoveValid(w, m) ? 1 : 0;
    }
  }
  return mask;
}

uint64_t VecEnv::InstanceSeed(uint64_t base_seed, int index) {
  // Mix the base into SplitMix64 state, advance `index + 1` draws, and take
  // the last: each index reads a statistically independent 64-bit word of
  // the stream anchored at base_seed. (A single draw over base ^ index would
  // keep adjacent indices one bit apart at the *input*; advancing the stream
  // also decorrelates the relation between (base, i) and (base + 1, i).)
  uint64_t state = base_seed;
  uint64_t seed = 0;
  for (int i = 0; i <= index; ++i) seed = SplitMix64(state);
  return seed;
}

VecEnv::VecEnv(const EnvConfig& config, const Map& map, int num_envs,
               bool auto_reset)
    : auto_reset_(auto_reset) {
  CEWS_CHECK_GT(num_envs, 0) << "VecEnv needs at least one instance";
  envs_.reserve(static_cast<size_t>(num_envs));
  for (int i = 0; i < num_envs; ++i) envs_.emplace_back(config, map);
}

VecEnv::VecEnv(const EnvConfig& config, std::vector<Map> maps,
               bool auto_reset)
    : auto_reset_(auto_reset) {
  CEWS_CHECK(!maps.empty()) << "VecEnv needs at least one instance";
  envs_.reserve(maps.size());
  for (Map& map : maps) envs_.emplace_back(config, std::move(map));
  for (const Env& e : envs_) {
    CEWS_CHECK_EQ(e.num_workers(), envs_.front().num_workers())
        << "all VecEnv instances must spawn the same number of workers";
  }
}

Result<VecEnv> VecEnv::CreateGenerated(const EnvConfig& config,
                                       const MapConfig& map_config,
                                       uint64_t base_seed, int num_envs,
                                       bool auto_reset) {
  if (num_envs <= 0) {
    return Status::InvalidArgument("num_envs must be positive, got " +
                                   std::to_string(num_envs));
  }
  std::vector<Map> maps;
  maps.reserve(static_cast<size_t>(num_envs));
  for (int i = 0; i < num_envs; ++i) {
    Rng rng(InstanceSeed(base_seed, i));
    CEWS_ASSIGN_OR_RETURN(Map map, GenerateMap(map_config, rng));
    maps.push_back(std::move(map));
  }
  return VecEnv(config, std::move(maps), auto_reset);
}

std::vector<const Env*> VecEnv::EnvPtrs() const {
  std::vector<const Env*> ptrs;
  ptrs.reserve(envs_.size());
  for (const Env& e : envs_) ptrs.push_back(&e);
  return ptrs;
}

void VecEnv::Reset() {
  for (Env& e : envs_) e.Reset();
  finished_.clear();
}

VecEnv::StepResults VecEnv::Step(
    const std::vector<std::vector<WorkerAction>>& actions) {
  CEWS_CHECK_EQ(actions.size(), envs_.size())
      << "VecEnv::Step needs one action vector per instance";
  static obs::Counter* const vec_steps = obs::GetCounter("vecenv.steps");
  static obs::Counter* const vec_episodes =
      obs::GetCounter("vecenv.episodes");
  vec_steps->Add(static_cast<uint64_t>(envs_.size()));
  StepResults results;
  results.per_env.reserve(envs_.size());
  for (size_t i = 0; i < envs_.size(); ++i) {
    Env& e = envs_[i];
    StepResult r = e.Step(actions[i]);
    if (r.done) {
      ++results.episodes_finished;
      vec_episodes->Increment();
      if (auto_reset_) {
        finished_.push_back(EpisodeMetrics{static_cast<int>(i), e.Kappa(),
                                           e.Xi(), e.Rho()});
        e.Reset();
      }
    }
    results.per_env.push_back(std::move(r));
  }
  return results;
}

bool VecEnv::AllDone() const {
  for (const Env& e : envs_) {
    if (!e.Done()) return false;
  }
  return true;
}

bool VecEnv::AnyDone() const {
  for (const Env& e : envs_) {
    if (e.Done()) return true;
  }
  return false;
}

double VecEnv::MeanKappa() const {
  double acc = 0.0;
  for (const Env& e : envs_) acc += e.Kappa();
  return acc / static_cast<double>(envs_.size());
}

double VecEnv::MeanXi() const {
  double acc = 0.0;
  for (const Env& e : envs_) acc += e.Xi();
  return acc / static_cast<double>(envs_.size());
}

double VecEnv::MeanRho() const {
  double acc = 0.0;
  for (const Env& e : envs_) acc += e.Rho();
  return acc / static_cast<double>(envs_.size());
}

std::vector<VecEnv::EpisodeMetrics> VecEnv::DrainFinishedEpisodes() {
  std::vector<EpisodeMetrics> drained = std::move(finished_);
  finished_.clear();
  return drained;
}

std::vector<uint8_t> VecEnv::MoveValidityMasks() const {
  const int w_count = num_workers();
  const int num_moves = envs_.front().config().action_space.num_moves();
  std::vector<uint8_t> masks;
  masks.reserve(envs_.size() *
                static_cast<size_t>(w_count * num_moves));
  for (const Env& e : envs_) {
    const std::vector<uint8_t> one = MoveValidityMask(e);
    masks.insert(masks.end(), one.begin(), one.end());
  }
  return masks;
}

}  // namespace cews::env
