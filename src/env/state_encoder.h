// Rasterizes the crowdsensing space into the 3-channel state matrix s_t
// described in Section V ("State"), the input of the CNN feature extractor.
#ifndef CEWS_ENV_STATE_ENCODER_H_
#define CEWS_ENV_STATE_ENCODER_H_

#include <vector>

#include "env/env.h"

namespace cews::env {

/// Grid resolution of the state tensor.
struct StateEncoderConfig {
  int grid = 20;
};

/// Stateless encoder: Env -> float[3, grid, grid].
///
/// Channel 0: worker energy budgets b_t^w (normalized by capacity) at worker
///            cells.
/// Channel 1: environment geometry & data — obstacles (-1), charging
///            stations (+2), remaining PoI values delta_t^p (accumulated).
/// Channel 2: PoI access times h_t(p), normalized by the horizon T (included
///            "to make sure the server is aware of the coverage fairness").
class StateEncoder {
 public:
  explicit StateEncoder(StateEncoderConfig config);

  /// Number of channels in the encoding (3).
  static constexpr int kChannels = 3;

  int grid() const { return config_.grid; }
  /// Flat size of one encoded state: kChannels * grid * grid.
  int StateSize() const { return kChannels * config_.grid * config_.grid; }
  /// Number of distinct grid cells (vocabulary of the spatial curiosity
  /// embedding).
  int NumCells() const { return config_.grid * config_.grid; }

  /// Maps a continuous position to a flat grid cell index in [0, NumCells).
  int CellIndex(const Map& map, const Position& p) const;

  /// Encodes the current environment state; output has StateSize() floats,
  /// laid out [channel][gy][gx].
  std::vector<float> Encode(const Env& env) const;

  /// Encodes one environment into caller-owned memory: writes exactly
  /// StateSize() floats at `out` (the batched path's per-instance slice).
  /// Byte-for-byte the same encoding as Encode().
  void EncodeInto(const Env& env, float* out) const;

  /// Encodes N environments into one contiguous [N, kChannels, grid, grid]
  /// batch (row-major; instance i occupies floats [i * StateSize(),
  /// (i+1) * StateSize())), ready to adopt as the policy network's input
  /// tensor. Instances may differ in map but must share the grid config.
  std::vector<float> EncodeBatch(const std::vector<const Env*>& envs) const;

 private:
  StateEncoderConfig config_;
};

}  // namespace cews::env

#endif  // CEWS_ENV_STATE_ENCODER_H_
