// The vehicular-crowdsensing environment: worker kinematics, the energy
// model (Eqns 1-3), both reward mechanisms (Eqns 18-20) and the three
// evaluation metrics kappa/xi/rho (Eqns 4-6).
#ifndef CEWS_ENV_ENV_H_
#define CEWS_ENV_ENV_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "env/action_space.h"
#include "env/map.h"

namespace cews::env {

/// Tunables of the OLDC task, defaults from Section VII-A.
struct EnvConfig {
  /// Task duration T (time slots per episode).
  int horizon = 100;
  /// Sensing range g^w (Definition 2).
  double sensing_range = 0.8;
  /// Data collection rate lambda (Eqn 1).
  double collection_rate = 0.2;
  /// Energy per unit of collected data, alpha (Eqn 3).
  double alpha = 1.0;
  /// Energy per unit of travel distance, beta (Eqn 3).
  double beta = 0.1;
  /// Initial energy budget b_0^w.
  double initial_energy = 40.0;
  /// Battery capacity (charging saturates here).
  double energy_capacity = 40.0;
  /// Effective charging range ("pump pipe length").
  double charge_range = 0.8;
  /// Energy gained per slot spent charging (sigma_t^w).
  double charge_rate = 10.0;
  /// Obstacle/boundary collision penalty tau (Eqn 18).
  double obstacle_penalty = 0.2;
  /// Sparse-reward data milestone epsilon_1 (5%).
  double epsilon1 = 0.05;
  /// Sparse-reward charge milestone epsilon_2 (40%).
  double epsilon2 = 0.40;
  /// Discrete route-planning options.
  ActionSpace action_space{};

  /// Optional per-worker overrides for heterogeneous fleets (Definition 2
  /// gives every worker its own g^w and b^w). When non-empty, each must
  /// have exactly one entry per worker; empty means "uniform", using the
  /// scalar fields above.
  std::vector<double> per_worker_sensing_range;
  std::vector<double> per_worker_initial_energy;

  /// Checks field ranges (positive horizon/ranges/rates, budgets within
  /// capacity) and, when `num_workers` > 0, that the per-worker override
  /// vectors are empty or exactly that long. Returns InvalidArgument
  /// describing the first problem found. Env's constructor CHECKs this;
  /// DrlCews::Create surfaces it as a Status.
  Status Validate(size_t num_workers = 0) const;
};

/// Mutable per-worker state (Definition 2 plus bookkeeping).
struct WorkerState {
  Position pos;
  double energy = 0.0;            // b_t^w
  double collected_total = 0.0;   // Q_t^w
  double energy_used_total = 0.0; // E_t^w
  double charged_total = 0.0;     // cumulative sigma
  int collisions = 0;

  // Sparse-reward trackers (Eqn 18).
  double next_collect_milestone = 0.0;
  double charge_accum = 0.0;
};

/// Everything observable about one environment transition.
struct StepResult {
  /// Mean sparse extrinsic reward r_t^ext (Eqn 19).
  double sparse_reward = 0.0;
  /// Dense reward (Eqn 20) used by the Edics/DPPO baselines.
  double dense_reward = 0.0;
  /// Per-worker components.
  std::vector<double> collected;    // q_t^w
  std::vector<double> energy_used;  // e_t^w
  std::vector<double> charged;      // sigma_t^w
  std::vector<double> per_worker_sparse;
  std::vector<bool> collided;
  std::vector<bool> charging;
  /// Episode finished (t == T).
  bool done = false;
};

/// The OLDC environment. Deterministic given a Map: Reset() restores the
/// exact initial scenario, so competing algorithms are compared on identical
/// instances.
class Env {
 public:
  Env(EnvConfig config, Map map);

  /// Restores initial PoI data, access times, worker positions/energy and
  /// clears trajectories.
  void Reset();

  /// An opaque copy of the mutable environment state; Restore() rolls back
  /// to it exactly. Lets model-based planners simulate candidate action
  /// sequences on the real dynamics without a full Env copy.
  struct Snapshot {
    std::vector<WorkerState> workers;
    std::vector<double> poi_values;
    std::vector<int> poi_access;
    int t = 0;
  };

  /// Captures the current mutable state (trajectories are not included).
  Snapshot Save() const;

  /// Rolls the environment back to a snapshot taken from this Env.
  void Restore(const Snapshot& snapshot);

  /// Advances one time slot. `actions` must have one entry per worker.
  StepResult Step(const std::vector<WorkerAction>& actions);

  int num_workers() const { return static_cast<int>(workers_.size()); }
  int num_pois() const { return static_cast<int>(map_.pois.size()); }
  int num_stations() const { return static_cast<int>(map_.stations.size()); }
  int t() const { return t_; }
  bool Done() const { return t_ >= config_.horizon; }

  /// Average data collection ratio kappa (Eqn 4; see DESIGN.md on the 1/W
  /// typo): fraction of all initial data collected so far.
  double Kappa() const;
  /// Average remaining data ratio xi (Eqn 5): mean of delta_t / delta_0.
  double Xi() const;
  /// Energy efficiency rho (Eqn 6): Jain-fairness-weighted mean of Q/E.
  double Rho() const;

  const EnvConfig& config() const { return config_; }
  const Map& map() const { return map_; }
  const std::vector<WorkerState>& workers() const { return workers_; }
  /// Remaining data values delta_t^p.
  const std::vector<double>& poi_values() const { return poi_values_; }
  /// Access times h_t(p) (state channel 3, Section V).
  const std::vector<int>& poi_access() const { return poi_access_; }
  /// Per-worker visited positions, one entry per slot, for Fig. 2(c)/Fig. 9.
  const std::vector<std::vector<Position>>& trajectories() const {
    return trajectories_;
  }

  /// Sensing range g^w of worker w (Definition 2).
  double SensingRange(int w) const;
  /// Initial energy budget b_0^w of worker w.
  double InitialEnergy(int w) const;

  /// Resulting position of `move` for worker w (ignores validity).
  Position MoveTarget(int w, int move) const;
  /// Valid route-planning action per Section V: in bounds, no obstacle
  /// crossing, energy not exhausted.
  bool MoveValid(int w, int move) const;
  /// Data a worker would collect this slot sensing from position p (Eqn 1,
  /// against current delta_t). Used by the Greedy and D&C planners; the
  /// one-argument form uses the uniform sensing range.
  double PotentialCollection(const Position& p) const;
  double PotentialCollection(const Position& p, double sensing_range) const;
  /// True when p is within charging range of any station.
  bool CanChargeAt(const Position& p) const;
  /// Index of the nearest charging station to p.
  int NearestStation(const Position& p) const;

 private:
  EnvConfig config_;
  Map map_;
  std::vector<WorkerState> workers_;
  std::vector<double> poi_values_;
  std::vector<int> poi_access_;
  std::vector<std::vector<Position>> trajectories_;
  std::vector<double> sensing_range_;   // resolved per worker
  std::vector<double> initial_energy_;  // resolved per worker
  int t_ = 0;
  double total_initial_data_ = 0.0;
};

}  // namespace cews::env

#endif  // CEWS_ENV_ENV_H_
