#include "env/pathfinding.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/check.h"
#include "common/math_util.h"

namespace cews::env {

namespace {
constexpr int kDx[8] = {1, 1, 0, -1, -1, -1, 0, 1};
constexpr int kDy[8] = {0, 1, 1, 1, 0, -1, -1, -1};
constexpr double kSqrt2 = 1.41421356237309504880;

double MoveCost(int dir) { return (dir % 2 == 0) ? 1.0 : kSqrt2; }
}  // namespace

PathPlanner::PathPlanner(const Map& map, int resolution)
    : map_(&map), resolution_(resolution) {
  CEWS_CHECK_GT(resolution, 1);
  cell_w_ = map.config.size_x / resolution_;
  cell_h_ = map.config.size_y / resolution_;
  const int n = resolution_ * resolution_;
  free_.assign(static_cast<size_t>(n), false);
  for (int cell = 0; cell < n; ++cell) {
    free_[static_cast<size_t>(cell)] = !map.InObstacle(CenterOf(cell));
  }
  neighbor_mask_.assign(static_cast<size_t>(n), 0);
  for (int cell = 0; cell < n; ++cell) {
    if (!free_[static_cast<size_t>(cell)]) continue;
    const int x = cell % resolution_;
    const int y = cell / resolution_;
    uint8_t mask = 0;
    for (int d = 0; d < 8; ++d) {
      const int nx = x + kDx[d];
      const int ny = y + kDy[d];
      if (nx < 0 || nx >= resolution_ || ny < 0 || ny >= resolution_) {
        continue;
      }
      const int neighbor = ny * resolution_ + nx;
      if (!free_[static_cast<size_t>(neighbor)]) continue;
      if (!map.SegmentFree(CenterOf(cell), CenterOf(neighbor))) continue;
      mask |= static_cast<uint8_t>(1u << d);
    }
    neighbor_mask_[static_cast<size_t>(cell)] = mask;
  }
}

int PathPlanner::CellOf(const Position& p) const {
  const int x = static_cast<int>(Clamp(p.x / cell_w_, 0.0, resolution_ - 1.0));
  const int y = static_cast<int>(Clamp(p.y / cell_h_, 0.0, resolution_ - 1.0));
  return y * resolution_ + x;
}

Position PathPlanner::CenterOf(int cell) const {
  const int x = cell % resolution_;
  const int y = cell / resolution_;
  return {(x + 0.5) * cell_w_, (y + 0.5) * cell_h_};
}

bool PathPlanner::CellFree(const Position& p) const {
  return free_[static_cast<size_t>(CellOf(p))];
}

int PathPlanner::NearestFreeCell(const Position& p) const {
  const int start = CellOf(p);
  if (free_[static_cast<size_t>(start)]) return start;
  // BFS ring search for the nearest free cell.
  std::vector<bool> seen(free_.size(), false);
  std::queue<int> frontier;
  frontier.push(start);
  seen[static_cast<size_t>(start)] = true;
  while (!frontier.empty()) {
    const int cell = frontier.front();
    frontier.pop();
    if (free_[static_cast<size_t>(cell)]) return cell;
    const int x = cell % resolution_;
    const int y = cell / resolution_;
    for (int d = 0; d < 8; ++d) {
      const int nx = x + kDx[d];
      const int ny = y + kDy[d];
      if (nx < 0 || nx >= resolution_ || ny < 0 || ny >= resolution_) {
        continue;
      }
      const int neighbor = ny * resolution_ + nx;
      if (!seen[static_cast<size_t>(neighbor)]) {
        seen[static_cast<size_t>(neighbor)] = true;
        frontier.push(neighbor);
      }
    }
  }
  return start;  // fully blocked map; degrade gracefully
}

std::optional<std::vector<Position>> PathPlanner::FindPath(
    const Position& from, const Position& to) const {
  const int start = NearestFreeCell(from);
  const int goal = NearestFreeCell(to);
  if (start == goal) {
    return std::vector<Position>{to};
  }
  const int goal_x = goal % resolution_;
  const int goal_y = goal / resolution_;
  auto heuristic = [&](int cell) {
    const int x = cell % resolution_;
    const int y = cell / resolution_;
    const int dx = std::abs(x - goal_x);
    const int dy = std::abs(y - goal_y);
    // Octile distance.
    return (kSqrt2 - 1.0) * std::min(dx, dy) + std::max(dx, dy);
  };

  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> g(free_.size(), inf);
  std::vector<int> parent(free_.size(), -1);
  using Entry = std::pair<double, int>;  // (f, cell)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> open;
  g[static_cast<size_t>(start)] = 0.0;
  open.emplace(heuristic(start), start);
  while (!open.empty()) {
    const auto [f, cell] = open.top();
    open.pop();
    if (cell == goal) break;
    if (f > g[static_cast<size_t>(cell)] + heuristic(cell) + 1e-9) {
      continue;  // stale entry
    }
    const uint8_t mask = neighbor_mask_[static_cast<size_t>(cell)];
    const int x = cell % resolution_;
    const int y = cell / resolution_;
    for (int d = 0; d < 8; ++d) {
      if ((mask & (1u << d)) == 0) continue;
      const int neighbor = (y + kDy[d]) * resolution_ + (x + kDx[d]);
      const double tentative = g[static_cast<size_t>(cell)] + MoveCost(d);
      if (tentative < g[static_cast<size_t>(neighbor)]) {
        g[static_cast<size_t>(neighbor)] = tentative;
        parent[static_cast<size_t>(neighbor)] = cell;
        open.emplace(tentative + heuristic(neighbor), neighbor);
      }
    }
  }
  if (g[static_cast<size_t>(goal)] == inf) return std::nullopt;

  std::vector<Position> waypoints;
  for (int cell = goal; cell != start; cell = parent[static_cast<size_t>(cell)]) {
    waypoints.push_back(CenterOf(cell));
  }
  std::reverse(waypoints.begin(), waypoints.end());
  if (waypoints.empty()) {
    waypoints.push_back(to);
  } else {
    waypoints.back() = to;  // land exactly on the target
  }
  return waypoints;
}

double PathPlanner::PathLength(const Position& from,
                               const Position& to) const {
  const auto path = FindPath(from, to);
  if (!path.has_value()) return std::numeric_limits<double>::infinity();
  double length = 0.0;
  Position prev = from;
  for (const Position& p : *path) {
    length += Distance(prev, p);
    prev = p;
  }
  return length;
}

bool PathPlanner::Reachable(const Position& from, const Position& to) const {
  return FindPath(from, to).has_value();
}

Position PathPlanner::NextWaypoint(const Position& from,
                                   const Position& to) const {
  const auto path = FindPath(from, to);
  if (!path.has_value() || path->empty()) return to;
  // Path smoothing: return the farthest waypoint still in line of sight, so
  // callers with coarse step sizes get a target worth moving toward instead
  // of the adjacent fine-grid cell.
  Position best = path->front();
  bool any = false;
  for (const Position& p : *path) {
    if (Distance(from, p) <= 1e-6) continue;
    if (map_->SegmentFree(from, p)) {
      best = p;
      any = true;
    } else if (any) {
      break;  // visibility is (near-)monotone along the path
    }
  }
  if (!any) return path->front();
  return best;
}

}  // namespace cews::env
