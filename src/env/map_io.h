// Text (de)serialization of Map instances, so scenarios can be versioned,
// shared and replayed exactly across machines and runs.
#ifndef CEWS_ENV_MAP_IO_H_
#define CEWS_ENV_MAP_IO_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "env/map.h"

namespace cews::env {

/// Serializes a map as a line-oriented text document:
///   cews-map 1
///   size <Lx> <Ly>
///   obstacle <x0> <y0> <x1> <y1>
///   poi <x> <y> <delta0>
///   station <x> <y>
///   spawn <x> <y>
/// Coordinates round-trip exactly (printed with max precision).
std::string MapToString(const Map& map);

/// Parses a document produced by MapToString. Fails with InvalidArgument on
/// malformed input, unknown directives, or entities violating the map
/// invariants (PoIs inside obstacles / out of bounds, non-positive values).
Result<Map> MapFromString(const std::string& text);

/// Writes MapToString(map) to `path`.
Status SaveMap(const Map& map, const std::string& path);

/// Reads and parses a map file.
Result<Map> LoadMap(const std::string& path);

}  // namespace cews::env

#endif  // CEWS_ENV_MAP_IO_H_
