#include "env/action_space.h"

#include <cmath>

#include "common/check.h"

namespace cews::env {

namespace {
// Unit headings: E, NE, N, NW, W, SW, S, SE.
constexpr double kInvSqrt2 = 0.70710678118654752440;
constexpr double kHeadings[8][2] = {
    {1.0, 0.0},        {kInvSqrt2, kInvSqrt2},   {0.0, 1.0},
    {-kInvSqrt2, kInvSqrt2}, {-1.0, 0.0},        {-kInvSqrt2, -kInvSqrt2},
    {0.0, -1.0},       {kInvSqrt2, -kInvSqrt2},
};
}  // namespace

ActionSpace::ActionSpace(std::vector<double> step_lengths)
    : step_lengths_(std::move(step_lengths)) {
  CEWS_CHECK(!step_lengths_.empty());
  double prev = 0.0;
  for (double s : step_lengths_) {
    CEWS_CHECK_GT(s, prev) << "step lengths must be positive ascending";
    prev = s;
  }
}

Position ActionSpace::Delta(int move_index) const {
  CEWS_CHECK_GE(move_index, 0);
  CEWS_CHECK_LT(move_index, num_moves());
  if (move_index == 0) return {0.0, 0.0};
  const int i = move_index - 1;
  const int heading = i % 8;
  const double len = step_lengths_[static_cast<size_t>(i / 8)];
  return {kHeadings[heading][0] * len, kHeadings[heading][1] * len};
}

double ActionSpace::StepLength(int move_index) const {
  CEWS_CHECK_GE(move_index, 0);
  CEWS_CHECK_LT(move_index, num_moves());
  if (move_index == 0) return 0.0;
  return step_lengths_[static_cast<size_t>((move_index - 1) / 8)];
}

}  // namespace cews::env
