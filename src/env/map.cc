#include "env/map.h"

#include <algorithm>
#include <string>

namespace cews::env {

bool Map::InObstacle(const Position& p) const {
  for (const Rect& r : obstacles) {
    if (r.Contains(p)) return true;
  }
  return false;
}

bool Map::InBounds(const Position& p) const {
  return p.x > 0.0 && p.x < config.size_x && p.y > 0.0 && p.y < config.size_y;
}

bool Map::SegmentFree(const Position& a, const Position& b) const {
  if (!InBounds(b)) return false;
  for (const Rect& r : obstacles) {
    if (r.IntersectsSegment(a, b)) return false;
  }
  return true;
}

double Map::TotalInitialData() const {
  double total = 0.0;
  for (const Poi& p : pois) total += p.initial_value;
  return total;
}

namespace {

Status ValidateConfig(const MapConfig& c) {
  if (c.size_x <= 0.0 || c.size_y <= 0.0) {
    return Status::InvalidArgument("map size must be positive");
  }
  if (c.num_pois <= 0) return Status::InvalidArgument("num_pois must be > 0");
  if (c.num_stations < 0 || c.num_workers <= 0 || c.num_obstacles < 0 ||
      c.num_clusters <= 0) {
    return Status::InvalidArgument("entity counts out of range");
  }
  if (c.uniform_fraction < 0.0 || c.uniform_fraction > 1.0 ||
      c.corner_fraction < 0.0 || c.corner_fraction > 1.0 ||
      c.uniform_fraction + c.corner_fraction > 1.0) {
    return Status::InvalidArgument("PoI fractions must partition [0, 1]");
  }
  if (c.hard_corner &&
      (c.corner_size + 2.0 > std::min(c.size_x, c.size_y) ||
       c.corner_gap + 2.0 * c.corner_wall >= c.corner_size)) {
    return Status::InvalidArgument("corner room does not fit the map");
  }
  return Status::OK();
}

/// Walls of the corner room at the bottom-right, with a gap in the top wall:
///
///    ___  <- gap in top wall (the narrow passageway)
///   |...|
///   |...|  room interior holds `corner_fraction` of the PoIs
///   +---+  bottom/right closed by the space boundary
void AddCornerRoom(const MapConfig& c, std::vector<Rect>* obstacles,
                   Rect* interior) {
  const double s = c.corner_size;
  const double w = c.corner_wall;
  const double x0 = c.size_x - s;
  const double y1 = s;  // room spans y in (0, s]
  // Left wall: full height.
  obstacles->push_back(Rect{x0, 0.0, x0 + w, y1});
  // Top wall in two pieces leaving a central gap.
  const double inner_x0 = x0 + w;
  const double span = c.size_x - inner_x0;
  const double gap_lo = inner_x0 + (span - c.corner_gap) / 2.0;
  const double gap_hi = gap_lo + c.corner_gap;
  obstacles->push_back(Rect{inner_x0, y1 - w, gap_lo, y1});
  obstacles->push_back(Rect{gap_hi, y1 - w, c.size_x, y1});
  *interior = Rect{inner_x0 + 0.2, 0.2, c.size_x - 0.2, y1 - w - 0.2};
}

}  // namespace

Result<Map> GenerateMap(const MapConfig& config, Rng& rng) {
  CEWS_RETURN_IF_ERROR(ValidateConfig(config));
  Map map;
  map.config = config;

  Rect corner_interior{};
  if (config.hard_corner) {
    AddCornerRoom(config, &map.obstacles, &corner_interior);
  }

  // Random rectangular obstacles (collapsed buildings), kept away from the
  // corner room so the passage stays the only entrance.
  const double margin = 1.0;
  for (int i = 0; i < config.num_obstacles; ++i) {
    for (int attempt = 0; attempt < 100; ++attempt) {
      const double w =
          rng.Uniform(config.obstacle_min_size, config.obstacle_max_size);
      const double h =
          rng.Uniform(config.obstacle_min_size, config.obstacle_max_size);
      const double x0 = rng.Uniform(margin, config.size_x - margin - w);
      const double y0 = rng.Uniform(margin, config.size_y - margin - h);
      const Rect r{x0, y0, x0 + w, y0 + h};
      bool clash = false;
      if (config.hard_corner) {
        // Keep clear of the room footprint plus a margin.
        const Rect room{config.size_x - config.corner_size - margin, 0.0,
                        config.size_x, config.corner_size + margin};
        clash = !(r.x1 < room.x0 || r.x0 > room.x1 || r.y1 < room.y0 ||
                  r.y0 > room.y1);
      }
      if (!clash) {
        map.obstacles.push_back(r);
        break;
      }
    }
  }

  auto sample_free = [&](int max_attempts, Position* out) {
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      Position p{rng.Uniform(0.2, config.size_x - 0.2),
                 rng.Uniform(0.2, config.size_y - 0.2)};
      if (!map.InObstacle(p)) {
        *out = p;
        return true;
      }
    }
    return false;
  };

  // Cluster centers for the Gaussian mixture, outside obstacles.
  std::vector<Position> centers;
  for (int i = 0; i < config.num_clusters; ++i) {
    Position c;
    if (!sample_free(200, &c)) {
      return Status::Internal("could not place PoI cluster center");
    }
    centers.push_back(c);
  }

  const int corner_count =
      config.hard_corner
          ? static_cast<int>(config.corner_fraction * config.num_pois)
          : 0;
  const int uniform_count =
      static_cast<int>(config.uniform_fraction * config.num_pois);

  auto add_poi = [&](const Position& p) {
    map.pois.push_back(Poi{p, rng.Uniform(0.05, 1.0)});
  };

  // Corner-room PoIs (the embraced sensors behind the passage).
  for (int i = 0; i < corner_count; ++i) {
    const Position p{rng.Uniform(corner_interior.x0, corner_interior.x1),
                     rng.Uniform(corner_interior.y0, corner_interior.y1)};
    add_poi(p);
  }
  // Uniform background PoIs.
  for (int i = 0; i < uniform_count; ++i) {
    Position p;
    if (!sample_free(200, &p)) {
      return Status::Internal("could not place uniform PoI");
    }
    add_poi(p);
  }
  // Clustered PoIs.
  while (static_cast<int>(map.pois.size()) < config.num_pois) {
    const Position& c = centers[rng.UniformInt(centers.size())];
    bool placed = false;
    for (int attempt = 0; attempt < 50 && !placed; ++attempt) {
      Position p{c.x + rng.Gaussian(0.0, config.cluster_sigma),
                 c.y + rng.Gaussian(0.0, config.cluster_sigma)};
      if (map.InBounds(p) && !map.InObstacle(p)) {
        add_poi(p);
        placed = true;
      }
    }
    if (!placed) {
      Position p;
      if (!sample_free(200, &p)) {
        return Status::Internal("could not place clustered PoI");
      }
      add_poi(p);
    }
  }

  // Charging stations, mutually spaced ("multiple randomly distributed
  // charging stations", Section I). Outside the corner room: charging inside
  // the hard area would defeat its purpose.
  const double min_station_gap = std::min(config.size_x, config.size_y) / 5.0;
  for (int i = 0; i < config.num_stations; ++i) {
    bool placed = false;
    for (int attempt = 0; attempt < 300 && !placed; ++attempt) {
      Position p;
      if (!sample_free(50, &p)) break;
      if (config.hard_corner && p.x > config.size_x - config.corner_size &&
          p.y < config.corner_size) {
        continue;
      }
      bool far_enough = true;
      for (const ChargingStation& s : map.stations) {
        if (Distance(s.pos, p) < min_station_gap) {
          far_enough = false;
          break;
        }
      }
      if (far_enough) {
        map.stations.push_back(ChargingStation{p});
        placed = true;
      }
    }
    if (!placed) {
      // Relax the spacing rather than fail on crowded maps.
      Position p;
      if (!sample_free(300, &p)) {
        return Status::Internal("could not place charging station");
      }
      map.stations.push_back(ChargingStation{p});
    }
  }

  // Worker spawn points.
  for (int i = 0; i < config.num_workers; ++i) {
    Position p;
    if (!sample_free(300, &p)) {
      return Status::Internal("could not place worker spawn");
    }
    if (config.hard_corner && p.x > config.size_x - config.corner_size &&
        p.y < config.corner_size) {
      // Never spawn inside the hard corner; retry once uniformly.
      if (!sample_free(300, &p)) {
        return Status::Internal("could not place worker spawn");
      }
    }
    map.worker_spawns.push_back(p);
  }

  return map;
}

}  // namespace cews::env
