#include "env/map_io.h"

#include <fstream>
#include <limits>
#include <sstream>

namespace cews::env {

namespace {
constexpr const char* kMagic = "cews-map";
constexpr int kVersion = 1;
}  // namespace

std::string MapToString(const Map& map) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << kMagic << " " << kVersion << "\n";
  os << "size " << map.config.size_x << " " << map.config.size_y << "\n";
  for (const Rect& r : map.obstacles) {
    os << "obstacle " << r.x0 << " " << r.y0 << " " << r.x1 << " " << r.y1
       << "\n";
  }
  for (const Poi& p : map.pois) {
    os << "poi " << p.pos.x << " " << p.pos.y << " " << p.initial_value
       << "\n";
  }
  for (const ChargingStation& s : map.stations) {
    os << "station " << s.pos.x << " " << s.pos.y << "\n";
  }
  for (const Position& p : map.worker_spawns) {
    os << "spawn " << p.x << " " << p.y << "\n";
  }
  return os.str();
}

Result<Map> MapFromString(const std::string& text) {
  std::istringstream in(text);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kMagic) {
    return Status::InvalidArgument("not a cews-map document");
  }
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported cews-map version " +
                                   std::to_string(version));
  }
  Map map;
  bool have_size = false;
  std::string directive;
  int line_no = 1;
  while (in >> directive) {
    ++line_no;
    const std::string where = " (entry " + std::to_string(line_no) + ")";
    if (directive == "size") {
      if (!(in >> map.config.size_x >> map.config.size_y)) {
        return Status::InvalidArgument("bad size directive" + where);
      }
      if (map.config.size_x <= 0.0 || map.config.size_y <= 0.0) {
        return Status::InvalidArgument("non-positive map size" + where);
      }
      have_size = true;
    } else if (directive == "obstacle") {
      Rect r;
      if (!(in >> r.x0 >> r.y0 >> r.x1 >> r.y1)) {
        return Status::InvalidArgument("bad obstacle directive" + where);
      }
      if (r.x1 < r.x0 || r.y1 < r.y0) {
        return Status::InvalidArgument("inverted obstacle rectangle" + where);
      }
      map.obstacles.push_back(r);
    } else if (directive == "poi") {
      Poi p;
      if (!(in >> p.pos.x >> p.pos.y >> p.initial_value)) {
        return Status::InvalidArgument("bad poi directive" + where);
      }
      if (p.initial_value <= 0.0) {
        return Status::InvalidArgument("poi value must be positive" + where);
      }
      map.pois.push_back(p);
    } else if (directive == "station") {
      ChargingStation s;
      if (!(in >> s.pos.x >> s.pos.y)) {
        return Status::InvalidArgument("bad station directive" + where);
      }
      map.stations.push_back(s);
    } else if (directive == "spawn") {
      Position p;
      if (!(in >> p.x >> p.y)) {
        return Status::InvalidArgument("bad spawn directive" + where);
      }
      map.worker_spawns.push_back(p);
    } else {
      return Status::InvalidArgument("unknown directive '" + directive + "'" +
                                     where);
    }
  }
  if (!have_size) return Status::InvalidArgument("missing size directive");
  if (map.pois.empty()) return Status::InvalidArgument("map has no PoIs");
  if (map.worker_spawns.empty()) {
    return Status::InvalidArgument("map has no worker spawns");
  }
  // Cross-entity invariants (mirrors GenerateMap's guarantees).
  for (const Poi& p : map.pois) {
    if (!map.InBounds(p.pos)) {
      return Status::InvalidArgument("poi out of bounds");
    }
    if (map.InObstacle(p.pos)) {
      return Status::InvalidArgument("poi inside an obstacle");
    }
  }
  for (const Position& p : map.worker_spawns) {
    if (!map.InBounds(p) || map.InObstacle(p)) {
      return Status::InvalidArgument("invalid worker spawn");
    }
  }
  for (const ChargingStation& s : map.stations) {
    if (!map.InBounds(s.pos) || map.InObstacle(s.pos)) {
      return Status::InvalidArgument("invalid charging station");
    }
  }
  return map;
}

Status SaveMap(const Map& map, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << MapToString(map);
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<Map> LoadMap(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return MapFromString(buffer.str());
}

}  // namespace cews::env
