// Discrete factored action space: per-worker route planning v and energy
// charging u (Section V, "Action").
#ifndef CEWS_ENV_ACTION_SPACE_H_
#define CEWS_ENV_ACTION_SPACE_H_

#include <vector>

#include "env/geometry.h"

namespace cews::env {

/// Route-planning action set: 8 headings x `num_step_lengths` plus "stay".
/// The maximum step length is the worker's fixed per-slot travel bound
/// ("a worker's traveling distance has a fixed maximum given a discretized
/// time slot", Definition 1).
class ActionSpace {
 public:
  /// `step_lengths` must be non-empty, positive, ascending.
  explicit ActionSpace(std::vector<double> step_lengths = {0.5, 1.0});

  /// Number of discrete route-planning options (stay is index 0).
  int num_moves() const {
    return 1 + 8 * static_cast<int>(step_lengths_.size());
  }

  /// Displacement (dx, dy) of move index i; index 0 is (0, 0).
  Position Delta(int move_index) const;

  /// Length of the step taken by move index i.
  double StepLength(int move_index) const;

  /// Largest per-slot travel distance.
  double max_step() const { return step_lengths_.back(); }

  const std::vector<double>& step_lengths() const { return step_lengths_; }

 private:
  std::vector<double> step_lengths_;
};

/// One worker's joint action a_t^w = [u_t^w, v_t^w] (Eqn 9).
struct WorkerAction {
  /// Route-planning decision v: index into ActionSpace moves.
  int move = 0;
  /// Energy-charging decision u: request charging this slot.
  bool charge = false;
};

}  // namespace cews::env

#endif  // CEWS_ENV_ACTION_SPACE_H_
