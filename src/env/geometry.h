// 2-D geometry primitives for the crowdsensing space (Definition 1).
#ifndef CEWS_ENV_GEOMETRY_H_
#define CEWS_ENV_GEOMETRY_H_

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace cews::env {

/// A point in the crowdsensing space L = {(x, y) | 0 < x < Lx, 0 < y < Ly}.
struct Position {
  double x = 0.0;
  double y = 0.0;

  bool operator==(const Position& o) const { return x == o.x && y == o.y; }
};

/// Euclidean distance d(i, j) between two positions (Definition 1).
inline double Distance(const Position& a, const Position& b) {
  return cews::Distance(a.x, a.y, b.x, b.y);
}

/// Axis-aligned rectangle; models obstacles ("regions which workers cannot
/// enter or go through", Section III-A).
struct Rect {
  double x0 = 0.0, y0 = 0.0, x1 = 0.0, y1 = 0.0;  // x0<=x1, y0<=y1

  double width() const { return x1 - x0; }
  double height() const { return y1 - y0; }

  /// True when p lies inside (boundary inclusive).
  bool Contains(const Position& p) const {
    return p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
  }

  /// True when the segment a->b passes through this rectangle
  /// (Liang-Barsky clipping).
  bool IntersectsSegment(const Position& a, const Position& b) const {
    const double dx = b.x - a.x;
    const double dy = b.y - a.y;
    double t_min = 0.0, t_max = 1.0;
    auto clip = [&](double p, double q) {
      // Moving along p; boundary at q. p==0: parallel, inside iff q>=0.
      if (p == 0.0) return q >= 0.0;
      const double r = q / p;
      if (p < 0.0) {
        if (r > t_max) return false;
        if (r > t_min) t_min = r;
      } else {
        if (r < t_min) return false;
        if (r < t_max) t_max = r;
      }
      return true;
    };
    if (!clip(-dx, a.x - x0)) return false;
    if (!clip(dx, x1 - a.x)) return false;
    if (!clip(-dy, a.y - y0)) return false;
    if (!clip(dy, y1 - a.y)) return false;
    return t_min <= t_max;
  }
};

}  // namespace cews::env

#endif  // CEWS_ENV_GEOMETRY_H_
