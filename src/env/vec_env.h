// Vectorized environment: N independently-seeded Env instances stepped in
// lockstep, the substrate of the batched acting path. One VecEnv::Step call
// advances every instance, so the caller can run a single batched policy
// Forward over all N states instead of N batch-1 calls — the batching that
// lets the intra-op kernel runtime (common/thread_pool.h) pay off during
// rollouts, not just during learning.
#ifndef CEWS_ENV_VEC_ENV_H_
#define CEWS_ENV_VEC_ENV_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "env/env.h"
#include "env/map.h"

namespace cews::env {

/// Flat [W * num_moves] 0/1 move-validity mask of one environment
/// (Env::MoveValid per worker and move). 1 = the factored policy head may
/// pick this route-planning option.
std::vector<uint8_t> MoveValidityMask(const Env& env);

/// N lockstep Env instances with per-instance auto-reset and aggregated
/// kappa/xi/rho metrics.
///
/// Determinism contract: an Env is deterministic given its Map, so a VecEnv
/// is deterministic given its instance maps and the action stream. With
/// auto_reset off and a uniform horizon, all instances finish together
/// (AllDone()), which is how the trainers drive fixed-length episodes; with
/// auto_reset on, an instance that reports done has its end-of-episode
/// metrics recorded (finished_episodes()) and is reset in place, so the
/// *next* state the caller encodes is the fresh episode's initial state
/// while the returned StepResult keeps done = true (gym-style auto-reset).
class VecEnv {
 public:
  /// Seed for instance `index` derived from `base_seed` via SplitMix64.
  /// Unlike `base_seed + index`, adjacent indices land in statistically
  /// unrelated regions of the seed space, so per-instance generated maps
  /// (CreateGenerated) have uncorrelated PoI layouts.
  static uint64_t InstanceSeed(uint64_t base_seed, int index);

  /// `num_envs` instances all running copies of one map (the trainers'
  /// configuration: identical scenario, independent stochasticity upstream).
  VecEnv(const EnvConfig& config, const Map& map, int num_envs,
         bool auto_reset = false);

  /// One instance per entry of `maps` (heterogeneous fleet of scenarios).
  /// All maps must spawn the same number of workers.
  VecEnv(const EnvConfig& config, std::vector<Map> maps,
         bool auto_reset = false);

  /// `num_envs` instances over procedurally generated maps, map i seeded
  /// with InstanceSeed(base_seed, i). Fails when generation fails for any
  /// instance (inconsistent MapConfig, crowded space).
  static Result<VecEnv> CreateGenerated(const EnvConfig& config,
                                        const MapConfig& map_config,
                                        uint64_t base_seed, int num_envs,
                                        bool auto_reset = false);

  /// Number of instances N.
  int size() const { return static_cast<int>(envs_.size()); }
  /// Workers per instance (uniform across instances, checked at build).
  int num_workers() const { return envs_.front().num_workers(); }

  const Env& env(int i) const { return envs_[static_cast<size_t>(i)]; }
  Env& env(int i) { return envs_[static_cast<size_t>(i)]; }

  /// Instance pointers in index order (StateEncoder::EncodeBatch input).
  std::vector<const Env*> EnvPtrs() const;

  /// Lockstep reset of every instance; clears finished-episode records.
  void Reset();

  /// Everything one lockstep step produced.
  struct StepResults {
    /// Per-instance transition results, index-aligned with env(i).
    std::vector<StepResult> per_env;
    /// Instances whose episode ended this step (== auto-resets performed
    /// when auto_reset is on).
    int episodes_finished = 0;
  };

  /// Advances every instance one slot. `actions[i]` must hold one
  /// WorkerAction per worker for instance i. With auto_reset off it is an
  /// error to step an already-done instance (same contract as Env::Step).
  StepResults Step(const std::vector<std::vector<WorkerAction>>& actions);

  /// True when every / any instance's current episode has ended (only
  /// meaningful with auto_reset off; auto-reset instances are never done).
  bool AllDone() const;
  bool AnyDone() const;

  /// Aggregated metrics: mean of the per-instance values over the *current*
  /// episodes (Eqns 4-6 of the paper, averaged over the batch).
  double MeanKappa() const;
  double MeanXi() const;
  double MeanRho() const;

  /// End-of-episode metrics captured at auto-reset time.
  struct EpisodeMetrics {
    int env_index = 0;
    double kappa = 0.0;
    double xi = 1.0;
    double rho = 0.0;
  };

  /// Episodes finished (and auto-reset) since the last Reset()/drain.
  const std::vector<EpisodeMetrics>& finished_episodes() const {
    return finished_;
  }
  std::vector<EpisodeMetrics> DrainFinishedEpisodes();

  /// Concatenated [N * W * num_moves] 0/1 move-validity masks, instance
  /// major — the per-env mask input of agents::SamplePolicyBatch.
  std::vector<uint8_t> MoveValidityMasks() const;

  bool auto_reset() const { return auto_reset_; }

 private:
  std::vector<Env> envs_;
  bool auto_reset_ = false;
  std::vector<EpisodeMetrics> finished_;
};

}  // namespace cews::env

#endif  // CEWS_ENV_VEC_ENV_H_
