// Crowdsensing-space instances: PoIs, obstacles, charging stations, worker
// spawn points. Mirrors the paper's simulated post-earthquake scenario
// (Fig. 2b): Gaussian-mixture PoI clusters plus a uniform background, random
// rectangular collapsed buildings, and a hard-exploration corner room
// reachable only through a narrow passageway.
#ifndef CEWS_ENV_MAP_H_
#define CEWS_ENV_MAP_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "env/geometry.h"

namespace cews::env {

/// A point of interest (Definition 3): location plus initial data value
/// 0 < delta0 < 1.
struct Poi {
  Position pos;
  double initial_value = 0.0;  // delta_0^p
};

/// A charging station; workers within `MapConfig::charge_range` may charge
/// (one worker at a time per station — "number of charging stations in
/// practice is not enough for all workers simultaneously", Section III-A).
struct ChargingStation {
  Position pos;
};

/// Parameters for procedural map generation.
struct MapConfig {
  /// Space extents L_x, L_y (Definition 1).
  double size_x = 16.0;
  double size_y = 16.0;

  /// Number of PoIs P.
  int num_pois = 200;
  /// Number of charging stations.
  int num_stations = 4;
  /// Number of workers W (spawn points are part of the map so every
  /// algorithm sees identical initial conditions).
  int num_workers = 2;

  /// Number of Gaussian PoI clusters ("mixture of Gaussian distributions
  /// and a random distribution", Section VII-A).
  int num_clusters = 4;
  /// Std-dev of each cluster.
  double cluster_sigma = 1.2;
  /// Fraction of PoIs drawn uniformly instead of from clusters.
  double uniform_fraction = 0.25;
  /// Fraction of PoIs placed inside the hard-exploration corner room.
  double corner_fraction = 0.15;

  /// Number of random rectangular obstacles (besides the corner room walls).
  int num_obstacles = 5;
  double obstacle_min_size = 0.8;
  double obstacle_max_size = 2.5;

  /// Build the semi-destroyed corner subarea at the bottom-right, entered
  /// through a narrow passageway (Section VII-A).
  bool hard_corner = true;
  /// Side length of the corner room.
  double corner_size = 5.0;
  /// Wall thickness of the corner room.
  double corner_wall = 0.4;
  /// Width of the passageway opening.
  double corner_gap = 1.2;
};

/// A concrete map instance. Value type: copy it to replay the same scenario
/// across algorithms and seeds.
struct Map {
  MapConfig config;
  std::vector<Rect> obstacles;
  std::vector<Poi> pois;
  std::vector<ChargingStation> stations;
  std::vector<Position> worker_spawns;

  /// True when p is inside some obstacle.
  bool InObstacle(const Position& p) const;

  /// True when p lies inside the space bounds (exclusive, per Definition 1).
  bool InBounds(const Position& p) const;

  /// True when the straight segment a->b stays in bounds and crosses no
  /// obstacle.
  bool SegmentFree(const Position& a, const Position& b) const;

  /// Sum of initial PoI values (denominator of kappa, Eqn 4).
  double TotalInitialData() const;
};

/// Procedurally generates a map. Fails when the config is inconsistent
/// (e.g. non-positive sizes or counts) or when free space is too scarce to
/// place the requested entities.
Result<Map> GenerateMap(const MapConfig& config, Rng& rng);

}  // namespace cews::env

#endif  // CEWS_ENV_MAP_H_
