// cews::serve — consistent-hash request router.
//
// Maps a (client_id, scenario) routing key onto one of N shards via a
// virtual-node hash ring: each shard owns `vnodes_per_shard` points on a
// 64-bit ring, and a key routes to the shard owning the first point at or
// after the key's hash (wrapping). Two properties the fleet needs:
//
//   * Stability — the mapping is a pure function of (key, ring layout), so
//     a client's requests always land on the same shard: its in-order
//     stream shares one batcher, and per-client state (future: sessions,
//     per-city caches) never migrates under load.
//   * Minimal remapping — growing N shards to N+1 moves only the keys whose
//     ring interval the new shard's vnodes capture, ~1/(N+1) of the space,
//     instead of the (N-1)/N a modulo router reshuffles. Vnodes keep the
//     per-shard share balanced (variance shrinks with vnode count).
//
// Everything is deterministic from RouterConfig (seeded hash, no RNG
// state), so routing is reproducible across runs and processes.
#ifndef CEWS_SERVE_ROUTER_H_
#define CEWS_SERVE_ROUTER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cews::serve {

struct RouterConfig {
  int num_shards = 1;
  /// Ring points per shard. 64 keeps the max/min shard share within ~2x
  /// for small fleets; raise it if per-shard load skew ever matters more
  /// than the O(vnodes * shards) ring memory.
  int vnodes_per_shard = 64;
  /// Seeds the vnode placement (and thus the key->shard mapping).
  uint64_t seed = 0x5ca1ab1e5ca1ab1eULL;
};

class ConsistentHashRouter {
 public:
  /// CHECK-fails on non-positive shard/vnode counts (Fleet::Create
  /// validates user input before constructing one).
  explicit ConsistentHashRouter(const RouterConfig& config);

  /// Shard in [0, num_shards) for this routing key. Pure and thread-safe
  /// (the ring is immutable after construction).
  int ShardFor(uint64_t client_id, const std::string& scenario) const;

  /// The 64-bit ring position of a routing key: FNV-1a over the scenario
  /// bytes finalized together with the client id through SplitMix64.
  static uint64_t KeyHash(uint64_t client_id, const std::string& scenario);

  int num_shards() const { return num_shards_; }

 private:
  int num_shards_;
  /// (ring position, shard) sorted by position.
  std::vector<std::pair<uint64_t, int>> ring_;
};

}  // namespace cews::serve

#endif  // CEWS_SERVE_ROUTER_H_
