#include "serve/server.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "agents/eval.h"
#include "agents/quant_policy.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "nn/params.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/rolling_histogram.h"
#include "obs/trace.h"

namespace cews::serve {

namespace {

/// Epoch-0 parameters: a freshly initialized network. The temporary net's
/// tensors are cloned by the registry, so it can die here.
std::vector<nn::Tensor> InitialParams(const PolicyServerConfig& config) {
  Rng rng(config.seed);
  const agents::PolicyNet net(config.net, rng);
  return net.Parameters();
}

/// Per-shard metric names: serve.shard.N.* for fleet shards, the legacy
/// serve.* names for standalone servers.
std::string ShardMetricName(int shard_index, const char* suffix) {
  if (shard_index < 0) return std::string("serve.") + suffix;
  return "serve.shard." + std::to_string(shard_index) + "." + suffix;
}

}  // namespace

const char* PrecisionName(Precision precision) {
  switch (precision) {
    case Precision::kFp32:
      return "fp32";
    case Precision::kInt8:
      return "int8";
  }
  return "unknown";
}

Result<Precision> ParsePrecision(const std::string& name) {
  if (name == "fp32") return Precision::kFp32;
  if (name == "int8") return Precision::kInt8;
  return Status::InvalidArgument("unknown precision '" + name +
                                 "' (expected fp32 or int8)");
}

Status PolicyServer::ValidateConfig(const PolicyServerConfig& config) {
  if (config.net.grid <= 0 || config.net.in_channels <= 0 ||
      config.net.num_workers <= 0 || config.net.num_moves <= 0) {
    return Status::InvalidArgument(
        "net dimensions must be positive (grid " +
        std::to_string(config.net.grid) + ", channels " +
        std::to_string(config.net.in_channels) + ", workers " +
        std::to_string(config.net.num_workers) + ", moves " +
        std::to_string(config.net.num_moves) + ")");
  }
  if (config.num_threads <= 0) {
    return Status::InvalidArgument("num_threads must be positive, got " +
                                   std::to_string(config.num_threads));
  }
  if (config.max_batch <= 0) {
    return Status::InvalidArgument("max_batch must be positive, got " +
                                   std::to_string(config.max_batch));
  }
  if (config.max_queue_delay_us < 0) {
    return Status::InvalidArgument(
        "max_queue_delay_us must be non-negative, got " +
        std::to_string(config.max_queue_delay_us));
  }
  if (config.max_queue_depth < 0) {
    return Status::InvalidArgument(
        "max_queue_depth must be non-negative (0 = unbounded), got " +
        std::to_string(config.max_queue_depth));
  }
  if (config.runtime_threads < 0) {
    return Status::InvalidArgument(
        "runtime_threads must be non-negative (0 = hardware cores), got " +
        std::to_string(config.runtime_threads));
  }
  return Status::OK();
}

Result<std::unique_ptr<PolicyServer>> PolicyServer::Create(
    const PolicyServerConfig& config) {
  CEWS_RETURN_IF_ERROR(ValidateConfig(config));
  // Size the intra-op kernel pool before inference threads start issuing
  // ParallelFor regions (same contract as the trainers).
  runtime::SetGlobalPoolThreads(config.runtime_threads);
  auto scenarios = std::make_shared<ScenarioRegistry>(
      std::vector<std::string>{ScenarioRegistry::kDefaultScenario},
      InitialParams(config),
      /*quantize=*/config.precision == Precision::kInt8);
  return std::unique_ptr<PolicyServer>(
      new PolicyServer(config, std::move(scenarios)));
}

Result<std::unique_ptr<PolicyServer>> PolicyServer::Create(
    const PolicyServerConfig& config,
    std::shared_ptr<ScenarioRegistry> scenarios) {
  CEWS_RETURN_IF_ERROR(ValidateConfig(config));
  if (scenarios == nullptr) {
    return Status::InvalidArgument("scenario registry must be non-null");
  }
  if (config.precision == Precision::kInt8 && !scenarios->quantizes()) {
    return Status::InvalidArgument(
        "int8 shard requires a registry built with quantize=true");
  }
  return std::unique_ptr<PolicyServer>(
      new PolicyServer(config, std::move(scenarios)));
}

PolicyServer::PolicyServer(const PolicyServerConfig& config,
                           std::shared_ptr<ScenarioRegistry> scenarios)
    : config_(config),
      encoder_(env::StateEncoderConfig{config.net.grid}),
      scenarios_(std::move(scenarios)),
      default_registry_(scenarios_->Find("") != nullptr
                            ? scenarios_->Find("")
                            : scenarios_->Find(scenarios_->names().front())),
      depth_gauge_(obs::GetGauge(
          ShardMetricName(config.shard_index, "queue_depth"))),
      shed_counter_(obs::GetCounter(
          ShardMetricName(config.shard_index, "shed"))),
      latency_hist_(obs::GetHistogram(
          ShardMetricName(config.shard_index, "latency_ns"))),
      rolling_latency_(obs::GetRollingHistogram(
          ShardMetricName(config.shard_index, "latency"))),
      fleet_rolling_latency_(config.shard_index >= 0
                                 ? obs::GetRollingHistogram(
                                       "serve.fleet.latency")
                                 : nullptr),
      batcher_(config.max_batch, config.max_queue_delay_us,
               config.max_queue_depth, depth_gauge_) {
  CEWS_CHECK(default_registry_ != nullptr);
  obs::FlightRecorder::Global().Record(obs::FlightEventKind::kServerStart,
                                       nullptr, config_.shard_index);
  workers_.reserve(static_cast<size_t>(config_.num_threads));
  for (int i = 0; i < config_.num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

PolicyServer::~PolicyServer() { Stop(); }

void PolicyServer::Stop() {
  if (stopped_.exchange(true)) return;
  obs::FlightRecorder::Global().Record(obs::FlightEventKind::kServerStop,
                                       nullptr, config_.shard_index);
  batcher_.Shutdown();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

Status PolicyServer::ValidateRequest(const ScheduleRequest& request) const {
  if (request.state.empty() && request.env == nullptr) {
    return Status::InvalidArgument(
        "request carries neither a pre-encoded state nor an env");
  }
  if (!request.state.empty() &&
      static_cast<int>(request.state.size()) != StateSize()) {
    return Status::InvalidArgument(
        "encoded state has " + std::to_string(request.state.size()) +
        " floats, server expects " + std::to_string(StateSize()));
  }
  if (request.state.empty()) {
    if (config_.net.in_channels != env::StateEncoder::kChannels) {
      return Status::InvalidArgument(
          "server net takes " + std::to_string(config_.net.in_channels) +
          " channels; server-side encoding produces " +
          std::to_string(env::StateEncoder::kChannels) +
          " — submit a pre-encoded state instead");
    }
    if (request.env->num_workers() != config_.net.num_workers) {
      return Status::InvalidArgument(
          "env has " + std::to_string(request.env->num_workers()) +
          " workers, server net commands " +
          std::to_string(config_.net.num_workers));
    }
  }
  const int mask_size = config_.net.num_workers * config_.net.num_moves;
  if (!request.move_mask.empty() &&
      static_cast<int>(request.move_mask.size()) != mask_size) {
    return Status::InvalidArgument(
        "move_mask has " + std::to_string(request.move_mask.size()) +
        " flags, server expects " + std::to_string(mask_size));
  }
  return Status::OK();
}

std::future<ScheduleResponse> PolicyServer::Submit(
    ScheduleRequest request) {
  PendingRequest item;
  item.request = std::move(request);
  std::future<ScheduleResponse> future = item.promise.get_future();

  const auto reject = [&item, this](Status status) {
    ScheduleResponse response;
    response.status = std::move(status);
    response.shard = config_.shard_index;
    item.promise.set_value(std::move(response));
  };

  const Status valid = ValidateRequest(item.request);
  if (!valid.ok()) {
    reject(valid);
    return future;
  }
  item.registry = scenarios_->Find(item.request.scenario);
  if (item.registry == nullptr) {
    reject(Status::NotFound("unknown scenario '" + item.request.scenario +
                            "'"));
    return future;
  }
  // Request-lifecycle tracing: stamp a process-unique id so the worker can
  // tag this request's phase spans. With tracing off this is the one
  // relaxed load the serve path pays per request.
  if (obs::TraceEnabled()) {
    static std::atomic<uint64_t> next_trace_id{0};
    item.request.trace.id =
        next_trace_id.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  static obs::Counter* const requests = obs::GetCounter("serve.requests");
  static obs::Counter* const fleet_shed =
      obs::GetCounter("serve.fleet.shed_total");
  switch (batcher_.Push(item)) {
    case PushResult::kAccepted:
      requests->Increment();
      break;
    case PushResult::kShutdown:
      reject(Status::FailedPrecondition("PolicyServer is stopped"));
      break;
    case PushResult::kOverloaded: {
      // Shed, never block: overload resolves immediately so the client can
      // back off, instead of queueing into unbounded tail latency.
      shed_counter_->Increment();
      fleet_shed->Increment();
      // Power-of-two sampled flight event: the first sheds are the story,
      // a storm must not evict publish/swap history from the ring.
      const uint64_t sheds =
          shed_total_.fetch_add(1, std::memory_order_relaxed) + 1;
      if ((sheds & (sheds - 1)) == 0) {
        obs::FlightRecorder::Global().Record(
            obs::FlightEventKind::kShed, nullptr, config_.shard_index,
            static_cast<int64_t>(sheds));
      }
      reject(Status::ResourceExhausted(
          "shard queue full (max_queue_depth " +
          std::to_string(config_.max_queue_depth) + ")"));
      break;
    }
  }
  return future;
}

Status PolicyServer::Publish(const std::vector<nn::Tensor>& params) {
  return default_registry_->Publish(params);
}

Status PolicyServer::PublishFromFile(const std::string& path) {
  return default_registry_->PublishFromFile(path);
}

void PolicyServer::WorkerLoop(int worker_index) {
  // Private replica: parameters are copied in from a registry snapshot
  // whenever the (scenario, epoch) being served changes, so workers never
  // share mutable tensors and a scenario group is served entirely by the
  // snapshot it captured.
  Rng init_rng(config_.seed + 0x9E3779B97F4A7C15ULL *
                                 static_cast<uint64_t>(worker_index + 1));
  agents::PolicyNet net(config_.net, init_rng);
  const std::vector<nn::Tensor> net_params = net.Parameters();
  Rng sample_rng(config_.seed * 1000003ULL +
                 static_cast<uint64_t>(worker_index));
  const bool int8_path = config_.precision == Precision::kInt8;
  const ModelRegistry* cached_registry = nullptr;
  uint64_t cached_epoch = ~uint64_t{0};

  static obs::Counter* const batches = obs::GetCounter("serve.batches");
  static obs::Histogram* const batch_size_hist =
      obs::GetHistogram("serve.batch_size");
  static obs::Histogram* const latency_hist =
      obs::GetHistogram("serve.request_latency_ns");

  const int state_size = StateSize();
  const int mask_size = config_.net.num_workers * config_.net.num_moves;
  std::vector<float> states;
  std::vector<uint8_t> masks;
  std::vector<uint8_t> deterministic;
  // (registry, member indices) per scenario in this flush, grouped in
  // first-appearance order. Single-scenario flushes — every standalone
  // server, and fleet shards under per-city load — form exactly one group,
  // preserving the pre-fleet batching behavior bit for bit.
  std::vector<std::pair<ModelRegistry*, std::vector<int>>> groups;

  for (;;) {
    std::vector<PendingRequest> batch = batcher_.PopBatch();
    if (batch.empty()) return;  // Shutdown, queue drained.
    CEWS_TRACE_SCOPE("serve.batch");
    // One TraceEnabled read gates every per-request phase timestamp in
    // this flush; with tracing off the loop takes no extra clock reads.
    const bool tracing = obs::TraceEnabled();
    const uint64_t pop_ns = tracing ? Stopwatch::NowNs() : 0;

    groups.clear();
    for (int i = 0; i < static_cast<int>(batch.size()); ++i) {
      ModelRegistry* registry = batch[static_cast<size_t>(i)].registry;
      auto it = groups.begin();
      for (; it != groups.end(); ++it) {
        if (it->first == registry) break;
      }
      if (it == groups.end()) {
        groups.emplace_back(registry, std::vector<int>{});
        it = groups.end() - 1;
      }
      it->second.push_back(i);
    }

    for (auto& [registry, members] : groups) {
      const std::shared_ptr<const ModelRegistry::Snapshot> snapshot =
          registry->Acquire();
      if (registry != cached_registry || snapshot->epoch != cached_epoch) {
        CEWS_TRACE_SCOPE("serve.swap_in");
        // Int8 workers serve the snapshot's immutable quantized bundle in
        // place — swap-in is just the cache update plus the flight event;
        // only the fp32 path pays the parameter copy.
        if (int8_path) {
          CEWS_CHECK(snapshot->quant != nullptr);
        } else {
          nn::CopyParameters(snapshot->params, net_params);
        }
        cached_registry = registry;
        cached_epoch = snapshot->epoch;
        obs::FlightRecorder::Global().Record(
            obs::FlightEventKind::kEpochSwap, nullptr, config_.shard_index,
            static_cast<int64_t>(snapshot->epoch));
      }

      const int n = static_cast<int>(members.size());
      batches->Increment();
      batch_size_hist->Record(static_cast<uint64_t>(n));

      states.resize(static_cast<size_t>(n) * state_size);
      deterministic.resize(static_cast<size_t>(n));
      bool any_mask = false;
      for (const int m : members) {
        if (!batch[static_cast<size_t>(m)].request.move_mask.empty()) {
          any_mask = true;
        }
      }
      // Absent masks default to all-valid so masked and unmasked requests
      // can share one batch.
      if (any_mask) masks.assign(static_cast<size_t>(n) * mask_size, 1);

      {
        CEWS_TRACE_SCOPE("serve.encode");
        for (int i = 0; i < n; ++i) {
          const ScheduleRequest& request =
              batch[static_cast<size_t>(members[static_cast<size_t>(i)])]
                  .request;
          float* slice = states.data() + static_cast<size_t>(i) * state_size;
          if (!request.state.empty()) {
            std::memcpy(slice, request.state.data(),
                        sizeof(float) * static_cast<size_t>(state_size));
          } else {
            encoder_.EncodeInto(*request.env, slice);
          }
          if (any_mask && !request.move_mask.empty()) {
            std::memcpy(masks.data() + static_cast<size_t>(i) * mask_size,
                        request.move_mask.data(),
                        static_cast<size_t>(mask_size));
          }
          deterministic[static_cast<size_t>(i)] =
              request.deterministic ? 1 : 0;
        }
      }

      const uint64_t encode_end_ns = tracing ? Stopwatch::NowNs() : 0;

      std::vector<agents::PolicyDecision> decisions;
      {
        CEWS_TRACE_SCOPE("serve.forward");
        if (int8_path) {
          // Quantized forward on the shared bundle, then the exact same
          // decision protocol (mask, sample, Rng order) as fp32.
          const agents::QuantPolicyOutput out = agents::QuantPolicyForward(
              config_.net, *snapshot->quant, states.data(), n);
          decisions = agents::DecideFromLogits(
              config_.net, out.move_logits.data(), out.charge_logits.data(),
              out.value.data(), n, sample_rng, deterministic.data(),
              any_mask ? masks.data() : nullptr);
        } else {
          decisions = agents::DecidePolicyBatch(
              net, states, n, sample_rng, deterministic.data(),
              any_mask ? masks.data() : nullptr);
        }
      }

      // Doubles as the forward-phase end timestamp when tracing.
      const uint64_t now_ns = Stopwatch::NowNs();
      for (int i = 0; i < n; ++i) {
        PendingRequest& item =
            batch[static_cast<size_t>(members[static_cast<size_t>(i)])];
        agents::PolicyDecision& decision = decisions[static_cast<size_t>(i)];
        ScheduleResponse response;
        response.epoch = snapshot->epoch;
        response.act = std::move(decision.act);
        response.move_logits = std::move(decision.move_logits);
        response.charge_logits = std::move(decision.charge_logits);
        response.batch_size = n;
        response.latency_ns = now_ns - item.enqueue_ns;
        response.shard = config_.shard_index;
        // Metrics charge from the client-declared arrival when one was
        // stamped (see ScheduleRequest::arrival_ns): the windowed gauges
        // then measure the same scheduled-arrival-to-completion interval
        // the open-loop load generator reports, with no coordinated
        // omission. min() guards against a client arriving "late" on a
        // skewed stamp producing an underflowed latency.
        const uint64_t charged_from =
            item.request.arrival_ns != 0
                ? std::min(item.request.arrival_ns, item.enqueue_ns)
                : item.enqueue_ns;
        const uint64_t metric_latency_ns = now_ns - charged_from;
        latency_hist->Record(metric_latency_ns);
        latency_hist_->Record(metric_latency_ns);
        rolling_latency_->Record(metric_latency_ns);
        if (fleet_rolling_latency_ != nullptr) {
          fleet_rolling_latency_->Record(metric_latency_ns);
        }
        item.promise.set_value(std::move(response));
      }

      // Per-request lifecycle spans, tagged (request id, shard) so one
      // request's phases line up across threads in the Chrome trace.
      // Emitted after the promises resolve — the client sees its response
      // no later than without tracing. item.request stays valid here:
      // set_value consumed only the response.
      if (tracing) {
        const uint64_t scatter_end_ns = Stopwatch::NowNs();
        const int64_t shard = config_.shard_index;
        for (const int m : members) {
          const PendingRequest& item = batch[static_cast<size_t>(m)];
          const uint64_t id = item.request.trace.id;
          if (id == 0) continue;  // submitted before tracing flipped on
          obs::internal::RecordSpanArgs("serve.queue_wait", item.enqueue_ns,
                                        pop_ns, id, shard);
          obs::internal::RecordSpanArgs("serve.batch_assemble", pop_ns,
                                        encode_end_ns, id, shard);
          obs::internal::RecordSpanArgs("serve.forward", encode_end_ns,
                                        now_ns, id, shard);
          obs::internal::RecordSpanArgs("serve.scatter", now_ns,
                                        scatter_end_ns, id, shard);
        }
      }
    }
  }
}

}  // namespace cews::serve
