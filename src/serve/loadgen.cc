#include "serve/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "env/state_encoder.h"
#include "env/vec_env.h"

namespace cews::serve {

namespace {

/// Both overloads of RunLoad drive this signature; the fleet/server
/// distinction is one bound call.
using SubmitFn =
    std::function<std::future<ScheduleResponse>(ScheduleRequest)>;

/// Latencies and error/shed counts one client or submitter collected.
struct ClientTally {
  std::vector<uint64_t> latency_ns;
  uint64_t batch_size_sum = 0;
  uint64_t completed = 0;
  uint64_t errors = 0;
  uint64_t shed = 0;
  uint64_t submitted = 0;
};

/// Folds one harvested response into the tally. `latency_ns` is the
/// caller-measured latency (closed loop: client-side submit-to-response;
/// open loop: scheduled-arrival lag + server enqueue-to-completion).
void Tally(const ScheduleResponse& response, uint64_t latency_ns,
           ClientTally& tally) {
  if (response.status.code() == StatusCode::kResourceExhausted) {
    ++tally.shed;
    return;
  }
  if (!response.ok()) {
    ++tally.errors;
    return;
  }
  ++tally.completed;
  tally.batch_size_sum += static_cast<uint64_t>(response.batch_size);
  tally.latency_ns.push_back(latency_ns);
}

void RunClosedLoopClient(const SubmitFn& submit, const env::Map& map,
                         const LoadSpec& spec, int encoder_grid,
                         int client_index, ClientTally& tally) {
  env::Env env(spec.env, map);
  env.Reset();
  const env::StateEncoder encoder(env::StateEncoderConfig{encoder_grid});
  const bool pre_encode = client_index % 2 == 0;
  tally.latency_ns.reserve(static_cast<size_t>(spec.requests_per_client));

  for (int r = 0; r < spec.requests_per_client; ++r) {
    ScheduleRequest request;
    request.client_id = static_cast<uint64_t>(client_index);
    request.scenario = spec.scenario;
    if (pre_encode) {
      request.state = encoder.Encode(env);
    } else {
      request.env = &env;
    }
    if (spec.use_masks) request.move_mask = env::MoveValidityMask(env);
    request.deterministic = spec.deterministic;

    const uint64_t start_ns = Stopwatch::NowNs();
    const ScheduleResponse response = submit(std::move(request)).get();
    ++tally.submitted;
    Tally(response, Stopwatch::NowNs() - start_ns, tally);
    if (!response.ok()) continue;  // shed/error: retry same observation
    env.Step(response.act.actions);
    if (env.Done()) env.Reset();
  }
}

/// One open-loop submitter: generates its share of the Poisson process for
/// the duration window (submit at scheduled arrivals, never gated by
/// completions), then harvests its futures. Latency is charged from the
/// *scheduled* arrival — submitter lag adds to the measured latency rather
/// than silently thinning the offered load (no coordinated omission).
void RunOpenLoopSubmitter(const SubmitFn& submit, const env::Map& map,
                          const LoadSpec& spec, int encoder_grid,
                          int thread_index, ClientTally& tally) {
  struct InFlight {
    std::future<ScheduleResponse> future;
    uint64_t intended_ns = 0;
    uint64_t submit_ns = 0;
  };

  env::Env env(spec.env, map);
  env.Reset();
  const env::StateEncoder encoder(env::StateEncoderConfig{encoder_grid});
  // Pre-encode once: at 10^5+ requests/second the generator must cost
  // almost nothing per request, and the open-loop mode measures the
  // serving path, not the encoder.
  const std::vector<float> base_state = encoder.Encode(env);
  const std::vector<uint8_t> base_mask =
      spec.use_masks ? env::MoveValidityMask(env) : std::vector<uint8_t>{};

  Rng rng(spec.seed + 0x9E3779B97F4A7C15ULL *
                          static_cast<uint64_t>(thread_index + 1));
  const double rate_per_thread =
      spec.arrival_rps / static_cast<double>(spec.submit_threads);
  const uint64_t population = static_cast<uint64_t>(spec.clients);
  const uint64_t window_ns =
      static_cast<uint64_t>(spec.duration_seconds * 1e9);

  std::vector<InFlight> in_flight;
  in_flight.reserve(static_cast<size_t>(rate_per_thread *
                                        spec.duration_seconds * 1.25) +
                    16);

  const uint64_t start_ns = Stopwatch::NowNs();
  double next_arrival_s = 0.0;
  for (;;) {
    // Exponential inter-arrival gap of this thread's Poisson sub-process.
    next_arrival_s +=
        -std::log(1.0 - rng.Uniform()) / rate_per_thread;
    const uint64_t intended_ns =
        start_ns + static_cast<uint64_t>(next_arrival_s * 1e9);
    if (intended_ns - start_ns >= window_ns) break;

    uint64_t now_ns = Stopwatch::NowNs();
    if (intended_ns > now_ns + 100'000) {
      // Sleep out the bulk; the residue (scheduler wakeup jitter) is
      // charged into the request's latency below, not hidden.
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(intended_ns - now_ns - 50'000));
    }

    ScheduleRequest request;
    request.client_id = rng.NextU64() % population;
    request.scenario = spec.scenario;
    request.state = base_state;
    request.move_mask = base_mask;
    request.deterministic = spec.deterministic;
    // Declare the scheduled arrival so the server's rolling latency gauges
    // charge from it (matching the lag_ns + latency_ns sum tallied below).
    request.arrival_ns = intended_ns;

    InFlight flight;
    flight.intended_ns = intended_ns;
    flight.submit_ns = Stopwatch::NowNs();
    flight.future = submit(std::move(request));
    in_flight.push_back(std::move(flight));
  }

  tally.submitted = in_flight.size();
  tally.latency_ns.reserve(in_flight.size());
  for (InFlight& flight : in_flight) {
    const ScheduleResponse response = flight.future.get();
    const uint64_t lag_ns = flight.submit_ns > flight.intended_ns
                                ? flight.submit_ns - flight.intended_ns
                                : 0;
    Tally(response, lag_ns + response.latency_ns, tally);
  }
}

double PercentileUs(const std::vector<uint64_t>& sorted_ns, double p) {
  if (sorted_ns.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted_ns.size() - 1);
  const size_t idx = static_cast<size_t>(std::llround(rank));
  return static_cast<double>(sorted_ns[std::min(idx, sorted_ns.size() - 1)]) /
         1e3;
}

Status ValidateSpec(const LoadSpec& spec) {
  if (spec.clients <= 0) {
    return Status::InvalidArgument("clients must be positive, got " +
                                   std::to_string(spec.clients));
  }
  if (spec.mode == LoadMode::kClosedLoop) {
    if (spec.requests_per_client <= 0) {
      return Status::InvalidArgument(
          "requests_per_client must be positive, got " +
          std::to_string(spec.requests_per_client));
    }
  } else {
    if (!(spec.arrival_rps > 0.0)) {
      return Status::InvalidArgument("arrival_rps must be positive");
    }
    if (!(spec.duration_seconds > 0.0)) {
      return Status::InvalidArgument("duration_seconds must be positive");
    }
    if (spec.submit_threads <= 0) {
      return Status::InvalidArgument("submit_threads must be positive, got " +
                                     std::to_string(spec.submit_threads));
    }
  }
  return Status::OK();
}

Result<LoadResult> RunLoadImpl(const SubmitFn& submit, const env::Map& map,
                               const LoadSpec& spec, int encoder_grid) {
  CEWS_RETURN_IF_ERROR(ValidateSpec(spec));

  const int num_threads = spec.mode == LoadMode::kClosedLoop
                              ? spec.clients
                              : spec.submit_threads;
  std::vector<ClientTally> tallies(static_cast<size_t>(num_threads));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));
  const uint64_t start_ns = Stopwatch::NowNs();
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&submit, &map, &spec, encoder_grid, t, &tallies] {
      if (spec.mode == LoadMode::kClosedLoop) {
        RunClosedLoopClient(submit, map, spec, encoder_grid, t,
                            tallies[static_cast<size_t>(t)]);
      } else {
        RunOpenLoopSubmitter(submit, map, spec, encoder_grid, t,
                             tallies[static_cast<size_t>(t)]);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double wall_seconds =
      static_cast<double>(Stopwatch::NowNs() - start_ns) / 1e9;

  LoadResult result;
  result.wall_seconds = wall_seconds;
  std::vector<uint64_t> all_latencies;
  uint64_t batch_sum = 0;
  uint64_t completed = 0;
  for (const ClientTally& tally : tallies) {
    result.requests += tally.submitted;
    result.errors += tally.errors;
    result.shed += tally.shed;
    completed += tally.completed;
    batch_sum += tally.batch_size_sum;
    all_latencies.insert(all_latencies.end(), tally.latency_ns.begin(),
                         tally.latency_ns.end());
  }
  std::sort(all_latencies.begin(), all_latencies.end());
  result.throughput_rps =
      wall_seconds > 0.0 ? static_cast<double>(completed) / wall_seconds
                         : 0.0;
  result.offered_rps =
      spec.mode == LoadMode::kOpenLoop
          ? static_cast<double>(result.requests) / spec.duration_seconds
          : (wall_seconds > 0.0
                 ? static_cast<double>(result.requests) / wall_seconds
                 : 0.0);
  if (!all_latencies.empty()) {
    double sum_us = 0.0;
    for (const uint64_t ns : all_latencies) {
      sum_us += static_cast<double>(ns) / 1e3;
    }
    result.latency_mean_us = sum_us / static_cast<double>(all_latencies.size());
    result.latency_p50_us = PercentileUs(all_latencies, 0.50);
    result.latency_p95_us = PercentileUs(all_latencies, 0.95);
    result.latency_p99_us = PercentileUs(all_latencies, 0.99);
    result.latency_p999_us = PercentileUs(all_latencies, 0.999);
  }
  result.mean_batch =
      completed > 0
          ? static_cast<double>(batch_sum) / static_cast<double>(completed)
          : 0.0;
  return result;
}

}  // namespace

Result<LoadResult> RunLoad(Fleet& fleet, const env::Map& map,
                           const LoadSpec& spec) {
  return RunLoadImpl(
      [&fleet](ScheduleRequest request) {
        return fleet.Submit(std::move(request));
      },
      map, spec, fleet.net_config().grid);
}

Result<LoadResult> RunLoad(PolicyServer& server, const env::Map& map,
                           const LoadSpec& spec) {
  return RunLoadImpl(
      [&server](ScheduleRequest request) {
        return server.Submit(std::move(request));
      },
      map, spec, server.net_config().grid);
}

Result<LoadGenResult> RunClosedLoopLoad(PolicyServer& server,
                                        const env::Map& map,
                                        const LoadGenOptions& options) {
  LoadSpec spec;
  spec.mode = LoadMode::kClosedLoop;
  spec.clients = options.clients;
  spec.requests_per_client = options.requests_per_client;
  spec.env = options.env;
  spec.deterministic = options.deterministic;
  spec.use_masks = options.use_masks;
  return RunLoad(server, map, spec);
}

}  // namespace cews::serve
