#include "serve/loadgen.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "env/state_encoder.h"
#include "env/vec_env.h"

namespace cews::serve {

namespace {

/// Latencies and error count one client collected.
struct ClientTally {
  std::vector<uint64_t> latency_ns;
  uint64_t batch_size_sum = 0;
  uint64_t errors = 0;
};

void RunClient(PolicyServer& server, const env::Map& map,
               const LoadGenOptions& options, int client_index,
               ClientTally& tally) {
  env::Env env(options.env, map);
  env.Reset();
  const env::StateEncoder encoder(
      env::StateEncoderConfig{server.net_config().grid});
  const bool pre_encode = client_index % 2 == 0;
  tally.latency_ns.reserve(
      static_cast<size_t>(options.requests_per_client));

  for (int r = 0; r < options.requests_per_client; ++r) {
    ScheduleRequest request;
    if (pre_encode) {
      request.state = encoder.Encode(env);
    } else {
      request.env = &env;
    }
    if (options.use_masks) request.move_mask = env::MoveValidityMask(env);
    request.deterministic = options.deterministic;

    const uint64_t start_ns = Stopwatch::NowNs();
    ScheduleResponse response = server.Submit(std::move(request)).get();
    tally.latency_ns.push_back(Stopwatch::NowNs() - start_ns);
    if (!response.ok()) {
      ++tally.errors;
      continue;
    }
    tally.batch_size_sum += static_cast<uint64_t>(response.batch_size);
    env.Step(response.act.actions);
    if (env.Done()) env.Reset();
  }
}

double PercentileUs(const std::vector<uint64_t>& sorted_ns, double p) {
  if (sorted_ns.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted_ns.size() - 1);
  const size_t idx = static_cast<size_t>(std::llround(rank));
  return static_cast<double>(sorted_ns[std::min(idx, sorted_ns.size() - 1)]) /
         1e3;
}

}  // namespace

Result<LoadGenResult> RunClosedLoopLoad(PolicyServer& server,
                                        const env::Map& map,
                                        const LoadGenOptions& options) {
  if (options.clients <= 0) {
    return Status::InvalidArgument("clients must be positive, got " +
                                   std::to_string(options.clients));
  }
  if (options.requests_per_client <= 0) {
    return Status::InvalidArgument(
        "requests_per_client must be positive, got " +
        std::to_string(options.requests_per_client));
  }

  std::vector<ClientTally> tallies(static_cast<size_t>(options.clients));
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(options.clients));
  const uint64_t start_ns = Stopwatch::NowNs();
  for (int c = 0; c < options.clients; ++c) {
    clients.emplace_back([&server, &map, &options, c, &tallies] {
      RunClient(server, map, options, c, tallies[static_cast<size_t>(c)]);
    });
  }
  for (std::thread& client : clients) client.join();
  const double wall_seconds =
      static_cast<double>(Stopwatch::NowNs() - start_ns) / 1e9;

  LoadGenResult result;
  result.wall_seconds = wall_seconds;
  std::vector<uint64_t> all_latencies;
  uint64_t batch_sum = 0;
  for (const ClientTally& tally : tallies) {
    result.requests += tally.latency_ns.size();
    result.errors += tally.errors;
    batch_sum += tally.batch_size_sum;
    all_latencies.insert(all_latencies.end(), tally.latency_ns.begin(),
                         tally.latency_ns.end());
  }
  std::sort(all_latencies.begin(), all_latencies.end());
  const uint64_t completed = result.requests - result.errors;
  result.throughput_rps =
      wall_seconds > 0.0 ? static_cast<double>(result.requests) / wall_seconds
                         : 0.0;
  if (!all_latencies.empty()) {
    double sum_us = 0.0;
    for (const uint64_t ns : all_latencies) {
      sum_us += static_cast<double>(ns) / 1e3;
    }
    result.latency_mean_us = sum_us / static_cast<double>(all_latencies.size());
    result.latency_p50_us = PercentileUs(all_latencies, 0.50);
    result.latency_p95_us = PercentileUs(all_latencies, 0.95);
    result.latency_p99_us = PercentileUs(all_latencies, 0.99);
  }
  result.mean_batch =
      completed > 0
          ? static_cast<double>(batch_sum) / static_cast<double>(completed)
          : 0.0;
  return result;
}

}  // namespace cews::serve
