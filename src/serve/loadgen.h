// cews::serve — synthetic load generation against a serving Fleet (or a
// standalone PolicyServer), in two modes:
//
//   * Closed loop — N client threads, each driving its own Env through the
//     fleet (encode → submit → wait → step), the pattern a real per-fleet
//     control loop follows. Offered load is *gated by completions*: when
//     the server slows down, clients slow down with it, so queues stay
//     short and the measured p99 flatters the server. Good for throughput
//     and batching-efficiency numbers, NOT for tail latency under load.
//
//   * Open loop — requests arrive as a Poisson process at `arrival_rps`,
//     independent of completions, from a simulated population of
//     `clients` distinct client ids (the ids drive routing; no thread per
//     client, so populations of 10^5–10^6 cost nothing). Latency is
//     charged from each request's *scheduled* arrival time, so submitter
//     lag cannot hide queueing delay (no coordinated omission), and
//     overload shows up honestly: either as growing p99/p999 (unbounded
//     queues) or as counted sheds (admission control). This is the mode
//     the p999 column exists for.
//
// Used by the `cews serve` CLI subcommand and bench_serve.
#ifndef CEWS_SERVE_LOADGEN_H_
#define CEWS_SERVE_LOADGEN_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "env/env.h"
#include "env/map.h"
#include "serve/fleet.h"
#include "serve/server.h"

namespace cews::serve {

enum class LoadMode {
  kClosedLoop,  ///< Completion-gated clients (throughput/batching focus).
  kOpenLoop,    ///< Poisson arrivals at arrival_rps (honest tail latency).
};

struct LoadSpec {
  LoadMode mode = LoadMode::kClosedLoop;

  /// Closed loop: concurrent client threads (each submits its next request
  /// only after the previous response arrives). Open loop: size of the
  /// simulated client-id population requests are drawn from.
  int clients = 8;

  /// Closed loop only: requests per client; total offered work is
  /// clients * this.
  int requests_per_client = 100;

  /// Open loop only: aggregate Poisson arrival rate (requests/second,
  /// summed over all submitter threads) and how long to offer it.
  double arrival_rps = 1000.0;
  double duration_seconds = 1.0;
  /// Open loop only: submitter threads generating the arrival process
  /// (each carries arrival_rps / submit_threads of the rate).
  int submit_threads = 2;

  /// Environment the clients observe (horizon, action space, ...). The
  /// action space must produce the server net's num_moves and the map must
  /// spawn its num_workers.
  env::EnvConfig env;
  /// Argmax decisions instead of sampling.
  bool deterministic = false;
  /// Attach per-step move-validity masks (env::MoveValidityMask).
  bool use_masks = true;
  /// Scenario tag stamped on every request ("" = the fleet's default).
  std::string scenario;
  /// Seeds the open-loop arrival process and client-id draws.
  uint64_t seed = 1;
};

struct LoadResult {
  uint64_t requests = 0;  ///< Submitted (completed + shed + errors).
  uint64_t errors = 0;    ///< Responses with a non-OK, non-shed status.
  /// Requests shed by admission control (ResourceExhausted). Sheds are the
  /// honest overload signal — they are excluded from the latency
  /// percentiles (they resolve immediately) and counted here instead.
  uint64_t shed = 0;
  double wall_seconds = 0.0;
  /// Completed (non-shed, non-error) responses per wall second.
  double throughput_rps = 0.0;
  /// Open loop: arrival rate actually generated (sleep jitter makes it
  /// sag below arrival_rps when submitters can't keep up; compare the two
  /// before trusting a row). Closed loop: equals throughput over the run.
  double offered_rps = 0.0;
  /// Completed-request latency, exact percentiles over every completion
  /// (not bucketed estimates). Closed loop: submit-to-response. Open loop:
  /// scheduled-arrival-to-response (coordinated-omission-free).
  double latency_mean_us = 0.0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_p999_us = 0.0;
  /// Mean batched-Forward size over the completions (how well requests
  /// coalesced).
  double mean_batch = 0.0;
};

/// Runs the load described by `spec` against a fleet to completion (every
/// future harvested). Closed-loop clients alternate between submitting
/// pre-encoded states (even client ids) and raw env observations (odd),
/// exercising both encoding paths; open-loop submitters pre-encode once
/// (per-request server-side encoding would measure the encoder, not the
/// serving path). Returns InvalidArgument for non-positive counts/rates.
Result<LoadResult> RunLoad(Fleet& fleet, const env::Map& map,
                           const LoadSpec& spec);

/// Same load against a standalone single-shard PolicyServer (no routing).
Result<LoadResult> RunLoad(PolicyServer& server, const env::Map& map,
                           const LoadSpec& spec);

// ---------------------------------------------------------------------------
// DEPRECATED names, kept as thin wrappers for one release: LoadGenOptions /
// RunClosedLoopLoad predate the open-loop mode and the Fleet API. New code
// uses LoadSpec / RunLoad.

/// DEPRECATED: use LoadSpec (mode = kClosedLoop).
struct LoadGenOptions {
  int clients = 8;
  int requests_per_client = 100;
  env::EnvConfig env;
  bool deterministic = false;
  bool use_masks = true;
};

/// DEPRECATED: use LoadResult (adds shed, p999 and offered_rps).
using LoadGenResult = LoadResult;

/// DEPRECATED: forwards to RunLoad with LoadMode::kClosedLoop.
Result<LoadGenResult> RunClosedLoopLoad(PolicyServer& server,
                                        const env::Map& map,
                                        const LoadGenOptions& options);

}  // namespace cews::serve

#endif  // CEWS_SERVE_LOADGEN_H_
