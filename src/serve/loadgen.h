// cews::serve — synthetic closed-loop load generator: N client threads,
// each driving its own Env through the server (encode → submit → wait →
// step), the pattern a real per-fleet control loop would follow. Used by
// the `cews serve` CLI subcommand and bench_serve to measure latency and
// throughput under offered load.
#ifndef CEWS_SERVE_LOADGEN_H_
#define CEWS_SERVE_LOADGEN_H_

#include <cstdint>

#include "common/result.h"
#include "env/env.h"
#include "env/map.h"
#include "serve/server.h"

namespace cews::serve {

struct LoadGenOptions {
  /// Concurrent closed-loop clients (each submits its next request only
  /// after the previous response arrives).
  int clients = 8;
  /// Requests per client; total offered work is clients * this.
  int requests_per_client = 100;
  /// Environment the clients step (horizon, action space, ...). The action
  /// space must produce the server net's num_moves and the map must spawn
  /// its num_workers.
  env::EnvConfig env;
  /// Argmax decisions instead of sampling.
  bool deterministic = false;
  /// Attach per-step move-validity masks (env::MoveValidityMask).
  bool use_masks = true;
};

struct LoadGenResult {
  uint64_t requests = 0;
  uint64_t errors = 0;  ///< Responses with a non-OK status.
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;
  /// Client-observed submit-to-response latency, exact percentiles over
  /// every request (not bucketed estimates).
  double latency_mean_us = 0.0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
  /// Mean flush size over the responses (how well requests coalesced).
  double mean_batch = 0.0;
};

/// Runs the closed-loop load to completion. Clients alternate between
/// submitting pre-encoded states (even indices) and raw env observations
/// (odd indices), exercising both encoding paths. Returns InvalidArgument
/// for non-positive client/request counts.
Result<LoadGenResult> RunClosedLoopLoad(PolicyServer& server,
                                        const env::Map& map,
                                        const LoadGenOptions& options);

}  // namespace cews::serve

#endif  // CEWS_SERVE_LOADGEN_H_
