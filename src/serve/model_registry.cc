#include "serve/model_registry.h"

#include <string>
#include <utility>

#include "agents/quant_policy.h"
#include "common/check.h"
#include "nn/serialize.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cews::serve {

namespace {

std::vector<nn::Tensor> CloneParams(const std::vector<nn::Tensor>& params) {
  std::vector<nn::Tensor> clones;
  clones.reserve(params.size());
  for (const nn::Tensor& t : params) clones.push_back(t.Clone());
  return clones;
}

}  // namespace

ModelRegistry::ModelRegistry(const std::vector<nn::Tensor>& initial,
                             bool quantize)
    : quantize_(quantize) {
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->epoch = 0;
  snapshot->params = CloneParams(initial);
  if (quantize_) {
    snapshot->quant = std::make_shared<const nn::quant::QuantizedParams>(
        agents::QuantizePolicyParams(snapshot->params));
  }
  current_.store(std::move(snapshot), std::memory_order_release);
}

std::shared_ptr<const ModelRegistry::Snapshot> ModelRegistry::Acquire()
    const {
  return current_.load(std::memory_order_acquire);
}

Status ModelRegistry::Publish(const std::vector<nn::Tensor>& params) {
  CEWS_TRACE_SCOPE("serve.publish");
  const std::shared_ptr<const Snapshot> reference = Acquire();
  if (params.size() != reference->params.size()) {
    return Status::InvalidArgument(
        "Publish: parameter count mismatch (" +
        std::to_string(params.size()) + " vs " +
        std::to_string(reference->params.size()) + ")");
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (!params[i].defined()) {
      return Status::InvalidArgument("Publish: undefined tensor at index " +
                                     std::to_string(i));
    }
    if (params[i].shape() != reference->params[i].shape()) {
      return Status::InvalidArgument(
          "Publish: shape mismatch at index " + std::to_string(i) + ", " +
          nn::ShapeToString(params[i].shape()) + " vs " +
          nn::ShapeToString(reference->params[i].shape()));
    }
  }
  // Clone (and quantize) outside the writer lock — only the epoch
  // assignment and pointer swap are serialized. Quantization is the
  // publish-time amortization: it runs once here, per epoch, so the int8
  // inference hot path never quantizes or packs a weight.
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->params = CloneParams(params);
  if (quantize_) {
    snapshot->quant = std::make_shared<const nn::quant::QuantizedParams>(
        agents::QuantizePolicyParams(snapshot->params));
  }
  uint64_t published_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(publish_mu_);
    published_epoch =
        current_.load(std::memory_order_relaxed)->epoch + 1;
    snapshot->epoch = published_epoch;
    current_.store(std::move(snapshot), std::memory_order_release);
    epoch_.store(published_epoch, std::memory_order_relaxed);
  }
  static obs::Counter* const swaps = obs::GetCounter("serve.hot_swaps");
  static obs::Gauge* const epoch_gauge = obs::GetGauge("serve.epoch");
  swaps->Increment();
  epoch_gauge->Set(static_cast<double>(published_epoch));
  obs::FlightRecorder::Global().Record(
      obs::FlightEventKind::kPublish, nullptr, /*a=*/0,
      static_cast<int64_t>(published_epoch));
  return Status::OK();
}

Status ModelRegistry::PublishFromFile(const std::string& path,
                                      bool require_crc) {
  // Load into a scratch clone of the current snapshot: shapes are checked
  // by LoadParameters against a real parameter set, and a corrupt file
  // leaves the served model untouched.
  const std::shared_ptr<const Snapshot> snapshot = Acquire();
  std::vector<nn::Tensor> scratch = CloneParams(snapshot->params);
  nn::LoadOptions load_options;
  load_options.require_crc = require_crc;
  CEWS_RETURN_IF_ERROR(nn::LoadParameters(path, scratch, load_options));
  return Publish(scratch);
}

ScenarioRegistry::ScenarioRegistry(const std::vector<std::string>& scenarios,
                                   const std::vector<nn::Tensor>& initial,
                                   bool quantize)
    : quantize_(quantize) {
  CEWS_CHECK(!scenarios.empty()) << "ScenarioRegistry needs >= 1 scenario";
  for (const std::string& name : scenarios) {
    CEWS_CHECK(!name.empty()) << "scenario names must be non-empty";
    CEWS_CHECK(registries_.count(name) == 0)
        << "duplicate scenario '" << name << "'";
    names_.push_back(name);
    registries_.emplace(name,
                        std::make_unique<ModelRegistry>(initial, quantize));
  }
}

ModelRegistry* ScenarioRegistry::Find(const std::string& scenario) const {
  if (scenario.empty()) {
    const auto it = registries_.find(kDefaultScenario);
    if (it != registries_.end()) return it->second.get();
    if (registries_.size() == 1) return registries_.begin()->second.get();
    return nullptr;
  }
  const auto it = registries_.find(scenario);
  return it == registries_.end() ? nullptr : it->second.get();
}

Status ScenarioRegistry::Publish(const std::string& scenario,
                                 const std::vector<nn::Tensor>& params) {
  ModelRegistry* registry = Find(scenario);
  if (registry == nullptr) {
    return Status::NotFound("unknown scenario '" + scenario + "'");
  }
  return registry->Publish(params);
}

Status ScenarioRegistry::PublishFromFile(const std::string& scenario,
                                         const std::string& path,
                                         bool require_crc) {
  ModelRegistry* registry = Find(scenario);
  if (registry == nullptr) {
    return Status::NotFound("unknown scenario '" + scenario + "'");
  }
  return registry->PublishFromFile(path, require_crc);
}

Result<uint64_t> ScenarioRegistry::Epoch(const std::string& scenario) const {
  const ModelRegistry* registry = Find(scenario);
  if (registry == nullptr) {
    return Status::NotFound("unknown scenario '" + scenario + "'");
  }
  return registry->epoch();
}

}  // namespace cews::serve
