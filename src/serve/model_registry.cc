#include "serve/model_registry.h"

#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cews::serve {

namespace {

std::vector<nn::Tensor> CloneParams(const std::vector<nn::Tensor>& params) {
  std::vector<nn::Tensor> clones;
  clones.reserve(params.size());
  for (const nn::Tensor& t : params) clones.push_back(t.Clone());
  return clones;
}

}  // namespace

ModelRegistry::ModelRegistry(const std::vector<nn::Tensor>& initial) {
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->epoch = 0;
  snapshot->params = CloneParams(initial);
  current_.store(std::move(snapshot), std::memory_order_release);
}

std::shared_ptr<const ModelRegistry::Snapshot> ModelRegistry::Acquire()
    const {
  return current_.load(std::memory_order_acquire);
}

Status ModelRegistry::Publish(const std::vector<nn::Tensor>& params) {
  CEWS_TRACE_SCOPE("serve.publish");
  const std::shared_ptr<const Snapshot> reference = Acquire();
  if (params.size() != reference->params.size()) {
    return Status::InvalidArgument(
        "Publish: parameter count mismatch (" +
        std::to_string(params.size()) + " vs " +
        std::to_string(reference->params.size()) + ")");
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (!params[i].defined()) {
      return Status::InvalidArgument("Publish: undefined tensor at index " +
                                     std::to_string(i));
    }
    if (params[i].shape() != reference->params[i].shape()) {
      return Status::InvalidArgument(
          "Publish: shape mismatch at index " + std::to_string(i) + ", " +
          nn::ShapeToString(params[i].shape()) + " vs " +
          nn::ShapeToString(reference->params[i].shape()));
    }
  }
  // Clone outside the writer lock — only the epoch assignment and pointer
  // swap are serialized.
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->params = CloneParams(params);
  {
    std::lock_guard<std::mutex> lock(publish_mu_);
    snapshot->epoch =
        current_.load(std::memory_order_relaxed)->epoch + 1;
    current_.store(std::move(snapshot), std::memory_order_release);
  }
  static obs::Counter* const swaps = obs::GetCounter("serve.hot_swaps");
  static obs::Gauge* const epoch_gauge = obs::GetGauge("serve.epoch");
  swaps->Increment();
  epoch_gauge->Set(static_cast<double>(epoch()));
  return Status::OK();
}

}  // namespace cews::serve
