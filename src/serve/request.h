// cews::serve — request/response types of the in-process policy-inference
// service: what one client (a worker fleet's control loop) sends to the
// PolicyServer and what it gets back.
#ifndef CEWS_SERVE_REQUEST_H_
#define CEWS_SERVE_REQUEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "agents/ppo.h"
#include "common/status.h"
#include "env/env.h"

namespace cews::serve {

/// Request-lifecycle trace context. When tracing is on, Submit stamps a
/// process-unique id; the shard worker then emits one tagged span per
/// lifecycle phase (serve.queue_wait, serve.batch_assemble, serve.forward,
/// serve.scatter) carrying (id, shard) as trace args, so one request's
/// journey is reconstructible from the Chrome trace across batcher and
/// worker threads. With tracing off the id stays 0 and the serve path
/// pays a single relaxed load (the TraceEnabled check) per request.
struct RequestTrace {
  uint64_t id = 0;  ///< 0 = untraced.
  bool enabled() const { return id != 0; }
};

/// One client's ask for a scheduling decision. Carries either a pre-encoded
/// grid state or a raw environment to encode server-side.
struct ScheduleRequest {
  /// Stable client identity. A Fleet's consistent-hash router keys on
  /// (client_id, scenario), so every request a client sends lands on the
  /// same shard — its in-order stream shares one batcher and its latency
  /// is not smeared across the fleet. Ignored by a standalone PolicyServer.
  uint64_t client_id = 0;

  /// Named scenario ("city") whose published model should decide. Empty
  /// resolves to ScenarioRegistry::kDefaultScenario (or the sole scenario
  /// when only one is registered); unknown names are rejected NotFound.
  std::string scenario;

  /// Pre-encoded state in StateEncoder layout ([channels, grid, grid]
  /// row-major, exactly PolicyServer::StateSize() floats). Leave empty to
  /// have the server encode `env` instead.
  std::vector<float> state;

  /// Raw observation to encode server-side when `state` is empty. The
  /// pointed-to Env must stay alive and unmodified until the response
  /// future resolves — the closed-loop client pattern (submit, wait, step)
  /// satisfies this by construction.
  const env::Env* env = nullptr;

  /// Optional move-validity mask, [num_workers * num_moves] 0/1 flags
  /// (env::MoveValidityMask layout). Masked-out moves get the -1e9 logit
  /// sentinel before sampling. Empty = every move valid.
  std::vector<uint8_t> move_mask;

  /// Argmax instead of sampling. Per-request: deterministic and sampled
  /// requests still share one batched Forward.
  bool deterministic = false;

  /// Optional client-declared arrival time (Stopwatch::NowNs clock). When
  /// set, the server's latency *metrics* (per-shard and fleet rolling
  /// histograms, latency_ns histograms) charge from min(arrival_ns,
  /// enqueue time) instead of the enqueue time, so a lagging submitter
  /// cannot hide queueing delay from the windowed gauges (the same
  /// coordinated-omission rule the open-loop load generator applies).
  /// ScheduleResponse::latency_ns stays enqueue-based. 0 = unset.
  uint64_t arrival_ns = 0;

  /// Filled by PolicyServer::Submit when tracing is enabled; clients leave
  /// it default-constructed.
  RequestTrace trace;
};

/// The completed decision for one request.
struct ScheduleResponse {
  /// Non-OK when the request was rejected (bad sizes, server stopped).
  /// Every other field is meaningful only when ok().
  Status status;

  /// Parameter-snapshot epoch that served this request. A response is
  /// computed entirely from the snapshot captured at dequeue time — never
  /// a torn mix of old and new parameters.
  uint64_t epoch = 0;

  /// Sampled per-worker actions, joint log-prob and value estimate V(s).
  agents::ActResult act;

  /// The exact logits the decision was drawn from: post-masking route
  /// logits [num_workers * num_moves] and charge logits [num_workers * 2].
  std::vector<float> move_logits;
  std::vector<float> charge_logits;

  /// Telemetry: how many requests shared this one's batched Forward, and
  /// the enqueue-to-completion time of this one.
  int batch_size = 0;
  uint64_t latency_ns = 0;

  /// Fleet shard that served this request (-1 from a standalone
  /// PolicyServer). The routing invariant — same (client_id, scenario),
  /// same shard — is observable here.
  int shard = -1;

  bool ok() const { return status.ok(); }
};

}  // namespace cews::serve

#endif  // CEWS_SERVE_REQUEST_H_
