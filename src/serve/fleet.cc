#include "serve/fleet.h"

#include <set>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace cews::serve {

namespace {

/// Per-shard metrics are named serve.shard.N.* — a hand-curated set with a
/// hard registry cap (obs::kMaxCounters), so the shard count is bounded
/// here rather than discovered as a CHECK failure mid-scale-out.
constexpr int kMaxShards = 64;

Status ValidateFleetConfig(const FleetConfig& config) {
  if (config.num_shards <= 0 || config.num_shards > kMaxShards) {
    return Status::InvalidArgument(
        "num_shards must be in [1, " + std::to_string(kMaxShards) +
        "], got " + std::to_string(config.num_shards));
  }
  if (config.threads_per_shard <= 0) {
    return Status::InvalidArgument(
        "threads_per_shard must be positive, got " +
        std::to_string(config.threads_per_shard));
  }
  if (config.vnodes_per_shard <= 0) {
    return Status::InvalidArgument(
        "vnodes_per_shard must be positive, got " +
        std::to_string(config.vnodes_per_shard));
  }
  if (config.scenarios.empty()) {
    return Status::InvalidArgument("scenarios must be non-empty");
  }
  std::set<std::string> seen;
  for (const std::string& name : config.scenarios) {
    if (name.empty()) {
      return Status::InvalidArgument("scenario names must be non-empty");
    }
    if (!seen.insert(name).second) {
      return Status::InvalidArgument("duplicate scenario '" + name + "'");
    }
  }
  // Net dims, batch and queue bounds are validated by the per-shard
  // PolicyServer::Create below; checking shard-level knobs here keeps the
  // error messages attributable to the fleet entry point.
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<Fleet>> Fleet::Create(const FleetConfig& config) {
  CEWS_RETURN_IF_ERROR(ValidateFleetConfig(config));

  PolicyServerConfig shard_config;
  shard_config.net = config.net;
  shard_config.num_threads = config.threads_per_shard;
  shard_config.max_batch = config.max_batch;
  shard_config.max_queue_delay_us = config.max_queue_delay_us;
  shard_config.max_queue_depth = config.max_queue_depth;
  shard_config.runtime_threads = config.runtime_threads;
  shard_config.precision = config.precision;

  // One validation pass before any net or thread is constructed: shard 0's
  // config stands in for all (they differ only in shard_index and seed).
  CEWS_RETURN_IF_ERROR(PolicyServer::ValidateConfig(shard_config));

  // Epoch-0 parameters shared by every scenario: a freshly initialized net
  // from the fleet seed (cloned per scenario by the registry).
  std::shared_ptr<ScenarioRegistry> scenarios;
  {
    Rng rng(config.seed);
    const agents::PolicyNet net(config.net, rng);
    scenarios = std::make_shared<ScenarioRegistry>(
        config.scenarios, net.Parameters(),
        /*quantize=*/config.precision == Precision::kInt8);
  }

  // Size the intra-op kernel pool once, before shard workers start issuing
  // ParallelFor regions (same contract as the trainers).
  runtime::SetGlobalPoolThreads(config.runtime_threads);

  std::vector<std::unique_ptr<PolicyServer>> shards;
  shards.reserve(static_cast<size_t>(config.num_shards));
  for (int s = 0; s < config.num_shards; ++s) {
    PolicyServerConfig one = shard_config;
    one.shard_index = s;
    // Decorrelate the shards' sampling streams (workers further split by
    // worker index).
    one.seed = config.seed + 0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(s);
    CEWS_ASSIGN_OR_RETURN(std::unique_ptr<PolicyServer> shard,
                          PolicyServer::Create(one, scenarios));
    shards.push_back(std::move(shard));
  }

  static obs::Gauge* const shard_gauge = obs::GetGauge("serve.fleet.shards");
  shard_gauge->Set(static_cast<double>(config.num_shards));
  obs::FlightRecorder::Global().Record(obs::FlightEventKind::kNote,
                                       "fleet_create",
                                       /*a=*/config.num_shards,
                                       /*b=*/static_cast<int64_t>(
                                           config.scenarios.size()));
  return std::unique_ptr<Fleet>(
      new Fleet(config, std::move(scenarios), std::move(shards)));
}

Fleet::Fleet(const FleetConfig& config,
             std::shared_ptr<ScenarioRegistry> scenarios,
             std::vector<std::unique_ptr<PolicyServer>> shards)
    : config_(config),
      scenarios_(std::move(scenarios)),
      router_(RouterConfig{config.num_shards, config.vnodes_per_shard}),
      shards_(std::move(shards)) {}

Fleet::~Fleet() { Stop(); }

void Fleet::Stop() {
  for (const std::unique_ptr<PolicyServer>& shard : shards_) shard->Stop();
}

std::future<ScheduleResponse> Fleet::Submit(ScheduleRequest request) {
  static obs::Counter* const routed = obs::GetCounter("serve.fleet.requests");
  const int shard = router_.ShardFor(request.client_id, request.scenario);
  routed->Increment();
  return shards_[static_cast<size_t>(shard)]->Submit(std::move(request));
}

Status Fleet::Publish(const std::string& scenario,
                      const std::vector<nn::Tensor>& params) {
  return scenarios_->Publish(scenario, params);
}

Status Fleet::PublishFromFile(const std::string& scenario,
                              const std::string& path, bool require_crc) {
  return scenarios_->PublishFromFile(scenario, path, require_crc);
}

Result<uint64_t> Fleet::Epoch(const std::string& scenario) const {
  return scenarios_->Epoch(scenario);
}

int Fleet::QueueDepth(int shard) const {
  CEWS_CHECK_GE(shard, 0);
  CEWS_CHECK_LT(shard, num_shards());
  return shards_[static_cast<size_t>(shard)]->QueueDepth();
}

}  // namespace cews::serve
