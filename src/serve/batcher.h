// cews::serve — dynamic micro-batcher: an MPMC queue that coalesces
// independently-submitted requests into batches for one shared Forward.
//
// Flush policy: a consumer's PopBatch returns as soon as either the queue
// holds max_batch requests (flush by size) or the *oldest* queued request
// has waited max_queue_delay_us (flush by timeout), whichever comes first.
// The delay bound is therefore a hard cap on the queueing latency any
// request pays to help later arrivals share its batch.
//
// Admission control: an optional max_depth bounds the queue. A Push against
// a full queue returns kOverloaded immediately — the queue sheds, it never
// blocks the producer — so overload turns into fast ResourceExhausted
// responses instead of unbounded queueing latency (see DESIGN.md §6).
#ifndef CEWS_SERVE_BATCHER_H_
#define CEWS_SERVE_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "serve/request.h"

namespace cews::obs {
class Gauge;
}  // namespace cews::obs

namespace cews::serve {

class ModelRegistry;

/// A queued request: payload, completion promise, enqueue timestamp.
struct PendingRequest {
  ScheduleRequest request;
  std::promise<ScheduleResponse> promise;
  uint64_t enqueue_ns = 0;  ///< Stopwatch::NowNs() at Push.
  /// Scenario registry the request resolved to at Submit (validation
  /// happens once, producers-side); workers group a popped batch by this
  /// pointer so each scenario group shares one batched Forward.
  ModelRegistry* registry = nullptr;
};

/// Outcome of RequestBatcher::Push. On anything but kAccepted the batcher
/// has NOT consumed the item — the caller still owns the promise and must
/// complete it (FailedPrecondition after shutdown, ResourceExhausted when
/// shed).
enum class PushResult {
  kAccepted,    ///< Queued; a consumer will complete the promise.
  kShutdown,    ///< Rejected: Shutdown() was called.
  kOverloaded,  ///< Shed: the queue is at max_depth.
};

/// Thread-safe for any number of producers (Push) and consumers (PopBatch).
class RequestBatcher {
 public:
  /// `max_depth` bounds the queue (0 = unbounded, the legacy standalone
  /// behavior). `depth_gauge`, when non-null, tracks the instantaneous
  /// queue length (a fleet passes its per-shard serve.shard.N.queue_depth
  /// gauge; nullptr skips telemetry).
  RequestBatcher(int max_batch, int64_t max_queue_delay_us,
                 int max_depth = 0, obs::Gauge* depth_gauge = nullptr);

  /// Enqueues one request, stamping its enqueue time. Never blocks: a full
  /// queue sheds (kOverloaded) rather than waiting for capacity.
  PushResult Push(PendingRequest& item);

  /// Blocks until a batch is ready per the flush policy, then returns up to
  /// max_batch requests in arrival order. Returns an empty vector only at
  /// shutdown with the queue fully drained — the consumer's exit signal.
  std::vector<PendingRequest> PopBatch();

  /// Rejects future Pushes and wakes all consumers. Already-queued requests
  /// are still handed out by PopBatch (graceful drain). Idempotent.
  void Shutdown();

  /// Instantaneous queue length (telemetry).
  int depth() const;

  int max_batch() const { return max_batch_; }
  int max_depth() const { return max_depth_; }

 private:
  const int max_batch_;
  const int64_t max_delay_ns_;
  const int max_depth_;  ///< 0 = unbounded.
  obs::Gauge* const depth_gauge_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PendingRequest> queue_;
  bool shutdown_ = false;
};

}  // namespace cews::serve

#endif  // CEWS_SERVE_BATCHER_H_
