// cews::serve — dynamic micro-batcher: an MPMC queue that coalesces
// independently-submitted requests into batches for one shared Forward.
//
// Flush policy: a consumer's PopBatch returns as soon as either the queue
// holds max_batch requests (flush by size) or the *oldest* queued request
// has waited max_queue_delay_us (flush by timeout), whichever comes first.
// The delay bound is therefore a hard cap on the queueing latency any
// request pays to help later arrivals share its batch.
#ifndef CEWS_SERVE_BATCHER_H_
#define CEWS_SERVE_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "serve/request.h"

namespace cews::serve {

/// A queued request: payload, completion promise, enqueue timestamp.
struct PendingRequest {
  ScheduleRequest request;
  std::promise<ScheduleResponse> promise;
  uint64_t enqueue_ns = 0;  ///< Stopwatch::NowNs() at Push.
};

/// Thread-safe for any number of producers (Push) and consumers (PopBatch).
class RequestBatcher {
 public:
  RequestBatcher(int max_batch, int64_t max_queue_delay_us);

  /// Enqueues one request, stamping its enqueue time. Returns false after
  /// Shutdown without consuming `item` — the caller still owns the promise
  /// and must complete it.
  bool Push(PendingRequest& item);

  /// Blocks until a batch is ready per the flush policy, then returns up to
  /// max_batch requests in arrival order. Returns an empty vector only at
  /// shutdown with the queue fully drained — the consumer's exit signal.
  std::vector<PendingRequest> PopBatch();

  /// Rejects future Pushes and wakes all consumers. Already-queued requests
  /// are still handed out by PopBatch (graceful drain). Idempotent.
  void Shutdown();

  /// Instantaneous queue length (telemetry).
  int depth() const;

  int max_batch() const { return max_batch_; }

 private:
  const int max_batch_;
  const int64_t max_delay_ns_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PendingRequest> queue_;
  bool shutdown_ = false;
};

}  // namespace cews::serve

#endif  // CEWS_SERVE_BATCHER_H_
