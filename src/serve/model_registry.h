// cews::serve — lock-free model hot-swap, single- and multi-scenario.
//
// ModelRegistry decouples parameter publication (a trainer finishing an
// update round, or a checkpoint watcher reloading from disk) from inference
// (server workers running batched Forwards): Publish() clones the new
// parameter values into an immutable snapshot and swaps an atomic pointer;
// Acquire() is a single atomic shared_ptr load on the inference hot path.
// A request is served entirely by the snapshot captured at dequeue time, so
// a swap can never expose a torn half-old/half-new parameter set, and
// publication never blocks in-flight inference.
//
// ScenarioRegistry maps scenario names ("cities") to independent
// ModelRegistry instances. The name set is fixed at construction, so Find()
// needs no lock on the hot path — only each registry's own atomics. One
// serving fleet holds one ScenarioRegistry shared by every shard: publishing
// scenario A's parameters can never perturb requests being served under
// scenario B, because they resolve to different ModelRegistry objects.
//
// Double-buffering argument (see DESIGN.md): snapshots are reference-
// counted, and servers pin a snapshot only for the duration of one batch.
// At steady state at most two parameter buffers are therefore live — the
// current snapshot and the previous one still finishing its last batches —
// after which the old buffer frees itself when its final reader drops it.
#ifndef CEWS_SERVE_MODEL_REGISTRY_H_
#define CEWS_SERVE_MODEL_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "nn/quant.h"
#include "nn/tensor.h"

namespace cews::serve {

class ModelRegistry {
 public:
  /// One published parameter set. `params` are deep copies, immutable after
  /// publication; epoch 0 is the registry's initial set, each Publish
  /// increments it by one.
  struct Snapshot {
    uint64_t epoch = 0;
    std::vector<nn::Tensor> params;
    /// Publish-time int8 bundle of `params` (nn/quant.h); non-null iff the
    /// registry was built with quantize=true. Built ONCE per Publish —
    /// inference workers read it in place, paying zero per-request
    /// quantization or pack cost for the weights.
    std::shared_ptr<const nn::quant::QuantizedParams> quant;
  };

  /// Clones `initial` as the epoch-0 snapshot. The list fixes the shapes
  /// every later Publish must match. With `quantize`, every snapshot
  /// (including epoch 0) also carries the int8 bundle.
  explicit ModelRegistry(const std::vector<nn::Tensor>& initial,
                         bool quantize = false);

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// The current snapshot (lock-free: one atomic load + refcount bump).
  /// The returned pointer keeps the snapshot alive for as long as the
  /// caller holds it, regardless of concurrent Publishes.
  std::shared_ptr<const Snapshot> Acquire() const;

  /// Clones `params` into a fresh snapshot and swaps it in as the current
  /// one. Concurrent publishers are serialized against each other; readers
  /// are never blocked. Shapes must match the initial set pairwise —
  /// returns InvalidArgument otherwise, leaving the current snapshot
  /// untouched.
  Status Publish(const std::vector<nn::Tensor>& params);

  /// Loads a checkpoint from disk into a scratch clone of the current
  /// snapshot (shape-checked against a real parameter set; a corrupt file
  /// leaves the served model untouched) and publishes it. `require_crc`
  /// additionally rejects legacy footer-less files (nn::LoadOptions) — the
  /// automated publish loop sets it so an unverifiable file can never be
  /// fanned out to a live fleet.
  Status PublishFromFile(const std::string& path, bool require_crc = false);

  /// Epoch of the current snapshot. A dedicated relaxed counter, NOT an
  /// Acquire(): polling the epoch (admission checks, worker staleness
  /// probes, CLI display) must not bump the snapshot refcount — that is a
  /// contended RMW on the control-block cache line shared with the
  /// inference hot path.
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Whether snapshots carry the int8 bundle.
  bool quantizes() const { return quantize_; }

 private:
  std::atomic<std::shared_ptr<const Snapshot>> current_;
  /// Mirrors current_->epoch; updated inside the writer lock in Publish.
  std::atomic<uint64_t> epoch_{0};
  std::mutex publish_mu_;  ///< Serializes writers only.
  const bool quantize_ = false;
};

/// Immutable name -> ModelRegistry map: one hot-swappable parameter stream
/// per named scenario. All scenarios share one architecture (`initial`
/// fixes the shapes) and each starts at an independent epoch 0.
class ScenarioRegistry {
 public:
  /// The scenario a request with an empty scenario tag resolves to.
  static constexpr const char* kDefaultScenario = "default";

  /// One registry per name, each seeded with a clone of `initial`.
  /// `scenarios` must be non-empty, with unique non-empty names
  /// (CHECK-enforced; Fleet::Create validates user input first). With
  /// `quantize`, every registry builds the int8 bundle at each publish
  /// (int8 serving fleets).
  ScenarioRegistry(const std::vector<std::string>& scenarios,
                   const std::vector<nn::Tensor>& initial,
                   bool quantize = false);

  ScenarioRegistry(const ScenarioRegistry&) = delete;
  ScenarioRegistry& operator=(const ScenarioRegistry&) = delete;

  /// The registry for `scenario` ("" resolves to kDefaultScenario if
  /// registered, else to the sole scenario when only one exists), or
  /// nullptr for an unknown name. Lock-free: the map is immutable after
  /// construction.
  ModelRegistry* Find(const std::string& scenario) const;

  /// Publish into one scenario; NotFound for unknown names.
  Status Publish(const std::string& scenario,
                 const std::vector<nn::Tensor>& params);
  Status PublishFromFile(const std::string& scenario,
                         const std::string& path, bool require_crc = false);

  /// Epoch of one scenario's current snapshot; NotFound for unknown names.
  Result<uint64_t> Epoch(const std::string& scenario) const;

  /// Registered names, in registration order.
  const std::vector<std::string>& names() const { return names_; }

  /// Whether member registries carry int8 bundles.
  bool quantizes() const { return quantize_; }

 private:
  const bool quantize_ = false;
  std::vector<std::string> names_;
  std::map<std::string, std::unique_ptr<ModelRegistry>> registries_;
};

}  // namespace cews::serve

#endif  // CEWS_SERVE_MODEL_REGISTRY_H_
