// cews::serve — lock-free model hot-swap.
//
// The registry decouples parameter publication (a trainer finishing an
// update round, or a checkpoint watcher reloading from disk) from inference
// (server workers running batched Forwards): Publish() clones the new
// parameter values into an immutable snapshot and swaps an atomic pointer;
// Acquire() is a single atomic shared_ptr load on the inference hot path.
// A request is served entirely by the snapshot captured at dequeue time, so
// a swap can never expose a torn half-old/half-new parameter set, and
// publication never blocks in-flight inference.
//
// Double-buffering argument (see DESIGN.md): snapshots are reference-
// counted, and servers pin a snapshot only for the duration of one batch.
// At steady state at most two parameter buffers are therefore live — the
// current snapshot and the previous one still finishing its last batches —
// after which the old buffer frees itself when its final reader drops it.
#ifndef CEWS_SERVE_MODEL_REGISTRY_H_
#define CEWS_SERVE_MODEL_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "nn/tensor.h"

namespace cews::serve {

class ModelRegistry {
 public:
  /// One published parameter set. `params` are deep copies, immutable after
  /// publication; epoch 0 is the registry's initial set, each Publish
  /// increments it by one.
  struct Snapshot {
    uint64_t epoch = 0;
    std::vector<nn::Tensor> params;
  };

  /// Clones `initial` as the epoch-0 snapshot. The list fixes the shapes
  /// every later Publish must match.
  explicit ModelRegistry(const std::vector<nn::Tensor>& initial);

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// The current snapshot (lock-free: one atomic load + refcount bump).
  /// The returned pointer keeps the snapshot alive for as long as the
  /// caller holds it, regardless of concurrent Publishes.
  std::shared_ptr<const Snapshot> Acquire() const;

  /// Clones `params` into a fresh snapshot and swaps it in as the current
  /// one. Concurrent publishers are serialized against each other; readers
  /// are never blocked. Shapes must match the initial set pairwise —
  /// returns InvalidArgument otherwise, leaving the current snapshot
  /// untouched.
  Status Publish(const std::vector<nn::Tensor>& params);

  /// Epoch of the current snapshot.
  uint64_t epoch() const { return Acquire()->epoch; }

 private:
  std::atomic<std::shared_ptr<const Snapshot>> current_;
  std::mutex publish_mu_;  ///< Serializes writers only.
};

}  // namespace cews::serve

#endif  // CEWS_SERVE_MODEL_REGISTRY_H_
