// cews::serve — Fleet: the serving subsystem's public API.
//
// A Fleet is N PolicyServer shards — each with its own RequestBatcher and
// inference worker pool — behind a consistent-hash router keyed on
// (client_id, scenario), all serving one shared multi-scenario
// ScenarioRegistry (one hot-swappable, epoch-counted parameter stream per
// named scenario, so one fleet serves many cities). The pieces compose
// into the three guarantees the scheduler's control plane needs:
//
//   * Routing stability — a client's requests always land on the same
//     shard (router.h), so its in-order stream shares one batcher and one
//     latency distribution.
//   * Isolated hot-swap — Publish(scenario, params) swaps one scenario's
//     snapshot without perturbing in-flight requests of any scenario
//     (model_registry.h); responses report the (scenario-local) epoch that
//     served them and are never torn.
//   * Bounded overload — per-shard admission control sheds (immediate
//     ResourceExhausted) instead of queueing once max_queue_depth is
//     reached, keeping tail latency bounded and measurable; sheds are
//     counted per shard (serve.shard.N.shed) and fleet-wide
//     (serve.fleet.shed_total).
//
// Fleet::Create(FleetConfig) is the single validated entry point,
// mirroring core::DrlCews::Create. The former PolicyServer surface
// (Submit/Publish/PublishFromFile/registry()) is an internal shard detail;
// standalone PolicyServer construction remains only for single-shard
// embedding and tests.
#ifndef CEWS_SERVE_FLEET_H_
#define CEWS_SERVE_FLEET_H_

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "agents/policy_net.h"
#include "common/result.h"
#include "common/status.h"
#include "serve/model_registry.h"
#include "serve/request.h"
#include "serve/router.h"
#include "serve/server.h"

namespace cews::serve {

struct FleetConfig {
  /// Architecture served by every shard and scenario (one fleet, one net
  /// shape; scenarios differ in parameters, not architecture).
  agents::PolicyNetConfig net;
  /// Server shards; each gets its own batcher + worker pool.
  int num_shards = 1;
  /// Inference worker threads per shard.
  int threads_per_shard = 1;
  /// Micro-batcher flush bounds, per shard (see batcher.h).
  int max_batch = 8;
  int64_t max_queue_delay_us = 200;
  /// Admission control: per-shard queued requests beyond this depth are
  /// shed with ResourceExhausted (never blocks). 0 = unbounded.
  int max_queue_depth = 1024;
  /// Consistent-hash ring points per shard (see router.h).
  int vnodes_per_shard = 64;
  /// Intra-op NN kernel threads (0 = hardware cores; CEWS_NUM_THREADS
  /// overrides), applied to the global kernel pool once at Create.
  int runtime_threads = 1;
  /// Seeds the per-scenario epoch-0 parameters and the shards' sampling
  /// streams.
  uint64_t seed = 1;
  /// Named scenarios ("cities") this fleet serves. Non-empty, unique,
  /// non-empty names; requests with an empty scenario tag resolve to
  /// "default" if registered (or the sole name when there is only one).
  std::vector<std::string> scenarios = {ScenarioRegistry::kDefaultScenario};
  /// Forward-pass precision of every shard (see serve::Precision). kInt8
  /// makes each Publish additionally build the per-channel int8 bundle the
  /// shards serve in place — the `--precision` knob of `cews serve`.
  Precision precision = Precision::kFp32;
};

class Fleet {
 public:
  /// Validates the config (shard/thread/batch/queue bounds, scenario name
  /// set, net dims) and starts every shard. All scenarios start at a
  /// freshly initialized epoch-0 model from `seed`; publish trained
  /// parameters via Publish/PublishFromFile.
  static Result<std::unique_ptr<Fleet>> Create(const FleetConfig& config);

  /// Stops and joins every shard (draining queued requests).
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  /// Routes by (request.client_id, request.scenario) and enqueues on the
  /// owning shard; thread-safe and non-blocking. The future always
  /// resolves — non-OK for malformed requests (InvalidArgument), unknown
  /// scenarios (NotFound), a saturated shard (ResourceExhausted, shed
  /// immediately) or after Stop() (FailedPrecondition).
  std::future<ScheduleResponse> Submit(ScheduleRequest request);

  /// Hot-swaps one scenario's parameters fleet-wide (all shards share the
  /// registry). NotFound for unknown scenarios; in-flight requests of
  /// every scenario are unperturbed.
  Status Publish(const std::string& scenario,
                 const std::vector<nn::Tensor>& params);

  /// Loads a checkpoint from disk and publishes it into one scenario (the
  /// live model is untouched on failure). `require_crc` rejects legacy
  /// footer-less checkpoints — automated publishers (dist::DeployLoop) set
  /// it so only integrity-checked files ever reach a live fleet.
  Status PublishFromFile(const std::string& scenario,
                         const std::string& path, bool require_crc = false);

  /// Epoch of one scenario's current snapshot (relaxed read).
  Result<uint64_t> Epoch(const std::string& scenario) const;

  /// Shard in [0, num_shards) this key routes to (pure; what Submit uses).
  int ShardFor(uint64_t client_id, const std::string& scenario) const {
    return router_.ShardFor(client_id, scenario);
  }

  /// Read-only scenario map (names, epochs).
  const ScenarioRegistry& scenarios() const { return *scenarios_; }

  const agents::PolicyNetConfig& net_config() const { return config_.net; }

  /// The precision every shard serves at.
  Precision precision() const { return config_.precision; }

  /// Floats a pre-encoded ScheduleRequest::state must carry.
  int StateSize() const {
    return config_.net.in_channels * config_.net.grid * config_.net.grid;
  }

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Instantaneous queue depth of one shard (telemetry, tests).
  int QueueDepth(int shard) const;

  /// Stops every shard. Later Submits resolve immediately with
  /// FailedPrecondition. Idempotent.
  void Stop();

 private:
  Fleet(const FleetConfig& config,
        std::shared_ptr<ScenarioRegistry> scenarios,
        std::vector<std::unique_ptr<PolicyServer>> shards);

  const FleetConfig config_;
  std::shared_ptr<ScenarioRegistry> scenarios_;
  ConsistentHashRouter router_;
  std::vector<std::unique_ptr<PolicyServer>> shards_;
};

}  // namespace cews::serve

#endif  // CEWS_SERVE_FLEET_H_
