// cews::serve — PolicyServer: one in-process, dynamically micro-batched
// inference shard over trained DRL-CEWS policies.
//
// Clients submit per-fleet ScheduleRequests from any thread and get a
// future; the batcher coalesces concurrent requests (flush on max_batch or
// max_queue_delay_us); a pool of inference workers runs ONE batched
// PolicyNet::Forward per (flush, scenario) group and completes each future
// with the actions, masked logits and value estimate. Model parameters
// hot-swap through per-scenario ModelRegistry entries without ever blocking
// in-flight inference: each worker keeps a private PolicyNet and copies a
// snapshot's values in only when the (scenario, epoch) it is serving
// changes, so concurrent workers never share mutable tensors and every
// response is computed from exactly one epoch of exactly one scenario.
//
// A PolicyServer is the *shard* building block of serve::Fleet (fleet.h) —
// new code should go through Fleet::Create, which owns routing, the shared
// multi-scenario registry, admission control and fleet-wide publication.
// Standalone construction remains supported for single-shard embedding and
// tests.
#ifndef CEWS_SERVE_SERVER_H_
#define CEWS_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "agents/policy_net.h"
#include "common/result.h"
#include "common/status.h"
#include "env/state_encoder.h"
#include "serve/batcher.h"
#include "serve/model_registry.h"
#include "serve/request.h"

namespace cews::obs {
class Counter;
class Gauge;
class Histogram;
class RollingHistogram;
}  // namespace cews::obs

namespace cews::serve {

/// Numeric precision of the inference forward pass.
///
/// kFp32 is the historical path: each worker owns a private fp32 PolicyNet
/// replica and copies snapshot values in on epoch change. kInt8 serves the
/// snapshot's publish-time nn::quant::QuantizedParams bundle in place
/// through the packed int8 kernels (agents/quant_policy.h): no per-worker
/// parameter copy, no per-request weight quantization, and the decision
/// protocol (masking, sampling, Rng draw order) is byte-for-byte the fp32
/// one — only the forward arithmetic changes. Int8 serving is gated on
/// action agreement with the fp32 reference (ISSUE: >= 99% argmax match
/// over the scenario suite; enforced by tests and the deploy/CLI gates).
enum class Precision { kFp32, kInt8 };

/// "fp32" / "int8".
const char* PrecisionName(Precision precision);

/// Parses "fp32" / "int8" (InvalidArgument otherwise).
Result<Precision> ParsePrecision(const std::string& name);

struct PolicyServerConfig {
  /// Architecture served (grid, channels, workers, moves). Must match the
  /// checkpoints published into the registry.
  agents::PolicyNetConfig net;
  /// Inference worker threads draining the batcher.
  int num_threads = 1;
  /// Flush a batch at this many coalesced requests...
  int max_batch = 8;
  /// ...or once the oldest queued request has waited this long.
  int64_t max_queue_delay_us = 200;
  /// Admission control: queued requests beyond this depth are shed — Submit
  /// resolves immediately with ResourceExhausted instead of queueing
  /// (never blocks). 0 = unbounded (legacy standalone behavior).
  int max_queue_depth = 0;
  /// Intra-op NN kernel threads (0 = hardware cores; CEWS_NUM_THREADS
  /// overrides), applied to the global kernel pool at Create.
  int runtime_threads = 1;
  /// Seeds the epoch-0 parameters and the per-worker sampling streams.
  uint64_t seed = 1;
  /// Fleet shard index (>= 0): names the per-shard metrics
  /// (serve.shard.N.queue_depth, serve.shard.N.shed) and is reported in
  /// every ScheduleResponse::shard. -1 = standalone (legacy metric names,
  /// shard -1 in responses).
  int shard_index = -1;
  /// Forward-pass precision. kInt8 requires the scenario registry to carry
  /// quantized bundles (standalone Create builds one accordingly; the fleet
  /// hook validates the shared registry).
  Precision precision = Precision::kFp32;
};

class PolicyServer {
 public:
  /// Validates the config (positive net dims, threads, batch bound) and
  /// starts the worker pool serving a private single-scenario registry
  /// ("default"). The epoch-0 model is freshly initialized from `seed`;
  /// publish trained parameters via Publish/PublishFromFile.
  static Result<std::unique_ptr<PolicyServer>> Create(
      const PolicyServerConfig& config);

  /// Fleet hook: a shard serving a shared multi-scenario registry (owned
  /// jointly with the Fleet and its sibling shards). Does NOT resize the
  /// global kernel pool — the fleet does that once.
  static Result<std::unique_ptr<PolicyServer>> Create(
      const PolicyServerConfig& config,
      std::shared_ptr<ScenarioRegistry> scenarios);

  /// The validation Create applies (net dims, thread/batch/queue bounds),
  /// reusable by Fleet::Create before it constructs anything.
  static Status ValidateConfig(const PolicyServerConfig& config);

  /// Stops and joins the workers (draining queued requests).
  ~PolicyServer();

  PolicyServer(const PolicyServer&) = delete;
  PolicyServer& operator=(const PolicyServer&) = delete;

  /// Enqueues one request; thread-safe and non-blocking. The future always
  /// resolves — with a non-OK ScheduleResponse::status for malformed
  /// requests (InvalidArgument), unknown scenarios (NotFound), a full queue
  /// (ResourceExhausted, when max_queue_depth bounds it) or after Stop()
  /// (FailedPrecondition) — never with a broken promise.
  std::future<ScheduleResponse> Submit(ScheduleRequest request);

  /// Hot-swaps the default scenario's parameters (clones `params`; see
  /// ModelRegistry). Publication into other scenarios goes through the
  /// owning Fleet (or scenarios().Publish for standalone multi-scenario
  /// setups).
  Status Publish(const std::vector<nn::Tensor>& params);

  /// Reloads a checkpoint from disk into the default scenario (via
  /// ModelRegistry::PublishFromFile — the live model is untouched on
  /// failure).
  Status PublishFromFile(const std::string& path);

  /// Epoch of the default scenario's served snapshot (relaxed counter
  /// read; does not touch the snapshot refcount).
  uint64_t epoch() const { return default_registry_->epoch(); }

  /// Read-only view of the default scenario's registry. Publication goes
  /// through Publish/PublishFromFile (or the Fleet) — handing out a
  /// mutable registry would bypass their validation and ownership story.
  const ModelRegistry& registry() const { return *default_registry_; }

  /// The scenario map this server serves (shared with the fleet's other
  /// shards when fleet-constructed).
  const ScenarioRegistry& scenarios() const { return *scenarios_; }

  const agents::PolicyNetConfig& net_config() const { return config_.net; }

  /// Floats a pre-encoded ScheduleRequest::state must carry.
  int StateSize() const {
    return config_.net.in_channels * config_.net.grid * config_.net.grid;
  }

  /// Instantaneous batcher queue length (telemetry, tests).
  int QueueDepth() const { return batcher_.depth(); }

  /// Drains the queue, completes every pending request, joins the workers.
  /// Later Submits resolve immediately with FailedPrecondition. Idempotent.
  void Stop();

 private:
  PolicyServer(const PolicyServerConfig& config,
               std::shared_ptr<ScenarioRegistry> scenarios);

  void WorkerLoop(int worker_index);
  Status ValidateRequest(const ScheduleRequest& request) const;

  const PolicyServerConfig config_;
  env::StateEncoder encoder_;
  std::shared_ptr<ScenarioRegistry> scenarios_;
  ModelRegistry* default_registry_;  ///< scenarios_->Find("").
  obs::Gauge* depth_gauge_;          ///< serve.shard.N.queue_depth.
  obs::Counter* shed_counter_;       ///< serve.shard.N.shed.
  obs::Histogram* latency_hist_;     ///< serve.shard.N.latency_ns.
  /// Windowed latency: the shard's own rolling histogram, plus the shared
  /// fleet-wide one when fleet-constructed (nullptr standalone) — the SLO
  /// monitor and exporter read these.
  obs::RollingHistogram* rolling_latency_;
  obs::RollingHistogram* fleet_rolling_latency_;
  /// Shard-local shed tally for flight-recorder sampling (obs::Counter is
  /// write-only): a shed event is recorded only at power-of-two counts, so
  /// a shed storm cannot evict the sparse lifecycle events around it.
  std::atomic<uint64_t> shed_total_{0};
  RequestBatcher batcher_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
};

}  // namespace cews::serve

#endif  // CEWS_SERVE_SERVER_H_
