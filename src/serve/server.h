// cews::serve — PolicyServer: an in-process, dynamically micro-batched
// inference service over the trained DRL-CEWS policy.
//
// Clients submit per-fleet ScheduleRequests from any thread and get a
// future; the batcher coalesces concurrent requests (flush on max_batch or
// max_queue_delay_us); a pool of inference workers runs ONE batched
// PolicyNet::Forward per flush and completes each future with the actions,
// masked logits and value estimate. Model parameters hot-swap through the
// ModelRegistry without ever blocking in-flight inference: each worker
// keeps a private PolicyNet and copies a snapshot's values in only when the
// snapshot epoch changes, so concurrent workers never share mutable
// tensors and every response is computed from exactly one epoch.
#ifndef CEWS_SERVE_SERVER_H_
#define CEWS_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "agents/policy_net.h"
#include "common/result.h"
#include "common/status.h"
#include "env/state_encoder.h"
#include "serve/batcher.h"
#include "serve/model_registry.h"
#include "serve/request.h"

namespace cews::serve {

struct PolicyServerConfig {
  /// Architecture served (grid, channels, workers, moves). Must match the
  /// checkpoints published into the registry.
  agents::PolicyNetConfig net;
  /// Inference worker threads draining the batcher.
  int num_threads = 1;
  /// Flush a batch at this many coalesced requests...
  int max_batch = 8;
  /// ...or once the oldest queued request has waited this long.
  int64_t max_queue_delay_us = 200;
  /// Intra-op NN kernel threads (0 = hardware cores; CEWS_NUM_THREADS
  /// overrides), applied to the global kernel pool at Create.
  int runtime_threads = 1;
  /// Seeds the epoch-0 parameters and the per-worker sampling streams.
  uint64_t seed = 1;
};

class PolicyServer {
 public:
  /// Validates the config (positive net dims, threads, batch bound) and
  /// starts the worker pool. The epoch-0 model is freshly initialized from
  /// `seed`; publish trained parameters via Publish/PublishFromFile.
  static Result<std::unique_ptr<PolicyServer>> Create(
      const PolicyServerConfig& config);

  /// Stops and joins the workers (draining queued requests).
  ~PolicyServer();

  PolicyServer(const PolicyServer&) = delete;
  PolicyServer& operator=(const PolicyServer&) = delete;

  /// Enqueues one request; thread-safe. The future always resolves — with
  /// a non-OK ScheduleResponse::status for malformed requests or after
  /// Stop(), never with a broken promise.
  std::future<ScheduleResponse> Submit(ScheduleRequest request);

  /// Hot-swaps the served parameters (clones `params`; see ModelRegistry).
  Status Publish(const std::vector<nn::Tensor>& params);

  /// Reloads a checkpoint from disk (nn::LoadParameters into a scratch
  /// copy, so the live model is untouched on failure) and publishes it.
  Status PublishFromFile(const std::string& path);

  /// Epoch of the currently served snapshot.
  uint64_t epoch() const { return registry_.epoch(); }

  ModelRegistry& registry() { return registry_; }

  const agents::PolicyNetConfig& net_config() const { return config_.net; }

  /// Floats a pre-encoded ScheduleRequest::state must carry.
  int StateSize() const {
    return config_.net.in_channels * config_.net.grid * config_.net.grid;
  }

  /// Drains the queue, completes every pending request, joins the workers.
  /// Later Submits resolve immediately with FailedPrecondition. Idempotent.
  void Stop();

 private:
  explicit PolicyServer(const PolicyServerConfig& config);

  void WorkerLoop(int worker_index);
  Status ValidateRequest(const ScheduleRequest& request) const;

  const PolicyServerConfig config_;
  env::StateEncoder encoder_;
  ModelRegistry registry_;
  RequestBatcher batcher_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
};

}  // namespace cews::serve

#endif  // CEWS_SERVE_SERVER_H_
