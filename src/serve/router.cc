#include "serve/router.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace cews::serve {

namespace {

/// One SplitMix64 finalization of `x` (stateless convenience wrapper).
uint64_t Mix64(uint64_t x) { return SplitMix64(x); }

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t h = kFnvOffset;
  for (const char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

ConsistentHashRouter::ConsistentHashRouter(const RouterConfig& config)
    : num_shards_(config.num_shards) {
  CEWS_CHECK_GT(config.num_shards, 0);
  CEWS_CHECK_GT(config.vnodes_per_shard, 0);
  ring_.reserve(static_cast<size_t>(config.num_shards) *
                static_cast<size_t>(config.vnodes_per_shard));
  for (int shard = 0; shard < config.num_shards; ++shard) {
    for (int v = 0; v < config.vnodes_per_shard; ++v) {
      // Vnode position depends only on (seed, shard, vnode) — NOT on the
      // total shard count — so shard s's vnodes sit at the same ring
      // positions in an N-shard and an (N+1)-shard fleet; that identity is
      // what bounds remapping to the new shard's captured intervals.
      const uint64_t position =
          Mix64(config.seed ^ Mix64(static_cast<uint64_t>(shard) * 0x9E3779B97F4A7C15ULL +
                                    static_cast<uint64_t>(v)));
      ring_.emplace_back(position, shard);
    }
  }
  // Position ties (astronomically unlikely) resolve to the lower shard
  // index, deterministically.
  std::sort(ring_.begin(), ring_.end());
}

uint64_t ConsistentHashRouter::KeyHash(uint64_t client_id,
                                       const std::string& scenario) {
  return Mix64(Fnv1a(scenario) ^
               (client_id * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL));
}

int ConsistentHashRouter::ShardFor(uint64_t client_id,
                                   const std::string& scenario) const {
  const uint64_t key = KeyHash(client_id, scenario);
  // First vnode at or after the key, wrapping past the top of the ring.
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(key, 0),
      [](const std::pair<uint64_t, int>& a, const std::pair<uint64_t, int>& b) {
        return a.first < b.first;
      });
  return it == ring_.end() ? ring_.front().second : it->second;
}

}  // namespace cews::serve
