#include "serve/batcher.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace cews::serve {

RequestBatcher::RequestBatcher(int max_batch, int64_t max_queue_delay_us,
                               int max_depth, obs::Gauge* depth_gauge)
    : max_batch_(max_batch),
      max_delay_ns_(max_queue_delay_us * 1000),
      max_depth_(max_depth),
      depth_gauge_(depth_gauge) {
  CEWS_CHECK_GT(max_batch, 0);
  CEWS_CHECK_GE(max_queue_delay_us, 0);
  CEWS_CHECK_GE(max_depth, 0);
}

PushResult RequestBatcher::Push(PendingRequest& item) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return PushResult::kShutdown;
    if (max_depth_ > 0 && static_cast<int>(queue_.size()) >= max_depth_) {
      return PushResult::kOverloaded;
    }
    item.enqueue_ns = Stopwatch::NowNs();
    queue_.push_back(std::move(item));
    if (depth_gauge_ != nullptr) {
      depth_gauge_->Set(static_cast<double>(queue_.size()));
    }
  }
  cv_.notify_one();
  return PushResult::kAccepted;
}

std::vector<PendingRequest> RequestBatcher::PopBatch() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (queue_.empty()) {
      if (shutdown_) return {};
      cv_.wait(lock);
      continue;
    }
    if (static_cast<int>(queue_.size()) >= max_batch_ || shutdown_) break;
    // Flush-by-timeout deadline is anchored to the oldest request: wait out
    // its remaining budget, then serve whatever has coalesced.
    const int64_t waited_ns = static_cast<int64_t>(
        Stopwatch::NowNs() - queue_.front().enqueue_ns);
    const int64_t remaining_ns = max_delay_ns_ - waited_ns;
    if (remaining_ns <= 0) break;
    cv_.wait_for(lock, std::chrono::nanoseconds(remaining_ns));
    // Re-evaluate: the wake may be a new push (size flush), a shutdown, a
    // timeout, or spurious — the loop conditions cover all four.
  }
  const int n =
      std::min<int>(max_batch_, static_cast<int>(queue_.size()));
  std::vector<PendingRequest> batch;
  batch.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  if (depth_gauge_ != nullptr) {
    depth_gauge_->Set(static_cast<double>(queue_.size()));
  }
  // If requests remain (burst larger than max_batch), let another consumer
  // start on them without waiting for the next push.
  if (!queue_.empty()) cv_.notify_one();
  return batch;
}

void RequestBatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

int RequestBatcher::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

}  // namespace cews::serve
