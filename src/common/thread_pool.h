// cews::runtime — a fixed-size, work-stealing-free thread pool for intra-op
// parallelism in the NN kernels (nn/ops.cc).
//
// Design constraints, in order:
//  * Determinism: ParallelFor statically owns each index by exactly one
//    invocation of the body, so kernels that give every accumulator a single
//    owning index produce bitwise-identical results at any thread count
//    (chunk boundaries never change what a body invocation computes, only
//    which thread computes it).
//  * Barrier-friendliness: the chief-employee trainer already runs one
//    thread per employee; those threads must be able to call ParallelFor
//    concurrently without deadlocking each other or the pool. The caller
//    always participates in its own region, so every region completes even
//    when all pool workers are busy elsewhere; a ParallelFor issued from
//    inside a pool worker runs inline.
//  * Exception safety: the first exception thrown by a body is captured,
//    remaining chunks of that region are cancelled, and the exception is
//    rethrown on the calling thread.
#ifndef CEWS_COMMON_THREAD_POOL_H_
#define CEWS_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cews::runtime {

/// Fixed-size thread pool executing half-open index ranges.
class ThreadPool {
 public:
  /// Body of a parallel loop: processes the chunk [begin, end).
  using Body = std::function<void(int64_t begin, int64_t end)>;

  /// Creates a pool with `num_threads` total parallelism (clamped to >= 1).
  /// Spawns num_threads - 1 workers; the calling thread is the Nth lane.
  explicit ThreadPool(int num_threads);

  /// Joins all workers. Must not run concurrently with ParallelFor calls.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + caller).
  int num_threads() const { return num_threads_; }

  /// Runs `body` over [begin, end), split into contiguous chunks executed by
  /// the pool workers and the calling thread. Blocks until the whole range
  /// is done; rethrows the first body exception. Safe to call concurrently
  /// from many threads; nested calls from inside a pool worker run inline.
  void ParallelFor(int64_t begin, int64_t end, const Body& body);

  /// Same, with an explicit minimum chunk size (grain). Chunking affects
  /// scheduling only, never results.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const Body& body);

 private:
  /// One in-flight ParallelFor call.
  struct Region {
    Body body;
    int64_t end = 0;
    int64_t chunk = 1;
    uint64_t enqueue_ns = 0;       ///< Steady-clock enqueue time (obs).
    std::atomic<int64_t> next{0};  ///< First unclaimed index.
    std::atomic<int> active{0};    ///< Threads currently running chunks.
    std::exception_ptr error;      ///< First failure; guarded by pool mu_.
  };

  void WorkerLoop();
  /// Claims and runs chunks of `region` until none remain.
  void RunChunks(Region& region);

  const int num_threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;  ///< Workers: queue non-empty / shutdown.
  std::condition_variable done_cv_;  ///< Callers: region fully drained.
  std::deque<std::shared_ptr<Region>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Resolves an effective runtime thread count: the CEWS_NUM_THREADS
/// environment variable (when set to a positive integer) overrides
/// `configured`; a non-positive result falls back to the hardware
/// concurrency (at least 1).
int ResolveNumThreads(int configured);

/// The process-wide pool used by the NN kernels. Created on first use with
/// ResolveNumThreads(1), i.e. serial unless CEWS_NUM_THREADS is set.
ThreadPool& GlobalPool();

/// Replaces the global pool with one of ResolveNumThreads(n) threads (no-op
/// when the size already matches). Must not race with in-flight kernels:
/// trainers call it before spawning employee threads.
void SetGlobalPoolThreads(int n);

/// Thread count of the global pool (creating it if needed).
int GlobalPoolThreads();

}  // namespace cews::runtime

#endif  // CEWS_COMMON_THREAD_POOL_H_
