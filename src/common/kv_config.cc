#include "common/kv_config.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace cews {

namespace {
std::string Trim(const std::string& s) {
  const size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}
}  // namespace

Result<KvConfig> KvConfig::Parse(const std::string& text) {
  KvConfig config;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": missing '=' in \"" + trimmed + "\"");
    }
    const std::string key = Trim(trimmed.substr(0, eq));
    if (key.empty()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": empty key");
    }
    config.values_[key] = Trim(trimmed.substr(eq + 1));
  }
  return config;
}

Result<KvConfig> KvConfig::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str());
}

bool KvConfig::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string KvConfig::GetString(const std::string& key,
                                const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double KvConfig::GetDouble(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *Trim(end ? end : "").c_str() != '\0') {
    return fallback;
  }
  return value;
}

long KvConfig::GetInt(const std::string& key, long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long value = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *Trim(end ? end : "").c_str() != '\0') {
    return fallback;
  }
  return value;
}

bool KvConfig::GetBool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string v = Lower(it->second);
  if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
  if (v == "false" || v == "no" || v == "off" || v == "0") return false;
  return fallback;
}

}  // namespace cews
