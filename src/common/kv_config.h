// Minimal key = value configuration documents, so examples and experiment
// harnesses can parameterize scenarios from files instead of recompiling.
#ifndef CEWS_COMMON_KV_CONFIG_H_
#define CEWS_COMMON_KV_CONFIG_H_

#include <map>
#include <string>

#include "common/result.h"

namespace cews {

/// Parsed `key = value` document. Lines starting with '#' (after optional
/// whitespace) and blank lines are ignored; keys and values are trimmed.
class KvConfig {
 public:
  /// Parses a document; duplicate keys keep the last value. Fails on lines
  /// without '=' or with an empty key.
  static Result<KvConfig> Parse(const std::string& text);

  /// Reads and parses a file.
  static Result<KvConfig> Load(const std::string& path);

  /// True when the key is present.
  bool Has(const std::string& key) const;

  /// Raw string value or fallback.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;

  /// Numeric getters; return the fallback when missing or unparseable.
  double GetDouble(const std::string& key, double fallback) const;
  long GetInt(const std::string& key, long fallback) const;

  /// Boolean getter: true/yes/on/1 -> true, false/no/off/0 -> false,
  /// anything else -> fallback.
  bool GetBool(const std::string& key, bool fallback) const;

  size_t size() const { return values_.size(); }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace cews

#endif  // CEWS_COMMON_KV_CONFIG_H_
