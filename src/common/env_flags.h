// Environment-variable flags used by benches (quick vs. paper-scale runs).
#ifndef CEWS_COMMON_ENV_FLAGS_H_
#define CEWS_COMMON_ENV_FLAGS_H_

#include <cstdlib>
#include <string>

namespace cews {

/// Reads an integer env var; returns `fallback` when unset or unparseable.
inline long GetEnvInt(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v) return fallback;
  return parsed;
}

/// Reads a boolean env var: unset/"0"/"" are false, anything else true.
inline bool GetEnvBool(const char* name, bool fallback = false) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  return std::string(v) != "0" && std::string(v) != "";
}

}  // namespace cews

#endif  // CEWS_COMMON_ENV_FLAGS_H_
