// Minimal leveled logging. Verbosity is process-global; benches default to
// warnings-only so their stdout stays parseable as results.
//
// Each line is prefixed with the level tag, a monotonic timestamp (seconds
// since the first log statement of the process) and a small per-thread id,
// so interleaved employee-thread output can be reconstructed:
//
//   [I 12.345 T03 chief_employee.cc:310] checkpoint -> cews_ckpt_100.bin
//
// The CEWS_LOG_LEVEL environment variable (debug|info|warning|error, or the
// numeric levels 0-3) sets the initial verbosity so benches/CI can raise it
// without code changes; SetLogLevel() overrides it at runtime.
#ifndef CEWS_COMMON_LOG_H_
#define CEWS_COMMON_LOG_H_

#include <iostream>
#include <mutex>
#include <sstream>

namespace cews {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

namespace internal {

/// Process-global minimum level that will be emitted. Initialized from the
/// CEWS_LOG_LEVEL environment variable (defaults to Info).
LogLevel& GlobalLogLevel();

/// Serializes concurrent writers (employee threads log during training).
std::mutex& LogMutex();

/// Small dense id of the calling thread (0 for the first thread that logs,
/// then 1, 2, ...). Also used by the obs trace exporter so log lines and
/// trace rows share thread numbering.
int LogThreadId();

/// One log statement: buffers, then flushes a single line on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Sets the process-global log verbosity.
void SetLogLevel(LogLevel level);

}  // namespace cews

#define CEWS_LOG(level)                                              \
  ::cews::internal::LogMessage(::cews::LogLevel::k##level, __FILE__, \
                               __LINE__)

#endif  // CEWS_COMMON_LOG_H_
