// Minimal leveled logging. Verbosity is process-global; benches default to
// warnings-only so their stdout stays parseable as results.
#ifndef CEWS_COMMON_LOG_H_
#define CEWS_COMMON_LOG_H_

#include <iostream>
#include <mutex>
#include <sstream>

namespace cews {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

namespace internal {

/// Process-global minimum level that will be emitted.
LogLevel& GlobalLogLevel();

/// Serializes concurrent writers (employee threads log during training).
std::mutex& LogMutex();

/// One log statement: buffers, then flushes a single line on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Sets the process-global log verbosity.
void SetLogLevel(LogLevel level);

}  // namespace cews

#define CEWS_LOG(level)                                              \
  ::cews::internal::LogMessage(::cews::LogLevel::k##level, __FILE__, \
                               __LINE__)

#endif  // CEWS_COMMON_LOG_H_
