// CRC-32 (IEEE 802.3 / zlib polynomial, reflected) — the integrity footer
// of checkpoint files (nn/serialize.cc). Table-driven, computed at compile
// time; incremental so large buffers can be folded in chunks.
#ifndef CEWS_COMMON_CRC32_H_
#define CEWS_COMMON_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace cews {

namespace internal {

constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace internal

/// Incremental CRC-32 accumulator. Update() over any byte partitioning of a
/// buffer yields the same Value() as one call over the whole buffer.
class Crc32 {
 public:
  void Update(const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    uint32_t c = state_;
    for (size_t i = 0; i < n; ++i) {
      c = internal::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    }
    state_ = c;
  }

  /// The checksum of everything Updated so far.
  uint32_t Value() const { return state_ ^ 0xFFFFFFFFu; }

  void Reset() { state_ = 0xFFFFFFFFu; }

 private:
  uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot convenience.
inline uint32_t ComputeCrc32(const void* data, size_t n) {
  Crc32 crc;
  crc.Update(data, n);
  return crc.Value();
}

}  // namespace cews

#endif  // CEWS_COMMON_CRC32_H_
