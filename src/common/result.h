// Result<T>: Status or a value, for fallible functions that produce output.
#ifndef CEWS_COMMON_RESULT_H_
#define CEWS_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace cews {

/// Holds either a value of type T or a non-OK Status.
///
/// Mirrors arrow::Result / absl::StatusOr. Accessing the value of a failed
/// Result aborts (programming error), so callers must test ok() first or use
/// CEWS_ASSIGN_OR_RETURN.
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status. Aborts if given an OK status, because an OK
  /// Result must carry a value.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    CEWS_CHECK(!status_.ok()) << "Result constructed from OK Status";
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  /// The contained value; requires ok().
  const T& value() const& {
    CEWS_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    CEWS_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    CEWS_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ present.
  std::optional<T> value_;
};

}  // namespace cews

/// Assigns the value of a Result expression to `lhs`, or returns its error.
#define CEWS_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  CEWS_ASSIGN_OR_RETURN_IMPL_(                                 \
      CEWS_RESULT_CONCAT_(_cews_result_, __LINE__), lhs, rexpr)

#define CEWS_RESULT_CONCAT_INNER_(a, b) a##b
#define CEWS_RESULT_CONCAT_(a, b) CEWS_RESULT_CONCAT_INNER_(a, b)
#define CEWS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // CEWS_COMMON_RESULT_H_
