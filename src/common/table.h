// Plain-text table and CSV emitters used by the benchmark harnesses to print
// the paper's tables/figure series.
#ifndef CEWS_COMMON_TABLE_H_
#define CEWS_COMMON_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace cews {

/// Accumulates rows of string cells and renders an aligned ASCII table or
/// CSV. Intended for small result tables, not bulk data.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with fixed precision.
  static std::string Fmt(double v, int precision = 3);

  /// Renders as an aligned, pipe-separated ASCII table.
  std::string ToString() const;

  /// Renders as RFC-4180-ish CSV (cells containing comma/quote/newline are
  /// quoted; embedded quotes doubled).
  std::string ToCsv() const;

  /// Writes ToCsv() to `path`.
  Status WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }
  size_t num_cols() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cews

#endif  // CEWS_COMMON_TABLE_H_
