// Wall-clock stopwatch used by the training-time experiments (Fig. 3).
#ifndef CEWS_COMMON_STOPWATCH_H_
#define CEWS_COMMON_STOPWATCH_H_

#include <chrono>

namespace cews {

/// Monotonic wall-clock stopwatch. Started on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cews

#endif  // CEWS_COMMON_STOPWATCH_H_
