// Wall-clock stopwatch used by the training-time experiments (Fig. 3) and
// the obs telemetry layer. All timing in this codebase goes through the
// steady (monotonic) clock — never the system clock, which can jump.
#ifndef CEWS_COMMON_STOPWATCH_H_
#define CEWS_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace cews {

/// Monotonic wall-clock stopwatch. Started on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Nanoseconds on the steady clock since an arbitrary epoch. The single
  /// timestamp source for spans and duration metrics (obs/), so readings
  /// from different threads are mutually comparable.
  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch())
            .count());
  }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Nanoseconds elapsed since construction or last Restart().
  uint64_t ElapsedNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  /// Seconds elapsed since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cews

#endif  // CEWS_COMMON_STOPWATCH_H_
