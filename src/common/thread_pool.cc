#include "common/thread_pool.h"

#include <algorithm>

#include "common/env_flags.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cews::runtime {

namespace {

/// True on threads owned by a pool; nested ParallelFor calls run inline on
/// these so a worker never blocks waiting for peers it is starving.
thread_local bool tls_in_pool_worker = false;

/// Pool telemetry (obs/metrics.h). Only the parallel dispatch path reports;
/// the serial fast path of ParallelFor stays untouched.
struct PoolMetrics {
  obs::Counter* const regions = obs::GetCounter("threadpool.regions");
  obs::Counter* const chunks = obs::GetCounter("threadpool.chunks");
  obs::Counter* const busy_ns = obs::GetCounter("threadpool.busy_ns");
  obs::Histogram* const region_ns =
      obs::GetHistogram("threadpool.region_ns");
  obs::Histogram* const queue_wait_ns =
      obs::GetHistogram("threadpool.queue_wait_ns");
};

PoolMetrics& Metrics() {
  static PoolMetrics* metrics = new PoolMetrics;
  return *metrics;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  obs::GetGauge("threadpool.threads")
      ->Set(static_cast<double>(num_threads_));
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  tls_in_pool_worker = true;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    std::shared_ptr<Region> region = queue_.front();
    if (region->next.load(std::memory_order_relaxed) >= region->end) {
      // Fully claimed; the caller (or another worker) will finish it.
      queue_.pop_front();
      continue;
    }
    region->active.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    // Time from enqueue until this worker joined the region: how long work
    // sat waiting for a free lane.
    Metrics().queue_wait_ns->Record(Stopwatch::NowNs() - region->enqueue_ns);
    RunChunks(*region);
    lock.lock();
    if (region->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::RunChunks(Region& region) {
  PoolMetrics& metrics = Metrics();
  const uint64_t t0 = Stopwatch::NowNs();
  uint64_t chunks = 0;
  while (true) {
    const int64_t start =
        region.next.fetch_add(region.chunk, std::memory_order_relaxed);
    if (start >= region.end) break;
    ++chunks;
    const int64_t stop = std::min(region.end, start + region.chunk);
    try {
      region.body(start, stop);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!region.error) region.error = std::current_exception();
      // Cancel the remaining chunks; already-running ones finish normally.
      region.next.store(region.end, std::memory_order_relaxed);
      break;
    }
  }
  if (chunks > 0) {
    metrics.chunks->Add(chunks);
    metrics.busy_ns->Add(Stopwatch::NowNs() - t0);
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, const Body& body) {
  ParallelFor(begin, end, /*grain=*/1, body);
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const Body& body) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  grain = std::max<int64_t>(1, grain);
  // Serial fast path: size-1 pool, a range that cannot be split, or a nested
  // call from inside a pool worker. Results are identical either way because
  // chunking never changes what a body invocation computes.
  if (num_threads_ <= 1 || n <= grain || tls_in_pool_worker) {
    body(begin, end);
    return;
  }
  CEWS_TRACE_SCOPE("runtime.ParallelFor");
  PoolMetrics& metrics = Metrics();
  metrics.regions->Add(1);
  const uint64_t dispatch_ns = Stopwatch::NowNs();
  auto region = std::make_shared<Region>();
  region->body = body;
  region->end = end;
  region->enqueue_ns = dispatch_ns;
  region->next.store(begin, std::memory_order_relaxed);
  // ~4 chunks per lane keeps claiming overhead low while still balancing
  // uneven chunk costs; scheduling only, never results.
  region->chunk =
      std::max(grain, (n + int64_t{num_threads_} * 4 - 1) /
                          (int64_t{num_threads_} * 4));
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(region);
  }
  work_cv_.notify_all();

  // The caller is always a lane of its own region, so the region completes
  // even if every worker is busy with other callers' regions.
  region->active.fetch_add(1, std::memory_order_relaxed);
  RunChunks(*region);

  std::unique_lock<std::mutex> lock(mu_);
  if (region->active.fetch_sub(1, std::memory_order_acq_rel) > 1) {
    done_cv_.wait(lock, [&] {
      return region->active.load(std::memory_order_acquire) == 0;
    });
  }
  // Drop the region from the queue if no worker got around to it.
  auto it = std::find(queue_.begin(), queue_.end(), region);
  if (it != queue_.end()) queue_.erase(it);
  metrics.region_ns->Record(Stopwatch::NowNs() - dispatch_ns);
  if (region->error) std::rethrow_exception(region->error);
}

int ResolveNumThreads(int configured) {
  const long env = GetEnvInt("CEWS_NUM_THREADS", 0);
  int n = env > 0 ? static_cast<int>(env) : configured;
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
  }
  return std::max(1, n);
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;

ThreadPool& LockedGlobalPool(int threads_if_absent) {
  if (g_pool == nullptr) {
    g_pool = std::make_unique<ThreadPool>(threads_if_absent);
  }
  return *g_pool;
}

}  // namespace

ThreadPool& GlobalPool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  return LockedGlobalPool(ResolveNumThreads(1));
}

void SetGlobalPoolThreads(int n) {
  const int resolved = ResolveNumThreads(n);
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool != nullptr && g_pool->num_threads() == resolved) return;
  g_pool.reset();  // join the old workers before spawning the new pool
  g_pool = std::make_unique<ThreadPool>(resolved);
}

int GlobalPoolThreads() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  return LockedGlobalPool(ResolveNumThreads(1)).num_threads();
}

}  // namespace cews::runtime
