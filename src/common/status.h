// Status: lightweight error propagation for fallible public APIs.
//
// Follows the RocksDB/Arrow idiom: functions that can fail return a Status
// (or a Result<T>, see result.h) instead of throwing. Hot internal paths use
// the CEWS_CHECK family (check.h) instead.
#ifndef CEWS_COMMON_STATUS_H_
#define CEWS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace cews {

/// Error category attached to a non-OK Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kAlreadyExists = 5,
  kIOError = 6,
  kInternal = 7,
  kUnimplemented = 8,
  kResourceExhausted = 9,
  kDeadlineExceeded = 10,
};

/// Returns a stable human-readable name for a StatusCode.
std::string_view StatusCodeToString(StatusCode code);

/// Value type describing the outcome of a fallible operation.
///
/// A default-constructed Status is OK. Non-OK statuses carry a code and a
/// message. Status is cheap to copy for the OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error category (kOk when ok()).
  StatusCode code() const { return code_; }

  /// The error message (empty when ok()).
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

}  // namespace cews

/// Propagates a non-OK Status to the caller.
#define CEWS_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::cews::Status _cews_status = (expr);          \
    if (!_cews_status.ok()) return _cews_status;   \
  } while (false)

#endif  // CEWS_COMMON_STATUS_H_
