#include "common/log.h"

namespace cews {
namespace internal {

LogLevel& GlobalLogLevel() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

std::mutex& LogMutex() {
  static std::mutex mu;
  return mu;
}

namespace {
const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GlobalLogLevel()) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::cerr << stream_.str() << "\n";
  }
}

}  // namespace internal

void SetLogLevel(LogLevel level) { internal::GlobalLogLevel() = level; }

}  // namespace cews
