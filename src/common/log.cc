#include "common/log.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stopwatch.h"

namespace cews {
namespace internal {

namespace {

/// Parses CEWS_LOG_LEVEL: symbolic names (any case prefix works via exact
/// match on the lowered string) or the numeric levels 0-3. Unset or
/// unparseable values fall back to Info.
LogLevel LevelFromEnv() {
  const char* v = std::getenv("CEWS_LOG_LEVEL");
  if (v == nullptr || *v == '\0') return LogLevel::kInfo;
  std::string s(v);
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  if (s == "debug" || s == "0") return LogLevel::kDebug;
  if (s == "info" || s == "1") return LogLevel::kInfo;
  if (s == "warning" || s == "warn" || s == "2") return LogLevel::kWarning;
  if (s == "error" || s == "3") return LogLevel::kError;
  return LogLevel::kInfo;
}

/// Steady-clock origin of the timestamp column: the first log statement.
uint64_t LogEpochNs() {
  static const uint64_t epoch = Stopwatch::NowNs();
  return epoch;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

LogLevel& GlobalLogLevel() {
  static LogLevel level = LevelFromEnv();
  return level;
}

std::mutex& LogMutex() {
  static std::mutex mu;
  return mu;
}

int LogThreadId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GlobalLogLevel()) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    // Read the epoch before sampling the clock: on the very first log
    // statement LogEpochNs() initializes itself, and sampling first would
    // make now < epoch and wrap the unsigned difference.
    const uint64_t epoch = LogEpochNs();
    const double seconds =
        static_cast<double>(Stopwatch::NowNs() - epoch) * 1e-9;
    char prefix[64];
    std::snprintf(prefix, sizeof(prefix), "[%s %.3f T%02d ", LevelTag(level),
                  seconds, LogThreadId());
    stream_ << prefix << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::cerr << stream_.str() << "\n";
  }
}

}  // namespace internal

void SetLogLevel(LogLevel level) { internal::GlobalLogLevel() = level; }

}  // namespace cews
