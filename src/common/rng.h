// Deterministic, seedable pseudo-random number generation.
//
// All stochastic components (map generation, network init, action sampling)
// take an explicit Rng so experiments are reproducible from a single seed.
#ifndef CEWS_COMMON_RNG_H_
#define CEWS_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace cews {

/// SplitMix64: used to expand a 64-bit seed into generator state.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Xoshiro256** PRNG with convenience distributions.
///
/// Not a std:: engine on purpose: the stream is stable across platforms and
/// standard-library versions, which std::mt19937 + std::*_distribution is
/// not. Cheap to copy; each employee thread owns an independently-seeded Rng.
class Rng {
 public:
  /// Seeds the generator; distinct seeds give independent-looking streams.
  explicit Rng(uint64_t seed = 0x5EED5EED5EEDULL) { Seed(seed); }

  /// Re-seeds in place.
  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& s : s_) s = SplitMix64(sm);
    gauss_cached_ = false;
  }

  /// Next raw 64 random bits.
  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) {
    CEWS_CHECK(n > 0);
    // Lemire's nearly-divisionless bounded sampling.
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = (~n + 1) % n;
      while (l < t) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    CEWS_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Marsaglia polar method (cached pair).
  double Gaussian() {
    if (gauss_cached_) {
      gauss_cached_ = false;
      return gauss_cache_;
    }
    double u, v, s;
    do {
      u = Uniform(-1.0, 1.0);
      v = Uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    gauss_cache_ = v * f;
    gauss_cached_ = true;
    return u * f;
  }

  /// Normal with mean/stddev.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Bernoulli(p).
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Samples an index from an (unnormalized, non-negative) weight vector.
  /// Requires at least one strictly positive weight.
  size_t Categorical(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) {
      CEWS_CHECK_GE(w, 0.0);
      total += w;
    }
    CEWS_CHECK(total > 0.0) << "Categorical: all weights zero";
    double r = Uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0.0) return i;
    }
    return weights.size() - 1;
  }

  /// Derives a new independently-seeded Rng (for spawning worker threads).
  Rng Fork() { return Rng(NextU64()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4] = {};
  bool gauss_cached_ = false;
  double gauss_cache_ = 0.0;
};

}  // namespace cews

#endif  // CEWS_COMMON_RNG_H_
