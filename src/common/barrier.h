// Reusable thread barrier for the synchronous chief-employee architecture.
#ifndef CEWS_COMMON_BARRIER_H_
#define CEWS_COMMON_BARRIER_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>

#include "common/check.h"

namespace cews {

/// Cyclic barrier: blocks until `parties` threads have arrived, then releases
/// all of them and resets for the next cycle.
///
/// std::barrier exists in C++20 but is not uniformly available/efficient in
/// all offline toolchains, and this version lets the last arriver run a
/// completion function while the others are still parked.
class Barrier {
 public:
  /// Creates a barrier for `parties` participating threads.
  explicit Barrier(size_t parties) : parties_(parties) {
    CEWS_CHECK_GT(parties, 0u);
  }

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Blocks until all parties arrive. Returns true on exactly one thread per
  /// cycle (the last arriver), which callers can use to run serial work.
  bool ArriveAndWait() { return ArriveAndWait(nullptr); }

  /// Same, but the last arriver runs `on_complete` BEFORE any other thread
  /// is released — this is how the chief applies the summed gradients while
  /// every employee is still parked (Algorithm 2).
  bool ArriveAndWait(const std::function<void()>& on_complete) {
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t my_cycle = cycle_;
    if (++arrived_ == parties_) {
      if (on_complete) on_complete();
      arrived_ = 0;
      ++cycle_;
      cv_.notify_all();
      return true;
    }
    cv_.wait(lock, [&] { return cycle_ != my_cycle; });
    return false;
  }

 private:
  const size_t parties_;
  size_t arrived_ = 0;
  uint64_t cycle_ = 0;
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace cews

#endif  // CEWS_COMMON_BARRIER_H_
