// CEWS_CHECK: fatal invariant checks for programming errors.
//
// Unlike Status (recoverable, caller-facing), a failed check means the
// program itself is wrong; it logs the expression plus an optional streamed
// message and aborts. CEWS_DCHECK compiles out in NDEBUG builds.
//
// Usage:
//   CEWS_CHECK(ptr != nullptr);
//   CEWS_CHECK(rows > 0) << "got " << rows;
//   CEWS_CHECK_EQ(a.size(), b.size());
#ifndef CEWS_COMMON_CHECK_H_
#define CEWS_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace cews {
namespace internal {

/// Accumulates a failure message and aborts on destruction.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* expr) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << expr;
  }
  ~CheckFailStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << " " << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace cews

// The for-loop runs the body (constructing the fail stream, which aborts in
// its destructor at end of statement) only when the condition is false, and
// supports `CEWS_CHECK(c) << extra;` without dangling-else hazards.
#define CEWS_CHECK(cond)                                      \
  for (bool _cews_chk = static_cast<bool>(cond); !_cews_chk;  \
       _cews_chk = true)                                      \
  ::cews::internal::CheckFailStream(__FILE__, __LINE__, #cond)

#define CEWS_CHECK_EQ(a, b) CEWS_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ")"
#define CEWS_CHECK_NE(a, b) CEWS_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ")"
#define CEWS_CHECK_LT(a, b) CEWS_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ")"
#define CEWS_CHECK_LE(a, b) CEWS_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ")"
#define CEWS_CHECK_GT(a, b) CEWS_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ")"
#define CEWS_CHECK_GE(a, b) CEWS_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ")"

#ifdef NDEBUG
#define CEWS_DCHECK(cond) \
  for (bool _cews_chk = true; !_cews_chk; _cews_chk = true) std::cerr
#else
#define CEWS_DCHECK(cond) CEWS_CHECK(cond)
#endif

#endif  // CEWS_COMMON_CHECK_H_
