#include "common/table.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace cews {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  CEWS_CHECK(!headers_.empty()) << "Table needs at least one column";
}

void Table::AddRow(std::vector<std::string> cells) {
  CEWS_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << "\n";
  };
  emit_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

namespace {
std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << CsvEscape(row[c]);
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

Status Table::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << ToCsv();
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

}  // namespace cews
