// Small numeric helpers shared across modules.
#ifndef CEWS_COMMON_MATH_UTIL_H_
#define CEWS_COMMON_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/check.h"

namespace cews {

/// Clamps x into [lo, hi].
inline double Clamp(double x, double lo, double hi) {
  return std::min(std::max(x, lo), hi);
}

/// Arithmetic mean; 0 for an empty vector.
inline double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

/// Population variance; 0 for fewer than two elements.
inline double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size());
}

/// Population standard deviation.
inline double StdDev(const std::vector<double>& v) {
  return std::sqrt(Variance(v));
}

/// Jain's fairness index (Jain, Chiu & Hawe 1984):
///   J(x) = (Σ x_i)^2 / (n · Σ x_i^2),  in (0, 1], 1 = perfectly fair.
/// Used by the energy-efficiency metric ρ (Eqn 6). Returns 0 when all inputs
/// are zero (no data collected anywhere).
inline double JainFairness(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  double sum = 0.0, sq = 0.0;
  for (double v : x) {
    sum += v;
    sq += v * v;
  }
  if (sq <= 0.0) return 0.0;
  return (sum * sum) / (static_cast<double>(x.size()) * sq);
}

/// True when |a - b| <= atol + rtol * |b|.
inline bool AlmostEqual(double a, double b, double atol = 1e-9,
                        double rtol = 1e-7) {
  return std::abs(a - b) <= atol + rtol * std::abs(b);
}

/// Squared Euclidean distance in 2-D.
inline double SquaredDistance(double x0, double y0, double x1, double y1) {
  const double dx = x1 - x0, dy = y1 - y0;
  return dx * dx + dy * dy;
}

/// Euclidean distance in 2-D (the paper's d(i, j), Definition 1).
inline double Distance(double x0, double y0, double x1, double y1) {
  return std::sqrt(SquaredDistance(x0, y0, x1, y1));
}

}  // namespace cews

#endif  // CEWS_COMMON_MATH_UTIL_H_
