#include "common/status.h"

namespace cews {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace cews
