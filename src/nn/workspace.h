// cews::nn — per-thread transient-buffer workspace.
//
// The NN hot path (MatMul, Conv2d, and every elementwise op) used to
// heap-allocate a fresh std::vector<float> for each output, each im2col
// expansion, and each packed GEMM panel, on every forward *and* backward
// call. The workspace turns those into recycled acquisitions: each thread
// owns a size-bucketed arena of float vectors, Acquire pops a vector whose
// capacity covers the request (power-of-two buckets), and Recycle pushes the
// storage back for the next call. In steady state a training step touches
// the allocator zero times for kernel transients — the reuse counters below
// prove it (tests/nn_gemm_test.cc, agents_trainer_core_test.cc).
//
// Ownership rules:
//  * Arenas are strictly per-thread (thread_local): Acquire and Recycle
//    always operate on the *calling* thread's arena, so no locks are needed
//    and TSan sees no shared mutable state. A vector acquired on thread A
//    and recycled on thread B simply migrates A→B; totals are global.
//  * Recycling is optional. An acquired vector is an ordinary
//    std::vector<float>; letting it die normally just frees the memory
//    (and forfeits the reuse).
//  * After a thread's arena is torn down (thread exit / process teardown),
//    Recycle degrades to a plain free and Acquire to a plain allocation.
//
// Telemetry (cews::obs):
//  * workspace.reuse_hits    — acquisitions served from a freelist
//  * workspace.misses        — acquisitions that had to allocate
//  * workspace.recycles      — vectors returned to an arena
//  * workspace.evictions     — recycles dropped because a bucket was full
//  * workspace.bytes_in_use  — gauge: bytes currently retained in freelists
//                              across all live arenas
#ifndef CEWS_NN_WORKSPACE_H_
#define CEWS_NN_WORKSPACE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "nn/tensor.h"

namespace cews::nn {

class Workspace {
 public:
  /// Returns a zero-filled vector of exactly `n` elements whose storage is
  /// recycled from this thread's arena when a compatible chunk is retained
  /// (capacity is the enclosing power of two). Semantically identical to
  /// `std::vector<float>(n)` — only the allocation is (usually) saved.
  static std::vector<float> AcquireVec(Index n);

  /// Returns `v`'s storage to this thread's arena for future AcquireVec
  /// calls. Empty or capacity-less vectors are ignored; buckets past their
  /// retention cap drop the storage (counted as an eviction).
  static void Recycle(std::vector<float>&& v);

  /// Aggregated counters for tests/diagnostics; mirrors the obs metrics but
  /// readable without a registry snapshot.
  struct Stats {
    uint64_t reuse_hits = 0;
    uint64_t misses = 0;
    uint64_t recycles = 0;
    uint64_t evictions = 0;
    int64_t bytes_in_use = 0;  ///< Freelist bytes across all live arenas.
  };
  static Stats GlobalStats();

  /// Drops every chunk retained by the calling thread's arena (tests that
  /// want a cold arena). Other threads' arenas are untouched.
  static void TrimThisThread();
};

/// Alignment contract for packed GEMM panels (gemm.h, gemm_int8.h): one
/// full cache line, so the kernels' (auto-)vectorized panel loads never
/// straddle lines. int8 panels pack 4x more lanes per load than fp32, which
/// makes split loads proportionally more expensive — panel acquisitions go
/// through AlignedScopedBytes below, which rounds an arena chunk up to this
/// boundary and *asserts* the result, so a misaligned acquisition fails
/// loudly (and visibly under UBSan) instead of silently degrading.
inline constexpr std::size_t kPanelAlignment = 64;

/// RAII scratch buffer: AcquireVec on construction, Recycle on destruction.
/// Move-only; the typical holder for im2col columns, packed GEMM panels and
/// per-image scratch inside kernel bodies.
class ScopedVec {
 public:
  explicit ScopedVec(Index n) : v_(Workspace::AcquireVec(n)) {}
  ~ScopedVec() { Workspace::Recycle(std::move(v_)); }
  ScopedVec(ScopedVec&&) = default;
  ScopedVec& operator=(ScopedVec&&) = delete;
  ScopedVec(const ScopedVec&) = delete;
  ScopedVec& operator=(const ScopedVec&) = delete;

  float* data() { return v_.data(); }
  const float* data() const { return v_.data(); }
  Index size() const { return static_cast<Index>(v_.size()); }
  std::vector<float>& vec() { return v_; }

 private:
  std::vector<float> v_;
};

/// RAII byte scratch whose data() is kPanelAlignment-aligned: acquires
/// enough extra floats from the arena to round the chunk up to a 64 B
/// boundary. The holder for packed int8 GEMM panels and quantized-activation
/// rows (gemm_int8.h) — plain ScopedVec storage is only guaranteed
/// alignof(float). The alignment CHECK in the acquire path is the contract
/// assert: arena chunks always satisfy it after rounding, so a failure means
/// the arithmetic (not the allocator) regressed.
class AlignedScopedBytes {
 public:
  explicit AlignedScopedBytes(Index bytes)
      : v_(Workspace::AcquireVec(
            (bytes + static_cast<Index>(kPanelAlignment) +
             static_cast<Index>(sizeof(float)) - 1) /
            static_cast<Index>(sizeof(float)))),
        size_(bytes) {
    void* p = v_.data();
    std::size_t space = v_.size() * sizeof(float);
    data_ = static_cast<int8_t*>(
        std::align(kPanelAlignment, static_cast<std::size_t>(bytes), p,
                   space));
    CEWS_CHECK(data_ != nullptr);
    CEWS_CHECK_EQ(reinterpret_cast<std::uintptr_t>(data_) % kPanelAlignment,
                  0u);
  }
  ~AlignedScopedBytes() { Workspace::Recycle(std::move(v_)); }
  AlignedScopedBytes(AlignedScopedBytes&&) = default;
  AlignedScopedBytes& operator=(AlignedScopedBytes&&) = delete;
  AlignedScopedBytes(const AlignedScopedBytes&) = delete;
  AlignedScopedBytes& operator=(const AlignedScopedBytes&) = delete;

  int8_t* data() { return data_; }
  const int8_t* data() const { return data_; }
  Index size() const { return size_; }

 private:
  std::vector<float> v_;
  Index size_ = 0;
  int8_t* data_ = nullptr;
};

}  // namespace cews::nn

#endif  // CEWS_NN_WORKSPACE_H_
