#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace cews::nn {

namespace {
constexpr char kMagic[8] = {'C', 'E', 'W', 'S', 'P', 'A', 'R', '1'};
}  // namespace

Status SaveParameters(const std::string& path,
                      const std::vector<Tensor>& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(kMagic, sizeof(kMagic));
  const uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Tensor& t : params) {
    if (!t.defined()) return Status::InvalidArgument("undefined tensor");
    const uint64_t ndim = t.shape().size();
    out.write(reinterpret_cast<const char*>(&ndim), sizeof(ndim));
    for (Index d : t.shape()) {
      const int64_t dim = d;
      out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    }
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(sizeof(float) * t.numel()));
  }
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

Status LoadParameters(const std::string& path,
                      const std::vector<Tensor>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + ": not a CEWS parameter file");
  }
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || count != params.size()) {
    return Status::InvalidArgument(
        path + ": checkpoint tensor count mismatch");
  }
  for (const Tensor& param : params) {
    uint64_t ndim = 0;
    in.read(reinterpret_cast<char*>(&ndim), sizeof(ndim));
    if (!in) return Status::IOError(path + ": truncated header");
    Shape shape(ndim);
    for (uint64_t i = 0; i < ndim; ++i) {
      int64_t dim = 0;
      in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
      if (!in || dim < 0) return Status::IOError(path + ": bad dimension");
      shape[i] = dim;
    }
    if (shape != param.shape()) {
      return Status::InvalidArgument(
          path + ": shape mismatch, checkpoint " + ShapeToString(shape) +
          " vs model " + ShapeToString(param.shape()));
    }
    Tensor t = param;
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(sizeof(float) * t.numel()));
    if (!in) return Status::IOError(path + ": truncated data");
  }
  return Status::OK();
}

}  // namespace cews::nn
