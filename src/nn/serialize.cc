#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/crc32.h"

namespace cews::nn {

namespace {

constexpr char kMagic[8] = {'C', 'E', 'W', 'S', 'P', 'A', 'R', '1'};
// Footer: 4-byte tag + CRC-32 (little-endian) over every preceding byte.
// Appended after the payload so legacy footer-less files stay readable.
constexpr char kFooterTag[4] = {'C', 'R', 'C', '1'};
constexpr size_t kFooterSize = sizeof(kFooterTag) + sizeof(uint32_t);

// Sanity cap on per-tensor rank: every architecture in this repo is rank
// <= 4 (conv weights). A header claiming more is corrupt or hostile, and
// must be rejected before any allocation is sized from it.
constexpr uint64_t kMaxNdim = 8;

void AppendBytes(std::string& out, const void* p, size_t n) {
  out.append(static_cast<const char*>(p), n);
}

/// Bounds-checked forward-only reader over an in-memory file image.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  bool Read(void* dst, size_t n) {
    if (size_ - pos_ < n) return false;
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  size_t remaining() const { return size_ - pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

Status SaveParameters(const std::string& path,
                      const std::vector<Tensor>& params, SaveInfo* info) {
  // Assemble the whole file in memory: the CRC then covers exactly the
  // bytes on disk, and the on-disk write is all-or-nothing via rename.
  std::string buf;
  AppendBytes(buf, kMagic, sizeof(kMagic));
  const uint64_t count = params.size();
  AppendBytes(buf, &count, sizeof(count));
  for (const Tensor& t : params) {
    if (!t.defined()) return Status::InvalidArgument("undefined tensor");
    const uint64_t ndim = t.shape().size();
    AppendBytes(buf, &ndim, sizeof(ndim));
    for (Index d : t.shape()) {
      const int64_t dim = d;
      AppendBytes(buf, &dim, sizeof(dim));
    }
    AppendBytes(buf, t.data(), sizeof(float) * static_cast<size_t>(t.numel()));
  }
  const uint32_t crc = ComputeCrc32(buf.data(), buf.size());
  AppendBytes(buf, kFooterTag, sizeof(kFooterTag));
  AppendBytes(buf, &crc, sizeof(crc));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp + " for writing");
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::IOError("short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " -> " + path);
  }
  if (info != nullptr) {
    info->bytes = buf.size();
    info->crc32 = crc;
  }
  return Status::OK();
}

Status LoadParameters(const std::string& path,
                      const std::vector<Tensor>& params,
                      const LoadOptions& options) {
  std::string buf;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IOError("cannot open " + path);
    std::ostringstream contents;
    contents << in.rdbuf();
    if (in.bad()) return Status::IOError("cannot read " + path);
    buf = std::move(contents).str();
  }

  // Footer detection: a file written by the current SaveParameters ends
  // with the tag + CRC; verify the checksum before trusting a single
  // header field. Files without the tag are legacy "CEWSPAR1" checkpoints
  // (pre-footer writer) and are parsed as-is, with no integrity check.
  size_t payload_end = buf.size();
  const bool has_footer =
      buf.size() >= kFooterSize &&
      std::memcmp(buf.data() + buf.size() - kFooterSize, kFooterTag,
                  sizeof(kFooterTag)) == 0;
  if (options.require_crc && !has_footer) {
    return Status::FailedPrecondition(
        path + ": no CRC32 footer (legacy pre-footer checkpoint); this "
               "load path requires integrity-checked files — re-save the "
               "checkpoint with the current writer");
  }
  if (has_footer) {
    payload_end = buf.size() - kFooterSize;
    uint32_t stored = 0;
    std::memcpy(&stored, buf.data() + buf.size() - sizeof(stored),
                sizeof(stored));
    const uint32_t actual = ComputeCrc32(buf.data(), payload_end);
    if (stored != actual) {
      std::ostringstream msg;
      msg << path << ": CRC32 mismatch (stored " << std::hex << stored
          << ", computed " << actual << ") — checkpoint is corrupt";
      return Status::IOError(msg.str());
    }
  }

  ByteReader reader(buf.data(), payload_end);
  char magic[8];
  if (!reader.Read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + ": not a CEWS parameter file");
  }
  uint64_t count = 0;
  if (!reader.Read(&count, sizeof(count))) {
    return Status::IOError(path + ": truncated header");
  }
  if (count != params.size()) {
    return Status::InvalidArgument(path +
                                   ": checkpoint tensor count mismatch (" +
                                   std::to_string(count) + " vs " +
                                   std::to_string(params.size()) + ")");
  }
  for (const Tensor& param : params) {
    uint64_t ndim = 0;
    if (!reader.Read(&ndim, sizeof(ndim))) {
      return Status::IOError(path + ": truncated header");
    }
    if (ndim > kMaxNdim) {
      return Status::InvalidArgument(
          path + ": implausible tensor rank " + std::to_string(ndim) +
          " (cap " + std::to_string(kMaxNdim) + "); header is corrupt");
    }
    Shape shape(ndim);
    for (uint64_t i = 0; i < ndim; ++i) {
      int64_t dim = 0;
      if (!reader.Read(&dim, sizeof(dim))) {
        return Status::IOError(path + ": truncated header");
      }
      if (dim < 0) {
        return Status::InvalidArgument(path + ": negative dimension " +
                                       std::to_string(dim) +
                                       "; header is corrupt");
      }
      shape[i] = dim;
    }
    if (shape != param.shape()) {
      return Status::InvalidArgument(
          path + ": shape mismatch, checkpoint " + ShapeToString(shape) +
          " vs model " + ShapeToString(param.shape()));
    }
    // shape == param.shape(), so the byte count is bounded by the model,
    // never by untrusted header fields; a short file fails here cleanly.
    Tensor t = param;
    if (!reader.Read(t.data(),
                     sizeof(float) * static_cast<size_t>(t.numel()))) {
      return Status::IOError(path + ": truncated data");
    }
  }
  if (reader.remaining() != 0) {
    return Status::InvalidArgument(
        path + ": " + std::to_string(reader.remaining()) +
        " trailing bytes after the last tensor");
  }
  return Status::OK();
}

}  // namespace cews::nn
