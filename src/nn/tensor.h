// Dense float tensor with tape-based reverse-mode automatic differentiation.
//
// This is the substrate that replaces TensorFlow/PyTorch for the paper's
// networks: every op (ops.h) records a backward closure on the tensors it
// produces; Tensor::Backward() runs the tape in reverse topological order.
//
// Design notes:
//  * Tensor is a cheap value-semantics handle (shared_ptr to TensorImpl).
//  * Gradients accumulate (+=) so a tensor used twice gets both
//    contributions; call ZeroGrad()/Optimizer::ZeroGrad() between steps.
//  * Graph construction is gated by a thread-local grad mode (NoGradGuard),
//    so rollout-time forwards pay no tape cost. Each employee thread builds
//    its own graphs; there is no cross-thread sharing of TensorImpl.
#ifndef CEWS_NN_TENSOR_H_
#define CEWS_NN_TENSOR_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

namespace cews::nn {

/// Index/extent type for tensor dimensions.
using Index = int64_t;

/// Tensor shape as a list of extents; empty means "scalar".
using Shape = std::vector<Index>;

/// Number of elements implied by a shape (1 for scalars).
Index NumElements(const Shape& shape);

/// Human-readable "[2, 3, 4]".
std::string ShapeToString(const Shape& shape);

/// True while ops should record the autodiff tape (thread-local).
bool GradModeEnabled();

/// RAII guard that disables tape recording on this thread (rollouts,
/// evaluation). Nestable.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

struct TensorImpl;

/// Value-semantics handle to a (possibly autograd-tracked) float tensor.
class Tensor {
 public:
  /// Null handle; defined() is false.
  Tensor() = default;

  /// Wraps an existing impl (internal use by ops).
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  /// All-zeros tensor of the given shape.
  static Tensor Zeros(const Shape& shape, bool requires_grad = false);

  /// Constant-filled tensor.
  static Tensor Full(const Shape& shape, float value,
                     bool requires_grad = false);

  /// Tensor adopting the given row-major data (size must match shape).
  static Tensor FromData(const Shape& shape, std::vector<float> data,
                         bool requires_grad = false);

  /// 0-dim scalar tensor.
  static Tensor Scalar(float value);

  /// True when this handle points at a tensor.
  bool defined() const { return impl_ != nullptr; }

  const Shape& shape() const;
  int ndim() const;
  Index dim(int i) const;
  Index numel() const;

  /// Raw row-major storage.
  float* data();
  const float* data() const;

  /// Gradient storage; nullptr until the first backward reaches this tensor.
  float* grad();
  const float* grad() const;

  /// True when this tensor participates in autodiff.
  bool requires_grad() const;

  /// Value of a 0-dim or 1-element tensor.
  float item() const;

  /// Element access by multi-dimensional index (debug/tests; slow).
  float at(std::initializer_list<Index> idx) const;

  /// Copies values out into a std::vector.
  std::vector<float> ToVector() const;

  /// Runs reverse-mode autodiff from this tensor, which must be a scalar.
  /// Gradients accumulate into every reachable tensor with requires_grad.
  void Backward();

  /// Zeroes this tensor's gradient buffer (allocating it if absent).
  void ZeroGrad();

  /// Returns a tensor sharing this storage but detached from the tape.
  Tensor Detach() const;

  /// Deep copy of values (no tape, preserves requires_grad=false).
  Tensor Clone() const;

  /// Internal: underlying impl.
  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }

 private:
  std::shared_ptr<TensorImpl> impl_;
};

/// Internal node: storage plus tape edges. Public because ops.cc and tests
/// construct nodes directly; user code should stick to Tensor.
struct TensorImpl {
  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;  // empty until needed; same size as data
  bool requires_grad = false;

  /// Accumulates into parents' grads, reading this node's grad. Only set on
  /// interior nodes produced while GradModeEnabled().
  std::function<void()> backward_fn;

  /// Tape edges toward leaves.
  std::vector<std::shared_ptr<TensorImpl>> parents;

  TensorImpl() = default;
  /// Recycles data/grad storage into the per-thread workspace arena
  /// (nn/workspace.h), so the next step's ops reuse it allocation-free.
  ~TensorImpl();
  TensorImpl(const TensorImpl&) = delete;
  TensorImpl& operator=(const TensorImpl&) = delete;

  /// Allocates (zeroed) grad storage if absent; storage comes from the
  /// workspace arena.
  void EnsureGrad();
};

}  // namespace cews::nn

#endif  // CEWS_NN_TENSOR_H_
