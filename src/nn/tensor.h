// Dense float tensor with reverse-mode automatic differentiation.
//
// This is the substrate that replaces TensorFlow/PyTorch for the paper's
// networks. Two execution modes share the same op layer (ops.h):
//  * Tape (default): every op runs eagerly and records a backward closure on
//    the tensor it produces; Tensor::Backward() runs the tape in reverse
//    creation order.
//  * Expression graph (CEWS_NN_GRAPH=1, nn/graph.h): while a graph recording
//    is active each op additionally registers its forward thunk, so the
//    whole forward DAG can be replayed against new placeholder inputs
//    without rebuilding a single node, with all intermediates living at
//    planner-assigned offsets in one graph-owned arena.
//
// Design notes:
//  * Tensor is a cheap value-semantics handle (shared_ptr to TensorImpl).
//  * Gradients accumulate (+=) so a tensor used twice gets both
//    contributions; call ZeroGrad()/Optimizer::ZeroGrad() between steps.
//  * Backward() runs closures in descending creation order (a valid reverse
//    topological order, since every op's inputs exist before its output).
//    The graph executor uses the same order, segment by segment, which is
//    what makes tape, graph replay and checkpointed replay bitwise-identical.
//  * Tape construction is gated by a thread-local grad mode (NoGradGuard),
//    so rollout-time forwards pay no tape cost. Each employee thread builds
//    its own graphs; there is no cross-thread sharing of TensorImpl.
#ifndef CEWS_NN_TENSOR_H_
#define CEWS_NN_TENSOR_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

namespace cews::nn {

namespace graph {
class CompiledGraph;
}  // namespace graph

/// Index/extent type for tensor dimensions.
using Index = int64_t;

/// Tensor shape as a list of extents; empty means "scalar".
using Shape = std::vector<Index>;

/// Number of elements implied by a shape (1 for scalars).
Index NumElements(const Shape& shape);

/// Human-readable "[2, 3, 4]".
std::string ShapeToString(const Shape& shape);

/// True while ops should record the autodiff tape (thread-local).
bool GradModeEnabled();

/// RAII guard that disables tape recording on this thread (rollouts,
/// evaluation). Nestable.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// Float storage that is either owned (a recyclable std::vector, the tape
/// default) or a view into externally planned memory (the expression graph's
/// arena). Presents the vector-ish surface the op kernels index into.
class Buffer {
 public:
  Buffer() = default;

  /// Adopts `v` as owned storage (workspace-recyclable on release).
  Buffer& operator=(std::vector<float>&& v) {
    owned_ = std::move(v);
    ptr_ = owned_.data();
    size_ = owned_.size();
    keepalive_.reset();
    return *this;
  }

  /// Re-points this buffer at `n` floats of externally owned memory;
  /// `keepalive` pins that memory for this buffer's lifetime. Any owned
  /// storage is released to the caller for recycling.
  std::vector<float> BindExternal(float* p, size_t n,
                                  std::shared_ptr<void> keepalive) {
    std::vector<float> released = std::move(owned_);
    owned_.clear();
    ptr_ = p;
    size_ = n;
    keepalive_ = std::move(keepalive);
    return released;
  }

  /// Detaches and returns owned storage (empty when external/empty).
  std::vector<float> TakeOwned() {
    std::vector<float> out = std::move(owned_);
    owned_.clear();
    ptr_ = nullptr;
    size_ = 0;
    keepalive_.reset();
    return out;
  }

  bool external() const { return ptr_ != nullptr && owned_.empty(); }
  float* data() { return ptr_; }
  const float* data() const { return ptr_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  float& operator[](size_t i) { return ptr_[i]; }
  float operator[](size_t i) const { return ptr_[i]; }
  float* begin() { return ptr_; }
  float* end() { return ptr_ + size_; }
  const float* begin() const { return ptr_; }
  const float* end() const { return ptr_ + size_; }

 private:
  std::vector<float> owned_;
  float* ptr_ = nullptr;
  size_t size_ = 0;
  std::shared_ptr<void> keepalive_;  // arena pin while external
};

struct TensorImpl;

/// Value-semantics handle to a (possibly autograd-tracked) float tensor.
class Tensor {
 public:
  /// Null handle; defined() is false.
  Tensor() = default;

  /// Wraps an existing impl (internal use by ops).
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  /// All-zeros tensor of the given shape.
  static Tensor Zeros(const Shape& shape, bool requires_grad = false);

  /// Constant-filled tensor.
  static Tensor Full(const Shape& shape, float value,
                     bool requires_grad = false);

  /// Tensor adopting the given row-major data (size must match shape).
  static Tensor FromData(const Shape& shape, std::vector<float> data,
                         bool requires_grad = false);

  /// 0-dim scalar tensor.
  static Tensor Scalar(float value);

  /// True when this handle points at a tensor.
  bool defined() const { return impl_ != nullptr; }

  const Shape& shape() const;
  int ndim() const;
  Index dim(int i) const;
  Index numel() const;

  /// Raw row-major storage.
  float* data();
  const float* data() const;

  /// Gradient storage; nullptr until the first backward reaches this tensor.
  float* grad();
  const float* grad() const;

  /// True when this tensor participates in autodiff.
  bool requires_grad() const;

  /// Value of a 0-dim or 1-element tensor.
  float item() const;

  /// Element access by multi-dimensional index (debug/tests; slow).
  float at(std::initializer_list<Index> idx) const;

  /// Copies values out into a std::vector.
  std::vector<float> ToVector() const;

  /// Runs reverse-mode autodiff from this tensor, which must be a scalar.
  /// Gradients accumulate into every reachable tensor with requires_grad.
  /// A second Backward() on the same tape root is a hard CHECK failure
  /// (silent double-accumulation is never what the caller wants); graph
  /// roots delegate to CompiledGraph::Backward, which enforces one backward
  /// per replayed forward.
  void Backward();

  /// Zeroes this tensor's gradient buffer (allocating it if absent).
  void ZeroGrad();

  /// Returns a tensor sharing this storage but detached from the tape.
  Tensor Detach() const;

  /// Deep copy of values (no tape, preserves requires_grad=false).
  Tensor Clone() const;

  /// Internal: underlying impl.
  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }

 private:
  std::shared_ptr<TensorImpl> impl_;
};

/// Internal node: storage plus tape edges. Public because ops.cc and tests
/// construct nodes directly; user code should stick to Tensor.
struct TensorImpl {
  Shape shape;
  Buffer data;
  Buffer grad;  // empty until needed; same size as data
  bool requires_grad = false;

  /// Monotone per-thread creation stamp; Backward() and the graph executor
  /// order closures by it (descending = reverse topological).
  uint64_t seq = 0;

  /// Set by the first tape Backward() whose root this node is; a second
  /// Backward() on the same root CHECK-fails.
  bool backward_done = false;

  /// Graph-input marker (nn/graph.h): the caller rewrites this leaf's data
  /// before each replay, so it is never treated as a memoizable constant.
  bool placeholder = false;

  /// Set on a compiled graph's root: Backward() delegates to the graph
  /// executor. Raw pointer — the graph owns the root, never the reverse.
  graph::CompiledGraph* graph_exec = nullptr;

  /// Accumulates into parents' grads, reading this node's grad. Only set on
  /// interior nodes produced while GradModeEnabled().
  std::function<void()> backward_fn;

  /// Tape edges toward leaves.
  std::vector<std::shared_ptr<TensorImpl>> parents;

  TensorImpl();
  /// Recycles owned data/grad storage into the per-thread workspace arena
  /// (nn/workspace.h), so the next step's ops reuse it allocation-free.
  /// Arena-bound storage is left to the graph that planned it.
  ~TensorImpl();
  TensorImpl(const TensorImpl&) = delete;
  TensorImpl& operator=(const TensorImpl&) = delete;

  /// Allocates (zeroed) grad storage if absent; storage comes from the
  /// workspace arena.
  void EnsureGrad();
};

}  // namespace cews::nn

#endif  // CEWS_NN_TENSOR_H_
