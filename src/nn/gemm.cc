#include "nn/gemm.h"

#include <cmath>

#include "common/stopwatch.h"
#include "nn/workspace.h"
#include "obs/metrics.h"

namespace cews::nn::gemm {

namespace {

obs::Counter* PackNsCounter() {
  static obs::Counter* const c = obs::GetCounter("gemm.pack_ns");
  return c;
}

}  // namespace

void PackNN(Index k, Index n, const float* b, Index ldb, float* packed) {
  const uint64_t t0 = Stopwatch::NowNs();
  for (Index c0 = 0; c0 < n; c0 += kNr) {
    const Index w = std::min<Index>(kNr, n - c0);
    float* tile = packed + k * c0;
    for (Index l = 0; l < k; ++l) {
      const float* src = b + l * ldb + c0;
      float* dst = tile + l * w;
      for (Index t = 0; t < w; ++t) dst[t] = src[t];
    }
  }
  PackNsCounter()->Add(Stopwatch::NowNs() - t0);
}

void PackNT(Index k, Index n, const float* y, Index ldy, float* packed) {
  const uint64_t t0 = Stopwatch::NowNs();
  for (Index c0 = 0; c0 < n; c0 += kNr) {
    const Index w = std::min<Index>(kNr, n - c0);
    float* tile = packed + k * c0;
    for (Index t = 0; t < w; ++t) {
      const float* yrow = y + (c0 + t) * ldy;
      for (Index j = 0; j < k; ++j) tile[j * w + t] = yrow[j];
    }
  }
  PackNsCounter()->Add(Stopwatch::NowNs() - t0);
}

void NNRows(Index i0, Index i1, Index n, Index k, const float* a, Index rsa,
            Index csa, const float* packed, float* c, Index ldc) {
  for (Index l0 = 0; l0 < k; l0 += kKc) {
    const Index l1 = std::min(k, l0 + kKc);
    for (Index c0 = 0; c0 < n; c0 += kNr) {
      const Index w = std::min<Index>(kNr, n - c0);
      const float* tile = packed + k * c0;
      Index i = i0;
      if (w == kNr) {
        // Full tile: kMr x kNr register block. The l0..l1 slab of the panel
        // (16 KiB) stays L1-resident across the whole row loop; C tiles are
        // loaded once per (row block, l block) and stored back — an exact
        // roundtrip, so the per-element add sequence matches the in-memory
        // accumulation of the reference kernel.
        for (; i + kMr <= i1; i += kMr) {
          float acc[kMr][kNr];
          for (Index r = 0; r < kMr; ++r) {
            const float* crow = c + (i + r) * ldc + c0;
            for (Index t = 0; t < kNr; ++t) acc[r][t] = crow[t];
          }
          for (Index l = l0; l < l1; ++l) {
            const float* p = tile + l * kNr;
            for (Index r = 0; r < kMr; ++r) {
              const float av = a[(i + r) * rsa + l * csa];
              for (Index t = 0; t < kNr; ++t)
                acc[r][t] = std::fmaf(av, p[t], acc[r][t]);
            }
          }
          for (Index r = 0; r < kMr; ++r) {
            float* crow = c + (i + r) * ldc + c0;
            for (Index t = 0; t < kNr; ++t) crow[t] = acc[r][t];
          }
        }
      }
      // Edge rows of a full tile, and every row of a ragged tile.
      for (; i < i1; ++i) {
        float acc[kNr];
        float* crow = c + i * ldc + c0;
        for (Index t = 0; t < w; ++t) acc[t] = crow[t];
        for (Index l = l0; l < l1; ++l) {
          const float av = a[i * rsa + l * csa];
          const float* p = tile + l * w;
          for (Index t = 0; t < w; ++t) acc[t] = std::fmaf(av, p[t], acc[t]);
        }
        for (Index t = 0; t < w; ++t) crow[t] = acc[t];
      }
    }
  }
}

void NTRows(Index i0, Index i1, Index n, Index k, const float* x, Index ldx,
            const float* packed, float* c, Index ldc) {
  for (Index c0 = 0; c0 < n; c0 += kNr) {
    const Index w = std::min<Index>(kNr, n - c0);
    const float* tile = packed + k * c0;
    Index i = i0;
    if (w == kNr) {
      for (; i + kMr <= i1; i += kMr) {
        // Fresh accumulators per element; the j loop is never split, so each
        // element is the same single serial dot product the reference
        // computes — just kMr x kNr of them in flight at once.
        float acc[kMr][kNr] = {};
        for (Index j = 0; j < k; ++j) {
          const float* p = tile + j * kNr;
          for (Index r = 0; r < kMr; ++r) {
            const float xv = x[(i + r) * ldx + j];
            for (Index t = 0; t < kNr; ++t)
              acc[r][t] = std::fmaf(xv, p[t], acc[r][t]);
          }
        }
        for (Index r = 0; r < kMr; ++r) {
          float* crow = c + (i + r) * ldc + c0;
          for (Index t = 0; t < kNr; ++t) crow[t] += acc[r][t];
        }
      }
    }
    for (; i < i1; ++i) {
      float acc[kNr] = {};
      const float* xrow = x + i * ldx;
      for (Index j = 0; j < k; ++j) {
        const float xv = xrow[j];
        const float* p = tile + j * w;
        for (Index t = 0; t < w; ++t) acc[t] = std::fmaf(xv, p[t], acc[t]);
      }
      float* crow = c + i * ldc + c0;
      for (Index t = 0; t < w; ++t) crow[t] += acc[t];
    }
  }
}

void GemmNN(Index m, Index n, Index k, const float* a, Index rsa, Index csa,
            const float* b, Index ldb, float* c, Index ldc,
            float* pack_scratch) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  // A pack writes all k*n panel floats, so caller scratch needs no zeroing.
  ScopedVec packed(pack_scratch != nullptr ? 0 : k * n);
  float* pp = pack_scratch != nullptr ? pack_scratch : packed.data();
  PackNN(k, n, b, ldb, pp);
  const float* p = pp;
  ParallelKernel(m, 2 * k * n, [&](Index r0, Index r1) {
    NNRows(r0, r1, n, k, a, rsa, csa, p, c, ldc);
  });
}

void GemmNT(Index m, Index n, Index k, const float* x, Index ldx,
            const float* y, Index ldy, float* c, Index ldc,
            float* pack_scratch) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  ScopedVec packed(pack_scratch != nullptr ? 0 : k * n);
  float* pp = pack_scratch != nullptr ? pack_scratch : packed.data();
  PackNT(k, n, y, ldy, pp);
  const float* p = pp;
  ParallelKernel(m, 2 * k * n, [&](Index r0, Index r1) {
    NTRows(r0, r1, n, k, x, ldx, p, c, ldc);
  });
}

namespace reference {

void GemmNN(Index m, Index n, Index k, const float* a, Index rsa, Index csa,
            const float* b, Index ldb, float* c, Index ldc) {
  // Verbatim structure of the pre-packing MatMulRowsKernel: k tiled at 64
  // so a slab of B rows stays cache-resident, zero-skip on A operands,
  // per-element accumulation l ascending directly into C.
  constexpr Index kLTile = 64;
  for (Index l0 = 0; l0 < k; l0 += kLTile) {
    const Index l1 = std::min(k, l0 + kLTile);
    for (Index i = 0; i < m; ++i) {
      float* crow = c + i * ldc;
      for (Index l = l0; l < l1; ++l) {
        const float av = a[i * rsa + l * csa];
        if (av == 0.0f) continue;
        const float* brow = b + l * ldb;
        for (Index j = 0; j < n; ++j) crow[j] = std::fmaf(av, brow[j], crow[j]);
      }
    }
  }
}

void GemmNT(Index m, Index n, Index k, const float* x, Index ldx,
            const float* y, Index ldy, float* c, Index ldc) {
  // Verbatim structure of the pre-packing dA/dW loops: one scalar
  // j-ascending dot per output element, added to C once.
  for (Index i = 0; i < m; ++i) {
    const float* xrow = x + i * ldx;
    for (Index l = 0; l < n; ++l) {
      const float* yrow = y + l * ldy;
      float dot = 0.0f;
      for (Index j = 0; j < k; ++j) dot = std::fmaf(xrow[j], yrow[j], dot);
      c[i * ldc + l] += dot;
    }
  }
}

}  // namespace reference

}  // namespace cews::nn::gemm
