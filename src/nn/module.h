// Trainable network building blocks on top of the tensor ops.
#ifndef CEWS_NN_MODULE_H_
#define CEWS_NN_MODULE_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace cews::nn {

/// Base class for anything holding trainable parameters.
class Module {
 public:
  virtual ~Module() = default;

  /// Handles to every trainable parameter tensor, in a stable order. The
  /// handles share storage with the module, so optimizers and the
  /// chief-employee gradient exchange mutate the module in place.
  virtual std::vector<Tensor> Parameters() const = 0;

  /// Zeroes the gradient of every parameter.
  void ZeroGrad() const;

  /// Total number of scalar parameters.
  Index NumParameters() const;
};

/// Fully-connected layer: y = x W + b, x [N, in], W [in, out], b [out].
class Linear : public Module {
 public:
  /// Xavier-initialized weights, zero bias. `gain` rescales the init (PPO
  /// convention: small gain on policy output layers).
  Linear(Index in_features, Index out_features, cews::Rng& rng,
         float gain = 1.0f);

  Tensor Forward(const Tensor& x) const;
  std::vector<Tensor> Parameters() const override;

  Index in_features() const { return weight_.dim(0); }
  Index out_features() const { return weight_.dim(1); }

 private:
  Tensor weight_;
  Tensor bias_;
};

/// 2-D convolution layer with He-normal init.
class Conv2dLayer : public Module {
 public:
  Conv2dLayer(Index in_channels, Index out_channels, int kernel, int stride,
              int padding, cews::Rng& rng);

  /// x: [N, C, H, W] -> [N, O, OH, OW].
  Tensor Forward(const Tensor& x) const;
  std::vector<Tensor> Parameters() const override;

  int stride() const { return stride_; }
  int padding() const { return padding_; }

 private:
  Tensor weight_;
  Tensor bias_;
  int stride_;
  int padding_;
};

/// Layer normalization over all non-batch dimensions (the paper adds one
/// after every CNN layer, Section V-B).
class LayerNorm : public Module {
 public:
  /// `features` = product of the normalized (non-batch) dims.
  explicit LayerNorm(Index features);

  Tensor Forward(const Tensor& x) const;
  std::vector<Tensor> Parameters() const override;

 private:
  Tensor gamma_;
  Tensor beta_;
};

/// Embedding table [V, D]. When `trainable` is false the table is frozen —
/// the paper's spatial curiosity model uses a *static* random embedding of
/// grid positions (Section VII-D, following Burda et al.).
class Embedding : public Module {
 public:
  Embedding(Index vocab, Index dim, cews::Rng& rng, bool trainable = true);

  /// ids -> [ids.size(), D].
  Tensor Forward(const std::vector<Index>& ids) const;

  /// Empty when frozen.
  std::vector<Tensor> Parameters() const override;

  Index vocab() const { return table_.dim(0); }
  Index dim() const { return table_.dim(1); }

 private:
  Tensor table_;
  bool trainable_;
};

/// Activation kinds accepted by Mlp.
enum class Activation { kRelu, kTanh, kNone };

/// Applies the named activation.
Tensor Activate(const Tensor& x, Activation act);

/// Multi-layer perceptron: Linear -> act -> ... -> Linear (no activation on
/// the output layer).
class Mlp : public Module {
 public:
  /// `sizes` = {in, hidden..., out}; needs at least two entries.
  Mlp(const std::vector<Index>& sizes, Activation hidden_act, cews::Rng& rng,
      float output_gain = 1.0f);

  Tensor Forward(const Tensor& x) const;
  std::vector<Tensor> Parameters() const override;

 private:
  std::vector<Linear> layers_;
  Activation hidden_act_;
};

}  // namespace cews::nn

#endif  // CEWS_NN_MODULE_H_
