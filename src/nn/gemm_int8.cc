#include "nn/gemm_int8.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#if defined(__AVX512VNNI__) && defined(__AVX512F__)
#include <immintrin.h>
#define CEWS_INT8_VNNI 1
#if defined(__GNUC__) && !defined(__clang__)
// GCC 12's avx512fintrin.h trips -Wmaybe-uninitialized on the undef-lane
// builtins behind _mm512_set1_epi32 et al. (GCC PR105593); the lanes are
// fully written before use. Confine the suppression to this TU.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
#endif

#include "common/check.h"
#include "nn/gemm.h"
#include "nn/workspace.h"

namespace cews::nn::gemm {

namespace {

/// Round-to-nearest-even + saturating cast to [-127, 127]. -128 is excluded
/// so the symmetric grid has an exact negation for every code (and so an
/// int8 product can never hit the -128*-128 corner).
inline int8_t SaturateRtne(float x) {
  const float r = std::nearbyintf(x);
  if (r >= 127.0f) return 127;
  if (r <= -127.0f) return -127;
  return static_cast<int8_t>(r);
}

/// Quantizes a contiguous run against one reciprocal scale. The vector
/// body rounds with vcvtps2dq under the default MXCSR mode — round to
/// nearest even, the same rule as nearbyintf — then clamps to ±127, so it
/// is bit-identical to the scalar tail (a scalar libm nearbyint per
/// element is what made per-request quantization rival the GEMM itself).
inline void QuantizeRun(const float* src, Index len, float inv, int8_t* dst) {
  Index l = 0;
#ifdef CEWS_INT8_VNNI
  const __m512 vinv = _mm512_set1_ps(inv);
  const __m512i lo = _mm512_set1_epi32(-127);
  const __m512i hi = _mm512_set1_epi32(127);
  for (; l + 16 <= len; l += 16) {
    const __m512 x = _mm512_loadu_ps(src + l);
    __m512i q = _mm512_cvtps_epi32(_mm512_mul_ps(x, vinv));
    q = _mm512_max_epi32(lo, _mm512_min_epi32(hi, q));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + l),
                     _mm512_cvtsepi32_epi8(q));
  }
#endif
  for (; l < len; ++l) dst[l] = SaturateRtne(src[l] * inv);
}

/// Per-lane-reciprocal variant for the column-quantize pass (each output
/// pixel carries its own scale, so one row of the im2col matrix mixes 16
/// different reciprocals per vector). Same rounding contract as above.
inline void QuantizeRunPerLane(const float* src, const float* inv, Index len,
                               int8_t* dst) {
  Index j = 0;
#ifdef CEWS_INT8_VNNI
  const __m512i lo = _mm512_set1_epi32(-127);
  const __m512i hi = _mm512_set1_epi32(127);
  for (; j + 16 <= len; j += 16) {
    const __m512 x = _mm512_loadu_ps(src + j);
    const __m512 vinv = _mm512_loadu_ps(inv + j);
    __m512i q = _mm512_cvtps_epi32(_mm512_mul_ps(x, vinv));
    q = _mm512_max_epi32(lo, _mm512_min_epi32(hi, q));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + j),
                     _mm512_cvtsepi32_epi8(q));
  }
#endif
  for (; j < len; ++j) dst[j] = SaturateRtne(src[j] * inv[j]);
}

/// Max |x| over a contiguous run. max is exact and order-free, and the
/// vector body's sign-mask is the same operation fabsf lowers to, so the
/// split makes no numerical difference.
inline float AbsMaxRun(const float* src, Index len) {
  float amax = 0.0f;
  Index l = 0;
#ifdef CEWS_INT8_VNNI
  if (len >= 16) {
    const __m512 mask = _mm512_castsi512_ps(_mm512_set1_epi32(0x7fffffff));
    __m512 vmax = _mm512_setzero_ps();
    for (; l + 16 <= len; l += 16) {
      vmax =
          _mm512_max_ps(vmax, _mm512_and_ps(mask, _mm512_loadu_ps(src + l)));
    }
    amax = _mm512_reduce_max_ps(vmax);
  }
#endif
  for (; l < len; ++l) amax = std::max(amax, std::fabs(src[l]));
  return amax;
}

}  // namespace

void QuantizeRowsInt8(Index m, Index k, const float* x, Index ldx, int8_t* xq,
                      float* scales) {
  for (Index i = 0; i < m; ++i) {
    const float* row = x + i * ldx;
    const float amax = AbsMaxRun(row, k);
    if (amax == 0.0f) {
      scales[i] = 1.0f;
      std::fill(xq + i * k, xq + (i + 1) * k, int8_t{0});
      continue;
    }
    scales[i] = amax / 127.0f;
    QuantizeRun(row, k, 127.0f / amax, xq + i * k);
  }
}

namespace {

/// The shared first stage of the column-quantize paths: per-column absmax
/// over X (k x n), then scales[j] = absmax/127 (1.0 for an all-zero
/// column) and inv[j] = 127/absmax (0.0), the reciprocals precomputed once
/// per column (a divide per element would dominate the whole pass).
void ColumnScales(Index k, Index n, const float* x, Index ldx, float* scales,
                  float* inv) {
  // Column absmax in one row-major pass (the strided per-column walk would
  // thrash; this form keeps reads streaming while accumulating the running
  // maxima in the L1-resident scales buffer).
  for (Index j = 0; j < n; ++j) scales[j] = 0.0f;
  for (Index l = 0; l < k; ++l) {
    const float* row = x + l * ldx;
    Index j = 0;
#ifdef CEWS_INT8_VNNI
    const __m512 mask = _mm512_castsi512_ps(_mm512_set1_epi32(0x7fffffff));
    for (; j + 16 <= n; j += 16) {
      const __m512 cur = _mm512_loadu_ps(scales + j);
      const __m512 v = _mm512_and_ps(mask, _mm512_loadu_ps(row + j));
      _mm512_storeu_ps(scales + j, _mm512_max_ps(cur, v));
    }
#endif
    for (; j < n; ++j) scales[j] = std::max(scales[j], std::fabs(row[j]));
  }
  Index j = 0;
#ifdef CEWS_INT8_VNNI
  const __m512 v127 = _mm512_set1_ps(127.0f);
  const __m512 one = _mm512_set1_ps(1.0f);
  const __m512 zero = _mm512_setzero_ps();
  for (; j + 16 <= n; j += 16) {
    const __m512 amax = _mm512_loadu_ps(scales + j);
    const __mmask16 z = _mm512_cmp_ps_mask(amax, zero, _CMP_EQ_OQ);
    _mm512_storeu_ps(scales + j,
                     _mm512_mask_blend_ps(z, _mm512_div_ps(amax, v127), one));
    _mm512_storeu_ps(inv + j, _mm512_maskz_div_ps(~z, v127, amax));
  }
#endif
  for (; j < n; ++j) {
    const float amax = scales[j];
    scales[j] = amax == 0.0f ? 1.0f : amax / 127.0f;
    inv[j] = amax == 0.0f ? 0.0f : 127.0f / amax;
  }
}

}  // namespace

void QuantizeColsInt8(Index k, Index n, const float* x, Index ldx, int8_t* xq,
                      float* scales) {
  ScopedVec inv(n);
  ColumnScales(k, n, x, ldx, scales, inv.data());
  const float* pinv = inv.data();
  for (Index l = 0; l < k; ++l) {
    QuantizeRunPerLane(x + l * ldx, pinv, n, xq + l * n);
  }
}

void QuantizePackColsInt8(Index k, Index n, const float* x, Index ldx,
                          int8_t* packed, float* scales) {
  // Processed one column tile at a time: the strided colmax walk pulls the
  // tile's k x w block into L1 (<= k * 128 B), and the quantize+interleave
  // loop right after re-reads it from there — X crosses the L2 boundary
  // once in total, where a matrix-wide colmax pass followed by a tile-order
  // quantize pass would cross it twice.
  const Index k4 = (k + kKuQ - 1) / kKuQ * kKuQ;
  alignas(64) float inv[kNrQ];
  for (Index c0 = 0; c0 < n; c0 += kNrQ) {
    const Index w = std::min<Index>(kNrQ, n - c0);
    int8_t* tile = packed + k4 * c0;
#ifdef CEWS_INT8_VNNI
    if (w % 16 == 0) {
      const __m512 mask = _mm512_castsi512_ps(_mm512_set1_epi32(0x7fffffff));
      const __m512 v127 = _mm512_set1_ps(127.0f);
      const __m512 one = _mm512_set1_ps(1.0f);
      for (Index t0 = 0; t0 < w; t0 += 16) {
        __m512 vmax = _mm512_setzero_ps();
        for (Index l = 0; l < k; ++l) {
          vmax = _mm512_max_ps(
              vmax,
              _mm512_and_ps(mask, _mm512_loadu_ps(x + l * ldx + c0 + t0)));
        }
        const __mmask16 z =
            _mm512_cmp_ps_mask(vmax, _mm512_setzero_ps(), _CMP_EQ_OQ);
        _mm512_storeu_ps(
            scales + c0 + t0,
            _mm512_mask_blend_ps(z, _mm512_div_ps(vmax, v127), one));
        _mm512_store_ps(inv + t0, _mm512_maskz_div_ps(~z, v127, vmax));
      }
      const __m512i qlo = _mm512_set1_epi32(-127);
      const __m512i qhi = _mm512_set1_epi32(127);
      for (Index g = 0; g < k4 / kKuQ; ++g) {
        const Index l0 = g * kKuQ;
        int8_t* dst = tile + g * w * kKuQ;
        for (Index t0 = 0; t0 < w; t0 += 16) {
          const __m512 vinv = _mm512_load_ps(inv + t0);
          __m128i r[kKuQ];
          for (Index u = 0; u < kKuQ; ++u) {
            if (l0 + u < k) {
              const __m512 v =
                  _mm512_loadu_ps(x + (l0 + u) * ldx + c0 + t0);
              __m512i q = _mm512_cvtps_epi32(_mm512_mul_ps(v, vinv));
              q = _mm512_max_epi32(qlo, _mm512_min_epi32(qhi, q));
              r[u] = _mm512_cvtsepi32_epi8(q);
            } else {
              r[u] = _mm_setzero_si128();
            }
          }
          const __m128i ab_lo = _mm_unpacklo_epi8(r[0], r[1]);
          const __m128i ab_hi = _mm_unpackhi_epi8(r[0], r[1]);
          const __m128i cd_lo = _mm_unpacklo_epi8(r[2], r[3]);
          const __m128i cd_hi = _mm_unpackhi_epi8(r[2], r[3]);
          __m128i* out = reinterpret_cast<__m128i*>(dst + t0 * kKuQ);
          _mm_storeu_si128(out + 0, _mm_unpacklo_epi16(ab_lo, cd_lo));
          _mm_storeu_si128(out + 1, _mm_unpackhi_epi16(ab_lo, cd_lo));
          _mm_storeu_si128(out + 2, _mm_unpacklo_epi16(ab_hi, cd_hi));
          _mm_storeu_si128(out + 3, _mm_unpackhi_epi16(ab_hi, cd_hi));
        }
      }
      continue;
    }
#endif  // CEWS_INT8_VNNI
    for (Index t = 0; t < w; ++t) {
      float amax = 0.0f;
      for (Index l = 0; l < k; ++l) {
        amax = std::max(amax, std::fabs(x[l * ldx + c0 + t]));
      }
      scales[c0 + t] = amax == 0.0f ? 1.0f : amax / 127.0f;
      inv[t] = amax == 0.0f ? 0.0f : 127.0f / amax;
    }
    for (Index g = 0; g < k4 / kKuQ; ++g) {
      int8_t* dst = tile + g * w * kKuQ;
      for (Index u = 0; u < kKuQ; ++u) {
        const Index l = g * kKuQ + u;
        if (l < k) {
          const float* src = x + l * ldx + c0;
          for (Index t = 0; t < w; ++t) {
            dst[t * kKuQ + u] = SaturateRtne(src[t] * inv[t]);
          }
        } else {
          for (Index t = 0; t < w; ++t) dst[t * kKuQ + u] = 0;
        }
      }
    }
  }
}

void PackInt8NN(Index k, Index n, const int8_t* b, Index ldb,
                int8_t* packed) {
  const Index k4 = (k + kKuQ - 1) / kKuQ * kKuQ;
  for (Index c0 = 0; c0 < n; c0 += kNrQ) {
    const Index w = std::min<Index>(kNrQ, n - c0);
    int8_t* tile = packed + k4 * c0;
#ifdef CEWS_INT8_VNNI
    if (w % 16 == 0) {
      // 16-multiple tile: the pack is a 4-row byte transpose — dst[t*4 + u]
      // = row_u[t] — which is exactly two rounds of byte/word unpacks per
      // 16-column chunk. The scalar form below is a strided byte scatter
      // the compiler can't vectorize, and it dominated the whole conv
      // stage (the m=8 GEMM it feeds is tiny by comparison).
      for (Index g = 0; g < k4 / kKuQ; ++g) {
        const Index l0 = g * kKuQ;
        int8_t* dst = tile + g * w * kKuQ;
        for (Index t0 = 0; t0 < w; t0 += 16) {
          __m128i r[kKuQ];
          for (Index u = 0; u < kKuQ; ++u) {
            r[u] = l0 + u < k
                       ? _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                             b + (l0 + u) * ldb + c0 + t0))
                       : _mm_setzero_si128();
          }
          const __m128i ab_lo = _mm_unpacklo_epi8(r[0], r[1]);
          const __m128i ab_hi = _mm_unpackhi_epi8(r[0], r[1]);
          const __m128i cd_lo = _mm_unpacklo_epi8(r[2], r[3]);
          const __m128i cd_hi = _mm_unpackhi_epi8(r[2], r[3]);
          __m128i* out = reinterpret_cast<__m128i*>(dst + t0 * kKuQ);
          _mm_storeu_si128(out + 0, _mm_unpacklo_epi16(ab_lo, cd_lo));
          _mm_storeu_si128(out + 1, _mm_unpackhi_epi16(ab_lo, cd_lo));
          _mm_storeu_si128(out + 2, _mm_unpacklo_epi16(ab_hi, cd_hi));
          _mm_storeu_si128(out + 3, _mm_unpackhi_epi16(ab_hi, cd_hi));
        }
      }
      continue;
    }
#endif  // CEWS_INT8_VNNI
    for (Index g = 0; g < k4 / kKuQ; ++g) {
      int8_t* dst = tile + g * w * kKuQ;
      for (Index u = 0; u < kKuQ; ++u) {
        const Index l = g * kKuQ + u;
        if (l < k) {
          const int8_t* src = b + l * ldb + c0;
          for (Index t = 0; t < w; ++t) dst[t * kKuQ + u] = src[t];
        } else {
          for (Index t = 0; t < w; ++t) dst[t * kKuQ + u] = 0;
        }
      }
    }
  }
}

void PackInt8NT(Index k, Index n, const int8_t* y, Index ldy,
                int8_t* packed) {
  const Index k4 = (k + kKuQ - 1) / kKuQ * kKuQ;
  for (Index c0 = 0; c0 < n; c0 += kNrQ) {
    const Index w = std::min<Index>(kNrQ, n - c0);
    int8_t* tile = packed + k4 * c0;
    for (Index t = 0; t < w; ++t) {
      const int8_t* yrow = y + (c0 + t) * ldy;
      for (Index g = 0; g < k4 / kKuQ; ++g) {
        int8_t* dst = tile + (g * w + t) * kKuQ;
        for (Index u = 0; u < kKuQ; ++u) {
          const Index l = g * kKuQ + u;
          dst[u] = l < k ? yrow[l] : int8_t{0};
        }
      }
    }
  }
}

namespace {

#ifdef CEWS_INT8_VNNI

/// Reads one 4-byte k-group of a staged offset-u8 row (see the staging
/// pass in Int8DotRows — bytes already hold a + 128 with a 0x80-padded k
/// tail, so this is a plain aligned-group word load).
inline uint32_t LoadOffsetWord(const uint8_t* aorow, Index g) {
  uint32_t word;
  std::memcpy(&word, aorow + g * kKuQ, 4);
  return word;
}

/// Full-width (w == kNrQ == 32) VNNI tile over rows [i, i+rows), rows <=
/// kMrQ. acc lanes hold sum((a+128) * b); the exact identity
/// sum(a*b) = sum((a+128)*b) - 128*colsum(b) recovers the signed dot in
/// int32 (no rounding anywhere), then the fp32 epilogue dequantizes.
inline void VnniTile(Index i, Index rows, Index kg, const uint8_t* ao,
                     Index ldao, const float* sa, const int8_t* tile,
                     const __m512i csum0, const __m512i csum1, const float* sb,
                     Index c0, const float* bias_row, const float* bias_col,
                     float* c, Index ldc) {
  __m512i acc0[kMrQ];
  __m512i acc1[kMrQ];
  for (Index r = 0; r < rows; ++r) {
    acc0[r] = _mm512_setzero_si512();
    acc1[r] = _mm512_setzero_si512();
  }
  for (Index g = 0; g < kg; ++g) {
    const int8_t* blk = tile + g * kNrQ * kKuQ;
    const __m512i b0 =
        _mm512_loadu_si512(reinterpret_cast<const void*>(blk));
    const __m512i b1 =
        _mm512_loadu_si512(reinterpret_cast<const void*>(blk + 64));
    for (Index r = 0; r < rows; ++r) {
      const __m512i av = _mm512_set1_epi32(
          static_cast<int32_t>(LoadOffsetWord(ao + r * ldao, g)));
      acc0[r] = _mm512_dpbusd_epi32(acc0[r], av, b0);
      acc1[r] = _mm512_dpbusd_epi32(acc1[r], av, b1);
    }
  }
  const __m512 sb0 = _mm512_loadu_ps(sb + c0);
  const __m512 sb1 = _mm512_loadu_ps(sb + c0 + 16);
  __m512 add0 = _mm512_setzero_ps();
  __m512 add1 = _mm512_setzero_ps();
  if (bias_col != nullptr) {
    add0 = _mm512_loadu_ps(bias_col + c0);
    add1 = _mm512_loadu_ps(bias_col + c0 + 16);
  }
  for (Index r = 0; r < rows; ++r) {
    const __m512i v0 = _mm512_sub_epi32(acc0[r], csum0);
    const __m512i v1 = _mm512_sub_epi32(acc1[r], csum1);
    const __m512 sr = _mm512_set1_ps(sa[i + r]);
    __m512 br = add0;
    __m512 br1 = add1;
    if (bias_row != nullptr) {
      const __m512 b = _mm512_set1_ps(bias_row[i + r]);
      br = _mm512_add_ps(br, b);
      br1 = _mm512_add_ps(br1, b);
    }
    // Explicit FMA pins the epilogue's rounding: with the default
    // -ffp-contract=fast the compiler may or may not contract a mul+add
    // per inlined instantiation, and rows processed via the kMrQ block
    // would round differently from rows processed via the remainder call.
    const __m512 f0 = _mm512_fmadd_ps(_mm512_mul_ps(sr, sb0),
                                      _mm512_cvtepi32_ps(v0), br);
    const __m512 f1 = _mm512_fmadd_ps(_mm512_mul_ps(sr, sb1),
                                      _mm512_cvtepi32_ps(v1), br1);
    float* crow = c + (i + r) * ldc + c0;
    _mm512_storeu_ps(crow, f0);
    _mm512_storeu_ps(crow + 16, f1);
  }
}

/// Half-width (w == 16) variant for the trailing tile of 16-multiple n
/// (the conv stages' ohow = 144/400 end in one): single accumulator per
/// row, same identity and the same fmaf-pinned epilogue expression tree.
inline void VnniTile16(Index i, Index rows, Index kg, const uint8_t* ao,
                       Index ldao, const float* sa, const int8_t* tile,
                       const __m512i csum0, const float* sb, Index c0,
                       const float* bias_row, const float* bias_col, float* c,
                       Index ldc) {
  __m512i acc0[kMrQ];
  for (Index r = 0; r < rows; ++r) acc0[r] = _mm512_setzero_si512();
  for (Index g = 0; g < kg; ++g) {
    const __m512i b0 = _mm512_loadu_si512(
        reinterpret_cast<const void*>(tile + g * 16 * kKuQ));
    for (Index r = 0; r < rows; ++r) {
      const __m512i av = _mm512_set1_epi32(
          static_cast<int32_t>(LoadOffsetWord(ao + r * ldao, g)));
      acc0[r] = _mm512_dpbusd_epi32(acc0[r], av, b0);
    }
  }
  const __m512 sb0 = _mm512_loadu_ps(sb + c0);
  const __m512 add0 = bias_col != nullptr ? _mm512_loadu_ps(bias_col + c0)
                                          : _mm512_setzero_ps();
  for (Index r = 0; r < rows; ++r) {
    const __m512i v0 = _mm512_sub_epi32(acc0[r], csum0);
    const __m512 sr = _mm512_set1_ps(sa[i + r]);
    __m512 br = add0;
    if (bias_row != nullptr) {
      br = _mm512_add_ps(br, _mm512_set1_ps(bias_row[i + r]));
    }
    const __m512 f0 =
        _mm512_fmadd_ps(_mm512_mul_ps(sr, sb0), _mm512_cvtepi32_ps(v0), br);
    _mm512_storeu_ps(c + (i + r) * ldc + c0, f0);
  }
}

#endif  // CEWS_INT8_VNNI

}  // namespace

void Int8DotRows(Index i0, Index i1, Index n, Index k, const int8_t* a,
                 Index lda, const float* sa, const int8_t* packed,
                 const float* sb, const float* bias_row,
                 const float* bias_col, float* c, Index ldc) {
  CEWS_CHECK_LE(k, kMaxInt8Depth);
  const Index kg = (k + kKuQ - 1) / kKuQ;
  const Index k4 = kg * kKuQ;
#ifdef CEWS_INT8_VNNI
  // Stage the shard's A rows once as the offset-u8 codes vpdpbusd consumes
  // (a XOR 0x80 == a + 128), k tail padded with 0x80 (= 0 + 128; the
  // matching panel bytes are zero, so tail lanes contribute nothing to the
  // dot or the compensation). Hoisting this out of the tile loop removes a
  // scalar load+xor per row per k-group per tile — work the old inner loop
  // redid for every one of the n/32 tiles.
  const bool use_vnni = n >= kNrQ || n % kNrQ == 16;
  AlignedScopedBytes astage(use_vnni ? (i1 - i0) * k4 : Index{1});
  uint8_t* ao = reinterpret_cast<uint8_t*>(astage.data());
  if (use_vnni) {
    const __m512i flip = _mm512_set1_epi8(static_cast<char>(0x80));
    for (Index i = i0; i < i1; ++i) {
      const int8_t* arow = a + i * lda;
      uint8_t* dst = ao + (i - i0) * k4;
      Index l = 0;
      for (; l + 64 <= k; l += 64) {
        const __m512i v = _mm512_loadu_si512(
            reinterpret_cast<const void*>(arow + l));
        _mm512_storeu_si512(reinterpret_cast<void*>(dst + l),
                            _mm512_xor_si512(v, flip));
      }
      for (; l < k; ++l) dst[l] = static_cast<uint8_t>(arow[l]) ^ 0x80u;
      for (; l < k4; ++l) dst[l] = 0x80u;
    }
  }
#endif  // CEWS_INT8_VNNI
  for (Index c0 = 0; c0 < n; c0 += kNrQ) {
    const Index w = std::min<Index>(kNrQ, n - c0);
    const int8_t* tile = packed + k4 * c0;
    Index i = i0;
#ifdef CEWS_INT8_VNNI
    if (w == kNrQ) {
      // Per-column sums of the tile (incl. the zeroed k tail), scaled by
      // the u8 offset: the compensation the VNNI identity subtracts.
      // vpdpbusd against an all-ones u8 operand sums each column's 4-byte
      // group in one instruction — the scalar walk here cost as much as a
      // full extra output row per shard — and pre-warms the panel for the
      // row loop below.
      const __m512i ones = _mm512_set1_epi8(1);
      __m512i cs0 = _mm512_setzero_si512();
      __m512i cs1 = _mm512_setzero_si512();
      for (Index g = 0; g < kg; ++g) {
        const int8_t* blk = tile + g * kNrQ * kKuQ;
        cs0 = _mm512_dpbusd_epi32(
            cs0, ones, _mm512_loadu_si512(reinterpret_cast<const void*>(blk)));
        cs1 = _mm512_dpbusd_epi32(
            cs1, ones,
            _mm512_loadu_si512(reinterpret_cast<const void*>(blk + 64)));
      }
      const __m512i csum0 = _mm512_slli_epi32(cs0, 7);
      const __m512i csum1 = _mm512_slli_epi32(cs1, 7);
      for (; i + kMrQ <= i1; i += kMrQ) {
        VnniTile(i, kMrQ, kg, ao + (i - i0) * k4, k4, sa, tile, csum0, csum1,
                 sb, c0, bias_row, bias_col, c, ldc);
      }
      if (i < i1) {
        VnniTile(i, i1 - i, kg, ao + (i - i0) * k4, k4, sa, tile, csum0,
                 csum1, sb, c0, bias_row, bias_col, c, ldc);
        i = i1;
      }
    } else if (w == 16) {
      const __m512i ones = _mm512_set1_epi8(1);
      __m512i cs0 = _mm512_setzero_si512();
      for (Index g = 0; g < kg; ++g) {
        cs0 = _mm512_dpbusd_epi32(
            cs0, ones,
            _mm512_loadu_si512(
                reinterpret_cast<const void*>(tile + g * 16 * kKuQ)));
      }
      const __m512i csum0 = _mm512_slli_epi32(cs0, 7);
      for (; i + kMrQ <= i1; i += kMrQ) {
        VnniTile16(i, kMrQ, kg, ao + (i - i0) * k4, k4, sa, tile, csum0, sb,
                   c0, bias_row, bias_col, c, ldc);
      }
      if (i < i1) {
        VnniTile16(i, i1 - i, kg, ao + (i - i0) * k4, k4, sa, tile, csum0,
                   sb, c0, bias_row, bias_col, c, ldc);
        i = i1;
      }
    }
#endif  // CEWS_INT8_VNNI
    // Ragged tiles, and every tile when VNNI is unavailable. Walks the
    // grouped layout directly; the int32 accumulation is exact in both
    // paths and the fp epilogue mirrors the vector expression tree
    // (fma(sr*sb, acc, bias_col + bias_row), fmaf-pinned like the fp32
    // kernels), so the paths agree bit for bit on every element.
    for (; i < i1; ++i) {
      int32_t acc[kNrQ] = {};
      const int8_t* arow = a + i * lda;
      for (Index g = 0; g < kg; ++g) {
        const int8_t* blk = tile + g * w * kKuQ;
        const Index umax = std::min<Index>(kKuQ, k - g * kKuQ);
        for (Index u = 0; u < umax; ++u) {
          const int32_t av = arow[g * kKuQ + u];
          for (Index t = 0; t < w; ++t) {
            acc[t] += av * blk[t * kKuQ + u];
          }
        }
      }
      float* crow = c + i * ldc + c0;
      const float sr = sa[i];
      const float br = bias_row != nullptr ? bias_row[i] : 0.0f;
      for (Index t = 0; t < w; ++t) {
        const float add =
            (bias_col != nullptr ? bias_col[c0 + t] : 0.0f) + br;
        crow[t] =
            std::fmaf(sr * sb[c0 + t], static_cast<float>(acc[t]), add);
      }
    }
  }
}

void Int8GemmPrepacked(Index m, Index n, Index k, const int8_t* a, Index lda,
                       const float* sa, const int8_t* packed, const float* sb,
                       const float* bias_row, const float* bias_col, float* c,
                       Index ldc) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    // Degenerate reduction: the dot is empty, output is pure bias.
    for (Index i = 0; i < m; ++i) {
      float* crow = c + i * ldc;
      const float br = bias_row != nullptr ? bias_row[i] : 0.0f;
      for (Index j = 0; j < n; ++j) {
        crow[j] = br + (bias_col != nullptr ? bias_col[j] : 0.0f);
      }
    }
    return;
  }
  ParallelKernel(m, 2 * k * n, [&](Index r0, Index r1) {
    Int8DotRows(r0, r1, n, k, a, lda, sa, packed, sb, bias_row, bias_col, c,
                ldc);
  });
}

}  // namespace cews::nn::gemm
