#include "nn/params.h"

#include <cmath>
#include <cstring>

#include "common/check.h"

namespace cews::nn {

void CopyParameters(const std::vector<Tensor>& src,
                    const std::vector<Tensor>& dst) {
  CEWS_CHECK_EQ(src.size(), dst.size());
  for (size_t i = 0; i < src.size(); ++i) {
    CEWS_CHECK(src[i].shape() == dst[i].shape());
    Tensor d = dst[i];
    std::memcpy(d.data(), src[i].data(),
                sizeof(float) * static_cast<size_t>(src[i].numel()));
  }
}

Index FlatSize(const std::vector<Tensor>& params) {
  Index n = 0;
  for (const Tensor& t : params) n += t.numel();
  return n;
}

std::vector<float> FlattenValues(const std::vector<Tensor>& params) {
  std::vector<float> flat;
  flat.reserve(static_cast<size_t>(FlatSize(params)));
  for (const Tensor& t : params) {
    flat.insert(flat.end(), t.data(), t.data() + t.numel());
  }
  return flat;
}

std::vector<float> FlattenGradients(const std::vector<Tensor>& params) {
  std::vector<float> flat;
  flat.reserve(static_cast<size_t>(FlatSize(params)));
  for (const Tensor& t : params) {
    const float* g = t.grad();
    if (g == nullptr) {
      flat.insert(flat.end(), static_cast<size_t>(t.numel()), 0.0f);
    } else {
      flat.insert(flat.end(), g, g + t.numel());
    }
  }
  return flat;
}

void AccumulateFlatGradients(const std::vector<Tensor>& params,
                             const std::vector<float>& flat) {
  CEWS_CHECK_EQ(static_cast<Index>(flat.size()), FlatSize(params));
  size_t offset = 0;
  for (Tensor t : params) {
    t.impl()->EnsureGrad();
    float* g = t.grad();
    for (Index i = 0; i < t.numel(); ++i) g[i] += flat[offset++];
  }
}

void LoadFlatValues(const std::vector<Tensor>& params,
                    const std::vector<float>& flat) {
  CEWS_CHECK_EQ(static_cast<Index>(flat.size()), FlatSize(params));
  size_t offset = 0;
  for (Tensor t : params) {
    float* p = t.data();
    for (Index i = 0; i < t.numel(); ++i) p[i] = flat[offset++];
  }
}

double GlobalGradNorm(const std::vector<Tensor>& params) {
  double sq = 0.0;
  for (const Tensor& t : params) {
    const float* g = t.grad();
    if (g == nullptr) continue;
    for (Index i = 0; i < t.numel(); ++i) {
      sq += static_cast<double>(g[i]) * g[i];
    }
  }
  return std::sqrt(sq);
}

double ClipGradByGlobalNorm(const std::vector<Tensor>& params,
                            double max_norm) {
  CEWS_CHECK(max_norm > 0.0);
  const double norm = GlobalGradNorm(params);
  if (norm > max_norm) {
    const float scale = static_cast<float>(max_norm / (norm + 1e-12));
    for (Tensor t : params) {
      float* g = t.grad();
      if (g == nullptr) continue;
      for (Index i = 0; i < t.numel(); ++i) g[i] *= scale;
    }
  }
  return norm;
}

void ZeroGradients(const std::vector<Tensor>& params) {
  for (Tensor t : params) t.ZeroGrad();
}

}  // namespace cews::nn
