// cews::nn::gemm — packed, cache-blocked, SIMD-friendly GEMM micro-kernels.
//
// Every hot dense product in the NN substrate routes through the two kernel
// shapes below; together they cover MatMul forward (C = A·B), both MatMul
// backward products (dA = dC·Bᵀ, dB = Aᵀ·dC) and the Conv2d im2col products
// (forward, dW, dX).
//
//  * NN ("axpy" accumulation): C[i, j] += Σ_l A[i, l] · B[l, j], where the
//    per-element accumulation order is l ascending and C is accumulated in
//    place. Because the partial sums live in C (or in registers that are
//    stored back and reloaded exactly), the reduction may be blocked over l
//    (Kc tiling) without changing a single bit.
//  * NT ("dot" accumulation): C[i, l] += Σ_j X[i, j] · Y[l, j], where each
//    element's dot product is a single fresh accumulator filled j ascending
//    and added to C once. Splitting the j loop would reassociate the sum, so
//    the NT kernel never blocks the reduction dimension.
//
// Bitwise-determinism contract (extends PR 1's any-thread-count contract):
// packing, register tiling (kMr x kNr), Kc blocking (NN only) and row
// partitioning all change *which* memory the operands stream from and which
// rows a thread owns — never the per-element floating-point operation
// sequence. That sequence is pinned in source: every multiply-accumulate is
// an explicit std::fmaf (one rounding), so the compiler's per-loop-shape
// contraction choice cannot silently diverge between kernels — GCC at -O3
// contracts `acc += a * b` to an FMA in some loop shapes (the old axpy
// kernels) but not others (the old dot-product reductions). Packed results
// are therefore bitwise identical to the retained reference kernels below
// for finite inputs, at any thread count; verified by tests/nn_gemm_test.cc.
// The one intentional semantic change: the old
// kernels skipped A-operands that were exactly 0.0f; the packed kernels
// multiply through, which adds ±0 contributions — bitwise neutral for
// finite B (and for C accumulators, which can never become -0.0 by
// round-to-nearest addition).
//
// Packed-panel layout (shared by both kernels): the B/Y operand is packed
// into column tiles of width kNr. For the tile covering output columns
// [c0, c0+w), w = min(kNr, n-c0), the tile starts at offset k*c0 and stores
// element (l, c0+t) at tile[l*w + t]. A full pack is therefore exactly k*n
// floats, and the kernels' inner loops read it with unit stride.
#ifndef CEWS_NN_GEMM_H_
#define CEWS_NN_GEMM_H_

#include <algorithm>
#include <cstdint>

#include "common/thread_pool.h"
#include "nn/tensor.h"

namespace cews::nn::gemm {

/// Register-tile width in output columns (floats). 32 = two AVX-512 (or
/// four AVX2) accumulator vectors per row.
inline constexpr Index kNr = 32;

/// Register-tile height in output rows. kMr * kNr/16 = 8 independent FMA
/// chains per loop step — enough to hide FMA latency on current x86.
inline constexpr Index kMr = 4;

/// Reduction-dimension block for the NN kernel: a kKc x kNr panel slab is
/// 16 KiB, L1-resident while the row loop streams over it. (The NT kernel
/// must not block its reduction; see file comment.)
inline constexpr Index kKc = 128;

/// Parallelizes [0, n) over the global cews::runtime pool when the total
/// kernel cost (roughly `flops_per_index * n`) justifies the dispatch
/// overhead; otherwise runs inline. The grain is sized so every claimed
/// chunk carries at least the dispatch-amortizing minimum of work, which
/// keeps tiny-row kernels from degenerating into per-index task churn.
/// Threshold and grain pick scheduling only — by the thread-pool contract
/// (chunks never change what a body invocation computes) they cannot change
/// any result.
template <typename Fn>
void ParallelKernel(Index n, Index flops_per_index, Fn&& fn) {
  constexpr Index kMinFlops = 16 * 1024;
  runtime::ThreadPool& pool = runtime::GlobalPool();
  const Index per = std::max<Index>(flops_per_index, 1);
  if (n <= 1 || pool.num_threads() <= 1 || n * per < kMinFlops) {
    fn(Index{0}, n);
    return;
  }
  const Index grain = std::clamp<Index>(kMinFlops / per, 1, n);
  pool.ParallelFor(0, n, grain, [&fn](int64_t begin, int64_t end) {
    fn(static_cast<Index>(begin), static_cast<Index>(end));
  });
}

/// Packs B (k x n, row stride ldb) into the panel layout above (k*n floats).
/// Records the time spent into the gemm.pack_ns counter.
void PackNN(Index k, Index n, const float* b, Index ldb, float* packed);

/// Packs Y (n x k, row stride ldy) *transposed* into the same panel layout,
/// i.e. PackNN of Yᵀ: panel element (j, c0+t) = Y[(c0+t)*ldy + j]. Records
/// pack time into gemm.pack_ns.
void PackNT(Index k, Index n, const float* y, Index ldy, float* packed);

/// NN kernel over rows [i0, i1): C[i, 0..n) += A_row_i · B using a packed B
/// panel. A is read at a[i*rsa + l*csa] (pass rsa=k, csa=1 for a plain
/// row-major A; rsa=1, csa=lda for a transposed read). C (row stride ldc)
/// must be pre-initialized; accumulation per element is l ascending.
void NNRows(Index i0, Index i1, Index n, Index k, const float* a, Index rsa,
            Index csa, const float* packed, float* c, Index ldc);

/// NT kernel over rows [i0, i1): C[i, 0..n) += X_row_i · Yᵀ using a packed
/// Yᵀ panel (PackNT). Each output element is one fresh j-ascending dot
/// accumulator added to C once.
void NTRows(Index i0, Index i1, Index n, Index k, const float* x, Index ldx,
            const float* packed, float* c, Index ldc);

/// Convenience wrapper: C (m x n, ldc) += A (m x k, strides rsa/csa) ·
/// B (k x n, ldb). Packs B into `pack_scratch` when given (k*n floats,
/// fully overwritten — callers with planner-assigned arenas pass it to skip
/// the workspace), otherwise into the per-thread workspace; then runs
/// NNRows over the pool (rows partitioned; results independent of thread
/// count).
void GemmNN(Index m, Index n, Index k, const float* a, Index rsa, Index csa,
            const float* b, Index ldb, float* c, Index ldc,
            float* pack_scratch = nullptr);

/// Convenience wrapper: C (m x n, ldc) += X (m x k, ldx) · Y (n x k, ldy)ᵀ.
/// `pack_scratch` as in GemmNN (k*n floats).
void GemmNT(Index m, Index n, Index k, const float* x, Index ldx,
            const float* y, Index ldy, float* c, Index ldc,
            float* pack_scratch = nullptr);

/// The pre-packing scalar kernels, retained (loop structure verbatim,
/// multiply-accumulates spelled as std::fmaf like the packed kernels) as the
/// bitwise spec the packed kernels are tested against (tests/nn_gemm_test.cc)
/// and as the baseline the kernel bench sweep reports speedups over. Serial.
namespace reference {

/// The old MatMul-forward/dB/Conv2d-product loop: k-tiled axpy accumulation
/// with the zero-skip on A operands.
void GemmNN(Index m, Index n, Index k, const float* a, Index rsa, Index csa,
            const float* b, Index ldb, float* c, Index ldc);

/// The old dA/dW loop: scalar j-ascending dot products.
void GemmNT(Index m, Index n, Index k, const float* x, Index ldx,
            const float* y, Index ldy, float* c, Index ldc);

}  // namespace reference

}  // namespace cews::nn::gemm

#endif  // CEWS_NN_GEMM_H_
