#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"

namespace cews::nn {

Optimizer::Optimizer(std::vector<Tensor> params)
    : params_(std::move(params)) {
  CEWS_CHECK(!params_.empty());
  for (const Tensor& t : params_) {
    CEWS_CHECK(t.defined());
    CEWS_CHECK(t.requires_grad()) << "optimizing a non-trainable tensor";
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor t : params_) t.ZeroGrad();
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ != 0.0f) {
    velocity_.reserve(params_.size());
    for (const Tensor& t : params_) {
      velocity_.emplace_back(static_cast<size_t>(t.numel()), 0.0f);
    }
  }
}

void Sgd::Step() {
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    Tensor t = params_[pi];
    const float* g = t.grad();
    if (g == nullptr) continue;
    float* p = t.data();
    if (momentum_ == 0.0f) {
      for (Index i = 0; i < t.numel(); ++i) p[i] -= lr_ * g[i];
    } else {
      std::vector<float>& vel = velocity_[pi];
      for (Index i = 0; i < t.numel(); ++i) {
        vel[i] = momentum_ * vel[i] + g[i];
        p[i] -= lr_ * vel[i];
      }
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Tensor& t : params_) {
    m_.emplace_back(static_cast<size_t>(t.numel()), 0.0f);
    v_.emplace_back(static_cast<size_t>(t.numel()), 0.0f);
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    Tensor t = params_[pi];
    const float* g = t.grad();
    if (g == nullptr) continue;
    float* p = t.data();
    std::vector<float>& m = m_[pi];
    std::vector<float>& v = v_[pi];
    for (Index i = 0; i < t.numel(); ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      p[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace cews::nn
