#include "nn/graph.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/env_flags.h"
#include "common/stopwatch.h"
#include "nn/workspace.h"
#include "obs/metrics.h"

namespace cews::nn::graph {

namespace {

// The recording under construction on this thread (nullptr when idle).
// Thread-confined by design, mirroring the tape's thread-local grad mode.
thread_local GraphPtr g_recording;
// Output-impl -> step index for the active recording (Retain/MarkBoundary
// and duplicate-output detection).
thread_local std::unordered_map<TensorImpl*, int> g_step_of;

// Arena offsets are aligned to 16 floats (64 bytes) so planner slots keep
// the cache-line/SIMD alignment the kernels expect from fresh vectors.
constexpr Index kAlignFloats = 16;

Index AlignUp(Index v) {
  return (v + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}

obs::Counter* CacheHits() {
  static obs::Counter* const c = obs::GetCounter("nn.graph.cache_hits");
  return c;
}
obs::Counter* CacheMisses() {
  static obs::Counter* const c = obs::GetCounter("nn.graph.cache_misses");
  return c;
}

}  // namespace

bool GraphModeEnabled() { return GetEnvBool("CEWS_NN_GRAPH", false); }

bool CheckpointingEnabled() { return GetEnvBool("CEWS_NN_CKPT", false); }

bool Recording() { return g_recording != nullptr; }

void NoteCacheHit() { CacheHits()->Increment(); }
void NoteCacheMiss() { CacheMisses()->Increment(); }

OpBuf::~OpBuf() { Workspace::Recycle(std::move(owned)); }

std::shared_ptr<OpBuf> LocalBuf(Index n) {
  auto buf = std::make_shared<OpBuf>();
  buf->owned = Workspace::AcquireVec(n);
  buf->ptr = buf->owned.data();
  buf->size = n;
  return buf;
}

std::shared_ptr<OpBuf> AllocBuf(Index n, BufLife life) {
  CEWS_CHECK(g_recording != nullptr)
      << "AllocBuf outside a graph recording; eager ops use the workspace";
  auto buf = std::make_shared<OpBuf>();
  buf->owned = Workspace::AcquireVec(n);
  buf->ptr = buf->owned.data();
  buf->size = n;
  buf->life = life;
  g_recording->pending_bufs_.push_back(buf);
  return buf;
}

void BeginRecording() {
  CEWS_CHECK(g_recording == nullptr)
      << "nested graph recordings are not supported";
  g_recording = GraphPtr(new CompiledGraph());
  g_step_of.clear();
}

void AbandonRecording() {
  g_recording.reset();
  g_step_of.clear();
}

void MarkPlaceholder(const Tensor& t) {
  CEWS_CHECK(t.defined());
  t.impl()->placeholder = true;
}

void Retain(const Tensor& t) {
  CEWS_CHECK(g_recording != nullptr) << "Retain outside a graph recording";
  CEWS_CHECK(t.defined());
  auto it = g_step_of.find(t.impl().get());
  // Leaves are always owned storage; nothing to pin.
  if (it == g_step_of.end()) return;
  g_recording->steps_[static_cast<size_t>(it->second)].retained = true;
}

void MarkBoundary(const Tensor& t) {
  if (g_recording == nullptr) return;
  CEWS_CHECK(t.defined());
  auto it = g_step_of.find(t.impl().get());
  if (it == g_step_of.end()) return;  // leaf checkpoint: already resident
  g_recording->steps_[static_cast<size_t>(it->second)].boundary = true;
}

void RecordStep(const Tensor& out,
                std::vector<std::shared_ptr<TensorImpl>> inputs,
                std::function<void()> fwd) {
  CEWS_CHECK(g_recording != nullptr);
  CEWS_CHECK(out.defined());
  CEWS_CHECK(fwd != nullptr);
  TensorImpl* key = out.impl().get();
  CEWS_CHECK(g_step_of.find(key) == g_step_of.end())
      << "tensor recorded as the output of two steps";
  CompiledGraph::Step step;
  step.out = out.impl();
  step.inputs = std::move(inputs);
  step.fwd = std::move(fwd);
  step.bufs = std::move(g_recording->pending_bufs_);
  g_recording->pending_bufs_.clear();
  g_step_of.emplace(key, static_cast<int>(g_recording->steps_.size()));
  g_recording->steps_.push_back(std::move(step));
}

GraphPtr EndRecording(const Tensor& root) {
  CEWS_CHECK(g_recording != nullptr) << "EndRecording without BeginRecording";
  CEWS_CHECK(g_recording->pending_bufs_.empty())
      << "scratch allocated but never attached to a recorded step";
  GraphPtr graph = std::move(g_recording);
  g_recording.reset();
  g_step_of.clear();
  graph->Finalize(root);
  return graph;
}

CompiledGraph::~CompiledGraph() {
  // The root's delegation pointer is non-owning; sever it so a root tensor
  // outliving its graph falls back to tape-rule CHECKs on Backward instead
  // of dereferencing freed memory.
  if (root_.defined() && root_.impl()->graph_exec == this) {
    root_.impl()->graph_exec = nullptr;
  }
}

void CompiledGraph::Finalize(const Tensor& root) {
  root_ = root;
  const int n = static_cast<int>(steps_.size());

  // Output-impl -> step index (g_step_of is cleared by now).
  std::unordered_map<TensorImpl*, int> sidx;
  sidx.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) sidx.emplace(steps_[i].out.get(), i);

  // --- Reachability: which steps lie on a tape path from the root. Only
  // their closures run in Backward(), and only their grads are re-zeroed
  // per call — exactly the set a tape Backward() from this root touches.
  if (root_.defined()) {
    CEWS_CHECK_EQ(root_.numel(), 1) << "graph root must be a scalar loss";
    std::unordered_set<TensorImpl*> visited;
    std::vector<TensorImpl*> stack{root_.impl().get()};
    visited.insert(root_.impl().get());
    while (!stack.empty()) {
      TensorImpl* node = stack.back();
      stack.pop_back();
      auto it = sidx.find(node);
      if (it != sidx.end()) steps_[static_cast<size_t>(it->second)].reachable = true;
      for (const auto& parent : node->parents) {
        if (visited.insert(parent.get()).second) stack.push_back(parent.get());
      }
    }
  }

  // --- Memoization (marian's memoize_): a step is constant when it has no
  // backward closure and every input is either a constant leaf (not a
  // parameter, not a placeholder) or itself memoized. Constant subgraphs —
  // e.g. the frozen RND target net's normalization constants — ran once at
  // record time and are skipped on every replay.
  for (int i = 0; i < n; ++i) {
    Step& s = steps_[static_cast<size_t>(i)];
    if (s.out->backward_fn) continue;
    bool constant = true;
    for (const auto& in : s.inputs) {
      auto it = sidx.find(in.get());
      if (it != sidx.end()) {
        constant = constant && steps_[static_cast<size_t>(it->second)].memoized;
      } else {
        constant = constant && !in->requires_grad && !in->placeholder;
      }
      if (!constant) break;
    }
    if (constant) {
      s.memoized = true;
      ++num_memoized_;
    }
  }

  // --- Persistence: memoized values, retained outputs and checkpoint
  // boundaries keep their own storage; so does the root (callers read the
  // loss between replays).
  for (Step& s : steps_) {
    if (s.memoized || s.retained || s.boundary) s.persistent = true;
  }
  if (root_.defined()) {
    auto it = sidx.find(root_.impl().get());
    if (it != sidx.end()) {
      Step& rs = steps_[static_cast<size_t>(it->second)];
      rs.persistent = true;
      rs.retained = true;
    }
  }

  // --- Checkpoint segmentation. Segments are creation-contiguous runs
  // ending at a boundary step; the final segment is never recomputed (its
  // backward runs straight off the forward, so checkpointing it would buy
  // nothing and cost a recompute).
  num_segments_ = 1;
  if (CheckpointingEnabled() && root_.defined()) {
    int seg = 0;
    for (int i = 0; i < n; ++i) {
      steps_[static_cast<size_t>(i)].segment = seg;
      if (steps_[static_cast<size_t>(i)].boundary && i + 1 < n) ++seg;
    }
    num_segments_ = seg + 1;
    checkpointing_ = num_segments_ >= 2;
    if (!checkpointing_) {
      for (Step& s : steps_) s.segment = 0;
      num_segments_ = 1;
    }
  }

  if (checkpointing_) {
    // Promote interiors consumed across segment lines: their consumer's
    // forward or backward runs while the producer's segment is not
    // materialized, so the value must stay resident.
    for (Step& s : steps_) {
      for (const auto& in : s.inputs) {
        auto it = sidx.find(in.get());
        if (it == sidx.end()) continue;
        Step& p = steps_[static_cast<size_t>(it->second)];
        if (p.segment != s.segment) p.persistent = true;
      }
    }
    // Everything else in a non-final segment is dropped after forward and
    // recomputed (its thunk re-run) just before the segment's backward.
    for (Step& s : steps_) {
      s.recomputed =
          s.segment < num_segments_ - 1 && !s.persistent && !s.memoized;
    }
  }

  for (const Step& s : steps_) {
    if (s.persistent) {
      persistent_floats_ += static_cast<Index>(s.out->data.size());
    }
  }

  Plan();

  // The recording pass executed every op eagerly, so outputs are already
  // valid: the first Backward() needs no fresh Forward().
  fwd_since_bwd_ = true;

  if (root_.defined()) root_.impl()->graph_exec = this;
}

// Static memory planning: build a global timeline (forward step times, then
// per-segment recompute and backward times in execution order), give every
// non-persistent buffer its liveness interval set on that timeline, and
// first-fit pack them into one arena with slot sharing between
// liveness-disjoint buffers. Owned trace values are copied into their slots
// in creation order, which is safe because any slot content that survives
// to its first post-trace read is written last (later-created items copy
// later), and everything else is recomputed or rewritten before being read.
void CompiledGraph::Plan() {
  const int n = static_cast<int>(steps_.size());
  if (n == 0) return;

  std::unordered_map<TensorImpl*, int> sidx;
  sidx.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) sidx.emplace(steps_[i].out.get(), i);

  std::vector<std::vector<int>> consumers(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (const auto& in : steps_[static_cast<size_t>(i)].inputs) {
      auto it = sidx.find(in.get());
      if (it != sidx.end()) consumers[static_cast<size_t>(it->second)].push_back(i);
    }
  }

  // Timeline: F(i) = i; then, walking segments in backward execution order
  // (last first), recompute times R ascending within the segment followed by
  // backward times B descending within it. Globally, B is descending in
  // creation order within each phase, matching the executor.
  std::vector<int> B(static_cast<size_t>(n), -1);
  std::vector<int> R(static_cast<size_t>(n), -1);
  int t = n;
  for (int seg = num_segments_ - 1; seg >= 0; --seg) {
    if (checkpointing_ && seg < num_segments_ - 1) {
      for (int i = 0; i < n; ++i) {
        const Step& s = steps_[static_cast<size_t>(i)];
        if (s.segment == seg && s.recomputed) R[static_cast<size_t>(i)] = t++;
      }
    }
    for (int i = n - 1; i >= 0; --i) {
      if (steps_[static_cast<size_t>(i)].segment == seg) B[static_cast<size_t>(i)] = t++;
    }
  }

  auto runs_backward = [&](int i) {
    const Step& s = steps_[static_cast<size_t>(i)];
    return s.reachable && s.out->backward_fn != nullptr;
  };

  struct Item {
    Index size = 0;
    int created = 0;
    bool copy = false;  // trace value must survive into the slot
    std::vector<std::pair<int, int>> iv;  // inclusive [start, end] intervals
    TensorImpl* impl = nullptr;
    OpBuf* buf = nullptr;
    Index offset = 0;
  };
  std::vector<Item> items;

  for (int i = 0; i < n; ++i) {
    Step& s = steps_[static_cast<size_t>(i)];
    const int Fi = i;
    const int Bi = B[static_cast<size_t>(i)];

    if (!s.persistent && !s.out->data.empty()) {
      // Forward-read window: this step's own compute plus every consumer's
      // forward. Cross-segment consumers forced persistence, so consumers
      // here share the segment.
      int fwd_end = Fi;
      int bwd_read = -1;
      for (int j : consumers[static_cast<size_t>(i)]) {
        fwd_end = std::max(fwd_end, j);
        if (runs_backward(j)) bwd_read = std::max(bwd_read, B[static_cast<size_t>(j)]);
        const int Rj = R[static_cast<size_t>(j)];
        if (Rj >= 0) bwd_read = std::max(bwd_read, Rj);  // recompute re-reads
      }
      if (runs_backward(i)) bwd_read = std::max(bwd_read, Bi);
      Item item;
      item.size = static_cast<Index>(s.out->data.size());
      item.created = Fi;
      item.impl = s.out.get();
      if (s.recomputed) {
        item.iv.push_back({Fi, fwd_end});
        const int Ri = R[static_cast<size_t>(i)];
        item.iv.push_back({Ri, std::max(Ri, bwd_read)});
        item.copy = false;  // rewritten by recompute before any backward read
      } else {
        item.iv.push_back({Fi, std::max(fwd_end, bwd_read)});
        item.copy = true;
      }
      items.push_back(std::move(item));
    }

    for (const auto& buf : s.bufs) {
      Item item;
      item.size = buf->size;
      item.created = Fi;
      item.buf = buf.get();
      const bool bwd = runs_backward(i);
      switch (buf->life) {
        case BufLife::kFwd:
          item.iv.push_back({Fi, Fi});
          if (s.recomputed) {
            const int Ri = R[static_cast<size_t>(i)];
            item.iv.push_back({Ri, Ri});
          }
          break;
        case BufLife::kSpan:
          if (s.recomputed) {
            item.iv.push_back({Fi, Fi});
            item.iv.push_back({R[static_cast<size_t>(i)], bwd ? Bi : R[static_cast<size_t>(i)]});
          } else {
            item.iv.push_back({Fi, bwd ? Bi : Fi});
            item.copy = bwd;  // forward-written values read by backward
          }
          break;
        case BufLife::kBwd:
          item.iv.push_back({Bi, Bi});
          break;
      }
      items.push_back(std::move(item));
    }
  }

  if (items.empty()) return;

  auto time_overlap = [](const Item& a, const Item& b) {
    for (const auto& x : a.iv) {
      for (const auto& y : b.iv) {
        if (x.first <= y.second && y.first <= x.second) return true;
      }
    }
    return false;
  };

  // First-fit decreasing: place big buffers first, each at the lowest
  // aligned offset clear of every time-overlapping placed item.
  std::vector<Item*> order;
  order.reserve(items.size());
  for (Item& it : items) order.push_back(&it);
  std::sort(order.begin(), order.end(), [](const Item* a, const Item* b) {
    if (a->size != b->size) return a->size > b->size;
    return a->created < b->created;
  });

  Index total = 0;
  std::vector<Item*> placed;
  std::vector<std::pair<Index, Index>> blocked;  // [offset, end) of rivals
  for (Item* item : order) {
    blocked.clear();
    for (Item* p : placed) {
      if (time_overlap(*item, *p)) {
        blocked.push_back({p->offset, p->offset + p->size});
      }
    }
    std::sort(blocked.begin(), blocked.end());
    Index cand = 0;
    for (const auto& range : blocked) {
      if (cand + item->size <= range.first) break;
      cand = std::max(cand, range.second);
      cand = AlignUp(cand);
    }
    item->offset = cand;
    total = std::max(total, cand + item->size);
    placed.push_back(item);
  }

  arena_ = std::make_shared<std::vector<float>>(static_cast<size_t>(total));
  float* base = arena_->data();

  // Bind in creation order (items was built in creation order): where two
  // items share a slot, the later-created one's copy lands last, and it is
  // exactly the one whose value may still be read first after the trace.
  for (Item& item : items) {
    float* slot = base + item.offset;
    if (item.impl != nullptr) {
      if (item.copy && item.size > 0) {
        std::memcpy(slot, item.impl->data.data(),
                    static_cast<size_t>(item.size) * sizeof(float));
      }
      Workspace::Recycle(item.impl->data.BindExternal(
          slot, static_cast<size_t>(item.size), arena_));
    } else {
      if (item.copy && item.size > 0) {
        std::memcpy(slot, item.buf->owned.data(),
                    static_cast<size_t>(item.size) * sizeof(float));
      }
      Workspace::Recycle(std::move(item.buf->owned));
      item.buf->owned.clear();
      item.buf->ptr = slot;
      item.buf->keepalive = arena_;
    }
  }

  const Index bytes = total * static_cast<Index>(sizeof(float));
  static obs::Counter* const plan_bytes = obs::GetCounter("nn.graph.plan_bytes");
  plan_bytes->Add(static_cast<uint64_t>(bytes));
  static obs::Gauge* const peak = obs::GetGauge("nn.graph.peak_arena_bytes");
  if (static_cast<double>(bytes) > peak->Get()) {
    peak->Set(static_cast<double>(bytes));
  }
}

void CompiledGraph::Forward() {
  static obs::Counter* const calls = obs::GetCounter("nn.graph.calls");
  for (Step& s : steps_) {
    if (!s.memoized) s.fwd();
  }
  fwd_since_bwd_ = true;
  calls->Increment();
}

void CompiledGraph::Backward() {
  CEWS_CHECK(root_.defined()) << "Backward() on a forward-only graph";
  CEWS_CHECK(fwd_since_bwd_)
      << "double Backward() on the same compiled forward: replay Forward() "
         "with fresh inputs first (gradients would double-accumulate)";
  fwd_since_bwd_ = false;

  // Interior grads persist across replays; zero the ones this backward will
  // touch so accumulation starts from scratch, exactly like the tape's
  // freshly allocated interiors. Leaf/parameter grads are left alone — they
  // accumulate across minibatches until the optimizer clears them.
  for (Step& s : steps_) {
    if (s.reachable && !s.out->grad.empty()) {
      std::fill(s.out->grad.begin(), s.out->grad.end(), 0.0f);
    }
  }
  TensorImpl* root = root_.impl().get();
  root->EnsureGrad();
  std::fill(root->grad.begin(), root->grad.end(), 0.0f);
  root->grad[0] += 1.0f;

  static obs::Counter* const recompute_ns =
      obs::GetCounter("nn.graph.recompute_ns");
  const int n = static_cast<int>(steps_.size());
  for (int seg = num_segments_ - 1; seg >= 0; --seg) {
    if (checkpointing_ && seg < num_segments_ - 1) {
      const uint64_t t0 = Stopwatch::NowNs();
      for (int i = 0; i < n; ++i) {
        Step& s = steps_[static_cast<size_t>(i)];
        if (s.segment == seg && s.recomputed) s.fwd();
      }
      recompute_ns->Add(Stopwatch::NowNs() - t0);
    }
    // Descending creation order within the segment; segments themselves run
    // last-to-first, so closure order matches the tape's global descending
    // creation order node for node.
    for (int i = n - 1; i >= 0; --i) {
      Step& s = steps_[static_cast<size_t>(i)];
      if (s.segment != seg) continue;
      if (s.reachable && s.out->backward_fn) s.out->backward_fn();
    }
  }
}

Index CompiledGraph::arena_bytes() const {
  return arena_ ? static_cast<Index>(arena_->size() * sizeof(float)) : 0;
}

Index CompiledGraph::persistent_bytes() const {
  return persistent_floats_ * static_cast<Index>(sizeof(float));
}

}  // namespace cews::nn::graph
