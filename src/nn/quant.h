// cews::nn::quant — publish-time per-channel symmetric int8 quantization of
// policy parameters.
//
// Scale derivation (per output channel ch): scale[ch] = absmax(W[ch]) / 127,
// q = saturate_rtne(w / scale) in [-127, 127], dequant w' = q * scale. The
// grid is symmetric around an exactly-representable zero (0 -> 0 -> 0.0f),
// the channel's absmax maps to ±127 exactly, and round-to-nearest-even
// (std::nearbyintf under the default rounding mode) makes the mapping
// deterministic and unbiased. "Output channel" means the axis a GEMM output
// element sums over one row/column of:
//   * Linear weights [in, out] — one channel per output feature (a column
//     of W); stored channel-major ([out, in]) so each channel is a
//     contiguous int8 row, plus a pre-packed B panel (gemm_int8.h) so the
//     serve-time product needs NO per-request pack.
//   * Conv weights [O, C, KH, KW] — one channel per output map; the native
//     row-major layout is already channel-major ([O, C*KH*KW]), and conv
//     weights sit on the A side of the im2col product, which reads plain
//     rows (no panel needed).
// 1-D parameters (biases, LayerNorm gamma/beta) stay fp32: they are O(n)
// epilogue terms, not GEMM operands, and quantizing them would cost accuracy
// for zero kernel-time win.
//
// QuantizeParams runs ONCE per hot-swap epoch — ModelRegistry::Publish
// builds the bundle alongside the fp32 snapshot, so serving pays zero
// per-request weight-quantization or pack cost (the publish-time
// amortization argument; see DESIGN.md "Quantized inference"). The bundle
// is immutable after construction and shared read-only by every inference
// worker. Training never sees it: the learner's numerics stay fp32 and
// bitwise-deterministic.
#ifndef CEWS_NN_QUANT_H_
#define CEWS_NN_QUANT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/tensor.h"
#include "nn/workspace.h"

namespace cews::nn::quant {

/// Heap buffer of int8 whose data() honors the kPanelAlignment (64 B)
/// contract packed panels require. Plain std::vector<int8_t> only guarantees
/// alignof(std::max_align_t); this over-allocates and offsets. Copy/move
/// safe: the alignment offset is recomputed from the storage base.
class AlignedInt8Buffer {
 public:
  AlignedInt8Buffer() = default;
  explicit AlignedInt8Buffer(Index n)
      : storage_(static_cast<size_t>(n) + kPanelAlignment), size_(n) {
    Realign();
  }
  AlignedInt8Buffer(const AlignedInt8Buffer& other)
      : storage_(other.storage_), size_(other.size_) {
    Realign();
    if (size_ > 0) {
      std::copy(other.data(), other.data() + size_, data());
    }
  }
  AlignedInt8Buffer& operator=(const AlignedInt8Buffer& other) {
    if (this != &other) {
      storage_ = other.storage_;
      size_ = other.size_;
      Realign();
      if (size_ > 0) std::copy(other.data(), other.data() + size_, data());
    }
    return *this;
  }
  AlignedInt8Buffer(AlignedInt8Buffer&&) = default;
  AlignedInt8Buffer& operator=(AlignedInt8Buffer&&) = default;

  int8_t* data() { return storage_.data() + offset_; }
  const int8_t* data() const { return storage_.data() + offset_; }
  Index size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  void Realign() {
    const auto base = reinterpret_cast<std::uintptr_t>(storage_.data());
    offset_ = static_cast<size_t>(
        (kPanelAlignment - base % kPanelAlignment) % kPanelAlignment);
  }
  std::vector<int8_t> storage_;
  Index size_ = 0;
  size_t offset_ = 0;
};

/// One weight tensor quantized per output channel. `rows` holds the int8
/// values channel-major ([channels, per_channel] row-major — the A-side
/// layout); `packed` additionally holds the gemm_int8 B panel for 2-D
/// (Linear) weights, empty for conv weights (A-side operand).
struct QuantizedTensor {
  Shape shape;                 ///< Original fp32 shape.
  Index channels = 0;          ///< Output channels (= quantization groups).
  Index per_channel = 0;       ///< Elements per channel (the GEMM k).
  std::vector<float> scales;   ///< [channels], absmax/127 (1.0 if all-zero).
  AlignedInt8Buffer rows;      ///< Channel-major int8 [channels*per_channel].
  AlignedInt8Buffer packed;    ///< Pre-packed panel (2-D weights only).
};

/// Quantizes a Linear weight [in, out] per output column. rows[ch*in + l] =
/// q(W[l, out=ch]); packed = PackInt8NT of rows (panel of `out` columns by
/// `in` rows).
QuantizedTensor QuantizeLinearWeight(const Tensor& w);

/// Quantizes a Conv2d weight [O, C, KH, KW] per output map O; rows is the
/// native layout quantized, packed stays empty.
QuantizedTensor QuantizeConvWeight(const Tensor& w);

/// Dequantizes channel ch of `qt` into `out` (per_channel floats):
/// out[l] = rows[ch*per_channel + l] * scales[ch]. Test/diagnostic helper.
void DequantizeChannel(const QuantizedTensor& qt, Index ch, float* out);

/// The immutable publish-time bundle: one entry per parameter tensor,
/// index-aligned with the fp32 parameter list it was built from
/// (PolicyNet::Parameters() order for policy nets). ndim >= 2 tensors are
/// quantized; everything else (biases, LN gamma/beta) is a dense fp32 copy.
struct QuantizedParams {
  struct Entry {
    bool quantized = false;
    QuantizedTensor q;         ///< Valid when quantized.
    std::vector<float> dense;  ///< fp32 copy when not quantized.
    Shape shape;               ///< Original shape either way.
  };
  std::vector<Entry> entries;
};

/// Builds the bundle from a parameter list (deep copy; `params` may be
/// hot-swapped or freed afterwards). `quantize` (optional, one flag per
/// parameter) restricts which eligible tensors are quantized: a 0 flag
/// keeps that tensor as a dense fp32 copy even if its rank qualifies.
/// Callers use this to quantize only the serve-hot GEMMs and keep small,
/// decision-critical layers (e.g. policy heads) at full precision — see
/// agents::QuantizePolicyParams. nullptr = quantize everything eligible.
QuantizedParams QuantizeParams(const std::vector<Tensor>& params,
                               const std::vector<uint8_t>* quantize = nullptr);

}  // namespace cews::nn::quant

#endif  // CEWS_NN_QUANT_H_
