// cews::nn::gemm — packed int8 micro-kernels for the serve-hot GEMM shapes.
//
// The fp32 kernels (gemm.h) carry the training path, where every product
// must stay bitwise-identical to the scalar reference. Serving has a
// different contract: weights are frozen at publish time, accuracy is gated
// by an action-agreement harness (quantized vs fp32 argmax, agents/
// quant_policy.h), and per-request cost is what matters. The int8 family
// exploits that freedom:
//
//  * Weights are quantized per output channel (symmetric absmax, quant.h)
//    and packed into panels ONCE at publish — the per-request pack the fp32
//    GemmNN pays on its B operand (k*n floats per call) disappears.
//  * Activations are quantized per row (or per im2col column) at request
//    time with the same round-to-nearest-even + saturate rule — an O(m*k)
//    pass against the O(m*n*k) product.
//  * The kernel accumulates int8 x int8 products in int32 (exact: with
//    |q| <= 127 a reduction of up to 2^17 terms cannot overflow), then
//    dequantizes on output: C[i,j] = sa[i]*sb[j]*acc + bias. Integer
//    accumulation is associative, so the int8 path is bitwise-deterministic
//    at any thread count by construction — no fmaf pinning needed.
//
// Panel layout follows the fp32 kernels' column tiling with one extra
// twist for the hardware dot instruction: the B operand is packed into
// column tiles of width kNrQ, and within a tile the k dimension is grouped
// into runs of kKuQ = 4 — the tile covering output columns [c0, c0+w)
// starts at offset RoundUp(k,4)*c0 and stores element (l, c0+t) at
// tile[((l/4)*w + (c0+t - c0))*4 + l%4], with the k tail zero-padded. Four
// consecutive-k bytes of one column land contiguously, which is exactly the
// operand shape of AVX512-VNNI's vpdpbusd (u8 x s8 dot of 4-byte groups
// into int32 lanes); the kernel feeds it by offsetting A's codes to u8
// (a XOR 0x80 = a + 128) and subtracting 128 * colsum(B) afterwards — an
// exact integer identity, so determinism is untouched. A full pack is
// Int8PanelBytes(k, n) ~= k*n int8 bytes (4x smaller than fp32 — the
// k=1152 trunk-FC panel drops from 576 KiB to 144 KiB, L2-resident).
// Panels must be kPanelAlignment (64 B) aligned: publish-time packs use
// quant.h's aligned buffers, request-time packs use
// Workspace::AlignedScopedBytes.
#ifndef CEWS_NN_GEMM_INT8_H_
#define CEWS_NN_GEMM_INT8_H_

#include <cstdint>

#include "nn/tensor.h"

namespace cews::nn::gemm {

/// Column-tile width of the int8 panels: two full cache lines of int8
/// lanes, matching the fp32 kNr so the serve shapes tile identically.
inline constexpr Index kNrQ = 32;

/// Register-tile height in output rows (int32 accumulator block is
/// kMrQ x kNrQ = 512 B, same footprint as the fp32 tile).
inline constexpr Index kMrQ = 4;

/// Depth of one packed dot group: vpdpbusd consumes 4 consecutive-k bytes
/// per column per instruction, so panels interleave (and zero-pad) k in
/// runs of 4.
inline constexpr Index kKuQ = 4;

/// Largest reduction depth the int32 accumulator admits without overflow.
/// The VNNI path accumulates (a+128) * b with a+128 <= 255 and |b| <= 127,
/// so each term is bounded by 255*127; 2^31-1 budget. Still ~58x above the
/// deepest serve shape (trunk FC k=1152); CHECKed by the kernels.
inline constexpr Index kMaxInt8Depth = (Index{1} << 31) / (255 * 127);

/// Bytes of a packed panel for a k x n B operand: k rounds up to the kKuQ
/// grouping (the pad bytes are zeroed by the pack). Allocate panels with
/// this, not k*n.
inline constexpr Index Int8PanelBytes(Index k, Index n) {
  return (k + kKuQ - 1) / kKuQ * kKuQ * n;
}

/// Quantizes each row of X (m x k fp32, row stride ldx) symmetrically to
/// int8: scales[i] = rowmax|x|/127 (1.0 for an all-zero row), xq[i*k + l] =
/// saturate(rtne(x / scales[i])) in [-127, 127]. Round-to-nearest-even via
/// std::nearbyintf under the default rounding mode — the same rule quant.h
/// applies to weights, so activation and weight grids agree.
void QuantizeRowsInt8(Index m, Index k, const float* x, Index ldx, int8_t* xq,
                      float* scales);

/// Per-column variant for im2col matrices: X is k x n (row stride ldx = n),
/// column j is one output pixel's patch. scales[j] = colmax|x|/127, xq keeps
/// the k x n row-major layout. One extra O(k*n) pass buys per-pixel scale
/// resolution — the accuracy knob that keeps conv-stage argmax agreement
/// high.
void QuantizeColsInt8(Index k, Index n, const float* x, Index ldx, int8_t* xq,
                      float* scales);

/// Packs B (k x n int8, row stride ldb) into the panel layout above
/// (Int8PanelBytes(k, n) bytes). The int8 analogue of PackNN —
/// request-time path for quantized im2col columns.
void PackInt8NN(Index k, Index n, const int8_t* b, Index ldb, int8_t* packed);

/// QuantizeColsInt8 + PackInt8NN fused into one pass: quantizes the im2col
/// matrix X (k x n fp32) per column and writes the codes straight into the
/// panel layout, skipping the intermediate k x n int8 buffer (one whole
/// write+read+rewrite of the matrix — the request-time conv path's largest
/// avoidable memory cost). Bit-identical to running the two steps
/// separately; `packed` takes Int8PanelBytes(k, n) bytes.
void QuantizePackColsInt8(Index k, Index n, const float* x, Index ldx,
                          int8_t* packed, float* scales);

/// Packs Y (n x k int8, row stride ldy) *transposed* into the same layout,
/// i.e. PackInt8NN of Yᵀ: panel element (l, c0+t) = Y[(c0+t)*ldy + l]. The
/// publish-time path for channel-major quantized weights (quant.h stores
/// each output channel as a contiguous int8 row).
void PackInt8NT(Index k, Index n, const int8_t* y, Index ldy, int8_t* packed);

/// The int8 dot kernel over output rows [i0, i1):
///   C[i, j] = sa[i] * sb[j] * (Σ_l A[i,l] · panel(l,j))
///             [+ bias_row[i]] [+ bias_col[j]]
/// A is row-major int8 (row stride lda); `packed` is a PackInt8NN/NT panel
/// of n columns by k rows; sa/sb are the per-row / per-column dequantize
/// scales; either bias may be null. C (row stride ldc) is *overwritten*
/// (serve forwards always start from bias, never accumulate). Accumulation
/// is exact int32, so results are identical however rows are partitioned.
void Int8DotRows(Index i0, Index i1, Index n, Index k, const int8_t* a,
                 Index lda, const float* sa, const int8_t* packed,
                 const float* sb, const float* bias_row,
                 const float* bias_col, float* c, Index ldc);

/// Convenience wrapper: full C (m x n), rows partitioned over the global
/// runtime pool via ParallelKernel (bit-identical at any thread count —
/// integer accumulation plus per-element fp dequantize, both
/// partition-invariant).
void Int8GemmPrepacked(Index m, Index n, Index k, const int8_t* a, Index lda,
                       const float* sa, const int8_t* packed, const float* sb,
                       const float* bias_row, const float* bias_col, float* c,
                       Index ldc);

}  // namespace cews::nn::gemm

#endif  // CEWS_NN_GEMM_INT8_H_
