// Weight initialization schemes.
#ifndef CEWS_NN_INIT_H_
#define CEWS_NN_INIT_H_

#include "common/rng.h"
#include "nn/tensor.h"

namespace cews::nn {

/// Fills t with U(-limit, limit), limit = sqrt(6 / (fan_in + fan_out))
/// (Glorot/Xavier uniform).
void XavierUniform(Tensor& t, Index fan_in, Index fan_out, cews::Rng& rng);

/// Fills t with N(0, sqrt(2 / fan_in)) (He/Kaiming normal, for ReLU nets).
void HeNormal(Tensor& t, Index fan_in, cews::Rng& rng);

/// Fills t with N(0, stddev).
void GaussianInit(Tensor& t, float stddev, cews::Rng& rng);

/// Fills t with U(lo, hi).
void UniformInit(Tensor& t, float lo, float hi, cews::Rng& rng);

/// Fills t with a constant.
void ConstantInit(Tensor& t, float value);

}  // namespace cews::nn

#endif  // CEWS_NN_INIT_H_
