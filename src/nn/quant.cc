#include "nn/quant.h"

#include <cmath>

#include "common/check.h"
#include "common/stopwatch.h"
#include "nn/gemm_int8.h"
#include "obs/metrics.h"

namespace cews::nn::quant {

namespace {

inline int8_t SaturateRtne(float x) {
  const float r = std::nearbyintf(x);
  if (r >= 127.0f) return 127;
  if (r <= -127.0f) return -127;
  return static_cast<int8_t>(r);
}

/// Quantizes one channel (a contiguous run of `per_channel` fp32 values)
/// into `dst`, returning its scale.
float QuantizeChannelRun(const float* src, Index per_channel, int8_t* dst) {
  float amax = 0.0f;
  for (Index l = 0; l < per_channel; ++l) {
    amax = std::max(amax, std::fabs(src[l]));
  }
  if (amax == 0.0f) {
    std::fill(dst, dst + per_channel, int8_t{0});
    return 1.0f;
  }
  const float inv = 127.0f / amax;
  for (Index l = 0; l < per_channel; ++l) {
    dst[l] = SaturateRtne(src[l] * inv);
  }
  return amax / 127.0f;
}

obs::Counter* QuantizeNsCounter() {
  static obs::Counter* const c = obs::GetCounter("quant.publish_ns");
  return c;
}

}  // namespace

QuantizedTensor QuantizeLinearWeight(const Tensor& w) {
  CEWS_CHECK(w.defined());
  CEWS_CHECK_EQ(w.ndim(), 2);
  const Index in = w.dim(0);
  const Index out = w.dim(1);
  QuantizedTensor qt;
  qt.shape = w.shape();
  qt.channels = out;
  qt.per_channel = in;
  qt.scales.resize(static_cast<size_t>(out));
  qt.rows = AlignedInt8Buffer(out * in);
  const float* pw = w.data();
  // Gather each output column into a contiguous scratch row, then quantize
  // the run — one strided pass per channel, amortized by the publish cadence.
  ScopedVec column(in);
  for (Index ch = 0; ch < out; ++ch) {
    float* col = column.data();
    for (Index l = 0; l < in; ++l) col[l] = pw[l * out + ch];
    qt.scales[static_cast<size_t>(ch)] =
        QuantizeChannelRun(col, in, qt.rows.data() + ch * in);
  }
  // Pre-pack the B panel: rows is exactly the Y (n=out, k=in) operand
  // PackInt8NT consumes.
  qt.packed = AlignedInt8Buffer(gemm::Int8PanelBytes(in, out));
  gemm::PackInt8NT(in, out, qt.rows.data(), in, qt.packed.data());
  return qt;
}

QuantizedTensor QuantizeConvWeight(const Tensor& w) {
  CEWS_CHECK(w.defined());
  CEWS_CHECK_EQ(w.ndim(), 4);
  const Index oc = w.dim(0);
  const Index per = w.dim(1) * w.dim(2) * w.dim(3);
  QuantizedTensor qt;
  qt.shape = w.shape();
  qt.channels = oc;
  qt.per_channel = per;
  qt.scales.resize(static_cast<size_t>(oc));
  qt.rows = AlignedInt8Buffer(oc * per);
  const float* pw = w.data();
  for (Index ch = 0; ch < oc; ++ch) {
    qt.scales[static_cast<size_t>(ch)] =
        QuantizeChannelRun(pw + ch * per, per, qt.rows.data() + ch * per);
  }
  return qt;
}

void DequantizeChannel(const QuantizedTensor& qt, Index ch, float* out) {
  CEWS_CHECK_GE(ch, 0);
  CEWS_CHECK_LT(ch, qt.channels);
  const int8_t* row = qt.rows.data() + ch * qt.per_channel;
  const float scale = qt.scales[static_cast<size_t>(ch)];
  for (Index l = 0; l < qt.per_channel; ++l) {
    out[l] = static_cast<float>(row[l]) * scale;
  }
}

QuantizedParams QuantizeParams(const std::vector<Tensor>& params,
                               const std::vector<uint8_t>* quantize) {
  const uint64_t t0 = Stopwatch::NowNs();
  if (quantize != nullptr) {
    CEWS_CHECK_EQ(quantize->size(), params.size());
  }
  QuantizedParams qp;
  qp.entries.reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    const Tensor& t = params[i];
    CEWS_CHECK(t.defined());
    const bool wanted = quantize == nullptr || (*quantize)[i] != 0;
    QuantizedParams::Entry entry;
    entry.shape = t.shape();
    if (wanted && t.ndim() == 2) {
      entry.quantized = true;
      entry.q = QuantizeLinearWeight(t);
    } else if (wanted && t.ndim() == 4) {
      entry.quantized = true;
      entry.q = QuantizeConvWeight(t);
    } else {
      entry.dense.assign(t.data(), t.data() + t.numel());
    }
    qp.entries.push_back(std::move(entry));
  }
  QuantizeNsCounter()->Add(Stopwatch::NowNs() - t0);
  return qp;
}

}  // namespace cews::nn::quant
