#include "nn/ops.h"

#include <cmath>

#include "common/check.h"

namespace cews::nn {

namespace {

/// Builds the result node: adopts data, wires tape parents (only those that
/// require grad — requires_grad never propagates through a non-tracking
/// tensor, so others cannot reach a leaf), and marks requires_grad when grad
/// mode is on. The caller installs backward_fn afterwards iff tracking.
Tensor MakeResult(Shape shape, std::vector<float> data,
                  std::initializer_list<Tensor> inputs) {
  auto impl = std::make_shared<TensorImpl>();
  CEWS_CHECK_EQ(static_cast<size_t>(NumElements(shape)), data.size());
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  bool track = false;
  if (GradModeEnabled()) {
    for (const Tensor& t : inputs) {
      if (t.defined() && t.requires_grad()) track = true;
    }
  }
  impl->requires_grad = track;
  if (track) {
    for (const Tensor& t : inputs) {
      if (t.defined() && t.requires_grad()) impl->parents.push_back(t.impl());
    }
  }
  return Tensor(std::move(impl));
}

/// True when the result should record a backward closure.
bool Tracking(const Tensor& out) { return out.requires_grad(); }

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  CEWS_CHECK(a.shape() == b.shape())
      << op << ": shape mismatch " << ShapeToString(a.shape()) << " vs "
      << ShapeToString(b.shape());
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Add");
  std::vector<float> out(a.numel());
  const float* pa = a.data();
  const float* pb = b.data();
  for (Index i = 0; i < a.numel(); ++i) out[i] = pa[i] + pb[i];
  Tensor r = MakeResult(a.shape(), std::move(out), {a, b});
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ia = a.impl();
    auto ib = b.impl();
    r.impl()->backward_fn = [o, ia, ib]() {
      const size_t n = o->data.size();
      if (ia->requires_grad) {
        ia->EnsureGrad();
        for (size_t i = 0; i < n; ++i) ia->grad[i] += o->grad[i];
      }
      if (ib->requires_grad) {
        ib->EnsureGrad();
        for (size_t i = 0; i < n; ++i) ib->grad[i] += o->grad[i];
      }
    };
  }
  return r;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Sub");
  std::vector<float> out(a.numel());
  const float* pa = a.data();
  const float* pb = b.data();
  for (Index i = 0; i < a.numel(); ++i) out[i] = pa[i] - pb[i];
  Tensor r = MakeResult(a.shape(), std::move(out), {a, b});
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ia = a.impl();
    auto ib = b.impl();
    r.impl()->backward_fn = [o, ia, ib]() {
      const size_t n = o->data.size();
      if (ia->requires_grad) {
        ia->EnsureGrad();
        for (size_t i = 0; i < n; ++i) ia->grad[i] += o->grad[i];
      }
      if (ib->requires_grad) {
        ib->EnsureGrad();
        for (size_t i = 0; i < n; ++i) ib->grad[i] -= o->grad[i];
      }
    };
  }
  return r;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Mul");
  std::vector<float> out(a.numel());
  const float* pa = a.data();
  const float* pb = b.data();
  for (Index i = 0; i < a.numel(); ++i) out[i] = pa[i] * pb[i];
  Tensor r = MakeResult(a.shape(), std::move(out), {a, b});
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ia = a.impl();
    auto ib = b.impl();
    r.impl()->backward_fn = [o, ia, ib]() {
      const size_t n = o->data.size();
      if (ia->requires_grad) {
        ia->EnsureGrad();
        for (size_t i = 0; i < n; ++i) ia->grad[i] += o->grad[i] * ib->data[i];
      }
      if (ib->requires_grad) {
        ib->EnsureGrad();
        for (size_t i = 0; i < n; ++i) ib->grad[i] += o->grad[i] * ia->data[i];
      }
    };
  }
  return r;
}

Tensor AddScalar(const Tensor& a, float s) {
  std::vector<float> out(a.numel());
  const float* pa = a.data();
  for (Index i = 0; i < a.numel(); ++i) out[i] = pa[i] + s;
  Tensor r = MakeResult(a.shape(), std::move(out), {a});
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ia = a.impl();
    r.impl()->backward_fn = [o, ia]() {
      ia->EnsureGrad();
      for (size_t i = 0; i < o->data.size(); ++i) ia->grad[i] += o->grad[i];
    };
  }
  return r;
}

Tensor MulScalar(const Tensor& a, float s) {
  std::vector<float> out(a.numel());
  const float* pa = a.data();
  for (Index i = 0; i < a.numel(); ++i) out[i] = pa[i] * s;
  Tensor r = MakeResult(a.shape(), std::move(out), {a});
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ia = a.impl();
    r.impl()->backward_fn = [o, ia, s]() {
      ia->EnsureGrad();
      for (size_t i = 0; i < o->data.size(); ++i)
        ia->grad[i] += o->grad[i] * s;
    };
  }
  return r;
}

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0f); }

Tensor AddBias(const Tensor& x, const Tensor& b) {
  CEWS_CHECK_EQ(x.ndim(), 2);
  CEWS_CHECK_EQ(b.ndim(), 1);
  const Index n = x.dim(0), d = x.dim(1);
  CEWS_CHECK_EQ(b.dim(0), d);
  std::vector<float> out(static_cast<size_t>(n * d));
  const float* px = x.data();
  const float* pb = b.data();
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < d; ++j) out[i * d + j] = px[i * d + j] + pb[j];
  }
  Tensor r = MakeResult(x.shape(), std::move(out), {x, b});
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ix = x.impl();
    auto ib = b.impl();
    r.impl()->backward_fn = [o, ix, ib, n, d]() {
      if (ix->requires_grad) {
        ix->EnsureGrad();
        for (size_t i = 0; i < o->data.size(); ++i)
          ix->grad[i] += o->grad[i];
      }
      if (ib->requires_grad) {
        ib->EnsureGrad();
        for (Index i = 0; i < n; ++i) {
          for (Index j = 0; j < d; ++j) ib->grad[j] += o->grad[i * d + j];
        }
      }
    };
  }
  return r;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  CEWS_CHECK_EQ(a.ndim(), 2);
  CEWS_CHECK_EQ(b.ndim(), 2);
  const Index n = a.dim(0), k = a.dim(1), m = b.dim(1);
  CEWS_CHECK_EQ(b.dim(0), k);
  std::vector<float> out(static_cast<size_t>(n * m), 0.0f);
  const float* pa = a.data();
  const float* pb = b.data();
  for (Index i = 0; i < n; ++i) {
    for (Index l = 0; l < k; ++l) {
      const float av = pa[i * k + l];
      if (av == 0.0f) continue;
      const float* brow = pb + l * m;
      float* orow = out.data() + i * m;
      for (Index j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  }
  Tensor r = MakeResult({n, m}, std::move(out), {a, b});
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ia = a.impl();
    auto ib = b.impl();
    r.impl()->backward_fn = [o, ia, ib, n, k, m]() {
      // dA = dC * B^T ; dB = A^T * dC
      if (ia->requires_grad) {
        ia->EnsureGrad();
        for (Index i = 0; i < n; ++i) {
          for (Index j = 0; j < m; ++j) {
            const float g = o->grad[i * m + j];
            if (g == 0.0f) continue;
            const float* brow = ib->data.data() + 0;  // B[l*m + j]
            for (Index l = 0; l < k; ++l) {
              ia->grad[i * k + l] += g * brow[l * m + j];
            }
          }
        }
      }
      if (ib->requires_grad) {
        ib->EnsureGrad();
        for (Index i = 0; i < n; ++i) {
          for (Index l = 0; l < k; ++l) {
            const float av = ia->data[i * k + l];
            if (av == 0.0f) continue;
            for (Index j = 0; j < m; ++j) {
              ib->grad[l * m + j] += av * o->grad[i * m + j];
            }
          }
        }
      }
    };
  }
  return r;
}

namespace {

/// Shared scaffolding for unary elementwise ops whose backward is
/// dx = dy * dfn(x, y).
template <typename FwdFn, typename BwdFn>
Tensor UnaryElementwise(const Tensor& x, FwdFn fwd, BwdFn dfn) {
  std::vector<float> out(x.numel());
  const float* px = x.data();
  for (Index i = 0; i < x.numel(); ++i) out[i] = fwd(px[i]);
  Tensor r = MakeResult(x.shape(), std::move(out), {x});
  if (r.requires_grad()) {
    auto o = r.impl().get();
    auto ix = x.impl();
    r.impl()->backward_fn = [o, ix, dfn]() {
      ix->EnsureGrad();
      for (size_t i = 0; i < o->data.size(); ++i) {
        ix->grad[i] += o->grad[i] * dfn(ix->data[i], o->data[i]);
      }
    };
  }
  return r;
}

}  // namespace

Tensor Relu(const Tensor& x) {
  return UnaryElementwise(
      x, [](float v) { return v > 0.0f ? v : 0.0f; },
      [](float v, float) { return v > 0.0f ? 1.0f : 0.0f; });
}

Tensor Tanh(const Tensor& x) {
  return UnaryElementwise(
      x, [](float v) { return std::tanh(v); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Sigmoid(const Tensor& x) {
  return UnaryElementwise(
      x, [](float v) { return 1.0f / (1.0f + std::exp(-v)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Exp(const Tensor& x) {
  return UnaryElementwise(
      x, [](float v) { return std::exp(v); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& x) {
  const float* px = x.data();
  for (Index i = 0; i < x.numel(); ++i) {
    CEWS_CHECK(px[i] > 0.0f) << "Log: non-positive input " << px[i];
  }
  return UnaryElementwise(
      x, [](float v) { return std::log(v); },
      [](float v, float) { return 1.0f / v; });
}

Tensor Square(const Tensor& x) {
  return UnaryElementwise(
      x, [](float v) { return v * v; },
      [](float v, float) { return 2.0f * v; });
}

Tensor Clip(const Tensor& x, float lo, float hi) {
  CEWS_CHECK(lo <= hi);
  return UnaryElementwise(
      x,
      [lo, hi](float v) { return v < lo ? lo : (v > hi ? hi : v); },
      [lo, hi](float v, float) { return (v > lo && v < hi) ? 1.0f : 0.0f; });
}

namespace {

/// Shared scaffolding for binary select ops (Min/Max): the gradient flows
/// entirely to the selected input.
template <typename PickA>
Tensor BinarySelect(const Tensor& a, const Tensor& b, PickA pick_a,
                    const char* name) {
  CheckSameShape(a, b, name);
  const Index n = a.numel();
  std::vector<float> out(static_cast<size_t>(n));
  const float* pa = a.data();
  const float* pb = b.data();
  for (Index i = 0; i < n; ++i) {
    out[i] = pick_a(pa[i], pb[i]) ? pa[i] : pb[i];
  }
  Tensor r = MakeResult(a.shape(), std::move(out), {a, b});
  if (r.requires_grad()) {
    auto o = r.impl().get();
    auto ia = a.impl();
    auto ib = b.impl();
    r.impl()->backward_fn = [o, ia, ib, pick_a]() {
      if (ia->requires_grad) ia->EnsureGrad();
      if (ib->requires_grad) ib->EnsureGrad();
      for (size_t i = 0; i < o->data.size(); ++i) {
        const bool to_a = pick_a(ia->data[i], ib->data[i]);
        if (to_a && ia->requires_grad) ia->grad[i] += o->grad[i];
        if (!to_a && ib->requires_grad) ib->grad[i] += o->grad[i];
      }
    };
  }
  return r;
}

}  // namespace

Tensor Min(const Tensor& a, const Tensor& b) {
  return BinarySelect(
      a, b, [](float x, float y) { return x <= y; }, "Min");
}

Tensor Max(const Tensor& a, const Tensor& b) {
  return BinarySelect(
      a, b, [](float x, float y) { return x >= y; }, "Max");
}

Tensor Softmax(const Tensor& x) {
  CEWS_CHECK_GE(x.ndim(), 1);
  const Index d = x.dim(-1);
  const Index rows = x.numel() / d;
  std::vector<float> out(x.numel());
  const float* px = x.data();
  for (Index r = 0; r < rows; ++r) {
    const float* row = px + r * d;
    float mx = row[0];
    for (Index j = 1; j < d; ++j) mx = std::max(mx, row[j]);
    float sum = 0.0f;
    for (Index j = 0; j < d; ++j) {
      const float e = std::exp(row[j] - mx);
      out[r * d + j] = e;
      sum += e;
    }
    for (Index j = 0; j < d; ++j) out[r * d + j] /= sum;
  }
  Tensor r = MakeResult(x.shape(), std::move(out), {x});
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ix = x.impl();
    r.impl()->backward_fn = [o, ix, rows, d]() {
      // dx = p * (dy - sum(dy * p)) per row.
      ix->EnsureGrad();
      for (Index row = 0; row < rows; ++row) {
        const float* p = o->data.data() + row * d;
        const float* dy = o->grad.data() + row * d;
        float dot = 0.0f;
        for (Index j = 0; j < d; ++j) dot += dy[j] * p[j];
        float* dx = ix->grad.data() + row * d;
        for (Index j = 0; j < d; ++j) dx[j] += p[j] * (dy[j] - dot);
      }
    };
  }
  return r;
}

Tensor LogSoftmax(const Tensor& x) {
  CEWS_CHECK_GE(x.ndim(), 1);
  const Index d = x.dim(-1);
  const Index rows = x.numel() / d;
  std::vector<float> out(x.numel());
  const float* px = x.data();
  for (Index r = 0; r < rows; ++r) {
    const float* row = px + r * d;
    float mx = row[0];
    for (Index j = 1; j < d; ++j) mx = std::max(mx, row[j]);
    float sum = 0.0f;
    for (Index j = 0; j < d; ++j) sum += std::exp(row[j] - mx);
    const float lse = mx + std::log(sum);
    for (Index j = 0; j < d; ++j) out[r * d + j] = row[j] - lse;
  }
  Tensor r = MakeResult(x.shape(), std::move(out), {x});
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ix = x.impl();
    r.impl()->backward_fn = [o, ix, rows, d]() {
      // dx = dy - softmax(x) * sum(dy) per row.
      ix->EnsureGrad();
      for (Index row = 0; row < rows; ++row) {
        const float* lp = o->data.data() + row * d;
        const float* dy = o->grad.data() + row * d;
        float sum_dy = 0.0f;
        for (Index j = 0; j < d; ++j) sum_dy += dy[j];
        float* dx = ix->grad.data() + row * d;
        for (Index j = 0; j < d; ++j) {
          dx[j] += dy[j] - std::exp(lp[j]) * sum_dy;
        }
      }
    };
  }
  return r;
}

Tensor Sum(const Tensor& x) {
  double acc = 0.0;
  const float* px = x.data();
  for (Index i = 0; i < x.numel(); ++i) acc += px[i];
  Tensor r = MakeResult({}, {static_cast<float>(acc)}, {x});
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ix = x.impl();
    r.impl()->backward_fn = [o, ix]() {
      ix->EnsureGrad();
      const float g = o->grad[0];
      for (size_t i = 0; i < ix->data.size(); ++i) ix->grad[i] += g;
    };
  }
  return r;
}

Tensor Mean(const Tensor& x) {
  CEWS_CHECK_GT(x.numel(), 0);
  double acc = 0.0;
  const float* px = x.data();
  for (Index i = 0; i < x.numel(); ++i) acc += px[i];
  const float inv_n = 1.0f / static_cast<float>(x.numel());
  Tensor r = MakeResult({}, {static_cast<float>(acc) * inv_n}, {x});
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ix = x.impl();
    r.impl()->backward_fn = [o, ix, inv_n]() {
      ix->EnsureGrad();
      const float g = o->grad[0] * inv_n;
      for (size_t i = 0; i < ix->data.size(); ++i) ix->grad[i] += g;
    };
  }
  return r;
}

Tensor SumLastDim(const Tensor& x) {
  CEWS_CHECK_GE(x.ndim(), 1);
  const Index d = x.dim(-1);
  const Index rows = x.numel() / d;
  Shape out_shape(x.shape().begin(), x.shape().end() - 1);
  std::vector<float> out(static_cast<size_t>(rows), 0.0f);
  const float* px = x.data();
  for (Index r = 0; r < rows; ++r) {
    double acc = 0.0;
    for (Index j = 0; j < d; ++j) acc += px[r * d + j];
    out[r] = static_cast<float>(acc);
  }
  Tensor r = MakeResult(std::move(out_shape), std::move(out), {x});
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ix = x.impl();
    r.impl()->backward_fn = [o, ix, rows, d]() {
      ix->EnsureGrad();
      for (Index row = 0; row < rows; ++row) {
        const float g = o->grad[row];
        for (Index j = 0; j < d; ++j) ix->grad[row * d + j] += g;
      }
    };
  }
  return r;
}

Tensor Reshape(const Tensor& x, const Shape& shape) {
  CEWS_CHECK_EQ(NumElements(shape), x.numel());
  Tensor r = MakeResult(shape, x.ToVector(), {x});
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ix = x.impl();
    r.impl()->backward_fn = [o, ix]() {
      ix->EnsureGrad();
      for (size_t i = 0; i < o->data.size(); ++i) ix->grad[i] += o->grad[i];
    };
  }
  return r;
}

Tensor Concat(const Tensor& a, const Tensor& b) {
  CEWS_CHECK_EQ(a.ndim(), b.ndim());
  CEWS_CHECK_GE(a.ndim(), 1);
  for (int i = 0; i + 1 < a.ndim(); ++i) CEWS_CHECK_EQ(a.dim(i), b.dim(i));
  const Index da = a.dim(-1), db = b.dim(-1);
  const Index rows = a.numel() / da;
  Shape out_shape = a.shape();
  out_shape.back() = da + db;
  std::vector<float> out(static_cast<size_t>(rows * (da + db)));
  const float* pa = a.data();
  const float* pb = b.data();
  for (Index r = 0; r < rows; ++r) {
    float* orow = out.data() + r * (da + db);
    for (Index j = 0; j < da; ++j) orow[j] = pa[r * da + j];
    for (Index j = 0; j < db; ++j) orow[da + j] = pb[r * db + j];
  }
  Tensor r = MakeResult(std::move(out_shape), std::move(out), {a, b});
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ia = a.impl();
    auto ib = b.impl();
    r.impl()->backward_fn = [o, ia, ib, rows, da, db]() {
      if (ia->requires_grad) ia->EnsureGrad();
      if (ib->requires_grad) ib->EnsureGrad();
      for (Index row = 0; row < rows; ++row) {
        const float* g = o->grad.data() + row * (da + db);
        if (ia->requires_grad) {
          for (Index j = 0; j < da; ++j) ia->grad[row * da + j] += g[j];
        }
        if (ib->requires_grad) {
          for (Index j = 0; j < db; ++j) ib->grad[row * db + j] += g[da + j];
        }
      }
    };
  }
  return r;
}

Tensor GatherLastDim(const Tensor& x, const std::vector<Index>& idx) {
  CEWS_CHECK_GE(x.ndim(), 1);
  const Index d = x.dim(-1);
  const Index rows = x.numel() / d;
  CEWS_CHECK_EQ(static_cast<Index>(idx.size()), rows);
  Shape out_shape(x.shape().begin(), x.shape().end() - 1);
  std::vector<float> out(static_cast<size_t>(rows));
  const float* px = x.data();
  for (Index r = 0; r < rows; ++r) {
    CEWS_CHECK_GE(idx[r], 0);
    CEWS_CHECK_LT(idx[r], d);
    out[r] = px[r * d + idx[r]];
  }
  Tensor r = MakeResult(std::move(out_shape), std::move(out), {x});
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ix = x.impl();
    auto indices = idx;  // copy for closure lifetime
    r.impl()->backward_fn = [o, ix, indices, d]() {
      ix->EnsureGrad();
      for (size_t row = 0; row < indices.size(); ++row) {
        ix->grad[static_cast<Index>(row) * d + indices[row]] += o->grad[row];
      }
    };
  }
  return r;
}

Tensor Conv2d(const Tensor& x, const Tensor& w, const Tensor& bias,
              int stride, int padding) {
  CEWS_CHECK_EQ(x.ndim(), 4);
  CEWS_CHECK_EQ(w.ndim(), 4);
  CEWS_CHECK_GE(stride, 1);
  CEWS_CHECK_GE(padding, 0);
  const Index n = x.dim(0), c = x.dim(1), h = x.dim(2), width = x.dim(3);
  const Index oc = w.dim(0), kh = w.dim(2), kw = w.dim(3);
  CEWS_CHECK_EQ(w.dim(1), c);
  if (bias.defined()) {
    CEWS_CHECK_EQ(bias.ndim(), 1);
    CEWS_CHECK_EQ(bias.dim(0), oc);
  }
  const Index oh = (h + 2 * padding - kh) / stride + 1;
  const Index ow = (width + 2 * padding - kw) / stride + 1;
  CEWS_CHECK_GE(oh, 1);
  CEWS_CHECK_GE(ow, 1);
  std::vector<float> out(static_cast<size_t>(n * oc * oh * ow), 0.0f);
  const float* px = x.data();
  const float* pw = w.data();
  for (Index in = 0; in < n; ++in) {
    for (Index io = 0; io < oc; ++io) {
      const float b0 = bias.defined() ? bias.data()[io] : 0.0f;
      for (Index y = 0; y < oh; ++y) {
        for (Index xx = 0; xx < ow; ++xx) {
          float acc = b0;
          for (Index ic = 0; ic < c; ++ic) {
            for (Index ky = 0; ky < kh; ++ky) {
              const Index iy = y * stride - padding + ky;
              if (iy < 0 || iy >= h) continue;
              for (Index kx = 0; kx < kw; ++kx) {
                const Index ix = xx * stride - padding + kx;
                if (ix < 0 || ix >= width) continue;
                acc += px[((in * c + ic) * h + iy) * width + ix] *
                       pw[((io * c + ic) * kh + ky) * kw + kx];
              }
            }
          }
          out[((in * oc + io) * oh + y) * ow + xx] = acc;
        }
      }
    }
  }
  Tensor r = MakeResult({n, oc, oh, ow}, std::move(out), {x, w, bias});
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ix = x.impl();
    auto iw = w.impl();
    auto ib = bias.defined() ? bias.impl() : nullptr;
    r.impl()->backward_fn = [o, ix, iw, ib, n, c, h, width, oc, kh, kw, oh,
                             ow, stride, padding]() {
      const bool dx = ix->requires_grad;
      const bool dw = iw->requires_grad;
      const bool db = ib != nullptr && ib->requires_grad;
      if (dx) ix->EnsureGrad();
      if (dw) iw->EnsureGrad();
      if (db) ib->EnsureGrad();
      for (Index in = 0; in < n; ++in) {
        for (Index io = 0; io < oc; ++io) {
          for (Index y = 0; y < oh; ++y) {
            for (Index xx = 0; xx < ow; ++xx) {
              const float g = o->grad[((in * oc + io) * oh + y) * ow + xx];
              if (g == 0.0f) continue;
              if (db) ib->grad[io] += g;
              for (Index ic = 0; ic < c; ++ic) {
                for (Index ky = 0; ky < kh; ++ky) {
                  const Index iy = y * stride - padding + ky;
                  if (iy < 0 || iy >= h) continue;
                  for (Index kx = 0; kx < kw; ++kx) {
                    const Index ixp = xx * stride - padding + kx;
                    if (ixp < 0 || ixp >= width) continue;
                    const Index xi = ((in * c + ic) * h + iy) * width + ixp;
                    const Index wi = ((io * c + ic) * kh + ky) * kw + kx;
                    if (dx) ix->grad[xi] += g * iw->data[wi];
                    if (dw) iw->grad[wi] += g * ix->data[xi];
                  }
                }
              }
            }
          }
        }
      }
    };
  }
  return r;
}

Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps) {
  CEWS_CHECK_GE(x.ndim(), 2);
  const Index n = x.dim(0);
  const Index f = x.numel() / n;
  CEWS_CHECK_EQ(gamma.numel(), f);
  CEWS_CHECK_EQ(beta.numel(), f);
  std::vector<float> out(x.numel());
  std::vector<float> xhat(x.numel());
  std::vector<float> inv_sigma(static_cast<size_t>(n));
  const float* px = x.data();
  const float* pg = gamma.data();
  const float* pb = beta.data();
  for (Index i = 0; i < n; ++i) {
    const float* row = px + i * f;
    double mu = 0.0;
    for (Index j = 0; j < f; ++j) mu += row[j];
    mu /= static_cast<double>(f);
    double var = 0.0;
    for (Index j = 0; j < f; ++j) {
      const double d = row[j] - mu;
      var += d * d;
    }
    var /= static_cast<double>(f);
    const float is = 1.0f / std::sqrt(static_cast<float>(var) + eps);
    inv_sigma[i] = is;
    for (Index j = 0; j < f; ++j) {
      const float xh = (row[j] - static_cast<float>(mu)) * is;
      xhat[i * f + j] = xh;
      out[i * f + j] = xh * pg[j] + pb[j];
    }
  }
  Tensor r = MakeResult(x.shape(), std::move(out), {x, gamma, beta});
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ix = x.impl();
    auto ig = gamma.impl();
    auto ibt = beta.impl();
    auto xh = std::move(xhat);
    auto is = std::move(inv_sigma);
    r.impl()->backward_fn = [o, ix, ig, ibt, xh, is, n, f]() {
      if (ix->requires_grad) ix->EnsureGrad();
      if (ig->requires_grad) ig->EnsureGrad();
      if (ibt->requires_grad) ibt->EnsureGrad();
      for (Index i = 0; i < n; ++i) {
        const float* dy = o->grad.data() + i * f;
        const float* xr = xh.data() + i * f;
        if (ig->requires_grad || ibt->requires_grad) {
          for (Index j = 0; j < f; ++j) {
            if (ig->requires_grad) ig->grad[j] += dy[j] * xr[j];
            if (ibt->requires_grad) ibt->grad[j] += dy[j];
          }
        }
        if (ix->requires_grad) {
          // dx = (g - mean(g) - xhat * mean(g * xhat)) * inv_sigma,
          // where g = dy * gamma.
          double mean_g = 0.0, mean_gx = 0.0;
          for (Index j = 0; j < f; ++j) {
            const double gj = static_cast<double>(dy[j]) * ig->data[j];
            mean_g += gj;
            mean_gx += gj * xr[j];
          }
          mean_g /= static_cast<double>(f);
          mean_gx /= static_cast<double>(f);
          float* dx = ix->grad.data() + i * f;
          for (Index j = 0; j < f; ++j) {
            const double gj = static_cast<double>(dy[j]) * ig->data[j];
            dx[j] += static_cast<float>((gj - mean_g - xr[j] * mean_gx) *
                                        is[i]);
          }
        }
      }
    };
  }
  return r;
}

Tensor EmbeddingLookup(const Tensor& table, const std::vector<Index>& ids) {
  CEWS_CHECK_EQ(table.ndim(), 2);
  const Index v = table.dim(0), d = table.dim(1);
  const Index n = static_cast<Index>(ids.size());
  std::vector<float> out(static_cast<size_t>(n * d));
  const float* pt = table.data();
  for (Index i = 0; i < n; ++i) {
    CEWS_CHECK_GE(ids[i], 0);
    CEWS_CHECK_LT(ids[i], v);
    const float* row = pt + ids[i] * d;
    for (Index j = 0; j < d; ++j) out[i * d + j] = row[j];
  }
  Tensor r = MakeResult({n, d}, std::move(out), {table});
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto it = table.impl();
    auto indices = ids;
    r.impl()->backward_fn = [o, it, indices, d]() {
      it->EnsureGrad();
      for (size_t i = 0; i < indices.size(); ++i) {
        for (Index j = 0; j < d; ++j) {
          it->grad[indices[i] * d + j] +=
              o->grad[static_cast<Index>(i) * d + j];
        }
      }
    };
  }
  return r;
}

Tensor MseLoss(const Tensor& pred, const Tensor& target) {
  return Mean(Square(Sub(pred, target)));
}

Tensor Huber(const Tensor& x, float delta) {
  CEWS_CHECK(delta > 0.0f);
  return UnaryElementwise(
      x,
      [delta](float v) {
        const float a = std::abs(v);
        return a <= delta ? 0.5f * v * v : delta * (a - 0.5f * delta);
      },
      [delta](float v, float) {
        if (v > delta) return delta;
        if (v < -delta) return -delta;
        return v;
      });
}

Tensor HuberLoss(const Tensor& pred, const Tensor& target, float delta) {
  return Mean(Huber(Sub(pred, target), delta));
}

}  // namespace cews::nn
