#include "nn/ops.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/env_flags.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "nn/gemm.h"
#include "nn/graph.h"
#include "nn/workspace.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cews::nn {

namespace {

// ---------------------------------------------------------------------------
// Intra-op parallelism.
//
// The hot kernels (MatMul, Conv2d) run on the cews::runtime global pool via
// the packed GEMM layer (nn/gemm.h). Every kernel is written so that each
// parallel index owns its accumulators outright (a row of the output, an
// image of the batch, an output channel of the weight gradient) and
// accumulates them in a fixed serial order. Chunk boundaries therefore never
// change any floating-point result: outputs are bitwise-identical at any
// thread count.
//
// Execution modes (nn/tensor.h): each op computes its forward through a
// thunk that reads its inputs' *current* data pointers. Eagerly the thunk
// runs once and is discarded; under a graph recording (nn/graph.h) it is
// additionally registered so the compiled graph can replay it against new
// placeholder data — with outputs and kernel scratch living at
// planner-assigned arena offsets instead of workspace buckets. Backward
// closures are identical in both modes, which is the heart of the
// tape/graph bitwise-equivalence contract.
//
// Transient buffers (im2col columns, packed panels, per-image gradient
// scratch) and op outputs come from the per-thread workspace arena
// (nn/workspace.h) in eager mode, so a steady-state training step recycles
// every one of them instead of hitting the allocator; in graph mode they are
// graph::OpBufs the planner folds into the arena.
// ---------------------------------------------------------------------------

using gemm::ParallelKernel;
using graph::BufLife;
using graph::OpBuf;

/// Telemetry for one hot kernel (obs/metrics.h): call count plus FLOP- and
/// time-weighted forward/backward totals, so a scrape can report effective
/// FLOP/s per kernel.
struct KernelMetrics {
  explicit KernelMetrics(const std::string& prefix)
      : calls(obs::GetCounter(prefix + ".calls")),
        fwd_flops(obs::GetCounter(prefix + ".fwd_flops")),
        fwd_ns(obs::GetCounter(prefix + ".fwd_ns")),
        bwd_flops(obs::GetCounter(prefix + ".bwd_flops")),
        bwd_ns(obs::GetCounter(prefix + ".bwd_ns")) {}
  obs::Counter* const calls;
  obs::Counter* const fwd_flops;
  obs::Counter* const fwd_ns;
  obs::Counter* const bwd_flops;
  obs::Counter* const bwd_ns;
};

KernelMetrics& MatMulMetrics() {
  static KernelMetrics* m = new KernelMetrics("nn.matmul");
  return *m;
}

KernelMetrics& Conv2dMetrics() {
  static KernelMetrics* m = new KernelMetrics("nn.conv2d");
  return *m;
}

/// Builds the result node: adopts data, wires tape parents (only those that
/// require grad — requires_grad never propagates through a non-tracking
/// tensor, so others cannot reach a leaf), and marks requires_grad when grad
/// mode is on. The caller installs backward_fn afterwards iff tracking.
Tensor MakeResult(Shape shape, std::vector<float> data,
                  std::initializer_list<Tensor> inputs) {
  auto impl = std::make_shared<TensorImpl>();
  CEWS_CHECK_EQ(static_cast<size_t>(NumElements(shape)), data.size());
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  bool track = false;
  if (GradModeEnabled()) {
    for (const Tensor& t : inputs) {
      if (t.defined() && t.requires_grad()) track = true;
    }
  }
  impl->requires_grad = track;
  if (track) {
    for (const Tensor& t : inputs) {
      if (t.defined() && t.requires_grad()) impl->parents.push_back(t.impl());
    }
  }
  return Tensor(std::move(impl));
}

/// MakeResult over fresh (zero-filled, workspace-recycled) storage: the
/// thunk-style ops allocate the output first and let the forward thunk fill
/// it, so the very same thunk can refill it on graph replay.
Tensor NewResult(Shape shape, std::initializer_list<Tensor> inputs) {
  const Index n = NumElements(shape);
  return MakeResult(std::move(shape), Workspace::AcquireVec(n), inputs);
}

/// True when the result should record a backward closure.
bool Tracking(const Tensor& out) { return out.requires_grad(); }

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  CEWS_CHECK(a.shape() == b.shape())
      << op << ": shape mismatch " << ShapeToString(a.shape()) << " vs "
      << ShapeToString(b.shape());
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Add");
  Tensor r = NewResult(a.shape(), {a, b});
  const Index n = a.numel();
  auto fwd = [o = r.impl().get(), xa = a.impl().get(), xb = b.impl().get(),
              n]() {
    const float* pa = xa->data.data();
    const float* pb = xb->data.data();
    float* po = o->data.data();
    for (Index i = 0; i < n; ++i) po[i] = pa[i] + pb[i];
  };
  fwd();
  graph::Record(r, {a, b}, fwd);
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ia = a.impl();
    auto ib = b.impl();
    r.impl()->backward_fn = [o, ia, ib]() {
      const size_t n = o->data.size();
      if (ia->requires_grad) {
        ia->EnsureGrad();
        for (size_t i = 0; i < n; ++i) ia->grad[i] += o->grad[i];
      }
      if (ib->requires_grad) {
        ib->EnsureGrad();
        for (size_t i = 0; i < n; ++i) ib->grad[i] += o->grad[i];
      }
    };
  }
  return r;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Sub");
  Tensor r = NewResult(a.shape(), {a, b});
  const Index n = a.numel();
  auto fwd = [o = r.impl().get(), xa = a.impl().get(), xb = b.impl().get(),
              n]() {
    const float* pa = xa->data.data();
    const float* pb = xb->data.data();
    float* po = o->data.data();
    for (Index i = 0; i < n; ++i) po[i] = pa[i] - pb[i];
  };
  fwd();
  graph::Record(r, {a, b}, fwd);
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ia = a.impl();
    auto ib = b.impl();
    r.impl()->backward_fn = [o, ia, ib]() {
      const size_t n = o->data.size();
      if (ia->requires_grad) {
        ia->EnsureGrad();
        for (size_t i = 0; i < n; ++i) ia->grad[i] += o->grad[i];
      }
      if (ib->requires_grad) {
        ib->EnsureGrad();
        for (size_t i = 0; i < n; ++i) ib->grad[i] -= o->grad[i];
      }
    };
  }
  return r;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Mul");
  Tensor r = NewResult(a.shape(), {a, b});
  const Index n = a.numel();
  auto fwd = [o = r.impl().get(), xa = a.impl().get(), xb = b.impl().get(),
              n]() {
    const float* pa = xa->data.data();
    const float* pb = xb->data.data();
    float* po = o->data.data();
    for (Index i = 0; i < n; ++i) po[i] = pa[i] * pb[i];
  };
  fwd();
  graph::Record(r, {a, b}, fwd);
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ia = a.impl();
    auto ib = b.impl();
    r.impl()->backward_fn = [o, ia, ib]() {
      const size_t n = o->data.size();
      if (ia->requires_grad) {
        ia->EnsureGrad();
        for (size_t i = 0; i < n; ++i) ia->grad[i] += o->grad[i] * ib->data[i];
      }
      if (ib->requires_grad) {
        ib->EnsureGrad();
        for (size_t i = 0; i < n; ++i) ib->grad[i] += o->grad[i] * ia->data[i];
      }
    };
  }
  return r;
}

Tensor AddScalar(const Tensor& a, float s) {
  Tensor r = NewResult(a.shape(), {a});
  const Index n = a.numel();
  auto fwd = [o = r.impl().get(), xa = a.impl().get(), n, s]() {
    const float* pa = xa->data.data();
    float* po = o->data.data();
    for (Index i = 0; i < n; ++i) po[i] = pa[i] + s;
  };
  fwd();
  graph::Record(r, {a}, fwd);
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ia = a.impl();
    r.impl()->backward_fn = [o, ia]() {
      ia->EnsureGrad();
      for (size_t i = 0; i < o->data.size(); ++i) ia->grad[i] += o->grad[i];
    };
  }
  return r;
}

Tensor MulScalar(const Tensor& a, float s) {
  Tensor r = NewResult(a.shape(), {a});
  const Index n = a.numel();
  auto fwd = [o = r.impl().get(), xa = a.impl().get(), n, s]() {
    const float* pa = xa->data.data();
    float* po = o->data.data();
    for (Index i = 0; i < n; ++i) po[i] = pa[i] * s;
  };
  fwd();
  graph::Record(r, {a}, fwd);
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ia = a.impl();
    r.impl()->backward_fn = [o, ia, s]() {
      ia->EnsureGrad();
      for (size_t i = 0; i < o->data.size(); ++i)
        ia->grad[i] += o->grad[i] * s;
    };
  }
  return r;
}

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0f); }

Tensor AddBias(const Tensor& x, const Tensor& b) {
  CEWS_CHECK_EQ(x.ndim(), 2);
  CEWS_CHECK_EQ(b.ndim(), 1);
  const Index n = x.dim(0), d = x.dim(1);
  CEWS_CHECK_EQ(b.dim(0), d);
  Tensor r = NewResult(x.shape(), {x, b});
  auto fwd = [o = r.impl().get(), xi = x.impl().get(), bi = b.impl().get(), n,
              d]() {
    const float* px = xi->data.data();
    const float* pb = bi->data.data();
    float* po = o->data.data();
    for (Index i = 0; i < n; ++i) {
      for (Index j = 0; j < d; ++j) po[i * d + j] = px[i * d + j] + pb[j];
    }
  };
  fwd();
  graph::Record(r, {x, b}, fwd);
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ix = x.impl();
    auto ib = b.impl();
    r.impl()->backward_fn = [o, ix, ib, n, d]() {
      if (ix->requires_grad) {
        ix->EnsureGrad();
        for (size_t i = 0; i < o->data.size(); ++i)
          ix->grad[i] += o->grad[i];
      }
      if (ib->requires_grad) {
        ib->EnsureGrad();
        for (Index i = 0; i < n; ++i) {
          for (Index j = 0; j < d; ++j) ib->grad[j] += o->grad[i * d + j];
        }
      }
    };
  }
  return r;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  CEWS_CHECK_EQ(a.ndim(), 2);
  CEWS_CHECK_EQ(b.ndim(), 2);
  const Index n = a.dim(0), k = a.dim(1), m = b.dim(1);
  CEWS_CHECK_EQ(b.dim(0), k);
  const bool rec = graph::Recording();
  Tensor r = NewResult({n, m}, {a, b});
  const bool track = Tracking(r);
  const uint64_t flops = 2ull * static_cast<uint64_t>(n * k * m);
  // Graph mode plans the GEMM pack panels into the arena (a pack writes all
  // of its k*n floats, so reused slots need no zeroing); eager mode keeps
  // the per-thread workspace inside the wrappers.
  std::shared_ptr<OpBuf> pack_fwd =
      rec ? graph::AllocBuf(k * m, BufLife::kFwd) : nullptr;
  std::shared_ptr<OpBuf> pack_da =
      rec && track && a.requires_grad()
          ? graph::AllocBuf(m * k, BufLife::kBwd)
          : nullptr;
  std::shared_ptr<OpBuf> pack_db =
      rec && track && b.requires_grad()
          ? graph::AllocBuf(n * m, BufLife::kBwd)
          : nullptr;
  auto fwd = [o = r.impl().get(), xa = a.impl().get(), xb = b.impl().get(), n,
              k, m, flops, pack_fwd]() {
    CEWS_TRACE_SCOPE("nn.MatMul");
    const uint64_t t0 = Stopwatch::NowNs();
    float* po = o->data.data();
    // GemmNN accumulates; the tape allocated a zeroed output per call, so
    // the replayed thunk re-zeroes its (possibly slot-shared) output.
    std::fill(po, po + n * m, 0.0f);
    gemm::GemmNN(n, m, k, xa->data.data(), k, 1, xb->data.data(), m, po, m,
                 pack_fwd ? pack_fwd->data() : nullptr);
    KernelMetrics& metrics = MatMulMetrics();
    metrics.calls->Increment();
    metrics.fwd_flops->Add(flops);
    metrics.fwd_ns->Add(Stopwatch::NowNs() - t0);
  };
  fwd();
  graph::Record(r, {a, b}, fwd);
  if (track) {
    auto o = r.impl().get();
    auto ia = a.impl();
    auto ib = b.impl();
    r.impl()->backward_fn = [o, ia, ib, n, k, m, pack_da, pack_db]() {
      CEWS_TRACE_SCOPE("nn.MatMul.bwd");
      const uint64_t t0 = Stopwatch::NowNs();
      uint64_t bwd_flops = 0;
      // dA = dC * B^T (NT shape: one fresh dot per element) and
      // dB = A^T * dC (NN shape: rows of dB accumulate n-ascending, matching
      // the transposed read of A). Both partitioned over output rows.
      if (ia->requires_grad) {
        bwd_flops += 2ull * static_cast<uint64_t>(n * k * m);
        ia->EnsureGrad();
        const float* og = o->grad.data();
        const float* pb = ib->data.data();
        float* ga = ia->grad.data();
        gemm::GemmNT(n, k, m, og, m, pb, m, ga, k,
                     pack_da ? pack_da->data() : nullptr);
      }
      if (ib->requires_grad) {
        bwd_flops += 2ull * static_cast<uint64_t>(n * k * m);
        ib->EnsureGrad();
        const float* og = o->grad.data();
        const float* pa = ia->data.data();
        float* gb = ib->grad.data();
        gemm::GemmNN(k, m, n, pa, 1, k, og, m, gb, m,
                     pack_db ? pack_db->data() : nullptr);
      }
      KernelMetrics& metrics = MatMulMetrics();
      metrics.bwd_flops->Add(bwd_flops);
      metrics.bwd_ns->Add(Stopwatch::NowNs() - t0);
    };
  }
  return r;
}

namespace {

/// Shared scaffolding for unary elementwise ops whose backward is
/// dx = dy * dfn(x, y).
template <typename FwdFn, typename BwdFn>
Tensor UnaryElementwise(const Tensor& x, FwdFn fwd_fn, BwdFn dfn) {
  Tensor r = NewResult(x.shape(), {x});
  const Index n = x.numel();
  auto fwd = [o = r.impl().get(), xi = x.impl().get(), n, fwd_fn]() {
    const float* px = xi->data.data();
    float* po = o->data.data();
    for (Index i = 0; i < n; ++i) po[i] = fwd_fn(px[i]);
  };
  fwd();
  graph::Record(r, {x}, fwd);
  if (r.requires_grad()) {
    auto o = r.impl().get();
    auto ix = x.impl();
    r.impl()->backward_fn = [o, ix, dfn]() {
      ix->EnsureGrad();
      for (size_t i = 0; i < o->data.size(); ++i) {
        ix->grad[i] += o->grad[i] * dfn(ix->data[i], o->data[i]);
      }
    };
  }
  return r;
}

}  // namespace

Tensor Relu(const Tensor& x) {
  return UnaryElementwise(
      x, [](float v) { return v > 0.0f ? v : 0.0f; },
      [](float v, float) { return v > 0.0f ? 1.0f : 0.0f; });
}

Tensor Tanh(const Tensor& x) {
  return UnaryElementwise(
      x, [](float v) { return std::tanh(v); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Sigmoid(const Tensor& x) {
  return UnaryElementwise(
      x, [](float v) { return 1.0f / (1.0f + std::exp(-v)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Exp(const Tensor& x) {
  return UnaryElementwise(
      x, [](float v) { return std::exp(v); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& x) {
  // The positivity check lives inside the forward body so graph replays
  // re-validate fresh placeholder data, not just the recording batch.
  return UnaryElementwise(
      x,
      [](float v) {
        CEWS_CHECK(v > 0.0f) << "Log: non-positive input " << v;
        return std::log(v);
      },
      [](float v, float) { return 1.0f / v; });
}

Tensor Square(const Tensor& x) {
  return UnaryElementwise(
      x, [](float v) { return v * v; },
      [](float v, float) { return 2.0f * v; });
}

Tensor Clip(const Tensor& x, float lo, float hi) {
  CEWS_CHECK(lo <= hi);
  return UnaryElementwise(
      x,
      [lo, hi](float v) { return v < lo ? lo : (v > hi ? hi : v); },
      [lo, hi](float v, float) { return (v > lo && v < hi) ? 1.0f : 0.0f; });
}

namespace {

/// Shared scaffolding for binary select ops (Min/Max): the gradient flows
/// entirely to the selected input.
template <typename PickA>
Tensor BinarySelect(const Tensor& a, const Tensor& b, PickA pick_a,
                    const char* name) {
  CheckSameShape(a, b, name);
  const Index n = a.numel();
  Tensor r = NewResult(a.shape(), {a, b});
  auto fwd = [o = r.impl().get(), xa = a.impl().get(), xb = b.impl().get(), n,
              pick_a]() {
    const float* pa = xa->data.data();
    const float* pb = xb->data.data();
    float* po = o->data.data();
    for (Index i = 0; i < n; ++i) {
      po[i] = pick_a(pa[i], pb[i]) ? pa[i] : pb[i];
    }
  };
  fwd();
  graph::Record(r, {a, b}, fwd);
  if (r.requires_grad()) {
    auto o = r.impl().get();
    auto ia = a.impl();
    auto ib = b.impl();
    r.impl()->backward_fn = [o, ia, ib, pick_a]() {
      if (ia->requires_grad) ia->EnsureGrad();
      if (ib->requires_grad) ib->EnsureGrad();
      for (size_t i = 0; i < o->data.size(); ++i) {
        const bool to_a = pick_a(ia->data[i], ib->data[i]);
        if (to_a && ia->requires_grad) ia->grad[i] += o->grad[i];
        if (!to_a && ib->requires_grad) ib->grad[i] += o->grad[i];
      }
    };
  }
  return r;
}

}  // namespace

Tensor Min(const Tensor& a, const Tensor& b) {
  return BinarySelect(
      a, b, [](float x, float y) { return x <= y; }, "Min");
}

Tensor Max(const Tensor& a, const Tensor& b) {
  return BinarySelect(
      a, b, [](float x, float y) { return x >= y; }, "Max");
}

Tensor Softmax(const Tensor& x) {
  CEWS_CHECK_GE(x.ndim(), 1);
  const Index d = x.dim(-1);
  const Index rows = x.numel() / d;
  Tensor r = NewResult(x.shape(), {x});
  auto fwd = [o = r.impl().get(), xi = x.impl().get(), rows, d]() {
    const float* px = xi->data.data();
    float* po = o->data.data();
    for (Index r = 0; r < rows; ++r) {
      const float* row = px + r * d;
      float mx = row[0];
      for (Index j = 1; j < d; ++j) mx = std::max(mx, row[j]);
      float sum = 0.0f;
      for (Index j = 0; j < d; ++j) {
        const float e = std::exp(row[j] - mx);
        po[r * d + j] = e;
        sum += e;
      }
      for (Index j = 0; j < d; ++j) po[r * d + j] /= sum;
    }
  };
  fwd();
  graph::Record(r, {x}, fwd);
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ix = x.impl();
    r.impl()->backward_fn = [o, ix, rows, d]() {
      // dx = p * (dy - sum(dy * p)) per row.
      ix->EnsureGrad();
      for (Index row = 0; row < rows; ++row) {
        const float* p = o->data.data() + row * d;
        const float* dy = o->grad.data() + row * d;
        float dot = 0.0f;
        for (Index j = 0; j < d; ++j) dot += dy[j] * p[j];
        float* dx = ix->grad.data() + row * d;
        for (Index j = 0; j < d; ++j) dx[j] += p[j] * (dy[j] - dot);
      }
    };
  }
  return r;
}

Tensor LogSoftmax(const Tensor& x) {
  CEWS_CHECK_GE(x.ndim(), 1);
  const Index d = x.dim(-1);
  const Index rows = x.numel() / d;
  Tensor r = NewResult(x.shape(), {x});
  auto fwd = [o = r.impl().get(), xi = x.impl().get(), rows, d]() {
    const float* px = xi->data.data();
    float* po = o->data.data();
    for (Index r = 0; r < rows; ++r) {
      const float* row = px + r * d;
      float mx = row[0];
      for (Index j = 1; j < d; ++j) mx = std::max(mx, row[j]);
      float sum = 0.0f;
      for (Index j = 0; j < d; ++j) sum += std::exp(row[j] - mx);
      const float lse = mx + std::log(sum);
      for (Index j = 0; j < d; ++j) po[r * d + j] = row[j] - lse;
    }
  };
  fwd();
  graph::Record(r, {x}, fwd);
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ix = x.impl();
    r.impl()->backward_fn = [o, ix, rows, d]() {
      // dx = dy - softmax(x) * sum(dy) per row.
      ix->EnsureGrad();
      for (Index row = 0; row < rows; ++row) {
        const float* lp = o->data.data() + row * d;
        const float* dy = o->grad.data() + row * d;
        float sum_dy = 0.0f;
        for (Index j = 0; j < d; ++j) sum_dy += dy[j];
        float* dx = ix->grad.data() + row * d;
        for (Index j = 0; j < d; ++j) {
          dx[j] += dy[j] - std::exp(lp[j]) * sum_dy;
        }
      }
    };
  }
  return r;
}

Tensor Sum(const Tensor& x) {
  const Index n = x.numel();
  Tensor r = NewResult({}, {x});
  auto fwd = [o = r.impl().get(), xi = x.impl().get(), n]() {
    double acc = 0.0;
    const float* px = xi->data.data();
    for (Index i = 0; i < n; ++i) acc += px[i];
    o->data[0] = static_cast<float>(acc);
  };
  fwd();
  graph::Record(r, {x}, fwd);
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ix = x.impl();
    r.impl()->backward_fn = [o, ix]() {
      ix->EnsureGrad();
      const float g = o->grad[0];
      for (size_t i = 0; i < ix->data.size(); ++i) ix->grad[i] += g;
    };
  }
  return r;
}

Tensor Mean(const Tensor& x) {
  CEWS_CHECK_GT(x.numel(), 0);
  const Index n = x.numel();
  const float inv_n = 1.0f / static_cast<float>(n);
  Tensor r = NewResult({}, {x});
  auto fwd = [o = r.impl().get(), xi = x.impl().get(), n, inv_n]() {
    double acc = 0.0;
    const float* px = xi->data.data();
    for (Index i = 0; i < n; ++i) acc += px[i];
    o->data[0] = static_cast<float>(acc) * inv_n;
  };
  fwd();
  graph::Record(r, {x}, fwd);
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ix = x.impl();
    r.impl()->backward_fn = [o, ix, inv_n]() {
      ix->EnsureGrad();
      const float g = o->grad[0] * inv_n;
      for (size_t i = 0; i < ix->data.size(); ++i) ix->grad[i] += g;
    };
  }
  return r;
}

Tensor SumLastDim(const Tensor& x) {
  CEWS_CHECK_GE(x.ndim(), 1);
  const Index d = x.dim(-1);
  const Index rows = x.numel() / d;
  Shape out_shape(x.shape().begin(), x.shape().end() - 1);
  Tensor r = NewResult(std::move(out_shape), {x});
  auto fwd = [o = r.impl().get(), xi = x.impl().get(), rows, d]() {
    const float* px = xi->data.data();
    float* po = o->data.data();
    for (Index r = 0; r < rows; ++r) {
      double acc = 0.0;
      for (Index j = 0; j < d; ++j) acc += px[r * d + j];
      po[r] = static_cast<float>(acc);
    }
  };
  fwd();
  graph::Record(r, {x}, fwd);
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ix = x.impl();
    r.impl()->backward_fn = [o, ix, rows, d]() {
      ix->EnsureGrad();
      for (Index row = 0; row < rows; ++row) {
        const float g = o->grad[row];
        for (Index j = 0; j < d; ++j) ix->grad[row * d + j] += g;
      }
    };
  }
  return r;
}

Tensor Reshape(const Tensor& x, const Shape& shape) {
  CEWS_CHECK_EQ(NumElements(shape), x.numel());
  const Index n = x.numel();
  Tensor r = NewResult(shape, {x});
  auto fwd = [o = r.impl().get(), xi = x.impl().get(), n]() {
    std::copy(xi->data.data(), xi->data.data() + n, o->data.data());
  };
  fwd();
  graph::Record(r, {x}, fwd);
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ix = x.impl();
    r.impl()->backward_fn = [o, ix]() {
      ix->EnsureGrad();
      for (size_t i = 0; i < o->data.size(); ++i) ix->grad[i] += o->grad[i];
    };
  }
  return r;
}

Tensor Concat(const Tensor& a, const Tensor& b) {
  CEWS_CHECK_EQ(a.ndim(), b.ndim());
  CEWS_CHECK_GE(a.ndim(), 1);
  for (int i = 0; i + 1 < a.ndim(); ++i) CEWS_CHECK_EQ(a.dim(i), b.dim(i));
  const Index da = a.dim(-1), db = b.dim(-1);
  const Index rows = a.numel() / da;
  Shape out_shape = a.shape();
  out_shape.back() = da + db;
  Tensor r = NewResult(std::move(out_shape), {a, b});
  auto fwd = [o = r.impl().get(), xa = a.impl().get(), xb = b.impl().get(),
              rows, da, db]() {
    const float* pa = xa->data.data();
    const float* pb = xb->data.data();
    float* po = o->data.data();
    for (Index r = 0; r < rows; ++r) {
      float* orow = po + r * (da + db);
      for (Index j = 0; j < da; ++j) orow[j] = pa[r * da + j];
      for (Index j = 0; j < db; ++j) orow[da + j] = pb[r * db + j];
    }
  };
  fwd();
  graph::Record(r, {a, b}, fwd);
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ia = a.impl();
    auto ib = b.impl();
    r.impl()->backward_fn = [o, ia, ib, rows, da, db]() {
      if (ia->requires_grad) ia->EnsureGrad();
      if (ib->requires_grad) ib->EnsureGrad();
      for (Index row = 0; row < rows; ++row) {
        const float* g = o->grad.data() + row * (da + db);
        if (ia->requires_grad) {
          for (Index j = 0; j < da; ++j) ia->grad[row * da + j] += g[j];
        }
        if (ib->requires_grad) {
          for (Index j = 0; j < db; ++j) ib->grad[row * db + j] += g[da + j];
        }
      }
    };
  }
  return r;
}

namespace {

/// Shared body of both GatherLastDim overloads: `idx` is a stable handle
/// whose contents the forward re-reads (and re-validates) on every run.
Tensor GatherLastDimImpl(const Tensor& x,
                         std::shared_ptr<const std::vector<Index>> idx) {
  CEWS_CHECK_GE(x.ndim(), 1);
  CEWS_CHECK(idx != nullptr);
  const Index d = x.dim(-1);
  const Index rows = x.numel() / d;
  Shape out_shape(x.shape().begin(), x.shape().end() - 1);
  Tensor r = NewResult(std::move(out_shape), {x});
  auto fwd = [o = r.impl().get(), xi = x.impl().get(), idx, rows, d]() {
    CEWS_CHECK_EQ(static_cast<Index>(idx->size()), rows)
        << "GatherLastDim: index count changed between replays";
    const float* px = xi->data.data();
    float* po = o->data.data();
    for (Index r = 0; r < rows; ++r) {
      const Index j = (*idx)[static_cast<size_t>(r)];
      CEWS_CHECK_GE(j, 0);
      CEWS_CHECK_LT(j, d);
      po[r] = px[r * d + j];
    }
  };
  fwd();
  graph::Record(r, {x}, fwd);
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto ix = x.impl();
    r.impl()->backward_fn = [o, ix, idx, d]() {
      ix->EnsureGrad();
      for (size_t row = 0; row < idx->size(); ++row) {
        ix->grad[static_cast<Index>(row) * d + (*idx)[row]] += o->grad[row];
      }
    };
  }
  return r;
}

}  // namespace

Tensor GatherLastDim(const Tensor& x, const std::vector<Index>& idx) {
  return GatherLastDimImpl(
      x, std::make_shared<const std::vector<Index>>(idx));
}

Tensor GatherLastDim(const Tensor& x,
                     std::shared_ptr<const std::vector<Index>> idx) {
  return GatherLastDimImpl(x, std::move(idx));
}

Tensor Checkpoint(const Tensor& t) {
  CEWS_CHECK(t.defined());
  if (graph::Recording()) graph::MarkBoundary(t);
  return t;
}

namespace {

/// Static geometry of one Conv2d call (im2col formulation). The patch
/// dimension p = (ic * kh + ky) * kw + kx indexes rows of the column matrix;
/// the output-pixel dimension q = y * ow + x indexes its columns.
struct ConvShape {
  Index n, c, h, w;    // input  [N, C, H, W]
  Index oc, kh, kw;    // weight [OC, C, KH, KW]
  Index oh, ow;        // output spatial dims
  int stride, padding;
  Index ck2() const { return c * kh * kw; }
  Index ohow() const { return oh * ow; }
};

/// Unfolds one image into its column matrix cols [ck2, ohow]; out-of-bounds
/// (padding) taps become zeros.
void Im2Col(const ConvShape& s, const float* img, float* cols) {
  for (Index ic = 0; ic < s.c; ++ic) {
    const float* plane = img + ic * s.h * s.w;
    for (Index ky = 0; ky < s.kh; ++ky) {
      for (Index kx = 0; kx < s.kw; ++kx) {
        float* row =
            cols + ((ic * s.kh + ky) * s.kw + kx) * s.ohow();
        for (Index y = 0; y < s.oh; ++y) {
          const Index iy = y * s.stride - s.padding + ky;
          float* dst = row + y * s.ow;
          if (iy < 0 || iy >= s.h) {
            std::fill(dst, dst + s.ow, 0.0f);
            continue;
          }
          const float* src = plane + iy * s.w;
          for (Index x = 0; x < s.ow; ++x) {
            const Index ixp = x * s.stride - s.padding + kx;
            dst[x] = (ixp < 0 || ixp >= s.w) ? 0.0f : src[ixp];
          }
        }
      }
    }
  }
}

/// Folds a column-matrix gradient back into one image gradient (the adjoint
/// of Im2Col); accumulates with +=.
void Col2ImAccum(const ConvShape& s, const float* cols, float* img) {
  for (Index ic = 0; ic < s.c; ++ic) {
    float* plane = img + ic * s.h * s.w;
    for (Index ky = 0; ky < s.kh; ++ky) {
      for (Index kx = 0; kx < s.kw; ++kx) {
        const float* row =
            cols + ((ic * s.kh + ky) * s.kw + kx) * s.ohow();
        for (Index y = 0; y < s.oh; ++y) {
          const Index iy = y * s.stride - s.padding + ky;
          if (iy < 0 || iy >= s.h) continue;
          const float* src = row + y * s.ow;
          float* dst = plane + iy * s.w;
          for (Index x = 0; x < s.ow; ++x) {
            const Index ixp = x * s.stride - s.padding + kx;
            if (ixp < 0 || ixp >= s.w) continue;
            dst[ixp] += src[x];
          }
        }
      }
    }
  }
}

/// Unfolds the whole batch into cols (n * ck2 * ohow floats, caller-owned —
/// typically a workspace chunk), one image per parallel index.
void BatchIm2Col(const ConvShape& s, const float* px, float* pc) {
  ParallelKernel(s.n, s.ck2() * s.ohow(), [&](Index n0, Index n1) {
    for (Index in = n0; in < n1; ++in) {
      Im2Col(s, px + in * s.c * s.h * s.w, pc + in * s.ck2() * s.ohow());
    }
  });
}

/// Packs each image's column matrix [ck2, ohow] into the GEMM panel layout,
/// one image per parallel index. Pass transposed=true for the Yᵀ (PackNT)
/// layout the dW product consumes.
void PackBatch(const ConvShape& s, const float* pc, float* pp,
               bool transposed) {
  const Index ck2 = s.ck2(), ohow = s.ohow();
  ParallelKernel(s.n, ck2 * ohow, [&](Index n0, Index n1) {
    for (Index in = n0; in < n1; ++in) {
      const float* src = pc + in * ck2 * ohow;
      float* dst = pp + in * ck2 * ohow;
      if (transposed) {
        gemm::PackNT(ohow, ck2, src, ohow, dst);
      } else {
        gemm::PackNN(ck2, ohow, src, ohow, dst);
      }
    }
  });
}

/// When true (default), Conv2d keeps the forward im2col buffer alive inside
/// the backward closure so dW does not recompute it. CEWS_CONV_CACHE=0
/// restores the recompute-in-backward behavior (trades time for memory);
/// read per call so tests can toggle it. Graph recordings always cache:
/// the cols buffer is planner-managed there, so it costs no extra resident
/// memory beyond its liveness window.
bool ConvColsCacheEnabled() { return GetEnvBool("CEWS_CONV_CACHE", true); }

/// The im2col + pack + NNRows forward product shared by the eager path and
/// the graph thunk. cols/packed are caller scratch of n*ck2*ohow floats
/// each; all three outputs (cols, packed, po) are fully overwritten.
void ConvForwardBody(const ConvShape& s, const float* px, const float* pw,
                     const float* pbias, float* cols, float* packed,
                     float* po) {
  const Index ck2 = s.ck2(), ohow = s.ohow();
  BatchIm2Col(s, px, cols);
  PackBatch(s, cols, packed, /*transposed=*/false);
  ParallelKernel(s.n * s.oc, 2 * ck2 * ohow, [&](Index r0, Index r1) {
    // A chunk may span image boundaries; group its rows by image so each
    // NNRows call covers a contiguous block of output channels and gets
    // the full kMr-row register tiling.
    Index row = r0;
    while (row < r1) {
      const Index in = row / s.oc;
      const Index io0 = row % s.oc;
      const Index io1 = std::min(s.oc, io0 + (r1 - row));
      float* obase = po + in * s.oc * ohow;
      for (Index io = io0; io < io1; ++io) {
        float* orow = obase + io * ohow;
        std::fill(orow, orow + ohow, pbias != nullptr ? pbias[io] : 0.0f);
      }
      gemm::NNRows(io0, io1, ohow, ck2, pw, ck2, 1,
                   packed + in * ck2 * ohow, obase, ohow);
      row += io1 - io0;
    }
  });
}

/// The dW/db/dX backward products shared by the eager closure and the graph
/// closure. `cols` is the cached forward im2col buffer or nullptr (recompute
/// from the input's current data). The three scratch pointers are nullable:
/// null falls back to workspace vectors (eager mode); non-null are
/// planner-assigned slabs — packt n*ck2*ohow, dcols_all n*ck2*ohow and
/// packdy_all n*oc*ohow floats (per-image slices, dcols re-zeroed here).
void ConvBackwardBody(const ConvShape& s, uint64_t conv_flops, TensorImpl* o,
                      TensorImpl* ix, TensorImpl* iw, TensorImpl* ib,
                      const float* cols, float* packt_buf, float* dcols_all,
                      float* packdy_all) {
  CEWS_TRACE_SCOPE("nn.Conv2d.bwd");
  const Index ck2 = s.ck2(), ohow = s.ohow();
  const uint64_t t0 = Stopwatch::NowNs();
  uint64_t bwd_flops = 0;
  const bool need_dx = ix->requires_grad;
  const bool need_dw = iw->requires_grad;
  const bool need_db = ib != nullptr && ib->requires_grad;
  if (need_dx) ix->EnsureGrad();
  if (need_dw) iw->EnsureGrad();
  if (need_db) ib->EnsureGrad();
  const float* og = o->grad.data();

  // dW = sum_n dY_n * cols_n^T (NT shape: one fresh dot per element,
  // images accumulated in ascending order) and db = sum over pixels.
  // Partitioned over output channels: each dW row / db entry has one
  // owner.
  if (need_dw || need_db) {
    if (need_dw) bwd_flops += conv_flops;
    float* gw = need_dw ? iw->grad.data() : nullptr;
    float* gb = need_db ? ib->grad.data() : nullptr;
    ScopedVec packt(need_dw && packt_buf == nullptr ? s.n * ck2 * ohow : 0);
    float* pt = packt_buf != nullptr ? packt_buf : packt.data();
    if (need_dw) {
      ScopedVec recomputed(cols == nullptr ? s.n * ck2 * ohow : 0);
      const float* pc = cols;
      if (pc == nullptr) {
        BatchIm2Col(s, ix->data.data(), recomputed.data());
        pc = recomputed.data();
      }
      PackBatch(s, pc, pt, /*transposed=*/true);
    }
    ParallelKernel(s.oc, 2 * s.n * ck2 * ohow, [&](Index o0, Index o1) {
      // Images ascend in the outer loop; every dW/db element still
      // receives its per-image contributions in image order, identical
      // to the channel-outer loop this replaced.
      for (Index in = 0; in < s.n; ++in) {
        const float* gbase = og + in * s.oc * ohow;
        if (need_db) {
          for (Index io = o0; io < o1; ++io) {
            const float* grow = gbase + io * ohow;
            float acc = 0.0f;
            for (Index q = 0; q < ohow; ++q) acc += grow[q];
            gb[io] += acc;
          }
        }
        if (!need_dw) continue;
        gemm::NTRows(o0, o1, ck2, ohow, gbase, ohow,
                     pt + in * ck2 * ohow, gw, ck2);
      }
    });
  }

  // dX_n = col2im(W^T * dY_n), partitioned over images. The W^T product
  // is NN-shaped: dcols rows accumulate channel-ascending.
  if (need_dx) {
    bwd_flops += conv_flops;
    const float* pw = iw->data.data();
    float* gx = ix->grad.data();
    ParallelKernel(s.n, 2 * s.oc * ck2 * ohow, [&](Index n0, Index n1) {
      for (Index in = n0; in < n1; ++in) {
        ScopedVec dcols_local(dcols_all == nullptr ? ck2 * ohow : 0);
        ScopedVec packdy_local(packdy_all == nullptr ? s.oc * ohow : 0);
        float* dcols = dcols_all != nullptr ? dcols_all + in * ck2 * ohow
                                            : dcols_local.data();
        float* packdy = packdy_all != nullptr ? packdy_all + in * s.oc * ohow
                                              : packdy_local.data();
        // NNRows accumulates into dcols; workspace vectors arrive zeroed,
        // arena slices must be re-zeroed per run. packdy is fully
        // overwritten by the pack.
        if (dcols_all != nullptr) std::fill(dcols, dcols + ck2 * ohow, 0.0f);
        gemm::PackNN(s.oc, ohow, og + in * s.oc * ohow, ohow, packdy);
        gemm::NNRows(0, ck2, ohow, s.oc, pw, 1, ck2, packdy, dcols, ohow);
        Col2ImAccum(s, dcols, gx + in * s.c * s.h * s.w);
      }
    });
  }
  KernelMetrics& metrics = Conv2dMetrics();
  metrics.bwd_flops->Add(bwd_flops);
  metrics.bwd_ns->Add(Stopwatch::NowNs() - t0);
}

}  // namespace

Tensor Conv2d(const Tensor& x, const Tensor& w, const Tensor& bias,
              int stride, int padding) {
  CEWS_CHECK_EQ(x.ndim(), 4);
  CEWS_CHECK_EQ(w.ndim(), 4);
  CEWS_CHECK_GE(stride, 1);
  CEWS_CHECK_GE(padding, 0);
  ConvShape s;
  s.n = x.dim(0), s.c = x.dim(1), s.h = x.dim(2), s.w = x.dim(3);
  s.oc = w.dim(0), s.kh = w.dim(2), s.kw = w.dim(3);
  s.stride = stride, s.padding = padding;
  CEWS_CHECK_EQ(w.dim(1), s.c);
  if (bias.defined()) {
    CEWS_CHECK_EQ(bias.ndim(), 1);
    CEWS_CHECK_EQ(bias.dim(0), s.oc);
  }
  s.oh = (s.h + 2 * padding - s.kh) / stride + 1;
  s.ow = (s.w + 2 * padding - s.kw) / stride + 1;
  CEWS_CHECK_GE(s.oh, 1);
  CEWS_CHECK_GE(s.ow, 1);
  const Index ck2 = s.ck2(), ohow = s.ohow();

  // FLOPs of one batched im2col product: multiply + add per (image, output
  // channel, patch row, output pixel). Forward and each backward product
  // share this cost.
  const uint64_t conv_flops =
      2ull * static_cast<uint64_t>(s.n * s.oc * ck2 * ohow);

  const bool rec = graph::Recording();
  Tensor r = NewResult({s.n, s.oc, s.oh, s.ow}, {x, w, bias});
  const bool track = Tracking(r);
  TensorImpl* o = r.impl().get();
  TensorImpl* xi = x.impl().get();
  TensorImpl* wi = w.impl().get();
  TensorImpl* bi = bias.defined() ? bias.impl().get() : nullptr;

  if (rec) {
    // Graph path: all scratch (forward and backward) is planner-managed.
    // cols is kSpan when the backward will read it for dW; packed panels and
    // gradient scratch are single-phase.
    auto cols = graph::AllocBuf(
        s.n * ck2 * ohow,
        track && wi->requires_grad ? BufLife::kSpan : BufLife::kFwd);
    auto packed = graph::AllocBuf(s.n * ck2 * ohow, BufLife::kFwd);
    std::shared_ptr<OpBuf> packt, dcols_all, packdy_all;
    if (track && wi->requires_grad) {
      packt = graph::AllocBuf(s.n * ck2 * ohow, BufLife::kBwd);
    }
    if (track && xi->requires_grad) {
      dcols_all = graph::AllocBuf(s.n * ck2 * ohow, BufLife::kBwd);
      packdy_all = graph::AllocBuf(s.n * s.oc * ohow, BufLife::kBwd);
    }
    auto fwd = [o, xi, wi, bi, s, conv_flops, cols, packed]() {
      CEWS_TRACE_SCOPE("nn.Conv2d");
      const uint64_t t0 = Stopwatch::NowNs();
      ConvForwardBody(s, xi->data.data(), wi->data.data(),
                      bi != nullptr ? bi->data.data() : nullptr, cols->data(),
                      packed->data(), o->data.data());
      KernelMetrics& metrics = Conv2dMetrics();
      metrics.calls->Increment();
      metrics.fwd_flops->Add(conv_flops);
      metrics.fwd_ns->Add(Stopwatch::NowNs() - t0);
    };
    fwd();
    graph::Record(r, {x, w, bias}, fwd);
    if (track) {
      auto ix = x.impl();
      auto iw = w.impl();
      auto ib = bias.defined() ? bias.impl() : std::shared_ptr<TensorImpl>();
      r.impl()->backward_fn = [o, ix, iw, ib, s, conv_flops, cols, packt,
                               dcols_all, packdy_all]() {
        ConvBackwardBody(s, conv_flops, o, ix.get(), iw.get(), ib.get(),
                         cols->data(),
                         packt ? packt->data() : nullptr,
                         dcols_all ? dcols_all->data() : nullptr,
                         packdy_all ? packdy_all->data() : nullptr);
      };
    }
    return r;
  }

  // Eager path. The cols buffer is shared so that, when the cache is on,
  // the backward closure can reuse it for dW instead of re-unfolding x.
  CEWS_TRACE_SCOPE("nn.Conv2d");
  const uint64_t fwd_t0 = Stopwatch::NowNs();
  auto cols = std::make_shared<ScopedVec>(s.n * ck2 * ohow);
  {
    ScopedVec packed(s.n * ck2 * ohow);
    ConvForwardBody(s, x.data(), w.data(),
                    bias.defined() ? bias.data() : nullptr, cols->data(),
                    packed.data(), o->data.data());
  }
  {
    KernelMetrics& metrics = Conv2dMetrics();
    metrics.calls->Increment();
    metrics.fwd_flops->Add(conv_flops);
    metrics.fwd_ns->Add(Stopwatch::NowNs() - fwd_t0);
  }

  if (track) {
    auto ix = x.impl();
    auto iw = w.impl();
    auto ib = bias.defined() ? bias.impl() : std::shared_ptr<TensorImpl>();
    std::shared_ptr<ScopedVec> cached;
    if (ConvColsCacheEnabled()) cached = cols;
    r.impl()->backward_fn = [o, ix, iw, ib, s, conv_flops, cached]() {
      ConvBackwardBody(s, conv_flops, o, ix.get(), iw.get(), ib.get(),
                       cached ? cached->data() : nullptr, nullptr, nullptr,
                       nullptr);
    };
  }
  return r;
}

namespace {

/// One LayerNorm forward sweep: writes the normalized-scaled output `po`
/// plus the xhat/inv_sigma row statistics the backward consumes.
void LayerNormBody(Index n, Index f, float eps, const float* px,
                   const float* pg, const float* pb, float* po, float* xhat,
                   float* inv_sigma) {
  for (Index i = 0; i < n; ++i) {
    const float* row = px + i * f;
    double mu = 0.0;
    for (Index j = 0; j < f; ++j) mu += row[j];
    mu /= static_cast<double>(f);
    double var = 0.0;
    for (Index j = 0; j < f; ++j) {
      const double d = row[j] - mu;
      var += d * d;
    }
    var /= static_cast<double>(f);
    const float is = 1.0f / std::sqrt(static_cast<float>(var) + eps);
    inv_sigma[i] = is;
    for (Index j = 0; j < f; ++j) {
      const float xh = (row[j] - static_cast<float>(mu)) * is;
      xhat[i * f + j] = xh;
      po[i * f + j] = xh * pg[j] + pb[j];
    }
  }
}

}  // namespace

Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps) {
  CEWS_CHECK_GE(x.ndim(), 2);
  const Index n = x.dim(0);
  const Index f = x.numel() / n;
  CEWS_CHECK_EQ(gamma.numel(), f);
  CEWS_CHECK_EQ(beta.numel(), f);
  const bool rec = graph::Recording();
  Tensor r = NewResult(x.shape(), {x, gamma, beta});
  const bool track = Tracking(r);
  // Row statistics live in shared scratch the forward writes and the
  // backward reads: planner-managed (kSpan) in graph mode, workspace-backed
  // in eager mode.
  const BufLife stat_life = track ? BufLife::kSpan : BufLife::kFwd;
  auto xh = rec ? graph::AllocBuf(x.numel(), stat_life)
                : graph::LocalBuf(x.numel());
  auto is = rec ? graph::AllocBuf(n, stat_life) : graph::LocalBuf(n);
  auto fwd = [o = r.impl().get(), xi = x.impl().get(),
              gi = gamma.impl().get(), bi = beta.impl().get(), n, f, eps, xh,
              is]() {
    LayerNormBody(n, f, eps, xi->data.data(), gi->data.data(),
                  bi->data.data(), o->data.data(), xh->data(), is->data());
  };
  fwd();
  graph::Record(r, {x, gamma, beta}, fwd);
  if (track) {
    auto o = r.impl().get();
    auto ix = x.impl();
    auto ig = gamma.impl();
    auto ibt = beta.impl();
    r.impl()->backward_fn = [o, ix, ig, ibt, xh, is, n, f]() {
      if (ix->requires_grad) ix->EnsureGrad();
      if (ig->requires_grad) ig->EnsureGrad();
      if (ibt->requires_grad) ibt->EnsureGrad();
      const float* xhp = xh->data();
      const float* isp = is->data();
      for (Index i = 0; i < n; ++i) {
        const float* dy = o->grad.data() + i * f;
        const float* xr = xhp + i * f;
        if (ig->requires_grad || ibt->requires_grad) {
          for (Index j = 0; j < f; ++j) {
            if (ig->requires_grad) ig->grad[j] += dy[j] * xr[j];
            if (ibt->requires_grad) ibt->grad[j] += dy[j];
          }
        }
        if (ix->requires_grad) {
          // dx = (g - mean(g) - xhat * mean(g * xhat)) * inv_sigma,
          // where g = dy * gamma.
          double mean_g = 0.0, mean_gx = 0.0;
          for (Index j = 0; j < f; ++j) {
            const double gj = static_cast<double>(dy[j]) * ig->data[j];
            mean_g += gj;
            mean_gx += gj * xr[j];
          }
          mean_g /= static_cast<double>(f);
          mean_gx /= static_cast<double>(f);
          float* dx = ix->grad.data() + i * f;
          for (Index j = 0; j < f; ++j) {
            const double gj = static_cast<double>(dy[j]) * ig->data[j];
            dx[j] += static_cast<float>((gj - mean_g - xr[j] * mean_gx) *
                                        isp[i]);
          }
        }
      }
    };
  }
  return r;
}

Tensor EmbeddingLookup(const Tensor& table, const std::vector<Index>& ids) {
  CEWS_CHECK_EQ(table.ndim(), 2);
  const Index v = table.dim(0), d = table.dim(1);
  const Index n = static_cast<Index>(ids.size());
  Tensor r = NewResult({n, d}, {table});
  // The id list is captured by value: a recorded lookup replays the same
  // rows (graph callers run data-dependent lookups outside the recording).
  auto indices = std::make_shared<const std::vector<Index>>(ids);
  auto fwd = [o = r.impl().get(), ti = table.impl().get(), indices, v, d,
              n]() {
    const float* pt = ti->data.data();
    float* po = o->data.data();
    for (Index i = 0; i < n; ++i) {
      const Index id = (*indices)[static_cast<size_t>(i)];
      CEWS_CHECK_GE(id, 0);
      CEWS_CHECK_LT(id, v);
      const float* row = pt + id * d;
      for (Index j = 0; j < d; ++j) po[i * d + j] = row[j];
    }
  };
  fwd();
  graph::Record(r, {table}, fwd);
  if (Tracking(r)) {
    auto o = r.impl().get();
    auto it = table.impl();
    r.impl()->backward_fn = [o, it, indices, d]() {
      it->EnsureGrad();
      for (size_t i = 0; i < indices->size(); ++i) {
        for (Index j = 0; j < d; ++j) {
          it->grad[(*indices)[i] * d + j] +=
              o->grad[static_cast<Index>(i) * d + j];
        }
      }
    };
  }
  return r;
}

Tensor MseLoss(const Tensor& pred, const Tensor& target) {
  return Mean(Square(Sub(pred, target)));
}

Tensor Huber(const Tensor& x, float delta) {
  CEWS_CHECK(delta > 0.0f);
  return UnaryElementwise(
      x,
      [delta](float v) {
        const float a = std::abs(v);
        return a <= delta ? 0.5f * v * v : delta * (a - 0.5f * delta);
      },
      [delta](float v, float) {
        if (v > delta) return delta;
        if (v < -delta) return -delta;
        return v;
      });
}

Tensor HuberLoss(const Tensor& pred, const Tensor& target, float delta) {
  return Mean(Huber(Sub(pred, target), delta));
}

}  // namespace cews::nn
