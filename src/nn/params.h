// Parameter-set utilities: flat gradient exchange for the chief-employee
// architecture, global-norm clipping, and parameter copying.
#ifndef CEWS_NN_PARAMS_H_
#define CEWS_NN_PARAMS_H_

#include <vector>

#include "nn/tensor.h"

namespace cews::nn {

/// Copies values (not grads) from src into dst, element for element. Shapes
/// must match pairwise. This is the "employee copies parameters from the
/// global model" step of Algorithm 1.
void CopyParameters(const std::vector<Tensor>& src,
                    const std::vector<Tensor>& dst);

/// Total scalar count across a parameter list.
Index FlatSize(const std::vector<Tensor>& params);

/// Concatenates all parameter values into one flat vector.
std::vector<float> FlattenValues(const std::vector<Tensor>& params);

/// Concatenates all gradients into one flat vector (zeros where a parameter
/// has no grad buffer yet). This is what an employee sends to the chief's
/// gradient buffer.
std::vector<float> FlattenGradients(const std::vector<Tensor>& params);

/// Adds a flat gradient vector into the parameters' grad buffers. The chief
/// uses this to apply the summed employee gradients to the global model.
void AccumulateFlatGradients(const std::vector<Tensor>& params,
                             const std::vector<float>& flat);

/// Overwrites parameter values from a flat vector.
void LoadFlatValues(const std::vector<Tensor>& params,
                    const std::vector<float>& flat);

/// L2 norm over every parameter's gradient.
double GlobalGradNorm(const std::vector<Tensor>& params);

/// Scales all gradients so the global norm is at most max_norm. Returns the
/// pre-clip norm.
double ClipGradByGlobalNorm(const std::vector<Tensor>& params,
                            double max_norm);

/// Zeroes every gradient buffer.
void ZeroGradients(const std::vector<Tensor>& params);

}  // namespace cews::nn

#endif  // CEWS_NN_PARAMS_H_
