#include "nn/module.h"

#include "common/check.h"
#include "nn/init.h"

namespace cews::nn {

void Module::ZeroGrad() const {
  for (Tensor t : Parameters()) t.ZeroGrad();
}

Index Module::NumParameters() const {
  Index n = 0;
  for (const Tensor& t : Parameters()) n += t.numel();
  return n;
}

Linear::Linear(Index in_features, Index out_features, cews::Rng& rng,
               float gain) {
  CEWS_CHECK_GT(in_features, 0);
  CEWS_CHECK_GT(out_features, 0);
  weight_ = Tensor::Zeros({in_features, out_features}, /*requires_grad=*/true);
  XavierUniform(weight_, in_features, out_features, rng);
  if (gain != 1.0f) {
    float* p = weight_.data();
    for (Index i = 0; i < weight_.numel(); ++i) p[i] *= gain;
  }
  bias_ = Tensor::Zeros({out_features}, /*requires_grad=*/true);
}

Tensor Linear::Forward(const Tensor& x) const {
  return AddBias(MatMul(x, weight_), bias_);
}

std::vector<Tensor> Linear::Parameters() const { return {weight_, bias_}; }

Conv2dLayer::Conv2dLayer(Index in_channels, Index out_channels, int kernel,
                         int stride, int padding, cews::Rng& rng)
    : stride_(stride), padding_(padding) {
  CEWS_CHECK_GT(in_channels, 0);
  CEWS_CHECK_GT(out_channels, 0);
  CEWS_CHECK_GT(kernel, 0);
  weight_ = Tensor::Zeros({out_channels, in_channels, kernel, kernel},
                          /*requires_grad=*/true);
  HeNormal(weight_, in_channels * kernel * kernel, rng);
  bias_ = Tensor::Zeros({out_channels}, /*requires_grad=*/true);
}

Tensor Conv2dLayer::Forward(const Tensor& x) const {
  return Conv2d(x, weight_, bias_, stride_, padding_);
}

std::vector<Tensor> Conv2dLayer::Parameters() const {
  return {weight_, bias_};
}

LayerNorm::LayerNorm(Index features) {
  CEWS_CHECK_GT(features, 0);
  gamma_ = Tensor::Full({features}, 1.0f, /*requires_grad=*/true);
  beta_ = Tensor::Zeros({features}, /*requires_grad=*/true);
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  return LayerNormOp(x, gamma_, beta_);
}

std::vector<Tensor> LayerNorm::Parameters() const { return {gamma_, beta_}; }

Embedding::Embedding(Index vocab, Index dim, cews::Rng& rng, bool trainable)
    : trainable_(trainable) {
  CEWS_CHECK_GT(vocab, 0);
  CEWS_CHECK_GT(dim, 0);
  table_ = Tensor::Zeros({vocab, dim}, /*requires_grad=*/trainable);
  // Rows have expected unit L2 norm so downstream losses (e.g. the spatial
  // curiosity prediction error) start at O(1) regardless of `dim`.
  GaussianInit(table_, 1.0f / std::sqrt(static_cast<float>(dim)), rng);
}

Tensor Embedding::Forward(const std::vector<Index>& ids) const {
  return EmbeddingLookup(table_, ids);
}

std::vector<Tensor> Embedding::Parameters() const {
  if (!trainable_) return {};
  return {table_};
}

Tensor Activate(const Tensor& x, Activation act) {
  switch (act) {
    case Activation::kRelu:
      return Relu(x);
    case Activation::kTanh:
      return Tanh(x);
    case Activation::kNone:
      return x;
  }
  CEWS_CHECK(false) << "unknown activation";
  return x;
}

Mlp::Mlp(const std::vector<Index>& sizes, Activation hidden_act,
         cews::Rng& rng, float output_gain)
    : hidden_act_(hidden_act) {
  CEWS_CHECK_GE(sizes.size(), 2u);
  for (size_t i = 0; i + 1 < sizes.size(); ++i) {
    const bool is_output = (i + 2 == sizes.size());
    layers_.emplace_back(sizes[i], sizes[i + 1], rng,
                         is_output ? output_gain : 1.0f);
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) h = Activate(h, hidden_act_);
  }
  return h;
}

std::vector<Tensor> Mlp::Parameters() const {
  std::vector<Tensor> params;
  for (const Linear& layer : layers_) {
    for (Tensor t : layer.Parameters()) params.push_back(t);
  }
  return params;
}

}  // namespace cews::nn
