// Binary (de)serialization of parameter lists — checkpoints for the
// "parameters in DNNs are periodically saved for testing" step (Section VI-D).
#ifndef CEWS_NN_SERIALIZE_H_
#define CEWS_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/tensor.h"

namespace cews::nn {

/// Writes every parameter (shape + float data) to `path`. Format:
///   magic "CEWSPAR1" | u64 tensor-count | per tensor: u64 ndim, i64 dims...,
///   f32 data...
Status SaveParameters(const std::string& path,
                      const std::vector<Tensor>& params);

/// Loads a checkpoint written by SaveParameters into the given parameter
/// list. Shapes must match exactly (same architecture).
Status LoadParameters(const std::string& path,
                      const std::vector<Tensor>& params);

}  // namespace cews::nn

#endif  // CEWS_NN_SERIALIZE_H_
