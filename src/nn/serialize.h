// Binary (de)serialization of parameter lists — checkpoints for the
// "parameters in DNNs are periodically saved for testing" step (Section VI-D).
#ifndef CEWS_NN_SERIALIZE_H_
#define CEWS_NN_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "nn/tensor.h"

namespace cews::nn {

/// What SaveParameters wrote: size and checksum of the finished file, so
/// callers (trainer checkpointing, the CLI) can log something an operator
/// can correlate with a server-side hot reload of the same file.
struct SaveInfo {
  uint64_t bytes = 0;   ///< Total file size, footer included.
  uint32_t crc32 = 0;   ///< CRC-32 over everything before the footer.
};

/// Writes every parameter (shape + float data) to `path`. Format:
///   magic "CEWSPAR1" | u64 tensor-count | per tensor: u64 ndim, i64 dims...,
///   f32 data... | footer "CRC1" + u32 crc32-of-all-preceding-bytes
///
/// Crash-safe: the file is assembled in memory, written to `<path>.tmp`, and
/// renamed over `path` only once complete — an interrupted save can never
/// truncate or corrupt an existing checkpoint at `path`.
Status SaveParameters(const std::string& path,
                      const std::vector<Tensor>& params,
                      SaveInfo* info = nullptr);

/// Load-time policy knobs.
struct LoadOptions {
  /// Rejects (FailedPrecondition) any file without the CRC32 footer. Legacy
  /// footer-less checkpoints carry no integrity check at all, so paths that
  /// fan parameters out further — the distributed trainer's broadcast, the
  /// fleet publish loop — must never accept one: a torn or ancient file
  /// would otherwise replicate to every employee / shard unverified.
  bool require_crc = false;
};

/// Loads a checkpoint written by SaveParameters into the given parameter
/// list. Shapes must match exactly (same architecture).
///
/// When the CRC32 footer is present it is verified before any tensor is
/// touched; legacy footer-less "CEWSPAR1" files are still accepted (no
/// integrity check is possible for those) unless options.require_crc is
/// set. Corrupt or truncated files are rejected with a descriptive Status —
/// header fields are bounds-checked (ndim, dims, payload size) before any
/// allocation sized from them.
Status LoadParameters(const std::string& path,
                      const std::vector<Tensor>& params,
                      const LoadOptions& options = LoadOptions{});

}  // namespace cews::nn

#endif  // CEWS_NN_SERIALIZE_H_
