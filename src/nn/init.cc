#include "nn/init.h"

#include <cmath>

namespace cews::nn {

void XavierUniform(Tensor& t, Index fan_in, Index fan_out, cews::Rng& rng) {
  CEWS_CHECK_GT(fan_in + fan_out, 0);
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  UniformInit(t, -limit, limit, rng);
}

void HeNormal(Tensor& t, Index fan_in, cews::Rng& rng) {
  CEWS_CHECK_GT(fan_in, 0);
  GaussianInit(t, std::sqrt(2.0f / static_cast<float>(fan_in)), rng);
}

void GaussianInit(Tensor& t, float stddev, cews::Rng& rng) {
  float* p = t.data();
  for (Index i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng.Gaussian(0.0, stddev));
  }
}

void UniformInit(Tensor& t, float lo, float hi, cews::Rng& rng) {
  float* p = t.data();
  for (Index i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
}

void ConstantInit(Tensor& t, float value) {
  float* p = t.data();
  for (Index i = 0; i < t.numel(); ++i) p[i] = value;
}

}  // namespace cews::nn
