// First-order optimizers over a parameter list.
#ifndef CEWS_NN_OPTIMIZER_H_
#define CEWS_NN_OPTIMIZER_H_

#include <vector>

#include "nn/tensor.h"

namespace cews::nn {

/// Base optimizer: owns handles to the parameters it updates.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params);
  virtual ~Optimizer() = default;

  /// Applies one update from the currently-accumulated gradients.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

/// Stochastic gradient descent with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f);
  void Step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba), the paper's chief-side optimizer (Section VI).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void Step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_, beta1_, beta2_, eps_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace cews::nn

#endif  // CEWS_NN_OPTIMIZER_H_
