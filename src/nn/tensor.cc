#include "nn/tensor.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/check.h"
#include "nn/graph.h"
#include "nn/workspace.h"

namespace cews::nn {

namespace {
thread_local bool g_grad_mode = true;
thread_local uint64_t g_next_seq = 0;
}  // namespace

bool GradModeEnabled() { return g_grad_mode; }

NoGradGuard::NoGradGuard() : previous_(g_grad_mode) { g_grad_mode = false; }
NoGradGuard::~NoGradGuard() { g_grad_mode = previous_; }

Index NumElements(const Shape& shape) {
  Index n = 1;
  for (Index d : shape) {
    CEWS_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

TensorImpl::TensorImpl() : seq(++g_next_seq) {}

TensorImpl::~TensorImpl() {
  Workspace::Recycle(data.TakeOwned());
  Workspace::Recycle(grad.TakeOwned());
}

void TensorImpl::EnsureGrad() {
  if (grad.empty()) {
    grad = Workspace::AcquireVec(static_cast<Index>(data.size()));
  }
}

Tensor Tensor::Zeros(const Shape& shape, bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data = Workspace::AcquireVec(NumElements(shape));
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::Full(const Shape& shape, float value, bool requires_grad) {
  Tensor t = Zeros(shape, requires_grad);
  for (Index i = 0; i < t.numel(); ++i) t.data()[i] = value;
  return t;
}

Tensor Tensor::FromData(const Shape& shape, std::vector<float> data,
                        bool requires_grad) {
  CEWS_CHECK_EQ(static_cast<size_t>(NumElements(shape)), data.size());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data = std::move(data);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::Scalar(float value) { return Full({}, value); }

const Shape& Tensor::shape() const {
  CEWS_CHECK(defined());
  return impl_->shape;
}

int Tensor::ndim() const { return static_cast<int>(shape().size()); }

Index Tensor::dim(int i) const {
  const Shape& s = shape();
  if (i < 0) i += static_cast<int>(s.size());
  CEWS_CHECK_GE(i, 0);
  CEWS_CHECK_LT(static_cast<size_t>(i), s.size());
  return s[static_cast<size_t>(i)];
}

Index Tensor::numel() const {
  CEWS_CHECK(defined());
  return static_cast<Index>(impl_->data.size());
}

float* Tensor::data() {
  CEWS_CHECK(defined());
  return impl_->data.data();
}

const float* Tensor::data() const {
  CEWS_CHECK(defined());
  return impl_->data.data();
}

float* Tensor::grad() {
  CEWS_CHECK(defined());
  return impl_->grad.empty() ? nullptr : impl_->grad.data();
}

const float* Tensor::grad() const {
  CEWS_CHECK(defined());
  return impl_->grad.empty() ? nullptr : impl_->grad.data();
}

bool Tensor::requires_grad() const {
  CEWS_CHECK(defined());
  return impl_->requires_grad;
}

float Tensor::item() const {
  CEWS_CHECK_EQ(numel(), 1);
  return impl_->data[0];
}

float Tensor::at(std::initializer_list<Index> idx) const {
  const Shape& s = shape();
  CEWS_CHECK_EQ(idx.size(), s.size());
  Index flat = 0;
  size_t d = 0;
  for (Index i : idx) {
    CEWS_CHECK_GE(i, 0);
    CEWS_CHECK_LT(i, s[d]);
    flat = flat * s[d] + i;
    ++d;
  }
  return impl_->data[static_cast<size_t>(flat)];
}

std::vector<float> Tensor::ToVector() const {
  CEWS_CHECK(defined());
  return std::vector<float>(impl_->data.begin(), impl_->data.end());
}

void Tensor::ZeroGrad() {
  CEWS_CHECK(defined());
  if (impl_->grad.size() == impl_->data.size()) {
    std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);  // no realloc
  } else {
    Workspace::Recycle(impl_->grad.TakeOwned());
    impl_->grad = Workspace::AcquireVec(static_cast<Index>(impl_->data.size()));
  }
}

Tensor Tensor::Detach() const {
  CEWS_CHECK(defined());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = impl_->shape;
  // Value copy; detached view is fine at our scale.
  impl->data = std::vector<float>(impl_->data.begin(), impl_->data.end());
  impl->requires_grad = false;
  return Tensor(std::move(impl));
}

Tensor Tensor::Clone() const { return Detach(); }

void Tensor::Backward() {
  CEWS_CHECK(defined());
  CEWS_CHECK_EQ(numel(), 1) << "Backward() requires a scalar loss";
  if (impl_->graph_exec != nullptr) {
    // Compiled-graph root: the executor owns ordering, interior-grad zeroing
    // and (when enabled) segment recomputation.
    impl_->graph_exec->Backward();
    return;
  }
  CEWS_CHECK(!graph::Recording())
      << "Backward() inside an active graph recording: finish the recording "
         "(EndRecording) and backpropagate through the compiled graph";
  CEWS_CHECK(!impl_->backward_done)
      << "double Backward() on the same tape root: gradients would "
         "double-accumulate; rebuild the loss (or replay its graph) first";
  impl_->backward_done = true;
  // Collect every node reachable through tape edges.
  std::vector<TensorImpl*> nodes;
  std::unordered_set<TensorImpl*> visited;
  std::vector<TensorImpl*> stack;
  stack.push_back(impl_.get());
  visited.insert(impl_.get());
  while (!stack.empty()) {
    TensorImpl* node = stack.back();
    stack.pop_back();
    nodes.push_back(node);
    for (const auto& parent : node->parents) {
      if (visited.insert(parent.get()).second) stack.push_back(parent.get());
    }
  }
  // Descending creation order is a valid reverse topological order (an op's
  // inputs always predate its output) and is the one canonical backward
  // order shared with graph replay and checkpointed replay, so all three
  // accumulate shared-parent gradients in the same sequence.
  std::sort(nodes.begin(), nodes.end(),
            [](const TensorImpl* a, const TensorImpl* b) {
              return a->seq > b->seq;
            });
  // Seed d(loss)/d(loss) = 1 and propagate.
  impl_->EnsureGrad();
  impl_->grad[0] += 1.0f;
  for (TensorImpl* node : nodes) {
    if (node->backward_fn) node->backward_fn();
  }
}

}  // namespace cews::nn
