#include "nn/workspace.h"

#include <atomic>
#include <bit>
#include <cstddef>

#include "obs/metrics.h"

namespace cews::nn {

namespace {

/// Power-of-two buckets: bucket b retains chunks with capacity in
/// [2^b, 2^(b+1)). Requests of up to 2^33 floats (32 GiB) are bucketed;
/// anything larger falls through to the plain allocator.
constexpr int kNumBuckets = 34;

/// Retention caps. Small buckets hold the per-step activation population of
/// a trainer (hundreds of tensors die together at tape teardown); large
/// buckets hold a handful of im2col/pack panels. Beyond the cap a recycle
/// becomes a free, bounding arena growth under pathological churn.
constexpr size_t kSmallBucketFloats = size_t{1} << 14;  // 64 KiB
constexpr size_t kSmallBucketCap = 512;
constexpr size_t kLargeBucketCap = 16;

/// Process-wide running totals (relaxed; telemetry only).
std::atomic<uint64_t> g_reuse_hits{0};
std::atomic<uint64_t> g_misses{0};
std::atomic<uint64_t> g_recycles{0};
std::atomic<uint64_t> g_evictions{0};
std::atomic<int64_t> g_bytes_in_use{0};

struct WorkspaceMetrics {
  obs::Counter* const reuse_hits = obs::GetCounter("workspace.reuse_hits");
  obs::Counter* const misses = obs::GetCounter("workspace.misses");
  obs::Counter* const recycles = obs::GetCounter("workspace.recycles");
  obs::Counter* const evictions = obs::GetCounter("workspace.evictions");
  obs::Gauge* const bytes_in_use = obs::GetGauge("workspace.bytes_in_use");
};

WorkspaceMetrics& Metrics() {
  static WorkspaceMetrics* m = new WorkspaceMetrics();
  return *m;
}

void AddRetainedBytes(int64_t delta) {
  const int64_t now =
      g_bytes_in_use.fetch_add(delta, std::memory_order_relaxed) + delta;
  Metrics().bytes_in_use->Set(static_cast<double>(now));
}

/// Smallest b with 2^b >= n (bucket an acquisition looks in).
int CeilBucket(size_t n) {
  return n <= 1 ? 0 : std::bit_width(n - 1);
}

/// Largest b with 2^b <= cap (bucket a chunk of that capacity serves).
int FloorBucket(size_t cap) { return std::bit_width(cap) - 1; }

/// One thread's freelists. Only ever touched by its owning thread.
struct Arena {
  std::vector<std::vector<float>> buckets[kNumBuckets];

  ~Arena() {
    int64_t freed = 0;
    for (auto& bucket : buckets) {
      for (auto& v : bucket) {
        freed += static_cast<int64_t>(v.capacity() * sizeof(float));
      }
    }
    if (freed > 0) AddRetainedBytes(-freed);
  }
};

/// The calling thread's arena, or nullptr once it has been destroyed
/// (thread exit / static teardown) — callers then fall back to the plain
/// allocator. The raw pointer is trivially destructible, so reading it after
/// Holder's destructor ran (which nulls it) is safe.
Arena* ThisArena() {
  thread_local struct Holder {
    Arena* arena = new Arena();
    ~Holder() {
      delete arena;
      arena = nullptr;
    }
  } holder;
  return holder.arena;
}

}  // namespace

std::vector<float> Workspace::AcquireVec(Index n) {
  const size_t want = static_cast<size_t>(n < 0 ? 0 : n);
  if (want == 0) return {};  // nothing to recycle or count
  Arena* arena = ThisArena();
  const int b = CeilBucket(want);
  if (arena != nullptr && b < kNumBuckets && !arena->buckets[b].empty()) {
    std::vector<float> v = std::move(arena->buckets[b].back());
    arena->buckets[b].pop_back();
    AddRetainedBytes(-static_cast<int64_t>(v.capacity() * sizeof(float)));
    g_reuse_hits.fetch_add(1, std::memory_order_relaxed);
    Metrics().reuse_hits->Increment();
    v.clear();
    v.resize(want);  // value-init: zero-filled, like std::vector<float>(n)
    return v;
  }
  g_misses.fetch_add(1, std::memory_order_relaxed);
  Metrics().misses->Increment();
  std::vector<float> v;
  // Reserve the full bucket so the chunk's capacity files back into bucket
  // `b` on Recycle — the same bucket this size acquires from. A plain
  // vector(want) would have capacity `want`, land one bucket *down*, and
  // never be found again by an equal-sized request.
  if (b < kNumBuckets) v.reserve(size_t{1} << b);
  v.resize(want);
  return v;
}

void Workspace::Recycle(std::vector<float>&& v) {
  if (v.capacity() == 0) return;
  std::vector<float> victim = std::move(v);
  g_recycles.fetch_add(1, std::memory_order_relaxed);
  Metrics().recycles->Increment();
  Arena* arena = ThisArena();
  const size_t cap_floats = victim.capacity();
  const int b = FloorBucket(cap_floats);
  const size_t max_retained =
      cap_floats <= kSmallBucketFloats ? kSmallBucketCap : kLargeBucketCap;
  if (arena == nullptr || b >= kNumBuckets ||
      arena->buckets[b].size() >= max_retained) {
    g_evictions.fetch_add(1, std::memory_order_relaxed);
    Metrics().evictions->Increment();
    return;  // victim frees normally
  }
  AddRetainedBytes(static_cast<int64_t>(cap_floats * sizeof(float)));
  arena->buckets[b].push_back(std::move(victim));
}

Workspace::Stats Workspace::GlobalStats() {
  Stats s;
  s.reuse_hits = g_reuse_hits.load(std::memory_order_relaxed);
  s.misses = g_misses.load(std::memory_order_relaxed);
  s.recycles = g_recycles.load(std::memory_order_relaxed);
  s.evictions = g_evictions.load(std::memory_order_relaxed);
  s.bytes_in_use = g_bytes_in_use.load(std::memory_order_relaxed);
  return s;
}

void Workspace::TrimThisThread() {
  Arena* arena = ThisArena();
  if (arena == nullptr) return;
  int64_t freed = 0;
  for (auto& bucket : arena->buckets) {
    for (auto& v : bucket) {
      freed += static_cast<int64_t>(v.capacity() * sizeof(float));
    }
    bucket.clear();
  }
  if (freed > 0) AddRetainedBytes(-freed);
}

}  // namespace cews::nn
