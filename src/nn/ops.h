// Differentiable tensor operations.
//
// Every op returns a fresh tensor; when grad mode is on and any input
// requires grad, the result carries a backward closure that accumulates
// gradients into its parents. All backwards are verified against finite
// differences in tests/nn_grad_check_test.cc.
#ifndef CEWS_NN_OPS_H_
#define CEWS_NN_OPS_H_

#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace cews::nn {

/// Elementwise sum; shapes must match.
Tensor Add(const Tensor& a, const Tensor& b);
/// Elementwise difference; shapes must match.
Tensor Sub(const Tensor& a, const Tensor& b);
/// Elementwise product; shapes must match.
Tensor Mul(const Tensor& a, const Tensor& b);
/// Adds a scalar to every element.
Tensor AddScalar(const Tensor& a, float s);
/// Multiplies every element by a scalar.
Tensor MulScalar(const Tensor& a, float s);
/// Elementwise negation.
Tensor Neg(const Tensor& a);

/// Adds bias vector b of shape [D] to every row of x of shape [N, D].
Tensor AddBias(const Tensor& x, const Tensor& b);

/// Matrix product of a [N, K] and b [K, M] -> [N, M].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Elementwise max(x, 0).
Tensor Relu(const Tensor& x);
/// Elementwise hyperbolic tangent.
Tensor Tanh(const Tensor& x);
/// Elementwise logistic sigmoid.
Tensor Sigmoid(const Tensor& x);
/// Elementwise exponential.
Tensor Exp(const Tensor& x);
/// Elementwise natural log; inputs must be strictly positive.
Tensor Log(const Tensor& x);
/// Elementwise square.
Tensor Square(const Tensor& x);
/// Elementwise clamp into [lo, hi]; gradient flows only in the interior.
Tensor Clip(const Tensor& x, float lo, float hi);
/// Elementwise minimum; the smaller input receives the gradient (ties -> a).
Tensor Min(const Tensor& a, const Tensor& b);
/// Elementwise maximum; the larger input receives the gradient (ties -> a).
Tensor Max(const Tensor& a, const Tensor& b);

/// Softmax over the last dimension (numerically stabilized).
Tensor Softmax(const Tensor& x);
/// Log-softmax over the last dimension (numerically stabilized).
Tensor LogSoftmax(const Tensor& x);

/// Sum of all elements -> scalar.
Tensor Sum(const Tensor& x);
/// Mean of all elements -> scalar.
Tensor Mean(const Tensor& x);
/// Sums out the last dimension: [..., D] -> [...].
Tensor SumLastDim(const Tensor& x);

/// Reinterprets x with a new shape of equal element count.
Tensor Reshape(const Tensor& x, const Shape& shape);

/// Concatenates along the last dimension; leading dims must match.
Tensor Concat(const Tensor& a, const Tensor& b);

/// Picks x[row, idx[row]] along the last dimension: [..., D] with one index
/// per leading row -> shape [...]. Used for log-prob lookup of taken actions.
Tensor GatherLastDim(const Tensor& x, const std::vector<Index>& idx);

/// GatherLastDim whose indices live behind a shared handle the caller may
/// rewrite (same length, in-range) between graph replays — the expression
/// graph's index-input mechanism. Bounds are re-CHECKed on every replay.
Tensor GatherLastDim(const Tensor& x,
                     std::shared_ptr<const std::vector<Index>> idx);

/// Gradient-checkpoint marker (nn/graph.h): inside a graph recording, marks
/// the step producing `t` as a segment boundary — with CEWS_NN_CKPT=1 the
/// segment before it is dropped after forward and recomputed during
/// backward. Identity (returns `t` unchanged) in every mode.
Tensor Checkpoint(const Tensor& t);

/// 2-D convolution. x: [N, C, H, W], w: [O, C, KH, KW], optional bias [O]
/// (pass an undefined Tensor for no bias). Zero padding.
Tensor Conv2d(const Tensor& x, const Tensor& w, const Tensor& bias,
              int stride, int padding);

/// Layer normalization over all non-batch dims of x [N, ...]; gamma/beta are
/// flat [features] where features = numel/N.
Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps = 1e-5f);

/// Looks up rows of `table` [V, D] at `ids` -> [ids.size(), D].
Tensor EmbeddingLookup(const Tensor& table, const std::vector<Index>& ids);

/// Mean squared error between pred and target (same shape) -> scalar.
Tensor MseLoss(const Tensor& pred, const Tensor& target);

/// Elementwise Huber penalty of x: 0.5 x^2 for |x| <= delta, else
/// delta (|x| - 0.5 delta). Quadratic near zero, linear in the tails —
/// the robust value/TD loss used by the DQN baseline.
Tensor Huber(const Tensor& x, float delta);

/// Mean Huber loss between pred and target -> scalar.
Tensor HuberLoss(const Tensor& pred, const Tensor& target,
                 float delta = 1.0f);

inline Tensor operator+(const Tensor& a, const Tensor& b) { return Add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return Sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return Mul(a, b); }
inline Tensor operator*(const Tensor& a, float s) { return MulScalar(a, s); }
inline Tensor operator*(float s, const Tensor& a) { return MulScalar(a, s); }
inline Tensor operator-(const Tensor& a) { return Neg(a); }

}  // namespace cews::nn

#endif  // CEWS_NN_OPS_H_
