// cews::nn::graph — compiled expression graphs over the op layer (ops.h).
//
// The tape autograd rebuilds every node, closure and transient buffer from
// scratch on each training step. This module makes that structure static,
// following marian's expression-graph design (Node with memoize_, graph-owned
// tensor allocation) and FreeTensor's recompute-then-grad segment transform:
//
//  * Record/replay: between BeginRecording() and EndRecording(), every op
//    registers its forward thunk alongside the tensor it produced (the op
//    still executes eagerly, so the recording pass doubles as the first
//    forward). The finished CompiledGraph replays the whole forward DAG with
//    plain std::function calls — no node construction, no shape checks, no
//    per-op workspace bucket lookups.
//  * Placeholders: leaves the caller rewrites before each replay
//    (MarkPlaceholder). Everything else that is not a parameter is treated
//    as a constant.
//  * Memoization: steps whose transitive inputs are all constants are run
//    once at record time and skipped on every replay (marian's memoize_).
//  * Static memory planning: a liveness pass assigns every non-persistent
//    intermediate (activations and kernel scratch alike) a fixed offset in
//    one graph-owned arena, with first-fit slot sharing between
//    liveness-disjoint buffers. Replaces the per-op pow2-bucket workspace
//    on the hot path.
//  * Gradient checkpointing (CEWS_NN_CKPT=1): nn::Checkpoint(t) marks
//    segment boundaries; interiors of a segment die at the segment's end of
//    forward and are recomputed (forward thunks re-run) just before the
//    segment's backward sweep, shrinking peak activation memory.
//
// Equivalence contract: replayed forwards run the very thunks the tape mode
// executes, backward runs the very closures the tape records, in the same
// descending-creation order Tensor::Backward() uses (segment-grouped under
// checkpointing, which preserves that global order). Tape, graph replay and
// checkpointed replay are therefore bitwise-identical — enforced by
// tests/nn_graph_test.cc and tests/agents_graph_equivalence_test.cc.
//
// Threading: recordings and CompiledGraphs are thread-confined, exactly like
// the tape (each employee thread compiles and replays its own graphs).
//
// Metrics (cews::obs): nn.graph.cache_hits / cache_misses (shape-signature
// cache, counted by callers via NoteCacheHit/Miss), nn.graph.plan_bytes
// (arena bytes planned, cumulative), nn.graph.calls (replays),
// nn.graph.recompute_ns (checkpoint recompute time, ProfileTable row), and
// the nn.graph.peak_arena_bytes gauge (largest arena planned so far).
#ifndef CEWS_NN_GRAPH_H_
#define CEWS_NN_GRAPH_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "nn/tensor.h"

namespace cews::nn::graph {

/// True when CEWS_NN_GRAPH is set (read per call so tests can toggle it):
/// agents compile and replay expression graphs instead of re-taping.
bool GraphModeEnabled();

/// True when CEWS_NN_CKPT is set: recordings honor nn::Checkpoint()
/// boundaries and recompute segment interiors during backward.
bool CheckpointingEnabled();

/// True while this thread is recording a graph.
bool Recording();

/// Lifetime class of a kernel scratch buffer relative to its op.
enum class BufLife {
  kFwd,   ///< Live only inside the forward thunk (packed GEMM panels).
  kSpan,  ///< Written by forward, read by the op's backward (im2col
          ///< columns, LayerNorm row statistics).
  kBwd,   ///< Live only inside the backward closure (gradient scratch).
};

/// Kernel scratch registered with the recording so the planner can fold it
/// into the arena. Before planning (and on the recording pass itself) the
/// storage is an owned workspace vector; after planning, `ptr` points into
/// the graph arena. Thunks capture the shared handle and call data().
struct OpBuf {
  std::vector<float> owned;
  float* ptr = nullptr;
  Index size = 0;
  BufLife life = BufLife::kFwd;
  std::shared_ptr<void> keepalive;  // arena pin once planned

  /// Recycles still-owned storage into the workspace (planned bufs own
  /// nothing by then).
  ~OpBuf();

  float* data() { return ptr; }
  const float* data() const { return ptr; }
};

/// Plain workspace-backed OpBuf outside any recording (eager ops that share
/// one scratch between their forward and backward closure).
std::shared_ptr<OpBuf> LocalBuf(Index n);

/// Allocates (zero-filled) scratch for the op currently being recorded and
/// registers it for arena planning. CHECK-fails outside a recording — eager
/// ops use the workspace instead.
std::shared_ptr<OpBuf> AllocBuf(Index n, BufLife life);

class CompiledGraph;
using GraphPtr = std::shared_ptr<CompiledGraph>;

/// Starts recording on this thread. CHECK-fails if one is active.
void BeginRecording();

/// Finishes the recording: runs memoization, segmentation, liveness
/// planning, binds every planned buffer into the arena, and wires `root`
/// (the scalar loss; may be undefined for forward-only graphs) to delegate
/// Tensor::Backward() to the graph. The recording pass already executed
/// every op eagerly, so the returned graph's tensors hold valid outputs and
/// the first Backward() may run without another Forward().
GraphPtr EndRecording(const Tensor& root);

/// Discards the active recording (error paths); recorded tensors stay valid
/// plain tape tensors.
void AbandonRecording();

/// Marks a leaf the caller rewrites before each replay. Placeholders are
/// never memoized away.
void MarkPlaceholder(const Tensor& t);

/// Marks a recorded tensor as externally read between replays (loss terms a
/// caller reports, policy outputs a sampler consumes): its storage stays
/// resident instead of joining the arena slot-sharing.
void Retain(const Tensor& t);

/// Marks the step that produced `t` as a checkpoint segment boundary (used
/// by nn::Checkpoint; no-op outside a recording).
void MarkBoundary(const Tensor& t);

/// Internal: registers one recorded op. `inputs` are all op inputs
/// (including non-tracked ones — liveness and memoization need them);
/// `fwd` recomputes out's data from its inputs' current data.
void RecordStep(const Tensor& out,
                std::vector<std::shared_ptr<TensorImpl>> inputs,
                std::function<void()> fwd);

/// Op-side hook: no-ops (without constructing a std::function) unless a
/// recording is active.
template <typename F>
inline void Record(const Tensor& out, std::initializer_list<Tensor> inputs,
                   F&& fwd) {
  if (!Recording()) return;
  std::vector<std::shared_ptr<TensorImpl>> ins;
  ins.reserve(inputs.size());
  for (const Tensor& t : inputs) {
    if (t.defined()) ins.push_back(t.impl());
  }
  RecordStep(out, std::move(ins), std::function<void()>(std::forward<F>(fwd)));
}

/// Shape-signature cache accounting (callers own their caches; these feed
/// the shared nn.graph.cache_* counters).
void NoteCacheHit();
void NoteCacheMiss();

/// A finished recording: the forward step list, the planned arena, and the
/// backward schedule. Thread-confined, like the tape.
class CompiledGraph {
 public:
  ~CompiledGraph();

  /// Replays the forward pass: runs every non-memoized forward thunk in
  /// creation order against the current placeholder/parameter data.
  void Forward();

  /// Runs backward from the root: zeroes interior gradients, seeds the
  /// root, recomputes checkpoint segments when enabled, and runs the
  /// recorded closures in descending creation order. Leaf (parameter)
  /// gradients accumulate across calls, exactly like the tape. CHECK-fails
  /// on a second Backward() without an intervening Forward(), and on
  /// forward-only graphs.
  void Backward();

  const Tensor& root() const { return root_; }

  /// Planned arena footprint in bytes (slot-shared intermediates+scratch).
  Index arena_bytes() const;
  /// Bytes of step outputs pinned resident (boundaries, retained, memoized,
  /// cross-segment promotions).
  Index persistent_bytes() const;

  int num_steps() const { return static_cast<int>(steps_.size()); }
  int num_memoized() const { return num_memoized_; }
  int num_segments() const { return num_segments_; }
  /// True when checkpoint segmentation is active (recompute scheduled).
  bool checkpointing() const { return checkpointing_; }

 private:
  friend void BeginRecording();
  friend GraphPtr EndRecording(const Tensor& root);
  friend void AbandonRecording();
  friend void MarkPlaceholder(const Tensor& t);
  friend void Retain(const Tensor& t);
  friend void MarkBoundary(const Tensor& t);
  friend void RecordStep(const Tensor&,
                         std::vector<std::shared_ptr<TensorImpl>>,
                         std::function<void()>);
  friend std::shared_ptr<OpBuf> AllocBuf(Index n, BufLife life);

  struct Step {
    std::shared_ptr<TensorImpl> out;
    std::function<void()> fwd;
    std::vector<std::shared_ptr<TensorImpl>> inputs;
    std::vector<std::shared_ptr<OpBuf>> bufs;
    bool boundary = false;    // checkpoint marker lands on this step
    bool retained = false;    // externally read between replays
    bool memoized = false;    // constant subgraph: run once, skip on replay
    bool persistent = false;  // data stays owned/resident, never arena-shared
    bool reachable = false;   // on a tape path from the root
    bool recomputed = false;  // re-run during its segment's backward
    int segment = 0;
  };

  CompiledGraph() = default;
  void Finalize(const Tensor& root);
  void Plan();

  std::vector<Step> steps_;
  std::vector<std::shared_ptr<OpBuf>> pending_bufs_;  // recording only
  Tensor root_;
  std::shared_ptr<std::vector<float>> arena_;
  Index persistent_floats_ = 0;
  int num_memoized_ = 0;
  int num_segments_ = 1;
  bool checkpointing_ = false;
  bool fwd_since_bwd_ = false;
};

}  // namespace cews::nn::graph

#endif  // CEWS_NN_GRAPH_H_
