#include "agents/trainer_core.h"

#include <utility>

#include "agents/eval.h"
#include "agents/trainer_obs.h"
#include "common/check.h"
#include "obs/trace.h"

namespace cews::agents {

VecRolloutResult RunVecRollout(const PolicyNet& net, env::VecEnv& vec,
                               const env::StateEncoder& encoder, Rng& rng,
                               const VecRolloutOptions& options,
                               StepObserver* observer,
                               std::vector<RewardNormalizer>* normalizers) {
  CEWS_CHECK(!vec.auto_reset())
      << "RunVecRollout runs bounded episodes; build the VecEnv with "
         "auto_reset off";
  const int n = vec.size();
  if (normalizers != nullptr) {
    CEWS_CHECK_EQ(static_cast<int>(normalizers->size()), n)
        << "need one RewardNormalizer per environment instance";
  }
  CEWS_TRACE_SCOPE("trainer.rollout");
  TrainerPhaseMetrics& phase_metrics = TrainerMetrics();
  obs::ScopedTimerNs rollout_timer(phase_metrics.rollout_ns);

  vec.Reset();
  VecRolloutResult result;
  result.buffers.resize(static_cast<size_t>(n));
  result.extrinsic_sums.assign(static_cast<size_t>(n), 0.0);
  result.intrinsic_sums.assign(static_cast<size_t>(n), 0.0);

  const size_t stride = static_cast<size_t>(encoder.StateSize());
  std::vector<float> states = encoder.EncodeBatch(vec.EnvPtrs());
  std::vector<std::vector<env::WorkerAction>> actions(
      static_cast<size_t>(n));
  while (!vec.AllDone()) {
    std::vector<ActResult> acts;
    {
      CEWS_TRACE_SCOPE("trainer.act");
      obs::ScopedTimerNs act_timer(phase_metrics.act_ns);
      acts = SamplePolicyBatch(net, states, n, rng, /*deterministic=*/false);
      phase_metrics.act_batches->Increment();
      phase_metrics.act_env_steps->Add(static_cast<uint64_t>(n));
    }
    if (observer != nullptr) {
      for (int i = 0; i < n; ++i) {
        observer->BeforeStep(i, vec.env(i), acts[static_cast<size_t>(i)]);
      }
    }
    for (int i = 0; i < n; ++i) {
      actions[static_cast<size_t>(i)] =
          std::move(acts[static_cast<size_t>(i)].actions);
    }
    const env::VecEnv::StepResults step_results = vec.Step(actions);
    result.env_steps += n;
    std::vector<float> next_states = encoder.EncodeBatch(vec.EnvPtrs());

    for (int i = 0; i < n; ++i) {
      ActResult& act = acts[static_cast<size_t>(i)];
      const env::StepResult& step =
          step_results.per_env[static_cast<size_t>(i)];
      const double r_ext =
          options.sparse_reward ? step.sparse_reward : step.dense_reward;
      const double r_int =
          observer != nullptr
              ? observer->IntrinsicReward(
                    i, vec.env(i), act,
                    next_states.data() + static_cast<size_t>(i) * stride)
              : 0.0;

      Transition t;
      t.state.assign(
          states.begin() + static_cast<ptrdiff_t>(i * stride),
          states.begin() + static_cast<ptrdiff_t>((i + 1) * stride));
      t.moves = std::move(act.moves);
      t.charges = std::move(act.charges);
      t.log_prob = act.log_prob;
      t.value = act.value;
      const float raw_reward = static_cast<float>(
          options.add_intrinsic_to_reward ? r_ext + r_int : r_ext);
      t.reward = normalizers != nullptr
                     ? (*normalizers)[static_cast<size_t>(i)].Normalize(
                           raw_reward)
                     : options.reward_scale * raw_reward;
      t.done = step.done;
      result.buffers[static_cast<size_t>(i)].Add(std::move(t));
      result.extrinsic_sums[static_cast<size_t>(i)] += r_ext;
      result.intrinsic_sums[static_cast<size_t>(i)] += r_int;
    }
    states = std::move(next_states);
  }
  if (normalizers != nullptr) {
    for (RewardNormalizer& norm : *normalizers) norm.EndEpisode();
  }
  return result;
}

RolloutBuffer MergeBuffers(std::vector<RolloutBuffer> buffers) {
  CEWS_CHECK(!buffers.empty()) << "MergeBuffers on an empty buffer list";
  // All inputs must share one feature schema (encoded-state size and worker
  // count): a mismatched buffer would survive the merge silently and only
  // mis-pack downstream, inside GatherBatch. Checked here, at the seam.
  size_t total = 0;
  size_t state_size = 0, num_workers = 0;
  bool schema_set = false;
  for (const RolloutBuffer& b : buffers) {
    total += b.size();
    if (b.empty()) continue;
    if (!schema_set) {
      state_size = b[0].state.size();
      num_workers = b[0].moves.size();
      schema_set = true;
      continue;
    }
    CEWS_CHECK_EQ(b[0].state.size(), state_size)
        << "MergeBuffers: encoded-state size mismatch across buffers";
    CEWS_CHECK_EQ(b[0].moves.size(), num_workers)
        << "MergeBuffers: worker count mismatch across buffers";
  }
  RolloutBuffer merged = std::move(buffers.front());
  if (buffers.size() > 1) merged.Reserve(total);
  for (size_t i = 1; i < buffers.size(); ++i) {
    merged.Append(std::move(buffers[i]));
  }
  return merged;
}

}  // namespace cews::agents
