#include "agents/quant_policy.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "nn/gemm.h"
#include "nn/gemm_int8.h"
#include "nn/tensor.h"
#include "nn/workspace.h"

namespace cews::agents {

namespace {

using nn::Index;
using nn::ScopedVec;
using nn::quant::QuantizedParams;
using nn::quant::QuantizedTensor;
namespace gemm = nn::gemm;

/// Output side length of a 3x3 conv with the given stride and padding 1
/// (mirrors cnn_trunk.cc).
Index ConvOut(Index in, int stride) { return (in + 2 * 1 - 3) / stride + 1; }

/// LayerNorm epsilon of nn::LayerNorm (ops.cc LayerNormOp default).
constexpr float kLnEps = 1e-5f;

/// Geometry of one conv stage of the trunk (3x3, padding 1).
struct StageShape {
  Index c, h;      // input [c, h, h]
  Index oc, oh;    // output [oc, oh, oh]
  int stride;
  Index ck2() const { return c * 3 * 3; }
  Index ohow() const { return oh * oh; }
};

/// Unfolds one [c, h, h] image into cols [ck2, ohow] — the exact Im2Col of
/// nn/ops.cc (anonymous namespace there, so replicated), specialized to the
/// trunk's square 3x3 / padding-1 convs. Padding taps become zeros.
void Im2Col3x3(const StageShape& s, const float* img, float* cols) {
  const Index ohow = s.ohow();
  for (Index ic = 0; ic < s.c; ++ic) {
    const float* plane = img + ic * s.h * s.h;
    for (Index ky = 0; ky < 3; ++ky) {
      for (Index kx = 0; kx < 3; ++kx) {
        float* row = cols + ((ic * 3 + ky) * 3 + kx) * ohow;
        for (Index y = 0; y < s.oh; ++y) {
          const Index iy = y * s.stride - 1 + ky;
          float* dst = row + y * s.oh;
          if (iy < 0 || iy >= s.h) {
            std::fill(dst, dst + s.oh, 0.0f);
            continue;
          }
          const float* src = plane + iy * s.h;
          for (Index x = 0; x < s.oh; ++x) {
            const Index ixp = x * s.stride - 1 + kx;
            dst[x] = (ixp < 0 || ixp >= s.h) ? 0.0f : src[ixp];
          }
        }
      }
    }
  }
}

/// One conv-LN-ReLU block over the whole batch, int8 GEMM per image:
/// im2col -> per-output-pixel activation quantize -> pack -> Int8DotRows
/// with the quantized conv weight on the A side, then fp32 LayerNorm over
/// the image's oc*oh*oh features (double mean/var, LayerNormBody semantics)
/// fused with ReLU. Images are independent, so parallelizing over them is
/// partition-invariant; the per-image work is bitwise-fixed.
void ConvLnReluStage(const StageShape& s, Index batch,
                     const QuantizedTensor& wq, const float* bias,
                     const float* ln_g, const float* ln_b, const float* in,
                     float* out) {
  CEWS_CHECK(wq.channels == s.oc && wq.per_channel == s.ck2());
  const Index ck2 = s.ck2();
  const Index ohow = s.ohow();
  const Index in_img = s.c * s.h * s.h;
  const Index out_img = s.oc * ohow;
  const Index f = out_img;  // LayerNorm feature width.
  gemm::ParallelKernel(batch, 2 * s.oc * ck2 * ohow, [&](Index n0, Index n1) {
    // Per-thread scratch: the Workspace arena is thread_local, so each
    // worker's buffers are private and recycled across its images.
    ScopedVec cols(ck2 * ohow);
    ScopedVec col_scales(ohow);
    nn::AlignedScopedBytes panel(gemm::Int8PanelBytes(ck2, ohow));
    for (Index img = n0; img < n1; ++img) {
      Im2Col3x3(s, in + img * in_img, cols.data());
      gemm::QuantizePackColsInt8(ck2, ohow, cols.data(), ohow, panel.data(),
                                 col_scales.data());
      float* o = out + img * out_img;
      gemm::Int8DotRows(0, s.oc, ohow, ck2, wq.rows.data(), ck2,
                        wq.scales.data(), panel.data(), col_scales.data(),
                        /*bias_row=*/bias, /*bias_col=*/nullptr, o, ohow);
      // Fused LayerNorm + ReLU over this image's flattened activation.
      double mu = 0.0;
      for (Index j = 0; j < f; ++j) mu += o[j];
      mu /= static_cast<double>(f);
      double var = 0.0;
      for (Index j = 0; j < f; ++j) {
        const double d = o[j] - mu;
        var += d * d;
      }
      var /= static_cast<double>(f);
      const float is = 1.0f / std::sqrt(static_cast<float>(var) + kLnEps);
      for (Index j = 0; j < f; ++j) {
        const float xh = (o[j] - static_cast<float>(mu)) * is;
        o[j] = std::max(0.0f, xh * ln_g[j] + ln_b[j]);
      }
    }
  });
}

/// xW + b through the pre-packed int8 panel: quantize activation rows, run
/// the prepacked kernel with the layer bias on the column side.
void QuantLinear(Index m, Index k, Index n, const float* x,
                 const QuantizedTensor& wq, const float* bias, float* out) {
  CEWS_CHECK(wq.channels == n && wq.per_channel == k);
  CEWS_CHECK(!wq.packed.empty());
  nn::AlignedScopedBytes xq(m * k);
  ScopedVec sx(m);
  gemm::QuantizeRowsInt8(m, k, x, k, xq.data(), sx.data());
  gemm::Int8GemmPrepacked(m, n, k, xq.data(), k, sx.data(), wq.packed.data(),
                          wq.scales.data(), /*bias_row=*/nullptr,
                          /*bias_col=*/bias, out, n);
}

/// Plain fp32 xW + b for the heads: tiny n, sequential accumulation —
/// deterministic and exact w.r.t. the stored dense weights.
void Fp32Linear(Index m, Index k, Index n, const float* x, const float* w,
                const float* bias, float* out) {
  for (Index i = 0; i < m; ++i) {
    const float* row = x + i * k;
    float* orow = out + i * n;
    for (Index j = 0; j < n; ++j) orow[j] = bias[j];
    for (Index l = 0; l < k; ++l) {
      const float xv = row[l];
      const float* wrow = w + l * n;
      for (Index j = 0; j < n; ++j) orow[j] += xv * wrow[j];
    }
  }
}

/// Index of the first maximum (SampleFromLogits' deterministic rule).
int Argmax(const float* v, int n) {
  int best = 0;
  float mx = v[0];
  for (int i = 1; i < n; ++i) {
    if (v[i] > mx) {
      mx = v[i];
      best = i;
    }
  }
  return best;
}

}  // namespace

nn::quant::QuantizedParams QuantizePolicyParams(
    const std::vector<nn::Tensor>& params) {
  CEWS_CHECK_EQ(params.size(), 20u);
  // Quantize exactly the serve-hot GEMM weights: conv1/conv2/conv3 kernels
  // and the trunk FC. Heads (indices 14, 16, 18), biases and LN params stay
  // dense fp32.
  std::vector<uint8_t> flags(params.size(), 0);
  flags[0] = flags[4] = flags[8] = flags[12] = 1;
  return nn::quant::QuantizeParams(params, &flags);
}

QuantPolicyOutput QuantPolicyForward(const PolicyNetConfig& config,
                                     const QuantizedParams& qp,
                                     const float* states, int batch) {
  CEWS_CHECK_GT(batch, 0);
  CEWS_CHECK_EQ(qp.entries.size(), 20u);

  const Index g = config.grid;
  const Index s1 = ConvOut(g, 1);
  const Index s2 = ConvOut(s1, 2);
  const Index s3 = ConvOut(s2, 2);
  const StageShape stage1{config.in_channels, g, config.conv1_channels, s1, 1};
  const StageShape stage2{config.conv1_channels, s1, config.conv2_channels,
                          s2, 2};
  const StageShape stage3{config.conv2_channels, s2, config.conv3_channels,
                          s3, 2};
  const Index flat = config.conv3_channels * s3 * s3;
  const Index feat = config.feature_dim;
  const Index n_move =
      static_cast<Index>(config.num_workers) * config.num_moves;
  const Index n_charge = static_cast<Index>(config.num_workers) * 2;

  // Parameter bundle layout = PolicyNet::Parameters() order:
  // trunk (conv1 w/b, ln1 g/b, conv2 w/b, ln2 g/b, conv3 w/b, ln3 g/b,
  // fc w/b) then move, charge, value head w/b pairs.
  auto quantized = [&qp](size_t i) -> const QuantizedTensor& {
    CEWS_CHECK(qp.entries[i].quantized);
    return qp.entries[i].q;
  };
  auto dense = [&qp](size_t i) -> const float* {
    CEWS_CHECK(!qp.entries[i].quantized);
    return qp.entries[i].dense.data();
  };

  const Index b = batch;
  ScopedVec act1(b * stage1.oc * stage1.ohow());
  ScopedVec act2(b * stage2.oc * stage2.ohow());
  ScopedVec act3(b * stage3.oc * stage3.ohow());
  ConvLnReluStage(stage1, b, quantized(0), dense(1), dense(2), dense(3),
                  states, act1.data());
  ConvLnReluStage(stage2, b, quantized(4), dense(5), dense(6), dense(7),
                  act1.data(), act2.data());
  ConvLnReluStage(stage3, b, quantized(8), dense(9), dense(10), dense(11),
                  act2.data(), act3.data());

  // Trunk FC + ReLU. act3 is already the flattened [b, flat] matrix.
  ScopedVec feature(b * feat);
  QuantLinear(b, flat, feat, act3.data(), quantized(12), dense(13),
              feature.data());
  for (Index i = 0; i < b * feat; ++i) {
    feature.data()[i] = std::max(0.0f, feature.data()[i]);
  }

  // Heads run fp32 on their dense weights (see QuantizePolicyParams): they
  // are a sliver of the forward cost and own the argmax decision, so the
  // only int8 error reaching the logits is the trunk's feature perturbation.
  QuantPolicyOutput out;
  out.move_logits.resize(static_cast<size_t>(b * n_move));
  out.charge_logits.resize(static_cast<size_t>(b * n_charge));
  out.value.resize(static_cast<size_t>(b));
  Fp32Linear(b, feat, n_move, feature.data(), dense(14), dense(15),
             out.move_logits.data());
  Fp32Linear(b, feat, n_charge, feature.data(), dense(16), dense(17),
             out.charge_logits.data());
  Fp32Linear(b, feat, 1, feature.data(), dense(18), dense(19),
             out.value.data());
  return out;
}

AgreementStats ActionAgreementOnStates(const PolicyNet& net,
                                       const QuantizedParams& qp,
                                       const std::vector<float>& states,
                                       int batch) {
  const PolicyNetConfig& cfg = net.config();
  CEWS_CHECK_GT(batch, 0);
  CEWS_CHECK_EQ(static_cast<int>(states.size()),
                batch * cfg.in_channels * cfg.grid * cfg.grid);

  // fp32 reference logits, copied out before anything else runs (graph-mode
  // outputs are invalidated by the net's next no-grad forward).
  std::vector<float> ref_move, ref_charge;
  {
    nn::NoGradGuard no_grad;
    const nn::Tensor x = nn::Tensor::FromData(
        {batch, cfg.in_channels, cfg.grid, cfg.grid}, states);
    const PolicyOutput out = net.Forward(x);
    ref_move.assign(out.move_logits.data(),
                    out.move_logits.data() + out.move_logits.numel());
    ref_charge.assign(out.charge_logits.data(),
                      out.charge_logits.data() + out.charge_logits.numel());
  }

  const QuantPolicyOutput q =
      QuantPolicyForward(cfg, qp, states.data(), batch);

  AgreementStats stats;
  for (int i = 0; i < batch; ++i) {
    for (int w = 0; w < cfg.num_workers; ++w) {
      const int moff = (i * cfg.num_workers + w) * cfg.num_moves;
      const int coff = (i * cfg.num_workers + w) * 2;
      stats.decisions += 2;
      if (Argmax(ref_move.data() + moff, cfg.num_moves) ==
          Argmax(q.move_logits.data() + moff, cfg.num_moves)) {
        ++stats.matched;
      }
      if (Argmax(ref_charge.data() + coff, 2) ==
          Argmax(q.charge_logits.data() + coff, 2)) {
        ++stats.matched;
      }
    }
  }
  return stats;
}

}  // namespace cews::agents
