// Replay buffer D of Algorithm 1 plus generalized advantage estimation.
#ifndef CEWS_AGENTS_ROLLOUT_H_
#define CEWS_AGENTS_ROLLOUT_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace cews::agents {

/// One stored experience [s_t, u_t, v_t, r_t] (Algorithm 1, line 14) plus
/// the behavior policy's log-prob and value estimate for PPO.
struct Transition {
  std::vector<float> state;  // encoded s_t
  std::vector<int> moves;    // v_t^w per worker
  std::vector<int> charges;  // u_t^w per worker (0/1)
  float log_prob = 0.0f;     // log pi_old(a_t | s_t), joint over workers
  float value = 0.0f;        // V(s_t) under the behavior policy
  float reward = 0.0f;       // r_t = r^int + r^ext (Eqn 10)
  bool done = false;
};

/// Episode replay buffer; cleared at the start of each episode
/// (Algorithm 1, line 3).
class RolloutBuffer {
 public:
  void Add(Transition t) { transitions_.push_back(std::move(t)); }
  void Clear();
  size_t size() const { return transitions_.size(); }
  bool empty() const { return transitions_.empty(); }
  const Transition& operator[](size_t i) const { return transitions_[i]; }

  /// Computes GAE(gamma, lambda) advantages and discounted returns G_t
  /// (Eqn 11). `last_value` bootstraps a truncated (non-done) final step.
  void ComputeAdvantages(float gamma, float gae_lambda, float last_value);

  /// Advantage estimates A_t; valid after ComputeAdvantages.
  const std::vector<float>& advantages() const { return advantages_; }
  /// Return targets G_t for the value loss; valid after ComputeAdvantages.
  const std::vector<float>& returns() const { return returns_; }

  /// Draws a minibatch of `batch` indices: a random permutation prefix when
  /// batch <= size, otherwise sampling with replacement (the paper's batch
  /// sizes can exceed one episode's T transitions, Table II).
  std::vector<size_t> SampleIndices(size_t batch, Rng& rng) const;

 private:
  std::vector<Transition> transitions_;
  std::vector<float> advantages_;
  std::vector<float> returns_;
};

}  // namespace cews::agents

#endif  // CEWS_AGENTS_ROLLOUT_H_
