// Replay buffer D of Algorithm 1 plus generalized advantage estimation.
#ifndef CEWS_AGENTS_ROLLOUT_H_
#define CEWS_AGENTS_ROLLOUT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace cews::agents {

/// One stored experience [s_t, u_t, v_t, r_t] (Algorithm 1, line 14) plus
/// the behavior policy's log-prob and value estimate for PPO.
struct Transition {
  std::vector<float> state;  // encoded s_t
  std::vector<int> moves;    // v_t^w per worker
  std::vector<int> charges;  // u_t^w per worker (0/1)
  float log_prob = 0.0f;     // log pi_old(a_t | s_t), joint over workers
  float value = 0.0f;        // V(s_t) under the behavior policy
  float reward = 0.0f;       // r_t = r^int + r^ext (Eqn 10)
  bool done = false;
};

/// A packed, contiguous minibatch: the training hot path consumes these
/// flat arrays directly (PpoAgent::ComputeLoss, RndCuriosity::Loss) instead
/// of gathering transition-by-transition. `states` stacks the encoded states
/// row-major, ready to adopt as an [B, ...] tensor; the index arrays use
/// int64_t so they feed nn::GatherLastDim without conversion.
struct MiniBatch {
  int64_t batch = 0;       ///< Number of transitions B.
  int64_t state_size = 0;  ///< Flat size of one encoded state.
  int num_workers = 0;     ///< Workers W per transition.

  std::vector<float> states;           ///< [B * state_size]
  std::vector<int64_t> move_indices;   ///< [B * W]
  std::vector<int64_t> charge_indices; ///< [B * W]
  std::vector<float> log_probs;        ///< [B] behavior log pi_old
  std::vector<float> values;           ///< [B] behavior V(s_t)
  std::vector<float> rewards;          ///< [B]
  std::vector<uint8_t> dones;          ///< [B] 0/1

  /// Filled only when the source buffer had advantages computed.
  std::vector<float> advantages;  ///< [B]
  std::vector<float> returns;     ///< [B]
};

/// Episode replay buffer; cleared at the start of each episode
/// (Algorithm 1, line 3).
class RolloutBuffer {
 public:
  void Add(Transition t) { transitions_.push_back(std::move(t)); }

  /// Reconstructs a buffer from its raw parts (the distributed transport's
  /// unpack path). `advantages`/`returns` must both be empty or both hold
  /// exactly one entry per transition.
  static RolloutBuffer FromParts(std::vector<Transition> transitions,
                                 std::vector<float> advantages,
                                 std::vector<float> returns);

  /// Pre-sizes the transition (and, when advantages were computed, the
  /// advantage/return) storage for `total` entries — the merge path reserves
  /// once instead of growing through every Append.
  void Reserve(size_t total);

  /// Concatenates `other`'s transitions (and, when present, advantages /
  /// returns) after this buffer's, leaving `other` empty. Episode
  /// boundaries stay intact via the stored done flags; compute advantages
  /// per source buffer *before* appending — GAE must not bridge episodes.
  void Append(RolloutBuffer&& other);

  void Clear();
  size_t size() const { return transitions_.size(); }
  bool empty() const { return transitions_.empty(); }
  const Transition& operator[](size_t i) const { return transitions_[i]; }

  /// Computes GAE(gamma, lambda) advantages and discounted returns G_t
  /// (Eqn 11). `last_value` bootstraps a truncated (non-done) final step.
  void ComputeAdvantages(float gamma, float gae_lambda, float last_value);

  /// Advantage estimates A_t; valid after ComputeAdvantages.
  const std::vector<float>& advantages() const { return advantages_; }
  /// Return targets G_t for the value loss; valid after ComputeAdvantages.
  const std::vector<float>& returns() const { return returns_; }

  /// Draws a minibatch of `batch` indices: a random permutation prefix when
  /// batch <= size, otherwise sampling with replacement (the paper's batch
  /// sizes can exceed one episode's T transitions, Table II).
  /// CHECK-fails with a clear message on an empty buffer or batch == 0.
  std::vector<size_t> SampleIndices(size_t batch, Rng& rng) const;

  /// Packs the transitions at `idx` into one contiguous MiniBatch.
  /// CHECK-fails on an empty buffer or empty index list.
  MiniBatch GatherBatch(const std::vector<size_t>& idx) const;

  /// SampleIndices + GatherBatch: draws and packs a minibatch in one step —
  /// the update hot path of the chief-employee trainer.
  MiniBatch SampleBatch(size_t batch, Rng& rng) const;

  /// Packs every transition, in order (the async trainer's full-episode
  /// learner pass). CHECK-fails on an empty buffer.
  MiniBatch PackAll() const;

 private:
  std::vector<Transition> transitions_;
  std::vector<float> advantages_;
  std::vector<float> returns_;
};

}  // namespace cews::agents

#endif  // CEWS_AGENTS_ROLLOUT_H_
