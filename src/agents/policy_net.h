// The paper's actor-critic DNN (Fig. 1, Section V-B): the shared CNN trunk
// (cnn_trunk.h) plus a policy head producing per-worker route-planning and
// charging distributions, and a value head.
#ifndef CEWS_AGENTS_POLICY_NET_H_
#define CEWS_AGENTS_POLICY_NET_H_

#include <memory>
#include <vector>

#include "agents/cnn_trunk.h"
#include "common/rng.h"
#include "nn/module.h"

namespace cews::agents {

/// Architecture hyperparameters.
struct PolicyNetConfig {
  /// Input channels (the 3-channel state of Section V).
  int in_channels = 3;
  /// Input grid side length.
  int grid = 20;
  /// Number of workers W the centralized controller commands.
  int num_workers = 2;
  /// Number of discrete route-planning options per worker.
  int num_moves = 17;
  /// Channels of the three conv layers.
  int conv1_channels = 8;
  int conv2_channels = 16;
  int conv3_channels = 16;
  /// Width of the 1-D state feature phi(s_t).
  int feature_dim = 256;

  /// The trunk slice of this config.
  CnnTrunkConfig TrunkConfig() const {
    CnnTrunkConfig trunk;
    trunk.in_channels = in_channels;
    trunk.grid = grid;
    trunk.conv1_channels = conv1_channels;
    trunk.conv2_channels = conv2_channels;
    trunk.conv3_channels = conv3_channels;
    trunk.feature_dim = feature_dim;
    return trunk;
  }
};

/// One forward pass worth of outputs.
struct PolicyOutput {
  /// Route-planning logits, [N, W, num_moves].
  nn::Tensor move_logits;
  /// Charging-decision logits, [N, W, 2] (index 1 = charge).
  nn::Tensor charge_logits;
  /// State value V(phi(s_t)), [N].
  nn::Tensor value;
  /// The shared 1-D feature phi(s_t), [N, feature_dim].
  nn::Tensor feature;
};

/// CNN trunk + three linear heads (per-worker moves, per-worker charging,
/// state value).
class PolicyNet : public nn::Module {
 public:
  PolicyNet(const PolicyNetConfig& config, cews::Rng& rng);

  /// x: [N, in_channels, grid, grid].
  ///
  /// With CEWS_NN_GRAPH=1, no-grad forwards (acting, value bootstraps, the
  /// serve replicas) replay a compiled forward-only graph cached per
  /// (net, batch size) on each thread. The returned tensors then belong to
  /// that graph: the next same-shape no-grad Forward on the thread
  /// overwrites them, so read the outputs before forwarding again (every
  /// current caller samples/copies immediately).
  PolicyOutput Forward(const nn::Tensor& x) const;

  std::vector<nn::Tensor> Parameters() const override;

  const PolicyNetConfig& config() const { return config_; }

 private:
  /// The trunk+heads DAG itself, shared by the tape path, the serve-graph
  /// recording, and enclosing loss recordings.
  PolicyOutput ForwardImpl(const nn::Tensor& x) const;

  PolicyNetConfig config_;
  std::unique_ptr<CnnTrunk> trunk_;
  std::unique_ptr<nn::Linear> move_head_;
  std::unique_ptr<nn::Linear> charge_head_;
  std::unique_ptr<nn::Linear> value_head_;
};

}  // namespace cews::agents

#endif  // CEWS_AGENTS_POLICY_NET_H_
