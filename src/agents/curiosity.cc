#include "agents/curiosity.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace cews::agents {

SpatialCuriosity::SpatialCuriosity(const CuriosityConfig& config,
                                   uint64_t seed)
    : config_(config) {
  CEWS_CHECK_GT(config_.num_cells, 0);
  CEWS_CHECK_GT(config_.num_moves, 1);
  CEWS_CHECK_GT(config_.num_workers, 0);
  CEWS_CHECK(config_.eta >= 0.0f);
  Rng rng(seed);
  if (config_.feature == CuriosityFeature::kEmbedding) {
    embedding_ = std::make_unique<nn::Embedding>(
        config_.num_cells, config_.embed_dim, rng, /*trainable=*/false);
  }
  const int models = config_.structure == CuriosityStructure::kShared
                         ? 1
                         : config_.num_workers;
  const nn::Index in = FeatureDim() + config_.num_moves;
  for (int m = 0; m < models; ++m) {
    forward_models_.push_back(std::make_unique<nn::Mlp>(
        std::vector<nn::Index>{in, config_.hidden, FeatureDim()},
        nn::Activation::kRelu, rng));
  }
}

int SpatialCuriosity::FeatureDim() const {
  return config_.feature == CuriosityFeature::kEmbedding ? config_.embed_dim
                                                         : 2;
}

void SpatialCuriosity::WriteFeature(const PositionObs& p, float* out) const {
  if (config_.feature == CuriosityFeature::kEmbedding) {
    CEWS_CHECK_GE(p.cell, 0);
    CEWS_CHECK_LT(p.cell, config_.num_cells);
    nn::NoGradGuard no_grad;
    const nn::Tensor row = embedding_->Forward({p.cell});
    std::memcpy(out, row.data(),
                sizeof(float) * static_cast<size_t>(config_.embed_dim));
  } else {
    out[0] = p.sx;
    out[1] = p.sy;
  }
}

const nn::Mlp& SpatialCuriosity::ModelFor(int worker) const {
  if (config_.structure == CuriosityStructure::kShared) {
    return *forward_models_[0];
  }
  CEWS_CHECK_GE(worker, 0);
  CEWS_CHECK_LT(worker, static_cast<int>(forward_models_.size()));
  return *forward_models_[static_cast<size_t>(worker)];
}

double SpatialCuriosity::IntrinsicReward(int worker, const PositionObs& from,
                                         int move,
                                         const PositionObs& to) const {
  nn::NoGradGuard no_grad;
  const int f = FeatureDim();
  std::vector<float> input(static_cast<size_t>(f + config_.num_moves), 0.0f);
  WriteFeature(from, input.data());
  CEWS_CHECK_GE(move, 0);
  CEWS_CHECK_LT(move, config_.num_moves);
  input[static_cast<size_t>(f + move)] = 1.0f;
  std::vector<float> target(static_cast<size_t>(f));
  WriteFeature(to, target.data());

  const nn::Tensor pred = ModelFor(worker).Forward(
      nn::Tensor::FromData({1, f + config_.num_moves}, std::move(input)));
  const float* p = pred.data();
  double loss = 0.0;
  for (int i = 0; i < f; ++i) {
    const double d = static_cast<double>(p[i]) - target[static_cast<size_t>(i)];
    loss += d * d;
  }
  // Normalize by the feature dimension so r^int starts at O(eta) for any
  // embedding width (the paper's eta = 0.3 assumes a comparable scale).
  return config_.eta * loss / f;
}

double SpatialCuriosity::MeanIntrinsicReward(
    const std::vector<PositionObs>& from, const std::vector<int>& moves,
    const std::vector<PositionObs>& to) const {
  CEWS_CHECK_EQ(from.size(), to.size());
  CEWS_CHECK_EQ(from.size(), moves.size());
  CEWS_CHECK(!from.empty());
  double total = 0.0;
  for (size_t w = 0; w < from.size(); ++w) {
    total += IntrinsicReward(static_cast<int>(w), from[w], moves[w], to[w]);
  }
  return total / static_cast<double>(from.size());
}

nn::Tensor SpatialCuriosity::Loss(
    const std::vector<CuriositySample>& batch) const {
  CEWS_CHECK(!batch.empty());
  const int f = FeatureDim();
  const int in_dim = f + config_.num_moves;

  if (config_.structure == CuriosityStructure::kShared) {
    const nn::Index b = static_cast<nn::Index>(batch.size());
    // Feature extraction (including the frozen embedding lookups) happens
    // here, outside any graph recording: the compiled graph sees only the
    // packed float placeholders.
    std::vector<float> inputs(static_cast<size_t>(b * in_dim), 0.0f);
    std::vector<float> targets(static_cast<size_t>(b * f));
    for (nn::Index i = 0; i < b; ++i) {
      const CuriositySample& s = batch[static_cast<size_t>(i)];
      WriteFeature(s.from, inputs.data() + i * in_dim);
      inputs[static_cast<size_t>(i * in_dim + f + s.move)] = 1.0f;
      WriteFeature(s.to, targets.data() + i * f);
    }

    if (nn::graph::GraphModeEnabled() && nn::GradModeEnabled() &&
        !nn::graph::Recording()) {
      auto it = loss_graphs_.find(b);
      if (it == loss_graphs_.end()) {
        nn::graph::NoteCacheMiss();
        LossGraph g;
        g.inputs = nn::Tensor::FromData({b, in_dim}, std::move(inputs));
        g.targets = nn::Tensor::FromData({b, f}, std::move(targets));
        nn::graph::BeginRecording();
        nn::graph::MarkPlaceholder(g.inputs);
        nn::graph::MarkPlaceholder(g.targets);
        const nn::Tensor pred = forward_models_[0]->Forward(g.inputs);
        g.loss = nn::MulScalar(
            nn::Mean(nn::SumLastDim(nn::Square(nn::Sub(pred, g.targets)))),
            1.0f / static_cast<float>(f));
        g.graph = nn::graph::EndRecording(g.loss);
        it = loss_graphs_.emplace(b, std::move(g)).first;
      } else {
        nn::graph::NoteCacheHit();
        LossGraph& g = it->second;
        CEWS_CHECK_EQ(inputs.size(), g.inputs.impl()->data.size());
        std::copy(inputs.begin(), inputs.end(), g.inputs.impl()->data.data());
        std::copy(targets.begin(), targets.end(),
                  g.targets.impl()->data.data());
        g.graph->Forward();
      }
      return it->second.loss;
    }

    const nn::Tensor pred = forward_models_[0]->Forward(
        nn::Tensor::FromData({b, in_dim}, std::move(inputs)));
    const nn::Tensor target = nn::Tensor::FromData({b, f}, std::move(targets));
    // Mean over the batch of the per-sample squared L2 error (Eqn 16),
    // normalized by the feature dimension (matches IntrinsicReward).
    return nn::MulScalar(
        nn::Mean(nn::SumLastDim(nn::Square(nn::Sub(pred, target)))),
        1.0f / static_cast<float>(f));
  }

  // Independent structure: per-worker losses weighted by sample counts.
  nn::Tensor total = nn::Tensor::Scalar(0.0f);
  size_t covered = 0;
  for (int w = 0; w < config_.num_workers; ++w) {
    std::vector<const CuriositySample*> mine;
    for (const CuriositySample& s : batch) {
      if (s.worker == w) mine.push_back(&s);
    }
    if (mine.empty()) continue;
    const nn::Index b = static_cast<nn::Index>(mine.size());
    std::vector<float> inputs(static_cast<size_t>(b * in_dim), 0.0f);
    std::vector<float> targets(static_cast<size_t>(b * f));
    for (nn::Index i = 0; i < b; ++i) {
      const CuriositySample& s = *mine[static_cast<size_t>(i)];
      WriteFeature(s.from, inputs.data() + i * in_dim);
      inputs[static_cast<size_t>(i * in_dim + f + s.move)] = 1.0f;
      WriteFeature(s.to, targets.data() + i * f);
    }
    const nn::Tensor pred = forward_models_[static_cast<size_t>(w)]->Forward(
        nn::Tensor::FromData({b, in_dim}, std::move(inputs)));
    const nn::Tensor target = nn::Tensor::FromData({b, f}, std::move(targets));
    const nn::Tensor loss =
        nn::Sum(nn::SumLastDim(nn::Square(nn::Sub(pred, target))));
    total = nn::Add(total, loss);
    covered += mine.size();
  }
  CEWS_CHECK_GT(covered, 0u);
  return nn::MulScalar(total,
                       1.0f / (static_cast<float>(covered) * f));
}

nn::Tensor SpatialCuriosity::SampleLoss(
    const std::vector<CuriositySample>& samples, size_t batch,
    Rng& rng) const {
  CEWS_CHECK(!samples.empty())
      << "SampleLoss with no curiosity samples: collect worker transitions "
         "before updating";
  const size_t n = samples.size();
  const size_t take = std::min(n, batch);
  std::vector<CuriositySample> minibatch;
  minibatch.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    minibatch.push_back(samples[static_cast<size_t>(rng.UniformInt(n))]);
  }
  return Loss(minibatch);
}

std::vector<nn::Tensor> SpatialCuriosity::Parameters() const {
  std::vector<nn::Tensor> params;
  for (const auto& m : forward_models_) {
    for (nn::Tensor t : m->Parameters()) params.push_back(t);
  }
  return params;
}

}  // namespace cews::agents
