// PPO actor-critic agent (Section IV, Eqns 8/11/12): action sampling at
// rollout time and the clipped-surrogate loss for updates. The agent owns a
// PolicyNet; in the chief-employee architecture each employee holds a local
// PpoAgent whose gradients are shipped to the chief, while standalone use
// (tests, Edics per-worker agents) can call UpdateStandalone.
#ifndef CEWS_AGENTS_PPO_H_
#define CEWS_AGENTS_PPO_H_

#include <map>
#include <memory>
#include <vector>

#include "agents/policy_net.h"
#include "agents/rollout.h"
#include "common/rng.h"
#include "env/action_space.h"
#include "nn/graph.h"
#include "nn/optimizer.h"

namespace cews::agents {

/// PPO hyperparameters.
struct PpoConfig {
  float gamma = 0.99f;          ///< Discount.
  float gae_lambda = 0.95f;     ///< GAE lambda.
  float clip_eps = 0.2f;        ///< Clip range epsilon (Eqn 8).
  float value_coef = 0.5f;      ///< Weight of the value loss (Eqn 11).
  float entropy_coef = 0.01f;   ///< Entropy bonus weight.
  float lr = 1e-3f;             ///< Adam learning rate.
  float max_grad_norm = 0.5f;   ///< Global-norm gradient clip.
  bool normalize_advantages = true;  ///< Per-batch advantage normalization.
};

/// Result of sampling the policy once.
struct ActResult {
  std::vector<env::WorkerAction> actions;  // a_t = [u_t, v_t] (Eqn 9)
  std::vector<int> moves;                  // v_t^w indices
  std::vector<int> charges;                // u_t^w in {0, 1}
  float log_prob = 0.0f;                   // joint log pi(a_t | s_t)
  float value = 0.0f;                      // V(s_t)
};

/// Aggregate loss diagnostics of one minibatch update.
struct LossStats {
  float policy_loss = 0.0f;
  float value_loss = 0.0f;
  float entropy = 0.0f;
  float total = 0.0f;
  /// Mean (logp_old - logp_new): the standard first-order KL estimate
  /// between behavior and updated policy over the minibatch.
  float approx_kl = 0.0f;
  /// Fraction of samples whose probability ratio hit the clip band —
  /// a healthy PPO run keeps this well below ~0.3.
  float clip_fraction = 0.0f;
};

/// The PPO agent.
class PpoAgent {
 public:
  PpoAgent(const PolicyNetConfig& net_config, const PpoConfig& ppo_config,
           uint64_t seed);

  /// Samples actions for all workers from the current policy (no tape).
  /// `deterministic` picks the argmax instead (testing process, VI-D).
  ActResult Act(const std::vector<float>& state, Rng& rng,
                bool deterministic = false) const;

  /// Value estimate for a state (no tape), used to bootstrap GAE.
  float Value(const std::vector<float>& state) const;

  /// Builds the PPO loss graph over a packed minibatch: J_clip (Eqn 12) +
  /// value_coef * Loss^v (Eqn 11) - entropy bonus. Caller backpropagates.
  /// The minibatch must carry advantages (source buffer had
  /// ComputeAdvantages run). Takes the batch by value and adopts its
  /// arrays, so pass a freshly sampled batch (e.g. buffer.SampleBatch)
  /// without copying.
  nn::Tensor ComputeLoss(MiniBatch batch, LossStats* stats = nullptr) const;

  /// Convenience overload: gathers `idx` of `buffer` into a MiniBatch
  /// first. The packed overload above is the hot path.
  nn::Tensor ComputeLoss(const RolloutBuffer& buffer,
                         const std::vector<size_t>& idx,
                         LossStats* stats = nullptr) const;

  /// Standalone training: K epochs of minibatch updates applied with the
  /// agent's own Adam (used by tests and the Edics baseline).
  void UpdateStandalone(const RolloutBuffer& buffer, Rng& rng, int epochs,
                        size_t minibatch);

  PolicyNet& net() { return *net_; }
  const PolicyNet& net() const { return *net_; }
  std::vector<nn::Tensor> Parameters() const { return net_->Parameters(); }
  const PpoConfig& config() const { return config_; }
  nn::Adam& optimizer() { return *optimizer_; }

  /// Planned activation-arena bytes summed over this agent's compiled loss
  /// graphs (0 until a graph-mode ComputeLoss ran). Bench/observability.
  nn::Index LossGraphArenaBytes() const;

 private:
  /// The loss expression's intermediate tensors, shared between the eager
  /// tape path and the compiled-graph path so both build the identical DAG.
  struct LossParts {
    nn::Tensor logp_new, ratio, policy_loss, value_loss, entropy, total;
  };

  /// One compiled PPO loss graph (CEWS_NN_GRAPH=1), cached per minibatch
  /// size: the placeholder leaves the trainer rewrites before each replay,
  /// the shared gather-index handles for the taken actions, and the
  /// retained diagnostic tensors LossStats reads after each forward.
  struct LossGraph {
    nn::graph::GraphPtr graph;
    nn::Tensor x, logp_old, advantage, returns;
    std::shared_ptr<std::vector<nn::Index>> move_idx, charge_idx;
    LossParts parts;
  };

  /// Builds the loss DAG over an already-forwarded policy output.
  LossParts BuildLoss(const PolicyOutput& out, const nn::Tensor& logp_old,
                      const nn::Tensor& advantage, const nn::Tensor& returns,
                      std::shared_ptr<const std::vector<nn::Index>> move_idx,
                      std::shared_ptr<const std::vector<nn::Index>> charge_idx,
                      nn::Index b) const;

  /// Fills `stats` from a computed loss DAG; `old_logp` points at the B
  /// behavior log-probs.
  void FillStats(const LossParts& parts, const float* old_logp, nn::Index b,
                 LossStats* stats) const;

  /// Graph-mode ComputeLoss: compiles the loss once per batch size, then
  /// replays it against rewritten placeholders.
  nn::Tensor GraphLoss(MiniBatch batch, LossStats* stats) const;

  PpoConfig config_;
  std::unique_ptr<PolicyNet> net_;
  std::unique_ptr<nn::Adam> optimizer_;
  mutable std::map<nn::Index, LossGraph> loss_graphs_;
};

}  // namespace cews::agents

#endif  // CEWS_AGENTS_PPO_H_
