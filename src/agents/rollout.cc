#include "agents/rollout.h"

#include <algorithm>
#include <iterator>
#include <numeric>

#include "common/check.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cews::agents {

RolloutBuffer RolloutBuffer::FromParts(std::vector<Transition> transitions,
                                       std::vector<float> advantages,
                                       std::vector<float> returns) {
  CEWS_CHECK_EQ(advantages.size(), returns.size())
      << "FromParts with mismatched advantage/return lengths";
  if (!advantages.empty()) {
    CEWS_CHECK_EQ(advantages.size(), transitions.size())
        << "FromParts advantages must cover every transition";
  }
  RolloutBuffer buffer;
  buffer.transitions_ = std::move(transitions);
  buffer.advantages_ = std::move(advantages);
  buffer.returns_ = std::move(returns);
  return buffer;
}

void RolloutBuffer::Reserve(size_t total) {
  transitions_.reserve(total);
  if (!advantages_.empty()) {
    advantages_.reserve(total);
    returns_.reserve(total);
  }
}

void RolloutBuffer::Clear() {
  transitions_.clear();
  advantages_.clear();
  returns_.clear();
}

void RolloutBuffer::Append(RolloutBuffer&& other) {
  CEWS_CHECK_EQ(advantages_.empty(), other.advantages_.empty())
      << "Append mixes buffers with and without computed advantages";
  transitions_.insert(transitions_.end(),
                      std::make_move_iterator(other.transitions_.begin()),
                      std::make_move_iterator(other.transitions_.end()));
  advantages_.insert(advantages_.end(), other.advantages_.begin(),
                     other.advantages_.end());
  returns_.insert(returns_.end(), other.returns_.begin(),
                  other.returns_.end());
  other.Clear();
}

void RolloutBuffer::ComputeAdvantages(float gamma, float gae_lambda,
                                      float last_value) {
  const size_t n = transitions_.size();
  CEWS_CHECK_GT(n, 0u) << "ComputeAdvantages on an empty RolloutBuffer";
  advantages_.assign(n, 0.0f);
  returns_.assign(n, 0.0f);
  float next_value = last_value;
  float next_advantage = 0.0f;
  for (size_t i = n; i-- > 0;) {
    const Transition& t = transitions_[i];
    const float not_done = t.done ? 0.0f : 1.0f;
    const float delta =
        t.reward + gamma * next_value * not_done - t.value;
    next_advantage = delta + gamma * gae_lambda * not_done * next_advantage;
    advantages_[i] = next_advantage;
    returns_[i] = next_advantage + t.value;
    next_value = t.value;
  }
}

std::vector<size_t> RolloutBuffer::SampleIndices(size_t batch,
                                                 Rng& rng) const {
  CEWS_CHECK(!transitions_.empty())
      << "SampleIndices on an empty RolloutBuffer: roll out at least one "
         "transition before updating";
  CEWS_CHECK_GT(batch, 0u) << "SampleIndices with batch == 0";
  const size_t n = transitions_.size();
  std::vector<size_t> idx;
  if (batch <= n) {
    idx.resize(n);
    std::iota(idx.begin(), idx.end(), 0u);
    // Fisher-Yates prefix shuffle.
    for (size_t i = 0; i < batch; ++i) {
      const size_t j = i + static_cast<size_t>(rng.UniformInt(n - i));
      std::swap(idx[i], idx[j]);
    }
    idx.resize(batch);
  } else {
    idx.reserve(batch);
    for (size_t i = 0; i < batch; ++i) {
      idx.push_back(static_cast<size_t>(rng.UniformInt(n)));
    }
  }
  return idx;
}

MiniBatch RolloutBuffer::GatherBatch(const std::vector<size_t>& idx) const {
  CEWS_CHECK(!transitions_.empty())
      << "GatherBatch on an empty RolloutBuffer";
  CEWS_CHECK(!idx.empty()) << "GatherBatch with an empty index list";
  CEWS_TRACE_SCOPE("agents.PackBatch");
  static obs::Counter* const pack_calls =
      obs::GetCounter("rollout.pack.calls");
  static obs::Counter* const pack_transitions =
      obs::GetCounter("rollout.pack.transitions");
  static obs::Histogram* const pack_ns = obs::GetHistogram("rollout.pack_ns");
  const uint64_t t0 = Stopwatch::NowNs();
  pack_calls->Increment();
  pack_transitions->Add(idx.size());
  const bool has_advantages = advantages_.size() == transitions_.size();

  MiniBatch mb;
  mb.batch = static_cast<int64_t>(idx.size());
  mb.state_size = static_cast<int64_t>(transitions_[0].state.size());
  mb.num_workers = static_cast<int>(transitions_[0].moves.size());
  const size_t b = idx.size();
  const size_t w = static_cast<size_t>(mb.num_workers);
  mb.states.resize(b * static_cast<size_t>(mb.state_size));
  mb.move_indices.resize(b * w);
  mb.charge_indices.resize(b * w);
  mb.log_probs.resize(b);
  mb.values.resize(b);
  mb.rewards.resize(b);
  mb.dones.resize(b);
  if (has_advantages) {
    mb.advantages.resize(b);
    mb.returns.resize(b);
  }
  for (size_t i = 0; i < b; ++i) {
    const size_t src = idx[i];
    CEWS_CHECK_LT(src, transitions_.size());
    const Transition& t = transitions_[src];
    CEWS_CHECK_EQ(static_cast<int64_t>(t.state.size()), mb.state_size);
    CEWS_CHECK_EQ(t.moves.size(), w);
    CEWS_CHECK_EQ(t.charges.size(), w);
    std::copy(t.state.begin(), t.state.end(),
              mb.states.begin() + i * static_cast<size_t>(mb.state_size));
    for (size_t j = 0; j < w; ++j) {
      mb.move_indices[i * w + j] = t.moves[j];
      mb.charge_indices[i * w + j] = t.charges[j];
    }
    mb.log_probs[i] = t.log_prob;
    mb.values[i] = t.value;
    mb.rewards[i] = t.reward;
    mb.dones[i] = t.done ? 1 : 0;
    if (has_advantages) {
      mb.advantages[i] = advantages_[src];
      mb.returns[i] = returns_[src];
    }
  }
  pack_ns->Record(Stopwatch::NowNs() - t0);
  return mb;
}

MiniBatch RolloutBuffer::SampleBatch(size_t batch, Rng& rng) const {
  CEWS_CHECK(!transitions_.empty())
      << "SampleBatch on an empty RolloutBuffer: roll out at least one "
         "transition before updating";
  return GatherBatch(SampleIndices(batch, rng));
}

MiniBatch RolloutBuffer::PackAll() const {
  CEWS_CHECK(!transitions_.empty()) << "PackAll on an empty RolloutBuffer";
  std::vector<size_t> idx(transitions_.size());
  std::iota(idx.begin(), idx.end(), 0u);
  return GatherBatch(idx);
}

}  // namespace cews::agents
