#include "agents/rollout.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace cews::agents {

void RolloutBuffer::Clear() {
  transitions_.clear();
  advantages_.clear();
  returns_.clear();
}

void RolloutBuffer::ComputeAdvantages(float gamma, float gae_lambda,
                                      float last_value) {
  const size_t n = transitions_.size();
  CEWS_CHECK_GT(n, 0u);
  advantages_.assign(n, 0.0f);
  returns_.assign(n, 0.0f);
  float next_value = last_value;
  float next_advantage = 0.0f;
  for (size_t i = n; i-- > 0;) {
    const Transition& t = transitions_[i];
    const float not_done = t.done ? 0.0f : 1.0f;
    const float delta =
        t.reward + gamma * next_value * not_done - t.value;
    next_advantage = delta + gamma * gae_lambda * not_done * next_advantage;
    advantages_[i] = next_advantage;
    returns_[i] = next_advantage + t.value;
    next_value = t.value;
  }
}

std::vector<size_t> RolloutBuffer::SampleIndices(size_t batch,
                                                 Rng& rng) const {
  CEWS_CHECK(!transitions_.empty());
  const size_t n = transitions_.size();
  std::vector<size_t> idx;
  if (batch <= n) {
    idx.resize(n);
    std::iota(idx.begin(), idx.end(), 0u);
    // Fisher-Yates prefix shuffle.
    for (size_t i = 0; i < batch; ++i) {
      const size_t j = i + static_cast<size_t>(rng.UniformInt(n - i));
      std::swap(idx[i], idx[j]);
    }
    idx.resize(batch);
  } else {
    idx.reserve(batch);
    for (size_t i = 0; i < batch; ++i) {
      idx.push_back(static_cast<size_t>(rng.UniformInt(n)));
    }
  }
  return idx;
}

}  // namespace cews::agents
