// Asynchronous actor-learner trainer with optional V-trace off-policy
// correction (Espeholt et al., IMPALA — reference [18] of the paper).
//
// Section V-A argues for the *synchronous* chief-employee design because
// asynchronous updates introduce policy-lag between the behavior policy that
// generated a rollout and the policy being updated. This module implements
// the asynchronous alternative — employees push gradients and pull
// parameters whenever they finish an episode, with no barrier — so the
// paper's design choice can be measured (bench_ablation_async):
//  * plain asynchronous actor-critic (suffers the lag), and
//  * the same with V-trace importance-weighted corrections.
#ifndef CEWS_AGENTS_ASYNC_TRAINER_H_
#define CEWS_AGENTS_ASYNC_TRAINER_H_

#include <memory>
#include <mutex>
#include <vector>

#include "agents/chief_employee.h"
#include "agents/policy_net.h"
#include "env/env.h"
#include "env/state_encoder.h"
#include "nn/optimizer.h"

namespace cews::agents {

/// V-trace targets for one episode.
struct VtraceResult {
  /// Corrected value targets v_s.
  std::vector<float> vs;
  /// Policy-gradient advantages rho_t (r_t + gamma v_{s+1} - V(x_t)).
  std::vector<float> pg_advantages;
};

/// Computes V-trace targets (Espeholt et al., Eqn 1).
///
/// `rewards`, `dones`, `ratios` have length T; `values` has length T + 1
/// (the trailing entry bootstraps a truncated episode; pass 0 after a
/// terminal step). `ratios` are current/behavior policy probability ratios;
/// they are clipped at rho_bar for the deltas and c_bar for the trace.
VtraceResult ComputeVtrace(const std::vector<float>& rewards,
                           const std::vector<bool>& dones,
                           const std::vector<float>& values,
                           const std::vector<float>& ratios, float gamma,
                           float rho_bar = 1.0f, float c_bar = 1.0f);

/// Asynchronous trainer configuration.
struct AsyncTrainerConfig {
  int num_employees = 4;
  /// Episodes per employee.
  int episodes = 100;
  /// Intra-op NN kernel threads; see TrainerConfig::runtime_threads.
  int runtime_threads = 1;
  /// Env instances per employee on the vectorized acting path; see
  /// TrainerConfig::envs_per_employee. 1 ≡ the legacy single-env loop.
  int envs_per_employee = 1;
  bool use_vtrace = true;
  float rho_bar = 1.0f;
  float c_bar = 1.0f;

  PolicyNetConfig net;
  float lr = 3e-3f;
  float gamma = 0.95f;
  float entropy_coef = 0.01f;
  float value_coef = 0.5f;
  float max_grad_norm = 0.5f;
  float reward_scale = 0.1f;
  RewardMode reward_mode = RewardMode::kDense;

  env::EnvConfig env;
  env::StateEncoderConfig encoder;
  uint64_t seed = 1;
};

/// The asynchronous actor-learner. Employees roll out and update the global
/// model without synchronization barriers; the update applies each
/// employee's gradient the moment it is ready.
class AsyncTrainer {
 public:
  AsyncTrainer(const AsyncTrainerConfig& config, env::Map map);
  ~AsyncTrainer();

  AsyncTrainer(const AsyncTrainer&) = delete;
  AsyncTrainer& operator=(const AsyncTrainer&) = delete;

  /// Runs training (blocking). History entries arrive in completion order.
  TrainResult Train();

  PolicyNet& global_net() { return *global_net_; }
  const AsyncTrainerConfig& config() const { return config_; }

 private:
  void EmployeeLoop(int employee_id);

  AsyncTrainerConfig config_;
  env::Map map_;
  env::StateEncoder encoder_;
  std::unique_ptr<PolicyNet> global_net_;
  std::unique_ptr<nn::Adam> optimizer_;
  std::mutex model_mu_;
  std::mutex stats_mu_;
  std::vector<EpisodeRecord> history_;
};

}  // namespace cews::agents

#endif  // CEWS_AGENTS_ASYNC_TRAINER_H_
